package store

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ccift/internal/cerr"
	"ccift/internal/storage"
)

// seedStore writes a two-epoch checkpoint tree the way the runtime does:
// chunked state per rank (epoch 1 re-uses epoch 0's chunks except one
// dirty chunk per rank), logs, a commit record for epoch 1, and one
// orphaned chunk. Returns the store dir.
func seedStore(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	disk, err := storage.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	cs := storage.NewCheckpointStore(disk)
	const ranks, chunk = 2, 1 << 10
	for epoch := 0; epoch <= 1; epoch++ {
		for rank := 0; rank < ranks; rank++ {
			w := cs.StateWriter(context.Background(), epoch, rank, chunk)
			// Three chunks: a shared prefix identical across epochs and
			// ranks, a per-rank stable chunk, and a per-epoch dirty chunk.
			if _, err := w.Write(bytes.Repeat([]byte{0xAA}, chunk)); err != nil {
				t.Fatal(err)
			}
			if _, err := w.Write(bytes.Repeat([]byte{byte(rank)}, chunk)); err != nil {
				t.Fatal(err)
			}
			if _, err := w.Write(bytes.Repeat([]byte{0xF0 | byte(epoch)}, chunk)); err != nil {
				t.Fatal(err)
			}
			if _, _, err := w.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := cs.PutLog(epoch, rank, []byte("log")); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := cs.Commit(1); err != nil {
		t.Fatal(err)
	}
	orphan := []byte("orphaned chunk content")
	sum := sha256.Sum256(orphan)
	if err := disk.Put(storage.ChunkRef{Sum: sum, Len: int64(len(orphan))}.Key(), orphan); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestOpenRejectsMissingDir(t *testing.T) {
	_, err := Open(filepath.Join(t.TempDir(), "no-such-store"))
	if !errors.Is(err, cerr.ErrStore) {
		t.Fatalf("Open on a missing dir: err=%v, want ErrStore", err)
	}
	// Open must not have scaffolded the directory.
	if _, err2 := Open(filepath.Join(t.TempDir(), "no-such-store")); err2 == nil {
		t.Fatal("second Open succeeded: Open created the directory")
	}
}

func TestEpochsAndManifest(t *testing.T) {
	st, err := Open(seedStore(t))
	if err != nil {
		t.Fatal(err)
	}
	epochs, err := st.Epochs()
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 2 {
		t.Fatalf("epochs=%d, want 2", len(epochs))
	}
	for i, e := range epochs {
		if e.Epoch != i {
			t.Errorf("epochs[%d].Epoch=%d", i, e.Epoch)
		}
		if e.Committed != (i == 1) {
			t.Errorf("epoch %d committed=%v", e.Epoch, e.Committed)
		}
		if len(e.Ranks) != 2 {
			t.Fatalf("epoch %d ranks=%d, want 2", e.Epoch, len(e.Ranks))
		}
		if e.StateBytes != 2*3*1024 {
			t.Errorf("epoch %d StateBytes=%d, want %d", e.Epoch, e.StateBytes, 2*3*1024)
		}
		for _, r := range e.Ranks {
			if !r.Chunked || r.Chunks != 3 {
				t.Errorf("epoch %d rank %d: chunked=%v chunks=%d, want chunked with 3", e.Epoch, r.Rank, r.Chunked, r.Chunks)
			}
			if r.LogBytes != 3 {
				t.Errorf("epoch %d rank %d LogBytes=%d", e.Epoch, r.Rank, r.LogBytes)
			}
		}
	}

	m, err := st.Manifest(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Chunked || len(m.Refs) != 3 || m.LogicalBytes != 3*1024 {
		t.Fatalf("manifest: chunked=%v refs=%d logical=%d", m.Chunked, len(m.Refs), m.LogicalBytes)
	}
	if _, err := st.Manifest(7, 0); !errors.Is(err, cerr.ErrStore) {
		t.Errorf("missing manifest: err=%v, want ErrStore", err)
	}
	if _, err := st.Manifest(-1, 0); !errors.Is(err, cerr.ErrSpec) {
		t.Errorf("negative epoch: err=%v, want ErrSpec", err)
	}
}

func TestChunksOrphansSummary(t *testing.T) {
	st, err := Open(seedStore(t))
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := st.Chunks()
	if err != nil {
		t.Fatal(err)
	}
	// Unique chunks: shared 0xAA (4 refs), rank-0 and rank-1 stable (2
	// refs each), epoch-0 and epoch-1 dirty (2 refs each), plus the
	// seeded orphan.
	if len(chunks) != 6 {
		t.Fatalf("chunks=%d, want 6", len(chunks))
	}
	if chunks[0].Refs != 4 {
		t.Errorf("most-shared chunk refs=%d, want 4", chunks[0].Refs)
	}
	orphans, err := st.Orphans()
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != 1 || orphans[0].Refs != 0 {
		t.Fatalf("orphans=%+v, want exactly the seeded one", orphans)
	}

	s, err := st.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if !s.HasCommit || s.CommittedEpoch != 1 || s.Epochs != 2 {
		t.Fatalf("summary commit/epochs: %+v", s)
	}
	if s.LogicalBytes != 4*3*1024 {
		t.Errorf("LogicalBytes=%d, want %d", s.LogicalBytes, 4*3*1024)
	}
	// 12 logical chunks dedup to 5 stored (+ orphan bytes): ratio > 0.
	if s.DedupRatio <= 0 {
		t.Errorf("DedupRatio=%v, want > 0", s.DedupRatio)
	}
	if s.Orphans != 1 || s.OrphanBytes == 0 {
		t.Errorf("summary orphans: %+v", s)
	}
}

func TestPrunePlanAndPrune(t *testing.T) {
	dir := seedStore(t)
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := st.PrunePlan(-1) // default: the committed epoch (1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.KeepEpoch != 1 {
		t.Fatalf("KeepEpoch=%d, want 1", plan.KeepEpoch)
	}
	if len(plan.Epochs) != 1 || plan.Epochs[0] != 0 {
		t.Fatalf("plan.Epochs=%v, want [0]", plan.Epochs)
	}
	// Epoch 0's 4 blobs (2 states + 2 logs), the epoch-0-only dirty
	// chunk, and the orphan.
	if len(plan.Keys) != 6 {
		t.Fatalf("plan.Keys=%v, want 6 keys", plan.Keys)
	}
	if plan.ReclaimBytes == 0 {
		t.Fatal("plan reclaims nothing")
	}

	// The dry run deleted nothing.
	if epochs, _ := st.Epochs(); len(epochs) != 2 {
		t.Fatalf("dry run mutated the store: %d epochs", len(epochs))
	}

	if err := st.Prune(-1); err != nil {
		t.Fatal(err)
	}
	epochs, err := st.Epochs()
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 1 || epochs[0].Epoch != 1 || !epochs[0].Committed {
		t.Fatalf("after prune: %+v", epochs)
	}
	if orphans, _ := st.Orphans(); len(orphans) != 0 {
		t.Fatalf("orphans survived prune: %+v", orphans)
	}
	// The committed epoch must still assemble byte-perfectly.
	disk, err := storage.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	state, err := storage.NewCheckpointStore(disk).GetState(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(state) != 3*1024 {
		t.Fatalf("recovered state is %d bytes, want %d", len(state), 3*1024)
	}
}

func TestPruneWithoutCommitNeedsExplicitEpoch(t *testing.T) {
	dir := t.TempDir()
	disk, err := storage.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := storage.NewCheckpointStore(disk).PutState(0, 0, []byte("state")); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.PrunePlan(-1); !errors.Is(err, cerr.ErrSpec) {
		t.Errorf("PrunePlan(-1) with no commit: err=%v, want ErrSpec", err)
	}
	if err := st.Prune(-1); !errors.Is(err, cerr.ErrSpec) {
		t.Errorf("Prune(-1) with no commit: err=%v, want ErrSpec", err)
	}
}

func TestJobs(t *testing.T) {
	root := t.TempDir()
	// Two stores under the root, one of them nested deeper; a decoy dir
	// with no ckpt tree is skipped.
	for _, rel := range []string{"jobA", "deeper/jobB"} {
		dir := filepath.Join(root, rel)
		disk, err := storage.NewDisk(dir)
		if err != nil {
			t.Fatal(err)
		}
		cs := storage.NewCheckpointStore(disk)
		if err := cs.PutState(0, 0, []byte("s")); err != nil {
			t.Fatal(err)
		}
		if rel == "jobA" {
			if err := cs.Commit(0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := storage.NewDisk(filepath.Join(root, "decoy")); err != nil {
		t.Fatal(err)
	}

	jobs, err := Jobs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("jobs=%+v, want 2", jobs)
	}
	// Sorted by dir: deeper/jobB before jobA.
	if jobs[0].HasCommit || jobs[0].Epochs != 1 {
		t.Errorf("jobB: %+v", jobs[0])
	}
	if !jobs[1].HasCommit || jobs[1].CommittedEpoch != 0 || jobs[1].Epochs != 1 {
		t.Errorf("jobA: %+v", jobs[1])
	}
}

func TestVerifyIntactStore(t *testing.T) {
	st, err := Open(seedStore(t))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := st.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Issues) != 0 {
		t.Fatalf("intact store reported issues: %v", rep.Issues)
	}
	// 4 chunked manifests (2 epochs x 2 ranks), no inline blobs; the 5
	// referenced unique chunks are hashed once each despite 12 references
	// (the orphan is unreferenced and not hashed).
	if rep.Manifests != 4 || rep.InlineBlobs != 0 {
		t.Fatalf("manifests=%d inline=%d, want 4/0", rep.Manifests, rep.InlineBlobs)
	}
	if rep.ChunksHashed != 5 || rep.BytesHashed != 5*1024 {
		t.Fatalf("hashed %d chunks / %d bytes, want 5 / %d", rep.ChunksHashed, rep.BytesHashed, 5*1024)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	dir := seedStore(t)
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Find the most-shared chunk (the 0xAA prefix, referenced by all four
	// manifests) and flip a byte in place, preserving the length.
	chunks, err := st.Chunks()
	if err != nil {
		t.Fatal(err)
	}
	shared := chunks[0]
	p := filepath.Join(dir, "ckpt", "chunks", shared.Hash)
	blob, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	blob[0] ^= 0xFF
	if err := os.WriteFile(p, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	// Delete one single-referenced chunk outright.
	var missing Chunk
	for _, c := range chunks {
		if c.Refs == 2 {
			missing = c
			break
		}
	}
	if err := os.Remove(filepath.Join(dir, "ckpt", "chunks", missing.Hash)); err != nil {
		t.Fatal(err)
	}

	rep, err := st.Verify()
	if err != nil {
		t.Fatal(err)
	}
	// The flipped chunk is referenced by 4 manifests, the deleted one by
	// 2: six issues, each naming the manifest and the chunk.
	if len(rep.Issues) != 6 {
		t.Fatalf("issues=%d (%v), want 6", len(rep.Issues), rep.Issues)
	}
	var mismatches, gone int
	for _, i := range rep.Issues {
		switch i.Chunk {
		case shared.Hash:
			mismatches++
		case missing.Hash:
			gone++
		default:
			t.Errorf("unexpected issue %v", i)
		}
		if i.Key == "" || i.Detail == "" {
			t.Errorf("issue missing key or detail: %+v", i)
		}
	}
	if mismatches != 4 || gone != 2 {
		t.Fatalf("mismatches=%d gone=%d, want 4/2", mismatches, gone)
	}
	// The corrupt chunk was still hashed only once.
	if rep.ChunksHashed != 4 {
		t.Fatalf("hashed %d chunks, want 4 (5 referenced, 1 missing)", rep.ChunksHashed)
	}
}
