// Package store is the read-mostly inspection API over on-disk ccift
// checkpoint stores — the directories a distributed Launch (or an
// in-process run with ccift.NewDiskStore) checkpoints into. It answers
// the operational questions a checkpoint directory raises: which epoch is
// committed, what does each epoch hold per rank, how well is chunk-level
// dedup working, which content-hashed chunks are orphaned, and what would
// a prune delete. cmd/c3admin is a thin CLI over this package.
//
// Everything except Prune is read-only and safe to run against the store
// of a live job; Prune (and a PrunePlan applied with it) must only run
// when no job is writing the store.
//
// Errors returned by this package wrap ccift.ErrStore (and
// ccift.ErrSpec for invalid arguments), so callers dispatch with
// errors.Is exactly as they do on Launch errors.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"ccift/internal/cerr"
	"ccift/internal/storage"
)

// Store is an opened checkpoint directory.
type Store struct {
	dir string
	s   storage.Stable
	cs  *storage.CheckpointStore
}

// Open opens an existing checkpoint directory for inspection. The
// directory must already exist — Open never creates one (pointing an
// admin tool at a typo must not scaffold an empty store).
func Open(dir string) (*Store, error) {
	fi, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("%w: open %s: %w", cerr.ErrStore, dir, err)
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("%w: open %s: not a directory", cerr.ErrStore, dir)
	}
	d, err := storage.NewDisk(dir)
	if err != nil {
		return nil, fmt.Errorf("%w: open %s: %w", cerr.ErrStore, dir, err)
	}
	return &Store{dir: dir, s: d, cs: storage.NewCheckpointStore(d)}, nil
}

// Dir returns the directory the store was opened on.
func (st *Store) Dir() string { return st.dir }

// Committed returns the epoch named by the store's commit record — the
// checkpoint a recovering job would restore. ok is false when no global
// checkpoint has ever been committed.
func (st *Store) Committed() (epoch int, ok bool, err error) {
	epoch, ok, err = st.cs.Committed()
	if err != nil {
		return 0, false, fmt.Errorf("%w: %s: %w", cerr.ErrStore, st.dir, err)
	}
	return epoch, ok, nil
}

// RankBlob summarizes one rank's artifacts within an epoch.
type RankBlob struct {
	Rank int
	// StateBytes is the logical (assembled) size of the rank's state
	// blob; LogBytes the size of its message/non-determinism log.
	StateBytes int64
	LogBytes   int64
	// Chunked reports whether the state blob is stored as a chunk
	// manifest (the async pipeline's format) rather than inline; Chunks
	// is the manifest's reference count when it is.
	Chunked bool
	Chunks  int
}

// Epoch summarizes one global checkpoint epoch present in the store.
type Epoch struct {
	Epoch int
	// Committed marks the epoch the commit record names.
	Committed bool
	// Ranks holds one entry per rank with artifacts in this epoch,
	// ordered by rank.
	Ranks []RankBlob
	// StateBytes and LogBytes are the logical totals over Ranks.
	StateBytes int64
	LogBytes   int64
}

// Epochs lists every epoch with artifacts in the store, oldest first.
func (st *Store) Epochs() ([]Epoch, error) {
	keys, err := st.s.List("ckpt/")
	if err != nil {
		return nil, fmt.Errorf("%w: list %s: %w", cerr.ErrStore, st.dir, err)
	}
	committed, hasCommit, err := st.Committed()
	if err != nil {
		return nil, err
	}
	byEpoch := map[int]map[int]*RankBlob{}
	rank := func(epoch, r int) *RankBlob {
		if byEpoch[epoch] == nil {
			byEpoch[epoch] = map[int]*RankBlob{}
		}
		if byEpoch[epoch][r] == nil {
			byEpoch[epoch][r] = &RankBlob{Rank: r}
		}
		return byEpoch[epoch][r]
	}
	for _, k := range keys {
		epoch, r, kind, ok := parseEpochKey(k)
		if !ok {
			continue
		}
		blob, err := st.s.Get(k)
		if err != nil {
			return nil, fmt.Errorf("%w: read %s: %w", cerr.ErrStore, k, err)
		}
		b := rank(epoch, r)
		switch kind {
		case "state":
			if storage.IsManifest(blob) {
				refs, err := storage.ParseManifest(blob)
				if err != nil {
					return nil, fmt.Errorf("%w: %s: %w", cerr.ErrStore, k, err)
				}
				b.Chunked, b.Chunks = true, len(refs)
				for _, ref := range refs {
					b.StateBytes += ref.Len
				}
			} else {
				b.StateBytes = int64(len(blob))
			}
		case "log":
			b.LogBytes = int64(len(blob))
		}
	}
	epochs := make([]Epoch, 0, len(byEpoch))
	for e, ranks := range byEpoch {
		ep := Epoch{Epoch: e, Committed: hasCommit && e == committed}
		for _, b := range ranks {
			ep.Ranks = append(ep.Ranks, *b)
			ep.StateBytes += b.StateBytes
			ep.LogBytes += b.LogBytes
		}
		sort.Slice(ep.Ranks, func(i, j int) bool { return ep.Ranks[i].Rank < ep.Ranks[j].Rank })
		epochs = append(epochs, ep)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i].Epoch < epochs[j].Epoch })
	return epochs, nil
}

// ChunkRef names one chunk of a manifest, in inspection form.
type ChunkRef struct {
	// Hash is the chunk's hex SHA-256 — its content address.
	Hash  string
	Bytes int64
}

// Manifest describes one rank's state blob within an epoch.
type Manifest struct {
	// Key is the store key the blob lives under.
	Key string
	// Chunked is false for inline (non-manifest) state blobs, in which
	// case Refs is empty and LogicalBytes is the blob length.
	Chunked      bool
	LogicalBytes int64
	Refs         []ChunkRef
}

// Manifest loads the state-blob manifest for (epoch, rank). Inline blobs
// (written by the blocking checkpoint path) are reported with Chunked
// false rather than as an error.
func (st *Store) Manifest(epoch, rank int) (*Manifest, error) {
	if epoch < 0 || rank < 0 {
		return nil, fmt.Errorf("%w: manifest wants epoch >= 0 and rank >= 0, got (%d, %d)", cerr.ErrSpec, epoch, rank)
	}
	key := storage.StateKey(epoch, rank)
	blob, err := st.s.Get(key)
	if err != nil {
		return nil, fmt.Errorf("%w: read %s: %w", cerr.ErrStore, key, err)
	}
	m := &Manifest{Key: key}
	if !storage.IsManifest(blob) {
		m.LogicalBytes = int64(len(blob))
		return m, nil
	}
	refs, err := storage.ParseManifest(blob)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %w", cerr.ErrStore, key, err)
	}
	m.Chunked = true
	m.Refs = make([]ChunkRef, len(refs))
	for i, r := range refs {
		m.Refs[i] = ChunkRef{Hash: strings.TrimPrefix(r.Key(), "ckpt/chunks/"), Bytes: r.Len}
		m.LogicalBytes += r.Len
	}
	return m, nil
}

// Chunk is one content-hashed chunk in the shared dedup namespace.
type Chunk struct {
	Hash  string
	Bytes int64
	// Refs counts how many state manifests (across all epochs and ranks
	// present in the store) reference the chunk; 0 marks an orphan left
	// behind by a crash between flush and prune.
	Refs int
}

// Chunks lists every stored chunk with its reference count, sorted by
// descending Refs then hash, so the most-shared content leads.
func (st *Store) Chunks() ([]Chunk, error) {
	chunks, _, err := st.chunkTable()
	if err != nil {
		return nil, err
	}
	return chunks, nil
}

// Orphans lists chunks no manifest references. A small number is normal
// transiently (a crash between a flush and the following commit's sweep);
// they are reclaimed by the next prune.
func (st *Store) Orphans() ([]Chunk, error) {
	chunks, _, err := st.chunkTable()
	if err != nil {
		return nil, err
	}
	var orphans []Chunk
	for _, c := range chunks {
		if c.Refs == 0 {
			orphans = append(orphans, c)
		}
	}
	return orphans, nil
}

// chunkTable builds the refcount table: every chunk key on disk joined
// against every manifest's references. The second result is the total
// logical bytes referenced (the pre-dedup volume).
func (st *Store) chunkTable() ([]Chunk, int64, error) {
	keys, err := st.s.List("ckpt/")
	if err != nil {
		return nil, 0, fmt.Errorf("%w: list %s: %w", cerr.ErrStore, st.dir, err)
	}
	table := map[string]*Chunk{}
	for _, k := range keys {
		if h, ok := strings.CutPrefix(k, "ckpt/chunks/"); ok {
			blob, err := st.s.Get(k)
			if err != nil {
				return nil, 0, fmt.Errorf("%w: read %s: %w", cerr.ErrStore, k, err)
			}
			table[h] = &Chunk{Hash: h, Bytes: int64(len(blob))}
		}
	}
	var logical int64
	for _, k := range keys {
		if _, _, kind, ok := parseEpochKey(k); !ok || kind != "state" {
			continue
		}
		blob, err := st.s.Get(k)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: read %s: %w", cerr.ErrStore, k, err)
		}
		if !storage.IsManifest(blob) {
			logical += int64(len(blob))
			continue
		}
		refs, err := storage.ParseManifest(blob)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: %s: %w", cerr.ErrStore, k, err)
		}
		for _, r := range refs {
			logical += r.Len
			h := strings.TrimPrefix(r.Key(), "ckpt/chunks/")
			if c := table[h]; c != nil {
				c.Refs++
			} else {
				// Referenced but missing on disk: surface it in the table
				// with Bytes from the manifest so `c3admin chunks` makes
				// the corruption visible instead of hiding it.
				table[h] = &Chunk{Hash: h, Bytes: r.Len, Refs: 1}
			}
		}
	}
	chunks := make([]Chunk, 0, len(table))
	for _, c := range table {
		chunks = append(chunks, *c)
	}
	sort.Slice(chunks, func(i, j int) bool {
		if chunks[i].Refs != chunks[j].Refs {
			return chunks[i].Refs > chunks[j].Refs
		}
		return chunks[i].Hash < chunks[j].Hash
	})
	return chunks, logical, nil
}

// Summary is the store-wide health report c3admin prints by default.
type Summary struct {
	Dir            string
	CommittedEpoch int
	HasCommit      bool
	Epochs         int
	// LogicalBytes is the pre-dedup state volume (every manifest's
	// assembled size plus inline blobs); ChunkBytes the unique chunk
	// bytes actually stored. DedupRatio is the fraction of logical bytes
	// dedup avoided storing (0 when nothing is chunked).
	LogicalBytes int64
	ChunkBytes   int64
	DedupRatio   float64
	Chunks       int
	Orphans      int
	OrphanBytes  int64
}

// Summary computes the store-wide report.
func (st *Store) Summary() (*Summary, error) {
	s := &Summary{Dir: st.dir}
	var err error
	s.CommittedEpoch, s.HasCommit, err = st.Committed()
	if err != nil {
		return nil, err
	}
	epochs, err := st.Epochs()
	if err != nil {
		return nil, err
	}
	s.Epochs = len(epochs)
	chunks, logical, err := st.chunkTable()
	if err != nil {
		return nil, err
	}
	s.LogicalBytes = logical
	s.Chunks = len(chunks)
	for _, c := range chunks {
		s.ChunkBytes += c.Bytes
		if c.Refs == 0 {
			s.Orphans++
			s.OrphanBytes += c.Bytes
		}
	}
	if s.LogicalBytes > 0 && s.ChunkBytes > 0 {
		s.DedupRatio = 1 - float64(s.ChunkBytes)/float64(s.LogicalBytes)
		if s.DedupRatio < 0 {
			s.DedupRatio = 0
		}
	}
	return s, nil
}

// VerifyIssue is one integrity failure Verify found: a chunk whose bytes
// no longer hash to their content address, a chunk a manifest references
// that is missing from disk, or a manifest that does not parse.
type VerifyIssue struct {
	// Key is the state-blob key whose verification surfaced the issue.
	Key string
	// Chunk is the offending chunk's hex content address ("" for
	// manifest-level issues).
	Chunk string
	// Detail says what is wrong, human-readably.
	Detail string
}

func (i VerifyIssue) String() string {
	if i.Chunk == "" {
		return fmt.Sprintf("%s: %s", i.Key, i.Detail)
	}
	return fmt.Sprintf("%s: chunk %s: %s", i.Key, i.Chunk, i.Detail)
}

// VerifyReport is the result of a full-store integrity pass.
type VerifyReport struct {
	// Manifests counts chunked state blobs checked; InlineBlobs counts
	// inline state blobs (which carry no content hash to re-check and are
	// reported for visibility only).
	Manifests   int
	InlineBlobs int
	// ChunksHashed counts unique chunks re-hashed; BytesHashed their
	// volume. Chunks shared by many manifests are hashed once.
	ChunksHashed int
	BytesHashed  int64
	// Issues is empty when the store is intact.
	Issues []VerifyIssue
}

// Verify re-reads every state manifest in the store and re-hashes every
// chunk it references, confirming each chunk's bytes still match its
// content address and declared length. It is read-only and safe against a
// live job's store; a non-empty Issues means recovery from the affected
// epoch would fail or — worse — silently restore corrupt state.
func (st *Store) Verify() (*VerifyReport, error) {
	keys, err := st.s.List("ckpt/")
	if err != nil {
		return nil, fmt.Errorf("%w: list %s: %w", cerr.ErrStore, st.dir, err)
	}
	rep := &VerifyReport{}
	// verdicts caches per-chunk results so dedup-shared chunks are hashed
	// once; "" marks a chunk that verified clean.
	verdicts := map[string]string{}
	for _, k := range keys {
		if _, _, kind, ok := parseEpochKey(k); !ok || kind != "state" {
			continue
		}
		blob, err := st.s.Get(k)
		if err != nil {
			return nil, fmt.Errorf("%w: read %s: %w", cerr.ErrStore, k, err)
		}
		if !storage.IsManifest(blob) {
			rep.InlineBlobs++
			continue
		}
		refs, err := storage.ParseManifest(blob)
		if err != nil {
			rep.Issues = append(rep.Issues, VerifyIssue{Key: k, Detail: fmt.Sprintf("corrupt manifest: %v", err)})
			continue
		}
		rep.Manifests++
		for _, r := range refs {
			h := hex.EncodeToString(r.Sum[:])
			detail, seen := verdicts[h]
			if !seen {
				detail = st.verifyChunk(r, rep)
				verdicts[h] = detail
			}
			if detail != "" {
				rep.Issues = append(rep.Issues, VerifyIssue{Key: k, Chunk: h, Detail: detail})
			}
		}
	}
	return rep, nil
}

// verifyChunk re-hashes one chunk; the returned string is empty when it is
// intact and a human-readable defect otherwise.
func (st *Store) verifyChunk(r storage.ChunkRef, rep *VerifyReport) string {
	blob, err := st.s.Get(r.Key())
	if err != nil {
		return fmt.Sprintf("missing from store (%v)", err)
	}
	rep.ChunksHashed++
	rep.BytesHashed += int64(len(blob))
	if int64(len(blob)) != r.Len {
		return fmt.Sprintf("length %d, manifest says %d", len(blob), r.Len)
	}
	if sha256.Sum256(blob) != r.Sum {
		return "content does not hash to its address"
	}
	return ""
}

// PrunePlan is the dry-run result of a prune: exactly what Prune would
// delete, without deleting it.
type PrunePlan struct {
	// KeepEpoch is the newest epoch the plan preserves (everything older
	// is deleted, plus chunks only older epochs referenced).
	KeepEpoch int
	// Epochs lists the epoch numbers whose blobs the plan deletes.
	Epochs []int
	// Keys lists every store key the plan deletes, sorted.
	Keys []string
	// ReclaimBytes is the on-disk volume those keys hold.
	ReclaimBytes int64
}

// PrunePlan computes what pruning to keepEpoch would delete. keepEpoch <
// 0 selects the committed epoch — the invariant the running system
// itself maintains. Planning with no commit record and keepEpoch < 0 is
// an error rather than a plan that deletes everything.
func (st *Store) PrunePlan(keepEpoch int) (*PrunePlan, error) {
	if keepEpoch < 0 {
		committed, ok, err := st.Committed()
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("%w: prune: store has no commit record; pass an explicit keep epoch", cerr.ErrSpec)
		}
		keepEpoch = committed
	}
	keys, err := st.s.List("ckpt/")
	if err != nil {
		return nil, fmt.Errorf("%w: list %s: %w", cerr.ErrStore, st.dir, err)
	}
	plan := &PrunePlan{KeepEpoch: keepEpoch}
	// Epoch blobs older than keepEpoch go; then chunks referenced only by
	// manifests that go (the same join storage's Prune performs).
	doomedEpochs := map[int]bool{}
	referenced := map[string]bool{}
	for _, k := range keys {
		epoch, _, kind, ok := parseEpochKey(k)
		if !ok {
			continue
		}
		if epoch < keepEpoch {
			doomedEpochs[epoch] = true
			plan.Keys = append(plan.Keys, k)
			blob, err := st.s.Get(k)
			if err != nil {
				return nil, fmt.Errorf("%w: read %s: %w", cerr.ErrStore, k, err)
			}
			plan.ReclaimBytes += int64(len(blob))
			continue
		}
		if kind != "state" {
			continue
		}
		blob, err := st.s.Get(k)
		if err != nil {
			return nil, fmt.Errorf("%w: read %s: %w", cerr.ErrStore, k, err)
		}
		if !storage.IsManifest(blob) {
			continue
		}
		refs, err := storage.ParseManifest(blob)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %w", cerr.ErrStore, k, err)
		}
		for _, r := range refs {
			referenced[r.Key()] = true
		}
	}
	for _, k := range keys {
		if strings.HasPrefix(k, "ckpt/chunks/") && !referenced[k] {
			plan.Keys = append(plan.Keys, k)
			blob, err := st.s.Get(k)
			if err != nil {
				return nil, fmt.Errorf("%w: read %s: %w", cerr.ErrStore, k, err)
			}
			plan.ReclaimBytes += int64(len(blob))
		}
	}
	for e := range doomedEpochs {
		plan.Epochs = append(plan.Epochs, e)
	}
	sort.Ints(plan.Epochs)
	sort.Strings(plan.Keys)
	return plan, nil
}

// Prune applies a prune to keepEpoch (< 0 selects the committed epoch,
// as in PrunePlan): epoch blobs older than keepEpoch are deleted and
// unreferenced chunks swept. Run it only when no job is writing the
// store — the running system prunes after every commit on its own, so
// manual pruning is for stores a job left behind.
func (st *Store) Prune(keepEpoch int) error {
	if keepEpoch < 0 {
		committed, ok, err := st.Committed()
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("%w: prune: store has no commit record; pass an explicit keep epoch", cerr.ErrSpec)
		}
		keepEpoch = committed
	}
	if err := st.cs.Prune(keepEpoch); err != nil {
		return fmt.Errorf("%w: prune %s: %w", cerr.ErrStore, st.dir, err)
	}
	return nil
}

// Job is one checkpoint store found under a root directory.
type Job struct {
	// Dir is the store directory (the one to pass to Open).
	Dir string
	// CommittedEpoch/HasCommit mirror Store.Committed; Epochs counts the
	// epochs with artifacts present.
	CommittedEpoch int
	HasCommit      bool
	Epochs         int
}

// Jobs scans root for checkpoint stores: root itself and any descendant
// directory holding a ckpt/ tree. Launchers typically give each job its
// own store directory under a shared root; Jobs is how an operator finds
// them all.
func Jobs(root string) ([]Job, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() && d.Name() == "ckpt" {
			dirs = append(dirs, filepath.Dir(path))
			return filepath.SkipDir // a store's ckpt tree holds no nested stores
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("%w: scan %s: %w", cerr.ErrStore, root, err)
	}
	sort.Strings(dirs)
	jobs := make([]Job, 0, len(dirs))
	for _, dir := range dirs {
		st, err := Open(dir)
		if err != nil {
			return nil, err
		}
		j := Job{Dir: dir}
		j.CommittedEpoch, j.HasCommit, err = st.Committed()
		if err != nil {
			return nil, err
		}
		epochs, err := st.Epochs()
		if err != nil {
			return nil, err
		}
		j.Epochs = len(epochs)
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// parseEpochKey splits a "ckpt/<8-digit epoch>/<kind>.<4-digit rank>"
// key; ok is false for the commit record, chunks, and foreign keys.
func parseEpochKey(key string) (epoch, rank int, kind string, ok bool) {
	rest, found := strings.CutPrefix(key, "ckpt/")
	if !found || len(rest) < 9 || rest[8] != '/' {
		return 0, 0, "", false
	}
	epoch, err := strconv.Atoi(rest[:8])
	if err != nil {
		return 0, 0, "", false
	}
	name := rest[9:]
	kind, suffix, found := strings.Cut(name, ".")
	if !found || (kind != "state" && kind != "log") {
		return 0, 0, "", false
	}
	rank, err = strconv.Atoi(suffix)
	if err != nil {
		return 0, 0, "", false
	}
	return epoch, rank, kind, true
}
