package ccift_test

// The cross-substrate stats contract: a distributed run's per-rank
// counters are not approximations streamed from afar — for everything the
// protocol determines (message counts, bytes, piggyback traffic,
// checkpoints taken and their serialized size), the numbers a worker
// process reports over its stats pipe must be byte-identical to what the
// in-process engine reads out of the same program. Timing-dependent
// counters (blocked/flush durations, late-message races) are exempt.

import "testing"

func TestStatsByteComparableAcrossSubstrates(t *testing.T) {
	inproc := launchBoth(t, false)
	dist := launchBoth(t, true)

	if len(inproc.PerRank) != confRanks || len(dist.PerRank) != confRanks {
		t.Fatalf("PerRank lengths: in-process %d, distributed %d, want %d",
			len(inproc.PerRank), len(dist.PerRank), confRanks)
	}
	for r := 0; r < confRanks; r++ {
		a, b := inproc.PerRank[r], dist.PerRank[r]
		if a.Rank != r || b.Rank != r {
			t.Fatalf("PerRank[%d] tagged ranks %d (in-process) / %d (distributed)", r, a.Rank, b.Rank)
		}
		type counter struct {
			name     string
			ip, dist int64
		}
		deterministic := []counter{
			{"MessagesSent", a.Stats.MessagesSent, b.Stats.MessagesSent},
			{"BytesSent", a.Stats.BytesSent, b.Stats.BytesSent},
			{"PiggybackBytes", a.Stats.PiggybackBytes, b.Stats.PiggybackBytes},
		}
		for _, c := range deterministic {
			if c.ip != c.dist {
				t.Errorf("rank %d %s: in-process %d != distributed %d", r, c.name, c.ip, c.dist)
			}
			if c.ip == 0 {
				t.Errorf("rank %d %s: zero on a fault-free full-mode run", r, c.name)
			}
		}
		// Checkpoint counters are throughput-gated, not byte-identical: the
		// initiator only requests a new checkpoint after the previous commit
		// completes, so a slower substrate fits fewer rounds into the same
		// program, and gob's varint sizes shift by a byte or two with the
		// exact op each checkpoint lands on. They must still be nonzero —
		// checkpoints demonstrably flowed over the stats pipe.
		if a.Stats.CheckpointsTaken == 0 || b.Stats.CheckpointsTaken == 0 ||
			a.Stats.CheckpointBytes == 0 || b.Stats.CheckpointBytes == 0 {
			t.Errorf("rank %d checkpoint counters zero on a fault-free full-mode run (in-process %d/%d bytes, distributed %d/%d bytes)",
				r, a.Stats.CheckpointsTaken, a.Stats.CheckpointBytes, b.Stats.CheckpointsTaken, b.Stats.CheckpointBytes)
		}
	}
	// The merged totals must agree too (Result.Stats is the same counters,
	// unattributed).
	if len(inproc.Stats) != len(dist.Stats) {
		t.Fatalf("Stats lengths differ: %d vs %d", len(inproc.Stats), len(dist.Stats))
	}
	var ipSent, dSent int64
	for r := range inproc.Stats {
		ipSent += inproc.Stats[r].MessagesSent
		dSent += dist.Stats[r].MessagesSent
	}
	if ipSent != dSent {
		t.Errorf("total MessagesSent: in-process %d != distributed %d", ipSent, dSent)
	}
}
