//go:build !race

package ccift_test

const raceEnabled = false
