package ccift_test

// Typed messaging and state: round trips for every element type, wire
// compatibility with the v0 F64 helpers, the mismatched-element-size
// diagnostic, and Reg-based state surviving a rollback.

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"ccift"
)

// launch2 runs prog on two ranks with the protocol fully active.
func launch2(t *testing.T, prog ccift.Program) *ccift.Result {
	t.Helper()
	res, err := ccift.Launch(context.Background(), ccift.NewSpec(
		ccift.WithRanks(2), ccift.WithMode(ccift.Full), ccift.WithEveryN(3),
	), prog)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func roundTrip[T ccift.Element](t *testing.T, in []T) {
	t.Helper()
	res := launch2(t, func(r *ccift.Rank) (any, error) {
		if r.Rank() == 0 {
			ccift.Send(r, 1, 7, in)
			return nil, nil
		}
		return ccift.Recv[T](r, 0, 7), nil
	})
	if !reflect.DeepEqual(res.Values[1], in) {
		t.Fatalf("round trip %v -> %v", in, res.Values[1])
	}
}

func TestTypedRoundTrips(t *testing.T) {
	roundTrip(t, []byte{0, 1, 254, 255})
	roundTrip(t, []int16{-32768, -1, 0, 32767})
	roundTrip(t, []uint16{0, 1, 65535})
	roundTrip(t, []int32{-1 << 31, -7, 0, 1<<31 - 1})
	roundTrip(t, []uint32{0, 7, 1<<32 - 1})
	roundTrip(t, []int64{math.MinInt64, -1, 0, math.MaxInt64})
	roundTrip(t, []uint64{0, 1, math.MaxUint64})
	roundTrip(t, []float32{-1.5, 0, float32(math.Inf(1)), math.MaxFloat32})
	roundTrip(t, []float64{1.5, -2.25, 1e300, 0})
	roundTrip(t, []float64{}) // empty payloads must survive too
}

// TestTypedWireCompatibility pins that Send[float64] and SendF64 produce
// the identical wire format, in both directions.
func TestTypedWireCompatibility(t *testing.T) {
	xs := []float64{3.5, -0.25, 1e-300}
	res := launch2(t, func(r *ccift.Rank) (any, error) {
		if r.Rank() == 0 {
			ccift.Send(r, 1, 1, xs) // typed send ...
			r.SendF64(1, 2, xs)     // ... and v0 send
			return nil, nil
		}
		a := r.RecvF64(0, 1)              // ... received by the v0 helper
		b := ccift.Recv[float64](r, 0, 2) // ... and by the typed front end
		return [2][]float64{a, b}, nil
	})
	got := res.Values[1].([2][]float64)
	if !reflect.DeepEqual(got[0], xs) || !reflect.DeepEqual(got[1], xs) {
		t.Fatalf("cross-decoding mismatch: %v / %v, want %v", got[0], got[1], xs)
	}
}

// TestTypedSizeMismatchPanics pins the diagnostic for decoding a payload
// with the wrong element type.
func TestTypedSizeMismatchPanics(t *testing.T) {
	_, err := ccift.Launch(context.Background(), ccift.NewSpec(ccift.WithRanks(2)),
		func(r *ccift.Rank) (any, error) {
			if r.Rank() == 0 {
				ccift.Send(r, 1, 1, []byte{1, 2, 3}) // 3 bytes: not a float64 vector
				return nil, nil
			}
			ccift.Recv[float64](r, 0, 1)
			return nil, nil
		})
	if err == nil || !strings.Contains(err.Error(), "not a multiple of the element size") {
		t.Fatalf("err = %v, want the element-size diagnostic", err)
	}
}

// TestRegSurvivesRollback pins the typed state path end to end: values
// held through Reg pointers must be restored from the checkpoint exactly
// like Register'd variables (they share the VDS machinery).
func TestRegSurvivesRollback(t *testing.T) {
	prog := func(r *ccift.Rank) (any, error) {
		it := ccift.Reg[int](r, "it")
		acc := ccift.Reg[float64](r, "acc")
		hist := ccift.Reg[[]int32](r, "hist")
		for ; *it < 12; *it++ {
			r.PotentialCheckpoint()
			part := ccift.Allreduce(r, []float64{float64(r.Rank() + 1)}, ccift.SumF64)
			*acc += part[0]
			*hist = append(*hist, int32(*it))
			r.Touch("hist") // append rebinds/mutates: write intent for incremental freeze
		}
		return fmt.Sprintf("%v/%v", *acc, *hist), nil
	}
	ref, err := ccift.Launch(context.Background(), ccift.NewSpec(
		ccift.WithRanks(2), ccift.WithMode(ccift.Full), ccift.WithEveryN(4)), prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ccift.Launch(context.Background(), ccift.NewSpec(
		ccift.WithRanks(2), ccift.WithMode(ccift.Full), ccift.WithEveryN(4),
		ccift.WithFailures(ccift.Failure{Rank: 1, AtOp: 40})), prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", res.Restarts)
	}
	if !reflect.DeepEqual(res.Values, ref.Values) {
		t.Fatalf("recovered values %v != fault-free %v", res.Values, ref.Values)
	}
}
