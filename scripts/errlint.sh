#!/bin/sh
# errlint: keep the error taxonomy intact in internal/.
#
# Every error that escapes ccift.Launch must match exactly one ccift.Err*
# sentinel via errors.Is (see errors.go and internal/cerr). That chain
# survives only if intermediate layers wrap causes with %w — a fmt.Errorf
# that formats an underlying error with %v/%s flattens it to a string and
# silently drops the category.
#
# Root-cause constructions (a brand-new error with nothing to wrap) are
# legitimate and are grandfathered by count: BASELINE is the number of
# non-%w fmt.Errorf calls in internal/ at the time the taxonomy landed.
# New code must not push the count above it — wrap with %w, or construct
# the error where it is categorized. If you removed one, lower BASELINE.
set -eu
cd "$(dirname "$0")/.."

BASELINE=58

offenders=$(grep -rn --include='*.go' 'fmt\.Errorf' internal \
	| grep -v '_test\.go:' \
	| grep -v '%w' || true)
count=$(printf '%s' "$offenders" | grep -c . || true)

echo "errlint: $count fmt.Errorf without %w in internal/ (baseline $BASELINE)"
if [ "$count" -gt "$BASELINE" ]; then
	echo "errlint: FAIL — new fmt.Errorf without %w in internal/:" >&2
	echo "$offenders" >&2
	echo "errlint: wrap the cause with %w so its ccift.Err* category survives," >&2
	echo "errlint: or lower BASELINE in scripts/errlint.sh if you removed some." >&2
	exit 1
fi
if [ "$count" -lt "$BASELINE" ]; then
	echo "errlint: note — count dropped below baseline; consider lowering BASELINE to $count"
fi
