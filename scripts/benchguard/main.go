// Command benchguard is CI's perf-regression gate for the incremental
// checkpoint path: it compares a fresh BenchmarkCheckpointDirtyFraction
// run against the committed BENCH_pr9.json baseline and fails (exit 1)
// when the 10%-dirty numbers regress by more than the threshold.
//
//	go test -bench CheckpointDirtyFraction -run '^$' -benchtime 2x . | tee bench.txt
//	go run ./scripts/benchguard -baseline BENCH_pr9.json -bench bench.txt
//
// Two checks per layout (heap-block and paged-VDS):
//
//   - copied-B/ckpt of the incremental variant must not exceed the
//     baseline by more than the threshold. Copy volume is deterministic
//     (it is the sharing math, not the machine), so any growth is a real
//     dirty-tracking regression.
//   - the blocked-ns ratio incremental/full from the SAME run must not
//     exceed the baseline's ratio by more than the threshold. Comparing
//     the ratio rather than absolute nanoseconds keeps the gate
//     meaningful on CI runners faster or slower than the machine that
//     recorded the baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type entry struct {
	BlockedNs float64 `json:"blocked_ns_per_ckpt"`
	CopiedB   float64 `json:"copied_B_per_ckpt"`
}

type baseline struct {
	DirtyFraction struct {
		Full map[string]entry `json:"full_freeze"`
		Incr map[string]entry `json:"incremental"`
	} `json:"checkpoint_dirty_fraction"`
}

// pairs of (full variant, incremental variant) guarded at 10% dirty.
var guarded = [][2]string{
	{"full", "incr"},
	{"full-vds", "incr-vds"},
}

const benchPrefix = "BenchmarkCheckpointDirtyFraction/state=16384KB/dirty=10%/"

var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	basePath := flag.String("baseline", "BENCH_pr9.json", "committed baseline JSON")
	benchPath := flag.String("bench", "", "go test -bench output to check (required)")
	threshold := flag.Float64("threshold", 0.25, "allowed fractional regression")
	flag.Parse()
	if *benchPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -bench is required")
		os.Exit(2)
	}

	raw, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: parse %s: %v\n", *basePath, err)
		os.Exit(2)
	}

	fresh, err := parseBench(*benchPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}

	failed := false
	for _, pair := range guarded {
		fullName, incrName := benchPrefix+pair[0], benchPrefix+pair[1]
		fullFresh, ok1 := fresh[fullName]
		incrFresh, ok2 := fresh[incrName]
		if !ok1 || !ok2 {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: variants missing from %s (want %s and %s)\n",
				pair[1], *benchPath, fullName, incrName)
			failed = true
			continue
		}
		fullBase, ok1 := base.DirtyFraction.Full[fullName]
		incrBase, ok2 := base.DirtyFraction.Incr[incrName]
		if !ok1 || !ok2 {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: variants missing from baseline %s\n", pair[1], *basePath)
			failed = true
			continue
		}

		// Deterministic copy volume: any growth is a tracking regression.
		copyLimit := incrBase.CopiedB * (1 + *threshold)
		if incrFresh.CopiedB > copyLimit {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s copied-B/ckpt = %.0f, baseline %.0f (limit %.0f): dirty tracking copies more than it used to\n",
				pair[1], incrFresh.CopiedB, incrBase.CopiedB, copyLimit)
			failed = true
		} else {
			fmt.Printf("benchguard: ok   %s copied-B/ckpt %.0f <= %.0f\n", pair[1], incrFresh.CopiedB, copyLimit)
		}

		// Machine-normalized blocked time: incremental/full ratio.
		baseRatio := incrBase.BlockedNs / fullBase.BlockedNs
		freshRatio := incrFresh.BlockedNs / fullFresh.BlockedNs
		ratioLimit := baseRatio * (1 + *threshold)
		if freshRatio > ratioLimit {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s blocked-ns ratio vs %s = %.3f, baseline %.3f (limit %.3f): the incremental freeze blocks relatively longer than the baseline\n",
				pair[1], pair[0], freshRatio, baseRatio, ratioLimit)
			failed = true
		} else {
			fmt.Printf("benchguard: ok   %s/%s blocked-ns ratio %.3f <= %.3f\n", pair[1], pair[0], freshRatio, ratioLimit)
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchguard: all dirty-fraction checks within threshold")
}

// parseBench extracts per-benchmark metrics from `go test -bench` output,
// keeping the best (minimum) value of each metric across -count repeats.
func parseBench(path string) (map[string]entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]entry)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "BenchmarkCheckpointDirtyFraction/") {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		e, seen := out[name]
		// Metrics are (value, unit) pairs after the iteration count.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "blocked-ns/ckpt":
				if !seen || v < e.BlockedNs {
					e.BlockedNs = v
				}
			case "copied-B/ckpt":
				if !seen || v < e.CopiedB {
					e.CopiedB = v
				}
			}
		}
		out[name] = e
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no BenchmarkCheckpointDirtyFraction lines in %s", path)
	}
	return out, nil
}
