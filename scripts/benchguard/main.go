// Command benchguard is CI's perf-regression gate. It compares a fresh
// benchmark run against a committed BENCH_prN.json baseline and fails
// (exit 1) when the gated metrics regress by more than the threshold.
//
// Two gates, selected with -gate:
//
//	go test -bench CheckpointDirtyFraction -run '^$' -benchtime 2x . | tee bench.txt
//	go run ./scripts/benchguard -gate dirty-fraction -baseline BENCH_pr9.json -bench bench.txt
//
//	go test -bench RecoveryLatency -run '^$' -benchtime 1x . | tee bench.txt
//	go run ./scripts/benchguard -gate recovery -baseline BENCH_pr10.json -bench bench.txt
//
// dirty-fraction checks per layout (heap-block and paged-VDS) at 10% dirty:
//
//   - copied-B/ckpt of the incremental variant must not exceed the
//     baseline by more than the threshold. Copy volume is deterministic
//     (it is the sharing math, not the machine), so any growth is a real
//     dirty-tracking regression.
//   - the blocked-ns ratio incremental/full from the SAME run must not
//     exceed the baseline's ratio by more than the threshold. Comparing
//     the ratio rather than absolute nanoseconds keeps the gate
//     meaningful on CI runners faster or slower than the machine that
//     recorded the baseline.
//
// recovery checks every BenchmarkRecoveryLatency cell with world >= 64
// (at world=8 the dead rank's fixed state re-read dominates the
// per-survivor average, so the asymptotic shape is invisible):
//
//   - reads/survivor must not exceed the baseline by more than the
//     threshold. Localized recovery keeps this O(1); a return to
//     every-rank-scans-every-rank metadata reads is O(world) per
//     survivor and blows the limit by orders of magnitude.
//   - reads/recovery likewise. Store reads on the simulated substrate
//     are deterministic given the seed, so both are tight gates;
//     wall-clock recover-ms is machine-dependent and not gated.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type entry struct {
	BlockedNs float64 `json:"blocked_ns_per_ckpt"`
	CopiedB   float64 `json:"copied_B_per_ckpt"`
}

type recoveryEntry struct {
	ReadsPerSurvivor float64 `json:"reads_per_survivor"`
	ReadsPerRecovery float64 `json:"reads_per_recovery"`
}

type baseline struct {
	DirtyFraction struct {
		Full map[string]entry `json:"full_freeze"`
		Incr map[string]entry `json:"incremental"`
	} `json:"checkpoint_dirty_fraction"`
	Recovery map[string]recoveryEntry `json:"recovery_latency"`
}

// pairs of (full variant, incremental variant) guarded at 10% dirty.
var guarded = [][2]string{
	{"full", "incr"},
	{"full-vds", "incr-vds"},
}

const dirtyPrefix = "BenchmarkCheckpointDirtyFraction/state=16384KB/dirty=10%/"

var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	gate := flag.String("gate", "dirty-fraction", "which gate to run: dirty-fraction or recovery")
	basePath := flag.String("baseline", "BENCH_pr9.json", "committed baseline JSON")
	benchPath := flag.String("bench", "", "go test -bench output to check (required)")
	threshold := flag.Float64("threshold", 0.25, "allowed fractional regression")
	flag.Parse()
	if *benchPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -bench is required")
		os.Exit(2)
	}

	raw, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: parse %s: %v\n", *basePath, err)
		os.Exit(2)
	}

	var failed bool
	switch *gate {
	case "dirty-fraction":
		failed = gateDirtyFraction(base, *benchPath, *threshold)
	case "recovery":
		failed = gateRecovery(base, *basePath, *benchPath, *threshold)
	default:
		fmt.Fprintf(os.Stderr, "benchguard: unknown -gate %q (want dirty-fraction or recovery)\n", *gate)
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("benchguard: all %s checks within threshold\n", *gate)
}

func gateDirtyFraction(base baseline, benchPath string, threshold float64) bool {
	fresh, err := parseBench(benchPath, "BenchmarkCheckpointDirtyFraction/")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	failed := false
	for _, pair := range guarded {
		fullName, incrName := dirtyPrefix+pair[0], dirtyPrefix+pair[1]
		fullFresh, ok1 := fresh[fullName]
		incrFresh, ok2 := fresh[incrName]
		if !ok1 || !ok2 {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: variants missing from %s (want %s and %s)\n",
				pair[1], benchPath, fullName, incrName)
			failed = true
			continue
		}
		fullBase, ok1 := base.DirtyFraction.Full[fullName]
		incrBase, ok2 := base.DirtyFraction.Incr[incrName]
		if !ok1 || !ok2 {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: variants missing from baseline\n", pair[1])
			failed = true
			continue
		}

		// Deterministic copy volume: any growth is a tracking regression.
		copyLimit := incrBase.CopiedB * (1 + threshold)
		if v := incrFresh["copied-B/ckpt"]; v > copyLimit {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s copied-B/ckpt = %.0f, baseline %.0f (limit %.0f): dirty tracking copies more than it used to\n",
				pair[1], v, incrBase.CopiedB, copyLimit)
			failed = true
		} else {
			fmt.Printf("benchguard: ok   %s copied-B/ckpt %.0f <= %.0f\n", pair[1], v, copyLimit)
		}

		// Machine-normalized blocked time: incremental/full ratio.
		baseRatio := incrBase.BlockedNs / fullBase.BlockedNs
		freshRatio := incrFresh["blocked-ns/ckpt"] / fullFresh["blocked-ns/ckpt"]
		ratioLimit := baseRatio * (1 + threshold)
		if freshRatio > ratioLimit {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s blocked-ns ratio vs %s = %.3f, baseline %.3f (limit %.3f): the incremental freeze blocks relatively longer than the baseline\n",
				pair[1], pair[0], freshRatio, baseRatio, ratioLimit)
			failed = true
		} else {
			fmt.Printf("benchguard: ok   %s/%s blocked-ns ratio %.3f <= %.3f\n", pair[1], pair[0], freshRatio, ratioLimit)
		}
	}
	return failed
}

// worldPat extracts the world size from a RecoveryLatency cell name.
var worldPat = regexp.MustCompile(`world=(\d+)`)

func gateRecovery(base baseline, basePath, benchPath string, threshold float64) bool {
	fresh, err := parseBench(benchPath, "BenchmarkRecoveryLatency/")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	if len(base.Recovery) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: baseline %s has no recovery_latency section\n", basePath)
		os.Exit(2)
	}
	names := make([]string, 0, len(base.Recovery))
	for name := range base.Recovery {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	checked := 0
	for _, name := range names {
		m := worldPat.FindStringSubmatch(name)
		if m == nil {
			continue
		}
		if world, _ := strconv.Atoi(m[1]); world < 64 {
			continue // tiny worlds: the dead rank's fixed reads dominate the average
		}
		b := base.Recovery[name]
		f, ok := fresh[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s missing from %s\n", name, benchPath)
			failed = true
			continue
		}
		checked++
		for _, metric := range []struct {
			unit string
			base float64
		}{
			{"reads/survivor", b.ReadsPerSurvivor},
			{"reads/recovery", b.ReadsPerRecovery},
		} {
			limit := metric.base * (1 + threshold)
			if v := f[metric.unit]; v > limit {
				fmt.Fprintf(os.Stderr, "benchguard: FAIL %s %s = %.3f, baseline %.3f (limit %.3f): recovery touches the store more than the localized baseline\n",
					name, metric.unit, v, metric.base, limit)
				failed = true
			} else {
				fmt.Printf("benchguard: ok   %s %s %.3f <= %.3f\n", name, metric.unit, f[metric.unit], limit)
			}
		}
	}
	if checked == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: no gated recovery cells found (baseline %s vs %s)\n", basePath, benchPath)
		os.Exit(2)
	}
	return failed
}

// parseBench extracts per-benchmark metrics from `go test -bench` output
// lines whose name starts with prefix, keeping the best (minimum) value
// of each metric across -count repeats.
func parseBench(path, prefix string) (map[string]map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], prefix) {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		e := out[name]
		if e == nil {
			e = make(map[string]float64)
			out[name] = e
		}
		// Metrics are (value, unit) pairs after the iteration count.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			if old, seen := e[unit]; !seen || v < old {
				e[unit] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no %s lines in %s", prefix, path)
	}
	return out, nil
}
