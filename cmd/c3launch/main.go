// Command c3launch runs a benchmark application as a genuinely distributed
// job: one OS process per rank, wire messages over TCP, checkpoints in a
// shared on-disk store. A -kill flag delivers a real SIGKILL to the doomed
// rank's process; the survivors detect the death (connection reset, then
// heartbeat timeout), exit, and c3launch re-spawns the incarnation, which
// restores itself from the last committed global checkpoint.
//
// Usage:
//
//	c3launch -app laplace -ranks 4 -size 64 -iters 40 -every 10
//	c3launch -app laplace -ranks 4 -kill 2@100        # rank 2's process is
//	                                                  # SIGKILLed at its op 100
//	c3launch -app cg -store /tmp/ckpts -kill 2@400 -kill 1@900
//
// c3launch is a thin wrapper over ccift.Launch with WithDistributed: the
// same binary serves as the worker, because each re-exec'd worker process
// re-enters the identical Launch call, which detects the worker
// environment and runs the single-rank role instead of launching.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"ccift"
	"ccift/internal/apps"
)

func main() {
	app := flag.String("app", "laplace", "application: cg, laplace, neurosys")
	ranks := flag.Int("ranks", 4, "number of worker processes")
	size := flag.Int("size", 0, "problem size (matrix/grid edge; neuron-grid edge for neurosys)")
	iters := flag.Int("iters", 0, "iterations")
	every := flag.Int("every", 0, "checkpoint every N PotentialCheckpoint calls on the initiator")
	interval := flag.Duration("interval", 0, "checkpoint on a wall-clock interval")
	storeDir := flag.String("store", "", "shared checkpoint directory (default: a scratch dir)")
	metricsAddr := flag.String("metrics", "", "serve live Prometheus metrics at this address (e.g. :9090) on the launcher for the duration of the run")
	detector := flag.Duration("detector", 2*time.Second, "heartbeat suspicion timeout")
	seed := flag.Int64("seed", 0, "base seed for application randomness")
	maxRestarts := flag.Int("max-restarts", 10, "bound on incarnation re-spawns")
	timeout := flag.Duration("timeout", 0, "cancel the job after this long (0: no deadline)")
	verbose := flag.Bool("v", false, "log spawn/exit events")
	syncCkpt := flag.Bool("sync", false, "blocking checkpoint writes (the Figure 8 baseline) instead of the async pipeline")
	incremental := flag.Bool("incremental", true, "dirty-region freeze (the default): copy only regions the app touched since the last checkpoint; -incremental=false re-copies the whole state every checkpoint and waives the Touch contract")
	crossCheck := flag.Bool("crosscheck", false, "freeze verifier debug mode: fail the run, naming the variable, if a mutation escaped Touch/TouchRange (costs a full state encode per checkpoint)")
	flushBW := flag.Float64("flushbw", 0, "cap checkpoint flush bandwidth in bytes/sec on top of the adaptive governor (0: no fixed cap)")
	wholeWorld := flag.Bool("whole-world", false, "disable localized recovery: re-exec every rank after a death instead of respawning only the dead ranks (the pre-localized fallback)")
	var kills apps.KillFlag
	flag.Var(&kills, "kill", "rank@op real-SIGKILL failure (repeatable; i-th flag = i-th incarnation)")
	flag.Parse()

	prog, stateBytes, err := apps.Build(*app, *ranks, *size, *iters)
	if err != nil {
		apps.Fail("c3launch", fmt.Errorf("%w: %w", ccift.ErrSpec, err))
	}

	everyN, intv, err := apps.ResolveTrigger(*every, *interval)
	if err != nil {
		apps.Fail("c3launch", fmt.Errorf("%w: %w", ccift.ErrSpec, err))
	}
	opts := []ccift.Option{
		ccift.WithRanks(*ranks),
		ccift.WithMode(ccift.Full),
		ccift.WithFailures(kills...),
		ccift.WithSeed(*seed),
		ccift.WithMaxRestarts(*maxRestarts),
		ccift.WithAsyncCheckpoint(!*syncCkpt),
		ccift.WithIncrementalFreeze(*incremental),
		ccift.WithDistributed(ccift.Distributed{
			StoreDir:        *storeDir,
			DetectorTimeout: *detector,
			Verbose:         *verbose,
		}),
	}
	if *crossCheck {
		opts = append(opts, ccift.WithFreezeCrossCheck())
	}
	if *wholeWorld {
		opts = append(opts, ccift.WithWholeWorldRestart())
	}
	if *flushBW > 0 {
		opts = append(opts, ccift.WithFlushBandwidth(*flushBW))
	}
	if *metricsAddr != "" {
		opts = append(opts, ccift.WithMetricsAddr(*metricsAddr))
	}
	if intv > 0 {
		opts = append(opts, ccift.WithInterval(intv))
	} else {
		opts = append(opts, ccift.WithEveryN(everyN))
	}
	spec := ccift.NewSpec(opts...)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if !ccift.IsWorker() {
		fmt.Printf("c3launch: %s on %d rank processes, ~%s application state per rank, %d scheduled SIGKILL(s)\n",
			*app, *ranks, apps.HumanBytes(stateBytes), len(kills))
	}
	start := time.Now()
	res, err := ccift.Launch(ctx, spec, prog) // in a worker process this call never returns
	if err != nil {
		apps.Fail("c3launch", err)
	}
	fmt.Print(apps.Summary(res.Values, res.Restarts, res.RecoveredEpochs, time.Since(start)))

	// The workers' protocol counters stream back to this launcher, so the
	// distributed substrate reports the same stats line as c3run.
	if len(res.PerRank) > 0 {
		var total ccift.Stats
		for _, pr := range res.PerRank {
			total.Add(pr.Stats)
		}
		fmt.Printf("stats: %d msgs (%s), %d local checkpoints (%s), %d late logged (%s logs), %d replayed, %d sends suppressed\n",
			total.MessagesSent, apps.HumanBytes(total.BytesSent),
			total.CheckpointsTaken, apps.HumanBytes(total.CheckpointBytes),
			total.LateLogged, apps.HumanBytes(total.LogBytes),
			total.ReplayedLate, total.SuppressedSends)
	}
}
