// Command c3launch runs a benchmark application as a genuinely distributed
// job: one OS process per rank, wire messages over TCP, checkpoints in a
// shared on-disk store. A -kill flag delivers a real SIGKILL to the doomed
// rank's process; the survivors detect the death (connection reset, then
// heartbeat timeout), exit, and c3launch re-spawns the incarnation, which
// restores itself from the last committed global checkpoint.
//
// Usage:
//
//	c3launch -app laplace -ranks 4 -size 64 -iters 40 -every 10
//	c3launch -app laplace -ranks 4 -kill 2@100        # rank 2's process is
//	                                                  # SIGKILLed at its op 100
//	c3launch -app cg -store /tmp/ckpts -kill 2@400 -kill 1@900
//
// The same binary serves as the worker: c3launch re-execs itself with the
// CCIFT_WORKER environment set (rank, world size, incarnation, rendezvous
// directory, store directory), and the worker half builds its world from
// that environment instead of spawning goroutines.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ccift/internal/apps"
	"ccift/internal/launch"
)

type killList []launch.KillSpec

func (k *killList) String() string { return fmt.Sprint(*k) }

// Set parses rank@op; the i-th -kill flag applies to incarnation i, so a
// sequence of flags exercises recovery from recovery.
func (k *killList) Set(v string) error {
	rank, op, ok := strings.Cut(v, "@")
	if !ok {
		return fmt.Errorf("want rank@op, got %q", v)
	}
	r, err := strconv.Atoi(rank)
	if err != nil {
		return err
	}
	o, err := strconv.ParseInt(op, 10, 64)
	if err != nil {
		return err
	}
	*k = append(*k, launch.KillSpec{Rank: r, AtOp: o, Incarnation: len(*k)})
	return nil
}

func main() {
	app := flag.String("app", "laplace", "application: cg, laplace, neurosys")
	ranks := flag.Int("ranks", 4, "number of worker processes")
	size := flag.Int("size", 0, "problem size (matrix/grid edge; neuron-grid edge for neurosys)")
	iters := flag.Int("iters", 0, "iterations")
	every := flag.Int("every", 0, "checkpoint every N PotentialCheckpoint calls on the initiator")
	interval := flag.Duration("interval", 0, "checkpoint on a wall-clock interval")
	storeDir := flag.String("store", "", "shared checkpoint directory (default: a scratch dir)")
	detector := flag.Duration("detector", 2*time.Second, "heartbeat suspicion timeout")
	seed := flag.Int64("seed", 0, "base seed for application randomness")
	maxRestarts := flag.Int("max-restarts", 10, "bound on incarnation re-spawns")
	verbose := flag.Bool("v", false, "log spawn/exit events")
	var kills killList
	flag.Var(&kills, "kill", "rank@op real-SIGKILL failure (repeatable; i-th flag = i-th incarnation)")
	flag.Parse()

	prog, stateBytes, err := apps.Build(*app, *ranks, *size, *iters)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c3launch: %v\n", err)
		os.Exit(2)
	}
	everyN := *every
	if everyN == 0 && *interval == 0 {
		everyN = 25
	}

	if launch.IsWorker() {
		launch.WorkerMain(launch.WorkerApp{
			Prog:     prog,
			EveryN:   everyN,
			Interval: *interval,
			Seed:     *seed,
		})
	}

	fmt.Printf("c3launch: %s on %d rank processes, ~%s application state per rank, %d scheduled SIGKILL(s)\n",
		*app, *ranks, launch.HumanBytes(stateBytes), len(kills))
	start := time.Now()
	res, err := launch.Run(launch.Config{
		Args:            os.Args[1:],
		Ranks:           *ranks,
		StoreDir:        *storeDir,
		Kills:           kills,
		MaxRestarts:     *maxRestarts,
		DetectorTimeout: *detector,
		Verbose:         *verbose,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "c3launch: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Summary(time.Since(start)))
}
