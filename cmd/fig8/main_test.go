package main

import (
	"context"
	"flag"
	"os"
	"testing"

	"ccift/internal/harness"
	"ccift/internal/launch"
	"ccift/internal/protocol"
)

// TestMain lets the test binary serve as its own -distributed worker: the
// launcher re-execs it with the -w* cell flags, which the real binary
// parses in main(). main() does not run under `go test`, so the worker
// role is dispatched here, before any test machinery touches os.Args.
func TestMain(m *testing.M) {
	if launch.IsWorker() {
		fs := flag.NewFlagSet("fig8-worker", flag.ExitOnError)
		wapp := fs.String("wapp", "", "")
		wranks := fs.Int("wranks", 1, "")
		wsize := fs.Int("wsize", 0, "")
		witers := fs.Int("witers", 0, "")
		wevery := fs.Int("wevery", 0, "")
		wmode := fs.String("wmode", "", "")
		wasync := fs.Bool("wasync", false, "")
		if err := fs.Parse(os.Args[1:]); err != nil {
			os.Exit(2)
		}
		workerMain(*wapp, *wranks, *wsize, *witers, *wevery, *wmode, *wasync) // never returns
	}
	os.Exit(m.Run())
}

// TestDistributedCellStats pins the fig8 -distributed stats regression:
// the per-version tables used to render with empty checkpoint-volume
// columns because worker counters never crossed the process boundary.
// A smoke-scale Full-mode cell must now report positive protocol stats,
// per rank, through the very CellRunner the sweep uses.
func TestDistributedCellStats(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	const ranks = 2
	e := harness.LaplaceExperiment(ranks, harness.Smoke)
	size := e.Sizes[0]

	cell, err := distributedRunner(exe, "laplace", ranks, false)(context.Background(), size, protocol.Full)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Checksum == "" {
		t.Error("cell has no checksum")
	}
	if cell.Checkpoints == 0 {
		t.Error("cell.Checkpoints = 0: worker stats did not cross the process boundary")
	}
	if cell.CheckpointMB == 0 {
		t.Error("cell.CheckpointMB = 0: checkpoint-volume column would render empty")
	}
}

// TestDistributedSweepPerRankMessages asserts the satellite contract
// directly: every rank of a distributed sweep cell reports
// MessagesSent > 0.
func TestDistributedSweepPerRankMessages(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	const ranks = 2
	size := harness.LaplaceExperiment(ranks, harness.Smoke).Sizes[0]
	res, err := launch.RunContext(context.Background(), launch.Config{
		Exe:   exe,
		Ranks: ranks,
		Args:  cellArgs("laplace", ranks, size, protocol.Full, false),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerRank) != ranks {
		t.Fatalf("PerRank has %d entries, want %d", len(res.PerRank), ranks)
	}
	for _, pr := range res.PerRank {
		if pr.Stats.MessagesSent == 0 {
			t.Errorf("rank %d: MessagesSent = 0", pr.Rank)
		}
	}
}
