// Command fig8 regenerates the paper's evaluation (Section 6, Figure 8):
// for each benchmark — dense Conjugate Gradient, the Laplace solver, and
// Neurosys — it runs all four program versions (unmodified, piggybacking
// only, protocol without application state, full checkpoints) at several
// problem sizes and prints the runtime comparison the paper charts,
// followed by the qualitative "shape" verdicts from the Section 6.2
// discussion.
//
// Usage:
//
//	fig8                    # all three charts at quick scale
//	fig8 -app cg            # one chart
//	fig8 -scale paper       # the paper's problem-size regime (slow)
//	fig8 -ranks 16 -repeats 3
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"ccift/internal/harness"
)

func main() {
	app := flag.String("app", "all", "benchmark: cg, laplace, neurosys, or all")
	ranks := flag.Int("ranks", 8, "number of ranks (the paper used 16)")
	repeats := flag.Int("repeats", 3, "repetitions per cell; the best run is reported")
	scaleName := flag.String("scale", "quick", "problem scale: quick or paper")
	verdicts := flag.Bool("verdicts", true, "print Section 6.2 shape verdicts")
	flag.Parse()

	var scale harness.Scale
	switch *scaleName {
	case "quick":
		scale = harness.Quick
	case "paper":
		scale = harness.Paper
	default:
		fmt.Fprintf(os.Stderr, "fig8: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	var exps []harness.Experiment
	switch *app {
	case "all":
		exps = harness.Experiments(*ranks, scale)
	case "cg":
		exps = []harness.Experiment{harness.CGExperiment(*ranks, scale)}
	case "laplace":
		exps = []harness.Experiment{harness.LaplaceExperiment(*ranks, scale)}
	case "neurosys":
		exps = []harness.Experiment{harness.NeurosysExperiment(*ranks, scale)}
	default:
		fmt.Fprintf(os.Stderr, "fig8: unknown app %q\n", *app)
		os.Exit(2)
	}

	// A sweep at -scale paper runs for minutes; ^C cancels the in-flight
	// engine run cleanly instead of leaving goroutines mid-incarnation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	failed := false
	for _, e := range exps {
		e.Repeats = *repeats
		table, err := e.RunContext(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig8: %s: %v\n", e.App, err)
			os.Exit(1)
		}
		fmt.Println(table.Render())
		if err := table.ChecksumsAgree(); err != nil {
			fmt.Fprintf(os.Stderr, "fig8: CHECKSUM MISMATCH: %v\n", err)
			failed = true
		}
		if *verdicts {
			vs := table.Verdicts()
			fmt.Print(harness.RenderVerdicts(vs))
			for _, v := range vs {
				if !v.Pass {
					failed = true
				}
			}
			fmt.Println()
		}
	}
	if failed {
		os.Exit(1)
	}
}
