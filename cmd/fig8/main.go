// Command fig8 regenerates the paper's evaluation (Section 6, Figure 8):
// for each benchmark — dense Conjugate Gradient, the Laplace solver, and
// Neurosys — it runs all four program versions (unmodified, piggybacking
// only, protocol without application state, full checkpoints) at several
// problem sizes and prints the runtime comparison the paper charts,
// followed by the qualitative "shape" verdicts from the Section 6.2
// discussion.
//
// Usage:
//
//	fig8                    # all three charts at quick scale
//	fig8 -app cg            # one chart
//	fig8 -scale paper       # the paper's problem-size regime (slow)
//	fig8 -ranks 16 -repeats 3
//	fig8 -async             # governed async pipeline instead of blocking ckpts
//	fig8 -distributed       # each cell as real OS processes over TCP
//	fig8 -distributed -short -app laplace   # the CI smoke path
//	fig8 -sim -simseed 42   # each cell over the simulated substrate
//
// With -distributed every cell spawns one worker process per rank over a
// full TCP mesh (the launcher re-execs this binary; the -w* flags are the
// worker-side cell parameters and not meant for direct use), so the
// paper's overhead curves exist for real processes, not just goroutines.
//
// With -sim every cell runs over the deterministic simulated network
// (virtual time, seeded schedules): the sweep proves all four program
// versions compute identical checksums under simulated latency, and the
// same -simseed replays the same run bit-for-bit. Wall timings then
// measure the simulator, not the paper's overheads, so shape verdicts are
// skipped like -distributed's.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"ccift"
	"ccift/internal/apps"
	"ccift/internal/harness"
	"ccift/internal/launch"
	"ccift/internal/protocol"
)

func main() {
	app := flag.String("app", "all", "benchmark: cg, laplace, neurosys, or all")
	ranks := flag.Int("ranks", 8, "number of ranks (the paper used 16)")
	repeats := flag.Int("repeats", 3, "repetitions per cell; the best run is reported")
	scaleName := flag.String("scale", "quick", "problem scale: quick or paper")
	verdicts := flag.Bool("verdicts", true, "print Section 6.2 shape verdicts")
	async := flag.Bool("async", false, "measure the governed asynchronous flush pipeline instead of the paper's blocking checkpoints (see README: the default figure stays sync)")
	distributed := flag.Bool("distributed", false, "run each cell as one OS process per rank over TCP (the paper's curves on the real-process substrate)")
	simulated := flag.Bool("sim", false, "run each cell over the deterministic simulated substrate (virtual time, seeded network)")
	simSeed := flag.Int64("simseed", 1, "scenario seed for -sim; the same seed replays the same sweep")
	simLat := flag.Duration("simlat", 200*time.Microsecond, "simulated per-hop network latency for -sim")
	short := flag.Bool("short", false, "one tiny size per chart, single repeat, no verdicts: the CI smoke path")
	// Worker-side cell parameters: set by the -distributed launcher when it
	// re-execs this binary, never by hand.
	wapp := flag.String("wapp", "", "internal: worker cell application")
	wranks := flag.Int("wranks", 1, "internal: worker cell world size")
	wsize := flag.Int("wsize", 0, "internal: worker cell problem size")
	witers := flag.Int("witers", 0, "internal: worker cell iterations")
	wevery := flag.Int("wevery", 0, "internal: worker cell checkpoint trigger")
	wmode := flag.String("wmode", "", "internal: worker cell protocol mode")
	wasync := flag.Bool("wasync", false, "internal: worker cell async pipeline")
	flag.Parse()

	if launch.IsWorker() {
		workerMain(*wapp, *wranks, *wsize, *witers, *wevery, *wmode, *wasync)
	}

	var scale harness.Scale
	switch {
	case *short:
		scale = harness.Smoke
		*repeats = 1
		// Shape verdicts compare sizes; a single smoke size has none.
		*verdicts = false
	case *scaleName == "quick":
		scale = harness.Quick
	case *scaleName == "paper":
		scale = harness.Paper
	default:
		fmt.Fprintf(os.Stderr, "fig8: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	var exps []harness.Experiment
	switch *app {
	case "all":
		exps = harness.Experiments(*ranks, scale)
	case "cg":
		exps = []harness.Experiment{harness.CGExperiment(*ranks, scale)}
	case "laplace":
		exps = []harness.Experiment{harness.LaplaceExperiment(*ranks, scale)}
	case "neurosys":
		exps = []harness.Experiment{harness.NeurosysExperiment(*ranks, scale)}
	default:
		fmt.Fprintf(os.Stderr, "fig8: unknown app %q\n", *app)
		os.Exit(2)
	}

	// A sweep at -scale paper runs for minutes; ^C cancels the in-flight
	// engine run cleanly instead of leaving goroutines mid-incarnation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *distributed && *simulated {
		fmt.Fprintln(os.Stderr, "fig8: -distributed and -sim are mutually exclusive: a sweep uses one substrate")
		os.Exit(2)
	}
	if *simulated {
		fmt.Printf("fig8: simulated substrate — seed %d, %v per-hop latency, virtual time\n", *simSeed, *simLat)
		if *async {
			// The simulated substrate pins blocking checkpoints so the
			// seeded event schedule stays deterministic (see Launch).
			fmt.Println("fig8: -sim forces synchronous checkpoints; ignoring -async")
			*async = false
		}
		if *verdicts {
			// Under virtual time the wall clock measures the simulator's
			// event loop, not the paper's runtime overheads; only checksum
			// agreement across the four versions is meaningful.
			fmt.Println("fig8: -sim timings measure the simulator; skipping shape verdicts")
			*verdicts = false
		}
	}

	exe := ""
	if *distributed {
		var err error
		exe, err = os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig8: resolve worker binary: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("fig8: distributed substrate — %d worker processes per cell over TCP\n", *ranks)
		if *verdicts {
			// Cell timings include a near-constant launcher cost (process
			// spawn, mesh formation, store setup) that deflates the
			// overhead ratios the Section 6.2 thresholds were written
			// for; the distributed sweep is for checksum agreement and
			// absolute curves, not shape verdicts.
			fmt.Println("fig8: -distributed timings include per-cell launch cost; skipping shape verdicts")
			*verdicts = false
		}
	}

	if *async {
		fmt.Println("fig8: async pipeline — ranks overlap checkpoint flushes with compute (not the paper's figure; see README)")
	}

	failed := false
	for _, e := range exps {
		e.Repeats = *repeats
		e.Async = *async
		var table *harness.Table
		var err error
		switch {
		case *distributed:
			table, err = e.RunContextWith(ctx, distributedRunner(exe, e.App, *ranks, *async))
		case *simulated:
			table, err = e.RunContextWith(ctx, simRunner(*ranks, *simSeed, *simLat))
		default:
			table, err = e.RunContext(ctx)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig8: %s: %v\n", e.App, err)
			os.Exit(1)
		}
		fmt.Println(table.Render())
		if err := table.ChecksumsAgree(); err != nil {
			fmt.Fprintf(os.Stderr, "fig8: CHECKSUM MISMATCH: %v\n", err)
			failed = true
		}
		if *verdicts {
			vs := table.Verdicts()
			fmt.Print(harness.RenderVerdicts(vs))
			for _, v := range vs {
				if !v.Pass {
					failed = true
				}
			}
			fmt.Println()
		}
	}
	if failed {
		os.Exit(1)
	}
}

// distributedRunner runs one cell as a real distributed job: this binary
// re-exec'd as one worker process per rank, full TCP mesh, shared on-disk
// store under a scratch directory the launcher cleans up. The checksum is
// rank 0's result line, so ChecksumsAgree still proves the four versions
// chart the same computation.
func distributedRunner(exe, app string, ranks int, async bool) harness.CellRunner {
	return func(ctx context.Context, size harness.Size, mode protocol.Mode) (harness.Cell, error) {
		args := cellArgs(app, ranks, size, mode, async)
		start := time.Now()
		res, err := launch.RunContext(ctx, launch.Config{
			Exe:   exe,
			Args:  args,
			Ranks: ranks,
			// Worker stderr is noise in a sweep (hundreds of clean ranks);
			// hard failures still surface through the launcher's error.
			Stderr: io.Discard,
		})
		if err != nil {
			return harness.Cell{}, fmt.Errorf("distributed cell: %w", err)
		}
		elapsed := time.Since(start).Seconds()
		checksum := ""
		for _, line := range strings.Split(res.Output, "\n") {
			if v, ok := strings.CutPrefix(line, "result: "); ok {
				checksum = v
				break
			}
		}
		if checksum == "" {
			return harness.Cell{}, fmt.Errorf("distributed cell: no result line in rank 0 output %q", res.Output)
		}
		// Workers stream their protocol counters back over the stats pipe,
		// so the checkpoint-volume columns populate exactly as in-process.
		cell := harness.Cell{Mode: mode, Seconds: elapsed, Checksum: checksum}
		for _, s := range res.Stats {
			cell.Checkpoints += s.CheckpointsTaken
			cell.CheckpointMB += float64(s.CheckpointBytes) / 1e6
			cell.LogMB += float64(s.LogBytes) / 1e6
		}
		return cell, nil
	}
}

// simRunner runs one cell through the identical public Launch call over the
// simulated substrate: same program, same checkpoint trigger, but every
// message crosses the seeded discrete-event network in virtual time. The
// checksum column then proves the four versions agree under simulated
// latency too, and a repeated sweep with the same -simseed is replayable.
func simRunner(ranks int, seed int64, latency time.Duration) harness.CellRunner {
	return func(ctx context.Context, size harness.Size, mode protocol.Mode) (harness.Cell, error) {
		start := time.Now()
		res, err := ccift.Launch(ctx, ccift.NewSpec(
			ccift.WithRanks(ranks),
			ccift.WithMode(mode),
			ccift.WithEveryN(size.EveryN),
			ccift.WithInterval(size.Interval),
			ccift.WithSimulated(ccift.Scenario{Seed: seed, Latency: latency}),
		), size.Program)
		if err != nil {
			return harness.Cell{}, fmt.Errorf("simulated cell: %w", err)
		}
		cell := harness.Cell{Mode: mode, Seconds: time.Since(start).Seconds(), Checksum: res.Values[0]}
		for _, s := range res.Stats {
			cell.Checkpoints += s.CheckpointsTaken
			cell.CheckpointMB += float64(s.CheckpointBytes) / 1e6
			cell.LogMB += float64(s.LogBytes) / 1e6
		}
		return cell, nil
	}
}

// cellArgs renders one cell's parameters as the -w* worker flags.
func cellArgs(app string, ranks int, size harness.Size, mode protocol.Mode, async bool) []string {
	args := []string{
		"-wapp", app,
		"-wranks", strconv.Itoa(ranks),
		"-wsize", strconv.Itoa(size.Arg),
		"-witers", strconv.Itoa(size.Iters),
		"-wevery", strconv.Itoa(size.EveryN),
		"-wmode", mode.String(),
	}
	if async {
		args = append(args, "-wasync")
	}
	return args
}

// workerMain is the re-exec'd worker role of a -distributed sweep: rebuild
// the cell's program from the -w* flags and hand it to the launch worker
// protocol. Never returns.
func workerMain(app string, ranks, size, iters, every int, modeName string, async bool) {
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "fig8 worker: %v\n", err)
		os.Exit(1)
	}
	mode, err := harness.ParseMode(modeName)
	if err != nil {
		fail(err)
	}
	prog, _, err := apps.Build(app, ranks, size, iters)
	if err != nil {
		fail(err)
	}
	launch.WorkerMain(launch.WorkerApp{
		Prog:   prog,
		EveryN: every,
		Mode:   mode,
		// The sweep measures the paper's blocking checkpoint semantics
		// unless -async flips the cell onto the governed pipeline,
		// exactly like the in-process harness (see Experiment.runOnce).
		SyncCheckpoint: !async,
	})
}
