// Command c3run runs one of the benchmark applications under the
// checkpointing system, optionally killing ranks mid-flight to demonstrate
// rollback-recovery from the last committed global checkpoint.
//
// Usage:
//
//	c3run -app laplace -ranks 8 -size 512 -iters 200 -every 50
//	c3run -app cg -kill 2@400 -kill 1@900      # rank 2 dies at its op 400; after
//	                                           # recovery, rank 1 dies at op 900
//	c3run -app neurosys -store /tmp/ckpts      # checkpoints on disk
//	c3run -app laplace -distributed -ranks 4   # one OS process per rank over
//	                                           # TCP; -kill is a real SIGKILL
//
// The tool prints per-incarnation progress, the recovered epoch of each
// restart, and the final protocol statistics. With -distributed it defers
// to the process launcher (see cmd/c3launch), re-exec'ing itself as the
// worker binary.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ccift"
	"ccift/internal/apps"
	"ccift/internal/launch"
	"ccift/internal/trace"
)

type killList []ccift.Failure

func (k *killList) String() string { return fmt.Sprint(*k) }

// Set parses rank@op; the i-th -kill flag applies to incarnation i, so a
// sequence of flags exercises recovery from recovery.
func (k *killList) Set(v string) error {
	rank, op, ok := strings.Cut(v, "@")
	if !ok {
		return fmt.Errorf("want rank@op, got %q", v)
	}
	r, err := strconv.Atoi(rank)
	if err != nil {
		return err
	}
	o, err := strconv.ParseInt(op, 10, 64)
	if err != nil {
		return err
	}
	*k = append(*k, ccift.Failure{Rank: r, AtOp: o, Incarnation: len(*k)})
	return nil
}

func main() {
	app := flag.String("app", "laplace", "application: cg, laplace, neurosys")
	ranks := flag.Int("ranks", 8, "number of ranks")
	size := flag.Int("size", 0, "problem size (matrix/grid edge; neuron-grid edge for neurosys)")
	iters := flag.Int("iters", 0, "iterations")
	every := flag.Int("every", 0, "checkpoint every N PotentialCheckpoint calls on the initiator")
	interval := flag.Duration("interval", 0, "checkpoint on a wall-clock interval (the paper used 30s)")
	storeDir := flag.String("store", "", "checkpoint directory (default: in memory)")
	traceOut := flag.Bool("trace", false, "print a space-time diagram of protocol events")
	distributed := flag.Bool("distributed", false, "run each rank as its own OS process over TCP (kills become real SIGKILLs)")
	var kills killList
	flag.Var(&kills, "kill", "rank@op stopping failure (repeatable; i-th flag = i-th incarnation)")
	flag.Parse()

	prog, stateBytes, err := apps.Build(*app, *ranks, *size, *iters)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c3run: %v\n", err)
		os.Exit(2)
	}

	everyN := *every
	if everyN == 0 && *interval == 0 {
		everyN = 25
	}
	if launch.IsWorker() {
		// This process is one rank of a -distributed run, re-exec'd by the
		// launcher below (or by c3launch): build the world from the
		// environment and never return.
		launch.WorkerMain(launch.WorkerApp{Prog: prog, EveryN: everyN, Interval: *interval})
	}
	if *distributed {
		if *traceOut {
			fmt.Fprintln(os.Stderr, "c3run: -trace is not supported with -distributed (the recorder is in-process); ignoring")
		}
		runDistributed(*app, *ranks, stateBytes, *storeDir, kills)
		return
	}

	cfg := ccift.Config{
		Ranks:    *ranks,
		Mode:     ccift.Full,
		EveryN:   everyN,
		Interval: *interval,
		Failures: kills,
	}
	var rec *trace.Recorder
	if *traceOut {
		rec = trace.New()
		cfg.Tracer = rec
	}
	if *storeDir != "" {
		store, err := ccift.NewDiskStore(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "c3run: %v\n", err)
			os.Exit(1)
		}
		cfg.Store = store
	}

	fmt.Printf("c3run: %s on %d ranks, ~%s application state per rank, %d injected failure(s)\n",
		*app, *ranks, launch.HumanBytes(stateBytes), len(kills))
	start := time.Now()
	res, err := ccift.Run(cfg, prog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c3run: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	fmt.Printf("completed in %.2fs with %d restart(s)\n", elapsed.Seconds(), res.Restarts)
	for i, e := range res.RecoveredEpochs {
		if e < 0 {
			fmt.Printf("  restart %d: no committed checkpoint yet — restarted from the beginning\n", i+1)
		} else {
			fmt.Printf("  restart %d: recovered from global checkpoint %d\n", i+1, e)
		}
	}
	var total ccift.Stats
	for _, s := range res.Stats {
		total.MessagesSent += s.MessagesSent
		total.BytesSent += s.BytesSent
		total.CheckpointsTaken += s.CheckpointsTaken
		total.CheckpointBytes += s.CheckpointBytes
		total.LateLogged += s.LateLogged
		total.LogBytes += s.LogBytes
		total.ReplayedLate += s.ReplayedLate
		total.SuppressedSends += s.SuppressedSends
	}
	fmt.Printf("result: %v\n", res.Values[0])
	fmt.Printf("stats: %d msgs (%s), %d local checkpoints (%s), %d late logged (%s logs), %d replayed, %d sends suppressed\n",
		total.MessagesSent, launch.HumanBytes(total.BytesSent),
		total.CheckpointsTaken, launch.HumanBytes(total.CheckpointBytes),
		total.LateLogged, launch.HumanBytes(total.LogBytes),
		total.ReplayedLate, total.SuppressedSends)
	if rec != nil {
		fmt.Printf("\nprotocol event summary:\n%s", rec.Summary())
		fmt.Printf("\ntimeline (last %d events):\n%s", rec.Len(), rec.Timeline(*ranks))
	}
}

// runDistributed defers to the process launcher: one OS process per rank,
// this binary re-exec'd as the worker, kills delivered as real SIGKILLs.
func runDistributed(app string, ranks int, stateBytes int64, storeDir string, kills killList) {
	specs := make([]launch.KillSpec, len(kills))
	for i, f := range kills {
		specs[i] = launch.KillSpec{Rank: f.Rank, AtOp: f.AtOp, Incarnation: f.Incarnation}
	}
	fmt.Printf("c3run: %s on %d rank processes (distributed), ~%s application state per rank, %d scheduled SIGKILL(s)\n",
		app, ranks, launch.HumanBytes(stateBytes), len(specs))
	start := time.Now()
	res, err := launch.Run(launch.Config{
		Args:     os.Args[1:],
		Ranks:    ranks,
		StoreDir: storeDir,
		Kills:    specs,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "c3run: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Summary(time.Since(start)))
}
