// Command c3run runs one of the benchmark applications under the
// checkpointing system, optionally killing ranks mid-flight to demonstrate
// rollback-recovery from the last committed global checkpoint.
//
// Usage:
//
//	c3run -app laplace -ranks 8 -size 512 -iters 200 -every 50
//	c3run -app cg -kill 2@400 -kill 1@900      # rank 2 dies at its op 400; after
//	                                           # recovery, rank 1 dies at op 900
//	c3run -app neurosys -store /tmp/ckpts      # checkpoints on disk
//	c3run -app laplace -distributed -ranks 4   # one OS process per rank over
//	                                           # TCP; -kill is a real SIGKILL
//	c3run -app cg -timeout 30s                 # cancel the run after 30s
//
// The tool prints per-incarnation progress, the recovered epoch of each
// restart, and the final protocol statistics. It is a thin wrapper over
// ccift.Launch: one spec selects the substrate, and in a -distributed run
// the re-exec'd worker processes re-enter the very same Launch call.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"ccift"
	"ccift/internal/apps"
	"ccift/internal/trace"
)

func main() {
	app := flag.String("app", "laplace", "application: cg, laplace, neurosys")
	ranks := flag.Int("ranks", 8, "number of ranks")
	size := flag.Int("size", 0, "problem size (matrix/grid edge; neuron-grid edge for neurosys)")
	iters := flag.Int("iters", 0, "iterations")
	every := flag.Int("every", 0, "checkpoint every N PotentialCheckpoint calls on the initiator")
	interval := flag.Duration("interval", 0, "checkpoint on a wall-clock interval (the paper used 30s)")
	storeDir := flag.String("store", "", "checkpoint directory (default: in memory)")
	metricsAddr := flag.String("metrics", "", "serve live Prometheus metrics at this address (e.g. :9090) for the duration of the run")
	timeout := flag.Duration("timeout", 0, "cancel the run after this long (0: no deadline)")
	traceOut := flag.Bool("trace", false, "print a space-time diagram of protocol events")
	distributed := flag.Bool("distributed", false, "run each rank as its own OS process over TCP (kills become real SIGKILLs)")
	syncCkpt := flag.Bool("sync", false, "blocking checkpoint writes (the Figure 8 baseline) instead of the async pipeline")
	incremental := flag.Bool("incremental", true, "dirty-region freeze (the default): copy only regions the app touched since the last checkpoint; -incremental=false re-copies the whole state every checkpoint and waives the Touch contract")
	crossCheck := flag.Bool("crosscheck", false, "freeze verifier debug mode: fail the run, naming the variable, if a mutation escaped Touch/TouchRange (costs a full state encode per checkpoint)")
	flushBW := flag.Float64("flushbw", 0, "cap checkpoint flush bandwidth in bytes/sec on top of the adaptive governor (0: no fixed cap)")
	wholeWorld := flag.Bool("whole-world", false, "disable localized recovery: survivors re-read checkpoints from the store and -distributed re-execs every rank after a death (the pre-localized fallback)")
	var kills apps.KillFlag
	flag.Var(&kills, "kill", "rank@op stopping failure (repeatable; i-th flag = i-th incarnation)")
	flag.Parse()

	prog, stateBytes, err := apps.Build(*app, *ranks, *size, *iters)
	if err != nil {
		apps.Fail("c3run", fmt.Errorf("%w: %w", ccift.ErrSpec, err))
	}

	everyN, intv, err := apps.ResolveTrigger(*every, *interval)
	if err != nil {
		apps.Fail("c3run", fmt.Errorf("%w: %w", ccift.ErrSpec, err))
	}
	opts := []ccift.Option{
		ccift.WithRanks(*ranks),
		ccift.WithMode(ccift.Full),
		ccift.WithFailures(kills...),
		ccift.WithAsyncCheckpoint(!*syncCkpt),
		ccift.WithIncrementalFreeze(*incremental),
	}
	if *crossCheck {
		opts = append(opts, ccift.WithFreezeCrossCheck())
	}
	if *wholeWorld {
		opts = append(opts, ccift.WithWholeWorldRestart())
	}
	if *flushBW > 0 {
		opts = append(opts, ccift.WithFlushBandwidth(*flushBW))
	}
	if *metricsAddr != "" {
		opts = append(opts, ccift.WithMetricsAddr(*metricsAddr))
	}
	if intv > 0 {
		opts = append(opts, ccift.WithInterval(intv))
	} else {
		opts = append(opts, ccift.WithEveryN(everyN))
	}

	var rec *trace.Recorder
	if *distributed {
		if *traceOut {
			fmt.Fprintln(os.Stderr, "c3run: -trace is not supported with -distributed (the recorder is in-process); ignoring")
		}
		opts = append(opts, ccift.WithDistributed(ccift.Distributed{StoreDir: *storeDir}))
	} else {
		if *traceOut {
			rec = trace.New()
			opts = append(opts, ccift.WithTracer(rec))
		}
		if *storeDir != "" {
			store, err := ccift.NewDiskStore(*storeDir)
			if err != nil {
				apps.Fail("c3run", fmt.Errorf("%w: %w", ccift.ErrStore, err))
			}
			opts = append(opts, ccift.WithStore(store))
		}
	}
	spec := ccift.NewSpec(opts...)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if !ccift.IsWorker() {
		// Launcher side only: a -distributed worker re-executes this binary
		// and must not echo the header into the captured rank output.
		what := "ranks"
		if *distributed {
			what = "rank processes (distributed)"
		}
		fmt.Printf("c3run: %s on %d %s, ~%s application state per rank, %d injected failure(s)\n",
			*app, *ranks, what, apps.HumanBytes(stateBytes), len(kills))
	}
	start := time.Now()
	res, err := ccift.Launch(ctx, spec, prog) // in a worker process this call never returns
	if err != nil {
		apps.Fail("c3run", err)
	}
	fmt.Print(apps.Summary(res.Values, res.Restarts, res.RecoveredEpochs, time.Since(start)))

	// PerRank is populated on both substrates (distributed workers stream
	// their counters back to the launcher), so one stats path serves both.
	if len(res.PerRank) > 0 {
		var total ccift.Stats
		for _, pr := range res.PerRank {
			total.Add(pr.Stats)
		}
		fmt.Printf("stats: %d msgs (%s), %d local checkpoints (%s), %d late logged (%s logs), %d replayed, %d sends suppressed\n",
			total.MessagesSent, apps.HumanBytes(total.BytesSent),
			total.CheckpointsTaken, apps.HumanBytes(total.CheckpointBytes),
			total.LateLogged, apps.HumanBytes(total.LogBytes),
			total.ReplayedLate, total.SuppressedSends)
		if *incremental && total.CheckpointRegions > 0 {
			fmt.Printf("incremental: %s copied into frozen views (%s logical), %d/%d regions dirty across checkpoints\n",
				apps.HumanBytes(total.CheckpointBytesCopied), apps.HumanBytes(total.CheckpointBytes),
				total.CheckpointRegionsDirty, total.CheckpointRegions)
		}
	}
	if rec != nil {
		fmt.Printf("\nprotocol event summary:\n%s", rec.Summary())
		fmt.Printf("\ntimeline (last %d events):\n%s", rec.Len(), rec.Timeline(*ranks))
	}
}
