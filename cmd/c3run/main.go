// Command c3run runs one of the benchmark applications under the
// checkpointing system, optionally killing ranks mid-flight to demonstrate
// rollback-recovery from the last committed global checkpoint.
//
// Usage:
//
//	c3run -app laplace -ranks 8 -size 512 -iters 200 -every 50
//	c3run -app cg -kill 2@400 -kill 1@900      # rank 2 dies at its op 400; after
//	                                           # recovery, rank 1 dies at op 900
//	c3run -app neurosys -store /tmp/ckpts      # checkpoints on disk
//
// The tool prints per-incarnation progress, the recovered epoch of each
// restart, and the final protocol statistics.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ccift"
	"ccift/internal/apps/cg"
	"ccift/internal/apps/laplace"
	"ccift/internal/apps/neurosys"
	"ccift/internal/trace"
)

type killList []ccift.Failure

func (k *killList) String() string { return fmt.Sprint(*k) }

// Set parses rank@op; the i-th -kill flag applies to incarnation i, so a
// sequence of flags exercises recovery from recovery.
func (k *killList) Set(v string) error {
	rank, op, ok := strings.Cut(v, "@")
	if !ok {
		return fmt.Errorf("want rank@op, got %q", v)
	}
	r, err := strconv.Atoi(rank)
	if err != nil {
		return err
	}
	o, err := strconv.ParseInt(op, 10, 64)
	if err != nil {
		return err
	}
	*k = append(*k, ccift.Failure{Rank: r, AtOp: o, Incarnation: len(*k)})
	return nil
}

func main() {
	app := flag.String("app", "laplace", "application: cg, laplace, neurosys")
	ranks := flag.Int("ranks", 8, "number of ranks")
	size := flag.Int("size", 0, "problem size (matrix/grid edge; neuron-grid edge for neurosys)")
	iters := flag.Int("iters", 0, "iterations")
	every := flag.Int("every", 0, "checkpoint every N PotentialCheckpoint calls on the initiator")
	interval := flag.Duration("interval", 0, "checkpoint on a wall-clock interval (the paper used 30s)")
	storeDir := flag.String("store", "", "checkpoint directory (default: in memory)")
	traceOut := flag.Bool("trace", false, "print a space-time diagram of protocol events")
	var kills killList
	flag.Var(&kills, "kill", "rank@op stopping failure (repeatable; i-th flag = i-th incarnation)")
	flag.Parse()

	prog, stateBytes, err := buildApp(*app, *ranks, *size, *iters)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c3run: %v\n", err)
		os.Exit(2)
	}

	cfg := ccift.Config{
		Ranks:    *ranks,
		Mode:     ccift.Full,
		EveryN:   *every,
		Interval: *interval,
		Failures: kills,
	}
	if cfg.EveryN == 0 && cfg.Interval == 0 {
		cfg.EveryN = 25
	}
	var rec *trace.Recorder
	if *traceOut {
		rec = trace.New()
		cfg.Tracer = rec
	}
	if *storeDir != "" {
		store, err := ccift.NewDiskStore(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "c3run: %v\n", err)
			os.Exit(1)
		}
		cfg.Store = store
	}

	fmt.Printf("c3run: %s on %d ranks, ~%s application state per rank, %d injected failure(s)\n",
		*app, *ranks, human(stateBytes), len(kills))
	start := time.Now()
	res, err := ccift.Run(cfg, prog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c3run: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	fmt.Printf("completed in %.2fs with %d restart(s)\n", elapsed.Seconds(), res.Restarts)
	for i, e := range res.RecoveredEpochs {
		if e < 0 {
			fmt.Printf("  restart %d: no committed checkpoint yet — restarted from the beginning\n", i+1)
		} else {
			fmt.Printf("  restart %d: recovered from global checkpoint %d\n", i+1, e)
		}
	}
	var total ccift.Stats
	for _, s := range res.Stats {
		total.MessagesSent += s.MessagesSent
		total.BytesSent += s.BytesSent
		total.CheckpointsTaken += s.CheckpointsTaken
		total.CheckpointBytes += s.CheckpointBytes
		total.LateLogged += s.LateLogged
		total.LogBytes += s.LogBytes
		total.ReplayedLate += s.ReplayedLate
		total.SuppressedSends += s.SuppressedSends
	}
	fmt.Printf("result: %v\n", res.Values[0])
	fmt.Printf("stats: %d msgs (%s), %d local checkpoints (%s), %d late logged (%s logs), %d replayed, %d sends suppressed\n",
		total.MessagesSent, human(total.BytesSent),
		total.CheckpointsTaken, human(total.CheckpointBytes),
		total.LateLogged, human(total.LogBytes),
		total.ReplayedLate, total.SuppressedSends)
	if rec != nil {
		fmt.Printf("\nprotocol event summary:\n%s", rec.Summary())
		fmt.Printf("\ntimeline (last %d events):\n%s", rec.Len(), rec.Timeline(*ranks))
	}
}

func buildApp(app string, ranks, size, iters int) (ccift.Program, int64, error) {
	switch app {
	case "cg":
		if size == 0 {
			size = 1024
		}
		if iters == 0 {
			iters = 100
		}
		p := cg.Params{N: size, Iters: iters}
		return cg.Program(p), int64(p.StateBytesPerRank(ranks)), nil
	case "laplace":
		if size == 0 {
			size = 512
		}
		if iters == 0 {
			iters = 300
		}
		p := laplace.Params{N: size, Iters: iters}
		return laplace.Program(p), int64(p.StateBytesPerRank(ranks)), nil
	case "neurosys":
		if size == 0 {
			size = 32
		}
		if iters == 0 {
			iters = 300
		}
		p := neurosys.Params{K: size, Iters: iters}
		return neurosys.Program(p), int64(p.StateBytesPerRank(ranks)), nil
	default:
		return nil, 0, fmt.Errorf("unknown app %q (want cg, laplace, neurosys)", app)
	}
}

func human(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
