package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleSrc = `package app

type PS struct{}

func (*PS) Push(int)       {}
func (*PS) Pop()           {}
func (*PS) Resuming() bool { return false }
func (*PS) Resume() int    { return 0 }

type Rank struct{}

func (*Rank) PS() *PS              { return nil }
func (*Rank) Register(string, any) {}
func (*Rank) Unregister()          {}
func (*Rank) PotentialCheckpoint() {}

func step(r *Rank) {
	r.PotentialCheckpoint()
}
`

const callerSrc = `package app

func driver(r *Rank) {
	step(r)
}
`

func TestRunSingleFileToOutput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "app.go")
	out := filepath.Join(dir, "out.go")
	if err := os.WriteFile(in, []byte(sampleSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{in}, out, ""); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "ccift_l1") {
		t.Fatalf("output not instrumented:\n%s", got)
	}
}

func TestRunPackageToDirectory(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.go")
	b := filepath.Join(dir, "b.go")
	outDir := filepath.Join(dir, "out")
	if err := os.WriteFile(a, []byte(sampleSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte(callerSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{a, b}, "", outDir); err != nil {
		t.Fatal(err)
	}
	gotB, err := os.ReadFile(filepath.Join(outDir, "b.go"))
	if err != nil {
		t.Fatal(err)
	}
	// The cross-file fixed point: driver in b.go calls a checkpointable
	// function defined in a.go, so it must be instrumented too.
	if !strings.Contains(string(gotB), "ccift_l1") {
		t.Fatalf("driver not instrumented:\n%s", gotB)
	}
}

func TestRunRejectsOutputFlagWithMultipleInputs(t *testing.T) {
	if err := run([]string{"a.go", "b.go"}, "out.go", ""); err == nil {
		t.Fatal("expected an error")
	}
}

func TestRunMissingInput(t *testing.T) {
	if err := run([]string{filepath.Join(t.TempDir(), "nope.go")}, "", ""); err == nil {
		t.Fatal("expected an error")
	}
}

func TestRunTransformErrorSurfaces(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bad.go")
	bad := strings.Replace(sampleSrc, "func step(r *Rank) {\n\tr.PotentialCheckpoint()\n}",
		`func step(r *Rank) {
	for i := 0; i < 3; i++ {
		r.PotentialCheckpoint()
	}
}`, 1)
	if err := os.WriteFile(in, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{in}, "", t.TempDir())
	if err == nil || !strings.Contains(err.Error(), "init clause") {
		t.Fatalf("err = %v, want init-clause diagnostic", err)
	}
}
