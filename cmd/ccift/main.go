// Command ccift is the CCIFT precompiler (paper Section 5.1): it reads
// C/MPI-style Go sources — ordinary programs whose only fault-tolerance
// provision is calls to PotentialCheckpoint — and emits instrumented
// sources that save and restore their own state through the Position Stack
// and Variable Descriptor Stack runtime.
//
// Usage:
//
//	ccift file.go                 # transformed source on stdout
//	ccift -o out.go file.go       # transformed source to out.go
//	ccift -d outdir a.go b.go     # whole package, one output per input
//
// All files of one invocation are treated as a single package, so the
// checkpointable-function analysis crosses file boundaries.
//
// The emitted Register / deferred Unregister pairs are depth-verified at
// runtime: an instrumented scope that unregisters without having
// registered (or pops a descriptor pushed behind the Rank's back) panics
// naming the variables involved, instead of silently corrupting the VDS.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ccift/internal/precompiler"
)

func main() {
	out := flag.String("o", "", "output file (single input only; default stdout)")
	dir := flag.String("d", "", "output directory (multiple inputs)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ccift [-o out.go | -d outdir] file.go [file2.go ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Args(), *out, *dir); err != nil {
		fmt.Fprintf(os.Stderr, "ccift: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out, dir string) error {
	if out != "" && len(args) > 1 {
		return fmt.Errorf("-o works with a single input; use -d for a package")
	}
	files := make([]precompiler.File, len(args))
	for i, name := range args {
		src, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		files[i] = precompiler.File{Name: name, Src: src}
	}
	transformed, err := precompiler.Transform(files)
	if err != nil {
		return err
	}
	switch {
	case dir != "":
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for i, t := range transformed {
			dst := filepath.Join(dir, filepath.Base(args[i]))
			if err := os.WriteFile(dst, t, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "ccift: wrote %s\n", dst)
		}
	case out != "":
		return os.WriteFile(out, transformed[0], 0o644)
	default:
		_, err := os.Stdout.Write(transformed[0])
		return err
	}
	return nil
}
