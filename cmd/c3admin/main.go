// Command c3admin inspects and maintains ccift checkpoint stores — the
// shared directories distributed runs (c3launch, c3run -distributed, any
// Launch with WithDistributed) checkpoint into. It is a thin CLI over the
// public ccift/store package.
//
// Usage:
//
//	c3admin summary <storedir>             # committed epoch, volumes, dedup ratio
//	c3admin jobs <root>                    # find every store under a root dir
//	c3admin epochs <storedir>              # per-epoch, per-rank artifact table
//	c3admin manifest <storedir> <epoch> <rank>
//	c3admin chunks <storedir>              # chunk refcounts, most-shared first
//	c3admin orphans <storedir>             # chunks no manifest references
//	c3admin verify <storedir>              # re-hash every chunk against its manifest
//	c3admin prune <storedir> [-keep N] [-apply]
//
// Every subcommand except "prune -apply" is read-only and safe against a
// live job's store. Exit codes follow the ccift error taxonomy (see
// ccift.ExitCode): 2 for usage/spec errors, 4 for store errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"ccift"
	"ccift/store"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(ccift.ExitCode(ccift.ErrSpec))
	}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "summary":
		err = withStore(rest, cmdSummary)
	case "jobs":
		err = cmdJobs(rest)
	case "epochs":
		err = withStore(rest, cmdEpochs)
	case "manifest":
		err = cmdManifest(rest)
	case "chunks":
		err = withStore(rest, cmdChunks)
	case "orphans":
		err = withStore(rest, cmdOrphans)
	case "verify":
		err = withStore(rest, cmdVerify)
	case "prune":
		err = cmdPrune(rest)
	case "help", "-h", "--help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "c3admin: unknown command %q\n", cmd)
		usage()
		os.Exit(ccift.ExitCode(ccift.ErrSpec))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "c3admin: %v\n", err)
		os.Exit(ccift.ExitCode(err))
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `c3admin inspects ccift checkpoint stores.

  c3admin summary  <storedir>                  store-wide health report
  c3admin jobs     <root>                      stores found under a root dir
  c3admin epochs   <storedir>                  per-epoch artifact table
  c3admin manifest <storedir> <epoch> <rank>   one state blob's chunk list
  c3admin chunks   <storedir>                  chunk refcounts and sizes
  c3admin orphans  <storedir>                  unreferenced chunks
  c3admin verify   <storedir>                  re-hash every chunk against
                                               its manifest's content address
  c3admin prune    <storedir> [-keep N] [-apply]
                                               dry-run by default; -keep
                                               defaults to the committed epoch
`)
}

// withStore runs f on the store named by the single directory argument.
func withStore(args []string, f func(*store.Store) error) error {
	if len(args) != 1 {
		usage()
		return fmt.Errorf("%w: expected exactly one store directory argument", ccift.ErrSpec)
	}
	st, err := store.Open(args[0])
	if err != nil {
		return err
	}
	return f(st)
}

func cmdSummary(st *store.Store) error {
	s, err := st.Summary()
	if err != nil {
		return err
	}
	fmt.Printf("store:     %s\n", s.Dir)
	if s.HasCommit {
		fmt.Printf("committed: epoch %d\n", s.CommittedEpoch)
	} else {
		fmt.Printf("committed: none (no recoverable checkpoint)\n")
	}
	fmt.Printf("epochs:    %d\n", s.Epochs)
	fmt.Printf("logical:   %s state referenced by manifests\n", humanBytes(s.LogicalBytes))
	fmt.Printf("chunks:    %d unique, %s stored (dedup saved %.1f%%)\n",
		s.Chunks, humanBytes(s.ChunkBytes), 100*s.DedupRatio)
	fmt.Printf("orphans:   %d chunks, %s (reclaimed by prune)\n", s.Orphans, humanBytes(s.OrphanBytes))
	return nil
}

func cmdJobs(args []string) error {
	if len(args) != 1 {
		usage()
		return fmt.Errorf("%w: expected exactly one root directory argument", ccift.ErrSpec)
	}
	jobs, err := store.Jobs(args[0])
	if err != nil {
		return err
	}
	if len(jobs) == 0 {
		fmt.Printf("no checkpoint stores under %s\n", args[0])
		return nil
	}
	fmt.Printf("%-8s  %-9s  %s\n", "EPOCHS", "COMMITTED", "STORE")
	for _, j := range jobs {
		committed := "none"
		if j.HasCommit {
			committed = fmt.Sprintf("%d", j.CommittedEpoch)
		}
		fmt.Printf("%-8d  %-9s  %s\n", j.Epochs, committed, j.Dir)
	}
	return nil
}

func cmdEpochs(st *store.Store) error {
	epochs, err := st.Epochs()
	if err != nil {
		return err
	}
	if len(epochs) == 0 {
		fmt.Println("store holds no epochs")
		return nil
	}
	fmt.Printf("%-7s  %-5s  %-10s  %-10s  %-8s  %s\n", "EPOCH", "RANKS", "STATE", "LOGS", "CHUNKED", "")
	for _, e := range epochs {
		chunked := 0
		for _, r := range e.Ranks {
			if r.Chunked {
				chunked++
			}
		}
		mark := ""
		if e.Committed {
			mark = "<- committed"
		}
		fmt.Printf("%-7d  %-5d  %-10s  %-10s  %d/%-6d  %s\n",
			e.Epoch, len(e.Ranks), humanBytes(e.StateBytes), humanBytes(e.LogBytes),
			chunked, len(e.Ranks), mark)
	}
	return nil
}

func cmdManifest(args []string) error {
	if len(args) != 3 {
		usage()
		return fmt.Errorf("%w: expected <storedir> <epoch> <rank>", ccift.ErrSpec)
	}
	var epoch, rank int
	if _, err := fmt.Sscanf(args[1], "%d", &epoch); err != nil {
		return fmt.Errorf("%w: epoch %q is not a number", ccift.ErrSpec, args[1])
	}
	if _, err := fmt.Sscanf(args[2], "%d", &rank); err != nil {
		return fmt.Errorf("%w: rank %q is not a number", ccift.ErrSpec, args[2])
	}
	st, err := store.Open(args[0])
	if err != nil {
		return err
	}
	m, err := st.Manifest(epoch, rank)
	if err != nil {
		return err
	}
	fmt.Printf("key:     %s\n", m.Key)
	fmt.Printf("logical: %s\n", humanBytes(m.LogicalBytes))
	if !m.Chunked {
		fmt.Println("format:  inline blob (blocking checkpoint path)")
		return nil
	}
	fmt.Printf("format:  chunk manifest, %d refs\n", len(m.Refs))
	for i, r := range m.Refs {
		fmt.Printf("  [%4d] %s  %s\n", i, r.Hash, humanBytes(r.Bytes))
	}
	return nil
}

func cmdChunks(st *store.Store) error {
	chunks, err := st.Chunks()
	if err != nil {
		return err
	}
	if len(chunks) == 0 {
		fmt.Println("store holds no chunks (inline blobs only, or empty)")
		return nil
	}
	fmt.Printf("%-6s  %-10s  %s\n", "REFS", "BYTES", "CHUNK")
	for _, c := range chunks {
		fmt.Printf("%-6d  %-10s  %s\n", c.Refs, humanBytes(c.Bytes), c.Hash)
	}
	return nil
}

func cmdOrphans(st *store.Store) error {
	orphans, err := st.Orphans()
	if err != nil {
		return err
	}
	if len(orphans) == 0 {
		fmt.Println("no orphaned chunks")
		return nil
	}
	var total int64
	for _, c := range orphans {
		fmt.Printf("%-10s  %s\n", humanBytes(c.Bytes), c.Hash)
		total += c.Bytes
	}
	fmt.Printf("%d orphaned chunks, %s (reclaimed by prune)\n", len(orphans), humanBytes(total))
	return nil
}

func cmdVerify(st *store.Store) error {
	rep, err := st.Verify()
	if err != nil {
		return err
	}
	fmt.Printf("checked %d chunked manifests (%d inline blobs), re-hashed %d unique chunks, %s\n",
		rep.Manifests, rep.InlineBlobs, rep.ChunksHashed, humanBytes(rep.BytesHashed))
	if len(rep.Issues) == 0 {
		fmt.Println("store is intact: every chunk hashes to its content address")
		return nil
	}
	for _, i := range rep.Issues {
		fmt.Printf("  CORRUPT %s\n", i)
	}
	return fmt.Errorf("%w: verification found %d issues", ccift.ErrStore, len(rep.Issues))
}

func cmdPrune(args []string) error {
	fs := flag.NewFlagSet("prune", flag.ContinueOnError)
	keep := fs.Int("keep", -1, "newest epoch to keep (default: the committed epoch)")
	apply := fs.Bool("apply", false, "actually delete (default is a dry run)")
	fs.Usage = usage
	if len(args) < 1 {
		usage()
		return fmt.Errorf("%w: expected a store directory argument", ccift.ErrSpec)
	}
	if err := fs.Parse(args[1:]); err != nil {
		return fmt.Errorf("%w: %w", ccift.ErrSpec, err)
	}
	st, err := store.Open(args[0])
	if err != nil {
		return err
	}
	plan, err := st.PrunePlan(*keep)
	if err != nil {
		return err
	}
	fmt.Printf("keep epoch %d: delete %d keys (%d stale epochs), reclaim %s\n",
		plan.KeepEpoch, len(plan.Keys), len(plan.Epochs), humanBytes(plan.ReclaimBytes))
	for _, k := range plan.Keys {
		fmt.Printf("  %s\n", k)
	}
	if !*apply {
		fmt.Println("dry run; pass -apply to delete (only when no job is writing the store)")
		return nil
	}
	if err := st.Prune(plan.KeepEpoch); err != nil {
		return err
	}
	fmt.Println("pruned")
	return nil
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
