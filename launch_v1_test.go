package ccift_test

// ccift v1 conformance: the same program, from the same Launch call site,
// must run on both substrates — in-process goroutines and one OS process
// per rank over TCP — and produce identical results, with and without
// injected failures. The test binary re-execs itself as the distributed
// worker: TestMain detects the worker environment and re-enters the very
// same Launch path a library user's binary would.

import (
	"context"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"ccift"
)

// Parameters shared by the launcher-side tests and the re-exec'd workers
// (the worker rebuilds the same spec and program from these).
const (
	confRanks  = 4
	confIters  = 25
	confWidth  = 16
	confEveryN = 5

	// progEnv selects which program a spawned worker runs; the launcher
	// sets it (and the workers inherit the environment).
	progEnv = "CCIFT_TEST_PROG"
)

// conformanceProg is a halo-exchange stencil written against the typed v1
// API; it returns a deterministic string so the in-process value and the
// distributed rank-0 output are directly comparable.
func conformanceProg() ccift.Program {
	return func(r *ccift.Rank) (any, error) {
		n := r.Size()
		me := r.Rank()
		next, prev := (me+1)%n, (me-1+n)%n

		it := ccift.Reg[int](r, "it")
		x := ccift.Reg[[]float64](r, "x")
		if !r.Restarting() {
			*x = make([]float64, confWidth)
			for i := range *x {
				(*x)[i] = float64(me*confWidth + i)
			}
		}
		for ; *it < confIters; *it++ {
			r.PotentialCheckpoint()
			ccift.Send(r, next, 1, *x)
			in := ccift.Recv[float64](r, prev, 1)
			for i := range *x {
				(*x)[i] = ((*x)[i] + in[i]) / 2
			}
			norm := ccift.Allreduce(r, []float64{(*x)[0]}, ccift.SumF64)
			(*x)[0] = norm[0] / float64(n)
			r.Touch("x")
		}
		total := ccift.Allreduce(r, []float64{(*x)[0] + (*x)[confWidth-1]}, ccift.SumF64)
		return fmt.Sprintf("%.9f", total[0]), nil
	}
}

// hangProg blocks forever on a receive that can never be matched — the
// cancellation tests' victim.
func hangProg() ccift.Program {
	return func(r *ccift.Rank) (any, error) {
		it := ccift.Reg[int](r, "it")
		for {
			r.PotentialCheckpoint()
			if r.Rank() == 0 && *it == 0 {
				// Rank 0 parks in a receive nobody answers; the other ranks
				// park in the barrier below waiting for rank 0.
				ccift.Recv[float64](r, ccift.AnySource, 99)
			}
			r.Barrier()
			*it++
		}
	}
}

// failProg iterates a few times (so checkpoints and messages flow), then
// rank 2 returns an application error — the taxonomy tests' ErrProgram
// case on both substrates.
func failProg() ccift.Program {
	return func(r *ccift.Rank) (any, error) {
		it := ccift.Reg[int](r, "it")
		for ; *it < 5; *it++ {
			r.PotentialCheckpoint()
			r.Barrier()
		}
		if r.Rank() == 2 {
			return nil, fmt.Errorf("deliberate application failure on rank 2")
		}
		return "ok", nil
	}
}

func testProg() ccift.Program {
	switch os.Getenv(progEnv) {
	case "hang":
		return hangProg()
	case "fail":
		return failProg()
	}
	return conformanceProg()
}

// workerSpec is the spec a re-exec'd worker re-enters Launch with: the
// application-level fields (mode, trigger, seed) must match the
// launcher-side spec, which is why both sides build from the same consts.
func workerSpec() *ccift.Spec {
	return ccift.NewSpec(
		ccift.WithRanks(confRanks),
		ccift.WithMode(ccift.Full),
		ccift.WithEveryN(confEveryN),
		ccift.WithDistributed(ccift.Distributed{}),
	)
}

func TestMain(m *testing.M) {
	if ccift.IsWorker() {
		// This process is one rank of a distributed test run: the Launch
		// call below detects the worker role, runs it, and exits.
		_, err := ccift.Launch(context.Background(), workerSpec(), testProg())
		fmt.Fprintf(os.Stderr, "worker: Launch returned unexpectedly: %v\n", err)
		os.Exit(2)
	}
	os.Exit(m.Run())
}

// launchBoth runs prog from one call site on the selected substrate: the
// only difference between the two runs is the WithDistributed option.
func launchBoth(t *testing.T, distributed bool, kills ...ccift.Failure) *ccift.Result {
	t.Helper()
	opts := []ccift.Option{
		ccift.WithRanks(confRanks),
		ccift.WithMode(ccift.Full),
		ccift.WithEveryN(confEveryN),
		ccift.WithFailures(kills...),
	}
	if distributed {
		opts = append(opts, ccift.WithDistributed(ccift.Distributed{Stderr: io.Discard}))
	}
	res, err := ccift.Launch(context.Background(), ccift.NewSpec(opts...), conformanceProg())
	if err != nil {
		t.Fatalf("Launch(distributed=%v, kills=%v): %v", distributed, kills, err)
	}
	return res
}

func TestLaunchConformanceBothSubstrates(t *testing.T) {
	ref := launchBoth(t, false)
	want := fmt.Sprint(ref.Values[0])
	for r := 1; r < confRanks; r++ {
		if fmt.Sprint(ref.Values[r]) != want {
			t.Fatalf("in-process ranks disagree: %v", ref.Values)
		}
	}

	dist := launchBoth(t, true)
	if len(dist.Values) != 1 {
		t.Fatalf("distributed Values = %v, want rank 0's single rendered result", dist.Values)
	}
	if got := fmt.Sprint(dist.Values[0]); got != want {
		t.Fatalf("TCP substrate result %q != in-process result %q", got, want)
	}
	if dist.Restarts != 0 {
		t.Fatalf("fault-free distributed run restarted %d times", dist.Restarts)
	}
}

func TestLaunchConformanceWithFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns two incarnations of real processes; the fault-free conformance test covers -short")
	}
	ref := launchBoth(t, false)
	want := fmt.Sprint(ref.Values[0])

	kill := ccift.Failure{Rank: 2, AtOp: 150, Incarnation: 0}
	inproc := launchBoth(t, false, kill)
	if inproc.Restarts != 1 {
		t.Fatalf("in-process kill: %d restarts, want 1", inproc.Restarts)
	}
	if got := fmt.Sprint(inproc.Values[0]); got != want {
		t.Fatalf("in-process recovered result %q != fault-free %q", got, want)
	}

	dist := launchBoth(t, true, kill)
	if dist.Restarts != 1 {
		t.Fatalf("distributed kill: %d restarts, want 1", dist.Restarts)
	}
	if got := fmt.Sprint(dist.Values[0]); got != want {
		t.Fatalf("SIGKILL-recovered result %q != fault-free %q", got, want)
	}
}

// TestLaunchDistributedCancel pins cancellation on the TCP/process
// substrate: cancelling the context SIGKILLs the workers and Launch
// returns a *RunError wrapping context.Canceled, promptly.
func TestLaunchDistributedCancel(t *testing.T) {
	t.Setenv(progEnv, "hang")
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(500 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	spec := ccift.NewSpec(
		ccift.WithRanks(confRanks),
		ccift.WithMode(ccift.Full),
		ccift.WithEveryN(confEveryN),
		ccift.WithDistributed(ccift.Distributed{Stderr: io.Discard}),
	)
	_, err := ccift.Launch(ctx, spec, hangProg())
	assertCanceled(t, err, context.Canceled)
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("cancellation took %v, want well under the detector/heartbeat budget", elapsed)
	}
}
