package ccift

import (
	"ccift/internal/cerr"
)

// The error taxonomy. Every error returned by Launch (and Run) matches
// exactly one of these sentinels via errors.Is, regardless of substrate:
// the same failure mode reports the same category whether the ranks were
// goroutines or OS processes. Dispatch on the category, not the message —
// message text is for humans and may change:
//
//	res, err := ccift.Launch(ctx, spec, prog)
//	switch {
//	case errors.Is(err, ccift.ErrMaxRestarts):
//		// the failure schedule exhausted the restart budget
//	case errors.Is(err, ccift.ErrCanceled):
//		// ctx was canceled or its deadline expired; the context's own
//		// error (context.Canceled / DeadlineExceeded) is in the chain too
//	case errors.Is(err, ccift.ErrStore):
//		// the checkpoint store failed underneath the run
//	}
//
// The concrete error is still a *RunError carrying rank, incarnation and
// restart count; errors.As recovers it.
var (
	// ErrCanceled: the run's context was canceled or its deadline expired.
	ErrCanceled = cerr.ErrCanceled
	// ErrWorldDead: a rank died and the world cannot roll back — e.g. a
	// stop failure in a protocol mode that takes no recoverable
	// checkpoints.
	ErrWorldDead = cerr.ErrWorldDead
	// ErrMaxRestarts: the failure schedule (or real failures) exhausted
	// the restart budget. ErrTooManyRestarts wraps this same category, so
	// existing errors.Is(err, ErrTooManyRestarts) checks keep working.
	ErrMaxRestarts = cerr.ErrMaxRestarts
	// ErrSpec: the run specification is invalid (bad ranks, conflicting
	// options, substrate-incompatible settings). Validate returns these
	// without running anything.
	ErrSpec = cerr.ErrSpec
	// ErrStore: the stable checkpoint store failed (I/O error, torn
	// commit record, unreadable state blob).
	ErrStore = cerr.ErrStore
	// ErrTransport: the wire substrate failed (worker spawn, TCP mesh
	// formation, rendezvous).
	ErrTransport = cerr.ErrTransport
	// ErrProgram: the application program returned an error or panicked;
	// the program's own error remains reachable through the chain.
	ErrProgram = cerr.ErrProgram
)

// ExitCode maps an error from Launch to the conventional process exit code
// of its category (0 for nil, 1 for program/uncategorized errors) — the
// same mapping the bundled CLIs (c3run, c3launch, c3admin) use, so shell
// scripts can dispatch on categories the way Go code uses errors.Is.
func ExitCode(err error) int { return cerr.ExitCode(err) }
