package ccift

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"ccift/internal/protocol"
)

// TestMetricsRunHistogramAndPerRank drives the WithMetricsAddr wiring the
// way a run does — cumulative stats frames through the aggregator — and
// checks the derived views: the per-checkpoint blocked-time histogram
// (built from frame deltas) and the per-rank labeled families, including
// their monotonicity across a rank restart.
func TestMetricsRunHistogramAndPerRank(t *testing.T) {
	m, err := newMetricsRun("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.close()

	frame := func(rank, inc int, ckpts, blockedNs int64) protocol.StatsFrame {
		return protocol.StatsFrame{
			Rank:        rank,
			Incarnation: inc,
			Stats:       protocol.Stats{CheckpointsTaken: ckpts, CheckpointBlockedNs: blockedNs},
		}
	}
	agg := protocol.NewAggregator(m.observe)
	agg.Observe(frame(0, 0, 1, 2e6))           // one checkpoint, 2ms blocked
	agg.Observe(frame(0, 0, 3, 2e6+2*5e8))     // two more at 0.5s each
	agg.Observe(frame(1, 0, 1, 5e4))           // one at 50µs
	agg.Observe(frame(1, 1, 1, 1e6))           // rank 1 restarted: counters reset
	agg.Observe(frame(0, 0, 3, 2e6+2*5e8+7e3)) // no new checkpoint: no observation

	out := m.reg.Render()
	for _, want := range []string{
		// Histogram: 5 checkpoints observed — 50µs, 1ms (on the bound),
		// 2ms, and two 0.5s stalls; nothing in overflow.
		"# TYPE ccift_checkpoint_blocked_ns histogram",
		`ccift_checkpoint_blocked_ns_bucket{le="100000"} 1`,
		`ccift_checkpoint_blocked_ns_bucket{le="1000000"} 2`,
		`ccift_checkpoint_blocked_ns_bucket{le="10000000"} 3`,
		`ccift_checkpoint_blocked_ns_bucket{le="1000000000"} 5`,
		`ccift_checkpoint_blocked_ns_bucket{le="+Inf"} 5`,
		"ccift_checkpoint_blocked_ns_count 5",
		// Per-rank families: rank 1's totals bridge the restart
		// (incarnation 0 is folded in, not forgotten).
		`ccift_rank_checkpoints_total{rank="0"} 3`,
		`ccift_rank_checkpoints_total{rank="1"} 2`,
		`ccift_rank_checkpoint_blocked_ns_total{rank="1"} 1050000`,
		`ccift_rank_incarnation{rank="0"} 0`,
		`ccift_rank_incarnation{rank="1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}

	// The same view must be scrapeable over HTTP.
	resp, err := http.Get("http://" + m.addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `ccift_rank_checkpoints_total{rank="0"} 3`) {
		t.Errorf("scrape missing per-rank series:\n%s", body)
	}
}

// TestMetricsRunSeriesExistAtZero pins the scrape-early guarantee: every
// per-rank child exists before the first frame arrives.
func TestMetricsRunSeriesExistAtZero(t *testing.T) {
	m, err := newMetricsRun("127.0.0.1:0", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer m.close()
	out := m.reg.Render()
	for _, want := range []string{
		`ccift_rank_checkpoints_total{rank="0"} 0`,
		`ccift_rank_checkpoints_total{rank="2"} 0`,
		`ccift_rank_checkpoint_blocked_ns_total{rank="1"} 0`,
		`ccift_checkpoint_blocked_ns_count 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fresh registry missing %q in:\n%s", want, out)
		}
	}
}
