package ccift

import (
	"fmt"
	"reflect"
	"strings"

	"ccift/internal/cerr"
	"ccift/internal/metrics"
	"ccift/internal/protocol"
)

// The metrics endpoint. WithMetricsAddr starts a plain-HTTP listener for
// the duration of a Launch; GET /metrics returns Prometheus text
// exposition. Every protocol counter is exported as
// ccift_<wire name>_total (e.g. ccift_checkpoint_blocked_ns_total),
// summed across ranks and accumulated across incarnations — counters stay
// monotone through rollbacks, as a scraper requires — plus
// ccift_restarts_total, ccift_ranks, and ccift_incarnation. All series
// are registered up front, so a scrape early in the run sees the full set
// at zero.

// metricsRun is one Launch's live registry + endpoint.
type metricsRun struct {
	reg         *metrics.Registry
	srv         *metrics.Server
	counters    map[string]*metrics.Counter // Stats field name -> counter
	restarts    *metrics.Counter
	incarnation *metrics.Gauge
	dedup       *metrics.Gauge
}

// newMetricsRun builds the registry (every series declared immediately)
// and starts serving it on addr.
func newMetricsRun(addr string, ranks int) (*metricsRun, error) {
	m := &metricsRun{
		reg:      metrics.NewRegistry(),
		counters: map[string]*metrics.Counter{},
	}
	// One counter per protocol counter, named from the stable wire tag so
	// the metric set and the stats stream can never drift.
	t := reflect.TypeOf(protocol.Stats{})
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		tag, _, _ := strings.Cut(f.Tag.Get("json"), ",")
		if tag == "" || f.Type.Kind() != reflect.Int64 {
			continue
		}
		m.counters[f.Name] = m.reg.Counter("ccift_"+tag+"_total",
			"Protocol counter "+f.Name+", summed over ranks, cumulative across incarnations.")
	}
	m.restarts = m.reg.Counter("ccift_restarts_total", "Rollback-restarts performed by this run.")
	m.incarnation = m.reg.Gauge("ccift_incarnation", "Newest incarnation observed (0 = initial execution).")
	m.dedup = m.reg.Gauge("ccift_checkpoint_dedup_ratio",
		"Fraction of serialized checkpoint bytes NOT written thanks to chunk dedup (0 = everything written).")
	m.reg.Gauge("ccift_ranks", "World size of the run.").Set(float64(ranks))

	srv, err := m.reg.Serve(addr)
	if err != nil {
		return nil, fmt.Errorf("%w: WithMetricsAddr: %w", cerr.ErrSpec, err)
	}
	m.srv = srv
	return m, nil
}

// observe is the aggregator hook: refresh every exported series from the
// cumulative total. Totals are monotone (the aggregator folds superseded
// incarnations into its base), so Set preserves counter semantics.
func (m *metricsRun) observe(total protocol.Stats, f protocol.StatsFrame) {
	v := reflect.ValueOf(total)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		if c := m.counters[t.Field(i).Name]; c != nil {
			c.Set(v.Field(i).Int())
		}
	}
	if inc := float64(f.Incarnation); inc > m.incarnation.Value() {
		m.incarnation.Set(inc)
	}
	if total.CheckpointBytes > 0 {
		m.dedup.Set(1 - float64(total.CheckpointBytesWritten)/float64(total.CheckpointBytes))
	}
}

func (m *metricsRun) onRestart(restarts int) { m.restarts.Set(int64(restarts)) }

func (m *metricsRun) close() {
	if m.srv != nil {
		m.srv.Close()
	}
}

// Addr returns the endpoint's bound address (host:port), useful when the
// spec asked for ":0".
func (m *metricsRun) addr() string { return m.srv.Addr() }
