package ccift

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"

	"ccift/internal/cerr"
	"ccift/internal/metrics"
	"ccift/internal/protocol"
)

// The metrics endpoint. WithMetricsAddr starts a plain-HTTP listener for
// the duration of a Launch; GET /metrics returns Prometheus text
// exposition. Every protocol counter is exported as
// ccift_<wire name>_total (e.g. ccift_checkpoint_blocked_ns_total),
// summed across ranks and accumulated across incarnations — counters stay
// monotone through rollbacks, as a scraper requires — plus
// ccift_restarts_total, ccift_ranks, and ccift_incarnation. All series
// are registered up front, so a scrape early in the run sees the full set
// at zero.
//
// Two finer-grained views ride along: ccift_checkpoint_blocked_ns is a
// histogram of per-checkpoint blocked time (how long one rank stalled for
// one checkpoint, derived from successive stats frames), and the
// ccift_rank_* families break checkpoints, blocked time and incarnation
// out per rank via a rank label.

// blockedBuckets are the ccift_checkpoint_blocked_ns histogram bounds:
// 100µs to 10s in decades, in nanoseconds — checkpoint stalls below 100µs
// are noise and above 10s are an outage, both fine in overflow buckets.
var blockedBuckets = []float64{1e5, 1e6, 1e7, 1e8, 1e9, 1e10}

// metricsRun is one Launch's live registry + endpoint.
type metricsRun struct {
	reg         *metrics.Registry
	srv         *metrics.Server
	counters    map[string]*metrics.Counter // Stats field name -> counter
	restarts    *metrics.Counter
	incarnation *metrics.Gauge
	dedup       *metrics.Gauge

	blocked         *metrics.Histogram
	rankCkpts       *metrics.CounterVec
	rankBlocked     *metrics.CounterVec
	rankIncarnation *metrics.GaugeVec
	// last remembers each rank's previous frame (plus the totals of its
	// superseded incarnations) so observe can turn cumulative snapshots
	// into per-checkpoint histogram observations and keep the per-rank
	// counters monotone through rollbacks. Only touched from observe,
	// which the aggregator serializes.
	last map[int]*rankWindow
}

// rankWindow is one rank's delta-tracking state across stats frames.
type rankWindow struct {
	frame       protocol.StatsFrame // newest accepted frame of the current incarnation
	baseCkpts   int64               // checkpoints from superseded incarnations
	baseBlocked int64               // blocked ns from superseded incarnations
}

// newMetricsRun builds the registry (every series declared immediately)
// and starts serving it on addr.
func newMetricsRun(addr string, ranks int) (*metricsRun, error) {
	m := &metricsRun{
		reg:      metrics.NewRegistry(),
		counters: map[string]*metrics.Counter{},
		last:     map[int]*rankWindow{},
	}
	// One counter per protocol counter, named from the stable wire tag so
	// the metric set and the stats stream can never drift.
	t := reflect.TypeOf(protocol.Stats{})
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		tag, _, _ := strings.Cut(f.Tag.Get("json"), ",")
		if tag == "" || f.Type.Kind() != reflect.Int64 {
			continue
		}
		m.counters[f.Name] = m.reg.Counter("ccift_"+tag+"_total",
			"Protocol counter "+f.Name+", summed over ranks, cumulative across incarnations.")
	}
	m.restarts = m.reg.Counter("ccift_restarts_total", "Rollback-restarts performed by this run.")
	m.incarnation = m.reg.Gauge("ccift_incarnation", "Newest incarnation observed (0 = initial execution).")
	m.dedup = m.reg.Gauge("ccift_checkpoint_dedup_ratio",
		"Fraction of serialized checkpoint bytes NOT written thanks to chunk dedup (0 = everything written).")
	m.reg.Gauge("ccift_ranks", "World size of the run.").Set(float64(ranks))
	m.blocked = m.reg.Histogram("ccift_checkpoint_blocked_ns",
		"Per-checkpoint blocked time of one rank, in nanoseconds (derived from successive stats frames).",
		blockedBuckets)
	m.rankCkpts = m.reg.CounterVec("ccift_rank_checkpoints_total",
		"Local checkpoints taken by each rank, cumulative across incarnations.", "rank")
	m.rankBlocked = m.reg.CounterVec("ccift_rank_checkpoint_blocked_ns_total",
		"Nanoseconds each rank spent blocked in checkpoints, cumulative across incarnations.", "rank")
	m.rankIncarnation = m.reg.GaugeVec("ccift_rank_incarnation",
		"Newest incarnation observed per rank (0 = initial execution).", "rank")
	// Per-rank children exist from the first scrape, at zero.
	for r := 0; r < ranks; r++ {
		lv := strconv.Itoa(r)
		m.rankCkpts.With(lv)
		m.rankBlocked.With(lv)
		m.rankIncarnation.With(lv)
	}

	srv, err := m.reg.Serve(addr)
	if err != nil {
		return nil, fmt.Errorf("%w: WithMetricsAddr: %w", cerr.ErrSpec, err)
	}
	m.srv = srv
	return m, nil
}

// observe is the aggregator hook: refresh every exported series from the
// cumulative total. Totals are monotone (the aggregator folds superseded
// incarnations into its base), so Set preserves counter semantics.
func (m *metricsRun) observe(total protocol.Stats, f protocol.StatsFrame) {
	v := reflect.ValueOf(total)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		if c := m.counters[t.Field(i).Name]; c != nil {
			c.Set(v.Field(i).Int())
		}
	}
	if inc := float64(f.Incarnation); inc > m.incarnation.Value() {
		m.incarnation.Set(inc)
	}
	if total.CheckpointBytes > 0 {
		m.dedup.Set(1 - float64(total.CheckpointBytesWritten)/float64(total.CheckpointBytes))
	}

	// Per-rank view and the blocked-time histogram, from frame deltas. The
	// aggregator only hands us accepted frames (stale incarnations are
	// dropped before the hook), so deltas within an incarnation are >= 0.
	w := m.last[f.Rank]
	if w == nil {
		w = &rankWindow{}
		m.last[f.Rank] = w
	}
	if f.Incarnation > w.frame.Incarnation {
		// The rank restarted: its new incarnation counts from zero again.
		w.baseCkpts += w.frame.Stats.CheckpointsTaken
		w.baseBlocked += w.frame.Stats.CheckpointBlockedNs
		w.frame = protocol.StatsFrame{Rank: f.Rank, Incarnation: f.Incarnation}
	}
	if dCkpts := f.Stats.CheckpointsTaken - w.frame.Stats.CheckpointsTaken; dCkpts > 0 {
		// The window saw dCkpts checkpoints stall for dBlocked in total;
		// each is filed at the window's mean — the finest attribution
		// cumulative counters admit, exact when frames are per-checkpoint.
		per := float64(f.Stats.CheckpointBlockedNs-w.frame.Stats.CheckpointBlockedNs) / float64(dCkpts)
		for i := int64(0); i < dCkpts; i++ {
			m.blocked.Observe(per)
		}
	}
	w.frame = f
	lv := strconv.Itoa(f.Rank)
	m.rankCkpts.With(lv).Set(w.baseCkpts + f.Stats.CheckpointsTaken)
	m.rankBlocked.With(lv).Set(w.baseBlocked + f.Stats.CheckpointBlockedNs)
	if g := m.rankIncarnation.With(lv); float64(f.Incarnation) > g.Value() {
		g.Set(float64(f.Incarnation))
	}
}

func (m *metricsRun) onRestart(restarts int) { m.restarts.Set(int64(restarts)) }

func (m *metricsRun) close() {
	if m.srv != nil {
		m.srv.Close()
	}
}

// Addr returns the endpoint's bound address (host:port), useful when the
// spec asked for ":0".
func (m *metricsRun) addr() string { return m.srv.Addr() }
