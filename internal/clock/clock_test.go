package clock

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestSystemNowAdvances(t *testing.T) {
	a := System.Now()
	time.Sleep(2 * time.Millisecond)
	if d := System.Since(a); d <= 0 {
		t.Fatalf("Since = %v, want > 0", d)
	}
}

func TestSystemAfterFuncFiresAndStops(t *testing.T) {
	var fired atomic.Int32
	tm := System.AfterFunc(time.Millisecond, func() { fired.Add(1) })
	deadline := time.Now().Add(2 * time.Second)
	for fired.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if fired.Load() != 1 {
		t.Fatal("AfterFunc never fired")
	}
	if tm.Stop() {
		t.Fatal("Stop after firing reported cancellation")
	}

	tm = System.AfterFunc(time.Hour, func() { fired.Add(1) })
	if !tm.Stop() {
		t.Fatal("Stop before firing reported already-run")
	}
}

func TestOr(t *testing.T) {
	if Or(nil) != System {
		t.Fatal("Or(nil) != System")
	}
	c := systemClock{}
	if Or(c) != c {
		t.Fatal("Or(c) != c")
	}
}
