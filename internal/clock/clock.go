// Package clock abstracts time for the layers that schedule against it —
// detector heartbeats and suspicion, the protocol initiator interval,
// checkpoint blocked/flush accounting, and control-servicing deadlines.
//
// Production code uses System, a thin veneer over package time. The
// simulated substrate (internal/sim) substitutes a virtual clock whose
// time advances only when every simulated rank is quiescent, so a
// 30-second heartbeat schedule across a thousand ranks elapses in
// microseconds of wall time and every timer firing is deterministic.
package clock

import "time"

// Clock is the time source and timer factory a layer schedules against.
//
// Implementations must be safe for concurrent use. AfterFunc may run f on
// any goroutine; f must not block for long (the virtual clock runs timer
// callbacks inline in its scheduler loop).
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Since returns the elapsed time on this clock since t.
	Since(t time.Time) time.Duration
	// AfterFunc arranges for f to run once d has elapsed on this clock
	// and returns a handle that can cancel it.
	AfterFunc(d time.Duration, f func()) Timer
	// After returns a channel that receives the clock's time once d has
	// elapsed. The channel has capacity 1; the send never blocks.
	After(d time.Duration) <-chan time.Time
}

// Timer is a cancellable pending AfterFunc. Stop reports whether the call
// was cancelled before the function started running.
type Timer interface {
	Stop() bool
}

// System is the wall-clock Clock used outside simulation.
var System Clock = systemClock{}

type systemClock struct{}

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) Since(t time.Time) time.Duration        { return time.Since(t) }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (systemClock) AfterFunc(d time.Duration, f func()) Timer {
	return time.AfterFunc(d, f)
}

// Or returns c if non-nil and System otherwise; config plumbing uses it
// so a zero-valued Config keeps wall-clock behavior.
func Or(c Clock) Clock {
	if c != nil {
		return c
	}
	return System
}
