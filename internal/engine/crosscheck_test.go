package engine

import (
	"errors"
	"strings"
	"testing"

	"ccift/internal/cerr"
	"ccift/internal/protocol"
)

// FreezeCrossCheck is the debug mode for the incremental-by-default era:
// after every freeze it re-reads live state and fails the run loudly if a
// mutation was not followed by Touch — instead of letting the staleness
// surface as silently wrong recovered values.

// forgetfulProg mutates a registered vector; touch selects whether it
// honors the write-intent contract.
func forgetfulProg(touch bool) Program {
	return func(r *Rank) (any, error) {
		var it int
		x := make([]float64, 128)
		r.Register("it", &it)
		r.Register("x", &x)
		for ; it < 9; it++ {
			r.PotentialCheckpoint()
			x[it%len(x)] += float64(it + 1)
			if touch {
				r.Touch("x")
			}
			r.Barrier()
		}
		return x[0] + x[1], nil
	}
}

func TestFreezeCrossCheckCatchesMissingTouch(t *testing.T) {
	_, err := Run(Config{
		Ranks: 2, Mode: protocol.Full, EveryN: 3, FreezeCrossCheck: true,
	}, forgetfulProg(false))
	if err == nil {
		t.Fatal("cross-check mode accepted a program that mutates without Touch")
	}
	if !errors.Is(err, cerr.ErrProgram) {
		t.Fatalf("cross-check violation should be ErrProgram, got %v", err)
	}
	if !strings.Contains(err.Error(), `"x"`) || !strings.Contains(err.Error(), "Touch") {
		t.Fatalf("cross-check error should name the stale variable and the missing Touch, got: %v", err)
	}
}

func TestFreezeCrossCheckPassesHonestProgram(t *testing.T) {
	res, err := Run(Config{
		Ranks: 2, Mode: protocol.Full, EveryN: 3, FreezeCrossCheck: true,
		Failures: []Failure{{Rank: 1, AtOp: 20, Incarnation: 0}},
	}, forgetfulProg(true))
	if err != nil {
		t.Fatalf("cross-check rejected a contract-honoring program: %v", err)
	}
	ref := runRef(t, Config{Ranks: 2, Mode: protocol.Unmodified}, forgetfulProg(true))
	if len(res.Values) != 2 || res.Values[0] != ref[0] {
		t.Fatalf("values %v != ref %v", res.Values, ref)
	}
}
