package engine

// Registration-depth verification: Unregister must pop exactly what this
// Rank registered, so a missing Register (or a descriptor pushed behind
// the Rank's back) surfaces at the unbalanced call site instead of
// silently unregistering someone else's variable.

import (
	"strings"
	"testing"

	"ccift/internal/protocol"
)

func runOneRank(t *testing.T, body func(r *Rank)) error {
	t.Helper()
	_, err := Run(Config{Ranks: 1}, func(r *Rank) (any, error) {
		body(r)
		return nil, nil
	})
	return err
}

func TestUnregisterBalancedPairs(t *testing.T) {
	err := runOneRank(t, func(r *Rank) {
		var a, b int
		r.Register("a", &a)
		r.Register("b", &b)
		r.Unregister() // b
		r.Unregister() // a
		if n := r.Layer().Saver.VDS.Len(); n != 0 {
			t.Errorf("VDS holds %d descriptors after balanced pops", n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnregisterWithoutRegisterPanics(t *testing.T) {
	err := runOneRank(t, func(r *Rank) {
		var a int
		// The descriptor below is pushed directly on the VDS, not through
		// the Rank: the old Unregister would silently pop it.
		if err := r.Layer().Saver.VDS.Push("smuggled", &a); err != nil {
			t.Fatal(err)
		}
		r.Unregister()
	})
	if err == nil || !strings.Contains(err.Error(), "Unregister without a matching Register") {
		t.Fatalf("err = %v, want the unmatched-Unregister panic", err)
	}
}

func TestUnregisterMismatchNamesBothVariables(t *testing.T) {
	err := runOneRank(t, func(r *Rank) {
		var a, b int
		r.Register("mine", &a)
		// A descriptor pushed behind the Rank's back now sits on top; the
		// verified pop must refuse and name both variables.
		if err := r.Layer().Saver.VDS.Push("smuggled", &b); err != nil {
			t.Fatal(err)
		}
		r.Unregister()
	})
	if err == nil {
		t.Fatal("mismatched Unregister did not panic")
	}
	for _, want := range []string{"mine", "smuggled", "mismatched register/unregister pairing"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("err = %v, want it to mention %q", err, want)
		}
	}
}

// TestUnregisterRebindPairsWithOriginal pins the rebind rule: registering
// a live name rebinds the existing descriptor in place, so it consumes no
// extra Unregister.
func TestUnregisterRebindPairsWithOriginal(t *testing.T) {
	err := runOneRank(t, func(r *Rank) {
		var a1, a2, b int
		r.Register("a", &a1)
		r.Register("b", &b)
		r.Register("a", &a2) // rebind: "a" now restores through a2
		r.Unregister()       // pops b (the only fresh push above "a")
		r.Unregister()       // pops a
		if n := r.Layer().Saver.VDS.Len(); n != 0 {
			t.Errorf("VDS holds %d descriptors after rebind-aware pops", n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWorkerConfigStillValidates keeps the non-rank plumbing honest after
// the context threading: a worker with a missing transport hook must error
// out, not panic.
func TestWorkerConfigStillValidates(t *testing.T) {
	_, err := RunWorker(nil, WorkerConfig{Rank: 0, Ranks: 2, Mode: protocol.Full}, func(r *Rank) (any, error) {
		return nil, nil
	})
	if err == nil || !strings.Contains(err.Error(), "requires Store") {
		t.Fatalf("err = %v, want the missing-dependencies error", err)
	}
}
