package engine

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"ccift/internal/mpi"
	"ccift/internal/protocol"
	"ccift/internal/storage"
	"ccift/internal/testseed"
)

// ringProg is a deterministic neighbour-exchange program: each rank holds a
// vector, repeatedly sends it to the next rank, receives from the previous,
// and mixes; every iteration opens with a potential checkpoint. Its final
// checksum is a strict function of (ranks, iters, width).
func ringProg(iters, width int) Program {
	return func(r *Rank) (any, error) {
		n := r.Size()
		me := r.Rank()
		next, prev := (me+1)%n, (me-1+n)%n

		var it int
		x := make([]float64, width)
		r.Register("it", &it)
		r.Register("x", &x)
		if !r.Restarting() {
			for i := range x {
				x[i] = float64(me*width + i)
			}
		}
		for ; it < iters; it++ {
			r.PotentialCheckpoint()
			r.SendF64(next, 1, x)
			in := r.RecvF64(prev, 1)
			for i := range x {
				x[i] = x[i]*0.5 + in[i]*0.5 + 1
			}
			r.Touch("x")
		}
		sum := 0.0
		for _, v := range x {
			sum += v
		}
		return sum, nil
	}
}

func runRef(t *testing.T, cfg Config, prog Program) []any {
	t.Helper()
	ref, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	return ref.Values
}

func TestRunUnmodified(t *testing.T) {
	cfg := Config{Ranks: 4, Mode: protocol.Unmodified}
	res, err := Run(cfg, ringProg(10, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 4 || res.Restarts != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestModesAgreeWithoutFailures(t *testing.T) {
	// All four Figure-8 versions must compute identical results when no
	// failure occurs.
	prog := ringProg(20, 16)
	ref := runRef(t, Config{Ranks: 4, Mode: protocol.Unmodified}, prog)
	for _, mode := range []protocol.Mode{protocol.PiggybackOnly, protocol.NoAppState, protocol.Full} {
		cfg := Config{Ranks: 4, Mode: mode, EveryN: 5}
		res, err := Run(cfg, prog)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !reflect.DeepEqual(res.Values, ref) {
			t.Fatalf("%v: values %v != ref %v", mode, res.Values, ref)
		}
	}
}

func TestCheckpointsAreTaken(t *testing.T) {
	store := storage.NewMemory()
	cfg := Config{Ranks: 4, Mode: protocol.Full, EveryN: 5, Store: store, Debug: true}
	res, err := Run(cfg, ringProg(25, 8))
	if err != nil {
		t.Fatal(err)
	}
	var taken int64
	for _, s := range res.Stats {
		taken += s.CheckpointsTaken
	}
	if taken == 0 {
		t.Fatal("no checkpoints were taken")
	}
	cs := storage.NewCheckpointStore(store)
	if e, ok, _ := cs.Committed(); !ok || e < 1 {
		t.Fatalf("committed epoch = %d, %v", e, ok)
	}
}

func TestRecoveryMatchesFailureFreeRun(t *testing.T) {
	prog := ringProg(30, 8)
	ref := runRef(t, Config{Ranks: 4, Mode: protocol.Unmodified}, prog)

	// Kill rank 2 late in the run — after the first global checkpoint has
	// committed (the protocol completes around op ~92 of rank 2 in this
	// configuration; the run ends around op ~183). The committed checkpoint
	// must carry the computation through.
	cfg := Config{
		Ranks: 4, Mode: protocol.Full, EveryN: 4, Debug: true,
		Failures: []Failure{{Rank: 2, AtOp: 140, Incarnation: 0}},
	}
	res, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d", res.Restarts)
	}
	if len(res.RecoveredEpochs) != 1 || res.RecoveredEpochs[0] < 1 {
		t.Fatalf("recovered epochs = %v", res.RecoveredEpochs)
	}
	if !reflect.DeepEqual(res.Values, ref) {
		t.Fatalf("recovered values %v != ref %v", res.Values, ref)
	}
}

func TestRecoveryAtManyFailurePoints(t *testing.T) {
	// Sweep the stop-failure across execution points and ranks; every
	// recovery must reproduce the failure-free results exactly. This is
	// the paper's core correctness claim under the stopping-failure model.
	if testing.Short() {
		t.Skip("long sweep")
	}
	prog := ringProg(20, 4)
	ref := runRef(t, Config{Ranks: 3, Mode: protocol.Unmodified}, prog)
	for rank := 0; rank < 3; rank++ {
		for _, atOp := range []int64{3, 10, 17, 25, 33, 41, 52, 60} {
			cfg := Config{
				Ranks: 3, Mode: protocol.Full, EveryN: 3, Debug: true,
				Failures: []Failure{{Rank: rank, AtOp: atOp, Incarnation: 0}},
			}
			res, err := Run(cfg, prog)
			if err != nil {
				t.Fatalf("rank=%d atOp=%d: %v", rank, atOp, err)
			}
			if !reflect.DeepEqual(res.Values, ref) {
				t.Fatalf("rank=%d atOp=%d: values %v != ref %v", rank, atOp, res.Values, ref)
			}
		}
	}
}

func TestRepeatedFailures(t *testing.T) {
	// Two failures in successive incarnations: recovery from recovery.
	prog := ringProg(25, 4)
	ref := runRef(t, Config{Ranks: 3, Mode: protocol.Unmodified}, prog)
	cfg := Config{
		Ranks: 3, Mode: protocol.Full, EveryN: 3, Debug: true,
		Failures: []Failure{
			{Rank: 1, AtOp: 30, Incarnation: 0},
			{Rank: 2, AtOp: 25, Incarnation: 1},
		},
	}
	res, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 2 {
		t.Fatalf("restarts = %d", res.Restarts)
	}
	if !reflect.DeepEqual(res.Values, ref) {
		t.Fatalf("values %v != ref %v", res.Values, ref)
	}
}

func TestFailureBeforeFirstCheckpointRestartsFromScratch(t *testing.T) {
	prog := ringProg(10, 4)
	ref := runRef(t, Config{Ranks: 3, Mode: protocol.Unmodified}, prog)
	cfg := Config{
		Ranks: 3, Mode: protocol.Full, EveryN: 1000, Debug: true, // never checkpoints
		Failures: []Failure{{Rank: 0, AtOp: 5, Incarnation: 0}},
	}
	res, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 || res.RecoveredEpochs[0] != -1 {
		t.Fatalf("restarts=%d epochs=%v", res.Restarts, res.RecoveredEpochs)
	}
	if !reflect.DeepEqual(res.Values, ref) {
		t.Fatalf("values %v != ref %v", res.Values, ref)
	}
}

func TestNoAppStateCannotRecover(t *testing.T) {
	cfg := Config{
		// The first global checkpoint commits around op ~49 of rank 0 in
		// this configuration; op 100 is safely after it.
		Ranks: 2, Mode: protocol.NoAppState, EveryN: 2, Debug: true,
		Failures: []Failure{{Rank: 0, AtOp: 100, Incarnation: 0}},
	}
	_, err := Run(cfg, ringProg(20, 4))
	if err == nil {
		t.Fatal("NoAppState mode must refuse to recover from a checkpoint")
	}
}

func TestTooManyRestarts(t *testing.T) {
	failures := make([]Failure, 4)
	for i := range failures {
		failures[i] = Failure{Rank: 0, AtOp: 2, Incarnation: i}
	}
	cfg := Config{Ranks: 2, Mode: protocol.Full, EveryN: 3, MaxRestarts: 3, Failures: failures}
	_, err := Run(cfg, ringProg(10, 2))
	if !errors.Is(err, ErrTooManyRestarts) {
		t.Fatalf("err = %v", err)
	}
}

func TestProgramErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(Config{Ranks: 2, Mode: protocol.Full}, func(r *Rank) (any, error) {
		if r.Rank() == 1 {
			return nil, boom
		}
		return nil, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

// collectiveProg exercises every collective through checkpoints.
func collectiveProg(iters int) Program {
	return func(r *Rank) (any, error) {
		n := r.Size()
		var it int
		acc := make([]float64, 4)
		r.Register("it", &it)
		r.Register("acc", &acc)
		for ; it < iters; it++ {
			r.PotentialCheckpoint()
			sum := r.AllreduceF64([]float64{float64(r.Rank() + it)}, mpi.SumF64)
			all := r.AllgatherF64([]float64{sum[0] + float64(r.Rank())})
			root := r.GatherF64(0, []float64{all[it%n]})
			var fromRoot []float64
			if r.Rank() == 0 {
				fromRoot = root
			}
			fromRoot = mpi.BytesF64(r.Bcast(0, mpi.F64Bytes(fromRoot)))
			r.Barrier()
			acc[0] += sum[0]
			acc[1] += all[(it+1)%n]
			acc[2] += fromRoot[it%n]
			acc[3] += 1
			r.Touch("acc")
		}
		return fmt.Sprintf("%.3f/%.3f/%.3f/%.0f", acc[0], acc[1], acc[2], acc[3]), nil
	}
}

func TestCollectivesSurviveRecovery(t *testing.T) {
	prog := collectiveProg(15)
	ref := runRef(t, Config{Ranks: 4, Mode: protocol.Unmodified}, prog)
	for _, atOp := range []int64{10, 30, 60, 90} {
		cfg := Config{
			Ranks: 4, Mode: protocol.Full, EveryN: 4, Debug: true,
			Failures: []Failure{{Rank: int(atOp) % 4, AtOp: atOp, Incarnation: 0}},
		}
		res, err := Run(cfg, prog)
		if err != nil {
			t.Fatalf("atOp=%d: %v", atOp, err)
		}
		if !reflect.DeepEqual(res.Values, ref) {
			t.Fatalf("atOp=%d: values %v != ref %v", atOp, res.Values, ref)
		}
	}
}

// nondetProg: rank 0 draws logged random values and streams them to rank 1.
// Both ranks return the sequence they saw; the protocol must keep the two
// views identical across failures even though raw randomness diverges
// between incarnations.
func nondetProg(iters int) Program {
	return func(r *Rank) (any, error) {
		var it int
		seen := make([]float64, 0, iters)
		r.Register("it", &it)
		r.Register("seen", &seen)
		for ; it < iters; it++ {
			r.PotentialCheckpoint()
			if r.Rank() == 0 {
				v := r.Random()
				seen = append(seen, v)
				r.SendF64(1, 1, []float64{v})
			} else {
				seen = append(seen, r.RecvF64(0, 1)[0])
			}
		}
		return fmt.Sprintf("%.9v", seen), nil
	}
}

func TestNondeterminismReplayKeepsViewsConsistent(t *testing.T) {
	for _, atOp := range []int64{5, 12, 20, 28, 36} {
		for _, failRank := range []int{0, 1} {
			cfg := Config{
				Ranks: 2, Mode: protocol.Full, EveryN: 4, Debug: true,
				Failures: []Failure{{Rank: failRank, AtOp: atOp, Incarnation: 0}},
			}
			res, err := Run(cfg, nondetProg(20))
			if err != nil {
				t.Fatalf("rank=%d atOp=%d: %v", failRank, atOp, err)
			}
			if res.Values[0] != res.Values[1] {
				t.Fatalf("rank=%d atOp=%d: views diverged:\n0: %v\n1: %v",
					failRank, atOp, res.Values[0], res.Values[1])
			}
		}
	}
}

// wildcardProg uses AnySource receives, whose resolution order is a
// non-deterministic decision the log must pin.
func wildcardProg(iters int) Program {
	return func(r *Rank) (any, error) {
		var it int
		var sum float64
		r.Register("it", &it)
		r.Register("sum", &sum)
		for ; it < iters; it++ {
			r.PotentialCheckpoint()
			if r.Rank() == 0 {
				a := r.Recv(mpi.AnySource, mpi.AnyTag)
				b := r.Recv(mpi.AnySource, mpi.AnyTag)
				// Order-sensitive mixing: breaks if replay resolves the
				// wildcards differently than the original run.
				sum = sum*1.0001 + mpi.BytesF64(a.Data)[0]*2 + mpi.BytesF64(b.Data)[0]*3
			} else {
				r.SendF64(0, r.Rank(), []float64{float64(r.Rank()*100 + it)})
			}
		}
		return sum, nil
	}
}

func TestWildcardReceiveReplay(t *testing.T) {
	for _, atOp := range []int64{8, 16, 24, 40} {
		cfg := Config{
			Ranks: 3, Mode: protocol.Full, EveryN: 3, Debug: true,
			Failures: []Failure{{Rank: 0, AtOp: atOp, Incarnation: 0}},
		}
		res, err := Run(cfg, wildcardProg(15))
		if err != nil {
			t.Fatalf("atOp=%d: %v", atOp, err)
		}
		// Correctness here is internal consistency: the Debug assertions
		// in the replay path panic on divergence, and the run completing
		// with a finite checksum means all 15 iterations were accounted
		// for on rank 0.
		if _, ok := res.Values[0].(float64); !ok {
			t.Fatalf("atOp=%d: bad value %v", atOp, res.Values[0])
		}
	}
}

func TestChaosRecovery(t *testing.T) {
	// Adversarial message reordering + failures: the protocol must not
	// assume FIFO delivery (Section 3.3).
	prog := ringProg(20, 4)
	ref := runRef(t, Config{Ranks: 4, Mode: protocol.Unmodified}, prog)
	base := testseed.Base(t, 1)
	for seed := base; seed < base+5; seed++ {
		cfg := Config{
			Ranks: 4, Mode: protocol.Full, EveryN: 3, Debug: true, ChaosSeed: seed,
			Failures: []Failure{{Rank: 1, AtOp: 35, Incarnation: 0}},
		}
		res, err := Run(cfg, prog)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if !reflect.DeepEqual(res.Values, ref) {
			t.Fatalf("seed=%d: values %v != ref %v", seed, res.Values, ref)
		}
	}
}

func TestIsendIrecvAcrossCheckpoints(t *testing.T) {
	// Request pseudo-handles that straddle checkpoints (Section 5.2's
	// transient objects): Irecv posted before the checkpoint, Wait after.
	// The handle and a posted flag are registered state, so a restart
	// resumes Wait on the request revived from the checkpoint's request
	// records instead of re-executing the pre-checkpoint Irecv/Isend —
	// without Position Stack instrumentation, re-running a pre-checkpoint
	// send would duplicate a message the receiver's restored state or log
	// already accounts for (that statement-level resume is exactly what
	// the precompiler's PS instrumentation provides).
	prog := func(r *Rank) (any, error) {
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() - 1 + r.Size()) % r.Size()
		var it int
		var total float64
		var posted bool
		var h protocol.Handle
		r.Register("it", &it)
		r.Register("total", &total)
		r.Register("posted", &posted)
		r.Register("h", &h)
		for ; it < 20; it++ {
			if !posted {
				h = r.Irecv(prev, 1)
				r.Touch("h") // Handle is a struct, not an exempt scalar
				r.Isend(next, 1, mpi.F64Bytes([]float64{float64(r.Rank()*1000 + it)}))
				posted = true
			}
			r.PotentialCheckpoint()
			m := r.Wait(h)
			posted = false
			total += mpi.BytesF64(m.Data)[0]
		}
		return total, nil
	}
	ref := runRef(t, Config{Ranks: 3, Mode: protocol.Unmodified}, prog)
	for _, atOp := range []int64{7, 19, 33, 52} {
		cfg := Config{
			Ranks: 3, Mode: protocol.Full, EveryN: 4, Debug: true,
			Failures: []Failure{{Rank: 2, AtOp: atOp, Incarnation: 0}},
		}
		res, err := Run(cfg, prog)
		if err != nil {
			t.Fatalf("atOp=%d: %v", atOp, err)
		}
		if !reflect.DeepEqual(res.Values, ref) {
			t.Fatalf("atOp=%d: values %v != ref %v", atOp, res.Values, ref)
		}
	}
}

func TestCommDupSurvivesRecovery(t *testing.T) {
	// Persistent opaque objects: a communicator created before the
	// checkpoint must be usable after recovery via call replay.
	prog := func(r *Rank) (any, error) {
		var it int
		var sum float64
		var dup protocol.CommHandle
		r.Register("it", &it)
		r.Register("sum", &sum)
		r.Register("dup", &dup)
		if !r.Restarting() {
			dup = r.CommDup(protocol.WorldComm)
		}
		for ; it < 12; it++ {
			r.PotentialCheckpoint()
			// Use the duplicated communicator directly for a barrier-like
			// allreduce (raw escape hatch, not protocol-managed).
			out := r.SubComm(dup).Allreduce(mpi.F64Bytes([]float64{1}), mpi.SumF64)
			sum += mpi.BytesF64(out)[0]
		}
		return sum, nil
	}
	ref := runRef(t, Config{Ranks: 3, Mode: protocol.Unmodified}, prog)
	cfg := Config{
		Ranks: 3, Mode: protocol.Full, EveryN: 3, Debug: true,
		Failures: []Failure{{Rank: 1, AtOp: 20, Incarnation: 0}},
	}
	res, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Values, ref) {
		t.Fatalf("values %v != ref %v", res.Values, ref)
	}
}

func TestStatsPiggybackAccounting(t *testing.T) {
	res, err := Run(Config{Ranks: 2, Mode: protocol.PiggybackOnly}, ringProg(10, 4))
	if err != nil {
		t.Fatal(err)
	}
	for r, s := range res.Stats {
		if s.MessagesSent != 10 {
			t.Fatalf("rank %d sent %d messages", r, s.MessagesSent)
		}
		if s.PiggybackBytes != 40 {
			t.Fatalf("rank %d piggyback bytes = %d", r, s.PiggybackBytes)
		}
		if s.CheckpointsTaken != 0 {
			t.Fatalf("piggyback-only mode took %d checkpoints", s.CheckpointsTaken)
		}
	}
}

func TestHeapSurvivesRecovery(t *testing.T) {
	prog := func(r *Rank) (any, error) {
		var it, blkID int
		r.Register("it", &it)
		r.Register("blkID", &blkID)
		if !r.Restarting() {
			blk := r.Heap().Alloc(8)
			blkID = blk.ID
		}
		for ; it < 10; it++ {
			r.PotentialCheckpoint()
			blk := r.Heap().Lookup(blkID)
			blk.Data[it%8]++
			r.Heap().Touch(blkID)
			r.Barrier()
		}
		sum := 0
		for _, b := range r.Heap().Lookup(blkID).Data {
			sum += int(b)
		}
		return sum, nil
	}
	ref := runRef(t, Config{Ranks: 2, Mode: protocol.Unmodified}, prog)
	cfg := Config{
		Ranks: 2, Mode: protocol.Full, EveryN: 3, Debug: true,
		Failures: []Failure{{Rank: 0, AtOp: 14, Incarnation: 0}},
	}
	res, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Values, ref) {
		t.Fatalf("values %v != ref %v", res.Values, ref)
	}
}

// TestHeartbeatDetectorRecovery routes failure detection through the
// heartbeat detector instead of the default instant self-report: the dead
// rank falls silent, the detector suspects it after the timeout, and the
// rollback proceeds identically.
func TestHeartbeatDetectorRecovery(t *testing.T) {
	prog := ringProg(25, 4)
	ref := runRef(t, Config{Ranks: 3, Mode: protocol.Unmodified}, prog)
	cfg := Config{
		Ranks: 3, Mode: protocol.Full, EveryN: 4, Debug: true,
		DetectorTimeout: 30 * time.Millisecond,
		Failures:        []Failure{{Rank: 1, AtOp: 90, Incarnation: 0}},
	}
	start := time.Now()
	res, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d", res.Restarts)
	}
	if !reflect.DeepEqual(res.Values, ref) {
		t.Fatalf("values %v != ref %v", res.Values, ref)
	}
	// Detection latency is real now: the run must have waited at least one
	// suspicion timeout before rolling back.
	if elapsed := time.Since(start); elapsed < cfg.DetectorTimeout {
		t.Fatalf("run finished in %v, faster than the detection timeout %v", elapsed, cfg.DetectorTimeout)
	}
}

// TestRunsAreDeterministicAcrossRepeats: identical configuration yields
// identical results — the substrate's collectives and matching introduce no
// hidden nondeterminism for deterministic programs.
func TestRunsAreDeterministicAcrossRepeats(t *testing.T) {
	prog := ringProg(15, 8)
	first := runRef(t, Config{Ranks: 4, Mode: protocol.Full, EveryN: 4}, prog)
	for i := 0; i < 3; i++ {
		again := runRef(t, Config{Ranks: 4, Mode: protocol.Full, EveryN: 4}, prog)
		if !reflect.DeepEqual(again, first) {
			t.Fatalf("repeat %d diverged: %v != %v", i, again, first)
		}
	}
}

// TestChaosAllRecovery extends adversarial reordering to the protocol's
// own control messages: the coordination must tolerate its control traffic
// interleaving arbitrarily with application messages (the paper's
// no-FIFO-assumption claim applies to the protocol layer itself — it is
// why mySendCount carries an epoch and late/intra counts are kept
// separately).
func TestChaosAllRecovery(t *testing.T) {
	prog := ringProg(20, 4)
	ref := runRef(t, Config{Ranks: 3, Mode: protocol.Unmodified}, prog)
	base := testseed.Base(t, 1)
	for seed := base; seed < base+5; seed++ {
		cfg := Config{
			Ranks: 3, Mode: protocol.Full, EveryN: 4, Debug: true,
			ChaosSeed: seed, ChaosAll: true,
			Failures: []Failure{{Rank: 2, AtOp: 70, Incarnation: 0}},
		}
		res, err := Run(cfg, prog)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if !reflect.DeepEqual(res.Values, ref) {
			t.Fatalf("seed=%d: values %v != ref %v", seed, res.Values, ref)
		}
	}
}

// TestInvalidConfigRejected covers Run's argument validation.
func TestInvalidConfigRejected(t *testing.T) {
	if _, err := Run(Config{Ranks: 0}, ringProg(1, 1)); err == nil {
		t.Fatal("zero ranks accepted")
	}
	if _, err := Run(Config{Ranks: -3}, ringProg(1, 1)); err == nil {
		t.Fatal("negative ranks accepted")
	}
}
