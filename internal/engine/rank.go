package engine

import (
	"fmt"
	"math/rand"

	"ccift/internal/ckpt"
	"ccift/internal/mpi"
	"ccift/internal/protocol"
)

// Rank is the application's view of one process: MPI-like communication
// routed through the checkpointing protocol layer, plus the state-saving
// hooks the CCIFT precompiler targets (variable registration, position
// stack, heap) and a logged source of non-determinism.
type Rank struct {
	l          *protocol.Layer
	restarting bool
	rng        *rand.Rand
	// regs mirrors the VDS's push order for registrations made through this
	// Rank, so Unregister can verify push/pop pairing by depth instead of
	// blindly popping whatever is on top.
	regs []string
}

func newRank(l *protocol.Layer, seed int64, incarnation int) *Rank {
	// Mix the incarnation into the seed: raw re-execution genuinely
	// diverges, and only the protocol's event log makes recovery
	// consistent — as on a real machine, where a restarted process sees
	// fresh randomness.
	s := seed ^ int64(l.Rank()+1)*0x1E3779B97F4A7C15 ^ int64(incarnation+1)*0x3F58476D1CE4E5B9
	return &Rank{l: l, rng: rand.New(rand.NewSource(s))}
}

// Rank returns this process's rank in the world communicator.
func (r *Rank) Rank() int { return r.l.Rank() }

// Size returns the number of processes.
func (r *Rank) Size() int { return r.l.Size() }

// Epoch returns the current checkpoint epoch.
func (r *Rank) Epoch() int { return r.l.Epoch() }

// Restarting reports whether this incarnation resumed from a checkpoint.
// Code guarded by !Restarting() is initialization that must not re-execute
// on recovery (its effects are part of the restored state).
func (r *Rank) Restarting() bool { return r.restarting }

// Layer exposes the protocol layer (tests, harness).
func (r *Rank) Layer() *protocol.Layer { return r.l }

// --- point-to-point ---

// Send sends data to dst with the given non-negative tag.
func (r *Rank) Send(dst, tag int, data []byte) { r.l.Send(dst, tag, data) }

// Recv receives a message matching (src, tag); src may be AnySource and
// tag AnyTag.
func (r *Rank) Recv(src, tag int) *protocol.AppMessage { return r.l.Recv(src, tag) }

// Isend posts a non-blocking send, returning a pseudo-handle.
func (r *Rank) Isend(dst, tag int, data []byte) protocol.Handle { return r.l.Isend(dst, tag, data) }

// Irecv posts a non-blocking receive, returning a pseudo-handle.
func (r *Rank) Irecv(src, tag int) protocol.Handle { return r.l.Irecv(src, tag) }

// Wait completes a pseudo-handle, returning the message for receives.
func (r *Rank) Wait(h protocol.Handle) *protocol.AppMessage { return r.l.Wait(h) }

// Test checks a pseudo-handle without blocking.
func (r *Rank) Test(h protocol.Handle) (*protocol.AppMessage, bool) { return r.l.Test(h) }

// Waitall completes pseudo-handles in order.
func (r *Rank) Waitall(hs []protocol.Handle) []*protocol.AppMessage { return r.l.Waitall(hs) }

// SendOwned sends a buffer whose ownership the caller hands over: no
// defensive copy is made, so the caller must not modify data after the
// call. The typed ccift.Send front end encodes into a fresh buffer and
// sends it through here, so encoding is the payload's only copy.
func (r *Rank) SendOwned(dst, tag int, data []byte) { r.l.SendOwned(dst, tag, data) }

// SendF64 sends a float64 vector. Prefer the generic ccift.Send, which
// skips this path's second payload copy.
func (r *Rank) SendF64(dst, tag int, xs []float64) { r.l.Send(dst, tag, mpi.F64Bytes(xs)) }

// RecvF64 receives a float64 vector.
func (r *Rank) RecvF64(src, tag int) []float64 { return mpi.BytesF64(r.l.Recv(src, tag).Data) }

// --- collectives ---

// Barrier synchronizes all ranks; on recovery a barrier that was executed
// while logging is not re-executed (see protocol.Layer.Barrier).
func (r *Rank) Barrier() { r.l.Barrier() }

// AlignedBarrier is the paper's barrier treatment: all participants execute
// it in the same epoch, with laggards checkpointing at the barrier site.
// Only position-stack-instrumented programs (precompiler output) may use
// it, because resume must land at the barrier itself.
func (r *Rank) AlignedBarrier() { r.l.AlignedBarrier() }

// Allreduce combines byte payloads across ranks.
func (r *Rank) Allreduce(data []byte, op mpi.Op) []byte { return r.l.Allreduce(data, op) }

// AllreduceF64 combines float64 vectors across ranks.
func (r *Rank) AllreduceF64(xs []float64, op mpi.Op) []float64 {
	return mpi.BytesF64(r.l.Allreduce(mpi.F64Bytes(xs), op))
}

// Allgather concatenates equal-sized payloads from all ranks.
func (r *Rank) Allgather(data []byte) []byte { return r.l.Allgather(data) }

// AllgatherF64 concatenates equal-length float64 vectors from all ranks.
func (r *Rank) AllgatherF64(xs []float64) []float64 {
	return mpi.BytesF64(r.l.Allgather(mpi.F64Bytes(xs)))
}

// Gather concatenates payloads at root (nil elsewhere).
func (r *Rank) Gather(root int, data []byte) []byte { return r.l.Gather(root, data) }

// GatherF64 concatenates float64 vectors at root (nil elsewhere).
func (r *Rank) GatherF64(root int, xs []float64) []float64 {
	out := r.l.Gather(root, mpi.F64Bytes(xs))
	if out == nil {
		return nil
	}
	return mpi.BytesF64(out)
}

// Bcast distributes root's payload.
func (r *Rank) Bcast(root int, data []byte) []byte { return r.l.Bcast(root, data) }

// Reduce combines payloads at root (nil elsewhere).
func (r *Rank) Reduce(root int, data []byte, op mpi.Op) []byte { return r.l.Reduce(root, data, op) }

// Scatter distributes root's payload in equal blocks.
func (r *Rank) Scatter(root int, data []byte) []byte { return r.l.Scatter(root, data) }

// Alltoall exchanges equal-sized blocks between all ranks.
func (r *Rank) Alltoall(data []byte) []byte { return r.l.Alltoall(data) }

// --- checkpointing hooks (what the precompiler inserts) ---

// PotentialCheckpoint marks a program location where a local checkpoint may
// be taken (the one annotation the paper requires from the programmer).
//
// Placement rule for hand-instrumented programs: everything the program
// re-executes after a restart (from its registered-state resume point to
// this call) must be free of communication side effects that the
// checkpoint already captured. In practice: call PotentialCheckpoint at
// the top of the iteration body, before the iteration's sends, or register
// the straddling request handles (plus a posted flag) so the restart
// resumes Wait on the revived requests instead of re-posting them —
// re-executing a pre-checkpoint send duplicates a message the receiver's
// restored state or log already accounts for. Precompiled programs are
// exempt: Position Stack instrumentation resumes at the checkpoint
// statement itself.
func (r *Rank) PotentialCheckpoint() { r.l.PotentialCheckpoint() }

// Register pushes a variable descriptor: ptr's value is saved with every
// checkpoint and restored through ptr on restart. Names must be unique per
// live scope.
func (r *Rank) Register(name string, ptr any) {
	fresh := !r.l.Saver.VDS.Live(name)
	if err := r.l.Saver.VDS.Push(name, ptr); err != nil {
		panic(err)
	}
	r.trackReg(name, fresh)
}

// trackReg records a registration made through this Rank. A re-registration
// of a live name rebinds the existing descriptor in place (the VDS does not
// grow), so only fresh pushes extend the pairing stack.
func (r *Rank) trackReg(name string, fresh bool) {
	if fresh {
		r.regs = append(r.regs, name)
	}
}

// RegisterComputed pushes a descriptor whose value is excluded from
// checkpoints (Section 7's recomputation checkpointing): only a
// fingerprint is saved, and on restart recompute must regenerate the
// identical value — read-only data like CG's matrix block is the common
// case, with the original initializer as the recomputation.
func (r *Rank) RegisterComputed(name string, ptr any, recompute func() error) {
	fresh := !r.l.Saver.VDS.Live(name)
	if err := r.l.Saver.VDS.PushComputed(name, ptr, recompute); err != nil {
		panic(err)
	}
	r.trackReg(name, fresh)
}

// RegisterReplicated pushes a descriptor for data every rank holds
// identically (Section 7's distributed redundant data): only rank 0's
// checkpoint carries the value; on restart the other ranks restore from
// rank 0's copy.
func (r *Rank) RegisterReplicated(name string, ptr any) {
	fresh := !r.l.Saver.VDS.Live(name)
	if err := r.l.Saver.VDS.PushReplicated(name, ptr); err != nil {
		panic(err)
	}
	r.trackReg(name, fresh)
}

// Touch records write intent on registered variables: under incremental
// freeze (WithIncrementalFreeze), the next checkpoint re-copies touched
// regions and re-references the previous epoch's frozen copy for clean
// ones.
//
// Placement rule: call Touch after the last write to a variable and
// before the next PotentialCheckpoint — every mutation of a registered
// non-scalar value (slice writes, reslicing or swapping slice headers,
// struct field updates) must be covered by a Touch, or the checkpoint
// freezes stale bytes and a recovery silently diverges. Scalar values
// (int, int64, uint64, float64, bool, string) are always re-copied and
// never need touching; touching them anyway is harmless. For heap blocks
// use Heap().Touch(id). Without incremental freeze, Touch is a cheap
// no-op-equivalent, so instrumented programs can call it unconditionally.
// Touching a name with no live registration panics — a typo here would
// otherwise surface as silently corrupt recovered state.
func (r *Rank) Touch(names ...string) {
	for _, name := range names {
		if err := r.l.Saver.VDS.Touch(name); err != nil {
			panic(fmt.Sprintf("engine: Rank.Touch: %v", err))
		}
	}
}

// TouchRange records write intent on a sub-range of a registered large
// slice: elements [off, off+n) of a *[]float64 or bytes [off, off+n) of a
// *[]byte. Values above the page threshold (64KB) are tracked in
// page-granular form, so a stencil that updates one halo row of a 16MB
// grid re-copies only the pages that row lands on at the next
// checkpoint, instead of the whole grid.
//
// Placement rule: as with Touch, call it after the last write to the
// range and before the next PotentialCheckpoint. Ranges are clamped to
// the value's current length; for values at or below the page threshold
// (or types without a page form) TouchRange degrades to a whole-value
// Touch, so it is always safe to call. Resizing or swapping the slice
// header still requires a full Touch — TouchRange covers element writes
// through the existing header only.
func (r *Rank) TouchRange(name string, off, n int) {
	if err := r.l.Saver.VDS.TouchRange(name, off, n); err != nil {
		panic(fmt.Sprintf("engine: Rank.TouchRange: %v", err))
	}
}

// Unregister pops the most recently registered variable (scope exit). The
// pop is verified against this Rank's registration depth: calling
// Unregister without a matching Register — or when the VDS top was pushed
// behind the Rank's back — panics naming the variable involved, so a
// missing Register surfaces at the unbalanced call site instead of as a
// silently corrupted checkpoint.
func (r *Rank) Unregister() {
	if len(r.regs) == 0 {
		panic("engine: Rank.Unregister without a matching Register")
	}
	name := r.regs[len(r.regs)-1]
	if err := r.l.Saver.VDS.PopExpect(name); err != nil {
		panic(fmt.Sprintf("engine: Rank.Unregister: %v", err))
	}
	r.regs = r.regs[:len(r.regs)-1]
}

// PS returns the position stack for precompiler-instrumented code.
func (r *Rank) PS() *ckpt.PositionStack { return r.l.Saver.PS }

// Heap returns the checkpointable heap manager.
func (r *Rank) Heap() *ckpt.Heap { return r.l.Saver.Heap }

// StateBytes reports the serialized size of the currently registered
// application state (the number Figure 8 annotates problem sizes with).
func (r *Rank) StateBytes() int {
	n, err := r.l.Saver.StateBytes()
	if err != nil {
		panic(err)
	}
	return n
}

// --- MPI library opaque objects ---

// CommDup duplicates a communicator (collective); the pseudo-handle
// survives recovery via call replay.
func (r *Rank) CommDup(parent protocol.CommHandle) protocol.CommHandle { return r.l.CommDup(parent) }

// CommSplit splits a communicator (collective).
func (r *Rank) CommSplit(parent protocol.CommHandle, color, key int) protocol.CommHandle {
	return r.l.CommSplit(parent, color, key)
}

// SubComm resolves a communicator pseudo-handle.
func (r *Rank) SubComm(h protocol.CommHandle) *mpi.Comm { return r.l.SubComm(h) }

// --- logged non-determinism ---

// Random returns a uniform float64 in [0,1). The draw is logged while a
// global checkpoint is in progress and replayed on recovery, so recovered
// executions agree with the state other processes checkpointed.
func (r *Rank) Random() float64 {
	v := r.l.NondetUint64(func() uint64 { return uint64(r.rng.Int63()) })
	return float64(v&((1<<53)-1)) / (1 << 53)
}

// RandomUint64 returns a logged uniform 64-bit value.
func (r *Rank) RandomUint64() uint64 {
	return r.l.NondetUint64(func() uint64 { return r.rng.Uint64() })
}

// Nondet routes an arbitrary non-deterministic decision through the
// protocol's event log.
func (r *Rank) Nondet(gen func() []byte) []byte { return r.l.NondetBytes(gen) }

// Scan computes the inclusive prefix reduction across ranks 0..i.
func (r *Rank) Scan(data []byte, op mpi.Op) []byte { return r.l.Scan(data, op) }

// ScanF64 is Scan over a float64 vector.
func (r *Rank) ScanF64(xs []float64, op mpi.Op) []float64 {
	return mpi.BytesF64(r.l.Scan(mpi.F64Bytes(xs), op))
}

// Reducescatter combines per-rank blocks across all ranks and returns this
// rank's block of the result.
func (r *Rank) Reducescatter(data []byte, op mpi.Op) []byte { return r.l.Reducescatter(data, op) }

// Sendrecv sends to dst and receives from src in one deadlock-free call.
func (r *Rank) Sendrecv(dst, sendTag int, data []byte, src, recvTag int) *protocol.AppMessage {
	return r.l.Sendrecv(dst, sendTag, data, src, recvTag)
}

// Iprobe reports whether a message matching (src, tag) is available
// without receiving it; src may be AnySource and tag AnyTag.
func (r *Rank) Iprobe(src, tag int) (ok bool, msgSrc, msgTag int) { return r.l.Iprobe(src, tag) }
