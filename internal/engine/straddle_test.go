package engine

import (
	"reflect"
	"testing"

	"ccift/internal/mpi"
	"ccift/internal/protocol"
)

// TestStraddlingHandleRecoverySweep is the timing-sensitive companion of
// TestIsendIrecvAcrossCheckpoints: recovery of a program whose request
// handles straddle the checkpoint, repeated many times so the kill lands
// at many different points of the checkpoint pipeline (before the first
// commit, mid-flush, between commit and prune, ...). Runs in both
// checkpoint-write modes; the values must match a fault-free reference in
// every interleaving. (A previous version of the program re-executed its
// pre-checkpoint Isend on restart, which diverged whenever the kill
// happened to land after the first commit — see the PotentialCheckpoint
// placement rule on Rank.)
func TestStraddlingHandleRecoverySweep(t *testing.T) {
	prog := func(r *Rank) (any, error) {
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() - 1 + r.Size()) % r.Size()
		var it int
		var total float64
		var posted bool
		var h protocol.Handle
		r.Register("it", &it)
		r.Register("total", &total)
		r.Register("posted", &posted)
		r.Register("h", &h)
		for ; it < 20; it++ {
			if !posted {
				h = r.Irecv(prev, 1)
				r.Touch("h") // write intent: Handle is a struct, not an exempt scalar
				r.Isend(next, 1, mpi.F64Bytes([]float64{float64(r.Rank()*1000 + it)}))
				posted = true
			}
			r.PotentialCheckpoint()
			m := r.Wait(h)
			posted = false
			total += mpi.BytesF64(m.Data)[0]
		}
		return total, nil
	}
	ref := runRef(t, Config{Ranks: 3, Mode: protocol.Unmodified}, prog)
	reps := 25
	if testing.Short() {
		reps = 8
	}
	for _, syncCkpt := range []bool{false, true} {
		for i := 0; i < reps; i++ {
			cfg := Config{
				Ranks: 3, Mode: protocol.Full, EveryN: 4, Debug: true, SyncCheckpoint: syncCkpt,
				Failures: []Failure{{Rank: 2, AtOp: 52, Incarnation: 0}},
			}
			res, err := Run(cfg, prog)
			if err != nil {
				t.Fatalf("sync=%v: %v", syncCkpt, err)
			}
			if !reflect.DeepEqual(res.Values, ref) {
				t.Fatalf("sync=%v rep %d diverged: %v != %v (recovered=%v)", syncCkpt, i, res.Values, ref, res.RecoveredEpochs)
			}
		}
	}
}
