package engine

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ccift/internal/mpi"
	"ccift/internal/protocol"
	"ccift/internal/storage"
)

// In-process crash-during-flush: the deterministic companion of the
// distributed TestDistributedKillMidFlush. A fault-injecting Stable
// wrapper holds the doomed rank's epoch-2 state-manifest write open and
// signals the moment it begins; the rank then dies (fail-stop panic) with
// its checkpoint flush provably in flight. Epoch 1 is committed before any
// rank can begin checkpoint 2 (the initiator starts a new global
// checkpoint only after the previous commit record is durable), and epoch
// 2 can never commit because the dead rank never reports stoppedLogging —
// so recovery from exactly epoch 1 is guaranteed, and the recovered run
// must reproduce the fault-free values.

// slowManifest delays writes to one key and closes started when the first
// such write begins. Every other operation passes straight through.
type slowManifest struct {
	storage.Stable
	key     string
	delay   time.Duration
	started chan struct{}
	once    sync.Once
}

func (s *slowManifest) Put(key string, data []byte) error {
	if key == s.key {
		s.once.Do(func() { close(s.started) })
		time.Sleep(s.delay)
	}
	return s.Stable.Put(key, data)
}

// crashProg builds a ring-exchange program; when started is non-nil, rank
// `doomed` dies — once — as soon as started closes (i.e. as soon as its
// own checkpoint flush is mid-write). A nil channel builds the fault-free
// reference program. Beyond the scalars, each rank carries a grid it
// partially rewrites (with Touch write intent) every iteration and folds
// into its result, so the incremental-freeze variant cannot recover from
// a stale frozen region without the checksum diverging.
func crashProg(doomed int, started <-chan struct{}, died *atomic.Bool) Program {
	return func(r *Rank) (any, error) {
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() - 1 + r.Size()) % r.Size()
		var it int
		var total float64
		grid := make([]float64, 2048)
		r.Register("it", &it)
		r.Register("total", &total)
		r.Register("grid", &grid)
		for ; it < 30; it++ {
			r.PotentialCheckpoint()
			if r.Rank() == doomed {
				select {
				case <-started:
					if died.CompareAndSwap(false, true) {
						// Simulated process crash: no cleanup, flush still
						// in flight on the background flusher.
						panic(mpi.ErrKilled)
					}
				default:
				}
			}
			h := r.Irecv(prev, 1)
			r.Isend(next, 1, mpi.F64Bytes([]float64{float64(r.Rank()*1000 + it)}))
			m := r.Wait(h)
			total += mpi.BytesF64(m.Data)[0]
			for j := 0; j < 64; j++ {
				grid[(it*131+j)%len(grid)] += total
			}
			r.Touch("grid")
		}
		for _, x := range grid {
			total += x
		}
		return total, nil
	}
}

func TestCrashDuringFlushRecovery(t *testing.T) {
	const doomed = 2
	var noDeath atomic.Bool
	ref := runRef(t, Config{Ranks: 3, Mode: protocol.Unmodified}, crashProg(doomed, nil, &noDeath))

	// Both write modes must survive a crash mid-flush: the async pipeline
	// with full freezes, and the dirty-region incremental pipeline whose
	// epoch-2 flush shares epoch-1 slabs at the moment of death.
	for _, variant := range []string{"full-freeze", "incremental"} {
		t.Run(variant, func(t *testing.T) {
			store := &slowManifest{
				Stable:  storage.NewMemory(),
				key:     storage.StateKey(2, doomed),
				delay:   150 * time.Millisecond,
				started: make(chan struct{}),
			}
			var died atomic.Bool
			res, err := Run(Config{
				Ranks: 3, Mode: protocol.Full, EveryN: 5, Debug: true, Store: store,
				FullFreeze: variant == "full-freeze",
			}, crashProg(doomed, store.started, &died))
			if err != nil {
				t.Fatal(err)
			}
			if !died.Load() {
				t.Fatal("the doomed rank never died: epoch 2's flush was not observed in flight")
			}
			if len(res.RecoveredEpochs) != 1 || res.RecoveredEpochs[0] != 1 {
				t.Fatalf("recovered epochs %v, want [1]: a crash mid-flush must fall back to the previous committed epoch, never the one in flight", res.RecoveredEpochs)
			}
			if !reflect.DeepEqual(res.Values, ref) {
				t.Fatalf("recovered values %v != fault-free %v", res.Values, ref)
			}
		})
	}
}
