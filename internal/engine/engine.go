// Package engine runs MPI-style programs under the checkpointing protocol:
// it spawns one goroutine per rank, injects stopping failures, plays the
// role of the distributed failure detector, and drives rollback-restart
// from the last committed global checkpoint.
package engine

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ccift/internal/cerr"
	"ccift/internal/clock"
	"ccift/internal/detector"
	"ccift/internal/mpi"
	"ccift/internal/protocol"
	"ccift/internal/storage"
)

// Program is the application entry point executed by every rank. It must
// route all communication and non-determinism through the Rank, register
// its recoverable state, and call PotentialCheckpoint at checkpointable
// locations. On restart it is re-invoked with Restarting() true.
type Program func(r *Rank) (any, error)

// Failure schedules a stopping failure: the given rank dies at its AtOp-th
// substrate operation of the given incarnation (incarnation 0 is the
// initial run).
type Failure struct {
	Rank        int
	AtOp        int64
	Incarnation int
}

// Config configures a run.
type Config struct {
	// Ranks is the number of processes. Required.
	Ranks int
	// Mode selects the Figure-8 program version. Default Unmodified.
	Mode protocol.Mode
	// Store is the stable storage backing checkpoints. Default in-memory.
	Store storage.Stable
	// EveryN asks the initiator for a global checkpoint every N-th
	// PotentialCheckpoint call on rank 0; Interval does the same on a wall
	// clock (the paper used 30 s). Zero disables each trigger.
	EveryN   int
	Interval time.Duration
	// Failures is the injected failure schedule.
	Failures []Failure
	// MaxRestarts bounds rollback attempts. Default 10.
	MaxRestarts int
	// ChaosSeed enables adversarial reordering of application messages.
	ChaosSeed int64
	ChaosAll  bool
	// Seed is the base seed for per-rank application randomness. The
	// incarnation number is mixed in, so un-logged randomness genuinely
	// diverges across restarts (the protocol's event log is what keeps
	// recovery consistent).
	Seed int64
	// Debug enables protocol assertions.
	Debug bool
	// Tracer, when non-nil, receives protocol events from every rank (see
	// internal/trace for a recorder that renders space-time diagrams).
	Tracer protocol.Tracer
	// DetectorTimeout, when non-zero, routes failure detection through the
	// heartbeat detector (internal/detector) instead of the default
	// fail-stop self-report: a stopped rank is noticed only when its
	// runtime's heartbeats go silent for this long, as on a real cluster.
	DetectorTimeout time.Duration
	// NewTransport, when non-nil, supplies the wire substrate for each
	// incarnation's world; nil selects the in-process indexed-mailbox
	// transport. The public API's WithTransport option lands here.
	NewTransport func(*mpi.World) mpi.Transport
	// SyncCheckpoint disables the asynchronous checkpoint pipeline and
	// restores the classic stop-serialize-fsync path. The default (false)
	// freezes a copy of the live state and overlaps the durable write with
	// continued computation on a per-rank background flusher; sync is kept
	// for baselines and for measuring the overlap's win.
	SyncCheckpoint bool
	// ChunkSize is the chunk granularity of the content-hashed chunked
	// state writer (bytes); 0 selects storage.DefaultChunkSize. Unchanged
	// chunks are re-referenced instead of re-written across epochs.
	ChunkSize int
	// FullFreeze disables dirty-region (incremental) checkpointing and
	// re-copies the whole registered state at every freeze. The default
	// (false) is the incremental path: a checkpoint's blocking freeze
	// copies only regions the program touched since the previous epoch
	// (Rank.Touch / Rank.TouchRange / Heap.Touch write intent;
	// registration, resize and unregister dirty implicitly) and
	// re-references the prior frozen slabs for clean ones. Programs MUST
	// honor the Touch contract for every registered non-scalar value they
	// mutate — an untracked write recovers stale; set FullFreeze (or run
	// FreezeCrossCheck once) when auditing a program that may not.
	FullFreeze bool
	// FreezeCrossCheck verifies every frozen view byte-for-byte against a
	// fresh encode of the live state, turning a missed Touch into an
	// immediate ErrProgram naming the variable. Debug mode: costs a full
	// encode per checkpoint.
	FreezeCrossCheck bool
	// FlushBandwidth caps checkpoint write streaming at this many bytes
	// per second on both the sync and async paths; 0 = no fixed cap.
	FlushBandwidth float64
	// NoFlushGovernor disables the adaptive flush governor that throttles
	// the async flusher when the rank's compute throughput drops more
	// than the target fraction below its flush-free baseline.
	NoFlushGovernor bool
	// ChunkPipeline selects the chunked state writer's pipeline depth
	// (0 = default depth, negative = serial writer).
	ChunkPipeline int
	// StatsSink, when non-nil, receives live per-rank counter snapshots as
	// the run progresses (each completed checkpoint and each rank's
	// finish), tagged with rank and incarnation. Called concurrently from
	// rank goroutines; the sink must synchronize (protocol.Aggregator
	// does). The public metrics endpoint is fed from here.
	StatsSink func(protocol.StatsFrame)
	// OnRestart, when non-nil, is called after each rollback-restart
	// decision with the cumulative restart count, before the next
	// incarnation spawns.
	OnRestart func(restarts int)
	// Clock is the time source for the failure detector, interval
	// triggers, and blocked/flush-time accounting; nil selects the wall
	// clock. The simulated substrate passes its virtual clock here, so a
	// 30-second heartbeat schedule elapses in microseconds.
	Clock clock.Clock
	// RankClock, when non-nil, supplies each rank's protocol-layer clock
	// (the simulated substrate's per-rank skew); nil gives every rank
	// Clock. The detector always runs on Clock — skew between the ranks
	// and the detector is exactly what clock-skew scenarios probe.
	RankClock func(rank int) clock.Clock
	// WholeWorldRestart disables localized recovery: survivors re-read
	// their checkpoint from the store instead of their in-memory retained
	// copy, and (on the distributed substrate) the launcher respawns the
	// whole incarnation instead of only the dead ranks. The pre-localized
	// behaviour, kept as a fallback and for A/B measurement.
	WholeWorldRestart bool
}

// Result reports a completed run.
type Result struct {
	// Values holds each rank's program return value. (The public Launch
	// API reuses this type for distributed runs, where only rank 0's
	// result crosses the process boundary — see ccift.Launch.)
	Values []any
	// Restarts is the number of rollback-restarts performed.
	Restarts int
	// RecoveredEpochs lists the epoch recovered from at each restart
	// (-1 when no checkpoint was available and the program restarted from
	// the beginning).
	RecoveredEpochs []int
	// Stats aggregates the protocol-layer statistics of the final
	// incarnation, per rank.
	Stats []protocol.Stats
	// PerRank is Stats with each entry tagged by rank and incarnation —
	// the shape both substrates report, so observability code written
	// against it is substrate-independent.
	PerRank []protocol.RankStats
	// Incarnations reports each distributed incarnation's worker
	// processes (empty on the in-process and simulated substrates, where
	// ranks are goroutines). With localized recovery a surviving rank's
	// PID is stable across entries; whole-world restart re-execs everyone.
	Incarnations []IncarnationInfo
}

// IncarnationInfo is the per-incarnation process view of a distributed
// run: one entry per rank.
type IncarnationInfo struct {
	// PIDs[r] is rank r's OS process ID during this incarnation.
	PIDs []int
	// Exits[r] describes how rank r's process left this incarnation
	// ("exit status 0", "signal: killed", ...); empty while it kept
	// running into the next incarnation (localized recovery's survivors).
	Exits []string
	// RecoveredEpoch is the epoch the NEXT incarnation restored from (-1
	// for a restart from the beginning, or for the final incarnation).
	RecoveredEpoch int
}

// ErrTooManyRestarts is returned when the failure schedule exhausts
// MaxRestarts. It wraps the taxonomy's cerr.ErrMaxRestarts, so both the
// historical errors.Is(err, ErrTooManyRestarts) check and the public
// ccift.ErrMaxRestarts category match the same errors.
var ErrTooManyRestarts = fmt.Errorf("engine: too many restarts: %w", cerr.ErrMaxRestarts)

// RunError is the structured failure report of a run: which rank ended it
// (-1 when the failure is not attributable to one rank), in which
// incarnation, and how many rollback-restarts had been consumed. The
// underlying cause is reachable through Unwrap, so errors.Is/As work on
// sentinel causes (ErrTooManyRestarts, context.Canceled, ...).
type RunError struct {
	// Rank is the rank whose program error or panic ended the run, or -1
	// when the run ended for a world-wide reason (cancellation, exhausted
	// restarts, storage failure).
	Rank int
	// Incarnation is the incarnation in which the run ended (0 is the
	// initial execution; -1 when the substrate cannot attribute the end to
	// one incarnation, as for the distributed launcher).
	Incarnation int
	// Restarts is the number of rollback-restarts performed before the end.
	Restarts int
	// Err is the underlying cause.
	Err error
}

func (e *RunError) Error() string {
	who := "run"
	if e.Rank >= 0 {
		who = fmt.Sprintf("rank %d", e.Rank)
	}
	if e.Incarnation < 0 {
		// The substrate could not attribute the failure (distributed
		// launcher): the cause already tells the whole story.
		return fmt.Sprintf("engine: %s failed: %v", who, e.Err)
	}
	return fmt.Sprintf("engine: %s failed in incarnation %d after %d restart(s): %v",
		who, e.Incarnation, e.Restarts, e.Err)
}

func (e *RunError) Unwrap() error { return e.Err }

// Validate checks a Config for the errors that previously surfaced as
// panics or hangs deep inside a run. It is called by Run/RunContext and by
// the public API's spec validation.
func (cfg Config) Validate() error {
	if cfg.Ranks <= 0 {
		return fmt.Errorf("%w: Ranks must be positive, got %d", cerr.ErrSpec, cfg.Ranks)
	}
	if cfg.MaxRestarts < 0 {
		return fmt.Errorf("%w: MaxRestarts must not be negative, got %d", cerr.ErrSpec, cfg.MaxRestarts)
	}
	if cfg.EveryN < 0 {
		return fmt.Errorf("%w: EveryN must not be negative, got %d", cerr.ErrSpec, cfg.EveryN)
	}
	if cfg.Interval < 0 {
		return fmt.Errorf("%w: Interval must not be negative, got %v", cerr.ErrSpec, cfg.Interval)
	}
	if cfg.EveryN > 0 && cfg.Interval > 0 {
		return fmt.Errorf("%w: conflicting checkpoint triggers: EveryN (%d) and Interval (%v) are mutually exclusive — pick one",
			cerr.ErrSpec, cfg.EveryN, cfg.Interval)
	}
	if cfg.ChunkSize < 0 {
		return fmt.Errorf("%w: ChunkSize must not be negative, got %d", cerr.ErrSpec, cfg.ChunkSize)
	}
	for i, f := range cfg.Failures {
		if f.Rank < 0 || f.Rank >= cfg.Ranks {
			return fmt.Errorf("%w: Failures[%d]: rank %d out of range [0,%d)", cerr.ErrSpec, i, f.Rank, cfg.Ranks)
		}
		if f.AtOp <= 0 {
			return fmt.Errorf("%w: Failures[%d]: AtOp must be positive, got %d", cerr.ErrSpec, i, f.AtOp)
		}
		if f.Incarnation < 0 {
			return fmt.Errorf("%w: Failures[%d]: Incarnation must not be negative, got %d", cerr.ErrSpec, i, f.Incarnation)
		}
	}
	return nil
}

// Run executes prog on cfg.Ranks ranks, rolling back and restarting from
// the last committed global checkpoint whenever a rank stop-fails, until
// the program completes on every rank.
func Run(cfg Config, prog Program) (*Result, error) {
	return RunContext(context.Background(), cfg, prog)
}

// RunContext is Run under a context: when ctx is canceled or its deadline
// expires, every rank is unblocked, the incarnation is abandoned, and the
// run returns a *RunError wrapping ctx's error — there is no way to resume
// it. Cancellation is observed at every substrate operation and whenever a
// rank is parked in the transport, so it takes effect without waiting for
// the program to reach any particular point.
func RunContext(ctx context.Context, cfg Config, prog Program) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Store == nil {
		cfg.Store = storage.NewMemory()
	}
	if cfg.MaxRestarts == 0 {
		cfg.MaxRestarts = 10
	}
	// CCIFT_FREEZE_CROSSCHECK=1 force-enables the freeze verifier on every
	// incremental run in the process — CI's race job soaks the whole suite
	// under it, so any test program that mutates registered state without
	// Touch fails loudly there instead of recovering stale in production.
	if !cfg.FullFreeze && os.Getenv("CCIFT_FREEZE_CROSSCHECK") == "1" {
		cfg.FreezeCrossCheck = true
	}
	cs := storage.NewCheckpointStore(cfg.Store)
	res := &Result{}

	// Localized recovery: each rank's layer retains an in-memory copy of
	// its serialized checkpoint, carried here across incarnations so
	// survivors of a failure restore without store reads. Disabled (nil)
	// under WholeWorldRestart; entries of ranks that died are dropped.
	var retained [][]*protocol.RetainedState
	if !cfg.WholeWorldRestart && cfg.Mode == protocol.Full {
		retained = make([][]*protocol.RetainedState, cfg.Ranks)
	}

	for incarnation := 0; ; incarnation++ {
		if cause := ctx.Err(); cause != nil {
			// Covers cancellation before the first incarnation and between
			// incarnations — i.e. during the rollback a failed incarnation
			// scheduled.
			when := "before it started"
			if incarnation > 0 {
				when = "during rollback"
			}
			return nil, &RunError{Rank: -1, Incarnation: incarnation, Restarts: res.Restarts,
				Err: fmt.Errorf("%w %s: %w", cerr.ErrCanceled, when, cause)}
		}
		if incarnation > cfg.MaxRestarts {
			return nil, &RunError{Rank: -1, Incarnation: incarnation, Restarts: res.Restarts,
				Err: fmt.Errorf("%w (%d)", ErrTooManyRestarts, cfg.MaxRestarts)}
		}
		epoch, haveCkpt, err := cs.Committed()
		if err != nil {
			return nil, &RunError{Rank: -1, Incarnation: incarnation, Restarts: res.Restarts,
				Err: fmt.Errorf("%w: read commit record: %w", cerr.ErrStore, err)}
		}
		if incarnation > 0 {
			if haveCkpt && cfg.Mode != protocol.Full {
				return nil, &RunError{Rank: -1, Incarnation: incarnation, Restarts: res.Restarts,
					Err: fmt.Errorf("%w: cannot recover from a checkpoint in mode %v", cerr.ErrWorldDead, cfg.Mode)}
			}
			rec := -1
			if haveCkpt {
				rec = epoch
			}
			res.RecoveredEpochs = append(res.RecoveredEpochs, rec)
		}

		// Recovery gather, run once by the driver (Section 4.2: "the
		// senders of these early messages are informed of the messageIDs so
		// that resending these messages can be suppressed"): O(world) tiny
		// sidecar reads build every sender's suppression list and the
		// primary's replica set, and each rank is handed only its slice.
		suppress := make([][]uint32, cfg.Ranks)
		var replicas map[string][]byte
		restore := incarnation > 0 && haveCkpt
		if restore {
			plan, err := protocol.GatherRecovery(cs, epoch, cfg.Ranks)
			if err != nil {
				return nil, &RunError{Rank: -1, Incarnation: incarnation, Restarts: res.Restarts,
					Err: fmt.Errorf("%w: gather recovery plan: %w", cerr.ErrStore, err)}
			}
			suppress, replicas = plan.Suppress, plan.Replicas
		}

		world := mpi.NewWorld(cfg.Ranks, mpi.Options{
			ChaosSeed:    cfg.ChaosSeed,
			ChaosAll:     cfg.ChaosAll,
			KillPlan:     killPlan(cfg.Failures, incarnation),
			NewTransport: cfg.NewTransport,
		})

		out := runIncarnation(ctx, cfg, cs, world, prog, incarnation, epoch, restore, suppress, replicas, retained)
		if out.canceled {
			cause := ctx.Err()
			if cause == nil {
				cause = mpi.ErrCanceled
			}
			return nil, &RunError{Rank: -1, Incarnation: incarnation, Restarts: res.Restarts,
				Err: fmt.Errorf("%w: %w", cerr.ErrCanceled, cause)}
		}
		if out.failed {
			res.Restarts++
			if cfg.OnRestart != nil {
				cfg.OnRestart(res.Restarts)
			}
			continue
		}
		if out.err != nil {
			out.err.Incarnation = incarnation
			out.err.Restarts = res.Restarts
			return nil, out.err
		}
		res.Values = out.values
		res.Stats = out.stats
		res.PerRank = make([]protocol.RankStats, len(out.stats))
		for r, s := range out.stats {
			res.PerRank[r] = protocol.RankStats{Rank: r, Incarnation: incarnation, Stats: s}
		}
		return res, nil
	}
}

type incarnationResult struct {
	failed   bool
	canceled bool
	err      *RunError
	values   []any
	stats    []protocol.Stats
}

func runIncarnation(ctx context.Context, cfg Config, cs *storage.CheckpointStore, world *mpi.World,
	prog Program, incarnation, epoch int, restore bool, suppress [][]uint32,
	replicas map[string][]byte, retained [][]*protocol.RetainedState) incarnationResult {

	// Cancellation: the moment ctx is done, cancel the world so every rank
	// — blocked in the substrate or about to enter it — unwinds with
	// mpi.ErrCanceled. Stopped when the incarnation ends either way.
	stopCancel := context.AfterFunc(ctx, world.Cancel)
	defer stopCancel()

	n := cfg.Ranks
	values := make([]any, n)
	errs := make([]error, n)
	panics := make([]any, n)
	stats := make([]protocol.Stats, n)
	var finished atomic.Int64
	var wg sync.WaitGroup

	// Failure detection. With a timeout configured, a heartbeat detector
	// watches each rank's (simulated) runtime and declares the world dead
	// when one goes silent — the paper's assumed detection mechanism. The
	// default is immediate self-report, which is the same outcome with a
	// zero detection latency.
	useDetector := cfg.DetectorTimeout > 0
	var stopDetector chan struct{}
	if useDetector {
		stopDetector = make(chan struct{})
		defer close(stopDetector)
		d := detector.New(n, cfg.DetectorTimeout, cfg.Clock)
		d.Monitor(cfg.DetectorTimeout/4,
			func(rank int) bool { return !world.Killed(rank) },
			func([]int) { world.Shutdown() },
			stopDetector)
	}

	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// Lifecycle note for transports that track rank goroutines
			// (the simulated substrate's quiescence accounting): registered
			// before the recover/shutdown defers so the rank is fully
			// unwound when it runs.
			defer world.RankDone(r)
			defer func() {
				if p := recover(); p != nil {
					panics[r] = p
					switch p {
					case mpi.ErrKilled:
						if !useDetector {
							// Default fail-stop self-report: the death is
							// announced instantly and survivors unblock. With
							// the heartbeat detector enabled, the dead rank
							// stays silent and the detector raises the alarm
							// after its timeout instead.
							world.Shutdown()
						}
					case mpi.ErrWorldDead, mpi.ErrCanceled:
						// Already a global unwind; nothing to announce.
					default:
						// An internal failure (store write, restore, an
						// application panic) is fail-stop too: announce it so
						// survivors parked in receives unblock instead of
						// waiting forever on a rank that will never send.
						world.Shutdown()
					}
				}
			}()
			var sink func(protocol.Stats)
			if cfg.StatsSink != nil {
				sink = func(s protocol.Stats) {
					cfg.StatsSink(protocol.StatsFrame{V: protocol.StatsWireVersion,
						Rank: r, Incarnation: incarnation, Stats: s})
				}
			}
			rankClk := cfg.Clock
			if cfg.RankClock != nil {
				rankClk = cfg.RankClock(r)
			}
			layer := protocol.NewLayer(world.Comm(r), protocol.Config{
				Mode:              cfg.Mode,
				Store:             cs,
				EveryN:            cfg.EveryN,
				Interval:          cfg.Interval,
				Debug:             cfg.Debug,
				Tracer:            cfg.Tracer,
				Ctx:               ctx,
				AsyncFlush:        !cfg.SyncCheckpoint,
				ChunkSize:         cfg.ChunkSize,
				IncrementalFreeze: !cfg.FullFreeze,
				FreezeCrossCheck:  cfg.FreezeCrossCheck,
				FlushBandwidth:    cfg.FlushBandwidth,
				NoFlushGovernor:   cfg.NoFlushGovernor,
				ChunkPipeline:     cfg.ChunkPipeline,
				RetainForRecovery: retained != nil,
				StatsSink:         sink,
				Clock:             rankClk,
			})
			if retained != nil {
				// Localized recovery: carry this rank's in-memory checkpoint
				// copies to the next incarnation — unless the rank itself
				// died, in which case its memory is considered lost and it
				// must restore from the store like a respawned process.
				// Registered before the Shutdown defer (LIFO) so the flusher
				// has drained and the last flush is integrated when it runs.
				defer func() {
					if world.Killed(r) {
						retained[r] = nil
					} else {
						retained[r] = layer.Retained()
					}
				}()
			}
			// The background flusher must not outlive this incarnation:
			// Shutdown waits for an in-flight state write (registered after
			// the recover defer, so it runs first on a panic unwind and a
			// dying rank never leaks a goroutine still writing to the
			// store a later incarnation reads).
			defer layer.Shutdown()
			rank := newRank(layer, cfg.Seed, incarnation)
			if restore {
				var ret []*protocol.RetainedState
				if retained != nil {
					ret = retained[r]
				}
				app, err := layer.RestoreFrom(epoch, suppress[r], ret)
				if err != nil {
					panic(fmt.Errorf("engine: rank %d restore: %w: %w", r, cerr.ErrStore, err))
				}
				layer.Saver.VDS.SetReplicas(replicas)
				if err := layer.Saver.StartRestore(app); err != nil {
					panic(fmt.Errorf("engine: rank %d app restore: %w: %w", r, cerr.ErrStore, err))
				}
				rank.restarting = true
			}
			v, err := prog(rank)
			values[r], errs[r] = v, err
			stats[r] = layer.Stats
			layer.Finish()
			if finished.Add(1) == int64(n) {
				// Last rank out: wake every finished rank parked in
				// ServiceControlUntil so they observe completion.
				world.Interrupt()
			}
			// Keep servicing protocol control traffic until every rank is
			// done, so an in-flight global checkpoint does not stall on a
			// rank that finished early. The rank parks on its mailbox and
			// wakes only for control messages or the completion interrupt —
			// no polling.
			layer.ServiceControlUntil(func() bool {
				return finished.Load() >= int64(n)
			})
			// Drain the flusher before reading final stats: a checkpoint
			// still in flight at completion is finished (its bytes count)
			// and a failed flush surfaces as this rank's error.
			if err := layer.Shutdown(); err != nil && errs[r] == nil {
				errs[r] = err
			}
			stats[r] = layer.Stats
			if cfg.StatsSink != nil {
				cfg.StatsSink(protocol.StatsFrame{V: protocol.StatsWireVersion,
					Rank: r, Incarnation: incarnation, Final: true, Stats: layer.Stats})
			}
		}(r)
	}
	wg.Wait()

	// Cancellation dominates: a canceled run must report ctx.Err() even if
	// some ranks happened to observe a concurrent injected failure.
	for r := 0; r < n; r++ {
		if panics[r] == mpi.ErrCanceled {
			return incarnationResult{canceled: true}
		}
	}
	// A real panic (store failure, application bug) dominates ErrKilled /
	// ErrWorldDead: the shutdown it triggered to unblock the survivors is
	// collateral, not the cause, so scan for the cause first.
	for r := 0; r < n; r++ {
		switch panics[r] {
		case nil, mpi.ErrKilled, mpi.ErrWorldDead:
		default:
			// A panic carrying an already-categorized error (a store failure
			// raised by the flusher, a restore failure) keeps its category;
			// anything else is the application's fault.
			var perr error
			if e, ok := panics[r].(error); ok && cerr.Category(e) != nil {
				perr = e
			} else {
				perr = fmt.Errorf("%w: rank panicked: %v", cerr.ErrProgram, panics[r])
			}
			return incarnationResult{err: &RunError{Rank: r, Err: perr}}
		}
	}
	for r := 0; r < n; r++ {
		switch panics[r] {
		case mpi.ErrKilled, mpi.ErrWorldDead:
			return incarnationResult{failed: true}
		}
	}
	for r := 0; r < n; r++ {
		if errs[r] != nil {
			return incarnationResult{err: &RunError{Rank: r, Err: cerr.Ensure(errs[r], cerr.ErrProgram)}}
		}
	}
	return incarnationResult{values: values, stats: stats}
}

func killPlan(failures []Failure, incarnation int) map[int]int64 {
	plan := map[int]int64{}
	for _, f := range failures {
		if f.Incarnation == incarnation {
			plan[f.Rank] = f.AtOp
		}
	}
	return plan
}
