package engine

import (
	"reflect"
	"testing"
	"time"

	"ccift/internal/protocol"
	"ccift/internal/sim"
)

// simConfig wires a fresh simulated substrate into cfg: transport, virtual
// clocks, and the synchronous checkpoint path (the async flusher's overlap
// is a wall-clock optimization that means nothing in virtual time).
func simConfig(t *testing.T, cfg Config, sc sim.Scenario) Config {
	t.Helper()
	s, err := sim.New(cfg.Ranks, sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	cfg.NewTransport = s.NewTransport
	cfg.Clock = s.DetectorClock()
	cfg.RankClock = s.RankClock
	cfg.SyncCheckpoint = true
	return cfg
}

// TestSimHeartbeatDetectorRecovery is the virtual-time port of
// TestHeartbeatDetectorRecovery: the dead rank falls silent, the heartbeat
// detector suspects it after a purely virtual timeout, and the rollback
// proceeds identically — with zero real sleeps anywhere in the run.
func TestSimHeartbeatDetectorRecovery(t *testing.T) {
	prog := ringProg(25, 4)
	ref := runRef(t, Config{Ranks: 3, Mode: protocol.Unmodified}, prog)

	sc := sim.Scenario{Seed: 1, Latency: 200 * time.Microsecond}
	cfg := simConfig(t, Config{
		Ranks: 3, Mode: protocol.Full, EveryN: 4, Debug: true,
		DetectorTimeout: 30 * time.Second, // virtual: costs nothing real
		Failures:        []Failure{{Rank: 1, AtOp: 90, Incarnation: 0}},
	}, sc)

	start := time.Now()
	res, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d", res.Restarts)
	}
	if !reflect.DeepEqual(res.Values, ref) {
		t.Fatalf("values %v != ref %v", res.Values, ref)
	}
	// The whole point: a 30-second suspicion timeout must not cost
	// 30 seconds. Generous bound for race-detector CI runners.
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("virtual-time detection took %v of wall time", elapsed)
	}
}

// TestSimIntervalInitiatorVirtualTime ports the interval-trigger test to
// virtual time: message latency makes the ring advance the clock, and the
// initiator's 50ms interval fires from clock progress alone — no sleeps,
// and the checkpoint count is exactly reproducible.
func TestSimIntervalInitiatorVirtualTime(t *testing.T) {
	prog := ringProg(120, 4)
	mk := func() Config {
		return simConfig(t, Config{
			Ranks: 2, Mode: protocol.Full, Debug: true,
			Interval: 50 * time.Millisecond,
		}, sim.Scenario{Seed: 7, Latency: time.Millisecond})
	}
	res, err := Run(mk(), prog)
	if err != nil {
		t.Fatal(err)
	}
	// 120 iterations x >=1ms of virtual latency per exchange crosses the
	// 50ms interval at least once.
	if got := res.Stats[0].CheckpointsTaken; got < 1 {
		t.Fatalf("interval trigger never fired: %d checkpoints", got)
	}
	// Same seed, fresh simulation: identical values and counters.
	again, err := Run(mk(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Values, res.Values) {
		t.Fatalf("values diverged across identical simulated runs")
	}
	a, aw := normalizeStats(res.Stats)
	b, bw := normalizeStats(again.Stats)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("protocol counters diverged:\n  %+v\n  %+v", a, b)
	}
	if aw != bw {
		t.Fatalf("aggregate bytes written diverged: %d vs %d", aw, bw)
	}
}

// normalizeStats prepares per-rank protocol counters for cross-run
// comparison. CheckpointBytesWritten attributes each deduplicated chunk to
// whichever rank stored it first — a race between rank goroutines the
// simulation does not schedule — so per-rank values vary while the sum is
// exact. It is zeroed per rank and returned as an aggregate instead.
func normalizeStats(in []protocol.Stats) ([]protocol.Stats, int64) {
	out := make([]protocol.Stats, len(in))
	var written int64
	for i, s := range in {
		written += s.CheckpointBytesWritten
		s.CheckpointBytesWritten = 0
		out[i] = s
	}
	return out, written
}
