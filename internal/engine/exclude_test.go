package engine

import (
	"reflect"
	"testing"

	"ccift/internal/mpi"
	"ccift/internal/protocol"
	"ccift/internal/storage"
)

// TestReplicatedStateRecovery: data every rank holds identically is saved
// once and redistributed on recovery.
func TestReplicatedStateRecovery(t *testing.T) {
	prog := func(r *Rank) (any, error) {
		var it int
		var acc float64
		table := make([]float64, 4096) // identical on every rank
		r.Register("it", &it)
		r.Register("acc", &acc)
		r.RegisterReplicated("table", &table)
		if !r.Restarting() {
			for i := range table {
				table[i] = float64(i % 97)
			}
		}
		for ; it < 30; it++ {
			r.PotentialCheckpoint()
			s := r.AllreduceF64([]float64{table[(it*37)%len(table)]}, mpi.SumF64)
			acc += s[0]
		}
		return acc, nil
	}
	ref := runRef(t, Config{Ranks: 3, Mode: protocol.Unmodified}, prog)

	store := storage.NewMemory()
	cfg := Config{
		Ranks: 3, Mode: protocol.Full, EveryN: 5, Store: store, Debug: true,
		Failures: []Failure{{Rank: 2, AtOp: 150, Incarnation: 0}},
	}
	res, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 || res.RecoveredEpochs[0] < 1 {
		t.Fatalf("restarts=%d epochs=%v", res.Restarts, res.RecoveredEpochs)
	}
	if !reflect.DeepEqual(res.Values, ref) {
		t.Fatalf("values %v != ref %v", res.Values, ref)
	}

	// Rank 0's checkpoint carries the table; the others carry markers.
	var per [3]int64
	for r, s := range res.Stats {
		per[r] = s.CheckpointBytes
	}
	if per[1] >= per[0]/2 || per[2] >= per[0]/2 {
		t.Fatalf("non-primary checkpoints should be far smaller: %v", per)
	}
}

// TestReplicatedFingerprintAcrossModes: replication must not change
// results in any mode.
func TestReplicatedModesAgree(t *testing.T) {
	prog := func(r *Rank) (any, error) {
		var it int
		var acc float64
		weights := []float64{0.25, 0.5, 0.125, 0.125}
		r.Register("it", &it)
		r.Register("acc", &acc)
		r.RegisterReplicated("weights", &weights)
		for ; it < 10; it++ {
			r.PotentialCheckpoint()
			acc += weights[it%len(weights)]
			r.Barrier()
		}
		return acc, nil
	}
	ref := runRef(t, Config{Ranks: 2, Mode: protocol.Unmodified}, prog)
	for _, mode := range []protocol.Mode{protocol.PiggybackOnly, protocol.NoAppState, protocol.Full} {
		res, err := Run(Config{Ranks: 2, Mode: mode, EveryN: 3}, prog)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !reflect.DeepEqual(res.Values, ref) {
			t.Fatalf("%v: values %v != ref %v", mode, res.Values, ref)
		}
	}
}

// TestComputedRecomputeRunsOncePerRestart guards against the recompute
// function being invoked during failure-free runs.
func TestComputedRecomputeOnlyOnRestart(t *testing.T) {
	var recomputes int
	prog := func(r *Rank) (any, error) {
		var it int
		data := make([]float64, 64)
		r.Register("it", &it)
		r.RegisterComputed("data", &data, func() error {
			recomputes++
			for i := range data {
				data[i] = float64(i)
			}
			return nil
		})
		if !r.Restarting() {
			for i := range data {
				data[i] = float64(i)
			}
		}
		for ; it < 8; it++ {
			r.PotentialCheckpoint()
			r.Barrier()
		}
		return data[63], nil
	}
	if _, err := Run(Config{Ranks: 1, Mode: protocol.Full, EveryN: 3}, prog); err != nil {
		t.Fatal(err)
	}
	if recomputes != 0 {
		t.Fatalf("recompute ran %d times in a failure-free run", recomputes)
	}
	recomputes = 0
	cfg := Config{
		Ranks: 1, Mode: protocol.Full, EveryN: 3, Debug: true,
		Failures: []Failure{{Rank: 0, AtOp: 30, Incarnation: 0}},
	}
	if _, err := Run(cfg, prog); err != nil {
		t.Fatal(err)
	}
	if recomputes != 1 {
		t.Fatalf("recompute ran %d times across one restart, want 1", recomputes)
	}
}
