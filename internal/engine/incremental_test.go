package engine

import (
	"reflect"
	"testing"

	"ccift/internal/protocol"
)

// End-to-end dirty-region checkpointing: the same program runs with full
// and incremental freezes, under failure injection, and must produce
// identical results — while the incremental run's capture volume reflects
// only the touched regions. State is modeled as heap "pages" plus one VDS
// vector so both region kinds exercise sharing and recovery.

// incrProg mutates one rotating heap page per iteration (with Touch write
// intent) and folds every page into a running checksum, so a recovery from
// a stale frozen page cannot escape the final value. With EveryN=4, an
// epoch dirties at most 4 of the 32 pages.
func incrProg(iters int) Program {
	const pages = 32
	const pageBytes = 2048
	return func(r *Rank) (any, error) {
		var it int
		var sum uint64
		ids := make([]int, 0, pages)
		vec := make([]float64, 64)
		r.Register("it", &it)
		r.Register("sum", &sum)
		r.Register("ids", &ids)
		r.Register("vec", &vec)
		h := r.Heap()
		if !r.Restarting() {
			for i := 0; i < pages; i++ {
				b := h.Alloc(pageBytes)
				for j := range b.Data {
					b.Data[j] = byte(i + j)
				}
				ids = append(ids, b.ID)
			}
		}
		for ; it < iters; it++ {
			r.PotentialCheckpoint()
			id := ids[it%pages]
			b := h.Lookup(id)
			for j := 0; j < 64; j++ {
				b.Data[(it*7+j)%len(b.Data)] += byte(1 + r.Rank())
			}
			h.Touch(id)
			if it%3 == 0 {
				vec[it%len(vec)] += float64(r.Rank() + 1)
				r.Touch("vec")
			}
			// Fold every page byte into the checksum and exchange it, so a
			// stale page after recovery diverges loudly.
			for _, id := range ids {
				for _, x := range h.Lookup(id).Data {
					sum = sum*31 + uint64(x)
				}
			}
			out := r.Allgather(u64Bytes(sum))
			var agg uint64
			for i := 0; i+8 <= len(out); i += 8 {
				agg += bytesU64(out[i : i+8])
			}
			sum = agg
		}
		return sum, nil
	}
}

func u64Bytes(v uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

func bytesU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func TestIncrementalFreezeRecovery(t *testing.T) {
	const iters = 24
	ref := runRef(t, Config{Ranks: 3, Mode: protocol.Unmodified}, incrProg(iters))

	run := func(incremental bool) *Result {
		t.Helper()
		res, err := Run(Config{
			Ranks: 3, Mode: protocol.Full, EveryN: 4, Debug: true,
			FullFreeze: !incremental,
			Failures:   []Failure{{Rank: 1, AtOp: 50, Incarnation: 0}},
		}, incrProg(iters))
		if err != nil {
			t.Fatalf("incremental=%v: %v", incremental, err)
		}
		if res.Restarts != 1 {
			t.Fatalf("incremental=%v: %d restarts, want 1", incremental, res.Restarts)
		}
		if !reflect.DeepEqual(res.Values, ref) {
			t.Fatalf("incremental=%v: values %v != fault-free %v", incremental, res.Values, ref)
		}
		return res
	}

	full := run(false)
	incr := run(true)

	var fullCopied, incrCopied, incrDirty, incrRegions int64
	for i := range full.Stats {
		fullCopied += full.Stats[i].CheckpointBytesCopied
		incrCopied += incr.Stats[i].CheckpointBytesCopied
		incrDirty += incr.Stats[i].CheckpointRegionsDirty
		incrRegions += incr.Stats[i].CheckpointRegions
	}
	if fullCopied == 0 || incrRegions == 0 {
		t.Fatalf("copy stats not threaded: full copied %d, incremental regions %d", fullCopied, incrRegions)
	}
	// ~2 of 16 pages dirty per epoch (plus the small vector and scalars):
	// the incremental captures must move well under half the full volume.
	if incrCopied*2 >= fullCopied {
		t.Fatalf("incremental copied %d bytes vs full %d: dirty tracking did not shrink the freeze", incrCopied, fullCopied)
	}
	if incrDirty >= incrRegions {
		t.Fatalf("every region dirty (%d/%d): sharing never happened", incrDirty, incrRegions)
	}
}
