package engine

import (
	"fmt"
	"reflect"
	"testing"

	"ccift/internal/mpi"
	"ccift/internal/protocol"
)

// scanProg exercises Scan, Reducescatter, and Sendrecv through checkpoints
// and recovery: the new operations must be logged and replayed like every
// other collective.
func scanProg(iters int) Program {
	return func(r *Rank) (any, error) {
		n := r.Size()
		me := r.Rank()
		var it int
		var acc float64
		r.Register("it", &it)
		r.Register("acc", &acc)
		for ; it < iters; it++ {
			r.PotentialCheckpoint()

			// Prefix sums over rank contributions.
			pre := r.ScanF64([]float64{float64(me + it)}, mpi.SumF64)
			acc += pre[0]

			// Reduce-scatter of per-rank blocks.
			blocks := make([]float64, n)
			for i := range blocks {
				blocks[i] = float64(me) + float64(i)*0.25
			}
			own := mpi.BytesF64(r.Reducescatter(mpi.F64Bytes(blocks), mpi.SumF64))
			acc += own[0] * 0.01

			// Ring rotation via the combined call.
			m := r.Sendrecv((me+1)%n, 1, mpi.F64Bytes([]float64{acc}), (me-1+n)%n, 1)
			acc = acc*0.75 + mpi.BytesF64(m.Data)[0]*0.25
		}
		total := r.AllreduceF64([]float64{acc}, mpi.SumF64)
		return fmt.Sprintf("%.9f", total[0]), nil
	}
}

func TestNewCollectivesModesAgree(t *testing.T) {
	prog := scanProg(12)
	ref := runRef(t, Config{Ranks: 4, Mode: protocol.Unmodified}, prog)
	for _, mode := range []protocol.Mode{protocol.PiggybackOnly, protocol.NoAppState, protocol.Full} {
		res, err := Run(Config{Ranks: 4, Mode: mode, EveryN: 4}, prog)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !reflect.DeepEqual(res.Values, ref) {
			t.Fatalf("%v: values %v != ref %v", mode, res.Values, ref)
		}
	}
}

func TestNewCollectivesSurviveRecovery(t *testing.T) {
	prog := scanProg(15)
	ref := runRef(t, Config{Ranks: 3, Mode: protocol.Unmodified}, prog)
	for _, atOp := range []int64{15, 40, 70, 100, 130} {
		cfg := Config{
			Ranks: 3, Mode: protocol.Full, EveryN: 4, Debug: true,
			Failures: []Failure{{Rank: int(atOp) % 3, AtOp: atOp, Incarnation: 0}},
		}
		res, err := Run(cfg, prog)
		if err != nil {
			t.Fatalf("atOp=%d: %v", atOp, err)
		}
		if !reflect.DeepEqual(res.Values, ref) {
			t.Fatalf("atOp=%d: values %v != ref %v", atOp, res.Values, ref)
		}
	}
}

func TestNewCollectivesUnderChaos(t *testing.T) {
	prog := scanProg(10)
	ref := runRef(t, Config{Ranks: 3, Mode: protocol.Unmodified}, prog)
	for seed := int64(1); seed <= 3; seed++ {
		cfg := Config{
			Ranks: 3, Mode: protocol.Full, EveryN: 3, Debug: true, ChaosSeed: seed,
			Failures: []Failure{{Rank: 1, AtOp: 50, Incarnation: 0}},
		}
		res, err := Run(cfg, prog)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if !reflect.DeepEqual(res.Values, ref) {
			t.Fatalf("seed=%d: values %v != ref %v", seed, res.Values, ref)
		}
	}
}
