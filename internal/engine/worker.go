package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ccift/internal/cerr"
	"ccift/internal/mpi"
	"ccift/internal/protocol"
	"ccift/internal/storage"
)

// This file is the cross-process half of the engine: where Run spawns every
// rank as a goroutine in one address space, RunWorker drives exactly one
// rank inside its own OS process, with the world constructed from the
// launcher's environment (rank, size, incarnation, shared store) and the
// wire substrate supplied by a cross-process Transport. The rollback loop
// moves out of the process entirely — a launcher re-spawns the whole
// incarnation — so everything here is one incarnation of one rank.

// ErrIncarnationDead reports that the incarnation aborted: a peer (or this
// rank's own kill plan, in simulated mode) stop-failed and the world was
// shut down. The launcher responds by re-spawning everyone from the last
// committed global checkpoint.
var ErrIncarnationDead = errors.New("engine: incarnation aborted by a stop failure")

// WorkerConfig configures one rank's process for one incarnation.
type WorkerConfig struct {
	// Rank is this process's world rank; Ranks is the world size.
	Rank, Ranks int
	// Incarnation numbers the launcher's spawn attempts, starting at 0.
	Incarnation int
	// Mode selects the protocol version; recovery requires Full.
	Mode protocol.Mode
	// Store is the stable storage shared by every rank's process (an
	// on-disk store under the launcher's shared directory). Required.
	Store storage.Stable
	// EveryN / Interval are the initiator's checkpoint triggers.
	EveryN   int
	Interval time.Duration
	// SyncCheckpoint disables the asynchronous checkpoint pipeline (see
	// Config.SyncCheckpoint); ChunkSize sets the chunked state writer's
	// granularity (0 = default); FullFreeze opts out of the default
	// dirty-region incremental freeze (see Config.FullFreeze — the
	// program must honor the Touch contract when it is off);
	// FreezeCrossCheck, FlushBandwidth, NoFlushGovernor and ChunkPipeline
	// mirror the same Config fields.
	SyncCheckpoint   bool
	ChunkSize        int
	FullFreeze       bool
	FreezeCrossCheck bool
	FlushBandwidth   float64
	NoFlushGovernor  bool
	ChunkPipeline    int
	// KillAtOp, when non-zero, schedules this rank's death at its
	// KillAtOp-th substrate operation. Kill performs the death; the
	// launcher's worker installs a real self-SIGKILL (which never returns),
	// while tests may leave Kill nil to fall back to the simulated
	// stop-failure panic.
	KillAtOp int64
	Kill     func()
	// Seed is the base seed for application randomness (mixed with rank and
	// incarnation exactly as the in-process engine does).
	Seed int64
	// Debug enables protocol assertions. Tracer receives protocol events.
	Debug  bool
	Tracer protocol.Tracer
	// NewTransport builds the cross-process substrate (tcptransport.Attach).
	// Required, as is Start, which brings the mesh up once the world exists.
	NewTransport func(*mpi.World) mpi.Transport
	Start        func() error
	// AnnounceDone broadcasts this rank's completion to its peers; AllDone
	// reports whether every rank has announced. Together they replace the
	// in-process engine's finished counter. Both required.
	AnnounceDone func()
	AllDone      func() bool
	// StatsSink, when non-nil, receives this rank's counter snapshots as
	// the incarnation progresses — at each completed checkpoint and once,
	// marked Final, as the worker unwinds (normal completion AND rollback
	// exit, so the launcher sees the counters of killed incarnations too).
	StatsSink func(protocol.StatsFrame)
	// Recovery, when non-nil, is this rank's slice of the launcher-side
	// recovery gather: the launcher read the committed epoch's metadata
	// once and shipped each worker its inputs, so the worker does no store
	// scan of its own. Epoch -1 means "fresh start, do not restore". Nil
	// falls back to the worker computing its own inputs from the store
	// (the whole-world path, where there is no per-rank shipping).
	Recovery *protocol.RankRecovery
	// Retained, when non-nil, is this process's in-memory copy of its own
	// recent checkpoints, kept across incarnations by a worker process
	// that survived a rollback; a copy matching the recovery epoch is
	// restored without store reads. RetainForRecovery makes the layer keep
	// such copies for the NEXT rollback.
	Retained          []*protocol.RetainedState
	RetainForRecovery bool
}

// WorkerResult reports one completed (or aborted) worker incarnation.
type WorkerResult struct {
	// Value is the program's return value (nil when the incarnation died).
	Value any
	// RecoveredEpoch is the epoch this incarnation restored from, or -1
	// when it started from the beginning.
	RecoveredEpoch int
	// Stats are the protocol-layer statistics of this rank.
	Stats protocol.Stats
	// Retained carries the rank's in-memory checkpoint copies out of the
	// incarnation (populated with RetainForRecovery set, on normal AND
	// rollback exits) — the caller hands them back through
	// WorkerConfig.Retained when it reruns the rank in the same process.
	Retained []*protocol.RetainedState
}

// RunWorker executes prog as one rank-process of a distributed world. It
// restores from the newest committed checkpoint in the shared store when
// one exists, runs the program, and services control traffic until every
// rank announces completion. A stop failure anywhere in the world surfaces
// as ErrIncarnationDead; the caller exits so its launcher can re-spawn the
// incarnation. Cancelling ctx aborts the incarnation and returns an error
// wrapping ctx.Err().
func RunWorker(ctx context.Context, cfg WorkerConfig, prog Program) (res WorkerResult, err error) {
	res.RecoveredEpoch = -1
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.Ranks || cfg.Ranks <= 0 {
		return res, fmt.Errorf("%w: worker rank %d out of range [0,%d)", cerr.ErrSpec, cfg.Rank, cfg.Ranks)
	}
	if cfg.Store == nil || cfg.NewTransport == nil || cfg.Start == nil || cfg.AnnounceDone == nil || cfg.AllDone == nil {
		return res, fmt.Errorf("%w: worker requires Store, NewTransport, Start, AnnounceDone, and AllDone", cerr.ErrSpec)
	}
	cs := storage.NewCheckpointStore(cfg.Store)

	// Recovery inputs. The localized launcher gathers the committed
	// epoch's metadata once and ships each worker its slice (Recovery
	// non-nil); without it — the whole-world path — each worker computes
	// its own inputs from the store: the suppression list is every
	// receiver's record of early messages this rank sent (Section 4.2),
	// and the replicated values come from the primary's checkpoint
	// (Section 7).
	var suppress []uint32
	var replicas map[string][]byte
	var epoch int
	var restore bool
	if cfg.Recovery != nil {
		if cfg.Recovery.Epoch >= 0 {
			restore = true
			epoch = cfg.Recovery.Epoch
			suppress = cfg.Recovery.Suppress
			replicas = cfg.Recovery.Replicas
		}
	} else {
		var haveCkpt bool
		epoch, haveCkpt, err = cs.Committed()
		if err != nil {
			return res, fmt.Errorf("%w: read commit record: %w", cerr.ErrStore, err)
		}
		restore = cfg.Incarnation > 0 && haveCkpt
		if restore {
			plan, gerr := protocol.GatherRecovery(cs, epoch, cfg.Ranks)
			if gerr != nil {
				return res, fmt.Errorf("engine: gather recovery plan: %w: %w", cerr.ErrStore, gerr)
			}
			suppress = plan.Suppress[cfg.Rank]
			replicas = plan.Replicas
		}
	}
	if restore {
		if cfg.Mode != protocol.Full {
			return res, fmt.Errorf("%w: cannot recover from a checkpoint in mode %v", cerr.ErrWorldDead, cfg.Mode)
		}
		res.RecoveredEpoch = epoch
	}

	opts := mpi.Options{NewTransport: cfg.NewTransport}
	if cfg.KillAtOp > 0 {
		opts.KillPlan = map[int]int64{cfg.Rank: cfg.KillAtOp}
		if cfg.Kill != nil {
			opts.OnKill = func(int) { cfg.Kill() }
		}
	}
	world := mpi.NewWorld(cfg.Ranks, opts)
	stopCancel := context.AfterFunc(ctx, world.Cancel)
	defer stopCancel()
	if err := cfg.Start(); err != nil {
		return res, fmt.Errorf("engine: start transport: %w: %w", cerr.ErrTransport, err)
	}

	// A stop failure is delivered by panic (ErrKilled for this rank's own
	// simulated death, ErrWorldDead when a peer's death shut the world
	// down); both mean the incarnation is over. ErrCanceled means the
	// caller's context ended the run — not a failure, so no re-spawn.
	defer func() {
		if p := recover(); p != nil {
			switch p {
			case mpi.ErrKilled, mpi.ErrWorldDead:
				err = ErrIncarnationDead
			case mpi.ErrCanceled:
				cause := ctx.Err()
				if cause == nil {
					cause = mpi.ErrCanceled
				}
				err = fmt.Errorf("engine: worker rank %d canceled: %w: %w", cfg.Rank, cerr.ErrCanceled, cause)
			default:
				// Keep the category of an error-valued panic (flusher store
				// failures); everything else is the application's fault.
				if e, ok := p.(error); ok && cerr.Category(e) != nil {
					err = e
				} else {
					err = fmt.Errorf("engine: worker rank %d panicked: %w: %v", cfg.Rank, cerr.ErrProgram, p)
				}
			}
		}
	}()

	var sink func(protocol.Stats)
	if cfg.StatsSink != nil {
		sink = func(s protocol.Stats) {
			cfg.StatsSink(protocol.StatsFrame{V: protocol.StatsWireVersion,
				Rank: cfg.Rank, Incarnation: cfg.Incarnation, Stats: s})
		}
	}
	layer := protocol.NewLayer(world.Comm(cfg.Rank), protocol.Config{
		Mode:              cfg.Mode,
		Store:             cs,
		EveryN:            cfg.EveryN,
		Interval:          cfg.Interval,
		Debug:             cfg.Debug,
		Tracer:            cfg.Tracer,
		Ctx:               ctx,
		AsyncFlush:        !cfg.SyncCheckpoint,
		ChunkSize:         cfg.ChunkSize,
		IncrementalFreeze: !cfg.FullFreeze,
		FreezeCrossCheck:  cfg.FreezeCrossCheck,
		FlushBandwidth:    cfg.FlushBandwidth,
		NoFlushGovernor:   cfg.NoFlushGovernor,
		ChunkPipeline:     cfg.ChunkPipeline,
		RetainForRecovery: cfg.RetainForRecovery,
		StatsSink:         sink,
	})
	if cfg.RetainForRecovery {
		// Capture the retained copies however the incarnation ends:
		// registered before the Shutdown defer (LIFO) so the flusher has
		// drained and the last flush is integrated, and running on panic
		// unwinds too, so a surviving worker keeps its copies across a
		// rollback (ErrIncarnationDead) without touching the store.
		defer func() {
			res.Retained = layer.Retained()
		}()
	}
	// Final stats frame, registered before the Shutdown defer below so it
	// runs AFTER the flusher drains (defers are LIFO): the snapshot then
	// includes any checkpoint that was still flushing, and — because defers
	// run on panic unwinds too — the launcher receives the counters of an
	// incarnation that just died in a rollback.
	if cfg.StatsSink != nil {
		defer func() {
			cfg.StatsSink(protocol.StatsFrame{V: protocol.StatsWireVersion,
				Rank: cfg.Rank, Incarnation: cfg.Incarnation, Final: true, Stats: layer.Stats})
		}()
	}
	// Registered after the recover defer, so a stop-failure unwind stops
	// the flusher (waiting out any in-flight write) before the process
	// reports rollback and exits.
	defer layer.Shutdown()
	rank := newRank(layer, cfg.Seed, cfg.Incarnation)
	if restore {
		app, err := layer.RestoreFrom(epoch, suppress, cfg.Retained)
		if err != nil {
			return res, fmt.Errorf("engine: rank %d restore: %w: %w", cfg.Rank, cerr.ErrStore, err)
		}
		layer.Saver.VDS.SetReplicas(replicas)
		if err := layer.Saver.StartRestore(app); err != nil {
			return res, fmt.Errorf("engine: rank %d app restore: %w: %w", cfg.Rank, cerr.ErrStore, err)
		}
		rank.restarting = true
	}

	v, perr := prog(rank)
	if perr != nil {
		return res, fmt.Errorf("engine: rank %d: %w", cfg.Rank, cerr.Ensure(perr, cerr.ErrProgram))
	}
	layer.Finish()
	// Keep servicing protocol control traffic until every rank is done, so
	// an in-flight global checkpoint does not stall on a rank that finished
	// early — the distributed analogue of the in-process engine's
	// finished-counter parking.
	cfg.AnnounceDone()
	layer.ServiceControlUntil(cfg.AllDone)
	// In Unmodified mode the protocol layer is inert and the call above
	// returns immediately; still wait for every peer's done announcement,
	// because exiting (and closing this rank's sockets) while a peer is
	// mid-computation would read as a death on its side. Fault-free
	// overhead sweeps (fig8 -distributed) run this path; in the active
	// modes AllDone already holds and the loop is skipped.
	for !cfg.AllDone() {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("engine: worker rank %d canceled: %w: %w", cfg.Rank, cerr.ErrCanceled, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Drain the flusher before reporting: a failed state write is this
	// worker's error, and a late-finishing flush still counts in Stats.
	if err := layer.Shutdown(); err != nil {
		return res, err
	}
	res.Value = v
	res.Stats = layer.Stats
	return res, nil
}
