package engine

import (
	"strings"
	"sync"
	"testing"

	"ccift/internal/protocol"
	"ccift/internal/storage"
)

// countingStable attributes written state bytes (chunks + manifests, logs
// excluded) to checkpoints: each state-manifest write snapshots the
// running total, and the difference between consecutive snapshots is that
// checkpoint's cost. Flushes are sequential on a single rank, so the
// temporal attribution is exact.
type countingStable struct {
	storage.Stable
	mu      sync.Mutex
	written int64
	atState []int64 // running total at each state-manifest write, in order
}

func (c *countingStable) Put(key string, data []byte) error {
	if err := c.Stable.Put(key, data); err != nil {
		return err
	}
	if strings.Contains(key, "/log.") {
		return nil
	}
	c.mu.Lock()
	c.written += int64(len(data))
	if strings.Contains(key, "/state.") {
		c.atState = append(c.atState, c.written)
	}
	c.mu.Unlock()
	return nil
}

// TestIncrementalCheckpointDedup pins the incremental-checkpoint
// acceptance bar end to end: a repeat checkpoint of a state with <10%
// dirty pages must write <50% of the bytes the first checkpoint wrote
// (here it is ~15%: two dirty chunks plus the manifest out of eight).
func TestIncrementalCheckpointDedup(t *testing.T) {
	store := &countingStable{Stable: storage.NewMemory()}
	prog := func(r *Rank) (any, error) {
		var it int
		grid := make([]float64, 2<<20/8) // 2 MB = 8 default-size chunks
		for i := range grid {
			grid[i] = float64(i) // distinct chunks; zeros would self-dedup
		}
		r.Register("it", &it)
		r.Register("grid", &grid)
		for ; it < 100_000 && r.Epoch() < 3; it++ {
			// Dirty a contiguous ~5% of the state per epoch.
			start := (r.Epoch() * len(grid) / 7) % len(grid)
			for j := 0; j < len(grid)/20; j++ {
				grid[(start+j)%len(grid)]++
			}
			r.TouchRange("grid", start, len(grid)/20)
			r.PotentialCheckpoint()
		}
		return nil, nil
	}
	res, err := Run(Config{Ranks: 1, Mode: protocol.Full, EveryN: 1, Store: store}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(store.atState) < 3 {
		t.Fatalf("%d checkpoints written, want >= 3", len(store.atState))
	}
	first := store.atState[0]
	for i := 1; i < len(store.atState); i++ {
		repeat := store.atState[i] - store.atState[i-1]
		if repeat >= first/2 {
			t.Fatalf("checkpoint %d wrote %d bytes, first wrote %d: chunk dedup should cut a <10%%-dirty repeat below half", i+1, repeat, first)
		}
	}
	// And the aggregate stats agree that most logical bytes were deduped.
	s := res.Stats[0]
	if s.CheckpointBytesWritten >= s.CheckpointBytes/2 {
		t.Fatalf("written %d of %d logical bytes; dedup should cut the total below half", s.CheckpointBytesWritten, s.CheckpointBytes)
	}
}
