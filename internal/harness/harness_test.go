package harness

import (
	"strings"
	"testing"
	"time"

	"ccift/internal/engine"
	"ccift/internal/mpi"
	"ccift/internal/protocol"
)

// tinyExperiment is a fast synthetic experiment for exercising the harness
// plumbing without the full Figure-8 sweep.
func tinyExperiment() Experiment {
	prog := func(iters int) engine.Program {
		return func(r *engine.Rank) (any, error) {
			var it int
			var acc float64
			r.Register("it", &it)
			r.Register("acc", &acc)
			for ; it < iters; it++ {
				r.PotentialCheckpoint()
				s := r.AllreduceF64([]float64{float64(r.Rank() + it)}, mpi.SumF64)
				acc += s[0]
			}
			return acc, nil
		}
	}
	return Experiment{
		App:   "laplace", // reuse the laplace verdict (overhead bound)
		Ranks: 2,
		Sizes: []Size{
			{Label: "tiny", Program: prog(6), StateBytes: 64, EveryN: 3},
			{Label: "small", Program: prog(12), StateBytes: 128, EveryN: 4},
		},
	}
}

func TestExperimentRunAllModes(t *testing.T) {
	table, err := tinyExperiment().Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	for _, row := range table.Rows {
		if len(row.Cells) != len(Modes) {
			t.Fatalf("cells = %d", len(row.Cells))
		}
		for _, c := range row.Cells {
			if c.Seconds <= 0 {
				t.Fatalf("cell %v has non-positive time", c.Mode)
			}
		}
		// Full mode must actually have checkpointed.
		if row.Cells[3].Checkpoints == 0 {
			t.Fatalf("%s: full mode took no checkpoints", row.Size.Label)
		}
		if row.Cells[0].Checkpoints != 0 {
			t.Fatal("unmodified mode took checkpoints")
		}
	}
	if err := table.ChecksumsAgree(); err != nil {
		t.Fatal(err)
	}
}

func TestRenderContainsEverything(t *testing.T) {
	table, err := tinyExperiment().Run()
	if err != nil {
		t.Fatal(err)
	}
	out := table.Render()
	for _, want := range []string{"tiny", "small", "unmodified", "full ckpt", "64B", "128B"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestChecksumMismatchDetected(t *testing.T) {
	table, err := tinyExperiment().Run()
	if err != nil {
		t.Fatal(err)
	}
	table.Rows[0].Cells[2].Checksum = "corrupted"
	if err := table.ChecksumsAgree(); err == nil {
		t.Fatal("mismatch not detected")
	}
}

func TestVerdictsRenderAndEvaluate(t *testing.T) {
	table, err := tinyExperiment().Run()
	if err != nil {
		t.Fatal(err)
	}
	vs := table.Verdicts()
	if len(vs) == 0 {
		t.Fatal("laplace experiment should yield a verdict")
	}
	out := RenderVerdicts(vs)
	if !strings.Contains(out, "Laplace") {
		t.Errorf("verdict text: %s", out)
	}
}

func TestOverheadComputation(t *testing.T) {
	row := Row{Cells: []Cell{
		{Mode: protocol.Unmodified, Seconds: 2},
		{Mode: protocol.PiggybackOnly, Seconds: 2.5},
		{Mode: protocol.NoAppState, Seconds: 3},
		{Mode: protocol.Full, Seconds: 4},
	}}
	if o := row.Overhead(protocol.Full); o != 100 {
		t.Fatalf("full overhead = %v", o)
	}
	if o := row.Overhead(protocol.PiggybackOnly); o != 25 {
		t.Fatalf("pb overhead = %v", o)
	}
}

// TestFig8QuickVerdicts runs the real Figure-8 experiments at a reduced
// size in short mode and asserts the paper's shape claims hold. This is
// the harness-level regression test behind EXPERIMENTS.md E8; cmd/fig8
// runs the full-size version.
func TestFig8QuickVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	for _, e := range Experiments(4, Quick) {
		e.Repeats = 3
		start := time.Now()
		table, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", e.App, err)
		}
		if err := table.ChecksumsAgree(); err != nil {
			t.Fatalf("%s: %v", e.App, err)
		}
		for _, v := range table.Verdicts() {
			if !v.Pass {
				t.Errorf("%s (%.1fs): FAIL %s — %s", e.App, time.Since(start).Seconds(), v.Claim, v.Note)
			}
		}
	}
}
