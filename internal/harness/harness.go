// Package harness runs the paper's evaluation (Section 6, Figure 8): each
// benchmark at several problem sizes, in the four program versions —
// unmodified, piggybacking only, full protocol without application state,
// and full checkpoints — and renders the runtime comparison the paper
// charts, plus the overhead "verdicts" the text calls out.
package harness

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"ccift/internal/engine"
	"ccift/internal/protocol"
	"ccift/internal/storage"
)

// Modes in Figure 8's bar order.
var Modes = []protocol.Mode{protocol.Unmodified, protocol.PiggybackOnly, protocol.NoAppState, protocol.Full}

// Size is one problem size of a benchmark.
type Size struct {
	// Label is the row label ("4096x4096").
	Label string
	// Program builds the application.
	Program engine.Program
	// Arg and Iters are the application-level parameters behind Program
	// (the problem edge and iteration count), for drivers that must
	// rebuild the same program in another process — fig8's -distributed
	// sweep passes them to its re-exec'd workers.
	Arg   int
	Iters int
	// StateBytes estimates per-process application state (the annotation
	// above each Figure 8 bar group).
	StateBytes int
	// EveryN is the checkpoint trigger in PotentialCheckpoint calls on the
	// initiator; Interval (if non-zero) uses wall time like the paper's
	// 30-second setting.
	EveryN   int
	Interval time.Duration
}

// Experiment is one Figure 8 chart.
type Experiment struct {
	App     string
	Ranks   int
	Repeats int
	// BandwidthMBps throttles checkpoint writes, modelling the paper's
	// 40 MB/s local disks. Zero disables.
	BandwidthMBps float64
	// Async measures the governed asynchronous flush pipeline instead of
	// the paper's blocking checkpoint semantics. The default (sync) is
	// what Figure 8 charts — see runOnce — so the published curves stay
	// comparable to the paper; Async exists for the fig8 -async sweep
	// that quantifies how much of the full-checkpoint bar the pipeline
	// hides.
	Async bool
	Sizes []Size
}

// Cell is one measured bar.
type Cell struct {
	Mode     protocol.Mode
	Seconds  float64
	Checksum any
	// Checkpoints is the number of local checkpoints taken across ranks.
	Checkpoints int64
	// CheckpointMB is the volume written to stable storage.
	CheckpointMB float64
	// LogMB is the late-message/non-determinism log volume.
	LogMB float64
}

// Row is one size's set of four bars.
type Row struct {
	Size  Size
	Cells []Cell
}

// Table is one rendered experiment.
type Table struct {
	Experiment Experiment
	Rows       []Row
}

// CellRunner executes one (size, mode) cell and returns its measurement.
// The default runner drives the in-process engine; cmd/fig8's -distributed
// flag substitutes one that runs each cell as real OS processes over TCP.
type CellRunner func(ctx context.Context, size Size, mode protocol.Mode) (Cell, error)

// Run executes the experiment.
func (e Experiment) Run() (*Table, error) { return e.RunContext(context.Background()) }

// RunContext executes the experiment under a context: cancellation aborts
// the in-flight engine run and returns its error.
func (e Experiment) RunContext(ctx context.Context) (*Table, error) {
	return e.RunContextWith(ctx, e.runOnce)
}

// RunContextWith executes the experiment with a substituted cell runner
// (see CellRunner); measurement selection (best of Repeats) and table
// assembly are unchanged, so in-process and distributed sweeps render and
// verdict identically.
func (e Experiment) RunContextWith(ctx context.Context, run CellRunner) (*Table, error) {
	t := &Table{Experiment: e}
	repeats := e.Repeats
	if repeats == 0 {
		repeats = 1
	}
	for _, size := range e.Sizes {
		row := Row{Size: size}
		for _, mode := range Modes {
			best := Cell{Mode: mode, Seconds: -1}
			for rep := 0; rep < repeats; rep++ {
				cell, err := run(ctx, size, mode)
				if err != nil {
					return nil, fmt.Errorf("%s %s %v: %w", e.App, size.Label, mode, err)
				}
				if best.Seconds < 0 || cell.Seconds < best.Seconds {
					cell.Mode = mode
					best = cell
				}
			}
			row.Cells = append(row.Cells, best)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func (e Experiment) runOnce(ctx context.Context, size Size, mode protocol.Mode) (Cell, error) {
	var store storage.Stable = storage.NewMemory()
	if e.BandwidthMBps > 0 {
		store = storage.NewThrottled(store, e.BandwidthMBps*1e6)
	}
	cfg := engine.Config{
		Ranks:    e.Ranks,
		Mode:     mode,
		Store:    store,
		EveryN:   size.EveryN,
		Interval: size.Interval,
		// The Figure 8 experiments measure the paper's blocking
		// checkpoint semantics by default: the rank stops until its
		// state is durable. (The write itself shares the chunked dedup
		// writer; the async pipeline's overlap is measured separately
		// by BenchmarkCheckpointBlocked / BENCH_pr4.json, where blocked
		// vs flush time is told apart — wall-clock alone would conflate
		// the paper's overhead with flush contention.) Async flips the
		// sweep onto the governed pipeline for an apples-to-apples
		// wall-clock comparison of the same cells.
		SyncCheckpoint: !e.Async,
	}
	start := time.Now()
	res, err := engine.RunContext(ctx, cfg, size.Program)
	if err != nil {
		return Cell{}, err
	}
	elapsed := time.Since(start).Seconds()
	cell := Cell{Mode: mode, Seconds: elapsed, Checksum: res.Values[0]}
	for _, s := range res.Stats {
		cell.Checkpoints += s.CheckpointsTaken
		cell.CheckpointMB += float64(s.CheckpointBytes) / 1e6
		cell.LogMB += float64(s.LogBytes) / 1e6
	}
	return cell, nil
}

// ParseMode resolves a protocol Mode from its String() rendering
// ("unmodified", "piggyback-only", "no-app-state", "full") — the inverse
// fig8's distributed workers need to rebuild a cell's configuration from
// re-exec'd flags.
func ParseMode(s string) (protocol.Mode, error) {
	for _, m := range Modes {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("harness: unknown mode %q (want one of %v)", s, Modes)
}

// Overhead returns a cell's runtime overhead relative to the unmodified
// version of the same row, in percent.
func (r Row) Overhead(mode protocol.Mode) float64 {
	base := r.Cells[0].Seconds
	for _, c := range r.Cells {
		if c.Mode == mode {
			return (c.Seconds/base - 1) * 100
		}
	}
	return 0
}

// Render prints the experiment in the shape of a Figure 8 chart: one row
// per problem size, one column per program version, with the application
// state size annotated as in the paper.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 — %s (%d ranks", t.Experiment.App, t.Experiment.Ranks)
	if t.Experiment.BandwidthMBps > 0 {
		fmt.Fprintf(&b, ", %.0f MB/s stable storage", t.Experiment.BandwidthMBps)
	}
	fmt.Fprintf(&b, ")\n")
	fmt.Fprintf(&b, "%-14s %-10s %12s %12s %12s %12s %10s %10s\n",
		"problem", "app state", "unmodified", "piggyback", "no-app-state", "full ckpt", "ovh(pb)", "ovh(full)")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%-14s %-10s %11.3fs %11.3fs %11.3fs %11.3fs %9.1f%% %9.1f%%\n",
			row.Size.Label,
			humanBytes(row.Size.StateBytes),
			row.Cells[0].Seconds, row.Cells[1].Seconds, row.Cells[2].Seconds, row.Cells[3].Seconds,
			row.Overhead(protocol.PiggybackOnly), row.Overhead(protocol.Full))
	}
	full := t.Rows[len(t.Rows)-1].Cells[3]
	fmt.Fprintf(&b, "(largest size, full mode: %d local checkpoints, %.1f MB checkpoint data, %.2f MB logs)\n",
		full.Checkpoints, full.CheckpointMB, full.LogMB)
	return b.String()
}

// ChecksumsAgree verifies that all four versions computed identical
// results for every size — the four bars of a group chart the same
// computation.
func (t *Table) ChecksumsAgree() error {
	for _, row := range t.Rows {
		for _, c := range row.Cells[1:] {
			if fmt.Sprint(c.Checksum) != fmt.Sprint(row.Cells[0].Checksum) {
				return fmt.Errorf("%s %s: %v computed %v, unmodified computed %v",
					t.Experiment.App, row.Size.Label, c.Mode, c.Checksum, row.Cells[0].Checksum)
			}
		}
	}
	return nil
}

// Verdict is one shape check from the Section 6.2 discussion.
type Verdict struct {
	Claim string
	Pass  bool
	Note  string
}

// Verdicts evaluates the paper's qualitative claims against the table.
func (t *Table) Verdicts() []Verdict {
	var out []Verdict
	switch t.Experiment.App {
	case "cg":
		// "the reason for the increased overhead is the size of
		// application state": full-checkpoint overhead grows with state
		// size, and the no-app-state bar stays close to unmodified.
		small := t.Rows[0].Overhead(protocol.Full)
		large := t.Rows[len(t.Rows)-1].Overhead(protocol.Full)
		out = append(out, Verdict{
			Claim: "CG: full-checkpoint overhead grows with application state size",
			Pass:  large > small,
			Note:  fmt.Sprintf("full overhead %.1f%% (smallest) -> %.1f%% (largest)", small, large),
		})
		largeNoApp := t.Rows[len(t.Rows)-1].Overhead(protocol.NoAppState)
		out = append(out, Verdict{
			Claim: "CG: protocol without application state stays cheap at the largest size",
			Pass:  largeNoApp < large/2,
			Note:  fmt.Sprintf("no-app-state %.1f%% vs full %.1f%%", largeNoApp, large),
		})
	case "laplace":
		worst := 0.0
		for _, row := range t.Rows {
			if o := row.Overhead(protocol.Full); o > worst {
				worst = o
			}
		}
		out = append(out, Verdict{
			Claim: "Laplace: checkpointing adds only a few percent overhead at every size",
			// The paper reports 2.1% worst case on real hardware; quick-scale
			// runs on a shared machine typically land at 4-13%. The bound
			// only needs to separate Laplace's regime from CG's
			// state-dominated 40-150% while tolerating scheduler noise when
			// the sweep runs alongside other tests.
			Pass: worst < 25,
			Note: fmt.Sprintf("worst-case full overhead %.1f%%", worst),
		})
	case "neurosys":
		// Piggyback/control overhead shrinks as the problem grows (160%
		// at 16x16 down to 2.7% at 128x128 in the paper).
		first := t.Rows[0].Overhead(protocol.PiggybackOnly)
		last := t.Rows[len(t.Rows)-1].Overhead(protocol.PiggybackOnly)
		out = append(out, Verdict{
			Claim: "Neurosys: piggyback/control-collective overhead shrinks as problem size grows",
			Pass:  last < first,
			Note:  fmt.Sprintf("piggyback overhead %.1f%% (smallest) -> %.1f%% (largest)", first, last),
		})
	}
	return out
}

// RenderVerdicts prints verdicts.
func RenderVerdicts(vs []Verdict) string {
	var b strings.Builder
	for _, v := range vs {
		mark := "PASS"
		if !v.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %s — %s\n", mark, v.Claim, v.Note)
	}
	return b.String()
}

func humanBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// SortKey makes mode ordering stable for external consumers.
func SortKey(cells []Cell) {
	sort.Slice(cells, func(i, j int) bool { return cells[i].Mode < cells[j].Mode })
}
