package harness

import (
	"fmt"

	"ccift/internal/apps/cg"
	"ccift/internal/apps/laplace"
	"ccift/internal/apps/neurosys"
)

// Scale selects the experiment magnitude.
type Scale int

const (
	// Quick shrinks problem sizes so the full Figure 8 sweep finishes in
	// about a minute; the paper's qualitative shapes (overhead growing with
	// state size, piggyback cost shrinking with message size) survive the
	// scaling because they are ratio-driven.
	Quick Scale = iota
	// Paper uses the paper's own problem-size regime (CG state per process
	// from ~8 MB up; Laplace 512²–2048²; Neurosys 16²–128²) with iteration
	// counts reduced to keep wall time in minutes rather than hours.
	Paper
	// Smoke is one tiny size per benchmark, for CI paths that only need to
	// prove a sweep configuration end to end (fig8 -short, and especially
	// -distributed -short, where every cell spawns real OS processes).
	// Shape verdicts are meaningless at a single size.
	Smoke
)

// CGExperiment is Figure 8 (left): dense Conjugate Gradient, block-row
// distribution, allreduce + allgather per iteration.
func CGExperiment(ranks int, scale Scale) Experiment {
	e := Experiment{App: "cg", Ranks: ranks, BandwidthMBps: bandwidth(scale)}
	type sz struct {
		n, iters, everyN int
	}
	var sizes []sz
	switch scale {
	case Paper:
		// The paper ran 4096–16384 for 500 iterations on 16 processors,
		// checkpointing every 30 s. Iterations are scaled down; the state
		// sizes match the paper's regime.
		sizes = []sz{{4096, 30, 10}, {8192, 12, 4}, {16384, 6, 2}}
	case Smoke:
		sizes = []sz{{128, 20, 8}}
	default:
		sizes = []sz{{512, 150, 70}, {1024, 80, 38}, {2048, 40, 18}}
	}
	for _, s := range sizes {
		p := cg.Params{N: s.n, Iters: s.iters}
		e.Sizes = append(e.Sizes, Size{
			Label:      fmt.Sprintf("%dx%d", s.n, s.n),
			Program:    cg.Program(p),
			Arg:        s.n,
			Iters:      s.iters,
			StateBytes: p.StateBytesPerRank(ranks),
			EveryN:     s.everyN,
		})
	}
	return e
}

// LaplaceExperiment is Figure 8 (middle): the Laplace solver, block rows,
// halo exchange with the ranks above and below.
func LaplaceExperiment(ranks int, scale Scale) Experiment {
	e := Experiment{App: "laplace", Ranks: ranks, BandwidthMBps: bandwidth(scale)}
	type sz struct {
		n, iters, everyN int
	}
	var sizes []sz
	switch scale {
	case Paper:
		// The paper ran 512–2048 for 40000 iterations.
		sizes = []sz{{512, 2000, 600}, {1024, 800, 250}, {2048, 300, 100}}
	case Smoke:
		sizes = []sz{{64, 60, 15}}
	default:
		sizes = []sz{{256, 2000, 650}, {512, 1000, 330}, {1024, 400, 130}}
	}
	for _, s := range sizes {
		p := laplace.Params{N: s.n, Iters: s.iters}
		e.Sizes = append(e.Sizes, Size{
			Label:      fmt.Sprintf("%dx%d", s.n, s.n),
			Program:    laplace.Program(p),
			Arg:        s.n,
			Iters:      s.iters,
			StateBytes: p.StateBytesPerRank(ranks),
			EveryN:     s.everyN,
		})
	}
	return e
}

// NeurosysExperiment is Figure 8 (right): the neuron-network simulator, 5
// allgathers and 1 gather per RK4 step — the communication-heavy, tiny-state
// regime where the protocol's control collectives dominate.
func NeurosysExperiment(ranks int, scale Scale) Experiment {
	e := Experiment{App: "neurosys", Ranks: ranks, BandwidthMBps: bandwidth(scale)}
	type sz struct {
		k, iters, everyN int
	}
	var sizes []sz
	switch scale {
	case Paper:
		// The paper ran 16x16 through 128x128 for 3000 iterations.
		sizes = []sz{{16, 1500, 500}, {32, 1000, 330}, {64, 500, 160}, {128, 250, 80}}
	case Smoke:
		sizes = []sz{{16, 80, 30}}
	default:
		sizes = []sz{{16, 800, 270}, {32, 500, 170}, {64, 250, 85}, {128, 120, 40}}
	}
	for _, s := range sizes {
		p := neurosys.Params{K: s.k, Iters: s.iters}
		e.Sizes = append(e.Sizes, Size{
			Label:      fmt.Sprintf("%dx%d", s.k, s.k),
			Program:    neurosys.Program(p),
			Arg:        s.k,
			Iters:      s.iters,
			StateBytes: p.StateBytesPerRank(ranks),
			EveryN:     s.everyN,
		})
	}
	return e
}

// Experiments returns all three Figure 8 experiments.
func Experiments(ranks int, scale Scale) []Experiment {
	return []Experiment{
		CGExperiment(ranks, scale),
		LaplaceExperiment(ranks, scale),
		NeurosysExperiment(ranks, scale),
	}
}

// bandwidth models the paper's 40 MB/s local checkpoint disks. The quick
// scale compresses run times by roughly two orders of magnitude without
// shrinking state sizes, so the modeled bandwidth scales by the same factor
// to keep the checkpoint-cost-to-compute ratio in the paper's regime; the
// paper scale uses the real figure.
func bandwidth(scale Scale) float64 {
	if scale == Paper {
		return 40
	}
	return 4000
}
