// Package testseed gives every randomized test a reproducible seed
// discipline: the base seed is deterministic per test by default, a
// failure always reports the seed that produced it, and setting
// CCIFT_TEST_SEED replays one exact seed.
package testseed

import (
	"os"
	"strconv"
	"testing"
)

// Env is the environment variable that overrides the base seed for a
// replay: CCIFT_TEST_SEED=<int64> pins every testseed-driven test to that
// seed (a property loop then runs only the overridden sequence).
const Env = "CCIFT_TEST_SEED"

// Base returns the base seed for a randomized test: the value of
// CCIFT_TEST_SEED when set (replay mode), otherwise def. It registers a
// cleanup that prints the seed when the test fails, so a chaos or property
// failure is always reproducible. Tests that derive per-iteration seeds
// (base+i) should additionally name the failing seed in their own failure
// messages; Base's cleanup guarantees the base is never lost even when
// they forget.
func Base(t testing.TB, def int64) int64 {
	seed := def
	replay := false
	if v := os.Getenv(Env); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("testseed: bad %s=%q: %v", Env, v, err)
		}
		seed, replay = n, true
	}
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("testseed: base seed %d (replay with %s=%d)", seed, Env, seed)
		}
	})
	if replay {
		t.Logf("testseed: replaying %s=%d", Env, seed)
	}
	return seed
}

// Replaying reports whether CCIFT_TEST_SEED pins this run to one seed;
// property loops use it to run only the overridden sequence.
func Replaying() bool { return os.Getenv(Env) != "" }
