package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// CheckpointStore layers the checkpoint naming scheme and the initiator's
// commit record on top of a Stable blob store.
//
// A global checkpoint for epoch e consists of one state blob and one log
// blob per rank plus, once every rank has reported stoppedLogging, a commit
// record naming e as "the checkpoint to be used for recovery" (Section 4.1,
// Phase 4 of the paper). Recovery always starts from the newest committed
// epoch; a crash in the middle of checkpoint e+1 therefore falls back to
// epoch e.
type CheckpointStore struct {
	S Stable
}

// NewCheckpointStore wraps s.
func NewCheckpointStore(s Stable) *CheckpointStore { return &CheckpointStore{S: s} }

// StateKey names the application+protocol state blob for (epoch, rank).
func StateKey(epoch, rank int) string { return fmt.Sprintf("ckpt/%08d/state.%04d", epoch, rank) }

// LogKey names the message/non-determinism log blob for (epoch, rank).
func LogKey(epoch, rank int) string { return fmt.Sprintf("ckpt/%08d/log.%04d", epoch, rank) }

const commitKey = "ckpt/COMMIT"

// PutState durably stores a rank's local checkpoint state for an epoch.
func (c *CheckpointStore) PutState(epoch, rank int, data []byte) error {
	return c.S.Put(StateKey(epoch, rank), data)
}

// GetState loads a rank's local checkpoint state for an epoch.
func (c *CheckpointStore) GetState(epoch, rank int) ([]byte, error) {
	return c.S.Get(StateKey(epoch, rank))
}

// PutLog durably stores a rank's finalized log for an epoch.
func (c *CheckpointStore) PutLog(epoch, rank int, data []byte) error {
	return c.S.Put(LogKey(epoch, rank), data)
}

// GetLog loads a rank's finalized log for an epoch.
func (c *CheckpointStore) GetLog(epoch, rank int) ([]byte, error) {
	return c.S.Get(LogKey(epoch, rank))
}

// Commit atomically records epoch as the checkpoint to use for recovery.
func (c *CheckpointStore) Commit(epoch int) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(epoch)+1) // +1 so epoch 0 is distinguishable from "none"
	return c.S.Put(commitKey, b[:])
}

// ClearCommit removes the commit record, so recovery restarts from the
// beginning. A job launcher reusing a checkpoint directory calls this
// before its first incarnation: a stale record from a previous job would
// otherwise be restored by the first rollback of the new one.
func (c *CheckpointStore) ClearCommit() error {
	return c.S.Delete(commitKey)
}

// Committed returns the most recently committed epoch. ok is false when no
// global checkpoint has ever been committed.
func (c *CheckpointStore) Committed() (epoch int, ok bool, err error) {
	b, err := c.S.Get(commitKey)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return 0, false, nil
		}
		return 0, false, err
	}
	if len(b) != 8 {
		// A torn commit record would be a storage-layer atomicity bug;
		// surface it as an error rather than a panic in the recovering
		// process.
		return 0, false, fmt.Errorf("storage: commit record is %d bytes, want 8", len(b))
	}
	v := binary.LittleEndian.Uint64(b)
	if v == 0 {
		return 0, false, nil
	}
	return int(v - 1), true, nil
}
