package storage

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// CheckpointStore layers the checkpoint naming scheme and the initiator's
// commit record on top of a Stable blob store.
//
// A global checkpoint for epoch e consists of one state blob and one log
// blob per rank plus, once every rank has reported stoppedLogging, a commit
// record naming e as "the checkpoint to be used for recovery" (Section 4.1,
// Phase 4 of the paper). Recovery always starts from the newest committed
// epoch; a crash in the middle of checkpoint e+1 therefore falls back to
// epoch e.
type CheckpointStore struct {
	S Stable
}

// NewCheckpointStore wraps s.
func NewCheckpointStore(s Stable) *CheckpointStore { return &CheckpointStore{S: s} }

// StateKey names the application+protocol state blob for (epoch, rank).
func StateKey(epoch, rank int) string { return fmt.Sprintf("ckpt/%08d/state.%04d", epoch, rank) }

// LogKey names the message/non-determinism log blob for (epoch, rank).
func LogKey(epoch, rank int) string { return fmt.Sprintf("ckpt/%08d/log.%04d", epoch, rank) }

// MetaKey names the recovery-metadata manifest for (epoch, rank): a small
// sidecar blob holding just what the recovery driver gathers (the early-
// message ID sets), so a restart reads O(ranks) tiny blobs instead of
// every rank's full state. Written after the state manifest commits, and
// pruned with the rest of the epoch directory.
func MetaKey(epoch, rank int) string { return fmt.Sprintf("ckpt/%08d/meta.%04d", epoch, rank) }

const commitKey = "ckpt/COMMIT"

// PutState durably stores a rank's local checkpoint state for an epoch as
// one inline blob. The asynchronous pipeline streams through StateWriter
// instead; this path remains for the blocking baselines and small states.
func (c *CheckpointStore) PutState(epoch, rank int, data []byte) error {
	return c.S.Put(StateKey(epoch, rank), data)
}

// StateWriter returns a chunked streaming writer for a rank's state blob:
// content after each Cut is stored as content-hashed chunks shared across
// epochs and ranks, and Commit publishes the manifest under the state key.
// ctx, when non-nil, aborts an in-flight flush between chunks.
func (c *CheckpointStore) StateWriter(ctx context.Context, epoch, rank, chunkSize int) *ChunkedWriter {
	return NewChunkedWriter(ctx, c.S, StateKey(epoch, rank), chunkSize)
}

// GetState loads a rank's local checkpoint state for an epoch, reassembling
// it from chunks when the key holds a manifest.
func (c *CheckpointStore) GetState(epoch, rank int) ([]byte, error) {
	return c.getBlob(StateKey(epoch, rank))
}

func (c *CheckpointStore) getBlob(key string) ([]byte, error) {
	b, err := c.S.Get(key)
	if err != nil {
		return nil, err
	}
	if IsManifest(b) {
		return Assemble(c.S, b)
	}
	return b, nil
}

// PutMeta durably stores a rank's recovery-metadata sidecar for an epoch.
func (c *CheckpointStore) PutMeta(epoch, rank int, data []byte) error {
	return c.S.Put(MetaKey(epoch, rank), data)
}

// GetMeta loads a rank's recovery-metadata sidecar for an epoch. Returns
// ErrNotFound for checkpoints written before the sidecar existed; callers
// fall back to reading the full state blob.
func (c *CheckpointStore) GetMeta(epoch, rank int) ([]byte, error) {
	return c.S.Get(MetaKey(epoch, rank))
}

// PutLog durably stores a rank's finalized log for an epoch.
func (c *CheckpointStore) PutLog(epoch, rank int, data []byte) error {
	return c.S.Put(LogKey(epoch, rank), data)
}

// GetLog loads a rank's finalized log for an epoch.
func (c *CheckpointStore) GetLog(epoch, rank int) ([]byte, error) {
	return c.S.Get(LogKey(epoch, rank))
}

// Commit atomically records epoch as the checkpoint to use for recovery.
func (c *CheckpointStore) Commit(epoch int) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(epoch)+1) // +1 so epoch 0 is distinguishable from "none"
	return c.S.Put(commitKey, b[:])
}

// ClearCommit removes the commit record, so recovery restarts from the
// beginning. A job launcher reusing a checkpoint directory calls this
// before its first incarnation: a stale record from a previous job would
// otherwise be restored by the first rollback of the new one.
func (c *CheckpointStore) ClearCommit() error {
	return c.S.Delete(commitKey)
}

// Committed returns the most recently committed epoch. ok is false when no
// global checkpoint has ever been committed.
func (c *CheckpointStore) Committed() (epoch int, ok bool, err error) {
	b, err := c.S.Get(commitKey)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return 0, false, nil
		}
		return 0, false, err
	}
	if len(b) != 8 {
		// A torn commit record would be a storage-layer atomicity bug;
		// surface it as an error rather than a panic in the recovering
		// process.
		return 0, false, fmt.Errorf("storage: commit record is %d bytes, want 8", len(b))
	}
	v := binary.LittleEndian.Uint64(b)
	if v == 0 {
		return 0, false, nil
	}
	return int(v - 1), true, nil
}

// Prune deletes the state and log blobs of every epoch older than
// keepEpoch, then sweeps content-hashed chunks referenced by no remaining
// state manifest. The initiator calls it right after writing the commit
// record for keepEpoch: recovery always starts from the newest committed
// epoch, so older artifacts are unreachable — without pruning the store
// grows without bound.
//
// Multi-process safety: Prune runs only on the initiator, between the
// commit of keepEpoch (every rank's flush for it has completed) and the
// next pleaseCheckpoint broadcast — so no rank is writing state or chunks
// concurrently, and readers (recovering processes) only ever open the
// committed epoch, which is never touched.
func (c *CheckpointStore) Prune(keepEpoch int) error {
	keys, err := c.S.List("ckpt/")
	if err != nil {
		return err
	}
	var chunkKeys, keptStates []string
	for _, k := range keys {
		if k == commitKey {
			continue
		}
		if strings.HasPrefix(k, chunkPrefix) {
			chunkKeys = append(chunkKeys, k)
			continue
		}
		rest, ok := strings.CutPrefix(k, "ckpt/")
		if !ok || len(rest) < 9 || rest[8] != '/' {
			continue // not an epoch blob; leave foreign keys alone
		}
		epoch, err := strconv.Atoi(rest[:8])
		if err != nil {
			continue
		}
		if epoch < keepEpoch {
			if err := c.S.Delete(k); err != nil {
				return err
			}
			continue
		}
		if strings.HasPrefix(rest[9:], "state.") {
			keptStates = append(keptStates, k)
		}
	}
	// Chunk sweep: a chunk survives iff some remaining manifest references
	// it (including manifests of epochs newer than keepEpoch).
	referenced := make(map[string]bool)
	for _, k := range keptStates {
		blob, err := c.S.Get(k)
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				continue
			}
			return err
		}
		if !IsManifest(blob) {
			continue
		}
		refs, err := ParseManifest(blob)
		if err != nil {
			return fmt.Errorf("storage: prune: %s: %w", k, err)
		}
		for _, r := range refs {
			referenced[r.Key()] = true
		}
	}
	for _, k := range chunkKeys {
		if !referenced[k] {
			if err := c.S.Delete(k); err != nil {
				return err
			}
		}
	}
	return nil
}
