package storage

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func testStable(t *testing.T, s Stable) {
	t.Helper()
	if _, err := s.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing: %v", err)
	}
	if err := s.Put("a/b", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a/c", []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a/b", []byte("replaced")); err != nil {
		t.Fatal(err)
	}
	b, err := s.Get("a/b")
	if err != nil || string(b) != "replaced" {
		t.Fatalf("Get a/b = %q, %v", b, err)
	}
	keys, err := s.List("a/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "a/b" || keys[1] != "a/c" {
		t.Fatalf("List = %v", keys)
	}
	if err := s.Delete("a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a/b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
	if err := s.Delete("a/b"); err != nil {
		t.Fatalf("double delete should be a no-op: %v", err)
	}
}

func TestMemoryStable(t *testing.T) { testStable(t, NewMemory()) }

func TestDiskStable(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testStable(t, d)
}

func TestMemoryIsolation(t *testing.T) {
	m := NewMemory()
	data := []byte{1, 2, 3}
	if err := m.Put("k", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 99 // caller mutation must not affect the stored blob
	got, err := m.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatal("Put must copy its input")
	}
	got[1] = 99 // returned blob mutation must not affect the store
	got2, _ := m.Get("k")
	if got2[1] != 2 {
		t.Fatal("Get must return a copy")
	}
}

func TestMemoryBytesWritten(t *testing.T) {
	m := NewMemory()
	_ = m.Put("a", make([]byte, 10))
	_ = m.Put("b", make([]byte, 5))
	if m.BytesWritten() != 15 {
		t.Fatalf("BytesWritten = %d", m.BytesWritten())
	}
}

func TestThrottledBandwidth(t *testing.T) {
	m := NewMemory()
	var slept time.Duration
	th := NewThrottled(m, 1000) // 1000 B/s
	th.Sleep = func(d time.Duration) { slept += d }
	if err := th.Put("k", make([]byte, 500)); err != nil {
		t.Fatal(err)
	}
	// 500 bytes at 1000 B/s should cost ~0.5s of simulated time.
	if slept < 400*time.Millisecond || slept > 600*time.Millisecond {
		t.Fatalf("slept %v, want ~500ms", slept)
	}
	// Reads are not throttled.
	if _, err := th.Get("k"); err != nil {
		t.Fatal(err)
	}
}

func TestThrottledDisabled(t *testing.T) {
	th := NewThrottled(NewMemory(), 0)
	th.Sleep = func(time.Duration) { t.Fatal("should not sleep when disabled") }
	if err := th.Put("k", make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointStoreCommit(t *testing.T) {
	cs := NewCheckpointStore(NewMemory())
	if _, ok, err := cs.Committed(); err != nil || ok {
		t.Fatalf("fresh store: ok=%v err=%v", ok, err)
	}
	if err := cs.PutState(0, 3, []byte("state")); err != nil {
		t.Fatal(err)
	}
	if err := cs.PutLog(0, 3, []byte("log")); err != nil {
		t.Fatal(err)
	}
	if err := cs.Commit(0); err != nil {
		t.Fatal(err)
	}
	e, ok, err := cs.Committed()
	if err != nil || !ok || e != 0 {
		t.Fatalf("committed = %d, %v, %v", e, ok, err)
	}
	if err := cs.Commit(1); err != nil {
		t.Fatal(err)
	}
	e, ok, _ = cs.Committed()
	if !ok || e != 1 {
		t.Fatalf("committed = %d, %v", e, ok)
	}
	st, err := cs.GetState(0, 3)
	if err != nil || string(st) != "state" {
		t.Fatalf("GetState = %q, %v", st, err)
	}
	lg, err := cs.GetLog(0, 3)
	if err != nil || string(lg) != "log" {
		t.Fatalf("GetLog = %q, %v", lg, err)
	}
}

func TestCheckpointKeysDistinct(t *testing.T) {
	f := func(e1, r1, e2, r2 uint8) bool {
		if e1 == e2 && r1 == r2 {
			return true
		}
		return StateKey(int(e1), int(r1)) != StateKey(int(e2), int(r2)) &&
			LogKey(int(e1), int(r1)) != LogKey(int(e2), int(r2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThrottledRateIsEnforced(t *testing.T) {
	// 1 MB at 10 MB/s must take ≈100 ms; allow generous scheduling slack
	// downward but reject an unthrottled (instant) write.
	th := NewThrottled(NewMemory(), 10e6)
	start := time.Now()
	if err := th.Put("k", make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("1 MB at 10 MB/s finished in %v; throttle not applied", elapsed)
	}
	got, err := th.Get("k")
	if err != nil || len(got) != 1<<20 {
		t.Fatalf("get: %v, %d bytes", err, len(got))
	}
}

func TestThrottledReadsAreNotThrottled(t *testing.T) {
	th := NewThrottled(NewMemory(), 1) // 1 B/s: any throttled op would hang
	if err := th.Inner.Put("k", make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := th.Get("k"); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("read was throttled")
	}
}

func TestDiskKeysWithSlashes(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := StateKey(12, 3) // "ckpt/00000012/state.0003"
	if err := d.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get(key)
	if err != nil || string(got) != "payload" {
		t.Fatalf("get: %v %q", err, got)
	}
	keys, err := d.List("ckpt/00000012/")
	if err != nil || len(keys) != 1 {
		t.Fatalf("list: %v %v", err, keys)
	}
}

func TestCommitOverwrite(t *testing.T) {
	cs := NewCheckpointStore(NewMemory())
	for _, e := range []int{1, 2, 5} {
		if err := cs.Commit(e); err != nil {
			t.Fatal(err)
		}
		got, ok, err := cs.Committed()
		if err != nil || !ok || got != e {
			t.Fatalf("committed = %d %v %v, want %d", got, ok, err, e)
		}
	}
}
