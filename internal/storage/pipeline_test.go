package storage

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
)

// The pipelined ChunkedWriter must be observationally identical to the
// serial writer: same chunk boundaries, same hashes, same manifest, same
// reassembled bytes — only wall-clock overlap differs.

// writeMixed streams data into w with Cut boundaries at every offset in
// cuts, mimicking a serializer's section structure.
func writeMixed(t *testing.T, w *ChunkedWriter, data []byte, cuts map[int]bool) {
	t.Helper()
	for off := 0; off < len(data); {
		n := 1024
		if off+n > len(data) {
			n = len(data) - off
		}
		if _, err := w.Write(data[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
		if cuts[off] {
			if err := w.Cut(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestPipelineManifestIdenticalToSerial(t *testing.T) {
	data := make([]byte, 300_000)
	rand.New(rand.NewSource(9)).Read(data)
	cuts := map[int]bool{7 * 1024: true, 150 * 1024: true, 152 * 1024: true}
	const chunk = 32 << 10

	serial := NewMemory()
	ws := NewChunkedWriter(context.Background(), serial, "blob", chunk)
	writeMixed(t, ws, data, cuts)
	st, sw, err := ws.Commit()
	if err != nil {
		t.Fatal(err)
	}

	for _, depth := range []int{1, 2, DefaultPipelineDepth, 16} {
		piped := NewMemory()
		wp := NewChunkedWriter(context.Background(), piped, "blob", chunk).Pipeline(depth)
		defer wp.Abort()
		writeMixed(t, wp, data, cuts)
		pt, pw, err := wp.Commit()
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if pt != st || pw != sw {
			t.Fatalf("depth %d: total/written %d/%d differ from serial %d/%d", depth, pt, pw, st, sw)
		}
		sm, _ := serial.Get("blob")
		pm, _ := piped.Get("blob")
		if !bytes.Equal(sm, pm) {
			t.Fatalf("depth %d: pipelined manifest differs from serial", depth)
		}
		got, err := Assemble(piped, pm)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("depth %d: reassembled bytes differ", depth)
		}
	}
}

// A blob smaller than one chunk must never spawn the pipeline workers:
// tiny checkpoints keep the serial path's latency (commit visibility in
// async mode depends on it).
func TestPipelineLazySpawn(t *testing.T) {
	m := NewMemory()
	w := NewChunkedWriter(context.Background(), m, "blob", 64<<10).Pipeline(4)
	w.Write(make([]byte, 10_000))
	w.Cut()
	w.Write(make([]byte, 10_000))
	if _, _, err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if w.pipe != nil {
		t.Fatal("sub-chunk blob spawned pipeline workers; the serial fast path was lost")
	}

	w2 := NewChunkedWriter(context.Background(), m, "blob2", 8<<10).Pipeline(4)
	w2.Write(make([]byte, 20_000)) // > 2 chunks: must spawn
	if _, _, err := w2.Commit(); err != nil {
		t.Fatal(err)
	}
	if w2.pipe == nil {
		t.Fatal("multi-chunk blob never spawned the pipeline")
	}
}

// TestPipelineDedupAcrossEpochs: the probe-ahead path must still dedup
// unchanged chunks against the previous epoch.
func TestPipelineDedupAcrossEpochs(t *testing.T) {
	m := NewMemory()
	const chunk = 16 << 10
	data := make([]byte, 512<<10)
	rand.New(rand.NewSource(3)).Read(data)

	w1 := NewChunkedWriter(context.Background(), m, StateKey(1, 0), chunk).Pipeline(4)
	w1.Write(data)
	_, first, err := w1.Commit()
	if err != nil {
		t.Fatal(err)
	}
	for i := 40_000; i < 60_000; i++ {
		data[i] ^= 0x5A
	}
	w2 := NewChunkedWriter(context.Background(), m, StateKey(2, 0), chunk).Pipeline(4)
	w2.Write(data)
	_, repeat, err := w2.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if repeat >= first/2 {
		t.Fatalf("pipelined repeat stored %d bytes vs first %d; probe-ahead dedup broken", repeat, first)
	}
}

// failingStable errors every Put after the first `allow` calls, exercising
// the pipeline's error latch and drain.
type failingStable struct {
	*Memory
	allow int
	puts  int
}

func (f *failingStable) Put(key string, data []byte) error {
	f.puts++
	if f.puts > f.allow {
		return errors.New("stable: injected put failure")
	}
	return f.Memory.Put(key, data)
}

func TestPipelinePutErrorSurfacesAtCommit(t *testing.T) {
	fs := &failingStable{Memory: NewMemory(), allow: 2}
	w := NewChunkedWriter(context.Background(), fs, "blob", 4<<10).Pipeline(2)
	// 64 distinct chunks: far more than the pipeline depth, so the producer
	// keeps feeding a latched-dead pipeline and must not deadlock.
	data := make([]byte, 256<<10)
	rand.New(rand.NewSource(4)).Read(data)
	for off := 0; off < len(data); off += 8192 {
		if _, err := w.Write(data[off : off+8192]); err != nil {
			// The latched error may surface early at a flush; that is fine —
			// Commit must still join cleanly and report it.
			break
		}
	}
	if _, _, err := w.Commit(); err == nil {
		t.Fatal("commit after a failed chunk put must error")
	}
	if ok, _ := fs.Has("blob"); ok {
		t.Fatal("failed pipelined writer must not publish a manifest")
	}
}

func TestPipelineAbortJoinsWorkers(t *testing.T) {
	m := NewMemory()
	w := NewChunkedWriter(context.Background(), m, "blob", 4<<10).Pipeline(2)
	w.Write(make([]byte, 64<<10))
	w.Abort()
	w.Abort() // idempotent
	if ok, _ := m.Has("blob"); ok {
		t.Fatal("aborted writer must not publish a manifest")
	}
	// Abort on a never-spawned and on a serial writer are both no-ops.
	NewChunkedWriter(context.Background(), m, "b2", 1<<20).Pipeline(2).Abort()
	NewChunkedWriter(context.Background(), m, "b3", 1<<20).Abort()
}

func TestPipelineCancellation(t *testing.T) {
	m := NewMemory()
	ctx, cancel := context.WithCancel(context.Background())
	w := NewChunkedWriter(ctx, m, "blob", 1024).Pipeline(2)
	if _, err := w.Write(make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}
	cancel()
	for i := 0; i < 32; i++ { // keep feeding until the latch surfaces
		if _, err := w.Write(make([]byte, 1024)); err != nil {
			break
		}
	}
	if _, _, err := w.Commit(); err == nil {
		t.Fatal("commit after cancellation should fail")
	}
	if ok, _ := m.Has("blob"); ok {
		t.Fatal("canceled pipelined writer must not publish a manifest")
	}
}
