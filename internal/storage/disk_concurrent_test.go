package storage

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDiskCommitNeverTorn simulates what the distributed launcher makes
// real: several *processes* sharing one checkpoint directory, one of them
// re-writing ckpt/COMMIT while restarting peers poll it. Each writer gets
// its own Disk instance (separate mutexes — the in-process lock must not be
// what saves us), and the readers assert that every observed commit record
// is a complete, valid 8-byte blob naming an epoch that was actually
// committed. With a fixed-name temporary file this fails: one writer can
// truncate the temp file another is about to rename, publishing a torn
// (typically empty) record.
func TestDiskCommitNeverTorn(t *testing.T) {
	root := t.TempDir()
	const writers = 4
	const commitsPerWriter = 200
	const maxEpoch = writers * commitsPerWriter

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		d, err := NewDisk(root) // one instance per simulated process
		if err != nil {
			t.Fatal(err)
		}
		cs := NewCheckpointStore(d)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < commitsPerWriter; i++ {
				if err := cs.Commit(w*commitsPerWriter + i); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	var readerWg sync.WaitGroup
	for r := 0; r < 3; r++ {
		d, err := NewDisk(root)
		if err != nil {
			t.Fatal(err)
		}
		cs := NewCheckpointStore(d)
		readerWg.Add(1)
		go func() {
			defer readerWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				epoch, ok, err := cs.Committed()
				if err != nil {
					t.Errorf("reader observed a torn commit record: %v", err)
					return
				}
				if ok && (epoch < 0 || epoch >= maxEpoch) {
					t.Errorf("reader observed impossible epoch %d", epoch)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	readerWg.Wait()

	// No in-flight temp files may survive the writers.
	entries, err := os.ReadDir(filepath.Join(root, "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

// TestDiskConcurrentSameKey hammers one key from many Disk instances and
// checks every read returns some writer's complete value.
func TestDiskConcurrentSameKey(t *testing.T) {
	root := t.TempDir()
	const writers = 8
	payload := func(w int) []byte {
		return []byte(strings.Repeat(string(rune('a'+w)), 512))
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		d, err := NewDisk(root)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := d.Put("shared/key", payload(w)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	reader, err := NewDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		b, err := reader.Get("shared/key")
		if err == nil {
			if len(b) != 512 {
				t.Fatalf("torn read: %d bytes", len(b))
			}
			for _, c := range b[1:] {
				if c != b[0] {
					t.Fatalf("interleaved read: %q...", b[:16])
				}
			}
		}
		select {
		case <-done:
			// Writers finished and every read so far was whole.
			if keys, err := reader.List("shared/"); err != nil || len(keys) != 1 {
				t.Fatalf("List = %v, %v (temp files must stay hidden)", keys, err)
			}
			return
		default:
		}
	}
	t.Fatal("writers did not finish in time")
}

// TestDiskListHidesInFlightTempFiles pins the List contract directly.
func TestDiskListHidesInFlightTempFiles(t *testing.T) {
	root := t.TempDir()
	d, err := NewDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("ckpt/blob", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crashed writer's leftover temp file.
	if err := os.WriteFile(filepath.Join(root, "ckpt", tmpPrefix+"blob-123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := d.List("ckpt/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "ckpt/blob" {
		t.Fatalf("List = %v, want [ckpt/blob]", keys)
	}
}
