package storage

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func writeChunked(t *testing.T, s Stable, key string, data []byte, chunkSize int) (total, written int64) {
	t.Helper()
	w := NewChunkedWriter(context.Background(), s, key, chunkSize)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	total, written, err := w.Commit()
	if err != nil {
		t.Fatal(err)
	}
	return total, written
}

func TestChunkedRoundTrip(t *testing.T) {
	m := NewMemory()
	cs := NewCheckpointStore(m)
	data := make([]byte, 300_000) // ~3 chunks at 128 KB plus a partial
	rand.New(rand.NewSource(1)).Read(data)

	w := cs.StateWriter(context.Background(), 1, 0, 128<<10)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	total, written, err := w.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if total != int64(len(data)) {
		t.Fatalf("total = %d, want %d", total, len(data))
	}
	if written < total {
		t.Fatalf("first write should store every byte: written=%d total=%d", written, total)
	}
	got, err := cs.GetState(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reassembled state differs from the original")
	}
}

// TestChunkedDedupAcrossEpochs pins the incremental-checkpoint property:
// a repeat blob with a small dirty region re-writes only the dirty chunks.
func TestChunkedDedupAcrossEpochs(t *testing.T) {
	m := NewMemory()
	cs := NewCheckpointStore(m)
	const chunk = 32 << 10
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(2)).Read(data)

	_, w1 := writeChunked(t, m, StateKey(1, 0), data, chunk)
	// Dirty ~3% of the blob, aligned nowhere in particular.
	for i := 100_000; i < 130_000; i++ {
		data[i] ^= 0xA5
	}
	_, w2 := writeChunked(t, m, StateKey(2, 0), data, chunk)
	if w2 >= w1/2 {
		t.Fatalf("repeat write stored %d bytes vs first %d; dedup should cut it below half", w2, w1)
	}
	// Both epochs still reassemble.
	if _, err := cs.GetState(1, 0); err != nil {
		t.Fatal(err)
	}
	got, err := cs.GetState(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("epoch-2 state differs")
	}
}

func TestChunkedCutBoundaries(t *testing.T) {
	m := NewMemory()
	w := NewChunkedWriter(context.Background(), m, "blob", 1<<20)
	a := bytes.Repeat([]byte{1}, 1000)
	b := bytes.Repeat([]byte{2}, 2000)
	if _, err := w.Write(a); err != nil {
		t.Fatal(err)
	}
	if err := w.Cut(); err != nil {
		t.Fatal(err)
	}
	if err := w.Cut(); err != nil { // empty cut is a no-op, not an empty chunk
		t.Fatal(err)
	}
	if _, err := w.Write(b); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	man, err := m.Get("blob")
	if err != nil {
		t.Fatal(err)
	}
	refs, err := ParseManifest(man)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 2 || refs[0].Len != 1000 || refs[1].Len != 2000 {
		t.Fatalf("refs = %+v, want two chunks of 1000 and 2000 bytes", refs)
	}
	got, err := Assemble(m, man)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, append(append([]byte(nil), a...), b...)) {
		t.Fatal("assembled bytes differ")
	}
}

func TestAssembleDetectsCorruptChunk(t *testing.T) {
	m := NewMemory()
	data := bytes.Repeat([]byte("x"), 10_000)
	writeChunked(t, m, "blob", data, 4096)
	man, _ := m.Get("blob")
	refs, _ := ParseManifest(man)
	// Corrupt one chunk in place.
	if err := m.Put(refs[1].Key(), []byte(bytes.Repeat([]byte("y"), int(refs[1].Len)))); err != nil {
		t.Fatal(err)
	}
	if _, err := Assemble(m, man); err == nil {
		t.Fatal("assembling over a corrupt chunk must fail loudly")
	}
	// And a missing chunk too.
	if err := m.Delete(refs[0].Key()); err != nil {
		t.Fatal(err)
	}
	if _, err := Assemble(m, man); err == nil {
		t.Fatal("assembling with a missing chunk must fail loudly")
	}
}

func TestChunkedWriterCancellation(t *testing.T) {
	m := NewMemory()
	ctx, cancel := context.WithCancel(context.Background())
	w := NewChunkedWriter(ctx, m, "blob", 1024)
	if _, err := w.Write(make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := w.Write(make([]byte, 4096)); err == nil {
		t.Fatal("write after cancellation should fail")
	}
	if _, _, err := w.Commit(); err == nil {
		t.Fatal("commit after cancellation should fail")
	}
	if ok, _ := m.Has("blob"); ok {
		t.Fatal("canceled writer must not publish a manifest")
	}
}

func TestPrune(t *testing.T) {
	for _, backend := range []struct {
		name string
		s    func(t *testing.T) Stable
	}{
		{"memory", func(t *testing.T) Stable { return NewMemory() }},
		{"disk", func(t *testing.T) Stable {
			d, err := NewDisk(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return d
		}},
	} {
		t.Run(backend.name, func(t *testing.T) {
			s := backend.s(t)
			cs := NewCheckpointStore(s)
			shared := bytes.Repeat([]byte("s"), 64<<10) // identical across epochs: dedups
			uniq := func(e int) []byte {
				b := bytes.Repeat([]byte{byte(e)}, 64<<10)
				return b
			}
			for epoch := 1; epoch <= 3; epoch++ {
				for rank := 0; rank < 2; rank++ {
					w := cs.StateWriter(context.Background(), epoch, rank, 16<<10)
					w.Write(shared)
					w.Cut()
					w.Write(uniq(epoch))
					if _, _, err := w.Commit(); err != nil {
						t.Fatal(err)
					}
					if err := cs.PutLog(epoch, rank, []byte("log")); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := cs.Commit(3); err != nil {
				t.Fatal(err)
			}
			if err := cs.Prune(3); err != nil {
				t.Fatal(err)
			}
			// Epochs 1 and 2 are gone; epoch 3 and the commit record remain.
			for epoch := 1; epoch <= 2; epoch++ {
				for rank := 0; rank < 2; rank++ {
					if _, err := cs.GetState(epoch, rank); err == nil {
						t.Fatalf("epoch %d state survived pruning", epoch)
					}
					if _, err := cs.GetLog(epoch, rank); err == nil {
						t.Fatalf("epoch %d log survived pruning", epoch)
					}
				}
			}
			for rank := 0; rank < 2; rank++ {
				got, err := cs.GetState(3, rank)
				if err != nil {
					t.Fatalf("kept epoch unreadable after prune: %v", err)
				}
				want := append(append([]byte(nil), shared...), uniq(3)...)
				if !bytes.Equal(got, want) {
					t.Fatal("kept epoch reassembles wrong bytes — a referenced chunk was swept")
				}
			}
			if e, ok, err := cs.Committed(); err != nil || !ok || e != 3 {
				t.Fatalf("commit record after prune: %d %v %v", e, ok, err)
			}
			// Orphan sweep actually ran: only chunks referenced by epoch 3
			// remain (shared run + epoch-3 unique run).
			chunks, err := s.List("ckpt/chunks/")
			if err != nil {
				t.Fatal(err)
			}
			refs := map[string]bool{}
			for rank := 0; rank < 2; rank++ {
				man, err := s.Get(StateKey(3, rank))
				if err != nil {
					t.Fatal(err)
				}
				rs, err := ParseManifest(man)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range rs {
					refs[r.Key()] = true
				}
			}
			if len(chunks) != len(refs) {
				t.Fatalf("%d chunks remain, epoch 3 references %d — orphans were not swept", len(chunks), len(refs))
			}
		})
	}
}

// TestPruneConcurrentWithNewEpochWrites exercises the sharing discipline
// the protocol relies on: pruning below epoch e while other writers stream
// epoch >= e state must never delete a chunk those writers reference.
// (The protocol serializes prune against writes, but the store must stay
// coherent even under overlap — e.g. a slow prune racing the next round.)
func TestPruneConcurrentWithNewEpochWrites(t *testing.T) {
	m := NewMemory()
	cs := NewCheckpointStore(m)
	base := bytes.Repeat([]byte("base"), 32<<10)

	// Epoch 1: the baseline everyone dedups against.
	for rank := 0; rank < 4; rank++ {
		w := cs.StateWriter(context.Background(), 1, rank, 16<<10)
		w.Write(base)
		if _, _, err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := cs.Commit(1); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 5)
	for rank := 0; rank < 4; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			w := cs.StateWriter(context.Background(), 2, rank, 16<<10)
			if _, err := w.Write(base); err != nil { // dedups against epoch 1's chunks
				errs <- err
				return
			}
			if _, _, err := w.Commit(); err != nil {
				errs <- err
			}
		}(rank)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := cs.Prune(1); err != nil { // keeps epoch 1, sweeps orphans
			errs <- fmt.Errorf("prune: %w", err)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Every epoch-2 manifest must reassemble: epoch 1 was kept, so every
	// chunk it deduped against survived the sweep.
	for rank := 0; rank < 4; rank++ {
		got, err := cs.GetState(2, rank)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, base) {
			t.Fatal("epoch-2 state corrupted by concurrent prune")
		}
	}
}
