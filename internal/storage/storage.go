// Package storage provides the stable-storage abstraction used by the
// checkpointing protocol. The paper assumes each node can write local
// checkpoints to stable storage (local disk at roughly 40 MB/s on the CMI
// cluster); we provide an in-memory backend for tests, an on-disk backend,
// and a bandwidth-throttled wrapper that models the disk of the paper's
// evaluation platform.
package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrNotFound is returned by Get when no blob exists under the given key.
var ErrNotFound = errors.New("storage: key not found")

// Stable is a minimal reliable blob store. Writes are atomic: a blob is
// either fully stored or absent. Implementations must be safe for
// concurrent use by multiple ranks.
type Stable interface {
	// Put durably stores data under key, replacing any previous blob.
	Put(key string, data []byte) error
	// Get returns the blob stored under key, or ErrNotFound.
	Get(key string) ([]byte, error)
	// Delete removes the blob under key. Deleting a missing key is not an
	// error.
	Delete(key string) error
	// List returns all keys with the given prefix, sorted.
	List(prefix string) ([]string, error)
}

// hasProber is the optional existence probe: implementations that can
// answer "is key present?" cheaper than a full Get (all in-tree stores)
// provide it; Has falls back to Get for external Stable implementations,
// which keeps the v1 ccift.Stable surface source-compatible.
type hasProber interface {
	Has(key string) (bool, error)
}

// Has reports whether a blob exists under key, via the store's fast probe
// when it has one and a Get otherwise. The chunked writer's dedup check
// goes through here.
func Has(s Stable, key string) (bool, error) {
	if h, ok := s.(hasProber); ok {
		return h.Has(key)
	}
	_, err := s.Get(key)
	if errors.Is(err, ErrNotFound) {
		return false, nil
	}
	return err == nil, err
}

// Memory is an in-memory Stable implementation for tests and benchmarks
// that want to exclude I/O cost.
type Memory struct {
	mu    sync.Mutex
	blobs map[string][]byte

	// BytesWritten counts the total payload bytes accepted by Put; it is
	// used by ablation benchmarks to compare checkpoint volumes.
	bytesWritten int64
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{blobs: make(map[string][]byte)}
}

// Put implements Stable.
func (m *Memory) Put(key string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blobs[key] = cp
	m.bytesWritten += int64(len(data))
	return nil
}

// Get implements Stable.
func (m *Memory) Get(key string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blobs[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	return cp, nil
}

// Has implements the optional fast existence probe.
func (m *Memory) Has(key string) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.blobs[key]
	return ok, nil
}

// Delete implements Stable.
func (m *Memory) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.blobs, key)
	return nil
}

// List implements Stable.
func (m *Memory) List(prefix string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var keys []string
	for k := range m.blobs {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// BytesWritten reports the total number of payload bytes stored so far.
func (m *Memory) BytesWritten() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytesWritten
}

// Disk stores blobs as files under a directory. Keys may contain '/'
// separators, which map to subdirectories. Writes go through a uniquely
// named temporary file, an fsync, a rename, and directory fsyncs up to the
// store root: atomic on POSIX even when several *processes* write the same
// key — the shared store's commit record is written by one rank's process
// while restarting processes poll it, and a fixed temp name would let one
// writer truncate the file another is about to rename, exposing a torn
// blob. No lock is needed: MkdirAll tolerates concurrent creation and each
// writer owns its temp file, so ranks checkpoint in parallel.
type Disk struct {
	root string
}

// tmpPrefix marks in-flight temp files; List hides them. The "*" in the
// CreateTemp pattern gives every writer (in any process) its own file.
const tmpPrefix = ".tmp-"

// NewDisk returns a disk-backed store rooted at dir, creating it if needed.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create root: %w", err)
	}
	// Clean so syncToRoot's ancestor walk terminates exactly at the root.
	return &Disk{root: filepath.Clean(dir)}, nil
}

func (d *Disk) path(key string) string {
	return filepath.Join(d.root, filepath.FromSlash(key))
}

// Put implements Stable.
func (d *Disk) Put(key string, data []byte) error {
	p := d.path(key)
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, tmpPrefix+filepath.Base(p)+"-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		// CreateTemp makes the file 0600; published blobs keep the store's
		// historical world-readable mode.
		werr = tmp.Chmod(0o644)
	}
	if werr == nil {
		werr = tmp.Sync() // the blob must be durable before the rename publishes it
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// The rename publishes the blob to other processes, but only directory
	// fsyncs make the new entries survive a machine crash — without them
	// the commit record (or a subdirectory MkdirAll just created) could
	// vanish on power loss.
	return d.syncToRoot(dir)
}

// syncToRoot fsyncs dir and every ancestor up to and including the store
// root, covering both a rename into dir and any directory entries MkdirAll
// created on the way down.
func (d *Disk) syncToRoot(dir string) error {
	for {
		if err := syncDir(dir); err != nil {
			return err
		}
		if dir == d.root {
			return nil
		}
		parent := filepath.Dir(dir)
		if parent == dir { // filesystem root: never sync outside the store
			return nil
		}
		dir = parent
	}
}

// syncDir fsyncs a directory, making entry changes within it durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Get implements Stable.
func (d *Disk) Get(key string) ([]byte, error) {
	b, err := os.ReadFile(d.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return b, err
}

// Has implements the optional fast existence probe.
func (d *Disk) Has(key string) (bool, error) {
	_, err := os.Stat(d.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	return err == nil, err
}

// Delete implements Stable.
func (d *Disk) Delete(key string) error {
	p := d.path(key)
	err := os.Remove(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	// Make the removal durable too: a cleared commit record that
	// resurrects after a crash would resume a foreign job's state.
	return syncDir(filepath.Dir(p))
}

// List implements Stable.
func (d *Disk) List(prefix string) ([]string, error) {
	var keys []string
	err := filepath.Walk(d.root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(d.root, path)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) && !strings.HasPrefix(filepath.Base(path), tmpPrefix) {
			keys = append(keys, key)
		}
		return nil
	})
	sort.Strings(keys)
	return keys, err
}

// Throttled wraps a Stable and limits Put throughput to a fixed bandwidth,
// modelling the 40 MB/s local-disk path of the paper's cluster. Each rank
// writes its own checkpoint, so the throttle is applied per call (the CMI
// nodes had independent local disks).
type Throttled struct {
	Inner Stable
	// BytesPerSecond is the simulated write bandwidth. Zero disables
	// throttling.
	BytesPerSecond float64
	// Sleep is the clock used for throttling; tests may replace it.
	Sleep func(time.Duration)
}

// NewThrottled wraps inner with a write-bandwidth limit.
func NewThrottled(inner Stable, bytesPerSecond float64) *Throttled {
	return &Throttled{Inner: inner, BytesPerSecond: bytesPerSecond, Sleep: time.Sleep}
}

// Put implements Stable, sleeping long enough that the effective write
// bandwidth matches BytesPerSecond.
func (t *Throttled) Put(key string, data []byte) error {
	start := time.Now()
	if err := t.Inner.Put(key, data); err != nil {
		return err
	}
	if t.BytesPerSecond > 0 {
		want := time.Duration(float64(len(data)) / t.BytesPerSecond * float64(time.Second))
		if elapsed := time.Since(start); elapsed < want {
			t.Sleep(want - elapsed)
		}
	}
	return nil
}

// Get implements Stable.
func (t *Throttled) Get(key string) ([]byte, error) { return t.Inner.Get(key) }

// Has probes the inner store; probing costs no bandwidth, so it is never
// throttled — which is exactly how chunk dedup saves wall-clock time on a
// slow disk.
func (t *Throttled) Has(key string) (bool, error) { return Has(t.Inner, key) }

// Delete implements Stable.
func (t *Throttled) Delete(key string) error { return t.Inner.Delete(key) }

// List implements Stable.
func (t *Throttled) List(prefix string) ([]string, error) { return t.Inner.List(prefix) }
