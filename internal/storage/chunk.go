package storage

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"sync"
)

// Chunked streaming storage: a large blob is stored as content-hashed
// chunks plus a small manifest of chunk references under the blob's own
// key. Chunks are addressed by their SHA-256, so a chunk whose content is
// unchanged between two epochs (or identical across ranks) is stored once
// and re-referenced — repeat checkpoints of mostly-unchanged state write
// only the dirty chunks. Orphaned chunks are swept by the checkpoint
// store's pruning pass after a commit.

// DefaultChunkSize is the chunk granularity when the caller does not
// choose one: large enough that manifest overhead is negligible, small
// enough that a few dirty pages do not force a whole-state rewrite.
const DefaultChunkSize = 256 << 10

// DefaultPipelineDepth is the chunk pipeline depth when Pipeline is asked
// for one: deep enough to keep the hash worker busy while a chunk fills,
// shallow enough that the in-flight buffers stay cache-friendly.
const DefaultPipelineDepth = 4

// chunkPrefix is the shared content-addressed chunk namespace.
const chunkPrefix = "ckpt/chunks/"

// manifestMagic marks a blob as a chunk manifest rather than inline data.
// (Inline blobs in this store are gob or codec streams, which cannot begin
// with these eight bytes.)
var manifestMagic = []byte("C3CM0001")

// ChunkRef names one chunk of a manifest.
type ChunkRef struct {
	Sum [sha256.Size]byte
	Len int64
}

// Key returns the store key the referenced chunk lives under.
func (r ChunkRef) Key() string { return chunkPrefix + hex.EncodeToString(r.Sum[:]) }

// ChunkedWriter streams a blob into content-hashed chunks. It implements
// io.Writer plus Cut, the dedup boundary hook: Cut closes the current
// chunk early so that content after the boundary hashes independently of
// content before it — serializers call it between sections and around
// large values. Commit writes the manifest under the writer's key.
//
// The writer is single-use and not safe for concurrent use.
type ChunkedWriter struct {
	s         Stable
	ctx       context.Context
	key       string
	chunkSize int
	buf       []byte
	refs      []ChunkRef
	total     int64 // logical blob bytes
	written   int64 // bytes actually Put (manifest + dedup-missed chunks)
	committed bool
	pipeDepth int            // >0: pipeline requested, spawned on first full chunk
	pipe      *chunkPipeline // nil until the pipeline actually spawns
}

// NewChunkedWriter returns a writer that stores chunks in s and, on
// Commit, a manifest under key. chunkSize <= 0 selects DefaultChunkSize.
// ctx, when non-nil, aborts the stream between chunk writes — a canceled
// flush returns ctx.Err() instead of finishing a write nobody will commit.
func NewChunkedWriter(ctx context.Context, s Stable, key string, chunkSize int) *ChunkedWriter {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	return &ChunkedWriter{s: s, ctx: ctx, key: key, chunkSize: chunkSize, buf: make([]byte, 0, chunkSize)}
}

// Pipeline switches the writer into pipelined mode: chunk N is hashed and
// dedup-probed on a worker while chunk N+1 fills on the caller, and Put
// runs on a second worker behind the probe — so the `Has` probe for chunk
// N+1 overlaps the store write of chunk N. Chunk boundaries, hashes, and
// the manifest are identical to serial mode; only wall-clock overlap
// changes. depth bounds the chunks in flight (<= 0 selects
// DefaultPipelineDepth). Must be called before the first Write; returns
// the writer for chaining.
//
// The workers spawn lazily, on the first flush of a FULL chunk: a blob
// smaller than one chunk never fills one, so it takes the serial path
// with zero goroutine or channel overhead — pipelining only pays once
// there are at least two chunks to overlap.
func (w *ChunkedWriter) Pipeline(depth int) *ChunkedWriter {
	if w.pipe != nil || w.pipeDepth != 0 || w.total != 0 || len(w.buf) != 0 || len(w.refs) != 0 || w.committed {
		panic("storage: ChunkedWriter.Pipeline after first Write")
	}
	if depth <= 0 {
		depth = DefaultPipelineDepth
	}
	w.pipeDepth = depth
	return w
}

// startPipeline spawns the hash and put workers. Called from flush once
// the stream has proven to be multi-chunk.
func (w *ChunkedWriter) startPipeline() {
	depth := w.pipeDepth
	p := &chunkPipeline{
		hashCh: make(chan []byte, depth),
		putCh:  make(chan chunkPut, depth),
		free:   make(chan []byte, depth+2),
	}
	// Seed the buffer free-list: one buffer per in-flight slot plus one for
	// each worker's hands. The caller's fill buffer is w.buf itself.
	for i := 0; i < depth+2; i++ {
		p.free <- make([]byte, 0, w.chunkSize)
	}
	p.wg.Add(2)
	go p.hashWorker(w.s, w.ctx)
	go p.putWorker(w.s)
	w.pipe = p
}

// chunkPipeline is the worker state behind a pipelined ChunkedWriter. The
// caller's flush hands a filled buffer to hashCh; the hash worker hashes
// it and probes the store, then forwards to putCh; the put worker stores
// missing chunks and appends manifest refs. Both channels are FIFO with a
// single consumer each, so refs accumulate in stream order. Buffers
// recycle through free — the stores copy on Put, so a buffer is reusable
// the moment its Put returns (the serial path relies on the same
// property).
type chunkPipeline struct {
	hashCh chan []byte
	putCh  chan chunkPut
	free   chan []byte
	wg     sync.WaitGroup

	mu  sync.Mutex
	err error // first error from either worker; latched, drains continue

	// Owned by the put worker until wg.Wait returns.
	refs    []ChunkRef
	total   int64
	written int64

	closed bool // hashCh closed (Commit or Abort ran)
}

func (p *chunkPipeline) latch(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

func (p *chunkPipeline) errNow() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// hashWorker hashes each chunk and probes the store for it. On a latched
// error it keeps draining (recycling buffers) so the producer never
// blocks on a dead pipeline.
func (p *chunkPipeline) hashWorker(s Stable, ctx context.Context) {
	defer p.wg.Done()
	defer close(p.putCh)
	for buf := range p.hashCh {
		if p.errNow() != nil {
			p.free <- buf
			continue
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				p.latch(err)
				p.free <- buf
				continue
			}
		}
		sum := sha256.Sum256(buf)
		ref := ChunkRef{Sum: sum, Len: int64(len(buf))}
		ok, err := Has(s, ref.Key())
		if err != nil {
			p.latch(fmt.Errorf("storage: probe chunk: %w", err))
			p.free <- buf
			continue
		}
		p.putCh <- chunkPut{buf: buf, ref: ref, need: !ok}
	}
}

type chunkPut struct {
	buf  []byte
	ref  ChunkRef
	need bool
}

// putWorker stores missing chunks and builds the manifest ref list.
func (p *chunkPipeline) putWorker(s Stable) {
	defer p.wg.Done()
	for j := range p.putCh {
		if p.errNow() == nil {
			if j.need {
				if err := s.Put(j.ref.Key(), j.buf); err != nil {
					p.latch(fmt.Errorf("storage: put chunk: %w", err))
					p.free <- j.buf
					continue
				}
				p.written += j.ref.Len
			}
			p.total += j.ref.Len
			p.refs = append(p.refs, j.ref)
		}
		p.free <- j.buf
	}
}

// join closes the intake and waits for both workers. Idempotent.
func (p *chunkPipeline) join() {
	if !p.closed {
		p.closed = true
		close(p.hashCh)
	}
	p.wg.Wait()
}

// Abort tears down a pipelined writer that will not be committed, joining
// its workers. Safe to call in any state, including after Commit and on a
// serial writer (both no-ops), so callers can simply defer it.
func (w *ChunkedWriter) Abort() {
	if w.pipe != nil && !w.committed {
		w.pipe.join()
	}
}

// Write implements io.Writer, spilling every full chunk to the store.
func (w *ChunkedWriter) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		room := w.chunkSize - len(w.buf)
		if room > len(p) {
			room = len(p)
		}
		w.buf = append(w.buf, p[:room]...)
		p = p[room:]
		if len(w.buf) == w.chunkSize {
			if err := w.flush(); err != nil {
				return n - len(p), err
			}
		}
	}
	return n, nil
}

// Cut closes the current chunk (if any) at the present offset. Serializers
// call it at section boundaries so unchanged sections re-chunk identically
// across epochs regardless of earlier length changes.
func (w *ChunkedWriter) Cut() error {
	if len(w.buf) == 0 {
		return nil
	}
	return w.flush()
}

func (w *ChunkedWriter) flush() error {
	if w.ctx != nil {
		if err := w.ctx.Err(); err != nil {
			return err
		}
	}
	if w.pipe == nil && w.pipeDepth > 0 && len(w.buf) == w.chunkSize {
		// First full chunk: the blob is large enough that overlap pays;
		// spawn the workers now. Partial-chunk flushes (Cut boundaries on a
		// sub-chunk blob) never reach here, so small blobs stay serial.
		w.startPipeline()
	}
	if w.pipe != nil {
		// Hand the filled buffer to the hash worker and take a recycled one;
		// the send blocks only when the full pipeline depth is in flight.
		if err := w.pipe.errNow(); err != nil {
			return err
		}
		w.pipe.hashCh <- w.buf
		w.buf = (<-w.pipe.free)[:0]
		return nil
	}
	sum := sha256.Sum256(w.buf)
	ref := ChunkRef{Sum: sum, Len: int64(len(w.buf))}
	ok, err := Has(w.s, ref.Key())
	if err != nil {
		return fmt.Errorf("storage: probe chunk: %w", err)
	}
	if !ok {
		if err := w.s.Put(ref.Key(), w.buf); err != nil {
			return fmt.Errorf("storage: put chunk: %w", err)
		}
		w.written += ref.Len
	}
	w.total += ref.Len
	w.refs = append(w.refs, ref)
	w.buf = w.buf[:0]
	return nil
}

// Commit flushes the final partial chunk and durably stores the manifest
// under the writer's key. It reports the logical blob size and the bytes
// actually written to the store (chunks that deduplicated against existing
// content cost nothing).
func (w *ChunkedWriter) Commit() (total, written int64, err error) {
	if w.committed {
		return 0, 0, fmt.Errorf("storage: ChunkedWriter for %s committed twice", w.key)
	}
	cerr := w.Cut()
	if w.pipe != nil {
		// Join the workers even when the final Cut failed — a left-behind
		// worker blocked on its channel would leak.
		w.pipe.join()
		if err := w.pipe.errNow(); err != nil {
			return 0, 0, err
		}
		// Chunks cut before the pipeline spawned accumulated serially in
		// w.refs; the pipe's refs continue the same stream order after them.
		w.refs = append(w.refs, w.pipe.refs...)
		w.total += w.pipe.total
		w.written += w.pipe.written
	}
	if cerr != nil {
		return 0, 0, cerr
	}
	man := MarshalManifest(w.refs)
	if err := w.s.Put(w.key, man); err != nil {
		return 0, 0, fmt.Errorf("storage: put manifest: %w", err)
	}
	w.committed = true
	w.written += int64(len(man))
	return w.total, w.written, nil
}

// MarshalManifest encodes chunk references as a manifest blob.
func MarshalManifest(refs []ChunkRef) []byte {
	var buf bytes.Buffer
	buf.Write(manifestMagic)
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(refs)))])
	for _, r := range refs {
		buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(r.Len))])
		buf.Write(r.Sum[:])
	}
	return buf.Bytes()
}

// IsManifest reports whether blob is a chunk manifest.
func IsManifest(blob []byte) bool { return bytes.HasPrefix(blob, manifestMagic) }

// ParseManifest decodes a manifest blob.
func ParseManifest(blob []byte) ([]ChunkRef, error) {
	if !IsManifest(blob) {
		return nil, fmt.Errorf("storage: not a chunk manifest")
	}
	rd := bytes.NewReader(blob[len(manifestMagic):])
	n, err := binary.ReadUvarint(rd)
	if err != nil {
		return nil, fmt.Errorf("storage: corrupt manifest: %w", err)
	}
	if n > uint64(rd.Len()) { // each ref is > 1 byte; cheap sanity bound
		return nil, fmt.Errorf("storage: corrupt manifest: %d refs in %d bytes", n, rd.Len())
	}
	refs := make([]ChunkRef, 0, n)
	for i := uint64(0); i < n; i++ {
		l, err := binary.ReadUvarint(rd)
		if err != nil {
			return nil, fmt.Errorf("storage: corrupt manifest: %w", err)
		}
		var r ChunkRef
		r.Len = int64(l)
		if _, err := io.ReadFull(rd, r.Sum[:]); err != nil {
			return nil, fmt.Errorf("storage: corrupt manifest: truncated ref")
		}
		refs = append(refs, r)
	}
	if rd.Len() != 0 {
		return nil, fmt.Errorf("storage: corrupt manifest: %d trailing bytes", rd.Len())
	}
	return refs, nil
}

// Assemble reassembles a chunked blob from its manifest, verifying each
// chunk's length and content hash (a torn or swept chunk must surface as
// an error, never as silently corrupt state).
func Assemble(s Stable, manifest []byte) ([]byte, error) {
	refs, err := ParseManifest(manifest)
	if err != nil {
		return nil, err
	}
	var size int64
	for _, r := range refs {
		size += r.Len
	}
	out := make([]byte, 0, size)
	for _, r := range refs {
		chunk, err := s.Get(r.Key())
		if err != nil {
			return nil, fmt.Errorf("storage: assemble: %w", err)
		}
		if int64(len(chunk)) != r.Len {
			return nil, fmt.Errorf("storage: assemble: chunk %s is %d bytes, manifest says %d", r.Key(), len(chunk), r.Len)
		}
		if sha256.Sum256(chunk) != r.Sum {
			return nil, fmt.Errorf("storage: assemble: chunk %s fails content verification", r.Key())
		}
		out = append(out, chunk...)
	}
	return out, nil
}
