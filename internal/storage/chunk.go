package storage

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
)

// Chunked streaming storage: a large blob is stored as content-hashed
// chunks plus a small manifest of chunk references under the blob's own
// key. Chunks are addressed by their SHA-256, so a chunk whose content is
// unchanged between two epochs (or identical across ranks) is stored once
// and re-referenced — repeat checkpoints of mostly-unchanged state write
// only the dirty chunks. Orphaned chunks are swept by the checkpoint
// store's pruning pass after a commit.

// DefaultChunkSize is the chunk granularity when the caller does not
// choose one: large enough that manifest overhead is negligible, small
// enough that a few dirty pages do not force a whole-state rewrite.
const DefaultChunkSize = 256 << 10

// chunkPrefix is the shared content-addressed chunk namespace.
const chunkPrefix = "ckpt/chunks/"

// manifestMagic marks a blob as a chunk manifest rather than inline data.
// (Inline blobs in this store are gob or codec streams, which cannot begin
// with these eight bytes.)
var manifestMagic = []byte("C3CM0001")

// ChunkRef names one chunk of a manifest.
type ChunkRef struct {
	Sum [sha256.Size]byte
	Len int64
}

// Key returns the store key the referenced chunk lives under.
func (r ChunkRef) Key() string { return chunkPrefix + hex.EncodeToString(r.Sum[:]) }

// ChunkedWriter streams a blob into content-hashed chunks. It implements
// io.Writer plus Cut, the dedup boundary hook: Cut closes the current
// chunk early so that content after the boundary hashes independently of
// content before it — serializers call it between sections and around
// large values. Commit writes the manifest under the writer's key.
//
// The writer is single-use and not safe for concurrent use.
type ChunkedWriter struct {
	s         Stable
	ctx       context.Context
	key       string
	chunkSize int
	buf       []byte
	refs      []ChunkRef
	total     int64 // logical blob bytes
	written   int64 // bytes actually Put (manifest + dedup-missed chunks)
	committed bool
}

// NewChunkedWriter returns a writer that stores chunks in s and, on
// Commit, a manifest under key. chunkSize <= 0 selects DefaultChunkSize.
// ctx, when non-nil, aborts the stream between chunk writes — a canceled
// flush returns ctx.Err() instead of finishing a write nobody will commit.
func NewChunkedWriter(ctx context.Context, s Stable, key string, chunkSize int) *ChunkedWriter {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	return &ChunkedWriter{s: s, ctx: ctx, key: key, chunkSize: chunkSize, buf: make([]byte, 0, chunkSize)}
}

// Write implements io.Writer, spilling every full chunk to the store.
func (w *ChunkedWriter) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		room := w.chunkSize - len(w.buf)
		if room > len(p) {
			room = len(p)
		}
		w.buf = append(w.buf, p[:room]...)
		p = p[room:]
		if len(w.buf) == w.chunkSize {
			if err := w.flush(); err != nil {
				return n - len(p), err
			}
		}
	}
	return n, nil
}

// Cut closes the current chunk (if any) at the present offset. Serializers
// call it at section boundaries so unchanged sections re-chunk identically
// across epochs regardless of earlier length changes.
func (w *ChunkedWriter) Cut() error {
	if len(w.buf) == 0 {
		return nil
	}
	return w.flush()
}

func (w *ChunkedWriter) flush() error {
	if w.ctx != nil {
		if err := w.ctx.Err(); err != nil {
			return err
		}
	}
	sum := sha256.Sum256(w.buf)
	ref := ChunkRef{Sum: sum, Len: int64(len(w.buf))}
	ok, err := Has(w.s, ref.Key())
	if err != nil {
		return fmt.Errorf("storage: probe chunk: %w", err)
	}
	if !ok {
		if err := w.s.Put(ref.Key(), w.buf); err != nil {
			return fmt.Errorf("storage: put chunk: %w", err)
		}
		w.written += ref.Len
	}
	w.total += ref.Len
	w.refs = append(w.refs, ref)
	w.buf = w.buf[:0]
	return nil
}

// Commit flushes the final partial chunk and durably stores the manifest
// under the writer's key. It reports the logical blob size and the bytes
// actually written to the store (chunks that deduplicated against existing
// content cost nothing).
func (w *ChunkedWriter) Commit() (total, written int64, err error) {
	if w.committed {
		return 0, 0, fmt.Errorf("storage: ChunkedWriter for %s committed twice", w.key)
	}
	if err := w.Cut(); err != nil {
		return 0, 0, err
	}
	man := MarshalManifest(w.refs)
	if err := w.s.Put(w.key, man); err != nil {
		return 0, 0, fmt.Errorf("storage: put manifest: %w", err)
	}
	w.committed = true
	w.written += int64(len(man))
	return w.total, w.written, nil
}

// MarshalManifest encodes chunk references as a manifest blob.
func MarshalManifest(refs []ChunkRef) []byte {
	var buf bytes.Buffer
	buf.Write(manifestMagic)
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(refs)))])
	for _, r := range refs {
		buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(r.Len))])
		buf.Write(r.Sum[:])
	}
	return buf.Bytes()
}

// IsManifest reports whether blob is a chunk manifest.
func IsManifest(blob []byte) bool { return bytes.HasPrefix(blob, manifestMagic) }

// ParseManifest decodes a manifest blob.
func ParseManifest(blob []byte) ([]ChunkRef, error) {
	if !IsManifest(blob) {
		return nil, fmt.Errorf("storage: not a chunk manifest")
	}
	rd := bytes.NewReader(blob[len(manifestMagic):])
	n, err := binary.ReadUvarint(rd)
	if err != nil {
		return nil, fmt.Errorf("storage: corrupt manifest: %w", err)
	}
	if n > uint64(rd.Len()) { // each ref is > 1 byte; cheap sanity bound
		return nil, fmt.Errorf("storage: corrupt manifest: %d refs in %d bytes", n, rd.Len())
	}
	refs := make([]ChunkRef, 0, n)
	for i := uint64(0); i < n; i++ {
		l, err := binary.ReadUvarint(rd)
		if err != nil {
			return nil, fmt.Errorf("storage: corrupt manifest: %w", err)
		}
		var r ChunkRef
		r.Len = int64(l)
		if _, err := io.ReadFull(rd, r.Sum[:]); err != nil {
			return nil, fmt.Errorf("storage: corrupt manifest: truncated ref")
		}
		refs = append(refs, r)
	}
	if rd.Len() != 0 {
		return nil, fmt.Errorf("storage: corrupt manifest: %d trailing bytes", rd.Len())
	}
	return refs, nil
}

// Assemble reassembles a chunked blob from its manifest, verifying each
// chunk's length and content hash (a torn or swept chunk must surface as
// an error, never as silently corrupt state).
func Assemble(s Stable, manifest []byte) ([]byte, error) {
	refs, err := ParseManifest(manifest)
	if err != nil {
		return nil, err
	}
	var size int64
	for _, r := range refs {
		size += r.Len
	}
	out := make([]byte, 0, size)
	for _, r := range refs {
		chunk, err := s.Get(r.Key())
		if err != nil {
			return nil, fmt.Errorf("storage: assemble: %w", err)
		}
		if int64(len(chunk)) != r.Len {
			return nil, fmt.Errorf("storage: assemble: chunk %s is %d bytes, manifest says %d", r.Key(), len(chunk), r.Len)
		}
		if sha256.Sum256(chunk) != r.Sum {
			return nil, fmt.Errorf("storage: assemble: chunk %s fails content verification", r.Key())
		}
		out = append(out, chunk...)
	}
	return out, nil
}
