package precompiler

import (
	"os"
	"path/filepath"
	"testing"
)

// TestPrecompiledExampleInSync regenerates examples/precompiled/main.go
// from its plain input and compares against the committed file, so the
// repository's demonstration of the precompiler can never drift from the
// transformer's actual output.
func TestPrecompiledExampleInSync(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "precompiled")
	src, err := os.ReadFile(filepath.Join(dir, "main.go.in"))
	if err != nil {
		t.Skipf("example input unavailable: %v", err)
	}
	want, err := os.ReadFile(filepath.Join(dir, "main.go"))
	if err != nil {
		t.Fatalf("committed output missing: %v", err)
	}
	got, err := TransformFile("main.go.in", src)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("examples/precompiled/main.go is stale; regenerate with:\n" +
			"  go run ./cmd/ccift -o examples/precompiled/main.go examples/precompiled/main.go.in")
	}
}
