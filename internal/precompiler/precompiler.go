// Package precompiler implements the CCIFT source-to-source transformation
// of Section 5.1 (Figures 6 and 7) for Go programs written against the
// engine.Rank API.
//
// The programmer's only obligation — exactly as in the paper — is to insert
// calls to PotentialCheckpoint at the points where checkpoints may be
// taken. The precompiler then instruments every function that can reach a
// checkpoint:
//
//   - Position Stack (Figure 6): a label is pushed before each
//     checkpointable call and popped after it; a resume dispatch at the top
//     of each function jumps to the saved label after a restart, rebuilding
//     the activation stack.
//
//   - Variable Descriptor Stack (Figure 7): every parameter and leading
//     variable declaration is registered so that checkpoints save, and
//     restarts restore, its value.
//
// C's goto can jump anywhere; Go's cannot jump into a block. The dispatch
// therefore cascades: the function-level dispatch jumps either directly to
// a top-level resume label or to the enclosing for/if/block statement of a
// nested one, that statement re-executes (its conditions are deterministic
// once the VDS has restored every variable), and a nested dispatch at the
// top of its body routes deeper until the site is reached.
//
// Like the paper's precompiler, which "needs to decompose certain complex
// statements", this one accepts a restricted source form and reports
// anything outside it as an error with a decomposition hint:
//
//   - checkpointable calls must be statements (or the sole RHS of an
//     assignment to existing variables), not subexpressions;
//   - loops containing checkpointable calls must not have an init clause
//     (declare the loop variable in the function's leading var group) and
//     must not be range loops;
//   - inside any block containing checkpointable calls, variable
//     declarations must come after the last such call of that block;
//     function-level declarations belong to the leading var group;
//   - switch/select bodies must not contain checkpointable calls.
package precompiler

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"strconv"
)

// Names of the identifiers the transformation emits. They are exported so
// tests and documentation have a single source of truth.
const (
	// TargetVar is the per-function resume routing variable.
	TargetVar = "ccift_target"
	// LabelPrefix prefixes resume labels at checkpointable sites.
	LabelPrefix = "ccift_l"
	// ContainerPrefix prefixes labels on statements that contain nested
	// resume sites.
	ContainerPrefix = "ccift_c"
)

// rankTypeNames are the type names recognized as the protocol runtime
// handle when they appear as a pointer parameter.
var rankTypeNames = map[string]bool{"Rank": true}

// Error is a transformation error with a source position.
type Error struct {
	Pos token.Position
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// File is one source file given to the precompiler.
type File struct {
	Name string
	Src  []byte
}

// Transform instruments all checkpointable functions across the given
// files of one package and returns the rewritten sources in input order.
// Files without checkpointable functions are returned formatted but
// otherwise untouched.
func Transform(files []File) ([][]byte, error) {
	fset := token.NewFileSet()
	parsed := make([]*ast.File, len(files))
	for i, f := range files {
		af, err := parser.ParseFile(fset, f.Name, f.Src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed[i] = af
	}

	funcs := map[string]*funcInfo{}
	var order []string
	for _, af := range parsed {
		for _, d := range af.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Body == nil {
				continue
			}
			fi := &funcInfo{decl: fd, rank: rankParam(fd)}
			funcs[fd.Name.Name] = fi
			order = append(order, fd.Name.Name)
		}
	}
	markCheckpointable(funcs)

	tr := &transformer{fset: fset, funcs: funcs}
	if err := tr.checkClosures(funcs); err != nil {
		return nil, err
	}
	for _, name := range order {
		fi := funcs[name]
		if !fi.checkpointable {
			continue
		}
		if fi.rank == "" {
			return nil, tr.errf(fi.decl.Pos(),
				"function %s can reach PotentialCheckpoint but has no *Rank parameter to carry the runtime", name)
		}
		if err := tr.instrumentFunc(fi); err != nil {
			return nil, err
		}
	}

	out := make([][]byte, len(parsed))
	for i, af := range parsed {
		var buf bytes.Buffer
		if err := format.Node(&buf, fset, af); err != nil {
			return nil, fmt.Errorf("precompiler: format %s: %w", files[i].Name, err)
		}
		out[i] = buf.Bytes()
	}
	return out, nil
}

// TransformFile is the single-file convenience form of Transform.
func TransformFile(name string, src []byte) ([]byte, error) {
	out, err := Transform([]File{{Name: name, Src: src}})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

type funcInfo struct {
	decl           *ast.FuncDecl
	rank           string // name of the *Rank parameter, "" if none
	checkpointable bool
}

// rankParam returns the name of the first parameter whose type is a
// pointer to a recognized Rank type.
func rankParam(fd *ast.FuncDecl) string {
	for _, field := range fd.Type.Params.List {
		star, ok := field.Type.(*ast.StarExpr)
		if !ok {
			continue
		}
		var typeName string
		switch t := star.X.(type) {
		case *ast.Ident:
			typeName = t.Name
		case *ast.SelectorExpr:
			typeName = t.Sel.Name
		}
		if rankTypeNames[typeName] && len(field.Names) > 0 {
			return field.Names[0].Name
		}
	}
	return ""
}

// markCheckpointable computes the fixed point: a function is checkpointable
// if it calls PotentialCheckpoint on its rank parameter, or calls another
// checkpointable function of the same package.
//
// Function literals are opaque: a closure is never instrumented and its
// calls do not make the enclosing function checkpointable. This permits the
// standard entry-point trampoline — func(r *Rank) (any, error) { return
// worker(r, n), nil } — whose re-execution from the top is trivially
// correct. A closure that calls PotentialCheckpoint directly is rejected,
// since nothing could ever resume it.
func markCheckpointable(funcs map[string]*funcInfo) {
	for _, fi := range funcs {
		if fi.rank == "" {
			continue
		}
		inspectSkippingClosures(fi.decl.Body, func(n ast.Node) bool {
			if isPotentialCheckpoint(n, fi.rank) {
				fi.checkpointable = true
				return false
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range funcs {
			if fi.checkpointable {
				continue
			}
			inspectSkippingClosures(fi.decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok {
					if callee, ok := funcs[id.Name]; ok && callee.checkpointable {
						fi.checkpointable = true
						changed = true
						return false
					}
				}
				return true
			})
		}
	}
}

// inspectSkippingClosures is ast.Inspect minus descent into function
// literals, whose bodies run in their own (uninstrumented) frames.
func inspectSkippingClosures(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

func isPotentialCheckpoint(n ast.Node, rank string) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "PotentialCheckpoint" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == rank
}

type transformer struct {
	fset  *token.FileSet
	funcs map[string]*funcInfo
}

func (t *transformer) errf(pos token.Pos, format string, args ...any) error {
	return &Error{Pos: t.fset.Position(pos), Msg: fmt.Sprintf(format, args...)}
}

// funcCtx carries per-function instrumentation state.
type funcCtx struct {
	t             *transformer
	name          string
	rank          string
	nextLabel     int
	nextContainer int
}

// labelRef describes one resume label discovered in (or below) a block.
type labelRef struct {
	label int // PS label number
	// target is the label name the *enclosing* dispatch jumps to: the site
	// label itself when the site is at this level, or the container label
	// of the statement holding it.
	target string
	// direct reports whether target is the site's own label (so the
	// dispatch must clear the routing variable before jumping).
	direct bool
}

func (c *funcCtx) siteLabel() (int, string) {
	c.nextLabel++
	return c.nextLabel, LabelPrefix + strconv.Itoa(c.nextLabel)
}

func (c *funcCtx) containerLabel() string {
	c.nextContainer++
	return ContainerPrefix + strconv.Itoa(c.nextContainer)
}

// instrumentFunc rewrites one checkpointable function in place.
func (t *transformer) instrumentFunc(fi *funcInfo) error {
	c := &funcCtx{t: t, name: fi.decl.Name.Name, rank: fi.rank}
	body := fi.decl.Body

	// Leading declaration group of the function body: these (plus the
	// non-rank parameters) become VDS registrations, and the resume
	// dispatch is inserted after them so no goto crosses a declaration.
	lead := 0
	for lead < len(body.List) {
		if _, ok := body.List[lead].(*ast.DeclStmt); ok {
			lead++
			continue
		}
		break
	}

	rest, refs, err := c.instrumentStmts(body.List[lead:])
	if err != nil {
		return err
	}
	if len(refs) == 0 {
		// Checkpointable only through dead code paths; nothing to do.
		return nil
	}

	var out []ast.Stmt
	out = append(out, body.List[:lead]...)

	// Figure 7: register parameters and leading variables. The deferred
	// unregistrations pop in LIFO order, mirroring scope exit.
	for _, p := range fi.decl.Type.Params.List {
		for _, n := range p.Names {
			if n.Name == fi.rank || n.Name == "_" {
				continue
			}
			out = append(out, c.registerStmt(n.Name))
			out = append(out, c.unregisterStmt())
		}
	}
	for _, s := range body.List[:lead] {
		gen := s.(*ast.DeclStmt).Decl.(*ast.GenDecl)
		if gen.Tok != token.VAR {
			continue
		}
		for _, spec := range gen.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, n := range vs.Names {
				if n.Name == "_" {
					continue
				}
				out = append(out, c.registerStmt(n.Name))
				out = append(out, c.unregisterStmt())
			}
		}
	}

	// Figure 6: the resume dispatch. if restart, goto PS.item(i++).
	out = append(out, &ast.DeclStmt{Decl: &ast.GenDecl{
		Tok: token.VAR,
		Specs: []ast.Spec{&ast.ValueSpec{
			Names: []*ast.Ident{ast.NewIdent(TargetVar)},
			Type:  ast.NewIdent("int"),
		}},
	}})
	out = append(out, &ast.IfStmt{
		Cond: c.psCall("Resuming"),
		Body: &ast.BlockStmt{List: []ast.Stmt{
			&ast.AssignStmt{
				Lhs: []ast.Expr{ast.NewIdent(TargetVar)},
				Tok: token.ASSIGN,
				Rhs: []ast.Expr{c.psCall("Resume")},
			},
		}},
	})
	out = append(out, c.dispatch(refs))
	out = append(out, rest...)
	body.List = out
	return nil
}

// dispatch builds the switch that routes a resuming execution to its label.
func (c *funcCtx) dispatch(refs []labelRef) ast.Stmt {
	// Group refs by target label, preserving first-appearance order.
	type group struct {
		target string
		direct bool
		labels []int
	}
	var groups []*group
	byTarget := map[string]*group{}
	for _, r := range refs {
		g, ok := byTarget[r.target]
		if !ok {
			g = &group{target: r.target, direct: r.direct}
			byTarget[r.target] = g
			groups = append(groups, g)
		}
		g.labels = append(g.labels, r.label)
	}

	var cases []ast.Stmt
	for _, g := range groups {
		var exprs []ast.Expr
		for _, l := range g.labels {
			exprs = append(exprs, intLit(l))
		}
		var body []ast.Stmt
		if g.direct {
			// Routing ends here: clear the target before jumping so loop
			// bodies do not re-dispatch on later iterations.
			body = append(body, &ast.AssignStmt{
				Lhs: []ast.Expr{ast.NewIdent(TargetVar)},
				Tok: token.ASSIGN,
				Rhs: []ast.Expr{intLit(0)},
			})
		}
		body = append(body, &ast.BranchStmt{Tok: token.GOTO, Label: ast.NewIdent(g.target)})
		cases = append(cases, &ast.CaseClause{List: exprs, Body: body})
	}
	return &ast.SwitchStmt{
		Tag:  ast.NewIdent(TargetVar),
		Body: &ast.BlockStmt{List: cases},
	}
}

// instrumentStmts rewrites a statement list. At the function level the
// caller has already split off the leading var group, so the
// declaration-placement rule applies uniformly: any declaration between
// this block's dispatch point and its last resume label is an error.
func (c *funcCtx) instrumentStmts(stmts []ast.Stmt) ([]ast.Stmt, []labelRef, error) {
	var out []ast.Stmt
	var refs []labelRef
	lastLabelIdx := -1 // index in out of the last emitted label

	for _, s := range stmts {
		produced, sRefs, err := c.instrumentStmt(s)
		if err != nil {
			return nil, nil, err
		}
		if len(sRefs) > 0 {
			refs = append(refs, sRefs...)
			lastLabelIdx = len(out) + len(produced) - 1
		}
		out = append(out, produced...)
	}

	// Declaration-placement rule: no declaration may sit between the
	// dispatch point and the last resume label of this block, or a goto
	// would illegally jump over it.
	if len(refs) > 0 {
		for i, s := range out {
			if i >= lastLabelIdx {
				break
			}
			if isDecl(s) {
				return nil, nil, c.t.errf(declPos(s),
					"%s: declaration precedes a resume label in the same block; move it to the function's leading var group (the paper's statement decomposition)", c.name)
			}
		}
	}
	return out, refs, nil
}

func isDecl(s ast.Stmt) bool {
	switch d := s.(type) {
	case *ast.DeclStmt:
		return true
	case *ast.AssignStmt:
		return d.Tok == token.DEFINE
	}
	return false
}

func declPos(s ast.Stmt) token.Pos {
	return s.Pos()
}

// instrumentStmt rewrites one statement, returning its replacement
// statements and any resume labels it contributes to the enclosing block.
func (c *funcCtx) instrumentStmt(s ast.Stmt) ([]ast.Stmt, []labelRef, error) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if isPotentialCheckpoint(st.X, c.rank) {
			return c.wrapCheckpointSite(st)
		}
		if call, ok := st.X.(*ast.CallExpr); ok && c.isCheckpointableCall(call) {
			return c.wrapCallSite(st)
		}
		return c.requireNoNestedSites(s)

	case *ast.AssignStmt:
		if len(st.Rhs) == 1 {
			if call, ok := st.Rhs[0].(*ast.CallExpr); ok && c.isCheckpointableCall(call) {
				if st.Tok == token.DEFINE {
					return nil, nil, c.t.errf(st.Pos(),
						"%s: checkpointable call in a short variable declaration; declare the variable first and assign (statement decomposition)", c.name)
				}
				return c.wrapCallSite(st)
			}
		}
		return c.requireNoNestedSites(s)

	case *ast.ForStmt:
		newBody, refs, err := c.instrumentBlock(st.Body)
		if err != nil {
			return nil, nil, err
		}
		if len(refs) == 0 {
			return []ast.Stmt{s}, nil, nil
		}
		if st.Init != nil {
			return nil, nil, c.t.errf(st.Pos(),
				"%s: loop containing checkpointable calls must not have an init clause; declare the loop variable in the leading var group so its restored value survives re-entry", c.name)
		}
		st.Body = newBody
		return c.wrapContainer(st, refs)

	case *ast.RangeStmt:
		if c.hasNestedSites(st.Body) {
			return nil, nil, c.t.errf(st.Pos(),
				"%s: range loop contains checkpointable calls; rewrite as an index loop over a leading-group variable", c.name)
		}
		return []ast.Stmt{s}, nil, nil

	case *ast.IfStmt:
		newBody, refs, err := c.instrumentBlock(st.Body)
		if err != nil {
			return nil, nil, err
		}
		st.Body = newBody
		if st.Else != nil {
			switch e := st.Else.(type) {
			case *ast.BlockStmt:
				newElse, elseRefs, err := c.instrumentBlock(e)
				if err != nil {
					return nil, nil, err
				}
				st.Else = newElse
				refs = append(refs, elseRefs...)
			case *ast.IfStmt:
				produced, elseRefs, err := c.instrumentStmt(e)
				if err != nil {
					return nil, nil, err
				}
				// An else-if with sites would need its own container label,
				// which Go's syntax cannot attach; require decomposition.
				if len(elseRefs) > 0 {
					return nil, nil, c.t.errf(e.Pos(),
						"%s: else-if branch contains checkpointable calls; rewrite as a nested if inside an else block", c.name)
				}
				st.Else = produced[0]
			}
		}
		if st.Init != nil && len(refs) > 0 {
			return nil, nil, c.t.errf(st.Pos(),
				"%s: if with init clause contains checkpointable calls; hoist the init (statement decomposition)", c.name)
		}
		if len(refs) == 0 {
			return []ast.Stmt{st}, nil, nil
		}
		return c.wrapContainer(st, refs)

	case *ast.BlockStmt:
		newBlock, refs, err := c.instrumentBlock(st)
		if err != nil {
			return nil, nil, err
		}
		if len(refs) == 0 {
			return []ast.Stmt{st}, nil, nil
		}
		return c.wrapContainer(newBlock, refs)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		if c.hasNestedSites(s) {
			return nil, nil, c.t.errf(s.Pos(),
				"%s: switch/select contains checkpointable calls; rewrite as if/else (statement decomposition)", c.name)
		}
		return []ast.Stmt{s}, nil, nil

	default:
		return c.requireNoNestedSites(s)
	}
}

// instrumentBlock rewrites a nested block and, when it contains resume
// labels, prepends the block-level dispatch.
func (c *funcCtx) instrumentBlock(b *ast.BlockStmt) (*ast.BlockStmt, []labelRef, error) {
	newList, refs, err := c.instrumentStmts(b.List)
	if err != nil {
		return nil, nil, err
	}
	if len(refs) > 0 {
		newList = append([]ast.Stmt{c.dispatch(refs)}, newList...)
	}
	return &ast.BlockStmt{List: newList}, refs, nil
}

// wrapContainer labels a statement that holds nested sites and re-targets
// the nested refs at the container label for the enclosing dispatch.
func (c *funcCtx) wrapContainer(s ast.Stmt, refs []labelRef) ([]ast.Stmt, []labelRef, error) {
	name := c.containerLabel()
	outRefs := make([]labelRef, len(refs))
	for i, r := range refs {
		outRefs[i] = labelRef{label: r.label, target: name, direct: false}
	}
	return []ast.Stmt{&ast.LabeledStmt{Label: ast.NewIdent(name), Stmt: s}}, outRefs, nil
}

// wrapCheckpointSite emits Figure 6's checkpoint-site form: the label sits
// after the call, so a resumed execution continues immediately past it.
//
//	PS.push(n)
//	potentialCheckpoint()
//	ccift_ln:
//	PS.pop()
func (c *funcCtx) wrapCheckpointSite(st *ast.ExprStmt) ([]ast.Stmt, []labelRef, error) {
	n, name := c.siteLabel()
	stmts := []ast.Stmt{
		c.psStmt("Push", intLit(n)),
		st,
		&ast.LabeledStmt{Label: ast.NewIdent(name), Stmt: c.psStmt("Pop")},
	}
	return stmts, []labelRef{{label: n, target: name, direct: true}}, nil
}

// wrapCallSite emits Figure 6's call-site form: the label sits on the call,
// so a resumed execution re-enters the callee, which resumes deeper.
//
//	PS.push(n)
//	ccift_ln:
//	function2()
//	PS.pop()
func (c *funcCtx) wrapCallSite(call ast.Stmt) ([]ast.Stmt, []labelRef, error) {
	n, name := c.siteLabel()
	stmts := []ast.Stmt{
		c.psStmt("Push", intLit(n)),
		&ast.LabeledStmt{Label: ast.NewIdent(name), Stmt: call},
		c.psStmt("Pop"),
	}
	return stmts, []labelRef{{label: n, target: name, direct: true}}, nil
}

// requireNoNestedSites passes a statement through unchanged after checking
// that no checkpointable call hides inside it in a position the
// transformation cannot label.
func (c *funcCtx) requireNoNestedSites(s ast.Stmt) ([]ast.Stmt, []labelRef, error) {
	if c.hasNestedSites(s) {
		return nil, nil, c.t.errf(s.Pos(),
			"%s: checkpointable call in an unsupported position; decompose the statement so the call stands alone", c.name)
	}
	return []ast.Stmt{s}, nil, nil
}

func (c *funcCtx) hasNestedSites(root ast.Node) bool {
	found := false
	inspectSkippingClosures(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if isPotentialCheckpoint(n, c.rank) {
			found = true
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && c.isCheckpointableCall(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkClosures rejects function literals that call PotentialCheckpoint
// directly: a closure frame is never instrumented, so such a checkpoint
// could never be resumed.
func (t *transformer) checkClosures(funcs map[string]*funcInfo) error {
	for _, fi := range funcs {
		if fi.rank == "" {
			continue
		}
		var bad token.Pos
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			if bad.IsValid() {
				return false
			}
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if isPotentialCheckpoint(m, fi.rank) {
					bad = m.(*ast.CallExpr).Pos()
					return false
				}
				return true
			})
			return false
		})
		if bad.IsValid() {
			return t.errf(bad, "PotentialCheckpoint inside a function literal can never be resumed; move it into a named function")
		}
	}
	return nil
}

func (c *funcCtx) isCheckpointableCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	fi, ok := c.t.funcs[id.Name]
	return ok && fi.checkpointable
}

// --- emitted-code constructors ---

// psCall builds r.PS().<method>().
func (c *funcCtx) psCall(method string, args ...ast.Expr) *ast.CallExpr {
	ps := &ast.CallExpr{Fun: &ast.SelectorExpr{X: ast.NewIdent(c.rank), Sel: ast.NewIdent("PS")}}
	return &ast.CallExpr{
		Fun:  &ast.SelectorExpr{X: ps, Sel: ast.NewIdent(method)},
		Args: args,
	}
}

func (c *funcCtx) psStmt(method string, args ...ast.Expr) ast.Stmt {
	return &ast.ExprStmt{X: c.psCall(method, args...)}
}

// registerStmt builds r.Register("fn.x", &x).
func (c *funcCtx) registerStmt(varName string) ast.Stmt {
	return &ast.ExprStmt{X: &ast.CallExpr{
		Fun: &ast.SelectorExpr{X: ast.NewIdent(c.rank), Sel: ast.NewIdent("Register")},
		Args: []ast.Expr{
			&ast.BasicLit{Kind: token.STRING, Value: strconv.Quote(c.name + "." + varName)},
			&ast.UnaryExpr{Op: token.AND, X: ast.NewIdent(varName)},
		},
	}}
}

// unregisterStmt builds defer r.Unregister().
func (c *funcCtx) unregisterStmt() ast.Stmt {
	return &ast.DeferStmt{Call: &ast.CallExpr{
		Fun: &ast.SelectorExpr{X: ast.NewIdent(c.rank), Sel: ast.NewIdent("Unregister")},
	}}
}

func intLit(n int) ast.Expr {
	return &ast.BasicLit{Kind: token.INT, Value: strconv.Itoa(n)}
}
