package precompiler

import (
	"flag"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGolden transforms each testdata input and compares against its
// golden file — the repository's reproduction of Figures 6 and 7.
func TestGolden(t *testing.T) {
	inputs, err := filepath.Glob(filepath.Join("testdata", "*.input"))
	if err != nil || len(inputs) == 0 {
		t.Fatalf("no testdata inputs: %v", err)
	}
	for _, in := range inputs {
		name := strings.TrimSuffix(filepath.Base(in), ".input")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(in)
			if err != nil {
				t.Fatal(err)
			}
			got, err := TransformFile(name+".go", src)
			if err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("transform of %s diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", in, got, want)
			}
		})
	}
}

// TestGoldenOutputsParse re-parses every golden file: the transformation
// must always emit syntactically valid Go.
func TestGoldenOutputsParse(t *testing.T) {
	goldens, _ := filepath.Glob(filepath.Join("testdata", "*.golden"))
	if len(goldens) == 0 {
		t.Skip("no goldens yet")
	}
	fset := token.NewFileSet()
	for _, g := range goldens {
		src, err := os.ReadFile(g)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := parser.ParseFile(fset, g, src, 0); err != nil {
			t.Errorf("golden %s does not parse: %v", g, err)
		}
	}
}

// selfContained is a source with a local stand-in for the Rank runtime, so
// the transformed output can be fully type-checked — including Go's goto
// legality rules, which are what the cascaded dispatch exists to satisfy —
// without resolving imports.
const selfContained = `package app

type PS struct{}

func (*PS) Push(int)       {}
func (*PS) Pop()           {}
func (*PS) Resuming() bool { return false }
func (*PS) Resume() int    { return 0 }

type Rank struct{}

func (*Rank) PS() *PS                  { return nil }
func (*Rank) Register(string, any)     {}
func (*Rank) Unregister()              {}
func (*Rank) PotentialCheckpoint()     {}
func (*Rank) Send(int, int, []byte)    {}

func compute(r *Rank, iters int) float64 {
	var it int
	var acc float64
	var buf []byte
	for ; it < iters; it++ {
		r.PotentialCheckpoint()
		acc = inner(r, acc)
		r.Send(1, 1, buf)
		if acc > 10 {
			{
				r.PotentialCheckpoint()
			}
		}
	}
	return acc
}

func inner(r *Rank, x float64) float64 {
	var y float64
	y = x * 2
	r.PotentialCheckpoint()
	return y
}
`

// TestTransformedOutputTypeChecks runs the full Go type checker over a
// transformed source: every goto must be legal, every label used, every
// emitted identifier resolvable.
func TestTransformedOutputTypeChecks(t *testing.T) {
	out, err := TransformFile("app.go", []byte(selfContained))
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "app.go", out, 0)
	if err != nil {
		t.Fatalf("transformed output does not parse: %v\n%s", err, out)
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("app", fset, []*ast.File{f}, nil); err != nil {
		t.Fatalf("transformed output does not type-check: %v\n%s", err, out)
	}
}

// TestUntouchedFunctionsStayUntouched: functions that cannot reach a
// checkpoint are not instrumented.
func TestUntouchedFunctionsStayUntouched(t *testing.T) {
	src := `package app

type Rank struct{}

func (*Rank) PotentialCheckpoint() {}

func pure(x int) int { return x * 2 }

func alsoPure() string {
	s := "hello"
	return s
}
`
	out, err := TransformFile("app.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out), TargetVar) || strings.Contains(string(out), "Register") {
		t.Fatalf("pure functions were instrumented:\n%s", out)
	}
}

// TestErrors exercises the statement-decomposition diagnostics.
func TestErrors(t *testing.T) {
	header := `package app

type PS struct{}

func (*PS) Push(int)       {}
func (*PS) Pop()           {}
func (*PS) Resuming() bool { return false }
func (*PS) Resume() int    { return 0 }

type Rank struct{}

func (*Rank) PS() *PS              { return nil }
func (*Rank) Register(string, any) {}
func (*Rank) Unregister()          {}
func (*Rank) PotentialCheckpoint() {}
`
	cases := []struct {
		name, body, wantErr string
	}{
		{
			name: "range loop",
			body: `func f(r *Rank, xs []int) {
	for range xs {
		r.PotentialCheckpoint()
	}
}`,
			wantErr: "range loop",
		},
		{
			name: "loop init",
			body: `func f(r *Rank) {
	for i := 0; i < 10; i++ {
		r.PotentialCheckpoint()
	}
}`,
			wantErr: "init clause",
		},
		{
			name: "call in expression",
			body: `func g(r *Rank) int { r.PotentialCheckpoint(); return 1 }
func f(r *Rank) {
	x := 1 + g(r)
	_ = x
}`,
			wantErr: "unsupported position",
		},
		{
			name: "short decl of checkpointable call",
			body: `func g(r *Rank) int { r.PotentialCheckpoint(); return 1 }
func f(r *Rank) {
	x := g(r)
	_ = x
}`,
			wantErr: "short variable declaration",
		},
		{
			name: "declaration before site in loop body",
			body: `func f(r *Rank) {
	var it int
	for ; it < 10; it++ {
		x := it * 2
		_ = x
		r.PotentialCheckpoint()
	}
}`,
			wantErr: "declaration precedes a resume label",
		},
		{
			name: "switch with site",
			body: `func f(r *Rank, k int) {
	switch k {
	case 1:
		r.PotentialCheckpoint()
	}
}`,
			wantErr: "switch/select",
		},
		{
			name: "no rank parameter",
			body: `func g(r *Rank) { r.PotentialCheckpoint() }
func f() { var r *Rank; g(r) }`,
			wantErr: "no *Rank parameter",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := TransformFile("app.go", []byte(header+"\n"+tc.body+"\n"))
			if err == nil {
				t.Fatalf("expected error containing %q, got success", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestMultiFilePackage: the checkpointable fixed point crosses files.
func TestMultiFilePackage(t *testing.T) {
	a := `package app

type PS struct{}

func (*PS) Push(int)       {}
func (*PS) Pop()           {}
func (*PS) Resuming() bool { return false }
func (*PS) Resume() int    { return 0 }

type Rank struct{}

func (*Rank) PS() *PS              { return nil }
func (*Rank) Register(string, any) {}
func (*Rank) Unregister()          {}
func (*Rank) PotentialCheckpoint() {}

func helper(r *Rank) {
	r.PotentialCheckpoint()
}
`
	b := `package app

func driver(r *Rank) {
	helper(r)
}
`
	out, err := Transform([]File{{Name: "a.go", Src: []byte(a)}, {Name: "b.go", Src: []byte(b)}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out[1]), "ccift_l1") {
		t.Fatalf("driver in b.go was not instrumented:\n%s", out[1])
	}
}
