package precompiler

import (
	"reflect"
	"strings"
	"testing"

	"ccift/internal/engine"
	"ccift/internal/protocol"
)

// This file proves the emitted instrumentation pattern end to end: the
// functions below are the precompiler's output for testdata/pipeline.input
// (see TestPipelineGoldenMatchesIntegration), transcribed into compilable
// test code. They place one checkpoint site mid-iteration — after a send
// and a receive — and a second inside a callee, so recovery exercises the
// Position Stack for real: resuming at the site must skip the already-
// executed send (a naive loop-top restart would double-send and corrupt
// the stream) and must rebuild the solver→step activation chain.

func pipeline(r *engine.Rank, iters int) float64 {
	var it int
	var acc float64
	var in []float64
	var next int
	var prev int
	r.Register("pipeline.iters", &iters)
	defer r.Unregister()
	r.Register("pipeline.it", &it)
	defer r.Unregister()
	r.Register("pipeline.acc", &acc)
	defer r.Unregister()
	r.Register("pipeline.in", &in)
	defer r.Unregister()
	r.Register("pipeline.next", &next)
	defer r.Unregister()
	r.Register("pipeline.prev", &prev)
	defer r.Unregister()
	var ccift_target int
	if r.PS().Resuming() {
		ccift_target = r.PS().Resume()
	}
	switch ccift_target {
	case 1, 2:
		goto ccift_c1
	}
	next = (r.Rank() + 1) % r.Size()
	prev = (r.Rank() - 1 + r.Size()) % r.Size()
	acc = float64(r.Rank())
ccift_c1:
	for ; it < iters; it++ {
		switch ccift_target {
		case 1:
			ccift_target = 0
			goto ccift_l1
		case 2:
			ccift_target = 0
			goto ccift_l2
		}
		r.SendF64(next, 1, []float64{acc})
		in = r.RecvF64(prev, 1)
		acc = acc*0.5 + in[0]*0.5
		r.PS().Push(1)
		r.PotentialCheckpoint()
	ccift_l1:
		r.PS().Pop()
		r.PS().Push(2)
	ccift_l2:
		acc = step(r, acc)
		r.PS().Pop()
	}
	return acc
}

func step(r *engine.Rank, x float64) float64 {
	var y float64
	r.Register("step.x", &x)
	defer r.Unregister()
	r.Register("step.y", &y)
	defer r.Unregister()
	var ccift_target int
	if r.PS().Resuming() {
		ccift_target = r.PS().Resume()
	}
	switch ccift_target {
	case 1:
		ccift_target = 0
		goto ccift_l1
	}
	y = x*0.5 + 1
	r.PS().Push(1)
	r.PotentialCheckpoint()
ccift_l1:
	r.PS().Pop()
	return y + 0.25
}

func pipelineProg(iters int) engine.Program {
	return func(r *engine.Rank) (any, error) {
		return pipeline(r, iters), nil
	}
}

// TestInstrumentedPipelineRecovers sweeps stop failures across execution
// points and ranks; every recovery must reproduce the failure-free result
// bit for bit even though checkpoints land mid-iteration and mid-call.
func TestInstrumentedPipelineRecovers(t *testing.T) {
	const iters, ranks = 18, 3
	ref, err := engine.Run(engine.Config{Ranks: ranks, Mode: protocol.Unmodified}, pipelineProg(iters))
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < ranks; rank++ {
		for _, atOp := range []int64{9, 21, 35, 48, 62, 77, 90, 110} {
			cfg := engine.Config{
				Ranks: ranks, Mode: protocol.Full, EveryN: 3, Debug: true,
				Failures: []engine.Failure{{Rank: rank, AtOp: atOp, Incarnation: 0}},
			}
			res, err := engine.Run(cfg, pipelineProg(iters))
			if err != nil {
				t.Fatalf("rank=%d atOp=%d: %v", rank, atOp, err)
			}
			if !reflect.DeepEqual(res.Values, ref.Values) {
				t.Fatalf("rank=%d atOp=%d: values %v != ref %v", rank, atOp, res.Values, ref.Values)
			}
		}
	}
}

// TestInstrumentedPipelineUnderChaos adds adversarial cross-sender
// reordering on top of the failure sweep.
func TestInstrumentedPipelineUnderChaos(t *testing.T) {
	const iters, ranks = 15, 3
	ref, err := engine.Run(engine.Config{Ranks: ranks, Mode: protocol.Unmodified}, pipelineProg(iters))
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 4; seed++ {
		cfg := engine.Config{
			Ranks: ranks, Mode: protocol.Full, EveryN: 4, Debug: true, ChaosSeed: seed,
			Failures: []engine.Failure{{Rank: 1, AtOp: 60, Incarnation: 0}},
		}
		res, err := engine.Run(cfg, pipelineProg(iters))
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if !reflect.DeepEqual(res.Values, ref.Values) {
			t.Fatalf("seed=%d: values %v != ref %v", seed, res.Values, ref.Values)
		}
	}
}

// TestPSDepthBalanced: after a complete run the position stack must be
// empty — every Push paired with a Pop across all resume paths.
func TestPSDepthBalanced(t *testing.T) {
	prog := func(r *engine.Rank) (any, error) {
		v := pipeline(r, 8)
		if d := r.PS().Depth(); d != 0 {
			t.Errorf("rank %d: PS depth %d after completion", r.Rank(), d)
		}
		return v, nil
	}
	cfg := engine.Config{
		Ranks: 2, Mode: protocol.Full, EveryN: 3, Debug: true,
		Failures: []engine.Failure{{Rank: 0, AtOp: 40, Incarnation: 0}},
	}
	if _, err := engine.Run(cfg, prog); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineGoldenMatchesIntegration ties this file to the transformer:
// the pipeline testdata input must transform cleanly and carry the same
// resume-label structure as the hand-transcribed functions above.
func TestPipelineGoldenMatchesIntegration(t *testing.T) {
	src := `package app

import "ccift/internal/engine"

func pipeline(r *engine.Rank, iters int) float64 {
	var it int
	var acc float64
	var in []float64
	var next int
	var prev int
	next = (r.Rank() + 1) % r.Size()
	prev = (r.Rank() - 1 + r.Size()) % r.Size()
	acc = float64(r.Rank())
	for ; it < iters; it++ {
		r.SendF64(next, 1, []float64{acc})
		in = r.RecvF64(prev, 1)
		acc = acc*0.5 + in[0]*0.5
		r.PotentialCheckpoint()
		acc = step(r, acc)
	}
	return acc
}

func step(r *engine.Rank, x float64) float64 {
	var y float64
	y = x*0.5 + 1
	r.PotentialCheckpoint()
	return y + 0.25
}
`
	out, err := TransformFile("pipeline.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ccift_c1:", "ccift_l1:", "ccift_l2:",
		`r.Register("pipeline.acc", &acc)`,
		`r.Register("step.y", &y)`,
		"r.PS().Push(1)", "r.PS().Push(2)",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("transformed pipeline missing %q:\n%s", want, out)
		}
	}
}
