package baseline

import "ccift/internal/mpi"

// SenderLog models sender-based message logging, the simplest
// message-logging implementation of Section 1.2: "every process [saves] a
// copy of every message it sends." A restarted process is driven forward by
// replaying the messages that were sent to it, so each sender must retain
// its outgoing messages at least until the receivers' states are next made
// stable.
//
// The paper's argument against the technique for parallel programs is
// volume: "the overhead of saving or regenerating messages tends to be so
// overwhelming that the technique is not competitive in practice [...]
// parallel programs communicate more data more frequently than distributed
// programs." SenderLog's accounting quantifies that: compare PeakBytes
// against the C3 protocol's Stats.LogBytes for the same workload (the
// ablation E9 in DESIGN.md does exactly this).
type SenderLog struct {
	comm *mpi.Comm

	// retained is the current log: one entry per message sent since the
	// last truncation.
	retained []loggedSend
	bytes    int64

	// Sends and SentBytes count all traffic ever sent through the log.
	Sends     int64
	SentBytes int64
	// Peak tracks the high-water retention mark, the number that determines
	// the storage the scheme actually needs.
	PeakBytes    int64
	PeakMessages int64
}

type loggedSend struct {
	dst, tag int
	data     []byte
}

// NewSenderLog wraps a communicator with sender-based logging.
func NewSenderLog(comm *mpi.Comm) *SenderLog {
	return &SenderLog{comm: comm}
}

// Send transmits and retains a copy — the defining cost of the scheme.
// The copy into the log region happens once, before the caller's buffer
// can be reused; the wire then carries the same immutable bytes via the
// transport's zero-copy handoff (Comm.SendShared), exactly as a real
// implementation DMAs from its pinned log region instead of copying
// twice. Receivers must treat delivered payloads as read-only, which
// every decode-and-copy receiver in this repository does.
func (s *SenderLog) Send(dst, tag int, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.retained = append(s.retained, loggedSend{dst: dst, tag: tag, data: cp})
	s.bytes += int64(len(cp)) + logEntryOverhead
	s.Sends++
	s.SentBytes += int64(len(cp))
	if s.bytes > s.PeakBytes {
		s.PeakBytes = s.bytes
	}
	if n := int64(len(s.retained)); n > s.PeakMessages {
		s.PeakMessages = n
	}
	s.comm.SendShared(dst, tag, cp)
}

// logEntryOverhead approximates the per-entry metadata (destination, tag,
// length, epoch) a real log would store; it matches the 32-byte estimate
// the protocol package uses for its own log so the comparison is fair.
const logEntryOverhead = 32

// Recv passes through; receiving needs no logging in a sender-based scheme.
func (s *SenderLog) Recv(src, tag int) *mpi.Message {
	return s.comm.Recv(src, tag)
}

// RetainedBytes reports the current log volume.
func (s *SenderLog) RetainedBytes() int64 { return s.bytes }

// RetainedMessages reports the current log length.
func (s *SenderLog) RetainedMessages() int64 { return int64(len(s.retained)) }

// Truncate discards the log, as a sender may once every receiver of the
// retained messages has committed a newer stable state. With coordinated
// checkpointing underneath, that moment is a committed global checkpoint.
func (s *SenderLog) Truncate() {
	s.retained = nil
	s.bytes = 0
}

// Replay returns the retained messages destined for dst, in send order —
// what a recovering process dst would be fed.
func (s *SenderLog) Replay(dst int) [][]byte {
	var out [][]byte
	for _, e := range s.retained {
		if e.dst == dst {
			out = append(out, e.data)
		}
	}
	return out
}
