package baseline

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"ccift/internal/mpi"
	"ccift/internal/protocol"
	"ccift/internal/storage"
)

// runRanks executes fn on every rank of a fresh world, propagating panics.
func runRanks(t *testing.T, n int, fn func(c *mpi.Comm)) *mpi.World {
	t.Helper()
	w := mpi.NewWorld(n, mpi.Options{})
	var wg sync.WaitGroup
	errs := make(chan string, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs <- fmt.Sprintf("rank %d: %v", r, p)
				}
			}()
			fn(w.Comm(r))
		}(r)
	}
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
	return w
}

func TestBlockingCheckpointRoundTrip(t *testing.T) {
	store := storage.NewCheckpointStore(storage.NewMemory())
	const n = 4
	crossed := make([]int, n)

	runRanks(t, n, func(c *mpi.Comm) {
		b := NewBlocking(c, store)
		state := []byte(fmt.Sprintf("state-of-%d", c.Rank()))
		x, err := b.Checkpoint(state)
		if err != nil {
			panic(err)
		}
		crossed[c.Rank()] = x
		got, epoch, err := b.Restore()
		if err != nil {
			panic(err)
		}
		if epoch != 1 || !bytes.Equal(got, state) {
			panic(fmt.Sprintf("rank %d restored epoch=%d state=%q", c.Rank(), epoch, got))
		}
	})
	for r, x := range crossed {
		if x != 0 {
			t.Fatalf("rank %d observed %d crossing messages in a quiescent checkpoint", r, x)
		}
	}
}

func TestBlockingEpochsAdvance(t *testing.T) {
	store := storage.NewCheckpointStore(storage.NewMemory())
	runRanks(t, 2, func(c *mpi.Comm) {
		b := NewBlocking(c, store)
		for i := 1; i <= 3; i++ {
			if _, err := b.Checkpoint([]byte{byte(i)}); err != nil {
				panic(err)
			}
			if b.Epoch != i {
				panic(fmt.Sprintf("epoch %d after %d checkpoints", b.Epoch, i))
			}
		}
	})
	if e, ok, _ := store.Committed(); !ok || e != 3 {
		t.Fatalf("committed = %d, %v", e, ok)
	}
}

// TestBlockingMissesCrossBarrierMessages is the Section 1.2 failure, made
// executable: "this solution can fail for some MPI programs since MPI
// allows messages to cross barriers. These messages would not be saved with
// the global checkpoint."
//
// Rank 0 sends a message and immediately enters the checkpoint; rank 1
// enters the checkpoint without receiving it and receives it only
// afterwards. The message crosses the barrier: rank 0's saved state has
// already sent it (no re-send on recovery), rank 1's saved state has not
// yet received it (it still expects one). Recovery from this checkpoint
// loses the message.
func TestBlockingMissesCrossBarrierMessages(t *testing.T) {
	store := storage.NewCheckpointStore(storage.NewMemory())
	payload := []byte("crosses-the-barrier")
	crossed := make([]int, 2)

	runRanks(t, 2, func(c *mpi.Comm) {
		b := NewBlocking(c, store)
		if c.Rank() == 0 {
			c.Send(1, 7, payload)
		}
		x, err := b.Checkpoint([]byte(fmt.Sprintf("sent=%v", c.Rank() == 0)))
		if err != nil {
			panic(err)
		}
		crossed[c.Rank()] = x
		if c.Rank() == 1 {
			m := c.Recv(0, 7) // the original run still works …
			if !bytes.Equal(m.Data, payload) {
				panic("bad payload")
			}
		}
	})

	// … but the checkpoint is inconsistent: rank 1 saw the message cross.
	if crossed[1] != 1 {
		t.Fatalf("rank 1 observed %d crossing messages, want 1", crossed[1])
	}

	// Recovery: a fresh world restores both ranks from the committed
	// checkpoint. The crossing message exists nowhere — not in any mailbox
	// (the old world is gone), not in the checkpoint (blocking checkpointing
	// saved no message state). Rank 1, whose restored state still expects
	// it, would block forever; the probe stands in for that hang.
	w2 := mpi.NewWorld(2, mpi.Options{})
	c1 := w2.Comm(1)
	b1 := NewBlocking(c1, store)
	state, _, err := b1.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if string(state) != "sent=false" {
		t.Fatalf("rank 1 restored state %q", state)
	}
	if ok, _ := c1.Iprobe(0, 7); ok {
		t.Fatal("the crossing message cannot exist after recovery, yet a probe found it")
	}
}

// TestProtocolLogsWhatBlockingLoses runs the same message pattern under the
// C3 protocol layer: the message that blocking checkpointing loses is a
// late message there, logged with the global checkpoint and replayed on
// recovery. This is the paper's motivation for the protocol in one test.
func TestProtocolLogsWhatBlockingLoses(t *testing.T) {
	w := mpi.NewWorld(2, mpi.Options{})
	store := storage.NewCheckpointStore(storage.NewMemory())
	mk := func(r int) *protocol.Layer {
		return protocol.NewLayer(w.Comm(r), protocol.Config{Mode: protocol.Full, Store: store, Debug: true})
	}
	P, Q := mk(0), mk(1)

	P.Send(1, 7, []byte("crosses-the-checkpoint")) // sent in epoch 0
	P.RequestCheckpoint()
	P.PotentialCheckpoint() // P checkpoints; the message is now in flight across the line
	Q.PotentialCheckpoint() // Q checkpoints without having received it
	if got := Q.Recv(0, 7); string(got.Data) != "crosses-the-checkpoint" {
		t.Fatalf("Q received %q", got.Data)
	}
	if Q.Stats.LateLogged != 1 {
		t.Fatalf("LateLogged = %d, want 1: the crossing message must be in Q's log", Q.Stats.LateLogged)
	}
}
