package baseline

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"ccift/internal/engine"
	"ccift/internal/mpi"
	"ccift/internal/protocol"
)

func TestSenderLogRetainsEverySend(t *testing.T) {
	runRanks(t, 2, func(c *mpi.Comm) {
		sl := NewSenderLog(c)
		if c.Rank() == 0 {
			for i := 0; i < 10; i++ {
				sl.Send(1, 1, make([]byte, 100))
			}
			if sl.Sends != 10 || sl.SentBytes != 1000 {
				panic(fmt.Sprintf("sends=%d bytes=%d", sl.Sends, sl.SentBytes))
			}
			if sl.RetainedMessages() != 10 {
				panic(fmt.Sprintf("retained %d messages", sl.RetainedMessages()))
			}
			if sl.RetainedBytes() != 10*(100+logEntryOverhead) {
				panic(fmt.Sprintf("retained %d bytes", sl.RetainedBytes()))
			}
		} else {
			for i := 0; i < 10; i++ {
				sl.Recv(0, 1)
			}
			if sl.RetainedBytes() != 0 {
				panic("receiving must not grow a sender-based log")
			}
		}
	})
}

func TestSenderLogTruncateAndPeak(t *testing.T) {
	w := mpi.NewWorld(2, mpi.Options{})
	sl := NewSenderLog(w.Comm(0))
	for i := 0; i < 5; i++ {
		sl.Send(1, 1, make([]byte, 50))
	}
	peak := sl.PeakBytes
	if peak != 5*(50+logEntryOverhead) {
		t.Fatalf("peak = %d", peak)
	}
	sl.Truncate()
	if sl.RetainedBytes() != 0 || sl.RetainedMessages() != 0 {
		t.Fatal("truncate left retained data")
	}
	if sl.PeakBytes != peak {
		t.Fatal("truncate must not reset the high-water mark")
	}
	sl.Send(1, 1, make([]byte, 10))
	if sl.PeakBytes != peak {
		t.Fatal("a small post-truncation log must not move the peak")
	}
}

func TestSenderLogRetainedCopyIsStable(t *testing.T) {
	// The log must own its copies: mutating the application buffer after
	// Send cannot corrupt what a recovering process would be fed.
	w := mpi.NewWorld(2, mpi.Options{})
	sl := NewSenderLog(w.Comm(0))
	buf := []byte("original")
	sl.Send(1, 1, buf)
	copy(buf, "mutated!")
	replay := sl.Replay(1)
	if len(replay) != 1 || !bytes.Equal(replay[0], []byte("original")) {
		t.Fatalf("replay = %q", replay)
	}
}

func TestSenderLogReplayOrderProperty(t *testing.T) {
	// Replay(dst) returns exactly the messages sent to dst, in send order,
	// for any interleaving of destinations.
	f := func(dsts []bool) bool {
		if len(dsts) > 64 {
			dsts = dsts[:64]
		}
		w := mpi.NewWorld(3, mpi.Options{})
		sl := NewSenderLog(w.Comm(0))
		var want1, want2 [][]byte
		for i, toOne := range dsts {
			payload := []byte{byte(i)}
			if toOne {
				sl.Send(1, 1, payload)
				want1 = append(want1, payload)
			} else {
				sl.Send(2, 1, payload)
				want2 = append(want2, payload)
			}
		}
		got1, got2 := sl.Replay(1), sl.Replay(2)
		if len(got1) != len(want1) || len(got2) != len(want2) {
			return false
		}
		for i := range got1 {
			if !bytes.Equal(got1[i], want1[i]) {
				return false
			}
		}
		for i := range got2 {
			if !bytes.Equal(got2[i], want2[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLogVolumeBlowupVsC3 is ablation E9: for the same workload, compare
// what sender-based message logging must retain (every message sent since
// the last stable point) against what the C3 protocol logs (only the late
// messages of checkpoints in progress, plus non-deterministic events). The
// paper's Section 1.2 claim is that the former is "overwhelming" for
// parallel codes; here the ratio is measured, not asserted from authority.
func TestLogVolumeBlowupVsC3(t *testing.T) {
	const iters, width, ranks = 60, 256, 4

	prog := func(r *engine.Rank) (any, error) {
		n := r.Size()
		me := r.Rank()
		next, prev := (me+1)%n, (me-1+n)%n
		var it int
		x := make([]float64, width)
		r.Register("it", &it)
		r.Register("x", &x)
		for ; it < iters; it++ {
			r.PotentialCheckpoint()
			r.SendF64(next, 1, x)
			in := r.RecvF64(prev, 1)
			for i := range x {
				x[i] = x[i]*0.5 + in[i]*0.5 + 1
			}
		}
		return nil, nil
	}

	res, err := engine.Run(engine.Config{Ranks: ranks, Mode: protocol.Full, EveryN: 10}, prog)
	if err != nil {
		t.Fatal(err)
	}
	var sentBytes, sentMsgs, c3LogBytes, checkpoints int64
	for _, s := range res.Stats {
		sentBytes += s.BytesSent
		sentMsgs += s.MessagesSent
		c3LogBytes += s.LogBytes
		checkpoints += s.CheckpointsTaken
	}
	if checkpoints == 0 {
		t.Fatal("workload took no checkpoints; the comparison needs at least one interval")
	}

	// Sender-based logging retains every sent message until the next global
	// checkpoint. With the same checkpoint cadence, its average retained
	// volume per interval is sentBytes divided by the number of intervals —
	// and per-message metadata comes on top, as in SenderLog.
	intervals := checkpoints/int64(ranks) + 1
	senderLogPerInterval := (sentBytes + sentMsgs*logEntryOverhead) / intervals

	t.Logf("workload sent %.1f KB in %d messages; C3 logged %.1f KB total; sender-based logging retains ~%.1f KB per interval",
		float64(sentBytes)/1e3, sentMsgs, float64(c3LogBytes)/1e3, float64(senderLogPerInterval)/1e3)

	if c3LogBytes*2 >= sentBytes {
		t.Fatalf("C3 log (%d B) should be far below total traffic (%d B): only late messages are logged",
			c3LogBytes, sentBytes)
	}
}
