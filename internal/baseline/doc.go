// Package baseline implements the fault-tolerance approaches the paper
// compares itself against (Sections 1.2 and 3), so the arguments in the
// paper's text can be run instead of just read:
//
//   - Blocking coordinated checkpointing (software barriers, the technique
//     application programmers roll by hand): Blocking. Its failure mode —
//     MPI messages that cross a barrier are absent from the global
//     checkpoint and lost on recovery — is counted by Checkpoint and
//     demonstrated in the tests.
//
//   - The Chandy-Lamport distributed snapshot protocol: CL. It is correct
//     under its own assumptions (system-level state saving at arbitrary
//     points, FIFO per-channel delivery) and the tests show exactly how it
//     breaks when either assumption is removed, which is the paper's
//     Section 3.1/3.3 argument for a new protocol.
//
//   - Sender-based message logging: SenderLog. Every application message is
//     retained until the next global checkpoint; the accounting shows the
//     retention-volume blow-up relative to the C3 late-message log
//     (Section 1.2's argument against message logging for parallel codes).
package baseline
