package baseline

import (
	"fmt"

	"ccift/internal/mpi"
)

// CL is one process's view of the Chandy-Lamport distributed snapshot
// protocol [4]. It exists to make the paper's Section 3 arguments
// executable:
//
//   - Under the protocol's own assumptions — state may be recorded at any
//     instant (system-level state saving) and channels are FIFO as observed
//     by the process — the snapshot is consistent. RecvOrdered models that
//     observation discipline: messages and markers are consumed strictly in
//     arrival order.
//
//   - MPI applications receive by tag (Section 3.3): RecvTag lets the
//     application pull a data message past a marker still sitting in the
//     mailbox, which silently turns the message into an unrecorded early
//     message. The snapshot is then inconsistent, and CL counts it.
//
//   - Application-level state saving cannot record state at marker arrival
//     (Section 3.1): with DeferSnapshots set, the state recording waits for
//     the next PotentialCheckpoint call, and every message consumed in
//     between that was sent after its sender's snapshot is again an
//     unrecorded early message.
//
// Every data message carries a one-byte header flagging whether its sender
// had already recorded its snapshot at send time; that is the ground truth
// the consistency counters compare against. The header is CL bookkeeping,
// not part of the recorded channel state.
type CL struct {
	comm *mpi.Comm

	// DeferSnapshots models application-level state saving: a marker does
	// not record state immediately; the recording happens at the next
	// PotentialCheckpoint call.
	DeferSnapshots bool

	// Recorded is this process's snapshot state, nil until recorded.
	Recorded []byte
	// ChannelState holds, per sending rank, the messages recorded as
	// in-channel: received after this process's snapshot but before the
	// marker on that channel.
	ChannelState [][][]byte

	// EarlyReceives counts consistency violations: messages consumed by the
	// application that were sent after the sender's snapshot but received
	// before this receiver's snapshot. A correct Chandy-Lamport execution
	// has zero.
	EarlyReceives int

	// StateFn produces the process state to record. In the system-level
	// model it is called at an arbitrary instant (marker arrival).
	StateFn func() []byte

	snapshotPending bool
	recording       []bool // per sender: between own snapshot and their marker
	markersSeen     int
	started         bool
}

// MarkerTag is the reserved tag of Chandy-Lamport marker tokens. It is an
// application-level tag: markers travel through the same mailbox as data,
// which is exactly what makes tag matching dangerous.
const MarkerTag = 1 << 20

const (
	hdrPreSnapshot  = 0 // sent before the sender recorded its snapshot
	hdrPostSnapshot = 1 // sent after
)

// NewCL builds the Chandy-Lamport layer for one rank.
func NewCL(comm *mpi.Comm, stateFn func() []byte) *CL {
	n := comm.Size()
	return &CL{
		comm:         comm,
		StateFn:      stateFn,
		ChannelState: make([][][]byte, n),
		recording:    make([]bool, n),
	}
}

// Send transmits a data message with the snapshot-flag header.
func (c *CL) Send(dst, tag int, data []byte) {
	hdr := byte(hdrPreSnapshot)
	if c.Recorded != nil {
		hdr = hdrPostSnapshot
	}
	c.comm.Send(dst, tag, append([]byte{hdr}, data...))
}

// StartSnapshot makes this process the snapshot initiator: record state,
// then send markers on every outgoing channel.
func (c *CL) StartSnapshot() {
	if c.started {
		return
	}
	c.started = true
	c.takeOrDefer()
}

// takeOrDefer records the process state now (system-level model) or arms
// the deferred recording (application-level model), then sends markers.
func (c *CL) takeOrDefer() {
	if c.DeferSnapshots {
		c.snapshotPending = true
	} else {
		c.recordState()
	}
	// Markers go out immediately in either model; Chandy-Lamport requires
	// them to precede any post-snapshot message on each channel.
	for q := 0; q < c.comm.Size(); q++ {
		if q != c.comm.Rank() {
			c.comm.Send(q, MarkerTag, nil)
		}
	}
}

func (c *CL) recordState() {
	c.Recorded = c.StateFn()
	c.snapshotPending = false
	for q := range c.recording {
		c.recording[q] = q != c.comm.Rank()
	}
}

// PotentialCheckpoint is the application-level state-saving opportunity:
// with DeferSnapshots set, a pending marker-triggered snapshot is recorded
// here — and only here.
func (c *CL) PotentialCheckpoint() {
	if c.snapshotPending {
		c.recordState()
	}
}

// Done reports whether this process has recorded its state and received a
// marker from every other process, completing its part of the snapshot.
func (c *CL) Done() bool {
	return c.Recorded != nil && !c.snapshotPending && c.markersSeen == c.comm.Size()-1
}

// handleMarker processes a marker from src: first marker triggers (or
// defers) the local snapshot; each marker closes its channel's recording.
func (c *CL) handleMarker(src int) {
	c.markersSeen++
	if !c.started {
		c.started = true
		c.takeOrDefer()
	}
	c.recording[src] = false
}

// deliver applies snapshot bookkeeping to an application-bound message and
// strips the header.
func (c *CL) deliver(m *mpi.Message) *mpi.Message {
	hdr, data := m.Data[0], m.Data[1:]
	if hdr == hdrPostSnapshot && (c.Recorded == nil || c.snapshotPending) {
		// Sent after the sender's snapshot, consumed before ours: the
		// snapshot can no longer be consistent.
		c.EarlyReceives++
	}
	if c.Recorded != nil && !c.snapshotPending && c.recording[m.Source] {
		cp := make([]byte, len(data))
		copy(cp, data)
		c.ChannelState[m.Source] = append(c.ChannelState[m.Source], cp)
	}
	return &mpi.Message{Source: m.Source, Tag: m.Tag, Data: data}
}

// RecvOrdered consumes the next message in arrival order — the observation
// discipline of a system-level snapshot layer sitting under the
// application. Markers are handled internally; the first data message is
// returned.
func (c *CL) RecvOrdered() *mpi.Message {
	for {
		_, m := c.comm.Select([]mpi.RecvSpec{{Source: mpi.AnySource, Tag: mpi.AnyTag}})
		if m.Tag == MarkerTag {
			c.handleMarker(m.Source)
			continue
		}
		return c.deliver(m)
	}
}

// RecvTag consumes the next message with the given tag, regardless of what
// else is queued ahead of it — MPI tag matching. A marker that is skipped
// over stays in the mailbox unprocessed, which is how an application-level
// snapshot goes wrong.
func (c *CL) RecvTag(src, tag int) *mpi.Message {
	if tag == MarkerTag {
		panic(fmt.Sprintf("baseline: CL.RecvTag(%d) on the marker tag", tag))
	}
	m := c.comm.Recv(src, tag)
	return c.deliver(m)
}

// DrainMarkers processes any markers still queued (used by tests to finish
// the protocol after the application stopped receiving data).
func (c *CL) DrainMarkers() {
	for {
		_, m := c.comm.PollSelect([]mpi.RecvSpec{{Source: mpi.AnySource, Tag: MarkerTag}})
		if m == nil {
			return
		}
		c.handleMarker(m.Source)
	}
}
