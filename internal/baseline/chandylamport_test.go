package baseline

import (
	"fmt"
	"sync"
	"testing"

	"ccift/internal/mpi"
)

// TestCLConsistentUnderOwnAssumptions: with system-level state saving
// (record at marker arrival) and arrival-order observation, Chandy-Lamport
// produces a consistent snapshot — zero early receives — across a busy
// exchange. This is the baseline working as designed.
func TestCLConsistentUnderOwnAssumptions(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		const n, rounds = 3, 20
		cls := make([]*CL, n)
		var mu sync.Mutex

		w := mpi.NewWorld(n, mpi.Options{ChaosSeed: seed}) // seed 0: no chaos
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				c := w.Comm(r)
				cl := NewCL(c, func() []byte { return []byte{byte(r)} })
				mu.Lock()
				cls[r] = cl
				mu.Unlock()

				for round := 0; round < rounds; round++ {
					if r == 0 && round == rounds/2 {
						cl.StartSnapshot()
					}
					next := (r + 1) % n
					cl.Send(next, 1, []byte{byte(round)})
					m := cl.RecvOrdered()
					if int(m.Data[0]) != round {
						panic(fmt.Sprintf("rank %d round %d: got %d", r, round, m.Data[0]))
					}
				}
				cl.DrainMarkers()
			}(r)
		}
		wg.Wait()

		for r, cl := range cls {
			if !cl.Done() {
				t.Fatalf("seed %d: rank %d snapshot incomplete", seed, r)
			}
			if cl.EarlyReceives != 0 {
				t.Fatalf("seed %d: rank %d recorded %d early receives under FIFO observation",
					seed, r, cl.EarlyReceives)
			}
		}
	}
}

// TestCLRecordsChannelState: a message in flight across the snapshot line
// (sent before the sender's snapshot, received after the receiver's) is
// recorded as channel state — Chandy-Lamport's handling of what Section 2
// calls a late message.
func TestCLRecordsChannelState(t *testing.T) {
	w := mpi.NewWorld(2, mpi.Options{})
	c0, c1 := w.Comm(0), w.Comm(1)
	cl0 := NewCL(c0, func() []byte { return []byte("p0") })
	cl1 := NewCL(c1, func() []byte { return []byte("p1") })

	// Rank 1 sends before its snapshot; the message reaches rank 0's
	// mailbox behind nothing, but rank 0 snapshots before reading it.
	cl1.Send(0, 1, []byte("in-flight"))
	cl0.StartSnapshot() // rank 0 records, marker goes to rank 1

	// Rank 1 sees the marker (its first and only marker), snapshots, and
	// its own marker travels back to rank 0.
	m := cl1.RecvOrdered // not called: rank 1 has no data to receive
	_ = m
	cl1.DrainMarkers()
	if cl1.Recorded == nil {
		t.Fatal("rank 1 should have snapshotted on the marker")
	}

	// Rank 0 now receives the in-flight message: after its own snapshot,
	// before rank 1's marker on that channel → channel state.
	got := cl0.RecvOrdered()
	if string(got.Data) != "in-flight" {
		t.Fatalf("got %q", got.Data)
	}
	cl0.DrainMarkers()

	if len(cl0.ChannelState[1]) != 1 || string(cl0.ChannelState[1][0]) != "in-flight" {
		t.Fatalf("channel state = %v", cl0.ChannelState[1])
	}
	if cl0.EarlyReceives != 0 || cl1.EarlyReceives != 0 {
		t.Fatal("a recorded in-flight message is not an early receive")
	}
	if !cl0.Done() || !cl1.Done() {
		t.Fatal("snapshot incomplete")
	}
}

// TestCLTagMatchingBreaksSnapshot is Section 3.3 made executable: "a
// process can use tag matching to receive messages in a different order
// than as they were sent. Therefore, a protocol that works at the
// application-level cannot assume FIFO communication." The marker is
// overtaken in the matching order, and the snapshot silently records an
// inconsistent state.
func TestCLTagMatchingBreaksSnapshot(t *testing.T) {
	w := mpi.NewWorld(2, mpi.Options{})
	cl0 := NewCL(w.Comm(0), func() []byte { return []byte("p0") })
	cl1 := NewCL(w.Comm(1), func() []byte { return []byte("p1") })

	// Rank 0 snapshots, then sends a post-snapshot data message. On the
	// wire the marker precedes it (FIFO transport!) — the failure below is
	// purely the application's receive order.
	cl0.StartSnapshot()
	cl0.Send(1, 7, []byte("post-snapshot"))

	// Rank 1's application wants tag 7 first. Tag matching jumps over the
	// queued marker: rank 1 consumes a message its sender sent *after* the
	// snapshot, while rank 1's own snapshot has not happened.
	got := cl1.RecvTag(0, 7)
	if string(got.Data) != "post-snapshot" {
		t.Fatalf("got %q", got.Data)
	}
	if cl1.EarlyReceives != 1 {
		t.Fatalf("EarlyReceives = %d, want 1: the snapshot is inconsistent", cl1.EarlyReceives)
	}

	// The marker is processed afterwards and the snapshot "completes" —
	// nothing in the protocol itself reports the corruption.
	cl1.DrainMarkers()
	cl0.DrainMarkers()
	if !cl1.Done() {
		t.Fatal("rank 1 should believe its snapshot completed")
	}
}

// TestCLDeferredStateSavingBreaksSnapshot is Section 3.1 made executable:
// "a system-level checkpoint may be taken at any time [...] while an
// application-level checkpoint can only be taken when a program executes
// PotentialCheckpoint calls [...] process Q might need to receive an early
// message before it can arrive at a point where it may take a checkpoint."
func TestCLDeferredStateSavingBreaksSnapshot(t *testing.T) {
	w := mpi.NewWorld(2, mpi.Options{})
	cl0 := NewCL(w.Comm(0), func() []byte { return []byte("p0") })
	cl1 := NewCL(w.Comm(1), func() []byte { return []byte("p1") })
	cl1.DeferSnapshots = true // rank 1 saves state at application level

	cl0.StartSnapshot()
	cl0.Send(1, 7, []byte("needed-to-make-progress"))

	// Rank 1 observes in perfect FIFO order: marker first. But it cannot
	// save state at the marker — it is application-level — and its program
	// must receive the data message before reaching PotentialCheckpoint.
	got := cl1.RecvOrdered()
	if string(got.Data) != "needed-to-make-progress" {
		t.Fatalf("got %q", got.Data)
	}
	cl1.PotentialCheckpoint() // only now can state be saved

	if cl1.EarlyReceives != 1 {
		t.Fatalf("EarlyReceives = %d, want 1: checkpoint scheduling cannot avoid the early message", cl1.EarlyReceives)
	}
	cl0.DrainMarkers()
	if !cl1.Done() || cl1.Recorded == nil {
		t.Fatal("rank 1's deferred snapshot should have completed at PotentialCheckpoint")
	}
}
