package baseline

import (
	"fmt"

	"ccift/internal/mpi"
	"ccift/internal/storage"
)

// Blocking is the blocking coordinated checkpointer of Section 1.2:
// "Software blocking techniques exploit barriers — when processes reach a
// global barrier, each one saves its own state on stable storage. This is
// essentially the solution used today by applications programmers who roll
// their own application-level state-saving code."
//
// Its fundamental flaw, quoted from the same paragraph: "this solution can
// fail for some MPI programs since MPI allows messages to cross barriers.
// These messages would not be saved with the global checkpoint." Checkpoint
// reports such crossing messages so the tests can demonstrate the loss.
type Blocking struct {
	comm  *mpi.Comm
	store *storage.CheckpointStore

	// Epoch counts completed global checkpoints, starting at 0 like the
	// protocol layer's epochs.
	Epoch int
	// Crossed accumulates the messages observed in-flight at checkpoint
	// barriers. Each one is a message that recovery will lose: its send
	// precedes the sender's saved state (so it is not re-sent) and its
	// receive follows the receiver's saved state (so the receiver still
	// expects it).
	Crossed int
}

// NewBlocking builds a blocking checkpointer for one rank.
func NewBlocking(comm *mpi.Comm, store *storage.CheckpointStore) *Blocking {
	return &Blocking{comm: comm, store: store}
}

// Checkpoint runs the barrier-based global checkpoint: synchronize, save
// local state, synchronize again, and (on rank 0) commit. It returns the
// number of messages that crossed the checkpoint barrier at this rank —
// messages already delivered to this rank's mailbox but not yet received by
// the application. A correct checkpointer would have to save them; this one,
// faithfully to the technique it models, does not.
//
// All ranks must call Checkpoint collectively, like an MPI collective.
func (b *Blocking) Checkpoint(state []byte) (crossed int, err error) {
	b.comm.Barrier()
	// Between the barriers every rank is inside Checkpoint, so any queued
	// application message was sent before its sender's state was saved and
	// will be received after this rank's state was saved: a crossing
	// message. (Internal barrier traffic is excluded; a real blocking
	// checkpointer's own synchronization does not cross itself.)
	crossed = b.comm.PendingApp()
	b.Crossed += crossed

	epoch := b.Epoch + 1
	if err := b.store.PutState(epoch, b.comm.Rank(), state); err != nil {
		return crossed, fmt.Errorf("baseline: blocking checkpoint: %w", err)
	}
	// The log slot is written empty so the shared CheckpointStore layout
	// stays uniform; blocking checkpointing has no logging phase.
	if err := b.store.PutLog(epoch, b.comm.Rank(), nil); err != nil {
		return crossed, fmt.Errorf("baseline: blocking checkpoint: %w", err)
	}
	// Second barrier: every rank's state is durable before the commit
	// record moves; third barrier: the commit is visible before any rank
	// leaves the checkpoint (otherwise a racing Restore could miss it).
	b.comm.Barrier()
	if b.comm.Rank() == 0 {
		if err := b.store.Commit(epoch); err != nil {
			return crossed, fmt.Errorf("baseline: blocking commit: %w", err)
		}
	}
	b.comm.Barrier()
	b.Epoch = epoch
	return crossed, nil
}

// Restore loads this rank's state from the committed global checkpoint.
// Crossing messages are gone: nothing re-creates them, which is the data
// loss the tests demonstrate.
func (b *Blocking) Restore() (state []byte, epoch int, err error) {
	epoch, ok, err := b.store.Committed()
	if err != nil {
		return nil, 0, err
	}
	if !ok {
		return nil, 0, fmt.Errorf("baseline: no committed blocking checkpoint")
	}
	state, err = b.store.GetState(epoch, b.comm.Rank())
	if err != nil {
		return nil, 0, err
	}
	b.Epoch = epoch
	return state, epoch, nil
}
