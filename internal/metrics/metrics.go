// Package metrics is a dependency-free metrics registry with Prometheus
// text exposition. It exists so ccift can expose live protocol counters
// (checkpoint blocked time, restarts, dedup ratios, ...) on an HTTP
// endpoint without pulling a client library into the module: the registry
// knows counters (monotonic int64) and gauges (float64), renders them in
// the text format scrapers understand, and nothing more.
//
// All methods are safe for concurrent use. Metric instruments are created
// once (usually up front, so a scrape early in a run still sees every
// series at zero) and updated with atomics on the hot path.
package metrics

import (
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. Set exists for mirrors of
// externally accumulated totals (e.g. folding a worker's stats snapshot
// into the launcher's registry) and must only ever move the value up.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (d must be >= 0).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Set replaces the counter's value; callers guarantee monotonicity.
func (c *Counter) Set(v int64) { c.v.Store(v) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

type metric struct {
	name    string
	help    string
	typ     string // "counter" | "gauge"
	counter *Counter
	gauge   *Gauge
}

// Registry holds named metrics and renders them. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	names   []string // insertion order not kept; render sorts
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Counter registers (or returns the existing) counter with the given name.
// Registering the same name with a different type panics: that is a
// programming error, not a runtime condition.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.typ != "counter" {
			panic("metrics: " + name + " already registered as " + m.typ)
		}
		return m.counter
	}
	c := &Counter{}
	r.metrics[name] = &metric{name: name, help: help, typ: "counter", counter: c}
	r.names = append(r.names, name)
	return c
}

// Gauge registers (or returns the existing) gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.typ != "gauge" {
			panic("metrics: " + name + " already registered as " + m.typ)
		}
		return m.gauge
	}
	g := &Gauge{}
	r.metrics[name] = &metric{name: name, help: help, typ: "gauge", gauge: g}
	r.names = append(r.names, name)
	return g
}

// Render writes the registry in Prometheus text exposition format
// (version 0.0.4), metrics sorted by name.
func (r *Registry) Render() string {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	ms := make([]*metric, 0, len(names))
	for _, n := range names {
		ms = append(ms, r.metrics[n])
	}
	r.mu.Unlock()

	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	var b strings.Builder
	for _, m := range ms {
		if m.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.typ)
		switch m.typ {
		case "counter":
			fmt.Fprintf(&b, "%s %d\n", m.name, m.counter.Value())
		case "gauge":
			v := m.gauge.Value()
			if v == math.Trunc(v) && math.Abs(v) < 1e15 {
				fmt.Fprintf(&b, "%s %d\n", m.name, int64(v))
			} else {
				fmt.Fprintf(&b, "%s %g\n", m.name, v)
			}
		}
	}
	return b.String()
}

// Handler returns an http.Handler serving the rendered registry; mount it
// at /metrics (Serve does).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, r.Render())
	})
}

// Server is a running metrics endpoint; Close stops it.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve exposes the registry at http://<addr>/metrics (and at "/", for
// curl convenience). addr may end in ":0" to pick a free port; Addr
// reports the bound address.
func (r *Registry) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/", r.Handler())
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the listener's address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down, allowing in-flight scrapes a moment to
// finish.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}
