// Package metrics is a dependency-free metrics registry with Prometheus
// text exposition. It exists so ccift can expose live protocol counters
// (checkpoint blocked time, restarts, dedup ratios, ...) on an HTTP
// endpoint without pulling a client library into the module: the registry
// knows counters (monotonic int64) and gauges (float64), renders them in
// the text format scrapers understand, and nothing more.
//
// All methods are safe for concurrent use. Metric instruments are created
// once (usually up front, so a scrape early in a run still sees every
// series at zero) and updated with atomics on the hot path.
//
// Beyond plain counters and gauges the registry knows fixed-bucket
// histograms (rendered as the _bucket/_sum/_count triplet scrapers expect)
// and single-label counter/gauge vectors (one child series per label
// value — ccift uses them for per-rank breakdowns).
package metrics

import (
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. Set exists for mirrors of
// externally accumulated totals (e.g. folding a worker's stats snapshot
// into the launcher's registry) and must only ever move the value up.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (d must be >= 0).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Set replaces the counter's value; callers guarantee monotonicity.
func (c *Counter) Set(v int64) { c.v.Store(v) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: Observe files each value into
// the first bucket whose upper bound is >= the value (with an implicit
// +Inf overflow bucket) and accumulates the sum. Buckets are chosen at
// registration and never change.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64 // per-bucket (non-cumulative) counts; last is +Inf
	sum    atomic.Uint64  // float64 bits, CAS-added
}

// Observe files v into the histogram.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// CounterVec is a family of counters distinguished by one label.
type CounterVec struct {
	label string
	mu    sync.Mutex
	kids  map[string]*Counter
}

// With returns (creating on first use) the child counter for the label
// value.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.kids[value]
	if c == nil {
		c = &Counter{}
		v.kids[value] = c
	}
	return c
}

// GaugeVec is a family of gauges distinguished by one label.
type GaugeVec struct {
	label string
	mu    sync.Mutex
	kids  map[string]*Gauge
}

// With returns (creating on first use) the child gauge for the label
// value.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	g := v.kids[value]
	if g == nil {
		g = &Gauge{}
		v.kids[value] = g
	}
	return g
}

type metric struct {
	name    string
	help    string
	typ     string // exposition TYPE: "counter" | "gauge" | "histogram"
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	cvec    *CounterVec
	gvec    *GaugeVec
}

// Registry holds named metrics and renders them. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	names   []string // insertion order not kept; render sorts
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Counter registers (or returns the existing) counter with the given name.
// Registering the same name with a different type panics: that is a
// programming error, not a runtime condition.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.typ != "counter" {
			panic("metrics: " + name + " already registered as " + m.typ)
		}
		return m.counter
	}
	c := &Counter{}
	r.metrics[name] = &metric{name: name, help: help, typ: "counter", counter: c}
	r.names = append(r.names, name)
	return c
}

// Gauge registers (or returns the existing) gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.typ != "gauge" {
			panic("metrics: " + name + " already registered as " + m.typ)
		}
		return m.gauge
	}
	g := &Gauge{}
	r.metrics[name] = &metric{name: name, help: help, typ: "gauge", gauge: g}
	r.names = append(r.names, name)
	return g
}

// Histogram registers (or returns the existing) histogram with the given
// name and ascending bucket upper bounds (+Inf is implicit and must not be
// passed). Re-registering with different buckets, or an unsorted or empty
// bounds slice, panics: programming errors, not runtime conditions.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: " + name + ": histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: " + name + ": histogram bounds must be strictly ascending")
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.typ != "histogram" {
			panic("metrics: " + name + " already registered as " + m.typ)
		}
		if len(m.hist.bounds) != len(bounds) {
			panic("metrics: " + name + " re-registered with different buckets")
		}
		for i := range bounds {
			if m.hist.bounds[i] != bounds[i] {
				panic("metrics: " + name + " re-registered with different buckets")
			}
		}
		return m.hist
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.metrics[name] = &metric{name: name, help: help, typ: "histogram", hist: h}
	r.names = append(r.names, name)
	return h
}

// CounterVec registers (or returns the existing) single-label counter
// family with the given name and label key.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.cvec == nil {
			panic("metrics: " + name + " already registered as " + m.typ)
		}
		if m.cvec.label != label {
			panic("metrics: " + name + " re-registered with label " + label + ", had " + m.cvec.label)
		}
		return m.cvec
	}
	v := &CounterVec{label: label, kids: map[string]*Counter{}}
	r.metrics[name] = &metric{name: name, help: help, typ: "counter", cvec: v}
	r.names = append(r.names, name)
	return v
}

// GaugeVec registers (or returns the existing) single-label gauge family
// with the given name and label key.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.gvec == nil {
			panic("metrics: " + name + " already registered as " + m.typ)
		}
		if m.gvec.label != label {
			panic("metrics: " + name + " re-registered with label " + label + ", had " + m.gvec.label)
		}
		return m.gvec
	}
	v := &GaugeVec{label: label, kids: map[string]*Gauge{}}
	r.metrics[name] = &metric{name: name, help: help, typ: "gauge", gvec: v}
	r.names = append(r.names, name)
	return v
}

// Render writes the registry in Prometheus text exposition format
// (version 0.0.4), metrics sorted by name.
func (r *Registry) Render() string {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	ms := make([]*metric, 0, len(names))
	for _, n := range names {
		ms = append(ms, r.metrics[n])
	}
	r.mu.Unlock()

	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	var b strings.Builder
	for _, m := range ms {
		if m.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.typ)
		switch {
		case m.counter != nil:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.counter.Value())
		case m.gauge != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, fmtFloat(m.gauge.Value()))
		case m.hist != nil:
			renderHistogram(&b, m.name, m.hist)
		case m.cvec != nil:
			m.cvec.mu.Lock()
			for _, lv := range sortedKeys(m.cvec.kids) {
				fmt.Fprintf(&b, "%s{%s=%q} %d\n", m.name, m.cvec.label, lv, m.cvec.kids[lv].Value())
			}
			m.cvec.mu.Unlock()
		case m.gvec != nil:
			m.gvec.mu.Lock()
			for _, lv := range sortedKeys(m.gvec.kids) {
				fmt.Fprintf(&b, "%s{%s=%q} %s\n", m.name, m.gvec.label, lv, fmtFloat(m.gvec.kids[lv].Value()))
			}
			m.gvec.mu.Unlock()
		}
	}
	return b.String()
}

// renderHistogram emits the cumulative _bucket series, _sum and _count.
func renderHistogram(b *strings.Builder, name string, h *Histogram) {
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, fmtFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %s\n", name, fmtFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count %d\n", name, cum)
}

// fmtFloat renders integral values without an exponent or trailing zeros,
// as scrapers (and humans reading curl output) expect.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// sortedKeys returns the map's keys; numeric-looking keys (per-rank
// labels) sort numerically so rank "10" follows rank "9", others
// lexically after the numeric block.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, aerr := strconv.Atoi(keys[i])
		b, berr := strconv.Atoi(keys[j])
		switch {
		case aerr == nil && berr == nil:
			return a < b
		case aerr == nil:
			return true
		case berr == nil:
			return false
		default:
			return keys[i] < keys[j]
		}
	})
	return keys
}

// Handler returns an http.Handler serving the rendered registry; mount it
// at /metrics (Serve does).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, r.Render())
	})
}

// Server is a running metrics endpoint; Close stops it.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve exposes the registry at http://<addr>/metrics (and at "/", for
// curl convenience). addr may end in ":0" to pick a free port; Addr
// reports the bound address.
func (r *Registry) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/", r.Handler())
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the listener's address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down, allowing in-flight scrapes a moment to
// finish.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}
