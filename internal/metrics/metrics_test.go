package metrics

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestRenderFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ccift_restarts_total", "Rollback restarts across the run.")
	g := r.Gauge("ccift_ranks", "World size.")
	c.Add(3)
	g.Set(4)

	out := r.Render()
	for _, want := range []string{
		"# HELP ccift_restarts_total Rollback restarts across the run.",
		"# TYPE ccift_restarts_total counter",
		"ccift_restarts_total 3",
		"# TYPE ccift_ranks gauge",
		"ccift_ranks 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	if strings.Index(out, "ccift_ranks") > strings.Index(out, "ccift_restarts_total") {
		t.Errorf("metrics not sorted by name:\n%s", out)
	}
}

func TestCounterReuseAndTypeClash(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "")
	b := r.Counter("x_total", "")
	if a != b {
		t.Fatal("re-registering a counter must return the same instrument")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge should panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestServeScrape(t *testing.T) {
	r := NewRegistry()
	r.Counter("ccift_checkpoint_blocked_ns_total", "ns blocked").Add(42)
	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(string(body), "ccift_checkpoint_blocked_ns_total 42") {
		t.Errorf("scrape missing counter:\n%s", body)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ccift_blocked_ns", "Blocked time distribution.", []float64{10, 100, 1000})
	for _, v := range []float64{5, 7, 50, 999, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 6061 {
		t.Fatalf("count=%d sum=%g, want 5/6061", h.Count(), h.Sum())
	}

	out := r.Render()
	// Buckets are cumulative; exact boundary values land in their bucket.
	for _, want := range []string{
		"# TYPE ccift_blocked_ns histogram",
		`ccift_blocked_ns_bucket{le="10"} 2`,
		`ccift_blocked_ns_bucket{le="100"} 3`,
		`ccift_blocked_ns_bucket{le="1000"} 4`,
		`ccift_blocked_ns_bucket{le="+Inf"} 5`,
		"ccift_blocked_ns_sum 6061",
		"ccift_blocked_ns_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryAndReuse(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{10})
	h.Observe(10) // on the bound: le="10" is inclusive
	if got := r.Render(); !strings.Contains(got, `h_bucket{le="10"} 1`) {
		t.Errorf("boundary observation not in its bucket:\n%s", got)
	}
	if r.Histogram("h", "", []float64{10}) != h {
		t.Fatal("re-registering must return the same instrument")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with different buckets should panic")
		}
	}()
	r.Histogram("h", "", []float64{20})
}

func TestVecExposition(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("ccift_rank_checkpoints_total", "Per-rank checkpoints.", "rank")
	gv := r.GaugeVec("ccift_rank_incarnation", "Per-rank incarnation.", "rank")
	// Insert out of order, two-digit rank included: render must sort
	// numerically, not lexically.
	cv.With("10").Add(1)
	cv.With("2").Add(7)
	cv.With("2").Add(1) // same child accumulates
	gv.With("0").Set(3)

	out := r.Render()
	for _, want := range []string{
		`ccift_rank_checkpoints_total{rank="2"} 8`,
		`ccift_rank_checkpoints_total{rank="10"} 1`,
		`ccift_rank_incarnation{rank="0"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	if strings.Index(out, `{rank="2"}`) > strings.Index(out, `{rank="10"}`) {
		t.Errorf("rank labels not numerically sorted:\n%s", out)
	}
	if cv.With("2") != cv.With("2") {
		t.Fatal("With must return a stable child")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a vec with a different label should panic")
		}
	}()
	r.CounterVec("ccift_rank_checkpoints_total", "", "node")
}
