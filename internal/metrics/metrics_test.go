package metrics

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestRenderFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ccift_restarts_total", "Rollback restarts across the run.")
	g := r.Gauge("ccift_ranks", "World size.")
	c.Add(3)
	g.Set(4)

	out := r.Render()
	for _, want := range []string{
		"# HELP ccift_restarts_total Rollback restarts across the run.",
		"# TYPE ccift_restarts_total counter",
		"ccift_restarts_total 3",
		"# TYPE ccift_ranks gauge",
		"ccift_ranks 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	if strings.Index(out, "ccift_ranks") > strings.Index(out, "ccift_restarts_total") {
		t.Errorf("metrics not sorted by name:\n%s", out)
	}
}

func TestCounterReuseAndTypeClash(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "")
	b := r.Counter("x_total", "")
	if a != b {
		t.Fatal("re-registering a counter must return the same instrument")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge should panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestServeScrape(t *testing.T) {
	r := NewRegistry()
	r.Counter("ccift_checkpoint_blocked_ns_total", "ns blocked").Add(42)
	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(string(body), "ccift_checkpoint_blocked_ns_total 42") {
		t.Errorf("scrape missing counter:\n%s", body)
	}
}
