// Package launch runs a distributed world: N worker OS processes (the
// launcher binary re-exec'd with worker environment variables), a full-mesh
// TCP substrate between them, and a shared on-disk checkpoint store. It is
// the process-level analogue of engine.Run's rollback loop — a kill plan
// here delivers a real SIGKILL to a real process, the survivors detect the
// death through connection resets and the heartbeat detector, and the
// launcher re-spawns the incarnation, which restores itself from the last
// committed global checkpoint.
package launch

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"ccift/internal/cerr"
	"ccift/internal/engine"
	"ccift/internal/mpi/tcptransport"
	"ccift/internal/protocol"
	"ccift/internal/storage"
)

// Worker environment. The launcher spawns its own binary with these set;
// the binary's main detects IsWorker before doing anything else and runs
// the worker role instead of launching.
const (
	envWorker      = "CCIFT_WORKER"      // "1" marks a worker process
	envRank        = "CCIFT_RANK"        // world rank of this worker
	envRanks       = "CCIFT_RANKS"       // world size
	envIncarnation = "CCIFT_INCARNATION" // spawn attempt, from 0
	envRendezvous  = "CCIFT_RDV_DIR"     // address-exchange directory (fresh per incarnation)
	envStore       = "CCIFT_STORE_DIR"   // shared checkpoint directory
	envKillAtOp    = "CCIFT_KILL_AT_OP"  // self-SIGKILL at this substrate op (doomed rank only)
	envDetector    = "CCIFT_DETECTOR_MS" // heartbeat suspicion timeout, milliseconds
	envStatsFD     = "CCIFT_STATS_FD"    // fd of the stats stream pipe (write end)
	envLocalized   = "CCIFT_LOCALIZED"   // "1": per-rank respawn; survivors rejoin the next incarnation in-process
)

// Localized-recovery marker files, written atomically (temp + rename) into
// each incarnation's rendezvous directory.
const (
	goMarker       = "GO"       // recovery files for this incarnation are complete; workers may join
	abortMarker    = "ABORT"    // this incarnation's mesh was abandoned; wait for a newer GO
	recoveryPrefix = "recovery" // recovery.<rank>: gob rankRecoveryFile
)

// Exit codes workers report back to the launcher: cerr's shared exit-code
// protocol, so a worker's error category survives the process boundary.
// exitOK ends the job, exitRollback schedules a re-spawn, and every other
// code is a hard failure whose category the launcher recovers with
// cerr.FromExitCode.
const (
	exitOK       = cerr.CodeOK
	exitError    = cerr.CodeProgram // program or uncategorizable error: the launcher gives up
	exitRollback = cerr.CodeRollback
)

// KillSpec schedules a real SIGKILL: the rank's process kills itself at its
// AtOp-th substrate operation of the given incarnation.
type KillSpec struct {
	Rank        int
	AtOp        int64
	Incarnation int
}

// Config configures a distributed run.
type Config struct {
	// Exe is the worker binary; default os.Executable() (the launcher
	// re-execs itself). Args are passed through to the worker so it can
	// re-parse the same application flags.
	Exe  string
	Args []string
	// Ranks is the number of worker processes. Required.
	Ranks int
	// StoreDir is the shared checkpoint directory; default a fresh
	// directory under WorkDir. WorkDir is the scratch root (rendezvous
	// files); default a fresh temp directory, removed on success.
	StoreDir string
	WorkDir  string
	// Kills is the SIGKILL schedule.
	Kills []KillSpec
	// MaxRestarts bounds re-spawn attempts. Default 10.
	MaxRestarts int
	// DetectorTimeout is the workers' heartbeat suspicion timeout (the
	// connection-reset fast path fires regardless). Default 2s.
	DetectorTimeout time.Duration
	// Stderr receives worker stderr (rank-prefixed); default os.Stderr.
	// Verbose additionally echoes spawn/exit events there.
	Stderr  io.Writer
	Verbose bool
	// StatsSink, when non-nil, receives every stats frame the workers emit
	// on their CCIFT_STATS_FD pipes, live as checkpoints complete. Called
	// from per-worker reader goroutines; the sink must synchronize. The
	// launcher aggregates the same frames itself into Result.Stats /
	// Result.PerRank regardless.
	StatsSink func(protocol.StatsFrame)
	// OnRestart, when non-nil, is called after each rollback-restart
	// decision with the cumulative restart count.
	OnRestart func(restarts int)
	// WholeWorldRestart selects the pre-localized recovery path: any death
	// kills and re-spawns the entire incarnation, and every worker rebuilds
	// its own recovery inputs from the store. The default (false) is
	// localized recovery: the launcher gathers the recovery plan once,
	// ships each rank its slice, respawns only dead ranks, and survivors
	// roll back in-process from their retained checkpoint copies.
	WholeWorldRestart bool
}

// IncarnationReport describes how one incarnation ended.
type IncarnationReport struct {
	// Exits holds each rank's exit description ("exit status 0",
	// "signal: killed", ...). Codes holds the structured exit codes (-1
	// when the rank died by signal); success is judged on these, never on
	// the description strings. Under localized recovery a surviving rank
	// has no exit in the incarnation it survived: its Exits entry stays ""
	// (Codes entry 0) and the process carries over to the next incarnation.
	Exits []string
	Codes []int
	// PIDs holds each rank's OS process ID during the incarnation. With
	// localized recovery survivors keep their PID across incarnations;
	// whole-world restart re-execs everyone.
	PIDs []int
	// RecoveredEpoch is the committed epoch the *next* incarnation will
	// restore from (-1 when none was committed yet).
	RecoveredEpoch int
}

func (r *IncarnationReport) failed() bool {
	for _, c := range r.Codes {
		if c != exitOK {
			return true
		}
	}
	return false
}

func newIncarnationReport(ranks int) IncarnationReport {
	return IncarnationReport{
		Exits:          make([]string, ranks),
		Codes:          make([]int, ranks),
		PIDs:           make([]int, ranks),
		RecoveredEpoch: -1,
	}
}

// Result reports a completed distributed run.
type Result struct {
	// Output is rank 0's standard output (the result line).
	Output string
	// Restarts is the number of incarnations that died and were re-spawned.
	Restarts int
	// RecoveredEpochs lists the epoch each restart recovered from (-1 when
	// the restart began from scratch).
	RecoveredEpochs []int
	// Incarnations describes every spawned incarnation, including the
	// final successful one.
	Incarnations []IncarnationReport
	// Stats holds each rank's protocol counters from the final
	// incarnation, indexed by rank — the same shape the in-process engine
	// reports, reconstructed from the workers' stats streams. PerRank is
	// the tagged form.
	Stats   []protocol.Stats
	PerRank []protocol.RankStats
}

// ErrTooManyRestarts is returned when the failure schedule exhausts
// MaxRestarts. It wraps cerr.ErrMaxRestarts, the public taxonomy category.
var ErrTooManyRestarts = fmt.Errorf("launch: too many restarts: %w", cerr.ErrMaxRestarts)

type workerExit struct {
	rank   int
	err    error // nil on exit 0
	desc   string
	code   int // -1 when signaled
	signal bool
}

// Run launches cfg.Ranks worker processes and supervises them until the
// job completes, re-spawning the whole incarnation whenever a process dies.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run under a context: when ctx is canceled or its deadline
// expires, every live worker process is SIGKILLed, no further incarnation
// is spawned, and the run returns an error wrapping ctx's error.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Ranks <= 0 {
		return nil, fmt.Errorf("launch: %w: Ranks must be positive, got %d", cerr.ErrSpec, cfg.Ranks)
	}
	if cfg.Exe == "" {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("launch: resolve worker binary: %w: %w", cerr.ErrSpec, err)
		}
		cfg.Exe = exe
	}
	if cfg.MaxRestarts == 0 {
		cfg.MaxRestarts = 10
	}
	if cfg.DetectorTimeout == 0 {
		cfg.DetectorTimeout = 2 * time.Second
	}
	if cfg.Stderr == nil {
		cfg.Stderr = os.Stderr
	}
	cleanupWork := false
	if cfg.WorkDir == "" {
		dir, err := os.MkdirTemp("", "c3launch-*")
		if err != nil {
			return nil, fmt.Errorf("launch: scratch dir: %w: %w", cerr.ErrSpec, err)
		}
		cfg.WorkDir = dir
		cleanupWork = true
	}
	if cfg.StoreDir == "" {
		cfg.StoreDir = filepath.Join(cfg.WorkDir, "ckpt")
	}
	if err := os.MkdirAll(cfg.StoreDir, 0o755); err != nil {
		return nil, fmt.Errorf("launch: store dir: %w: %w", cerr.ErrStore, err)
	}
	// A reused store directory may hold a previous job's commit record;
	// restoring it into this job would resume foreign state. Checkpoints
	// are reachable only through the commit record, so clearing it is
	// enough — this job's epochs overwrite the old blobs as they go.
	disk, err := storage.NewDisk(cfg.StoreDir)
	if err != nil {
		return nil, fmt.Errorf("launch: open store: %w: %w", cerr.ErrStore, err)
	}
	if err := storage.NewCheckpointStore(disk).ClearCommit(); err != nil {
		return nil, fmt.Errorf("launch: clear stale commit record: %w: %w", cerr.ErrStore, err)
	}

	// The stats aggregator reconstructs per-rank counters from the frames
	// every worker streams back on its stats pipe; frames also forward to
	// the caller's sink, live.
	agg := protocol.NewAggregator(nil)
	observe := func(f protocol.StatsFrame) {
		agg.Observe(f)
		if cfg.StatsSink != nil {
			cfg.StatsSink(f)
		}
	}

	if cfg.WholeWorldRestart {
		return runWholeWorld(ctx, cfg, agg, observe, cleanupWork)
	}
	return runLocalized(ctx, cfg, agg, observe, cleanupWork)
}

// runWholeWorld is the pre-localized supervision loop: any death collapses
// the incarnation (survivors exit with the rollback code), and the next
// incarnation re-execs every rank.
func runWholeWorld(ctx context.Context, cfg Config, agg *protocol.Aggregator,
	observe func(protocol.StatsFrame), cleanupWork bool) (*Result, error) {
	res := &Result{}
	for incarnation := 0; ; incarnation++ {
		if cause := ctx.Err(); cause != nil {
			when := "before it started"
			if incarnation > 0 {
				when = "during rollback"
			}
			return nil, fmt.Errorf("launch: run canceled %s: %w: %w", when, cerr.ErrCanceled, cause)
		}
		if incarnation > cfg.MaxRestarts {
			return nil, fmt.Errorf("%w (%d)", ErrTooManyRestarts, cfg.MaxRestarts)
		}
		report, out, err := runIncarnation(ctx, cfg, incarnation, observe)
		if report != nil {
			res.Incarnations = append(res.Incarnations, *report)
		}
		if err == nil && report.failed() {
			// The incarnation died; read what the next one will recover
			// from and go again.
			epoch := committedEpoch(cfg.StoreDir)
			res.Incarnations[len(res.Incarnations)-1].RecoveredEpoch = epoch
			res.Restarts++
			res.RecoveredEpochs = append(res.RecoveredEpochs, epoch)
			if cfg.OnRestart != nil {
				cfg.OnRestart(res.Restarts)
			}
			continue
		}
		if err != nil {
			return nil, err
		}
		res.Output = out
		res.Stats = agg.FinalStats()
		res.PerRank = agg.PerRank()
		if cleanupWork {
			os.RemoveAll(cfg.WorkDir)
		}
		return res, nil
	}
}

// committedEpoch reads the shared store's commit record (-1 when none).
func committedEpoch(storeDir string) int {
	disk, err := storage.NewDisk(storeDir)
	if err != nil {
		return -1
	}
	epoch, ok, err := storage.NewCheckpointStore(disk).Committed()
	if err != nil || !ok {
		return -1
	}
	return epoch
}

// runIncarnation spawns one full set of worker processes and waits for all
// of them to exit. It returns an error only for non-recoverable outcomes
// (spawn failure, a worker reporting a program error); a died incarnation
// is a nil error with report.failed() true.
func runIncarnation(ctx context.Context, cfg Config, incarnation int,
	observe func(protocol.StatsFrame)) (*IncarnationReport, string, error) {
	rdv := filepath.Join(cfg.WorkDir, "rdv", strconv.Itoa(incarnation))
	if err := os.MkdirAll(rdv, 0o755); err != nil {
		return nil, "", fmt.Errorf("launch: rendezvous dir: %w: %w", cerr.ErrSpec, err)
	}

	kill := map[int]int64{}
	for _, k := range cfg.Kills {
		if k.Incarnation == incarnation {
			kill[k.Rank] = k.AtOp
		}
	}

	cmds := make([]*exec.Cmd, cfg.Ranks)
	var rank0Out bytes.Buffer
	exits := make(chan workerExit, cfg.Ranks)
	var wg sync.WaitGroup
	var liveMu sync.Mutex
	live := make([]bool, cfg.Ranks)
	var errMu sync.Mutex // serializes rank-prefixed stderr lines
	logf := func(format string, args ...any) {
		errMu.Lock()
		fmt.Fprintf(cfg.Stderr, format, args...)
		errMu.Unlock()
	}
	// readersWG tracks the per-worker stats-pipe readers: each drains its
	// worker's frame stream until EOF (the kernel closes the write end when
	// the worker exits, however it exits).
	var readersWG sync.WaitGroup
	defer readersWG.Wait()
	for r := 0; r < cfg.Ranks; r++ {
		cmd := exec.Command(cfg.Exe, cfg.Args...)
		cmd.Env = append(os.Environ(),
			envWorker+"=1",
			envRank+"="+strconv.Itoa(r),
			envRanks+"="+strconv.Itoa(cfg.Ranks),
			envIncarnation+"="+strconv.Itoa(incarnation),
			envRendezvous+"="+rdv,
			envStore+"="+cfg.StoreDir,
			envDetector+"="+strconv.FormatInt(cfg.DetectorTimeout.Milliseconds(), 10),
		)
		if op, doomed := kill[r]; doomed {
			cmd.Env = append(cmd.Env, envKillAtOp+"="+strconv.FormatInt(op, 10))
		}
		if r == 0 {
			cmd.Stdout = &rank0Out
		}
		cmd.Stderr = &prefixWriter{w: cfg.Stderr, mu: &errMu, prefix: fmt.Sprintf("[rank %d] ", r)}
		// Stats stream: the worker writes frames to the pipe's write end,
		// inherited as fd 3 (ExtraFiles numbering); the launcher's reader
		// goroutine folds them into the aggregator as they arrive.
		statsR, statsW, err := os.Pipe()
		if err != nil {
			for _, c := range cmds[:r] {
				c.Process.Kill()
			}
			return nil, "", fmt.Errorf("launch: stats pipe for rank %d: %w: %w", r, cerr.ErrTransport, err)
		}
		cmd.ExtraFiles = []*os.File{statsW}
		cmd.Env = append(cmd.Env, envStatsFD+"=3")
		if err := cmd.Start(); err != nil {
			statsR.Close()
			statsW.Close()
			// Each started rank already has a watcher goroutine in Wait;
			// killing is enough, double-Waiting would race it.
			for _, c := range cmds[:r] {
				c.Process.Kill()
			}
			return nil, "", fmt.Errorf("launch: spawn rank %d: %w: %w", r, cerr.ErrTransport, err)
		}
		// The child owns its copy now; the launcher must drop its own write
		// end or the reader would never see EOF.
		statsW.Close()
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			defer statsR.Close()
			protocol.ReadStatsFrames(statsR, observe)
		}()
		if cfg.Verbose {
			logf("c3launch: incarnation %d: rank %d is pid %d%s\n",
				incarnation, r, cmd.Process.Pid, doomedNote(kill, r))
		}
		cmds[r] = cmd
		live[r] = true
		wg.Add(1)
		go func(r int, cmd *exec.Cmd) {
			defer wg.Done()
			err := cmd.Wait()
			liveMu.Lock()
			live[r] = false
			liveMu.Unlock()
			ws := cmd.ProcessState
			exits <- workerExit{
				rank:   r,
				err:    err,
				desc:   ws.String(),
				code:   ws.ExitCode(),
				signal: !ws.Exited(),
			}
		}(r, cmd)
	}

	killLive := func() {
		liveMu.Lock()
		defer liveMu.Unlock()
		for r, c := range cmds {
			if live[r] {
				c.Process.Kill()
			}
		}
	}

	// Cancellation: the moment ctx is done, SIGKILL every live worker so
	// the incarnation collapses immediately; the exit collection below then
	// reports the context error instead of scheduling a re-spawn.
	stopCancel := context.AfterFunc(ctx, killLive)
	defer stopCancel()

	// Grace reaper: once any worker exits abnormally, the survivors should
	// notice the death themselves (connection reset, then detector timeout)
	// and exit with the rollback code; if one wedges past the grace period,
	// SIGKILL it so the launcher can make progress.
	grace := 4*cfg.DetectorTimeout + 10*time.Second
	var reapOnce sync.Once
	reapTimer := (*time.Timer)(nil)
	armReaper := func() {
		reapOnce.Do(func() {
			reapTimer = time.AfterFunc(grace, killLive)
		})
	}

	rep := newIncarnationReport(cfg.Ranks)
	report := &rep
	for r, c := range cmds {
		report.PIDs[r] = c.Process.Pid
	}
	var hardCauses []error
	for i := 0; i < cfg.Ranks; i++ {
		e := <-exits
		report.Exits[e.rank] = e.desc
		report.Codes[e.rank] = e.code
		if e.err != nil {
			armReaper()
			if !e.signal && e.code != exitRollback {
				// The exit code carries the worker's error category across
				// the process boundary; unknown codes classify as program
				// failures.
				cat := cerr.FromExitCode(e.code)
				if cat == nil {
					cat = cerr.ErrProgram
				}
				hardCauses = append(hardCauses, cat)
			}
			if cfg.Verbose {
				logf("c3launch: incarnation %d: rank %d exited: %s\n", incarnation, e.rank, e.desc)
			}
		}
	}
	wg.Wait()
	if reapTimer != nil {
		reapTimer.Stop()
	}
	if cause := ctx.Err(); cause != nil {
		return report, "", fmt.Errorf("launch: run canceled: %w: %w", cerr.ErrCanceled, cause)
	}
	if len(hardCauses) > 0 {
		// Several ranks may fail for different reasons; Category on the
		// joined set picks the highest-priority sentinel so the run still
		// reports exactly one category.
		cat := cerr.Category(errors.Join(hardCauses...))
		return report, "", fmt.Errorf("launch: incarnation %d failed hard: %w: %s",
			incarnation, cat, strings.Join(report.Exits, ", "))
	}
	return report, rank0Out.String(), nil
}

// runLocalized supervises the world with per-rank respawn: a death costs
// one launcher-side recovery gather (O(ranks) tiny sidecar reads), fresh
// processes for the dead ranks only, and an in-process rollback for every
// survivor. The handshake with surviving workers runs over marker files in
// the rendezvous tree: ABORT in the dead incarnation's directory tells
// stragglers to stop forming its mesh, recovery.<rank> files plus a final
// GO marker in the next incarnation's directory carry each rank's
// recovery slice (suppression list, replica set, kill plan).
func runLocalized(ctx context.Context, cfg Config, agg *protocol.Aggregator,
	observe func(protocol.StatsFrame), cleanupWork bool) (*Result, error) {
	n := cfg.Ranks
	rdvRoot := filepath.Join(cfg.WorkDir, "rdv")
	res := &Result{}

	var errMu sync.Mutex
	logf := func(format string, args ...any) {
		errMu.Lock()
		fmt.Fprintf(cfg.Stderr, format, args...)
		errMu.Unlock()
	}
	var readersWG sync.WaitGroup
	defer readersWG.Wait()
	var watchWG sync.WaitGroup
	defer watchWG.Wait()

	// Every spawn produces exactly one exit event; the capacity covers the
	// worst case (a full respawn every round) so watchers never block.
	exits := make(chan workerExit, n*(cfg.MaxRestarts+2))
	var liveMu sync.Mutex
	cmds := make([]*exec.Cmd, n)
	live := make([]bool, n)
	done := make([]bool, n)
	var rank0Out *bytes.Buffer

	killLive := func() {
		liveMu.Lock()
		defer liveMu.Unlock()
		for r, c := range cmds {
			if live[r] {
				c.Process.Kill()
			}
		}
	}
	// Never leak worker processes, whatever path returns.
	defer killLive()
	stopCancel := context.AfterFunc(ctx, killLive)
	defer stopCancel()

	spawn := func(r, incarnation int, killAt int64) error {
		rdv := filepath.Join(rdvRoot, strconv.Itoa(incarnation))
		cmd := exec.Command(cfg.Exe, cfg.Args...)
		cmd.Env = append(os.Environ(),
			envWorker+"=1",
			envLocalized+"=1",
			envRank+"="+strconv.Itoa(r),
			envRanks+"="+strconv.Itoa(n),
			envIncarnation+"="+strconv.Itoa(incarnation),
			envRendezvous+"="+rdv,
			envStore+"="+cfg.StoreDir,
			envDetector+"="+strconv.FormatInt(cfg.DetectorTimeout.Milliseconds(), 10),
		)
		if killAt > 0 {
			cmd.Env = append(cmd.Env, envKillAtOp+"="+strconv.FormatInt(killAt, 10))
		}
		if r == 0 {
			rank0Out = &bytes.Buffer{}
			cmd.Stdout = rank0Out
		}
		cmd.Stderr = &prefixWriter{w: cfg.Stderr, mu: &errMu, prefix: fmt.Sprintf("[rank %d] ", r)}
		statsR, statsW, err := os.Pipe()
		if err != nil {
			return fmt.Errorf("launch: stats pipe for rank %d: %w: %w", r, cerr.ErrTransport, err)
		}
		cmd.ExtraFiles = []*os.File{statsW}
		cmd.Env = append(cmd.Env, envStatsFD+"=3")
		if err := cmd.Start(); err != nil {
			statsR.Close()
			statsW.Close()
			return fmt.Errorf("launch: spawn rank %d: %w: %w", r, cerr.ErrTransport, err)
		}
		statsW.Close()
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			defer statsR.Close()
			protocol.ReadStatsFrames(statsR, observe)
		}()
		if cfg.Verbose {
			note := ""
			if killAt > 0 {
				note = fmt.Sprintf(" (SIGKILL at op %d)", killAt)
			}
			logf("c3launch: incarnation %d: rank %d is pid %d%s\n", incarnation, r, cmd.Process.Pid, note)
		}
		liveMu.Lock()
		cmds[r] = cmd
		live[r] = true
		liveMu.Unlock()
		watchWG.Add(1)
		go func(r int, cmd *exec.Cmd) {
			defer watchWG.Done()
			err := cmd.Wait()
			liveMu.Lock()
			live[r] = false
			liveMu.Unlock()
			ws := cmd.ProcessState
			exits <- workerExit{
				rank:   r,
				err:    err,
				desc:   ws.String(),
				code:   ws.ExitCode(),
				signal: !ws.Exited(),
			}
		}(r, cmd)
		return nil
	}

	incarnation := 0
	if err := os.MkdirAll(filepath.Join(rdvRoot, "0"), 0o755); err != nil {
		return nil, fmt.Errorf("launch: rendezvous dir: %w: %w", cerr.ErrSpec, err)
	}
	kill := killMapFor(cfg.Kills, 0)
	for r := 0; r < n; r++ {
		if err := spawn(r, 0, kill[r]); err != nil {
			return nil, err
		}
	}
	res.Incarnations = append(res.Incarnations, newIncarnationReport(n))
	cur := func() *IncarnationReport { return &res.Incarnations[len(res.Incarnations)-1] }
	for r := range cmds {
		cur().PIDs[r] = cmds[r].Process.Pid
	}

	// handleExit folds one exit event into the current report and
	// classifies it. A hard failure (anything but exit 0, the rollback
	// code, or a signal) ends the run.
	var hardCauses []error
	rollbackPending := false
	handleExit := func(e workerExit) {
		cur().Exits[e.rank] = e.desc
		cur().Codes[e.rank] = e.code
		switch {
		case e.err == nil:
			done[e.rank] = true
		case e.signal || e.code == exitRollback:
			rollbackPending = true
			if cfg.Verbose {
				logf("c3launch: incarnation %d: rank %d exited: %s\n", incarnation, e.rank, e.desc)
			}
		default:
			cat := cerr.FromExitCode(e.code)
			if cat == nil {
				cat = cerr.ErrProgram
			}
			hardCauses = append(hardCauses, fmt.Errorf("rank %d: %w (%s)", e.rank, cat, e.desc))
		}
	}
	allDone := func() bool {
		for _, d := range done {
			if !d {
				return false
			}
		}
		return true
	}

	for {
		handleExit(<-exits)
		// A death burst (multi-rank kill, cascade) should cost one rollback
		// round, not one per corpse: linger briefly for co-dying ranks.
		if rollbackPending {
			settle := time.After(200 * time.Millisecond)
		drain:
			for {
				select {
				case e := <-exits:
					handleExit(e)
				case <-settle:
					break drain
				}
			}
		}
		if cause := ctx.Err(); cause != nil {
			killLive()
			return nil, fmt.Errorf("launch: run canceled: %w: %w", cerr.ErrCanceled, cause)
		}
		if len(hardCauses) > 0 {
			killLive()
			cat := cerr.Category(errors.Join(hardCauses...))
			return nil, fmt.Errorf("launch: incarnation %d failed hard: %w: %s",
				incarnation, cat, strings.Join(nonEmpty(cur().Exits), ", "))
		}
		if !rollbackPending {
			if !allDone() {
				continue
			}
			res.Output = rank0Out.String()
			res.Stats = agg.FinalStats()
			res.PerRank = agg.PerRank()
			if cleanupWork {
				os.RemoveAll(cfg.WorkDir)
			}
			return res, nil
		}

		// Rollback round: abort the dead incarnation's mesh, gather the
		// recovery plan once, publish each rank's slice, respawn only the
		// ranks whose processes are gone.
		res.Restarts++
		if res.Restarts > cfg.MaxRestarts {
			killLive()
			return nil, fmt.Errorf("%w (%d)", ErrTooManyRestarts, cfg.MaxRestarts)
		}
		epoch := committedEpoch(cfg.StoreDir)
		cur().RecoveredEpoch = epoch
		res.RecoveredEpochs = append(res.RecoveredEpochs, epoch)
		if cfg.OnRestart != nil {
			cfg.OnRestart(res.Restarts)
		}
		if err := writeMarker(filepath.Join(rdvRoot, strconv.Itoa(incarnation)), abortMarker); err != nil {
			killLive()
			return nil, fmt.Errorf("launch: abort incarnation %d: %w: %w", incarnation, cerr.ErrStore, err)
		}
		incarnation++
		kill = killMapFor(cfg.Kills, incarnation)
		if err := writeRecoveryFiles(cfg, rdvRoot, incarnation, epoch, kill); err != nil {
			killLive()
			return nil, err
		}
		if cfg.Verbose {
			logf("c3launch: incarnation %d: recovery plan published (epoch %d)\n", incarnation, epoch)
		}
		res.Incarnations = append(res.Incarnations, newIncarnationReport(n))
		rollbackPending = false
		for r := 0; r < n; r++ {
			done[r] = false
			liveMu.Lock()
			alive := live[r]
			liveMu.Unlock()
			if !alive {
				// The kill plan rides in the recovery file for every rank of
				// this incarnation (survivors included); no env needed.
				if err := spawn(r, incarnation, 0); err != nil {
					killLive()
					return nil, err
				}
			}
			cur().PIDs[r] = cmds[r].Process.Pid
		}
	}
}

// killMapFor extracts one incarnation's kill schedule.
func killMapFor(kills []KillSpec, incarnation int) map[int]int64 {
	m := map[int]int64{}
	for _, k := range kills {
		if k.Incarnation == incarnation {
			m[k.Rank] = k.AtOp
		}
	}
	return m
}

func nonEmpty(ss []string) []string {
	var out []string
	for _, s := range ss {
		if s != "" {
			out = append(out, s)
		}
	}
	return out
}

// rankRecoveryFile is the gob schema of recovery.<rank>: one rank's slice
// of the launcher-side recovery gather plus its kill plan for the
// incarnation. Epoch -1 means "fresh start, do not restore".
type rankRecoveryFile struct {
	Epoch    int
	Suppress []uint32
	Replicas map[string][]byte
	KillAtOp int64
}

// writeRecoveryFiles gathers the recovery plan for the committed epoch
// (O(ranks) sidecar reads; skipped entirely when nothing committed) and
// publishes each rank's slice plus the GO marker into the incarnation's
// rendezvous directory. GO is written last: a worker that sees it may
// trust every recovery file is in place.
func writeRecoveryFiles(cfg Config, rdvRoot string, incarnation, epoch int, kill map[int]int64) error {
	dir := filepath.Join(rdvRoot, strconv.Itoa(incarnation))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("launch: rendezvous dir: %w: %w", cerr.ErrSpec, err)
	}
	var plan *protocol.RecoveryPlan
	if epoch >= 0 {
		disk, err := storage.NewDisk(cfg.StoreDir)
		if err != nil {
			return fmt.Errorf("launch: open store for recovery gather: %w: %w", cerr.ErrStore, err)
		}
		plan, err = protocol.GatherRecovery(storage.NewCheckpointStore(disk), epoch, cfg.Ranks)
		if err != nil {
			return fmt.Errorf("launch: gather recovery plan: %w: %w", cerr.ErrStore, err)
		}
	}
	for r := 0; r < cfg.Ranks; r++ {
		f := rankRecoveryFile{Epoch: -1, KillAtOp: kill[r]}
		if plan != nil {
			f.Epoch = epoch
			f.Suppress = plan.Suppress[r]
			f.Replicas = plan.Replicas
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&f); err != nil {
			return fmt.Errorf("launch: encode recovery file: %w: %w", cerr.ErrStore, err)
		}
		name := fmt.Sprintf("%s.%04d", recoveryPrefix, r)
		if err := writeFileAtomic(dir, name, buf.Bytes()); err != nil {
			return fmt.Errorf("launch: write %s: %w: %w", name, cerr.ErrStore, err)
		}
	}
	if err := writeMarker(dir, goMarker); err != nil {
		return fmt.Errorf("launch: write GO marker: %w: %w", cerr.ErrStore, err)
	}
	return nil
}

func writeMarker(dir, name string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return writeFileAtomic(dir, name, []byte("1"))
}

func writeFileAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "."+name+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, name))
}

// readRecoveryFile loads one rank's recovery slice for an incarnation.
func readRecoveryFile(rdvParent string, incarnation, rank int) (*rankRecoveryFile, error) {
	path := filepath.Join(rdvParent, strconv.Itoa(incarnation), fmt.Sprintf("%s.%04d", recoveryPrefix, rank))
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f rankRecoveryFile
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&f); err != nil {
		return nil, fmt.Errorf("decode %s: %w", path, err)
	}
	return &f, nil
}

// awaitNextIncarnation polls the rendezvous tree for a GO marker of an
// incarnation newer than cur, returning the newest found. ok is false on
// timeout — the launcher never published a successor, so the caller should
// exit with the rollback code and let itself be respawned.
func awaitNextIncarnation(rdvParent string, cur int, timeout time.Duration) (next int, ok bool) {
	deadline := time.Now().Add(timeout)
	for {
		best := -1
		entries, _ := os.ReadDir(rdvParent)
		for _, ent := range entries {
			i, err := strconv.Atoi(ent.Name())
			if err != nil || i <= cur || i <= best {
				continue
			}
			if _, err := os.Stat(filepath.Join(rdvParent, ent.Name(), goMarker)); err == nil {
				best = i
			}
		}
		if best >= 0 {
			return best, true
		}
		if time.Now().After(deadline) {
			return 0, false
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// abortedMesh reports whether the launcher abandoned an incarnation's mesh.
func abortedMesh(rdv string) bool {
	_, err := os.Stat(filepath.Join(rdv, abortMarker))
	return err == nil
}

func doomedNote(kill map[int]int64, r int) string {
	if op, ok := kill[r]; ok {
		return fmt.Sprintf(" (SIGKILL at op %d)", op)
	}
	return ""
}

// prefixWriter prefixes every line with the rank tag so interleaved worker
// stderr stays attributable; the shared mutex keeps ranks' lines whole.
type prefixWriter struct {
	w      io.Writer
	mu     *sync.Mutex
	prefix string
	mid    bool // last write ended mid-line
}

func (p *prefixWriter) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(b)
	for len(b) > 0 {
		if !p.mid {
			io.WriteString(p.w, p.prefix)
			p.mid = true
		}
		i := bytes.IndexByte(b, '\n')
		if i < 0 {
			p.w.Write(b)
			break
		}
		p.w.Write(b[:i+1])
		p.mid = false
		b = b[i+1:]
	}
	return n, nil
}

// --- worker role ---

// IsWorker reports whether this process was spawned as a launch worker.
// Binaries that can act as launchers must check this first thing in main.
func IsWorker() bool { return os.Getenv(envWorker) == "1" }

// WorkerApp carries the application-level configuration a worker main
// resolves from its (re-parsed) flags.
type WorkerApp struct {
	Prog     engine.Program
	EveryN   int
	Interval time.Duration
	Seed     int64
	Debug    bool
	// Mode selects the protocol version. Recovery requires Full — a
	// killed run in any other mode fails hard — so production launchers
	// pass Full; the fig8 harness sweeps the other versions for fault-free
	// overhead measurements.
	Mode protocol.Mode
	// SyncCheckpoint disables the asynchronous checkpoint pipeline;
	// ChunkSize sets the chunked state writer's granularity (0 = default);
	// FullFreeze opts out of the default dirty-region incremental freeze
	// (when off, the program must honor the Touch write-intent contract);
	// FreezeCrossCheck, FlushBandwidth, NoFlushGovernor and ChunkPipeline
	// mirror the engine.WorkerConfig fields of the same names.
	SyncCheckpoint   bool
	ChunkSize        int
	FullFreeze       bool
	FreezeCrossCheck bool
	FlushBandwidth   float64
	NoFlushGovernor  bool
	ChunkPipeline    int
	// WrapStore, when non-nil, wraps the worker's stable store before the
	// engine sees it. Fault-injection tests use it to fail or delay
	// specific writes (e.g. SIGKILL mid checkpoint flush); production
	// workers leave it nil.
	WrapStore func(storage.Stable) storage.Stable
}

// WorkerMain runs the worker role to completion and exits the process with
// the launch protocol's exit code — cerr.ExitCode of the worker's error, so
// the launcher recovers the failure category. It never returns.
func WorkerMain(app WorkerApp) {
	code, err := workerRun(app)
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker: %v\n", err)
	}
	os.Exit(code)
}

func workerRun(app WorkerApp) (int, error) {
	rank, err1 := envInt(envRank)
	ranks, err2 := envInt(envRanks)
	incarnation, err3 := envInt(envIncarnation)
	if err := errors.Join(err1, err2, err3); err != nil {
		return cerr.CodeSpec, fmt.Errorf("%w: %w", cerr.ErrSpec, err)
	}
	rdv := os.Getenv(envRendezvous)
	storeDir := os.Getenv(envStore)
	if rdv == "" || storeDir == "" {
		return cerr.CodeSpec, fmt.Errorf("%w: missing %s or %s", cerr.ErrSpec, envRendezvous, envStore)
	}
	// A malformed fault-injection or detector variable must be a hard error:
	// silently ignoring it would turn a scheduled-kill run into a fault-free
	// run with no diagnostic.
	detectorMS := 2000
	if v := os.Getenv(envDetector); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return cerr.CodeSpec, fmt.Errorf("%w: bad env %s=%q: want a positive integer", cerr.ErrSpec, envDetector, v)
		}
		detectorMS = n
	}
	var killAtOp int64
	if v := os.Getenv(envKillAtOp); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n <= 0 { // the engine treats <=0 as "no kill"
			return cerr.CodeSpec, fmt.Errorf("%w: bad env %s=%q: want a positive integer", cerr.ErrSpec, envKillAtOp, v)
		}
		killAtOp = n
	}

	// The stats stream: frames go to the launcher on the inherited pipe.
	// Writes happen from the rank's own goroutine only, and losing the
	// stream (launcher gone) must not fail the computation, so errors are
	// ignored.
	var statsSink func(protocol.StatsFrame)
	if v := os.Getenv(envStatsFD); v != "" {
		fd, err := strconv.Atoi(v)
		if err != nil || fd < 3 {
			return cerr.CodeSpec, fmt.Errorf("%w: bad env %s=%q: want a file descriptor ≥ 3", cerr.ErrSpec, envStatsFD, v)
		}
		statsPipe := os.NewFile(uintptr(fd), "ccift-stats")
		defer statsPipe.Close()
		statsSink = func(f protocol.StatsFrame) { _ = protocol.WriteStatsFrame(statsPipe, f) }
	}

	disk, err := storage.NewDisk(storeDir)
	if err != nil {
		return cerr.CodeStore, fmt.Errorf("%w: %w", cerr.ErrStore, err)
	}
	var store storage.Stable = disk
	if app.WrapStore != nil {
		store = app.WrapStore(store)
	}

	// Localized recovery: this process outlives its incarnation. When the
	// world dies, it keeps its in-memory checkpoint copies, waits for the
	// launcher to publish the next incarnation's recovery files and GO
	// marker, and rejoins the new mesh in-process instead of exiting to be
	// re-exec'd. Non-localized (whole-world) workers run exactly one
	// incarnation and exit with the rollback code on any death.
	localized := os.Getenv(envLocalized) == "1"
	rdvParent := filepath.Dir(rdv)
	// How long a surviving worker waits for the launcher's GO before
	// giving up and exiting with the rollback code (the launcher then
	// re-execs it like a dead rank, so a lost marker costs one restart,
	// not a hang). Generous: the launcher publishes right after its
	// settle-drain and an O(ranks) gather.
	graceWait := 4*time.Duration(detectorMS)*time.Millisecond + 10*time.Second

	var rec *protocol.RankRecovery
	var retained []*protocol.RetainedState
	loadRecovery := func(inc int) (int, error) {
		f, err := readRecoveryFile(rdvParent, inc, rank)
		if err != nil {
			return cerr.CodeStore, fmt.Errorf("%w: read recovery file: %w", cerr.ErrStore, err)
		}
		rec = &protocol.RankRecovery{Epoch: f.Epoch, Suppress: f.Suppress, Replicas: f.Replicas}
		killAtOp = f.KillAtOp
		return 0, nil
	}
	if localized {
		if incarnation > 0 {
			// A replacement spawned mid-job: its recovery inputs (and kill
			// plan) come from the launcher's published file, not the env.
			if code, err := loadRecovery(incarnation); err != nil {
				return code, err
			}
		} else {
			rec = &protocol.RankRecovery{Epoch: -1} // fresh start
		}
	}

	for {
		var publish func(int, string) error
		var lookup func(int) (string, error)
		if localized {
			publish, lookup = tcptransport.FileRendezvousCancel(rdv, 30*time.Second,
				func() bool { return abortedMesh(rdv) })
		} else {
			publish, lookup = tcptransport.FileRendezvous(rdv, 30*time.Second)
		}
		tr, err := tcptransport.New(tcptransport.Config{
			Rank: rank, Size: ranks,
			Publish: publish, Lookup: lookup,
			SuspectTimeout: time.Duration(detectorMS) * time.Millisecond,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "tcptransport: "+format+"\n", args...)
			},
		})
		if err != nil {
			return cerr.CodeTransport, fmt.Errorf("%w: %w", cerr.ErrTransport, err)
		}

		res, err := engine.RunWorker(context.Background(), engine.WorkerConfig{
			Rank: rank, Ranks: ranks,
			Incarnation:      incarnation,
			Mode:             app.Mode,
			Store:            store,
			EveryN:           app.EveryN,
			Interval:         app.Interval,
			SyncCheckpoint:   app.SyncCheckpoint,
			ChunkSize:        app.ChunkSize,
			FullFreeze:       app.FullFreeze,
			FreezeCrossCheck: app.FreezeCrossCheck,
			FlushBandwidth:   app.FlushBandwidth,
			NoFlushGovernor:  app.NoFlushGovernor,
			ChunkPipeline:    app.ChunkPipeline,
			KillAtOp:         killAtOp,
			Kill: func() {
				// A real stopping failure: no deferred cleanup, no recover, no
				// goodbye on the sockets — the kernel reaps the process and
				// peers see connection resets.
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
				select {} // unreachable: SIGKILL cannot be handled
			},
			Seed:              app.Seed,
			Debug:             app.Debug,
			NewTransport:      tr.Attach,
			Start:             tr.Start,
			AnnounceDone:      tr.AnnounceDone,
			AllDone:           tr.AllDone,
			StatsSink:         statsSink,
			Recovery:          rec,
			Retained:          retained,
			RetainForRecovery: localized,
		}, app.Prog)
		tr.Close()

		rejoin := false
		switch {
		case errors.Is(err, engine.ErrIncarnationDead):
			if !localized {
				if res.RecoveredEpoch >= 0 {
					fmt.Fprintf(os.Stderr, "rank %d: incarnation %d (recovered from epoch %d) died; awaiting re-spawn\n",
						rank, incarnation, res.RecoveredEpoch)
				}
				return exitRollback, nil
			}
			rejoin = true
		case err != nil && localized && errors.Is(err, cerr.ErrTransport) && abortedMesh(rdv):
			// Mesh formation lost the race with a newer incarnation: the
			// launcher aborted this one after another death. Rejoin.
			rejoin = true
		case err != nil:
			return cerr.ExitCode(err), err
		}
		if !rejoin {
			if rank == 0 {
				if res.RecoveredEpoch >= 0 {
					fmt.Fprintf(os.Stderr, "rank 0: incarnation %d recovered from global checkpoint %d\n", incarnation, res.RecoveredEpoch)
				}
				fmt.Printf("result: %v\n", res.Value)
			}
			return exitOK, nil
		}
		if len(res.Retained) > 0 {
			retained = res.Retained
		}
		fmt.Fprintf(os.Stderr, "rank %d: incarnation %d died; awaiting localized restart\n", rank, incarnation)
		next, ok := awaitNextIncarnation(rdvParent, incarnation, graceWait)
		if !ok {
			// The launcher never published a successor (it may be tearing the
			// world down, or the marker was lost): fall back to the
			// whole-world contract and let it re-exec this rank.
			return exitRollback, nil
		}
		incarnation = next
		rdv = filepath.Join(rdvParent, strconv.Itoa(incarnation))
		if code, err := loadRecovery(incarnation); err != nil {
			return code, err
		}
	}
}

func envInt(key string) (int, error) {
	v := os.Getenv(key)
	if v == "" {
		return 0, fmt.Errorf("missing env %s", key)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad env %s=%q: %w", key, v, err)
	}
	return n, nil
}
