package launch_test

// End-to-end distributed recovery: the test binary re-execs itself as the
// worker (TestMain's IsWorker branch), so every rank is a real OS process
// and a kill plan is a real SIGKILL. The assertions pin the acceptance
// criteria: the doomed rank demonstrably dies by signal, the survivors roll
// the job back, and the recovered run's output is identical to a fault-free
// run's.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"

	"ccift/internal/apps"
	"ccift/internal/launch"
	"ccift/internal/protocol"
	"ccift/internal/storage"
)

// Worker parameters shared by every spawned rank (the worker rebuilds the
// same program the launcher-side assertions assume).
const (
	testRanks  = 4
	testSize   = 64
	testIters  = 40
	testEveryN = 10
)

// envVariant selects the worker configuration for a whole launch.Run: the
// launcher process sets it (t.Setenv) and every spawned worker inherits it.
//
//   - "" (default): the asynchronous checkpoint pipeline, as production
//     workers run it.
//   - "sync": the classic blocking write path. The op-calibrated
//     commit-timing assertions (kill at op N ⇒ a checkpoint has committed)
//     only hold when the rank blocks through serialize+fsync; under async
//     the rank races ahead of its own flush, so those tests pin the sync
//     baseline.
//   - "kill-mid-flush": async, and the doomed rank SIGKILLs itself the
//     moment its epoch-2 state manifest write begins — a real process
//     death with a checkpoint flush in flight by construction. Runs the
//     long program: epoch 2 must demonstrably begin while every rank is
//     still computing, which the short program cannot guarantee (a rank
//     that has finished its loop takes no further checkpoints).
//   - "kill-mid-flush-incremental": the same crash window with dirty-region
//     freezing enabled, so the flush that dies is an incremental epoch
//     sharing the previous epoch's frozen slabs; recovery must still come
//     from the prior commit with identical output (laplace honors the
//     Touch contract).
//   - "long-baseline": the long program fault-free, for the mid-flush
//     tests' output comparison.
const envVariant = "CCIFT_TEST_WORKER_VARIANT"

// testLongIters sizes the "kill-mid-flush"/"long-baseline" program so the
// epoch-1 commit → epoch-2 checkpoint sequence (a few storage fsyncs)
// completes while hundreds of iterations still remain, on any plausibly
// slow machine.
const testLongIters = 400

// killOnPut SIGKILLs the process when a write to key begins: the flusher
// goroutine dies mid-checkpoint, exactly like a machine crash during the
// overlapped state write.
type killOnPut struct {
	storage.Stable
	key string
}

func (k killOnPut) Put(key string, data []byte) error {
	if key == k.key {
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {} // unreachable: SIGKILL cannot be handled
	}
	return k.Stable.Put(key, data)
}

func TestMain(m *testing.M) {
	if launch.IsWorker() {
		variant := os.Getenv(envVariant)
		iters := testIters
		if strings.HasPrefix(variant, "kill-mid-flush") || variant == "long-baseline" {
			iters = testLongIters
		}
		prog, _, err := apps.Build("laplace", testRanks, testSize, iters)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		app := launch.WorkerApp{Prog: prog, EveryN: testEveryN, Mode: protocol.Full}
		switch variant {
		case "sync":
			app.SyncCheckpoint = true
		case "kill-mid-flush", "kill-mid-flush-incremental":
			app.FullFreeze = variant != "kill-mid-flush-incremental"
			// Only the first incarnation's rank 2 is doomed: epoch numbers
			// restart below the trigger after recovery, so an unconditional
			// trap would kill every re-spawn at its epoch-2 flush forever.
			if os.Getenv("CCIFT_RANK") == "2" && os.Getenv("CCIFT_INCARNATION") == "0" {
				app.WrapStore = func(s storage.Stable) storage.Stable {
					return killOnPut{Stable: s, key: storage.StateKey(2, 2)}
				}
			}
		}
		launch.WorkerMain(app)
	}
	os.Exit(m.Run())
}

func runLaplace(t *testing.T, kills []launch.KillSpec) *launch.Result {
	t.Helper()
	res, err := launch.Run(launch.Config{
		Ranks:  testRanks,
		Kills:  kills,
		Stderr: io.Discard,
	})
	if err != nil {
		t.Fatalf("launch.Run(kills=%v): %v", kills, err)
	}
	return res
}

func TestDistributedFaultFree(t *testing.T) {
	res := runLaplace(t, nil)
	if res.Restarts != 0 {
		t.Fatalf("fault-free run restarted %d times", res.Restarts)
	}
	if !strings.HasPrefix(res.Output, "result: ") {
		t.Fatalf("rank 0 output %q, want a result line", res.Output)
	}
	for r, e := range res.Incarnations[0].Exits {
		if e != "exit status 0" {
			t.Fatalf("rank %d exited %q in a fault-free run", r, e)
		}
	}
}

func TestDistributedSIGKILLRecovery(t *testing.T) {
	// Sync write path: the late-kill assertion below (op 300 ⇒ a commit has
	// landed) is calibrated against ranks that block through their
	// checkpoint write. TestDistributedKillMidFlush covers the async
	// pipeline's crash window.
	t.Setenv(envVariant, "sync")
	baseline := runLaplace(t, nil)

	// Kill rank 2's process at its op 100 — before the first commit, so the
	// re-spawned incarnation restarts from the beginning.
	early := runLaplace(t, []launch.KillSpec{{Rank: 2, AtOp: 100, Incarnation: 0}})
	if early.Restarts != 1 {
		t.Fatalf("early kill: %d restarts, want 1", early.Restarts)
	}
	if got := early.Incarnations[0].Exits[2]; got != "signal: killed" {
		t.Fatalf("doomed rank exited %q, want a real SIGKILL (signal: killed)", got)
	}
	// Localized recovery (the default): survivors never exit mid-job — they
	// park, receive the launcher's recovery slice, and rejoin the next
	// incarnation's mesh in the same OS process.
	for _, r := range []int{0, 1, 3} {
		if got := early.Incarnations[0].Exits[r]; got != "" {
			t.Fatalf("survivor rank %d exited %q in incarnation 0, want no exit (localized recovery keeps survivors alive)", r, got)
		}
		if p0, p1 := early.Incarnations[0].PIDs[r], early.Incarnations[1].PIDs[r]; p0 != p1 {
			t.Fatalf("survivor rank %d changed pid %d -> %d across the restart; localized recovery must not re-exec survivors", r, p0, p1)
		}
	}
	if p0, p1 := early.Incarnations[0].PIDs[2], early.Incarnations[1].PIDs[2]; p0 == p1 {
		t.Fatalf("doomed rank kept pid %d across the restart; a SIGKILLed rank must be a fresh process", p0)
	}
	if early.Output != baseline.Output {
		t.Fatalf("recovered output %q != fault-free output %q", early.Output, baseline.Output)
	}

	// Kill late enough that a global checkpoint has committed: recovery
	// must restore from it rather than restarting from scratch.
	late := runLaplace(t, []launch.KillSpec{{Rank: 2, AtOp: 300, Incarnation: 0}})
	if late.Restarts != 1 {
		t.Fatalf("late kill: %d restarts, want 1", late.Restarts)
	}
	if len(late.RecoveredEpochs) != 1 || late.RecoveredEpochs[0] < 1 {
		t.Fatalf("late kill recovered epochs %v, want one committed epoch >= 1", late.RecoveredEpochs)
	}
	if late.Output != baseline.Output {
		t.Fatalf("checkpoint-recovered output %q != fault-free output %q", late.Output, baseline.Output)
	}
}

// TestDistributedWholeWorldRestart pins the fallback path: with
// WholeWorldRestart set, a single death tears down every rank (survivors
// exit with the rollback code) and the whole incarnation is re-execed, as
// the launcher behaved before localized recovery.
func TestDistributedWholeWorldRestart(t *testing.T) {
	t.Setenv(envVariant, "sync")
	baseline := runLaplace(t, nil)
	res, err := launch.Run(launch.Config{
		Ranks:             testRanks,
		Kills:             []launch.KillSpec{{Rank: 2, AtOp: 100, Incarnation: 0}},
		WholeWorldRestart: true,
		Stderr:            io.Discard,
	})
	if err != nil {
		t.Fatalf("launch.Run: %v", err)
	}
	if res.Restarts != 1 {
		t.Fatalf("%d restarts, want 1", res.Restarts)
	}
	if got := res.Incarnations[0].Exits[2]; got != "signal: killed" {
		t.Fatalf("doomed rank exited %q, want signal: killed", got)
	}
	for _, r := range []int{0, 1, 3} {
		if got := res.Incarnations[0].Exits[r]; got != "exit status 3" {
			t.Fatalf("survivor rank %d exited %q, want rollback exit (status 3) under whole-world restart", r, got)
		}
		if p0, p1 := res.Incarnations[0].PIDs[r], res.Incarnations[1].PIDs[r]; p0 == p1 {
			t.Fatalf("rank %d kept pid %d across a whole-world restart; every rank must be re-execed", r, p0)
		}
	}
	if res.Output != baseline.Output {
		t.Fatalf("recovered output %q != fault-free output %q", res.Output, baseline.Output)
	}
}

// TestReusedStoreIgnoresStaleCommit: a checkpoint directory left over from
// a previous job must not leak into a new one. The first job commits
// checkpoints into the shared store; the second job (same directory) is
// killed before its own first commit, so its rollback must restart from
// the beginning — RecoveredEpochs[-1] would instead name the previous
// job's final epoch if the stale commit record were honored.
func TestReusedStoreIgnoresStaleCommit(t *testing.T) {
	t.Setenv(envVariant, "sync") // op-calibrated commit timing, as above
	baseline := runLaplace(t, nil)
	store := filepath.Join(t.TempDir(), "ckpt")

	first, err := launch.Run(launch.Config{
		Ranks:    testRanks,
		StoreDir: store,
		Kills:    []launch.KillSpec{{Rank: 2, AtOp: 300, Incarnation: 0}},
		Stderr:   io.Discard,
	})
	if err != nil {
		t.Fatalf("first job: %v", err)
	}
	if len(first.RecoveredEpochs) != 1 || first.RecoveredEpochs[0] < 1 {
		t.Fatalf("first job recovered epochs %v, want a committed epoch (the store must hold commits)", first.RecoveredEpochs)
	}

	second, err := launch.Run(launch.Config{
		Ranks:    testRanks,
		StoreDir: store,
		Kills:    []launch.KillSpec{{Rank: 2, AtOp: 100, Incarnation: 0}},
		Stderr:   io.Discard,
	})
	if err != nil {
		t.Fatalf("second job: %v", err)
	}
	if len(second.RecoveredEpochs) != 1 || second.RecoveredEpochs[0] != -1 {
		t.Fatalf("second job recovered epochs %v, want [-1]: the previous job's commit record leaked in", second.RecoveredEpochs)
	}
	if second.Output != baseline.Output {
		t.Fatalf("second job output %q != fault-free output %q", second.Output, baseline.Output)
	}
}

// TestDistributedKillMidFlush: SIGKILL a rank while its asynchronous
// checkpoint flush is in flight — the kill fires from inside the flusher's
// epoch-2 state-manifest write, so the flush is provably incomplete — and
// assert the job recovers from the previous committed epoch with output
// identical to a fault-free run. Epoch 1 is committed by protocol
// invariant before any rank can begin checkpoint 2 (the initiator starts a
// new global checkpoint only after the previous one's commit record is
// durable), and epoch 2 can never commit because the dead rank's manifest
// was never written: recovery from exactly epoch 1 is deterministic.
func TestDistributedKillMidFlush(t *testing.T) {
	t.Setenv(envVariant, "long-baseline")
	baseline := runLaplace(t, nil)
	// The same crash window twice: full freezes, then dirty-region
	// incremental freezes — a real SIGKILL inside an incremental epoch
	// whose flush shares the previous epoch's slabs must still recover
	// from the prior commit with byte-identical output.
	for _, variant := range []string{"kill-mid-flush", "kill-mid-flush-incremental"} {
		t.Run(variant, func(t *testing.T) {
			t.Setenv(envVariant, variant)
			res, err := launch.Run(launch.Config{Ranks: testRanks, Stderr: io.Discard})
			if err != nil {
				t.Fatalf("launch.Run: %v", err)
			}
			if res.Restarts != 1 {
				t.Fatalf("%d restarts, want 1", res.Restarts)
			}
			if got := res.Incarnations[0].Exits[2]; got != "signal: killed" {
				t.Fatalf("doomed rank exited %q, want signal: killed", got)
			}
			if len(res.RecoveredEpochs) != 1 || res.RecoveredEpochs[0] != 1 {
				t.Fatalf("recovered epochs %v, want [1]: a crash mid-flush must fall back to the previous committed epoch, never the one in flight", res.RecoveredEpochs)
			}
			if res.Output != baseline.Output {
				t.Fatalf("recovered output %q != fault-free output %q", res.Output, baseline.Output)
			}
		})
	}
}

// TestDistributedStatsCrossProcess pins the stats-aggregation regression:
// per-rank protocol counters must cross the process boundary, so a
// distributed Result carries a populated snapshot for every rank — the
// exact gap that left fig8 -distributed printing empty stats tables.
func TestDistributedStatsCrossProcess(t *testing.T) {
	var mu sync.Mutex
	var frames []protocol.StatsFrame
	res, err := launch.Run(launch.Config{
		Ranks:  testRanks,
		Stderr: io.Discard,
		StatsSink: func(f protocol.StatsFrame) {
			mu.Lock()
			frames = append(frames, f)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("launch.Run: %v", err)
	}
	if len(res.Stats) != testRanks || len(res.PerRank) != testRanks {
		t.Fatalf("Stats has %d entries, PerRank %d, want %d each",
			len(res.Stats), len(res.PerRank), testRanks)
	}
	for r, s := range res.Stats {
		if s.MessagesSent <= 0 {
			t.Errorf("rank %d: MessagesSent = %d, want > 0 (stats did not cross the process boundary)",
				r, s.MessagesSent)
		}
		if s.CheckpointsTaken <= 0 {
			t.Errorf("rank %d: CheckpointsTaken = %d, want > 0", r, s.CheckpointsTaken)
		}
		if pr := res.PerRank[r]; pr.Rank != r || pr.Incarnation != 0 || pr.Stats != s {
			t.Errorf("PerRank[%d] = {rank %d inc %d}, disagrees with Stats[%d]", r, pr.Rank, pr.Incarnation, r)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(frames) < testRanks {
		t.Fatalf("StatsSink saw %d frames, want at least one per rank", len(frames))
	}
}

// TestDistributedStatsSurviveRestart: after a SIGKILL and rollback, the
// final Result reports the FINAL incarnation's counters for every rank.
func TestDistributedStatsSurviveRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns two incarnations of real processes")
	}
	res := runLaplace(t, []launch.KillSpec{{Rank: 2, AtOp: 100, Incarnation: 0}})
	if res.Restarts != 1 {
		t.Fatalf("%d restarts, want 1", res.Restarts)
	}
	if len(res.PerRank) != testRanks {
		t.Fatalf("PerRank has %d entries, want %d", len(res.PerRank), testRanks)
	}
	for r, pr := range res.PerRank {
		if pr.Incarnation != 1 {
			t.Errorf("rank %d: final stats from incarnation %d, want 1 (the recovered run)", r, pr.Incarnation)
		}
		if pr.Stats.MessagesSent <= 0 {
			t.Errorf("rank %d: MessagesSent = %d, want > 0", r, pr.Stats.MessagesSent)
		}
	}
}

func TestDistributedKillChain(t *testing.T) {
	if testing.Short() {
		t.Skip("three incarnations of real processes; covered by the single-kill test in -short")
	}
	baseline := runLaplace(t, nil)
	res := runLaplace(t, []launch.KillSpec{
		{Rank: 2, AtOp: 300, Incarnation: 0},
		{Rank: 1, AtOp: 80, Incarnation: 1}, // recovery from recovery
	})
	if res.Restarts != 2 {
		t.Fatalf("%d restarts, want 2", res.Restarts)
	}
	if got := res.Incarnations[1].Exits[1]; got != "signal: killed" {
		t.Fatalf("second incarnation's doomed rank exited %q, want signal: killed", got)
	}
	if res.Output != baseline.Output {
		t.Fatalf("twice-recovered output %q != fault-free output %q", res.Output, baseline.Output)
	}
}
