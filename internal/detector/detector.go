// Package detector simulates the distributed failure detector the paper's
// problem statement assumes ("a mechanism such as a distributed failure
// detector [8] for detecting failed processes"): each process's runtime
// emits periodic heartbeats, and a process unheard-from for longer than
// the suspicion timeout is suspected of having stopped.
//
// Under the stopping-failure model this heartbeat detector is complete (a
// stopped process stops heartbeating and is eventually suspected) and,
// once timeouts exceed the heartbeat period plus scheduling jitter,
// accurate (a live process keeps beating and is never suspected). The
// engine uses it to trigger rollback instead of relying on the failed
// process announcing its own death, which a real stopped process cannot
// do.
package detector

import (
	"sync"
	"time"

	"ccift/internal/clock"
)

// Detector tracks per-rank heartbeats and derives suspicions.
type Detector struct {
	mu      sync.Mutex
	last    []time.Time
	timeout time.Duration
	clk     clock.Clock
}

// New builds a detector for n ranks with the given suspicion timeout,
// scheduled against clk (nil selects the wall clock; the simulated
// substrate passes its virtual clock so suspicion elapses in virtual
// time). Every rank starts "just heard from", so a process that dies
// before its first heartbeat is still detected one timeout later.
func New(n int, timeout time.Duration, clk clock.Clock) *Detector {
	d := &Detector{last: make([]time.Time, n), timeout: timeout, clk: clock.Or(clk)}
	now := d.clk.Now()
	for i := range d.last {
		d.last[i] = now
	}
	return d
}

// Heartbeat records a sign of life from rank.
func (d *Detector) Heartbeat(rank int) {
	d.mu.Lock()
	d.last[rank] = d.clk.Now()
	d.mu.Unlock()
}

// Suspects returns the ranks unheard-from for longer than the timeout.
func (d *Detector) Suspects() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	cutoff := d.clk.Now().Add(-d.timeout)
	var out []int
	for r, t := range d.last {
		if t.Before(cutoff) {
			out = append(out, r)
		}
	}
	return out
}

// Suspected reports whether any rank is currently suspected.
func (d *Detector) Suspected() bool {
	return len(d.Suspects()) > 0
}

// Monitor runs heartbeat generation and suspicion polling for a set of
// simulated process runtimes. alive reports whether a rank's process still
// exists (its runtime heartbeats independently of application progress, as
// a real MPI daemon does — a process blocked in a receive is alive, a
// stopped one is not). onSuspect fires once, with the first suspect set;
// stop ends monitoring. Monitor returns immediately; ticks are a
// re-arming timer chain on the detector's clock (no dedicated goroutine),
// so under a virtual clock a 30-second suspicion elapses in microseconds.
// The chain ends after onSuspect or once stop is closed.
func (d *Detector) Monitor(period time.Duration, alive func(rank int) bool, onSuspect func([]int), stop <-chan struct{}) {
	n := len(d.last)
	var tick func()
	tick = func() {
		select {
		case <-stop:
			return
		default:
		}
		for r := 0; r < n; r++ {
			if alive(r) {
				d.Heartbeat(r)
			}
		}
		if s := d.Suspects(); len(s) > 0 {
			onSuspect(s)
			return
		}
		d.clk.AfterFunc(period, tick)
	}
	d.clk.AfterFunc(period, tick)
}
