package detector

import (
	"sync/atomic"
	"testing"
	"time"

	"ccift/internal/sim"
)

// All detector tests run on the simulated virtual clock: a clock-only
// simulation free-runs through pending timers, so suspicion timeouts and
// heartbeat schedules elapse in microseconds of wall time and the tests
// contain no real sleeps at all.

func virtualClock(t *testing.T) *sim.Sim {
	t.Helper()
	s := sim.MustNew(0, sim.Scenario{})
	t.Cleanup(s.Stop)
	return s
}

func TestCompleteness(t *testing.T) {
	// A rank that stops heartbeating is eventually suspected.
	s := virtualClock(t)
	clk := s.Clock()
	d := New(3, 20*time.Millisecond, clk)
	for !d.Suspected() {
		if s.Elapsed() > 2*time.Second {
			t.Fatal("silent ranks never suspected")
		}
		d.Heartbeat(0)
		d.Heartbeat(1) // rank 2 is silent
		<-clk.After(time.Millisecond)
	}
	sus := d.Suspects()
	if len(sus) != 1 || sus[0] != 2 {
		t.Fatalf("suspects = %v", sus)
	}
}

func TestAccuracy(t *testing.T) {
	// Ranks heartbeating faster than the timeout are never suspected.
	s := virtualClock(t)
	clk := s.Clock()
	d := New(2, 100*time.Millisecond, clk)
	for s.Elapsed() < 300*time.Millisecond {
		d.Heartbeat(0)
		d.Heartbeat(1)
		if d.Suspected() {
			t.Fatalf("false suspicion: %v", d.Suspects())
		}
		<-clk.After(5 * time.Millisecond)
	}
}

func TestMonitorFiresOnDeath(t *testing.T) {
	s := virtualClock(t)
	clk := s.Clock()
	d := New(2, 30*time.Millisecond, clk)
	var dead atomic.Bool
	fired := make(chan []int, 1)
	stop := make(chan struct{})
	defer close(stop)

	d.Monitor(5*time.Millisecond,
		func(rank int) bool { return rank == 0 || !dead.Load() },
		func(sus []int) { fired <- sus },
		stop)

	<-clk.After(50 * time.Millisecond) // both alive: no suspicion yet
	select {
	case sus := <-fired:
		t.Fatalf("premature suspicion: %v", sus)
	default:
	}

	dead.Store(true) // rank 1's runtime stops
	select {
	case sus := <-fired:
		if len(sus) != 1 || sus[0] != 1 {
			t.Fatalf("suspects = %v", sus)
		}
	case <-time.After(10 * time.Second):
		// Wall-clock backstop only; virtually this fires ~30ms after the
		// death.
		t.Fatal("death never detected")
	}
}

func TestMonitorSuspicionLatencyIsOneTimeout(t *testing.T) {
	// Virtual time makes detection latency exactly measurable: a rank dead
	// from the start is suspected after one timeout (+ at most one period),
	// not sooner.
	s := virtualClock(t)
	clk := s.Clock()
	timeout := 200 * time.Millisecond
	d := New(2, timeout, clk)
	fired := make(chan []int, 1)
	stop := make(chan struct{})
	defer close(stop)

	var at time.Duration
	d.Monitor(timeout/4,
		func(rank int) bool { return rank == 0 },
		func(sus []int) { at = s.Elapsed(); fired <- sus },
		stop)

	select {
	case <-fired:
	case <-time.After(10 * time.Second):
		t.Fatal("death never detected")
	}
	if at < timeout || at > timeout+timeout/2 {
		t.Fatalf("suspected at virtual %v, want within [%v, %v]", at, timeout, timeout+timeout/2)
	}
}

func TestMonitorStops(t *testing.T) {
	s := virtualClock(t)
	clk := s.Clock()
	d := New(1, time.Millisecond, clk)
	stop := make(chan struct{})
	fired := make(chan []int, 1)
	d.Monitor(time.Millisecond, func(int) bool { return true }, func(sus []int) { fired <- sus }, stop)
	close(stop)
	<-clk.After(20 * time.Millisecond)
	select {
	case sus := <-fired:
		t.Fatalf("monitor fired after stop: %v", sus)
	default:
	}
}
