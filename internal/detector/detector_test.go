package detector

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestCompleteness(t *testing.T) {
	// A rank that stops heartbeating is eventually suspected.
	d := New(3, 20*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for !d.Suspected() {
		if time.Now().After(deadline) {
			t.Fatal("silent ranks never suspected")
		}
		d.Heartbeat(0)
		d.Heartbeat(1) // rank 2 is silent
		time.Sleep(time.Millisecond)
	}
	s := d.Suspects()
	if len(s) != 1 || s[0] != 2 {
		t.Fatalf("suspects = %v", s)
	}
}

func TestAccuracy(t *testing.T) {
	// Ranks heartbeating faster than the timeout are never suspected.
	d := New(2, 100*time.Millisecond)
	end := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(end) {
		d.Heartbeat(0)
		d.Heartbeat(1)
		if d.Suspected() {
			t.Fatalf("false suspicion: %v", d.Suspects())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestMonitorFiresOnDeath(t *testing.T) {
	d := New(2, 30*time.Millisecond)
	var dead atomic.Bool
	fired := make(chan []int, 1)
	stop := make(chan struct{})
	defer close(stop)

	d.Monitor(5*time.Millisecond,
		func(rank int) bool { return rank == 0 || !dead.Load() },
		func(s []int) { fired <- s },
		stop)

	time.Sleep(50 * time.Millisecond) // both alive: no suspicion yet
	select {
	case s := <-fired:
		t.Fatalf("premature suspicion: %v", s)
	default:
	}

	dead.Store(true) // rank 1's runtime stops
	select {
	case s := <-fired:
		if len(s) != 1 || s[0] != 1 {
			t.Fatalf("suspects = %v", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("death never detected")
	}
}

func TestMonitorStops(t *testing.T) {
	d := New(1, time.Millisecond)
	stop := make(chan struct{})
	fired := make(chan []int, 1)
	d.Monitor(time.Millisecond, func(int) bool { return true }, func(s []int) { fired <- s }, stop)
	close(stop)
	time.Sleep(20 * time.Millisecond)
	select {
	case s := <-fired:
		t.Fatalf("monitor fired after stop: %v", s)
	default:
	}
}
