// Package trace records protocol events and renders them as the kind of
// space-time diagram the paper uses throughout (Figures 3 and 5): one
// timeline per rank, epoch boundaries marked, messages classified as late,
// intra-epoch or early. It exists for debugging, for the c3run -trace
// flag, and as an executable form of the paper's figures.
package trace

import (
	"fmt"
	"strings"
	"sync"

	"ccift/internal/protocol"
)

// Recorder collects protocol events from all ranks. It implements
// protocol.Tracer and is safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	events []protocol.TraceEvent
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Trace implements protocol.Tracer.
func (r *Recorder) Trace(e protocol.TraceEvent) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of the recorded events in arrival order.
func (r *Recorder) Events() []protocol.TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]protocol.TraceEvent, len(r.events))
	copy(out, r.events)
	return out
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Count returns how many events of the given kind were recorded.
func (r *Recorder) Count(kind protocol.TraceKind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// glyphs maps event kinds to single-character timeline marks. 'x' for a
// local checkpoint follows the paper's figures.
func glyph(k protocol.TraceKind) byte {
	switch k {
	case protocol.TraceSend:
		return 's'
	case protocol.TraceSendSuppressed:
		return '!'
	case protocol.TraceRecvIntra:
		return 'r'
	case protocol.TraceRecvLate:
		return 'L'
	case protocol.TraceRecvEarly:
		return 'E'
	case protocol.TraceReplayLate:
		return '^'
	case protocol.TraceCheckpoint:
		return 'x'
	case protocol.TraceLogFinalized:
		return 'F'
	case protocol.TraceCommit:
		return 'C'
	case protocol.TraceCollective:
		return 'o'
	}
	return '?'
}

// Timeline renders the space-time diagram: one row per rank, one column
// per recorded event (global arrival order), '-' where the rank was idle.
//
//	P0: --s---x--F----C
//	P1: ---s--r-x-L-F--
//	P2: s------x--F----
//
// reads exactly like the paper's Figure 3: checkpoints at 'x', a late
// message logged at 'L', logging finalized at 'F', the global commit at
// 'C'. Long traces are truncated to the last maxCols events.
func (r *Recorder) Timeline(ranks int) string {
	const maxCols = 160
	events := r.Events()
	if len(events) > maxCols {
		events = events[len(events)-maxCols:]
	}
	rows := make([][]byte, ranks)
	for i := range rows {
		rows[i] = []byte(strings.Repeat("-", len(events)))
	}
	for col, e := range events {
		if e.Rank >= 0 && e.Rank < ranks {
			rows[e.Rank][col] = glyph(e.Kind)
		}
	}
	var b strings.Builder
	for i, row := range rows {
		fmt.Fprintf(&b, "P%-2d %s\n", i, row)
	}
	b.WriteString("    s send  r recv  L late(logged)  E early(recorded)  x checkpoint\n")
	b.WriteString("    F log finalized  C commit  o collective  ! send suppressed  ^ late replayed\n")
	return b.String()
}

// Arrows lists every message event with its classification, the textual
// complement to Timeline:
//
//	P <- Q  tag 1 id 3  late (logged)
func (r *Recorder) Arrows() string {
	var b strings.Builder
	for _, e := range r.Events() {
		switch e.Kind {
		case protocol.TraceSend:
			fmt.Fprintf(&b, "P%d -> P%d  tag %d id %d  (%d B, epoch %d)\n",
				e.Rank, e.Peer, e.Tag, e.ID, e.Bytes, e.Epoch)
		case protocol.TraceRecvIntra, protocol.TraceRecvLate, protocol.TraceRecvEarly:
			class := map[protocol.TraceKind]string{
				protocol.TraceRecvIntra: "intra-epoch",
				protocol.TraceRecvLate:  "late (logged)",
				protocol.TraceRecvEarly: "early (ID recorded)",
			}[e.Kind]
			fmt.Fprintf(&b, "P%d <- P%d  tag %d id %d  %s\n",
				e.Rank, e.Peer, e.Tag, e.ID, class)
		case protocol.TraceSendSuppressed:
			fmt.Fprintf(&b, "P%d -x P%d  tag %d id %d  re-send suppressed\n",
				e.Rank, e.Peer, e.Tag, e.ID)
		case protocol.TraceReplayLate:
			fmt.Fprintf(&b, "P%d <~ P%d  tag %d  late message replayed from log\n",
				e.Rank, e.Peer, e.Tag)
		}
	}
	return b.String()
}

// Summary aggregates event counts per kind.
func (r *Recorder) Summary() string {
	counts := map[protocol.TraceKind]int{}
	for _, e := range r.Events() {
		counts[e.Kind]++
	}
	kinds := []protocol.TraceKind{
		protocol.TraceSend, protocol.TraceRecvIntra, protocol.TraceRecvLate,
		protocol.TraceRecvEarly, protocol.TraceCheckpoint, protocol.TraceLogFinalized,
		protocol.TraceCommit, protocol.TraceCollective, protocol.TraceSendSuppressed,
		protocol.TraceReplayLate,
	}
	var b strings.Builder
	for _, k := range kinds {
		if counts[k] > 0 {
			fmt.Fprintf(&b, "%-16s %d\n", k, counts[k])
		}
	}
	return b.String()
}
