package trace

import (
	"strings"
	"testing"

	"ccift/internal/mpi"
	"ccift/internal/protocol"
	"ccift/internal/storage"
)

func TestRecorderCollectsClassifiedEvents(t *testing.T) {
	rec := New()
	w := mpi.NewWorld(2, mpi.Options{})
	store := storage.NewCheckpointStore(storage.NewMemory())
	mk := func(r int) *protocol.Layer {
		return protocol.NewLayer(w.Comm(r), protocol.Config{
			Mode: protocol.Full, Store: store, Debug: true, Tracer: rec,
		})
	}
	P, Q := mk(0), mk(1)

	P.RequestCheckpoint()
	P.Send(1, 1, []byte("will-be-late"))
	P.PotentialCheckpoint()
	Q.PotentialCheckpoint()
	Q.Recv(0, 1) // late

	Q.Send(0, 2, []byte("intra"))
	P.Recv(1, 2) // intra-epoch

	if got := rec.Count(protocol.TraceRecvLate); got != 1 {
		t.Fatalf("late events = %d", got)
	}
	if got := rec.Count(protocol.TraceRecvIntra); got != 1 {
		t.Fatalf("intra events = %d", got)
	}
	if got := rec.Count(protocol.TraceCheckpoint); got != 2 {
		t.Fatalf("checkpoint events = %d", got)
	}
	if got := rec.Count(protocol.TraceSend); got != 2 {
		t.Fatalf("send events = %d", got)
	}
}

func TestTimelineRendersGlyphs(t *testing.T) {
	rec := New()
	w := mpi.NewWorld(2, mpi.Options{})
	store := storage.NewCheckpointStore(storage.NewMemory())
	mk := func(r int) *protocol.Layer {
		return protocol.NewLayer(w.Comm(r), protocol.Config{
			Mode: protocol.Full, Store: store, Tracer: rec,
		})
	}
	P, Q := mk(0), mk(1)
	P.RequestCheckpoint()
	P.Send(1, 1, []byte("m"))
	P.PotentialCheckpoint()
	Q.PotentialCheckpoint()
	Q.Recv(0, 1)

	out := rec.Timeline(2)
	if !strings.Contains(out, "P0 ") || !strings.Contains(out, "P1 ") {
		t.Fatalf("timeline missing rank rows:\n%s", out)
	}
	for _, glyph := range []string{"s", "x", "L"} {
		if !strings.Contains(strings.SplitN(out, "\n    ", 2)[0], glyph) {
			t.Errorf("timeline missing glyph %q:\n%s", glyph, out)
		}
	}
}

func TestArrowsClassify(t *testing.T) {
	rec := New()
	w := mpi.NewWorld(2, mpi.Options{})
	store := storage.NewCheckpointStore(storage.NewMemory())
	mk := func(r int) *protocol.Layer {
		return protocol.NewLayer(w.Comm(r), protocol.Config{
			Mode: protocol.Full, Store: store, Tracer: rec,
		})
	}
	P, Q := mk(0), mk(1)
	P.RequestCheckpoint()
	P.Send(1, 1, []byte("m"))
	P.PotentialCheckpoint()
	Q.PotentialCheckpoint()
	Q.Recv(0, 1)

	arrows := rec.Arrows()
	if !strings.Contains(arrows, "late (logged)") {
		t.Fatalf("arrows missing late classification:\n%s", arrows)
	}
	if !strings.Contains(arrows, "P0 -> P1") {
		t.Fatalf("arrows missing send:\n%s", arrows)
	}
	sum := rec.Summary()
	if !strings.Contains(sum, "recv-late") || !strings.Contains(sum, "checkpoint") {
		t.Fatalf("summary incomplete:\n%s", sum)
	}
}

func TestTimelineTruncatesLongTraces(t *testing.T) {
	rec := New()
	for i := 0; i < 1000; i++ {
		rec.Trace(protocol.TraceEvent{Rank: 0, Kind: protocol.TraceSend})
	}
	out := rec.Timeline(1)
	first := strings.SplitN(out, "\n", 2)[0]
	if len(first) > 200 {
		t.Fatalf("timeline row too long: %d chars", len(first))
	}
}
