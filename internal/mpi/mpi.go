// Package mpi is an in-process message-passing substrate with MPI-like
// semantics: point-to-point sends and receives with tag and source
// matching (including wildcards and therefore non-FIFO application-level
// delivery, Section 3.3 of the paper), non-blocking operations with request
// objects, communicators with dup/split, and collective operations
// implemented in terms of point-to-point messages (butterfly/binomial
// trees, as the paper's benchmark codes do).
//
// Ranks are goroutines sharing a World. The transport is reliable — the
// paper assumes a reliable message-delivery layer (LA-MPI) and builds on
// that abstraction — but processes may stop-fail at any operation, which is
// the fault model under study.
package mpi

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Wildcards for Recv/Irecv/Probe.
const (
	AnySource = -1
	AnyTag    = -1
)

// Sentinel failures. These are delivered by panicking, because a stop
// failure terminates the process at an arbitrary instruction, not at an
// error-check boundary; the rank supervisor recovers them.
var (
	// ErrKilled is the panic value of a rank that hits an injected stop
	// failure.
	ErrKilled = errors.New("mpi: rank stop-failed")
	// ErrWorldDead is the panic value raised in surviving ranks once the
	// failure detector has declared the computation dead and a rollback is
	// in progress.
	ErrWorldDead = errors.New("mpi: world shut down")
	// ErrCanceled is the panic value raised in every rank once the run's
	// context is canceled (World.Cancel): unlike ErrWorldDead it means the
	// caller asked the whole computation to stop, so the supervisor aborts
	// instead of rolling back.
	ErrCanceled = errors.New("mpi: run canceled")
)

// Options configure a World.
type Options struct {
	// ChaosSeed, when non-zero, enables adversarial reordering of
	// application-level messages (tags >= 0): an arriving message may be
	// inserted ahead of earlier undelivered messages. This models the
	// application-level non-FIFO behaviour that MPI tag matching produces.
	ChaosSeed int64
	// ChaosAll extends reordering to negative (reserved/control) tags.
	ChaosAll bool
	// KillPlan maps rank -> operation index (1-based count of that rank's
	// substrate operations) at which the rank stop-fails.
	KillPlan map[int]int64
	// OnKill, when non-nil, is invoked with the rank as its KillPlan entry
	// fires, before the simulated stop-failure is raised. A cross-process
	// worker uses this to deliver a real SIGKILL to its own process — in
	// that case the call never returns and the simulated path below it is
	// dead code.
	OnKill func(rank int)
	// NewTransport, when non-nil, builds the wire substrate for the world;
	// nil selects the in-process indexed-mailbox transport. Alternative
	// backends (latency models, cross-process shims) plug in here without
	// the communicator or protocol layers changing.
	NewTransport func(*World) Transport
}

// World owns the transport and failure state for one incarnation of the
// computation. A rollback discards the World and builds a fresh one.
type World struct {
	size  int
	tr    Transport
	boxes []*mailbox // in-process transport's mailboxes (tests/diagnostics); nil for custom transports
	opts  Options

	dead     atomic.Bool
	canceled atomic.Bool
	killed   []atomic.Bool
	opCount  []atomic.Int64

	failMu   sync.Mutex
	failures []int // ranks that stop-failed, in detection order

	chaosMu sync.Mutex
	chaos   *rand.Rand

	ctxCounter atomic.Int64
}

// NewWorld creates a world with n ranks.
func NewWorld(n int, opts Options) *World {
	if n <= 0 {
		panic(fmt.Sprintf("mpi: NewWorld(%d): need at least one rank", n))
	}
	w := &World{
		size:    n,
		opts:    opts,
		killed:  make([]atomic.Bool, n),
		opCount: make([]atomic.Int64, n),
	}
	if opts.ChaosSeed != 0 {
		w.chaos = rand.New(rand.NewSource(opts.ChaosSeed))
	}
	if opts.NewTransport != nil {
		w.tr = opts.NewTransport(w)
	} else {
		inproc := newInprocTransport(w)
		w.tr = inproc
		w.boxes = inproc.boxes
	}
	return w
}

// Transport returns the wire substrate the world runs on.
func (w *World) Transport() Transport { return w.tr }

// Size reports the number of ranks.
func (w *World) Size() int { return w.size }

// Comm returns rank's handle on the world communicator.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: Comm(%d): out of range [0,%d)", rank, w.size))
	}
	members := make([]int, w.size)
	for i := range members {
		members[i] = i
	}
	return &Comm{world: w, ctx: 0, members: members, myIdx: rank}
}

// Killed reports whether rank has stop-failed (failure-detector plumbing:
// a stopped process's runtime no longer heartbeats).
func (w *World) Killed(rank int) bool { return w.killed[rank].Load() }

// Kill marks rank as stop-failed; its next substrate operation panics with
// ErrKilled. Messages already sent by the rank remain deliverable (they are
// "in flight"); nothing more will be sent.
func (w *World) Kill(rank int) { w.killed[rank].Store(true) }

// Shutdown declares the incarnation dead: all blocked and future substrate
// operations on every rank panic with ErrWorldDead. The rollback driver
// calls this once the failure detector has fired.
func (w *World) Shutdown() {
	w.dead.Store(true)
	w.tr.Interrupt()
}

// Cancel aborts the incarnation on behalf of the caller's context: all
// blocked and future substrate operations on every rank panic with
// ErrCanceled. Unlike Shutdown this is not a failure — the supervisor maps
// it to the context's error instead of scheduling a rollback.
func (w *World) Cancel() {
	w.canceled.Store(true)
	w.tr.Interrupt()
}

// Canceled reports whether Cancel has been called.
func (w *World) Canceled() bool { return w.canceled.Load() }

// raiseIfHalted panics with the halt sentinel when the world has been
// canceled or shut down; blocking paths call it whenever they wake.
func (w *World) raiseIfHalted() {
	if w.canceled.Load() {
		panic(ErrCanceled)
	}
	if w.dead.Load() {
		panic(ErrWorldDead)
	}
}

// Interrupt wakes every blocked receiver without changing any state, so
// conditions passed to Comm.SelectWait are re-evaluated. The engine uses
// this as its completion signal to finished ranks parked in event-driven
// control servicing.
func (w *World) Interrupt() { w.tr.Interrupt() }

// Dead reports whether Shutdown has been called.
func (w *World) Dead() bool { return w.dead.Load() }

// RankObserver is an optional Transport extension: a transport that
// tracks per-rank goroutine lifecycle (the simulated substrate's
// quiescence accounting) implements it to learn when a rank's goroutine
// has exited for good this incarnation.
type RankObserver interface {
	RankDone(rank int)
}

// RankDone tells the transport that rank's goroutine has exited — by
// completing, or by unwinding from a failure. The engine calls it exactly
// once per rank per incarnation; transports that don't observe rank
// lifecycle ignore it.
func (w *World) RankDone(rank int) {
	if o, ok := w.tr.(RankObserver); ok {
		o.RankDone(rank)
	}
}

// Failures returns the ranks observed to have stop-failed so far.
func (w *World) Failures() []int {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	out := make([]int, len(w.failures))
	copy(out, w.failures)
	return out
}

// OpCount reports how many substrate operations rank has executed; useful
// for constructing kill plans from observed traces.
func (w *World) OpCount(rank int) int64 { return w.opCount[rank].Load() }

// enter is called at the top of every substrate operation executed by rank.
// It advances the rank's operation counter and raises injected failures.
func (w *World) enter(rank int) {
	w.raiseIfHalted()
	n := w.opCount[rank].Add(1)
	if plan, ok := w.opts.KillPlan[rank]; ok && n == plan {
		if w.opts.OnKill != nil {
			w.opts.OnKill(rank)
		}
		w.killed[rank].Store(true)
	}
	if w.killed[rank].Load() {
		w.failMu.Lock()
		w.failures = append(w.failures, rank)
		w.failMu.Unlock()
		panic(ErrKilled)
	}
}
