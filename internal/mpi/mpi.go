// Package mpi is an in-process message-passing substrate with MPI-like
// semantics: point-to-point sends and receives with tag and source
// matching (including wildcards and therefore non-FIFO application-level
// delivery, Section 3.3 of the paper), non-blocking operations with request
// objects, communicators with dup/split, and collective operations
// implemented in terms of point-to-point messages (butterfly/binomial
// trees, as the paper's benchmark codes do).
//
// Ranks are goroutines sharing a World. The transport is reliable — the
// paper assumes a reliable message-delivery layer (LA-MPI) and builds on
// that abstraction — but processes may stop-fail at any operation, which is
// the fault model under study.
package mpi

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Wildcards for Recv/Irecv/Probe.
const (
	AnySource = -1
	AnyTag    = -1
)

// Sentinel failures. These are delivered by panicking, because a stop
// failure terminates the process at an arbitrary instruction, not at an
// error-check boundary; the rank supervisor recovers them.
var (
	// ErrKilled is the panic value of a rank that hits an injected stop
	// failure.
	ErrKilled = errors.New("mpi: rank stop-failed")
	// ErrWorldDead is the panic value raised in surviving ranks once the
	// failure detector has declared the computation dead and a rollback is
	// in progress.
	ErrWorldDead = errors.New("mpi: world shut down")
)

// Options configure a World.
type Options struct {
	// ChaosSeed, when non-zero, enables adversarial reordering of
	// application-level messages (tags >= 0): an arriving message may be
	// inserted ahead of earlier undelivered messages. This models the
	// application-level non-FIFO behaviour that MPI tag matching produces.
	ChaosSeed int64
	// ChaosAll extends reordering to negative (reserved/control) tags.
	ChaosAll bool
	// KillPlan maps rank -> operation index (1-based count of that rank's
	// substrate operations) at which the rank stop-fails.
	KillPlan map[int]int64
}

// World owns the mailboxes and failure state for one incarnation of the
// computation. A rollback discards the World and builds a fresh one.
type World struct {
	size  int
	boxes []*mailbox
	opts  Options

	dead    atomic.Bool
	killed  []atomic.Bool
	opCount []atomic.Int64

	failMu   sync.Mutex
	failures []int // ranks that stop-failed, in detection order

	chaosMu sync.Mutex
	chaos   *rand.Rand

	ctxCounter atomic.Int64
}

// NewWorld creates a world with n ranks.
func NewWorld(n int, opts Options) *World {
	if n <= 0 {
		panic(fmt.Sprintf("mpi: NewWorld(%d): need at least one rank", n))
	}
	w := &World{
		size:    n,
		boxes:   make([]*mailbox, n),
		opts:    opts,
		killed:  make([]atomic.Bool, n),
		opCount: make([]atomic.Int64, n),
	}
	for i := range w.boxes {
		w.boxes[i] = newMailbox(w)
	}
	if opts.ChaosSeed != 0 {
		w.chaos = rand.New(rand.NewSource(opts.ChaosSeed))
	}
	return w
}

// Size reports the number of ranks.
func (w *World) Size() int { return w.size }

// Comm returns rank's handle on the world communicator.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: Comm(%d): out of range [0,%d)", rank, w.size))
	}
	members := make([]int, w.size)
	for i := range members {
		members[i] = i
	}
	return &Comm{world: w, ctx: 0, members: members, myIdx: rank}
}

// Killed reports whether rank has stop-failed (failure-detector plumbing:
// a stopped process's runtime no longer heartbeats).
func (w *World) Killed(rank int) bool { return w.killed[rank].Load() }

// Kill marks rank as stop-failed; its next substrate operation panics with
// ErrKilled. Messages already sent by the rank remain deliverable (they are
// "in flight"); nothing more will be sent.
func (w *World) Kill(rank int) { w.killed[rank].Store(true) }

// Shutdown declares the incarnation dead: all blocked and future substrate
// operations on every rank panic with ErrWorldDead. The rollback driver
// calls this once the failure detector has fired.
func (w *World) Shutdown() {
	w.dead.Store(true)
	for _, b := range w.boxes {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	}
}

// Dead reports whether Shutdown has been called.
func (w *World) Dead() bool { return w.dead.Load() }

// Failures returns the ranks observed to have stop-failed so far.
func (w *World) Failures() []int {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	out := make([]int, len(w.failures))
	copy(out, w.failures)
	return out
}

// OpCount reports how many substrate operations rank has executed; useful
// for constructing kill plans from observed traces.
func (w *World) OpCount(rank int) int64 { return w.opCount[rank].Load() }

// enter is called at the top of every substrate operation executed by rank.
// It advances the rank's operation counter and raises injected failures.
func (w *World) enter(rank int) {
	if w.dead.Load() {
		panic(ErrWorldDead)
	}
	n := w.opCount[rank].Add(1)
	if plan, ok := w.opts.KillPlan[rank]; ok && n == plan {
		w.killed[rank].Store(true)
	}
	if w.killed[rank].Load() {
		w.failMu.Lock()
		w.failures = append(w.failures, rank)
		w.failMu.Unlock()
		panic(ErrKilled)
	}
}

// chaosSlot returns a random insertion offset for adversarial reordering,
// or -1 for normal (append) delivery. Reordering respects MPI's
// non-overtaking guarantee: two messages from the same sender on the same
// communicator are matched in send order, so an arriving message may only
// be inserted ahead of undelivered messages from *other* senders (and only
// within its own communicator context, since cross-communicator ordering
// cannot be compared). What remains is exactly the network's legal
// nondeterminism: the arrival interleaving across senders.
func (w *World) chaosSlot(m *Message, queue []*Message) int {
	if w.chaos == nil || len(queue) == 0 {
		return -1
	}
	if m.Tag < 0 && !w.opts.ChaosAll {
		return -1
	}
	// The message may land anywhere in the longest queue suffix consisting
	// of same-context messages from other senders.
	lo := len(queue)
	for lo > 0 {
		q := queue[lo-1]
		if q.ctx != m.ctx || q.Source == m.Source {
			break
		}
		lo--
	}
	if lo == len(queue) {
		return -1
	}
	w.chaosMu.Lock()
	defer w.chaosMu.Unlock()
	if w.chaos.Intn(2) == 0 {
		return -1
	}
	return lo + w.chaos.Intn(len(queue)-lo)
}
