package mpi

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// countingTransport wraps the in-process transport and counts wire sends —
// the smallest possible alternative backend, proving that a substrate can
// be swapped in through Options.NewTransport without the communicator or
// anything above it changing.
type countingTransport struct {
	inner *inprocTransport
	sends atomic.Int64
}

func (t *countingTransport) Send(dst int, m *Message) {
	t.sends.Add(1)
	t.inner.Send(dst, m)
}
func (t *countingTransport) Await(rank int, specs []RecvSpec) (int, *Message) {
	return t.inner.Await(rank, specs)
}
func (t *countingTransport) AwaitCond(rank int, specs []RecvSpec, stop func() bool) (int, *Message) {
	return t.inner.AwaitCond(rank, specs, stop)
}
func (t *countingTransport) Poll(rank int, specs []RecvSpec) (int, *Message) {
	return t.inner.Poll(rank, specs)
}
func (t *countingTransport) Probe(rank int, spec RecvSpec) (bool, *Message) {
	return t.inner.Probe(rank, spec)
}
func (t *countingTransport) Pending(rank int) int               { return t.inner.Pending(rank) }
func (t *countingTransport) PendingApp(rank int, ctx int64) int { return t.inner.PendingApp(rank, ctx) }
func (t *countingTransport) Interrupt()                         { t.inner.Interrupt() }

func TestCustomTransportPlugsIn(t *testing.T) {
	var ct *countingTransport
	opts := Options{NewTransport: func(w *World) Transport {
		ct = &countingTransport{inner: newInprocTransport(w)}
		return ct
	}}
	runRanks(t, 4, opts, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 3, []byte("via custom transport"))
		}
		if c.Rank() == 1 {
			if m := c.Recv(0, 3); string(m.Data) != "via custom transport" {
				panic(fmt.Sprintf("got %q", m.Data))
			}
		}
		// Collectives decompose into wire sends on the same substrate.
		out := BytesF64(c.Allreduce(F64Bytes([]float64{1}), SumF64))
		if out[0] != 4 {
			panic(fmt.Sprintf("allreduce over custom transport = %v", out[0]))
		}
	})
	if ct.sends.Load() == 0 {
		t.Fatal("custom transport saw no wire traffic")
	}
}

func TestSendHdrCarriesHeaderOutOfBand(t *testing.T) {
	runRanks(t, 2, Options{}, func(c *Comm) {
		if c.Rank() == 0 {
			c.SendHdr(1, 1, 0xC0FFEE, []byte("payload"))
		} else {
			m := c.Recv(0, 1)
			if m.Header != 0xC0FFEE {
				panic(fmt.Sprintf("header = %#x", m.Header))
			}
			// The payload is exactly what was sent: no header bytes were
			// spliced into the data segment.
			if string(m.Data) != "payload" {
				panic(fmt.Sprintf("data = %q", m.Data))
			}
		}
	})
}

func TestSendSharedDeliversCallerBuffer(t *testing.T) {
	runRanks(t, 2, Options{}, func(c *Comm) {
		if c.Rank() == 0 {
			c.SendShared(1, 1, []byte("zero-copy"))
		} else {
			if m := c.Recv(0, 1); string(m.Data) != "zero-copy" {
				panic(fmt.Sprintf("data = %q", m.Data))
			}
		}
	})
}

// TestIndexedMatchOrder pins the matching rule the indexed mailbox must
// preserve: earliest delivery wins across specs, ties between specs go to
// the lowest spec index, and per-sender order survives exact-match
// receives interleaved with wildcard ones.
func TestIndexedMatchOrder(t *testing.T) {
	runRanks(t, 3, Options{}, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(2, 1, []byte("a0"))
			c.Send(2, 2, []byte("b0"))
			c.Send(2, 1, []byte("a1"))
			c.Send(2, 9, nil)
		case 1:
			c.Recv(2, 9) // wait until rank 0's messages are queued
			c.Send(2, 1, []byte("c0"))
			c.Send(2, 9, nil)
		case 2:
			c.Recv(0, 9)
			c.Send(1, 9, nil)
			c.Recv(1, 9)
			// Queue: a0 b0 a1 c0 (rank 1's send is ordered after rank 0's
			// by the handshake). An AnySource tag-1 receive must take a0.
			if m := c.Recv(AnySource, 1); string(m.Data) != "a0" {
				panic(fmt.Sprintf("first tag-1 = %q", m.Data))
			}
			// Select across two exact specs: b0 (tag 2) precedes a1.
			idx, m := c.Select([]RecvSpec{{Source: 0, Tag: 1}, {Source: 0, Tag: 2}})
			if idx != 1 || string(m.Data) != "b0" {
				panic(fmt.Sprintf("select = %d %q", idx, m.Data))
			}
			// Remaining tag-1 messages arrive in delivery order.
			if m := c.Recv(AnySource, 1); string(m.Data) != "a1" {
				panic(fmt.Sprintf("second tag-1 = %q", m.Data))
			}
			if m := c.Recv(AnySource, 1); string(m.Data) != "c0" {
				panic(fmt.Sprintf("third tag-1 = %q", m.Data))
			}
		}
	})
}

// TestSelectWaitStops: SelectWait returns when the condition is signalled
// even though no message ever arrives.
func TestSelectWaitStops(t *testing.T) {
	w := NewWorld(1, Options{})
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		idx, m := w.Comm(0).SelectWait([]RecvSpec{{Source: AnySource, Tag: 1}}, stop.Load)
		if idx != -1 || m != nil {
			panic(fmt.Sprintf("SelectWait = %d %v", idx, m))
		}
	}()
	stop.Store(true)
	w.Interrupt()
	<-done
}
