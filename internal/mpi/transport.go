package mpi

// Transport is the wire substrate beneath a World: it moves wire messages
// between ranks and implements matched receive. The default is the
// in-process indexed-mailbox transport; alternative backends (latency
// models, cross-process shims) plug in through Options.NewTransport
// without the layers above — Comm, the protocol layer, the engine —
// changing at all.
//
// Contract every implementation must honor:
//
//   - Delivery is reliable and eager: Send completes once the message is
//     queued at the destination; the *Message (including Data) is owned by
//     the transport from that point and by the receiver after matching
//     (read-only when the buffer was handed over via Comm.SendShared).
//   - Per-(sender, context) order is preserved (MPI's non-overtaking
//     guarantee); cross-sender interleaving is unconstrained.
//   - Matching semantics are those of matchOrder: the queued message
//     earliest in delivery order that satisfies any spec wins, and ties
//     between specs go to the lowest spec index.
//   - Blocking calls must panic with ErrWorldDead once the world is shut
//     down (ErrCanceled once it is canceled), and re-check their condition
//     whenever Interrupt is called.
type Transport interface {
	// Send queues m at dst's mailbox. The transport takes ownership of m.
	Send(dst int, m *Message)
	// Await blocks rank until a message matching one of specs is queued,
	// removes and returns it together with the index of the matched spec.
	Await(rank int, specs []RecvSpec) (int, *Message)
	// AwaitCond is Await with a cancellation condition: it additionally
	// returns (-1, nil) once stop() reports true. stop is re-evaluated
	// under the mailbox lock whenever a message arrives or Interrupt runs.
	AwaitCond(rank int, specs []RecvSpec, stop func() bool) (int, *Message)
	// Poll is the non-blocking Await; (-1, nil) when nothing matches.
	Poll(rank int, specs []RecvSpec) (int, *Message)
	// Probe reports whether a message matching spec is queued for rank,
	// without removing it.
	Probe(rank int, spec RecvSpec) (bool, *Message)
	// Pending reports the number of queued messages for rank; PendingApp
	// restricts the count to application messages (Tag >= 0) on ctx.
	Pending(rank int) int
	PendingApp(rank int, ctx int64) int
	// Interrupt wakes every blocked receiver so AwaitCond conditions and
	// world-death are re-observed. Shutdown and the engine's completion
	// signal both route through here.
	Interrupt()
}

// inprocTransport is the default substrate: one indexed mailbox per rank
// in shared memory. It consults the World for chaos insertion and
// world-death.
type inprocTransport struct {
	world *World
	boxes []*mailbox
}

func newInprocTransport(w *World) *inprocTransport {
	t := &inprocTransport{world: w, boxes: make([]*mailbox, w.size)}
	for i := range t.boxes {
		t.boxes[i] = newMailbox(w)
	}
	return t
}

func (t *inprocTransport) Send(dst int, m *Message) { t.boxes[dst].deliver(m) }

func (t *inprocTransport) Await(rank int, specs []RecvSpec) (int, *Message) {
	return t.boxes[rank].await(specs)
}

func (t *inprocTransport) AwaitCond(rank int, specs []RecvSpec, stop func() bool) (int, *Message) {
	return t.boxes[rank].awaitCond(specs, stop)
}

func (t *inprocTransport) Poll(rank int, specs []RecvSpec) (int, *Message) {
	return t.boxes[rank].poll(specs)
}

func (t *inprocTransport) Probe(rank int, spec RecvSpec) (bool, *Message) {
	return t.boxes[rank].probe(spec)
}

func (t *inprocTransport) Pending(rank int) int { return t.boxes[rank].pending() }

func (t *inprocTransport) PendingApp(rank int, ctx int64) int {
	return t.boxes[rank].pendingApp(ctx)
}

func (t *inprocTransport) Interrupt() {
	for _, b := range t.boxes {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	}
}
