// Package tcptransport implements mpi.Transport over persistent TCP
// connections, with one OS process per rank. It is the first genuinely
// distributed substrate behind the Transport seam: wire messages are
// encoded with the mpi frame codec, travel over a full mesh of sockets,
// and are decoded into the same indexed mailbox the in-process transport
// uses — so Await/Poll/Probe/Interrupt, matchOrder semantics, and chaos
// insertion are inherited unchanged.
//
// Failure model: a SIGKILLed peer's sockets reset, which every survivor
// observes directly (fast path); a silently hung peer is caught by the
// heartbeat detector (internal/detector) after its suspicion timeout.
// Either way the transport declares the incarnation dead via
// World.Shutdown, so blocked operations panic with mpi.ErrWorldDead and
// the worker process exits for the launcher to re-spawn.
//
// Contract notes (see mpi.Transport):
//   - Per-(sender, context) non-overtaking order holds because each sender
//     writes a peer's frames onto one TCP stream in send order and the
//     receiver decodes them sequentially into the mailbox.
//   - Delivery is eager: Send completes once the frame is written to the
//     socket (the kernel's buffering plays the reliable delivery layer the
//     paper assumes). Messages to a dead peer vanish, matching the
//     stopping-failure model.
package tcptransport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"ccift/internal/detector"
	"ccift/internal/mpi"
)

// Frame types. Every frame is [u32 length | u8 type | body]; length counts
// type byte plus body.
const (
	frameHello     = 1 // body: u32 sender world rank (first frame on a dialed conn)
	frameMsg       = 2 // body: mpi wire message
	frameHeartbeat = 3 // body: empty
	frameDone      = 4 // body: empty; sender's application has finished
)

// maxFrame bounds a frame's self-declared length so a corrupt stream
// cannot provoke an unbounded allocation.
const maxFrame = 1 << 30

// Config configures a Transport.
type Config struct {
	// Rank is the world rank hosted by this process. Size is the world size.
	Rank, Size int
	// ListenAddr is the address to bind; default "127.0.0.1:0".
	ListenAddr string
	// Publish announces this rank's bound address to the rendezvous (called
	// once, before any Lookup). Lookup resolves a peer's address, blocking
	// until the peer has published or a rendezvous-level timeout expires.
	// FileRendezvous provides both over a shared directory.
	Publish func(rank int, addr string) error
	Lookup  func(rank int) (string, error)
	// HeartbeatPeriod is the liveness beacon interval; default 250ms.
	HeartbeatPeriod time.Duration
	// SuspectTimeout declares a connected, not-yet-done peer dead when
	// nothing (data or heartbeat) has arrived from it for this long;
	// default 2s. Connection resets are detected immediately regardless.
	SuspectTimeout time.Duration
	// DialTimeout bounds connection establishment to one peer (including
	// retries while the peer's listener comes up); default 20s.
	DialTimeout time.Duration
	// Logf, when non-nil, receives diagnostics (peer deaths, shutdown).
	Logf func(format string, args ...any)
}

// Transport is a one-rank mpi.Transport over TCP. Build it with New (which
// binds the listener), then hand Attach to mpi.Options.NewTransport.
type Transport struct {
	cfg Config
	ln  net.Listener

	world *mpi.World
	mb    *mpi.Mailbox
	det   *detector.Detector

	mu    sync.Mutex
	cond  *sync.Cond  // broadcast on conn established, done, death, Interrupt
	peers []*peerConn // nil until established; peers[cfg.Rank] stays nil
	done  []bool      // peer announced application completion
	dead  bool        // a peer died; world has been shut down
	close bool        // Close was called (clean exit)

	stop      chan struct{}
	startedAt time.Time // mesh bring-up began (Start); bounds formation time
	wg        sync.WaitGroup
}

// peerConn is one established connection. Writers serialize on wmu and
// build each frame in one buffer so a frame is a single Write call.
type peerConn struct {
	c   net.Conn
	wmu sync.Mutex
	buf []byte
}

// New validates cfg and binds the listener, so the local address is known
// before the world (and its rendezvous peers) exist.
func New(cfg Config) (*Transport, error) {
	if cfg.Size <= 0 || cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("tcptransport: rank %d out of range [0,%d)", cfg.Rank, cfg.Size)
	}
	if cfg.Publish == nil || cfg.Lookup == nil {
		return nil, fmt.Errorf("tcptransport: Publish and Lookup are required")
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.HeartbeatPeriod == 0 {
		cfg.HeartbeatPeriod = 250 * time.Millisecond
	}
	if cfg.SuspectTimeout == 0 {
		cfg.SuspectTimeout = 2 * time.Second
	}
	// The detector needs several beacons per suspicion window or a healthy
	// peer is declared dead on the first quiet tick; tighten the period
	// when a small SuspectTimeout would otherwise outpace it.
	if p := cfg.SuspectTimeout / 4; cfg.HeartbeatPeriod > p {
		cfg.HeartbeatPeriod = p
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 20 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcptransport: listen: %w", err)
	}
	t := &Transport{
		cfg:   cfg,
		ln:    ln,
		det:   detector.New(cfg.Size, cfg.SuspectTimeout, nil),
		peers: make([]*peerConn, cfg.Size),
		done:  make([]bool, cfg.Size),
		stop:  make(chan struct{}),
	}
	t.cond = sync.NewCond(&t.mu)
	return t, nil
}

// Addr returns the bound listen address.
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// Attach wires the transport to its world; it is the
// mpi.Options.NewTransport hook. It must be followed by Start once
// mpi.NewWorld has returned — splitting the two keeps mesh goroutines
// (which may shut the world down on a dial failure) from touching a world
// still under construction.
func (t *Transport) Attach(w *mpi.World) mpi.Transport {
	t.world = w
	t.mb = mpi.NewMailbox(w)
	return t
}

// Start brings the mesh up: publish the local address, accept from higher
// ranks, dial lower ranks, and run the staleness monitor. Operations issued
// before Start simply block until the mesh forms.
func (t *Transport) Start() error {
	if t.world == nil {
		return fmt.Errorf("tcptransport: Start before Attach")
	}
	if err := t.cfg.Publish(t.cfg.Rank, t.Addr()); err != nil {
		return fmt.Errorf("tcptransport: publish address: %w", err)
	}
	t.startedAt = time.Now()
	t.wg.Add(1)
	go t.acceptLoop()
	for peer := 0; peer < t.cfg.Rank; peer++ {
		t.wg.Add(1)
		go t.dialPeer(peer)
	}
	t.wg.Add(1)
	go t.monitor()
	return nil
}

func (t *Transport) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

// --- mesh construction ---

// acceptLoop admits connections from higher-ranked peers, which identify
// themselves with a hello frame.
func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed (Close or shutdown)
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			peer, err := readHello(c)
			if err != nil || peer <= t.cfg.Rank || peer >= t.cfg.Size {
				c.Close()
				return
			}
			if !t.register(peer, c) {
				c.Close()
				return
			}
			t.readLoop(peer, c)
		}()
	}
}

// dialPeer connects to a lower-ranked peer, retrying while its listener
// comes up, and sends the identifying hello.
func (t *Transport) dialPeer(peer int) {
	defer t.wg.Done()
	deadline := time.Now().Add(t.cfg.DialTimeout)
	addr, err := t.cfg.Lookup(peer)
	if err != nil {
		t.peerDead(peer, fmt.Errorf("rendezvous: %w", err))
		return
	}
	var c net.Conn
	for {
		c, err = net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) || t.stopped() {
			if !t.stopped() {
				t.peerDead(peer, fmt.Errorf("dial %s: %w", addr, err))
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	hello := make([]byte, 0, 9)
	hello = appendFrameHeader(hello, frameHello, 4)
	hello = binary.LittleEndian.AppendUint32(hello, uint32(t.cfg.Rank))
	if _, err := c.Write(hello); err != nil {
		c.Close()
		t.peerDead(peer, fmt.Errorf("hello: %w", err))
		return
	}
	if !t.register(peer, c) {
		c.Close()
		return
	}
	t.readLoop(peer, c)
}

// register installs the established connection and wakes blocked senders.
// It reports false when the transport is already closing (the conn should
// be dropped) or the peer already has a connection (duplicate dial).
func (t *Transport) register(peer int, c net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.close || t.dead || t.peers[peer] != nil {
		return false
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	t.peers[peer] = &peerConn{c: c}
	t.det.Heartbeat(peer)
	t.cond.Broadcast()
	return true
}

func readHello(c net.Conn) (int, error) {
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	defer c.SetReadDeadline(time.Time{})
	var hdr [5]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return -1, err
	}
	if binary.LittleEndian.Uint32(hdr[:4]) != 5 || hdr[4] != frameHello {
		return -1, fmt.Errorf("tcptransport: bad hello frame")
	}
	var body [4]byte
	if _, err := io.ReadFull(c, body[:]); err != nil {
		return -1, err
	}
	return int(binary.LittleEndian.Uint32(body[:])), nil
}

// --- frame I/O ---

// appendFrameHeader appends the length word and type byte for a frame with
// the given body length.
func appendFrameHeader(buf []byte, typ byte, bodyLen int) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(bodyLen+1))
	return append(buf, typ)
}

// writeFrame builds the frame in the peer's scratch buffer and writes it in
// one call. A write error means the peer's socket is gone.
func (t *Transport) writeFrame(peer int, pc *peerConn, typ byte, body func([]byte) []byte) {
	pc.wmu.Lock()
	buf := appendFrameHeader(pc.buf[:0], typ, 0)
	if body != nil {
		buf = body(buf)
	}
	binary.LittleEndian.PutUint32(buf, uint32(len(buf)-4)) // patch real length
	_, err := pc.c.Write(buf)
	pc.buf = buf[:0]
	pc.wmu.Unlock()
	if err != nil {
		t.connBroken(peer, err)
	}
}

// readLoop decodes frames from one peer until the connection breaks.
func (t *Transport) readLoop(peer int, c net.Conn) {
	var hdr [4]byte
	var body []byte
	for {
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			t.connBroken(peer, err)
			return
		}
		n := int(binary.LittleEndian.Uint32(hdr[:]))
		if n < 1 || n > maxFrame {
			t.connBroken(peer, fmt.Errorf("bad frame length %d", n))
			return
		}
		if cap(body) < n {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(c, body); err != nil {
			t.connBroken(peer, err)
			return
		}
		t.det.Heartbeat(peer) // any traffic is a sign of life
		switch body[0] {
		case frameMsg:
			m, err := mpi.DecodeMessage(body[1:])
			if err != nil {
				t.connBroken(peer, err)
				return
			}
			t.mb.Deliver(m)
		case frameHeartbeat:
			// Heartbeat already recorded above.
		case frameDone:
			t.markDone(peer)
		default:
			t.connBroken(peer, fmt.Errorf("unknown frame type %d", body[0]))
			return
		}
	}
}

// --- failure handling ---

func (t *Transport) stopped() bool {
	select {
	case <-t.stop:
		return true
	default:
		return false
	}
}

// connBroken classifies a connection error: benign after Close or once the
// peer announced completion, fatal otherwise.
func (t *Transport) connBroken(peer int, err error) {
	t.mu.Lock()
	benign := t.close || t.dead || t.done[peer]
	t.mu.Unlock()
	if benign {
		return
	}
	t.peerDead(peer, err)
}

// peerDead declares the incarnation dead: the paper's stopping-failure
// model makes any peer death a whole-incarnation rollback, so the world is
// shut down and every blocked operation panics with mpi.ErrWorldDead.
func (t *Transport) peerDead(peer int, err error) {
	t.mu.Lock()
	if t.close || t.dead {
		t.mu.Unlock()
		return
	}
	t.dead = true
	t.mu.Unlock()
	t.logf("rank %d: peer %d presumed dead (%v); shutting down incarnation", t.cfg.Rank, peer, err)
	t.shutdownWorld(peer)
}

func (t *Transport) shutdownWorld(peer int) {
	if peer >= 0 {
		t.world.Kill(peer) // record the observed failure
	}
	t.world.Shutdown() // panics blocked ops with ErrWorldDead via Interrupt
}

// monitor beacons liveness to every connected peer and applies the
// suspicion timeout to connected, not-yet-done peers. A peer's done status
// exempts it from suspicion but NOT from our beacons: a done peer is still
// running (parked in control service until everyone finishes) and still
// suspects *us*, so its inbound traffic must not dry up — writes to a done
// peer that has already exited fail benignly via connBroken. Pre-connection
// absence is handled by the dial deadline instead, so a slow mesh bring-up
// is never misread as a death.
func (t *Transport) monitor() {
	defer t.wg.Done()
	tick := time.NewTicker(t.cfg.HeartbeatPeriod)
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
		}
		t.det.Heartbeat(t.cfg.Rank)
		meshLate := time.Since(t.startedAt) > t.cfg.DialTimeout
		t.mu.Lock()
		type target struct {
			peer int
			pc   *peerConn
		}
		var targets []target
		suspectable := make([]bool, t.cfg.Size)
		var unformed []int
		for p := 0; p < t.cfg.Size; p++ {
			if p == t.cfg.Rank {
				continue
			}
			if pc := t.peers[p]; pc != nil {
				targets = append(targets, target{p, pc})
				suspectable[p] = !t.done[p]
			} else if !t.done[p] {
				// Not connected yet: the dial deadline governs peers we dial;
				// for peers that dial us, the mesh-formation deadline below
				// catches a higher rank that died before connecting.
				t.det.Heartbeat(p)
				unformed = append(unformed, p)
			}
		}
		t.mu.Unlock()
		if meshLate && len(unformed) > 0 {
			t.peerDead(unformed[0], fmt.Errorf("no connection to peers %v within %v of start", unformed, t.cfg.DialTimeout))
			return
		}
		for _, tg := range targets {
			t.writeFrame(tg.peer, tg.pc, frameHeartbeat, nil)
		}
		for _, p := range t.det.Suspects() {
			if suspectable[p] {
				t.peerDead(p, fmt.Errorf("no traffic for %v", t.cfg.SuspectTimeout))
				return
			}
		}
	}
}

// --- completion ---

// AnnounceDone broadcasts that this rank's application has finished. After
// this, a peer closing its connection is treated as a clean exit. The
// broadcast waits for still-forming connections so a rank that finishes
// instantly cannot strand peers waiting for its completion.
func (t *Transport) AnnounceDone() {
	t.mu.Lock()
	t.done[t.cfg.Rank] = true
	t.cond.Broadcast()
	t.mu.Unlock()
	for p := 0; p < t.cfg.Size; p++ {
		if p == t.cfg.Rank {
			continue
		}
		if pc := t.awaitPeer(p); pc != nil {
			t.writeFrame(p, pc, frameDone, nil)
		}
	}
}

// markDone records a peer's completion announcement and wakes the local
// rank, whose ServiceControlUntil stop condition may now hold.
func (t *Transport) markDone(peer int) {
	t.mu.Lock()
	t.done[peer] = true
	t.cond.Broadcast()
	t.mu.Unlock()
	t.mb.Interrupt()
}

// AllDone reports whether every rank (including this one) has announced
// completion — the distributed analogue of the engine's finished counter.
func (t *Transport) AllDone() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, d := range t.done {
		if !d {
			return false
		}
	}
	return true
}

// Close tears the transport down for a clean exit: subsequent connection
// errors are benign. It does not shut the world down.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.close {
		t.mu.Unlock()
		return
	}
	t.close = true
	conns := append([]*peerConn(nil), t.peers...)
	t.cond.Broadcast()
	t.mu.Unlock()
	close(t.stop)
	t.ln.Close()
	for _, pc := range conns {
		if pc != nil {
			pc.c.Close()
		}
	}
}

// --- mpi.Transport ---

func (t *Transport) hosted(rank int) {
	if rank != t.cfg.Rank {
		panic(fmt.Sprintf("tcptransport: rank %d not hosted by this process (rank %d)", rank, t.cfg.Rank))
	}
}

// Send implements mpi.Transport. Local sends deliver straight into the
// mailbox; remote sends encode one frame onto the peer's stream, blocking
// only while the mesh is still forming.
func (t *Transport) Send(dst int, m *mpi.Message) {
	if dst == t.cfg.Rank {
		t.mb.Deliver(m)
		return
	}
	pc := t.awaitPeer(dst)
	if pc == nil {
		return // peer (or world) died: the message vanishes, as for a stopped process
	}
	t.writeFrame(dst, pc, frameMsg, func(buf []byte) []byte {
		return mpi.AppendMessage(buf, m)
	})
}

// awaitPeer blocks until dst's connection is established, returning nil if
// the world dies or the transport closes first.
func (t *Transport) awaitPeer(dst int) *peerConn {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if pc := t.peers[dst]; pc != nil {
			return pc
		}
		if t.world.Dead() {
			panic(mpi.ErrWorldDead)
		}
		if t.close || t.dead || t.done[dst] {
			return nil
		}
		t.cond.Wait()
	}
}

// Await implements mpi.Transport.
func (t *Transport) Await(rank int, specs []mpi.RecvSpec) (int, *mpi.Message) {
	t.hosted(rank)
	return t.mb.Await(specs)
}

// AwaitCond implements mpi.Transport.
func (t *Transport) AwaitCond(rank int, specs []mpi.RecvSpec, stop func() bool) (int, *mpi.Message) {
	t.hosted(rank)
	return t.mb.AwaitCond(specs, stop)
}

// Poll implements mpi.Transport.
func (t *Transport) Poll(rank int, specs []mpi.RecvSpec) (int, *mpi.Message) {
	t.hosted(rank)
	return t.mb.Poll(specs)
}

// Probe implements mpi.Transport.
func (t *Transport) Probe(rank int, spec mpi.RecvSpec) (bool, *mpi.Message) {
	t.hosted(rank)
	return t.mb.Probe(spec)
}

// Pending implements mpi.Transport.
func (t *Transport) Pending(rank int) int {
	t.hosted(rank)
	return t.mb.Pending()
}

// PendingApp implements mpi.Transport.
func (t *Transport) PendingApp(rank int, ctx int64) int {
	t.hosted(rank)
	return t.mb.PendingApp(ctx)
}

// Interrupt implements mpi.Transport: wake the local mailbox and any sender
// blocked on mesh formation.
func (t *Transport) Interrupt() {
	t.mb.Interrupt()
	t.mu.Lock()
	t.cond.Broadcast()
	t.mu.Unlock()
}
