package tcptransport_test

// Transport-contract conformance suite: every behaviour the mpi.Transport
// documentation promises — reliable eager delivery, per-(sender, context)
// non-overtaking order, matchOrder semantics with lowest-spec-index
// tie-breaking, Interrupt wakeup, ErrWorldDead on shutdown — is exercised
// through one shared table against both substrates: the in-process
// indexed-mailbox transport and the cross-process TCP transport (here wired
// between n single-rank worlds over loopback sockets, exactly as n worker
// processes would be).

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"ccift/internal/mpi"
	"ccift/internal/mpi/tcptransport"
	"ccift/internal/sim"
)

// cluster is the substrate-neutral view of an n-rank world set.
type cluster struct {
	n     int
	tr    func(rank int) mpi.Transport
	world func(rank int) *mpi.World
	close func()
}

type substrate struct {
	name  string
	build func(t *testing.T, n int) *cluster
}

func buildInproc(t *testing.T, n int) *cluster {
	w := mpi.NewWorld(n, mpi.Options{})
	return &cluster{
		n:     n,
		tr:    func(int) mpi.Transport { return w.Transport() },
		world: func(int) *mpi.World { return w },
		close: func() {},
	}
}

func buildTCP(t *testing.T, n int) *cluster {
	addrs := make([]string, n)
	_, lookup := tcptransport.StaticRendezvous(addrs)
	publish := func(int, string) error { return nil }
	ts := make([]*tcptransport.Transport, n)
	for i := 0; i < n; i++ {
		tt, err := tcptransport.New(tcptransport.Config{
			Rank: i, Size: n,
			Publish: publish, Lookup: lookup,
			HeartbeatPeriod: 200 * time.Millisecond,
			SuspectTimeout:  30 * time.Second, // ample: only conn resets should ever fire here
		})
		if err != nil {
			t.Fatalf("tcptransport.New(rank %d): %v", i, err)
		}
		ts[i] = tt
		addrs[i] = tt.Addr()
	}
	worlds := make([]*mpi.World, n)
	for i := 0; i < n; i++ {
		worlds[i] = mpi.NewWorld(n, mpi.Options{NewTransport: ts[i].Attach})
	}
	for i := 0; i < n; i++ {
		if err := ts[i].Start(); err != nil {
			t.Fatalf("Start(rank %d): %v", i, err)
		}
	}
	return &cluster{
		n:     n,
		tr:    func(rank int) mpi.Transport { return ts[rank] },
		world: func(rank int) *mpi.World { return worlds[rank] },
		close: func() {
			for _, tt := range ts {
				tt.Close()
			}
		},
	}
}

// buildSim runs the suite over the simulated substrate with a zero-latency
// fault-free scenario: every frame crosses the discrete-event scheduler and
// the wire codec, and due events dispatch eagerly, so the simulation must be
// observationally identical to an ordinary transport here.
func buildSim(t *testing.T, n int) *cluster {
	s, err := sim.New(n, sim.Scenario{Seed: 1})
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	w := mpi.NewWorld(n, mpi.Options{NewTransport: s.NewTransport})
	return &cluster{
		n:     n,
		tr:    func(int) mpi.Transport { return w.Transport() },
		world: func(int) *mpi.World { return w },
		close: s.Stop,
	}
}

var substrates = []substrate{
	{"inproc", buildInproc},
	{"tcp", buildTCP},
	{"sim", buildSim},
}

func msg(src, tag int, seq uint32) *mpi.Message {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], seq)
	return &mpi.Message{Source: src, Tag: tag, Data: b[:]}
}

func seqOf(t *testing.T, m *mpi.Message) uint32 {
	t.Helper()
	if len(m.Data) != 4 {
		t.Fatalf("payload length %d, want 4", len(m.Data))
	}
	return binary.LittleEndian.Uint32(m.Data)
}

func TestTransportConformance(t *testing.T) {
	type tc struct {
		name string
		n    int
		run  func(t *testing.T, c *cluster)
	}
	cases := []tc{
		{"SenderOrderPreserved", 2, testSenderOrder},
		{"CrossSenderDeliveryComplete", 3, testCrossSender},
		{"MatchOrderEarliestWins", 2, testMatchEarliest},
		{"MatchOrderTieLowestSpec", 2, testMatchTie},
		{"ProbePollPending", 2, testProbePollPending},
		{"InterruptWakesAwaitCond", 2, testInterrupt},
		{"ShutdownPanicsErrWorldDead", 2, testWorldDead},
	}
	for _, s := range substrates {
		for _, c := range cases {
			t.Run(s.name+"/"+c.name, func(t *testing.T) {
				t.Parallel()
				cl := s.build(t, c.n)
				defer cl.close()
				c.run(t, cl)
			})
		}
	}
}

// testSenderOrder: messages from one sender on one context are matched in
// send order (MPI's non-overtaking guarantee).
func testSenderOrder(t *testing.T, c *cluster) {
	const k = 200
	go func() {
		for i := 0; i < k; i++ {
			c.tr(1).Send(0, msg(1, 7, uint32(i)))
		}
	}()
	for i := 0; i < k; i++ {
		_, m := c.tr(0).Await(0, []mpi.RecvSpec{{Source: 1, Tag: 7}})
		if got := seqOf(t, m); got != uint32(i) {
			t.Fatalf("receive %d: got seq %d (same-sender overtaking)", i, got)
		}
	}
}

// testCrossSender: all messages from concurrent senders arrive exactly
// once, and each sender's own sequence stays ordered even under a wildcard
// receive.
func testCrossSender(t *testing.T, c *cluster) {
	const per = 50
	for src := 1; src < c.n; src++ {
		go func(src int) {
			for i := 0; i < per; i++ {
				c.tr(src).Send(0, msg(src, src, uint32(i)))
			}
		}(src)
	}
	next := make([]uint32, c.n)
	total := per * (c.n - 1)
	for i := 0; i < total; i++ {
		_, m := c.tr(0).Await(0, []mpi.RecvSpec{{Source: mpi.AnySource, Tag: mpi.AnyTag}})
		if m.Tag != m.Source {
			t.Fatalf("message from %d carries tag %d", m.Source, m.Tag)
		}
		if got := seqOf(t, m); got != next[m.Source] {
			t.Fatalf("sender %d: got seq %d, want %d", m.Source, got, next[m.Source])
		}
		next[m.Source]++
	}
	for src := 1; src < c.n; src++ {
		if next[src] != per {
			t.Fatalf("sender %d: received %d of %d", src, next[src], per)
		}
	}
}

// testMatchEarliest: the queued message earliest in delivery order wins,
// regardless of spec order.
func testMatchEarliest(t *testing.T, c *cluster) {
	c.tr(1).Send(0, msg(1, 1, 100))
	c.tr(1).Send(0, msg(1, 2, 200))
	// Wait until both have arrived so delivery order is fixed.
	waitPending(t, c.tr(0), 0, 2)
	specs := []mpi.RecvSpec{{Source: 1, Tag: 2}, {Source: 1, Tag: 1}}
	si, m := c.tr(0).Await(0, specs)
	if m.Tag != 1 || si != 1 {
		t.Fatalf("got tag %d via spec %d, want earliest message (tag 1) via spec 1", m.Tag, si)
	}
	si, m = c.tr(0).Await(0, specs)
	if m.Tag != 2 || si != 0 {
		t.Fatalf("got tag %d via spec %d, want tag 2 via spec 0", m.Tag, si)
	}
}

// testMatchTie: when one message satisfies several specs, the lowest spec
// index is reported.
func testMatchTie(t *testing.T, c *cluster) {
	c.tr(1).Send(0, msg(1, 5, 0))
	specs := []mpi.RecvSpec{{Source: mpi.AnySource, Tag: 5}, {Source: 1, Tag: 5}}
	si, m := c.tr(0).Await(0, specs)
	if si != 0 || m.Tag != 5 {
		t.Fatalf("tie broke to spec %d (tag %d), want spec 0", si, m.Tag)
	}
}

// testProbePollPending: Probe observes without removing, Poll never blocks,
// and Pending/PendingApp distinguish application from control traffic.
func testProbePollPending(t *testing.T, c *cluster) {
	if si, m := c.tr(0).Poll(0, []mpi.RecvSpec{{Source: mpi.AnySource, Tag: mpi.AnyTag}}); m != nil || si != -1 {
		t.Fatalf("Poll on empty mailbox returned (%d, %v)", si, m)
	}
	c.tr(1).Send(0, msg(1, 3, 1))
	c.tr(1).Send(0, msg(1, -11, 2)) // reserved/control tag
	waitPending(t, c.tr(0), 0, 2)
	if ok, m := c.tr(0).Probe(0, mpi.RecvSpec{Source: 1, Tag: 3}); !ok || m == nil {
		t.Fatal("Probe missed a queued message")
	}
	if got := c.tr(0).Pending(0); got != 2 {
		t.Fatalf("Pending = %d after Probe, want 2 (Probe must not remove)", got)
	}
	if got := c.tr(0).PendingApp(0, 0); got != 1 {
		t.Fatalf("PendingApp = %d, want 1 (control tag excluded)", got)
	}
	if si, m := c.tr(0).Poll(0, []mpi.RecvSpec{{Source: 1, Tag: 3}}); m == nil || si != 0 {
		t.Fatal("Poll missed the queued application message")
	}
	if got := c.tr(0).Pending(0); got != 1 {
		t.Fatalf("Pending = %d after Poll, want 1", got)
	}
}

// testInterrupt: AwaitCond re-evaluates its condition when Interrupt runs,
// and returns (-1, nil) once it holds.
func testInterrupt(t *testing.T, c *cluster) {
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		si, m := c.tr(0).AwaitCond(0, []mpi.RecvSpec{{Source: 1, Tag: 99}}, stop.Load)
		if si != -1 || m != nil {
			t.Errorf("AwaitCond returned (%d, %v), want (-1, nil)", si, m)
		}
	}()
	time.Sleep(20 * time.Millisecond) // let it park
	stop.Store(true)
	c.tr(0).Interrupt()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Interrupt did not wake AwaitCond")
	}
}

// testWorldDead: a blocked Await panics with ErrWorldDead once the world is
// shut down, and subsequent non-blocking calls panic too.
func testWorldDead(t *testing.T, c *cluster) {
	got := make(chan any, 1)
	go func() {
		defer func() { got <- recover() }()
		c.tr(0).Await(0, []mpi.RecvSpec{{Source: 1, Tag: 42}})
		got <- nil
	}()
	time.Sleep(20 * time.Millisecond) // let it block
	c.world(0).Shutdown()
	select {
	case p := <-got:
		if p != mpi.ErrWorldDead {
			t.Fatalf("blocked Await panicked with %v, want ErrWorldDead", p)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not wake the blocked Await")
	}
	func() {
		defer func() {
			if p := recover(); p != mpi.ErrWorldDead {
				t.Fatalf("Poll after Shutdown panicked with %v, want ErrWorldDead", p)
			}
		}()
		c.tr(0).Poll(0, []mpi.RecvSpec{{Source: 1, Tag: 42}})
		t.Fatal("Poll after Shutdown did not panic")
	}()
}

// waitPending blocks until rank's mailbox holds want messages (remote
// delivery is asynchronous on the TCP substrate).
func waitPending(t *testing.T, tr mpi.Transport, rank, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for tr.Pending(rank) < want {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d messages arrived", tr.Pending(rank), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTCPSendHdrHeaderSurvivesWire pins the two-segment wire format across
// the socket: the 32-bit out-of-band header word must arrive intact.
func TestTCPSendHdrHeaderSurvivesWire(t *testing.T) {
	t.Parallel()
	cl := buildTCP(t, 2)
	defer cl.close()
	m := msg(1, 4, 77)
	m.Header = 0xCAFEBABE
	cl.tr(1).Send(0, m)
	_, got := cl.tr(0).Await(0, []mpi.RecvSpec{{Source: 1, Tag: 4}})
	if got.Header != 0xCAFEBABE {
		t.Fatalf("header word %#x, want %#x", got.Header, 0xCAFEBABE)
	}
	if seqOf(t, got) != 77 {
		t.Fatalf("payload seq %d, want 77", seqOf(t, got))
	}
}

// TestTCPPeerDeathShutsDownWorld pins the failure path: when a peer's
// connection resets without a done announcement, the survivor's world is
// shut down and blocked operations raise ErrWorldDead.
func TestTCPPeerDeathShutsDownWorld(t *testing.T) {
	t.Parallel()
	cl := buildTCP(t, 2)
	defer cl.close()
	// Ensure the mesh is up before severing it.
	cl.tr(1).Send(0, msg(1, 1, 0))
	_, _ = cl.tr(0).Await(0, []mpi.RecvSpec{{Source: 1, Tag: 1}})

	got := make(chan any, 1)
	go func() {
		defer func() { got <- recover() }()
		cl.tr(0).Await(0, []mpi.RecvSpec{{Source: 1, Tag: 9}})
		got <- nil
	}()
	time.Sleep(20 * time.Millisecond)
	// Rank 1 "dies": its transport closes every socket with no done frame.
	// Closing via the transport marks rank 1's own side benign, but rank 0
	// must interpret the reset as a peer death.
	cl.tr(1).(*tcptransport.Transport).Close()
	select {
	case p := <-got:
		if p != mpi.ErrWorldDead {
			t.Fatalf("survivor's Await panicked with %v, want ErrWorldDead", p)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("peer death did not shut down the survivor's world")
	}
	if !cl.world(0).Dead() {
		t.Fatal("survivor world not marked dead")
	}
	if !cl.world(0).Killed(1) {
		t.Fatal("survivor did not record peer 1 as killed")
	}
}

// TestTCPDoneMakesCloseBenign pins the clean-completion path: after every
// rank announces done, connection teardown must not be read as a failure.
func TestTCPDoneMakesCloseBenign(t *testing.T) {
	t.Parallel()
	cl := buildTCP(t, 2)
	defer cl.close()
	t0 := cl.tr(0).(*tcptransport.Transport)
	t1 := cl.tr(1).(*tcptransport.Transport)
	var doneAnnounced [2]chan struct{}
	for i, tt := range []*tcptransport.Transport{t0, t1} {
		doneAnnounced[i] = make(chan struct{})
		go func(tt *tcptransport.Transport, ch chan struct{}) {
			tt.AnnounceDone()
			close(ch)
		}(tt, doneAnnounced[i])
	}
	<-doneAnnounced[0]
	<-doneAnnounced[1]
	waitAllDone(t, t0)
	waitAllDone(t, t1)
	t1.Close()
	time.Sleep(100 * time.Millisecond) // give rank 0 time to observe the close
	if cl.world(0).Dead() {
		t.Fatal("clean close after done was treated as a failure")
	}
}

// TestTCPDonePeerKeepsReceivingHeartbeats pins the done/suspicion split:
// after rank 1 announces done, rank 0 must keep beaconing it — a done rank
// is still alive (parked in control service until every rank finishes) and
// still suspects its working peers, so if the beacons dried up a quiet but
// healthy rank 0 would be falsely declared dead and the whole incarnation
// rolled back.
func TestTCPDonePeerKeepsReceivingHeartbeats(t *testing.T) {
	t.Parallel()
	const n = 2
	addrs := make([]string, n)
	_, lookup := tcptransport.StaticRendezvous(addrs)
	publish := func(int, string) error { return nil }
	ts := make([]*tcptransport.Transport, n)
	for i := 0; i < n; i++ {
		tt, err := tcptransport.New(tcptransport.Config{
			Rank: i, Size: n,
			Publish: publish, Lookup: lookup,
			HeartbeatPeriod: 50 * time.Millisecond,
			SuspectTimeout:  400 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("tcptransport.New(rank %d): %v", i, err)
		}
		ts[i] = tt
		addrs[i] = tt.Addr()
	}
	worlds := make([]*mpi.World, n)
	for i := 0; i < n; i++ {
		worlds[i] = mpi.NewWorld(n, mpi.Options{NewTransport: ts[i].Attach})
	}
	for i := 0; i < n; i++ {
		if err := ts[i].Start(); err != nil {
			t.Fatalf("Start(rank %d): %v", i, err)
		}
	}
	defer func() {
		for _, tt := range ts {
			tt.Close()
		}
	}()
	// Form the mesh before rank 1 finishes.
	ts[1].Send(0, msg(1, 1, 0))
	_, _ = ts[0].Await(0, []mpi.RecvSpec{{Source: 1, Tag: 1}})
	ts[1].AnnounceDone()
	// Rank 0 keeps working in silence for several suspicion windows. If
	// rank 0 stopped heartbeating the done rank 1, rank 1 would suspect it
	// and shut its world down.
	time.Sleep(3 * 400 * time.Millisecond)
	if worlds[1].Dead() {
		t.Fatal("done rank declared its silent-but-alive peer dead")
	}
	if worlds[0].Dead() {
		t.Fatal("working rank's world died during a fault-free quiet period")
	}
	// The done rank must still accept late traffic from working peers.
	ts[0].Send(1, msg(0, 2, 7))
	_, m := ts[1].Await(1, []mpi.RecvSpec{{Source: 0, Tag: 2}})
	if seqOf(t, m) != 7 {
		t.Fatalf("late message to done rank corrupted: seq %d, want 7", seqOf(t, m))
	}
}

func waitAllDone(t *testing.T, tt *tcptransport.Transport) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !tt.AllDone() {
		if time.Now().After(deadline) {
			t.Fatal("AllDone never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

func ExampleFileRendezvous() {
	dir, _ := os.MkdirTemp("", "rdv")
	defer os.RemoveAll(dir)
	publish, lookup := tcptransport.FileRendezvous(dir, time.Second)
	_ = publish(0, "127.0.0.1:9999")
	addr, _ := lookup(0)
	fmt.Println(addr)
	// Output: 127.0.0.1:9999
}
