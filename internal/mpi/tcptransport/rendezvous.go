package tcptransport

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"
)

// FileRendezvous builds Publish/Lookup functions over a shared directory:
// each rank writes its bound address to addr.<rank> (atomically, via
// temp-file + rename, so a polling peer never reads a torn address) and
// peers poll until the file appears or timeout expires. The launcher hands
// every worker of one incarnation the same directory; a fresh directory per
// incarnation keeps stale addresses of dead processes out of the mesh.
func FileRendezvous(dir string, timeout time.Duration) (publish func(rank int, addr string) error, lookup func(rank int) (string, error)) {
	return FileRendezvousCancel(dir, timeout, nil)
}

// FileRendezvousCancel is FileRendezvous with a cancellation probe: lookup
// additionally fails fast once canceled() reports true. A launcher that
// abandons an incarnation mid-mesh-formation (localized recovery's ABORT
// marker) uses it so parked workers stop waiting for addresses that will
// never be published.
func FileRendezvousCancel(dir string, timeout time.Duration, canceled func() bool) (publish func(rank int, addr string) error, lookup func(rank int) (string, error)) {
	path := func(rank int) string {
		return filepath.Join(dir, "addr."+strconv.Itoa(rank))
	}
	publish = func(rank int, addr string) error {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		tmp, err := os.CreateTemp(dir, ".addr.tmp*")
		if err != nil {
			return err
		}
		if _, err := tmp.WriteString(addr); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
		if err := tmp.Close(); err != nil {
			os.Remove(tmp.Name())
			return err
		}
		return os.Rename(tmp.Name(), path(rank))
	}
	lookup = func(rank int) (string, error) {
		deadline := time.Now().Add(timeout)
		for {
			b, err := os.ReadFile(path(rank))
			if err == nil && len(b) > 0 {
				return string(b), nil
			}
			if canceled != nil && canceled() {
				return "", fmt.Errorf("tcptransport: rendezvous in %s canceled before rank %d published", dir, rank)
			}
			if time.Now().After(deadline) {
				return "", fmt.Errorf("tcptransport: rank %d never published an address in %s", rank, dir)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return publish, lookup
}

// StaticRendezvous builds Publish/Lookup over a fixed address table; used
// by tests that bind every listener up front.
func StaticRendezvous(addrs []string) (publish func(rank int, addr string) error, lookup func(rank int) (string, error)) {
	publish = func(int, string) error { return nil }
	lookup = func(rank int) (string, error) {
		if rank < 0 || rank >= len(addrs) {
			return "", fmt.Errorf("tcptransport: no address for rank %d", rank)
		}
		return addrs[rank], nil
	}
	return publish, lookup
}
