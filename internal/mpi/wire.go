package mpi

import (
	"encoding/binary"
	"fmt"
)

// Wire encoding of one Message, used by cross-process transports. The
// layout mirrors the two-segment in-memory format: a fixed header (which
// carries the 32-bit protocol piggyback word out of band) followed by the
// payload, so decoding never re-allocates to strip control bytes.
//
//	ctx     int64   communicator context
//	source  int32   sender's rank within the communicator
//	tag     int32   application tag
//	header  uint32  out-of-band control word (protocol piggyback)
//	dlen    uint32  payload length
//	payload [dlen]byte
//
// All integers are little-endian.
const msgWireHeader = 24

// MessageWireSize reports the encoded size of m.
func MessageWireSize(m *Message) int { return msgWireHeader + len(m.Data) }

// AppendMessage appends the wire encoding of m to buf and returns the
// extended slice. It is the encoder used by transports that move messages
// between address spaces; the in-process transport never pays for it.
func AppendMessage(buf []byte, m *Message) []byte {
	var h [msgWireHeader]byte
	binary.LittleEndian.PutUint64(h[0:], uint64(m.ctx))
	binary.LittleEndian.PutUint32(h[8:], uint32(int32(m.Source)))
	binary.LittleEndian.PutUint32(h[12:], uint32(int32(m.Tag)))
	binary.LittleEndian.PutUint32(h[16:], m.Header)
	binary.LittleEndian.PutUint32(h[20:], uint32(len(m.Data)))
	buf = append(buf, h[:]...)
	return append(buf, m.Data...)
}

// DecodeMessage parses exactly one encoded message from b. The returned
// Message owns a fresh copy of the payload, so the caller may reuse b.
func DecodeMessage(b []byte) (*Message, error) {
	if len(b) < msgWireHeader {
		return nil, fmt.Errorf("mpi: message frame too short: %d bytes", len(b))
	}
	dlen := int(binary.LittleEndian.Uint32(b[20:]))
	if len(b) != msgWireHeader+dlen {
		return nil, fmt.Errorf("mpi: message frame length %d, want %d", len(b), msgWireHeader+dlen)
	}
	m := &Message{
		Source: int(int32(binary.LittleEndian.Uint32(b[8:]))),
		Tag:    int(int32(binary.LittleEndian.Uint32(b[12:]))),
		Header: binary.LittleEndian.Uint32(b[16:]),
		ctx:    int64(binary.LittleEndian.Uint64(b[0:])),
	}
	if dlen > 0 {
		m.Data = make([]byte, dlen)
		copy(m.Data, b[msgWireHeader:])
	}
	return m, nil
}

// Mailbox is the exported handle on the indexed mailbox, for Transport
// implementations outside this package: a cross-process transport decodes
// frames arriving on its sockets into a Mailbox and inherits matchOrder
// semantics — ordering, tie-breaking, Probe/Poll/Await behaviour, chaos
// insertion, and ErrWorldDead propagation — unchanged from the in-process
// substrate.
type Mailbox struct{ b *mailbox }

// NewMailbox builds a mailbox attached to w (for world-death checks and
// chaos insertion).
func NewMailbox(w *World) *Mailbox { return &Mailbox{b: newMailbox(w)} }

// Deliver queues m, applying the world's chaos insertion policy, and wakes
// waiting receivers.
func (mb *Mailbox) Deliver(m *Message) { mb.b.deliver(m) }

// Await blocks until a message matching one of specs is queued, removes and
// returns it with the index of the matched spec. Panics with ErrWorldDead
// once the world is shut down.
func (mb *Mailbox) Await(specs []RecvSpec) (int, *Message) { return mb.b.await(specs) }

// AwaitCond is Await with a cancellation condition; it returns (-1, nil)
// once stop() reports true, re-evaluating whenever the mailbox is woken.
func (mb *Mailbox) AwaitCond(specs []RecvSpec, stop func() bool) (int, *Message) {
	return mb.b.awaitCond(specs, stop)
}

// Poll is the non-blocking Await.
func (mb *Mailbox) Poll(specs []RecvSpec) (int, *Message) { return mb.b.poll(specs) }

// Probe reports whether a message matching spec is queued, without removing
// it.
func (mb *Mailbox) Probe(spec RecvSpec) (bool, *Message) { return mb.b.probe(spec) }

// Pending reports the number of queued messages.
func (mb *Mailbox) Pending() int { return mb.b.pending() }

// PendingApp reports the number of queued application messages (Tag >= 0)
// on ctx.
func (mb *Mailbox) PendingApp(ctx int64) int { return mb.b.pendingApp(ctx) }

// Interrupt wakes every receiver blocked on the mailbox so AwaitCond
// conditions and world-death are re-observed.
func (mb *Mailbox) Interrupt() {
	mb.b.mu.Lock()
	mb.b.cond.Broadcast()
	mb.b.mu.Unlock()
}
