package mpi

import (
	"bytes"
	"testing"
)

func TestMessageWireRoundTrip(t *testing.T) {
	cases := []*Message{
		{Source: 0, Tag: 0, ctx: 0},
		{Source: 3, Tag: 17, Header: 0xDEADBEEF, Data: []byte("hello"), ctx: 1 << 20},
		{Source: 1, Tag: -14, Data: []byte{0, 1, 2, 3, 4, 5, 6, 7}, ctx: -3},
		{Source: 1023, Tag: 1 << 30, Data: bytes.Repeat([]byte{0xAB}, 4096), ctx: (1 << 40) + 7},
	}
	for i, m := range cases {
		enc := AppendMessage(nil, m)
		if len(enc) != MessageWireSize(m) {
			t.Fatalf("case %d: encoded %d bytes, MessageWireSize says %d", i, len(enc), MessageWireSize(m))
		}
		got, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if got.Source != m.Source || got.Tag != m.Tag || got.Header != m.Header || got.ctx != m.ctx {
			t.Fatalf("case %d: decoded %+v, want %+v", i, got, m)
		}
		if !bytes.Equal(got.Data, m.Data) {
			t.Fatalf("case %d: payload mismatch: %d bytes vs %d", i, len(got.Data), len(m.Data))
		}
		// The decoded payload must be a fresh copy: mutating the wire buffer
		// must not reach through.
		if len(enc) > msgWireHeader {
			enc[msgWireHeader] ^= 0xFF
			if bytes.Equal(got.Data, enc[msgWireHeader:]) {
				t.Fatalf("case %d: decoded payload aliases the wire buffer", i)
			}
		}
	}
}

func TestDecodeMessageRejectsTornFrames(t *testing.T) {
	m := &Message{Source: 2, Tag: 9, Data: []byte("payload"), ctx: 5}
	enc := AppendMessage(nil, m)
	for _, n := range []int{0, 5, msgWireHeader - 1, len(enc) - 1} {
		if _, err := DecodeMessage(enc[:n]); err == nil {
			t.Fatalf("decoding %d of %d bytes succeeded, want error", n, len(enc))
		}
	}
	if _, err := DecodeMessage(append(append([]byte(nil), enc...), 0xFF)); err == nil {
		t.Fatal("decoding frame with trailing garbage succeeded, want error")
	}
}
