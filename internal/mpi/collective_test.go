package mpi

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestSendrecvRingRotation(t *testing.T) {
	// Classic ring rotation: everyone sends right and receives from the
	// left in one combined call; no ordering discipline needed.
	const n = 5
	runRanks(t, n, Options{}, func(c *Comm) {
		me := c.Rank()
		payload := []byte{byte(me)}
		m := c.Sendrecv((me+1)%n, 1, payload, (me-1+n)%n, 1)
		if int(m.Data[0]) != (me-1+n)%n {
			panic(fmt.Sprintf("rank %d got %d", me, m.Data[0]))
		}
	})
}

func TestSendrecvSelf(t *testing.T) {
	runRanks(t, 2, Options{}, func(c *Comm) {
		m := c.Sendrecv(c.Rank(), 3, []byte{42}, c.Rank(), 3)
		if m.Data[0] != 42 {
			panic("self sendrecv lost the payload")
		}
	})
}

func TestScanPrefixSums(t *testing.T) {
	for n := 1; n <= 6; n++ {
		results := make([]float64, n)
		runRanks(t, n, Options{}, func(c *Comm) {
			out := c.Scan(F64Bytes([]float64{float64(c.Rank() + 1)}), SumF64)
			results[c.Rank()] = BytesF64(out)[0]
		})
		for r := 0; r < n; r++ {
			want := float64((r + 1) * (r + 2) / 2) // 1+2+…+(r+1)
			if results[r] != want {
				t.Fatalf("n=%d rank %d: scan = %v, want %v", n, r, results[r], want)
			}
		}
	}
}

func TestScanProperty(t *testing.T) {
	// Scan at the last rank equals Allreduce for associative ops.
	f := func(vals [4]int8) bool {
		const n = 4
		var lastScan, allred float64
		w := NewWorld(n, Options{})
		done := make(chan struct{}, n)
		for r := 0; r < n; r++ {
			go func(r int) {
				defer func() { done <- struct{}{} }()
				c := w.Comm(r)
				x := []float64{float64(vals[r])}
				s := BytesF64(c.Scan(F64Bytes(x), SumF64))[0]
				a := BytesF64(c.Allreduce(F64Bytes(x), SumF64))[0]
				if r == n-1 {
					lastScan, allred = s, a
				}
			}(r)
		}
		for i := 0; i < n; i++ {
			<-done
		}
		return lastScan == allred
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestReducescatterBlocks(t *testing.T) {
	const n = 4
	results := make([][]float64, n)
	runRanks(t, n, Options{}, func(c *Comm) {
		// Rank r contributes blocks [r*10+0, r*10+1, r*10+2, r*10+3].
		blocks := make([]float64, n)
		for i := range blocks {
			blocks[i] = float64(c.Rank()*10 + i)
		}
		out := c.Reducescatter(F64Bytes(blocks), SumF64)
		results[c.Rank()] = BytesF64(out)
	})
	for r := 0; r < n; r++ {
		// Rank r's block: sum over senders s of (s*10 + r).
		want := 0.0
		for s := 0; s < n; s++ {
			want += float64(s*10 + r)
		}
		if len(results[r]) != 1 || results[r][0] != want {
			t.Fatalf("rank %d: %v, want [%v]", r, results[r], want)
		}
	}
}

func TestReducescatterRejectsBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	w := NewWorld(2, Options{})
	w.Comm(0).Reducescatter(make([]byte, 9), SumF64) // 9 % 2 != 0
}

func TestReducescatterMatchesReduceThenScatter(t *testing.T) {
	// Property: Reducescatter ≡ Reduce at root followed by Scatter.
	f := func(vals [3]uint8) bool {
		const n = 3
		ok := true
		w := NewWorld(n, Options{})
		done := make(chan struct{}, n)
		for r := 0; r < n; r++ {
			go func(r int) {
				defer func() { done <- struct{}{} }()
				c := w.Comm(r)
				blocks := make([]float64, n)
				for i := range blocks {
					blocks[i] = float64(vals[r]) + float64(i)*0.5
				}
				rs := c.Reducescatter(F64Bytes(blocks), SumF64)
				red := c.Reduce(0, F64Bytes(blocks), SumF64)
				sc := c.Scatter(0, red)
				if string(rs) != string(sc) {
					ok = false
				}
			}(r)
		}
		for i := 0; i < n; i++ {
			<-done
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
