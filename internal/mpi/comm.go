package mpi

import (
	"fmt"
	"sort"
)

// Comm is one rank's handle on a communicator: a context id plus an ordered
// group of world ranks. Messages sent on one communicator are invisible to
// receives on another, as in MPI.
type Comm struct {
	world   *World
	ctx     int64
	members []int // comm rank -> world rank
	myIdx   int   // this process's comm rank
	// collSeq numbers collective calls on this communicator. Collectives
	// must be called in the same order by all members (an MPI requirement),
	// so the per-rank counters agree without communication.
	collSeq int64
	// scratch is the reusable receive-spec buffer for this rank's
	// single-threaded matched receives (see Comm.stamp).
	scratch []RecvSpec
}

// Rank returns this process's rank within the communicator.
func (c *Comm) Rank() int { return c.myIdx }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.members) }

// World returns the underlying world (used by supervisors and tests).
func (c *Comm) World() *World { return c.world }

func (c *Comm) worldRank(commRank int) int {
	if commRank < 0 || commRank >= len(c.members) {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", commRank, len(c.members)))
	}
	return c.members[commRank]
}

// Dup creates a duplicate communicator with the same group but a new
// context. All members must call Dup collectively and will agree on the
// context id because it is derived from a collectively-agreed counter.
//
// Dup is one of the "persistent opaque object" creation calls whose replay
// reconstructs MPI library state on recovery (Section 5.2).
func (c *Comm) Dup() *Comm {
	ctx := c.agreeContext()
	return &Comm{world: c.world, ctx: ctx, members: append([]int(nil), c.members...), myIdx: c.myIdx}
}

// Split partitions the communicator by color; within each color, ranks are
// ordered by key (ties broken by parent rank). Every member must call Split
// collectively. A negative color yields a nil communicator for that rank.
func (c *Comm) Split(color, key int) *Comm {
	ctx := c.agreeContext()
	// Gather (color, key) from everyone over the parent communicator.
	mine := make([]byte, 16)
	putI64(mine, 0, int64(color))
	putI64(mine, 8, int64(key))
	all := c.Allgather(mine)
	type ck struct{ color, key, rank int }
	var group []ck
	for r := 0; r < c.Size(); r++ {
		col := int(getI64(all, r*16))
		k := int(getI64(all, r*16+8))
		if col == color {
			group = append(group, ck{col, k, r})
		}
	}
	if color < 0 {
		return nil
	}
	sort.Slice(group, func(i, j int) bool {
		if group[i].key != group[j].key {
			return group[i].key < group[j].key
		}
		return group[i].rank < group[j].rank
	})
	members := make([]int, len(group))
	myIdx := -1
	for i, g := range group {
		members[i] = c.members[g.rank]
		if g.rank == c.myIdx {
			myIdx = i
		}
	}
	// Offset the agreed context by color so sibling sub-communicators do
	// not share a context.
	return &Comm{world: c.world, ctx: ctx + int64(color) + 1, members: members, myIdx: myIdx}
}

// agreeContext has all members agree on a fresh context id: rank 0 of the
// communicator allocates it and broadcasts.
func (c *Comm) agreeContext() int64 {
	var ctx int64
	if c.myIdx == 0 {
		// Context ids are spaced out so Split can offset by color.
		ctx = c.world.ctxCounter.Add(1) << 20
	}
	b := make([]byte, 8)
	putI64(b, 0, ctx)
	b = c.Bcast(0, b)
	return getI64(b, 0)
}

func putI64(b []byte, off int, v int64) {
	for i := 0; i < 8; i++ {
		b[off+i] = byte(v >> (8 * i))
	}
}

func getI64(b []byte, off int) int64 {
	var v int64
	for i := 0; i < 8; i++ {
		v |= int64(b[off+i]) << (8 * i)
	}
	return v
}
