package mpi

import "fmt"

// Request is the handle of a non-blocking operation (MPI_Request). The
// protocol layer wraps these in pseudo-handles so they can be reconstructed
// after a restart (Section 5.2).
type Request struct {
	comm *Comm
	// For receives: the posted spec. For sends: nil (the transport copies
	// eagerly, so a send completes at post time, like a buffered send).
	recv *RecvSpec
	done bool
	msg  *Message
}

// IsRecv reports whether the request was produced by Irecv.
func (r *Request) IsRecv() bool { return r.recv != nil }

// Spec returns the posted receive spec of an Irecv request.
func (r *Request) Spec() (source, tag int) {
	if r.recv == nil {
		panic("mpi: Spec on a send request")
	}
	return r.recv.Source, r.recv.Tag
}

// Send delivers data to dst with the given tag. Delivery is reliable and
// eager: the payload is copied into the destination mailbox before Send
// returns (the transport has unbounded buffering, as the paper's reliable
// delivery layer provides). Sends to stop-failed ranks vanish, which is
// indistinguishable from the failed process never receiving them.
func (c *Comm) Send(dst, tag int, data []byte) {
	c.world.enter(c.members[c.myIdx])
	c.send(dst, tag, data)
}

// send is Send without the operation-counter entry hook; collectives use it
// so that one collective counts as one operation for kill plans.
func (c *Comm) send(dst, tag int, data []byte) {
	wdst := c.worldRank(dst)
	if c.world.killed[wdst].Load() {
		return // stopping failure: the destination no longer receives
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.world.boxes[wdst].deliver(&Message{Source: c.myIdx, Tag: tag, Data: cp, ctx: c.ctx})
}

// Recv blocks until a message matching (src, tag) arrives and returns it.
// src may be AnySource and tag may be AnyTag.
func (c *Comm) Recv(src, tag int) *Message {
	c.world.enter(c.members[c.myIdx])
	return c.recv(src, tag)
}

func (c *Comm) recv(src, tag int) *Message {
	_, m := c.box().await([]RecvSpec{{Source: src, Tag: tag, ctx: c.ctx}})
	return m
}

// Isend posts a non-blocking send. Because the transport copies eagerly,
// the returned request is already complete; Wait on it returns immediately
// with a nil message, matching MPI's semantics that completion of a send
// request only means the buffer is reusable.
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	c.world.enter(c.members[c.myIdx])
	c.send(dst, tag, data)
	return &Request{comm: c, done: true}
}

// Irecv posts a non-blocking receive. Matching is performed lazily at
// Wait/Test time, which preserves MPI's guarantee that the message is
// matched against the posted spec.
func (c *Comm) Irecv(src, tag int) *Request {
	c.world.enter(c.members[c.myIdx])
	return &Request{comm: c, recv: &RecvSpec{Source: src, Tag: tag, ctx: c.ctx}}
}

// Wait blocks until the request completes. For receives it returns the
// delivered message; for sends it returns nil.
func (c *Comm) Wait(r *Request) *Message {
	c.world.enter(c.members[c.myIdx])
	return c.wait(r)
}

func (c *Comm) wait(r *Request) *Message {
	if r.done {
		return r.msg
	}
	if r.recv == nil {
		r.done = true
		return nil
	}
	_, m := c.box().await([]RecvSpec{*r.recv})
	r.done = true
	r.msg = m
	return m
}

// Test checks the request without blocking. ok reports completion.
func (c *Comm) Test(r *Request) (*Message, bool) {
	c.world.enter(c.members[c.myIdx])
	if r.done {
		return r.msg, true
	}
	if r.recv == nil {
		r.done = true
		return nil, true
	}
	if _, m := c.box().poll([]RecvSpec{*r.recv}); m != nil {
		r.done = true
		r.msg = m
		return m, true
	}
	return nil, false
}

// Waitall completes every request, returning messages in request order
// (nil entries for sends).
func (c *Comm) Waitall(rs []*Request) []*Message {
	out := make([]*Message, len(rs))
	for i, r := range rs {
		out[i] = c.Wait(r)
	}
	return out
}

// Iprobe reports whether a message matching (src, tag) is available,
// without receiving it.
func (c *Comm) Iprobe(src, tag int) (bool, *Message) {
	c.world.enter(c.members[c.myIdx])
	return c.box().probe(RecvSpec{Source: src, Tag: tag, ctx: c.ctx})
}

// Select blocks until a message matching any of the given (source, tag)
// specs is available and receives it, returning the index of the matching
// spec. The protocol layer uses this to wait for application messages and
// control messages simultaneously.
func (c *Comm) Select(specs []RecvSpec) (int, *Message) {
	c.world.enter(c.members[c.myIdx])
	withCtx := make([]RecvSpec, len(specs))
	for i, s := range specs {
		s.ctx = c.ctx
		withCtx[i] = s
	}
	return c.box().await(withCtx)
}

// PollSelect is the non-blocking variant of Select; it returns (-1, nil)
// when nothing matches.
func (c *Comm) PollSelect(specs []RecvSpec) (int, *Message) {
	c.world.enter(c.members[c.myIdx])
	withCtx := make([]RecvSpec, len(specs))
	for i, s := range specs {
		s.ctx = c.ctx
		withCtx[i] = s
	}
	return c.box().poll(withCtx)
}

// Pending reports the number of undelivered messages queued for this rank
// across all communicators (diagnostics).
func (c *Comm) Pending() int { return c.box().pending() }

// PendingApp reports the number of undelivered application messages
// (non-negative tags) queued for this rank on this communicator, excluding
// internal collective and reserved-tag traffic.
func (c *Comm) PendingApp() int { return c.box().pendingApp(c.ctx) }

func (c *Comm) box() *mailbox { return c.world.boxes[c.members[c.myIdx]] }

func (c *Comm) String() string {
	return fmt.Sprintf("comm(ctx=%d rank=%d/%d)", c.ctx, c.myIdx, len(c.members))
}
