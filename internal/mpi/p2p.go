package mpi

import "fmt"

// Request is the handle of a non-blocking operation (MPI_Request). The
// protocol layer wraps these in pseudo-handles so they can be reconstructed
// after a restart (Section 5.2).
type Request struct {
	comm *Comm
	// For receives: the posted spec. For sends: nil (the transport copies
	// eagerly, so a send completes at post time, like a buffered send).
	recv *RecvSpec
	done bool
	msg  *Message
}

// IsRecv reports whether the request was produced by Irecv.
func (r *Request) IsRecv() bool { return r.recv != nil }

// Spec returns the posted receive spec of an Irecv request.
func (r *Request) Spec() (source, tag int) {
	if r.recv == nil {
		panic("mpi: Spec on a send request")
	}
	return r.recv.Source, r.recv.Tag
}

// Send delivers data to dst with the given tag. Delivery is reliable and
// eager: the payload is copied into the destination mailbox before Send
// returns (the transport has unbounded buffering, as the paper's reliable
// delivery layer provides). Sends to stop-failed ranks vanish, which is
// indistinguishable from the failed process never receiving them.
func (c *Comm) Send(dst, tag int, data []byte) {
	c.world.enter(c.members[c.myIdx])
	c.send(dst, tag, data)
}

// SendHdr is Send with an out-of-band 32-bit header word (the second
// segment of the wire format). The protocol layer packs its piggyback here
// instead of prepending it to the payload, so attaching control
// information costs no extra allocation or copy.
func (c *Comm) SendHdr(dst, tag int, header uint32, data []byte) {
	c.world.enter(c.members[c.myIdx])
	c.sendh(dst, tag, header, data)
}

// SendShared delivers data without the defensive copy: the caller hands
// the buffer over and must not modify it after the call (the receiver, and
// anyone the caller deliberately shares it with, see the same bytes). This
// is the zero-copy handoff a real transport performs when the send buffer
// is DMA-ready; SenderLog uses it to share one immutable buffer between
// its retained log entry and the wire.
func (c *Comm) SendShared(dst, tag int, data []byte) {
	c.SendSharedHdr(dst, tag, 0, data)
}

// SendSharedHdr is SendShared with an out-of-band 32-bit header word: the
// zero-copy handoff of SendShared combined with the piggyback channel of
// SendHdr. The protocol layer's owned-buffer send path (typed messaging)
// uses it so an encoded payload crosses the substrate with no further copy.
func (c *Comm) SendSharedHdr(dst, tag int, header uint32, data []byte) {
	c.world.enter(c.members[c.myIdx])
	wdst := c.worldRank(dst)
	if c.world.killed[wdst].Load() {
		return
	}
	c.world.tr.Send(wdst, &Message{Source: c.myIdx, Tag: tag, Header: header, Data: data, ctx: c.ctx})
}

// send is the uncounted send core; collectives use it so that one
// collective counts as one operation for kill plans.
func (c *Comm) send(dst, tag int, data []byte) {
	c.sendh(dst, tag, 0, data)
}

func (c *Comm) sendh(dst, tag int, header uint32, data []byte) {
	wdst := c.worldRank(dst)
	if c.world.killed[wdst].Load() {
		return // stopping failure: the destination no longer receives
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.world.tr.Send(wdst, &Message{Source: c.myIdx, Tag: tag, Header: header, Data: cp, ctx: c.ctx})
}

// Recv blocks until a message matching (src, tag) arrives and returns it.
// src may be AnySource and tag may be AnyTag.
func (c *Comm) Recv(src, tag int) *Message {
	c.world.enter(c.members[c.myIdx])
	return c.recv(src, tag)
}

func (c *Comm) recv(src, tag int) *Message {
	_, m := c.world.tr.Await(c.members[c.myIdx], c.spec1(RecvSpec{Source: src, Tag: tag}))
	return m
}

// Isend posts a non-blocking send. Because the transport copies eagerly,
// the returned request is already complete; Wait on it returns immediately
// with a nil message, matching MPI's semantics that completion of a send
// request only means the buffer is reusable.
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	c.world.enter(c.members[c.myIdx])
	c.send(dst, tag, data)
	return &Request{comm: c, done: true}
}

// Irecv posts a non-blocking receive. Matching is performed lazily at
// Wait/Test time, which preserves MPI's guarantee that the message is
// matched against the posted spec.
func (c *Comm) Irecv(src, tag int) *Request {
	c.world.enter(c.members[c.myIdx])
	return &Request{comm: c, recv: &RecvSpec{Source: src, Tag: tag, ctx: c.ctx}}
}

// Wait blocks until the request completes. For receives it returns the
// delivered message; for sends it returns nil.
func (c *Comm) Wait(r *Request) *Message {
	c.world.enter(c.members[c.myIdx])
	return c.wait(r)
}

func (c *Comm) wait(r *Request) *Message {
	if r.done {
		return r.msg
	}
	if r.recv == nil {
		r.done = true
		return nil
	}
	_, m := c.world.tr.Await(c.members[c.myIdx], c.spec1(*r.recv))
	r.done = true
	r.msg = m
	return m
}

// Test checks the request without blocking. ok reports completion.
func (c *Comm) Test(r *Request) (*Message, bool) {
	c.world.enter(c.members[c.myIdx])
	if r.done {
		return r.msg, true
	}
	if r.recv == nil {
		r.done = true
		return nil, true
	}
	if _, m := c.world.tr.Poll(c.members[c.myIdx], c.spec1(*r.recv)); m != nil {
		r.done = true
		r.msg = m
		return m, true
	}
	return nil, false
}

// Waitall completes every request, returning messages in request order
// (nil entries for sends).
func (c *Comm) Waitall(rs []*Request) []*Message {
	out := make([]*Message, len(rs))
	for i, r := range rs {
		out[i] = c.Wait(r)
	}
	return out
}

// Iprobe reports whether a message matching (src, tag) is available,
// without receiving it.
func (c *Comm) Iprobe(src, tag int) (bool, *Message) {
	c.world.enter(c.members[c.myIdx])
	return c.world.tr.Probe(c.members[c.myIdx], RecvSpec{Source: src, Tag: tag, ctx: c.ctx})
}

// Select blocks until a message matching any of the given (source, tag)
// specs is available and receives it, returning the index of the matching
// spec. The protocol layer uses this to wait for application messages and
// control messages simultaneously.
func (c *Comm) Select(specs []RecvSpec) (int, *Message) {
	c.world.enter(c.members[c.myIdx])
	return c.world.tr.Await(c.members[c.myIdx], c.stamp(specs))
}

// SelectWait is Select with a cancellation condition: it also returns
// (-1, nil) once stop() reports true. stop is re-evaluated whenever a
// message arrives or World.Interrupt runs, so a caller can park here and
// be woken by either control traffic or an external completion signal —
// the engine's finished ranks do exactly that instead of busy-polling.
func (c *Comm) SelectWait(specs []RecvSpec, stop func() bool) (int, *Message) {
	c.world.enter(c.members[c.myIdx])
	return c.world.tr.AwaitCond(c.members[c.myIdx], c.stamp(specs), stop)
}

// PollSelect is the non-blocking variant of Select; it returns (-1, nil)
// when nothing matches.
func (c *Comm) PollSelect(specs []RecvSpec) (int, *Message) {
	c.world.enter(c.members[c.myIdx])
	return c.world.tr.Poll(c.members[c.myIdx], c.stamp(specs))
}

// stamp copies specs into the communicator's scratch buffer with this
// communicator's context filled in. The scratch is reused across calls —
// a Comm serves one rank's single-threaded program, so per-call slice
// allocations on the receive hot path would be pure overhead.
func (c *Comm) stamp(specs []RecvSpec) []RecvSpec {
	if cap(c.scratch) < len(specs) {
		c.scratch = make([]RecvSpec, len(specs))
	}
	out := c.scratch[:len(specs)]
	for i, s := range specs {
		s.ctx = c.ctx
		out[i] = s
	}
	return out
}

// spec1 stamps a single spec into the scratch buffer.
func (c *Comm) spec1(s RecvSpec) []RecvSpec {
	if cap(c.scratch) < 1 {
		c.scratch = make([]RecvSpec, 1)
	}
	s.ctx = c.ctx
	c.scratch[0] = s
	return c.scratch[:1]
}

// Pending reports the number of undelivered messages queued for this rank
// across all communicators (diagnostics).
func (c *Comm) Pending() int { return c.world.tr.Pending(c.members[c.myIdx]) }

// PendingApp reports the number of undelivered application messages
// (non-negative tags) queued for this rank on this communicator, excluding
// internal collective and reserved-tag traffic.
func (c *Comm) PendingApp() int { return c.world.tr.PendingApp(c.members[c.myIdx], c.ctx) }

func (c *Comm) String() string {
	return fmt.Sprintf("comm(ctx=%d rank=%d/%d)", c.ctx, c.myIdx, len(c.members))
}
