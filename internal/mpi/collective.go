package mpi

import "fmt"

// Collective operations. As in the paper's benchmark codes (whose allReduce
// and allGather are "implemented in terms of point-to-point messages along
// a butterfly tree"), every collective here decomposes into point-to-point
// messages on reserved internal tags. The checkpointing protocol layer sits
// *above* this interface and never sees the internal messages — the
// property Section 4.5 calls out as the reason collective handling stays
// simple.

// Op combines two equally-sized payloads for reductions: dst = dst ⊕ src.
type Op interface {
	Combine(dst, src []byte)
}

// internal collective tag space; far below any control tags the protocol
// layer reserves.
const collTagBase = -(1 << 30)

func (c *Comm) collTag(seq int64, phase int) int {
	return collTagBase - int(seq%65536)*64 - phase
}

// nextColl advances the per-communicator collective sequence number. All
// ranks call collectives in the same order (an MPI requirement), so the
// sequence numbers agree without communication.
func (c *Comm) nextColl() int64 {
	c.collSeq++
	return c.collSeq
}

// Barrier blocks until every rank in the communicator has entered it
// (dissemination algorithm, ⌈log2 n⌉ rounds).
func (c *Comm) Barrier() {
	c.world.enter(c.members[c.myIdx])
	seq := c.nextColl()
	n := c.Size()
	me := c.myIdx
	for k, round := 1, 0; k < n; k, round = k*2, round+1 {
		dst := (me + k) % n
		src := (me - k + n) % n
		c.send(dst, c.collTag(seq, round), nil)
		c.recvInternal(src, c.collTag(seq, round))
	}
}

// Bcast distributes root's payload to every rank (binomial tree) and
// returns it.
func (c *Comm) Bcast(root int, data []byte) []byte {
	c.world.enter(c.members[c.myIdx])
	return c.bcast(root, data)
}

func (c *Comm) bcast(root int, data []byte) []byte {
	seq := c.nextColl()
	n := c.Size()
	// Work in a rotated space where root is rank 0 (MPICH-style binomial).
	vrank := (c.myIdx - root + n) % n
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			parent := (vrank - mask + root) % n
			m := c.recvInternal(parent, c.collTag(seq, 0))
			data = m.Data
			break
		}
		mask <<= 1
	}
	// mask is now the lowest set bit of vrank (or >= n for the root);
	// relay to children at decreasing offsets.
	mask >>= 1
	for mask > 0 {
		if vrank+mask < n {
			dst := (vrank + mask + root) % n
			c.send(dst, c.collTag(seq, 0), data)
		}
		mask >>= 1
	}
	return data
}

// Reduce combines every rank's payload with op, leaving the result at root
// (binomial tree). Non-roots return nil.
func (c *Comm) Reduce(root int, data []byte, op Op) []byte {
	c.world.enter(c.members[c.myIdx])
	return c.reduce(root, data, op)
}

func (c *Comm) reduce(root int, data []byte, op Op) []byte {
	seq := c.nextColl()
	n := c.Size()
	vrank := (c.myIdx - root + n) % n
	acc := append([]byte(nil), data...)
	for mask := 1; mask < n; mask *= 2 {
		if vrank&mask != 0 {
			parent := ((vrank &^ mask) + root) % n
			c.send(parent, c.collTag(seq, bitIndex(mask)), acc)
			return nil
		}
		if vrank+mask < n {
			m := c.recvInternal(AnySource, c.collTag(seq, bitIndex(mask)))
			if len(m.Data) != len(acc) {
				panic(fmt.Sprintf("mpi: Reduce length mismatch: %d vs %d", len(m.Data), len(acc)))
			}
			op.Combine(acc, m.Data)
		}
	}
	return acc
}

// Allreduce combines every rank's payload with op and returns the combined
// value on all ranks. For power-of-two communicators it uses recursive
// doubling (the butterfly of the paper's CG code); otherwise it reduces to
// rank 0 and broadcasts.
func (c *Comm) Allreduce(data []byte, op Op) []byte {
	c.world.enter(c.members[c.myIdx])
	n := c.Size()
	if n&(n-1) != 0 {
		acc := c.reduce(0, data, op)
		return c.bcast(0, acc)
	}
	seq := c.nextColl()
	acc := append([]byte(nil), data...)
	for mask, round := 1, 0; mask < n; mask, round = mask*2, round+1 {
		partner := c.myIdx ^ mask
		c.send(partner, c.collTag(seq, round), acc)
		m := c.recvInternal(partner, c.collTag(seq, round))
		if len(m.Data) != len(acc) {
			panic(fmt.Sprintf("mpi: Allreduce length mismatch: %d vs %d", len(m.Data), len(acc)))
		}
		op.Combine(acc, m.Data)
	}
	return acc
}

// Gather concatenates every rank's equal-sized payload at root in rank
// order. Non-roots return nil.
func (c *Comm) Gather(root int, data []byte) []byte {
	c.world.enter(c.members[c.myIdx])
	return c.gather(root, data)
}

func (c *Comm) gather(root int, data []byte) []byte {
	seq := c.nextColl()
	n := c.Size()
	if c.myIdx != root {
		c.send(root, c.collTag(seq, 0), data)
		return nil
	}
	out := make([]byte, len(data)*n)
	copy(out[root*len(data):], data)
	for i := 0; i < n-1; i++ {
		m := c.recvInternal(AnySource, c.collTag(seq, 0))
		if len(m.Data) != len(data) {
			panic(fmt.Sprintf("mpi: Gather length mismatch: %d vs %d", len(m.Data), len(data)))
		}
		copy(out[m.Source*len(data):], m.Data)
	}
	return out
}

// Allgather concatenates every rank's equal-sized payload on all ranks in
// rank order. Power-of-two communicators use recursive doubling (butterfly);
// others gather to rank 0 and broadcast.
func (c *Comm) Allgather(data []byte) []byte {
	c.world.enter(c.members[c.myIdx])
	n := c.Size()
	if n&(n-1) != 0 {
		out := c.gather(0, data)
		return c.bcast(0, out)
	}
	seq := c.nextColl()
	blk := len(data)
	out := make([]byte, blk*n)
	copy(out[c.myIdx*blk:], data)
	// Recursive doubling: at the start of the round with offset mask, this
	// rank owns the mask blocks of its aligned group [myIdx &^ (mask-1),
	// +mask); exchanging groups with the partner doubles the holding.
	for mask, round := 1, 0; mask < n; mask, round = mask*2, round+1 {
		partner := c.myIdx ^ mask
		myStart := c.myIdx &^ (mask - 1)
		c.send(partner, c.collTag(seq, round), out[myStart*blk:(myStart+mask)*blk])
		m := c.recvInternal(partner, c.collTag(seq, round))
		theirStart := partner &^ (mask - 1)
		if len(m.Data) != mask*blk {
			panic(fmt.Sprintf("mpi: Allgather length mismatch: %d vs %d", len(m.Data), mask*blk))
		}
		copy(out[theirStart*blk:], m.Data)
	}
	return out
}

// Alltoall sends block i of this rank's payload to rank i and returns the
// blocks received from every rank, in rank order. The payload must divide
// evenly into Size() blocks.
func (c *Comm) Alltoall(data []byte) []byte {
	c.world.enter(c.members[c.myIdx])
	seq := c.nextColl()
	n := c.Size()
	if len(data)%n != 0 {
		panic(fmt.Sprintf("mpi: Alltoall payload %d not divisible by %d ranks", len(data), n))
	}
	blk := len(data) / n
	out := make([]byte, len(data))
	copy(out[c.myIdx*blk:], data[c.myIdx*blk:(c.myIdx+1)*blk])
	for i := 1; i < n; i++ {
		dst := (c.myIdx + i) % n
		c.send(dst, c.collTag(seq, 0), data[dst*blk:(dst+1)*blk])
	}
	for i := 1; i < n; i++ {
		m := c.recvInternal(AnySource, c.collTag(seq, 0))
		if len(m.Data) != blk {
			panic(fmt.Sprintf("mpi: Alltoall length mismatch: %d vs %d", len(m.Data), blk))
		}
		copy(out[m.Source*blk:], m.Data)
	}
	return out
}

// Scatter distributes root's payload in equal blocks: rank i receives block
// i. The payload length at root must divide evenly into Size() blocks.
func (c *Comm) Scatter(root int, data []byte) []byte {
	c.world.enter(c.members[c.myIdx])
	seq := c.nextColl()
	n := c.Size()
	if c.myIdx == root {
		if len(data)%n != 0 {
			panic(fmt.Sprintf("mpi: Scatter payload %d not divisible by %d ranks", len(data), n))
		}
		blk := len(data) / n
		for i := 0; i < n; i++ {
			if i == root {
				continue
			}
			c.send(i, c.collTag(seq, 0), data[i*blk:(i+1)*blk])
		}
		return append([]byte(nil), data[root*blk:(root+1)*blk]...)
	}
	m := c.recvInternal(root, c.collTag(seq, 0))
	return m.Data
}

// recvInternal is a receive that does not count as a user-visible substrate
// operation (it is part of an already-counted collective).
func (c *Comm) recvInternal(src, tag int) *Message {
	if c.world.dead.Load() {
		panic(ErrWorldDead)
	}
	_, m := c.world.tr.Await(c.members[c.myIdx], c.spec1(RecvSpec{Source: src, Tag: tag}))
	return m
}

func bitIndex(mask int) int {
	i := 0
	for mask > 1 {
		mask >>= 1
		i++
	}
	return i
}

// Additional MPI collective and combined operations: Sendrecv, Scan, and
// Reducescatter. These complete the operation set the paper's MPI context
// assumes; like the rest of the substrate they decompose into point-to-point
// messages below the protocol layer.

// Sendrecv sends to dst with sendTag and receives from src with recvTag in
// one combined operation, deadlock-free regardless of ordering (MPI's
// MPI_Sendrecv). The transport buffers eagerly, so send-then-receive cannot
// block.
func (c *Comm) Sendrecv(dst, sendTag int, data []byte, src, recvTag int) *Message {
	c.world.enter(c.members[c.myIdx])
	c.send(dst, sendTag, data)
	return c.recv(src, recvTag)
}

// Scan computes the inclusive prefix reduction: rank i receives the
// combination of the payloads of ranks 0..i (MPI_Scan). Implemented as a
// linear chain, the standard algorithm for modest rank counts.
func (c *Comm) Scan(data []byte, op Op) []byte {
	c.world.enter(c.members[c.myIdx])
	seq := c.nextColl()
	acc := append([]byte(nil), data...)
	if c.myIdx > 0 {
		m := c.recvInternal(c.myIdx-1, c.collTag(seq, 0))
		// acc = prefix ⊕ own: Combine folds src into dst, so start from the
		// predecessor's prefix and fold our contribution in.
		prefix := append([]byte(nil), m.Data...)
		op.Combine(prefix, acc)
		acc = prefix
	}
	if c.myIdx < c.Size()-1 {
		c.send(c.myIdx+1, c.collTag(seq, 0), acc)
	}
	return acc
}

// Reducescatter combines equal-sized per-rank blocks across all ranks and
// scatters the result: rank i receives the reduction of everyone's i-th
// block (MPI_Reduce_scatter_block). data must be size×blockLen bytes.
func (c *Comm) Reducescatter(data []byte, op Op) []byte {
	c.world.enter(c.members[c.myIdx])
	n := c.Size()
	if len(data)%n != 0 {
		panic(fmt.Sprintf("mpi: Reducescatter: payload %d bytes not divisible by %d ranks", len(data), n))
	}
	blockLen := len(data) / n
	seq := c.nextColl()

	// Reduce at rank 0 over a binomial tree, then scatter the blocks.
	// (Reduce-then-scatter is the simple algorithm; recursive halving is an
	// optimization with identical semantics.)
	acc := append([]byte(nil), data...)
	vrank := c.myIdx
	for mask := 1; mask < n; mask <<= 1 {
		if vrank&mask != 0 {
			c.send(c.myIdx-mask, c.collTag(seq, bitIndex(mask)), acc)
			break
		}
		if peer := c.myIdx + mask; peer < n {
			m := c.recvInternal(peer, c.collTag(seq, bitIndex(mask)))
			op.Combine(acc, m.Data)
		}
	}
	if c.myIdx == 0 {
		for r := 1; r < n; r++ {
			c.send(r, c.collTag(seq, 40), acc[r*blockLen:(r+1)*blockLen])
		}
		return acc[:blockLen:blockLen]
	}
	m := c.recvInternal(0, c.collTag(seq, 40))
	return m.Data
}
