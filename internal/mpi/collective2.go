package mpi

import "fmt"

// Additional MPI collective and combined operations: Sendrecv, Scan, and
// Reducescatter. These complete the operation set the paper's MPI context
// assumes; like the rest of the substrate they decompose into point-to-point
// messages below the protocol layer.

// Sendrecv sends to dst with sendTag and receives from src with recvTag in
// one combined operation, deadlock-free regardless of ordering (MPI's
// MPI_Sendrecv). The transport buffers eagerly, so send-then-receive cannot
// block.
func (c *Comm) Sendrecv(dst, sendTag int, data []byte, src, recvTag int) *Message {
	c.world.enter(c.members[c.myIdx])
	c.send(dst, sendTag, data)
	return c.recv(src, recvTag)
}

// Scan computes the inclusive prefix reduction: rank i receives the
// combination of the payloads of ranks 0..i (MPI_Scan). Implemented as a
// linear chain, the standard algorithm for modest rank counts.
func (c *Comm) Scan(data []byte, op Op) []byte {
	c.world.enter(c.members[c.myIdx])
	seq := c.nextColl()
	acc := append([]byte(nil), data...)
	if c.myIdx > 0 {
		m := c.recvInternal(c.myIdx-1, c.collTag(seq, 0))
		// acc = prefix ⊕ own: Combine folds src into dst, so start from the
		// predecessor's prefix and fold our contribution in.
		prefix := append([]byte(nil), m.Data...)
		op.Combine(prefix, acc)
		acc = prefix
	}
	if c.myIdx < c.Size()-1 {
		c.send(c.myIdx+1, c.collTag(seq, 0), acc)
	}
	return acc
}

// Reducescatter combines equal-sized per-rank blocks across all ranks and
// scatters the result: rank i receives the reduction of everyone's i-th
// block (MPI_Reduce_scatter_block). data must be size×blockLen bytes.
func (c *Comm) Reducescatter(data []byte, op Op) []byte {
	c.world.enter(c.members[c.myIdx])
	n := c.Size()
	if len(data)%n != 0 {
		panic(fmt.Sprintf("mpi: Reducescatter: payload %d bytes not divisible by %d ranks", len(data), n))
	}
	blockLen := len(data) / n
	seq := c.nextColl()

	// Reduce at rank 0 over a binomial tree, then scatter the blocks.
	// (Reduce-then-scatter is the simple algorithm; recursive halving is an
	// optimization with identical semantics.)
	acc := append([]byte(nil), data...)
	vrank := c.myIdx
	for mask := 1; mask < n; mask <<= 1 {
		if vrank&mask != 0 {
			c.send(c.myIdx-mask, c.collTag(seq, bitIndex(mask)), acc)
			break
		}
		if peer := c.myIdx + mask; peer < n {
			m := c.recvInternal(peer, c.collTag(seq, bitIndex(mask)))
			op.Combine(acc, m.Data)
		}
	}
	if c.myIdx == 0 {
		for r := 1; r < n; r++ {
			c.send(r, c.collTag(seq, 40), acc[r*blockLen:(r+1)*blockLen])
		}
		return acc[:blockLen:blockLen]
	}
	m := c.recvInternal(0, c.collTag(seq, 40))
	return m.Data
}
