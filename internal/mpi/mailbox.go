package mpi

import "sync"

// Message is an application-visible message as delivered by Recv or Wait.
type Message struct {
	// Source is the sender's rank within the receiving communicator.
	Source int
	// Tag is the application tag the message was sent with.
	Tag int
	// Data is the payload. The receiver owns it.
	Data []byte

	ctx int64 // communicator context the message belongs to
	seq uint64
}

// RecvSpec describes what a receive is willing to match.
type RecvSpec struct {
	Source int // rank within the communicator, or AnySource
	Tag    int // tag, or AnyTag
	ctx    int64
}

func (s RecvSpec) matches(m *Message) bool {
	if m.ctx != s.ctx {
		return false
	}
	if s.Source != AnySource && s.Source != m.Source {
		return false
	}
	if s.Tag != AnyTag && s.Tag != m.Tag {
		return false
	}
	return true
}

// mailbox holds the arrived-but-unmatched messages of one rank. Matching
// scans in arrival order (possibly perturbed by chaos insertion), so two
// messages with the same (source, tag, ctx) are received in arrival order,
// while tag matching lets the application receive messages out of order —
// the non-FIFO property of Section 3.3.
type mailbox struct {
	world *World
	mu    sync.Mutex
	cond  *sync.Cond
	queue []*Message
	seq   uint64
}

func newMailbox(w *World) *mailbox {
	b := &mailbox{world: w}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// deliver appends (or chaos-inserts) a message and wakes waiting receivers.
func (b *mailbox) deliver(m *Message) {
	b.mu.Lock()
	b.seq++
	m.seq = b.seq
	if slot := b.world.chaosSlot(m, b.queue); slot >= 0 {
		b.queue = append(b.queue, nil)
		copy(b.queue[slot+1:], b.queue[slot:])
		b.queue[slot] = m
	} else {
		b.queue = append(b.queue, m)
	}
	b.cond.Broadcast()
	b.mu.Unlock()
}

// tryMatch removes and returns the first message matching any spec, along
// with the index of the spec that matched.
func (b *mailbox) tryMatch(specs []RecvSpec) (int, *Message) {
	for qi, m := range b.queue {
		for si, s := range specs {
			if s.matches(m) {
				b.queue = append(b.queue[:qi], b.queue[qi+1:]...)
				return si, m
			}
		}
	}
	return -1, nil
}

// await blocks until a message matching one of specs arrives, removing and
// returning it. It panics with ErrWorldDead if the world is shut down while
// waiting.
func (b *mailbox) await(specs []RecvSpec) (int, *Message) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.world.dead.Load() {
			panic(ErrWorldDead)
		}
		if si, m := b.tryMatch(specs); m != nil {
			return si, m
		}
		b.cond.Wait()
	}
}

// poll attempts a non-blocking match.
func (b *mailbox) poll(specs []RecvSpec) (int, *Message) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.world.dead.Load() {
		panic(ErrWorldDead)
	}
	return b.tryMatch(specs)
}

// probe reports whether a matching message is queued, without removing it.
func (b *mailbox) probe(spec RecvSpec) (bool, *Message) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.world.dead.Load() {
		panic(ErrWorldDead)
	}
	for _, m := range b.queue {
		if spec.matches(m) {
			return true, m
		}
	}
	return false, nil
}

// pending reports the number of queued messages (diagnostics/tests).
func (b *mailbox) pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}

// pendingApp reports the number of queued application messages (tag >= 0)
// in the given communicator context, excluding internal collective and
// control traffic.
func (b *mailbox) pendingApp(ctx int64) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, m := range b.queue {
		if m.ctx == ctx && m.Tag >= 0 {
			n++
		}
	}
	return n
}
