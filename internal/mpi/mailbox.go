package mpi

import "sync"

// Message is an application-visible message as delivered by Recv or Wait.
type Message struct {
	// Source is the sender's rank within the receiving communicator.
	Source int
	// Tag is the application tag the message was sent with.
	Tag int
	// Header is a fixed 32-bit out-of-band control word carried next to
	// the payload — the second segment of the two-segment wire format. The
	// protocol layer packs its piggyback here, which is what makes
	// piggyback attachment zero-copy: the payload is never re-allocated to
	// prepend control bytes. Zero for plain sends.
	Header uint32
	// Data is the payload. The receiver owns it — except when the sender
	// used SendShared, whose zero-copy handoff makes the buffer shared and
	// immutable: such payloads must be treated as read-only.
	Data []byte

	ctx int64 // communicator context the message belongs to
}

// RecvSpec describes what a receive is willing to match.
type RecvSpec struct {
	Source int // rank within the communicator, or AnySource
	Tag    int // tag, or AnyTag
	ctx    int64
}

// Matches reports whether the spec accepts m; exported so Transport
// implementations outside this package can reuse the matching rule.
func (s RecvSpec) Matches(m *Message) bool {
	if m.ctx != s.ctx {
		return false
	}
	if s.Source != AnySource && s.Source != m.Source {
		return false
	}
	if s.Tag != AnyTag && s.Tag != m.Tag {
		return false
	}
	return true
}

// node is one queued message. Embedded links make removal O(1) in both the
// delivery-ordered master list and the exact-match bucket; nodes are
// recycled through a per-mailbox freelist so the steady state allocates
// nothing beyond the Message itself.
type node struct {
	m   *Message
	key uint64 // master-order key: list order == key order

	prev, next   *node // master (delivery-order) list
	bprev, bnext *node // bucket list
	bkt          *bucket
}

// bucket is the FIFO of queued messages sharing one exact (ctx, tag,
// source) triple. Within a bucket, delivery order and arrival order
// coincide: chaos insertion never reorders messages of the same sender
// and context, so appending at the tail keeps the bucket sorted by master
// order and the head is always the earliest match.
type bucket struct {
	bk         bucketKey
	tb         *tagBuckets
	head, tail *node
}

type bucketKey struct {
	ctx    int64
	source int
	tag    int
}

type tagKey struct {
	ctx int64
	tag int
}

// tagBuckets is the per-(ctx, tag) index: one bucket per source, a count
// of queued indexed nodes across all of them, and a lazy min-heap of
// bucket heads ordered by master key. The heap makes the AnySource match
// amortized O(log sources) per consumed message: the previous design
// cached the earliest node and rescanned the whole source map whenever
// the cached node was consumed, which is O(sources) per message — at
// 1000 ranks that rescan (one per gathered message at the collective
// root) dominated whole-run profiles. Heap entries are lazy: a bucket is
// pushed with its head's key whenever it gains a new head, and an entry
// is discarded on peek if the bucket's head no longer matches it, so no
// decrease-key is ever needed and total heap work is bounded by total
// messages indexed.
type tagBuckets struct {
	srcs map[int]*bucket
	live int
	heap []headEntry
}

// headEntry is one lazy heap entry: bkt claimed to have a head with this
// master key when pushed. Valid iff bkt.head still has exactly that key.
type headEntry struct {
	key uint64
	bkt *bucket
}

// pushHead registers bkt's current head in the lazy heap (mailbox mu held).
func (tb *tagBuckets) pushHead(bkt *bucket) {
	tb.heap = append(tb.heap, headEntry{key: bkt.head.key, bkt: bkt})
	for i := len(tb.heap) - 1; i > 0; {
		parent := (i - 1) / 2
		if tb.heap[parent].key <= tb.heap[i].key {
			break
		}
		tb.heap[parent], tb.heap[i] = tb.heap[i], tb.heap[parent]
		i = parent
	}
}

// popHead removes the root entry (mailbox mu held).
func (tb *tagBuckets) popHead() {
	last := len(tb.heap) - 1
	tb.heap[0] = tb.heap[last]
	tb.heap = tb.heap[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && tb.heap[l].key < tb.heap[small].key {
			small = l
		}
		if r < last && tb.heap[r].key < tb.heap[small].key {
			small = r
		}
		if small == i {
			break
		}
		tb.heap[small], tb.heap[i] = tb.heap[i], tb.heap[small]
		i = small
	}
}

// Master-order keys are spaced keyGap apart on append; a chaos insertion
// takes the midpoint of its neighbors. When a gap is exhausted the list is
// renumbered (rare: it takes ~20 consecutive insertions into the same gap).
const keyGap = 1 << 20

// mailbox holds the arrived-but-unmatched messages of one rank. Matching
// follows delivery order (possibly perturbed by chaos insertion), so two
// messages with the same (source, tag, ctx) are received in arrival order,
// while tag matching lets the application receive messages out of order —
// the non-FIFO property of Section 3.3.
//
// Receives with fully-specified specs (no wildcards, or only a source
// wildcard) resolve through the bucket indexes in O(specs) instead of
// O(queue × specs); AnyTag receives keep the ordered master-list scan so
// wildcard semantics — and the chaos interleavings the tests pin down —
// are preserved byte for byte.
type mailbox struct {
	world *World
	mu    sync.Mutex
	cond  *sync.Cond

	head, tail *node
	count      int

	// The bucket indexes are built lazily: nodes are linked into their
	// buckets only once a matching call actually needs the indexed path
	// (queue longer than scanThreshold). Light traffic therefore never
	// touches the maps at all. `indexed` counts bucket-linked nodes;
	// bucket order always mirrors master order because a new arrival can
	// never be chaos-inserted ahead of a same-(ctx, source) message.
	indexed int
	exact   map[bucketKey]*bucket  // (ctx, tag, source) -> FIFO
	byTag   map[tagKey]*tagBuckets // (ctx, tag) -> per-source index
	free    *node                  // recycled nodes

	// Emptied buckets stay registered so ping-pong traffic on one (ctx,
	// tag, source) triple reuses its bucket instead of re-allocating it
	// every round trip; a sweep reclaims them once they clearly dominate
	// (amortized O(1) per message, bounding the map size by live traffic).
	emptyBuckets int
}

func newMailbox(w *World) *mailbox {
	b := &mailbox{
		world: w,
		exact: make(map[bucketKey]*bucket),
		byTag: make(map[tagKey]*tagBuckets),
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) newNode(m *Message) *node {
	n := b.free
	if n == nil {
		n = &node{}
	} else {
		b.free = n.next
		*n = node{}
	}
	n.m = m
	return n
}

func (b *mailbox) freeNode(n *node) {
	*n = node{next: b.free}
	b.free = n
}

// deliver appends (or chaos-inserts) a message and wakes waiting receivers.
func (b *mailbox) deliver(m *Message) {
	b.mu.Lock()
	n := b.newNode(m)
	if before := b.chaosTarget(m); before != nil {
		b.insertBefore(n, before)
	} else {
		b.appendNode(n)
	}
	b.count++
	// While the bucket indexes are live (every queued node is linked),
	// index the arrival immediately: chaos never reorders same-(ctx,
	// source) messages, so appending to the bucket keeps it sorted by
	// master order even for a chaos-inserted node, and the indexed match
	// path stays O(specs) instead of rescanning the master list per
	// receive. Once the indexes drain to empty the lazy path takes over
	// again, so light traffic still never touches the maps.
	if b.indexed > 0 && b.indexed == b.count-1 {
		b.bucketAppend(n)
	}
	b.cond.Broadcast()
	b.mu.Unlock()
}

// chaosTarget picks the node the arriving message is inserted before, or
// nil for normal (append) delivery. Reordering respects MPI's
// non-overtaking guarantee: two messages from the same sender on the same
// communicator are matched in send order, so an arriving message may only
// be inserted ahead of undelivered messages from *other* senders (and only
// within its own communicator context, since cross-communicator ordering
// cannot be compared). What remains is exactly the network's legal
// nondeterminism: the arrival interleaving across senders.
func (b *mailbox) chaosTarget(m *Message) *node {
	w := b.world
	if w.chaos == nil || b.head == nil {
		return nil
	}
	if m.Tag < 0 && !w.opts.ChaosAll {
		return nil
	}
	// The message may land anywhere in the longest list suffix consisting
	// of same-context messages from other senders.
	suffixLen := 0
	var start *node
	for q := b.tail; q != nil; q = q.prev {
		if q.m.ctx != m.ctx || q.m.Source == m.Source {
			break
		}
		suffixLen++
		start = q
	}
	if suffixLen == 0 {
		return nil
	}
	w.chaosMu.Lock()
	defer w.chaosMu.Unlock()
	if w.chaos.Intn(2) == 0 {
		return nil
	}
	for off := w.chaos.Intn(suffixLen); off > 0; off-- {
		start = start.next
	}
	return start
}

func (b *mailbox) appendNode(n *node) {
	if b.tail == nil {
		n.key = keyGap
		b.head, b.tail = n, n
		return
	}
	n.key = b.tail.key + keyGap
	n.prev = b.tail
	b.tail.next = n
	b.tail = n
}

func (b *mailbox) insertBefore(n, x *node) {
	var lo uint64
	if x.prev != nil {
		lo = x.prev.key
	}
	key := lo + (x.key-lo)/2
	if key == lo { // gap exhausted: renumber and retry
		b.renumber()
		lo = 0
		if x.prev != nil {
			lo = x.prev.key
		}
		key = lo + (x.key-lo)/2
	}
	n.key = key
	n.prev = x.prev
	n.next = x
	if x.prev != nil {
		x.prev.next = n
	} else {
		b.head = n
	}
	x.prev = n
}

func (b *mailbox) renumber() {
	key := uint64(keyGap)
	for q := b.head; q != nil; q = q.next {
		q.key = key
		key += keyGap
	}
	// Every head entry in every lazy heap now carries a stale key: rebuild
	// them from the live buckets. Renumbering is rare (it takes ~20 chaos
	// insertions into one gap), so the full rebuild stays off the hot path.
	for _, tb := range b.byTag {
		tb.heap = tb.heap[:0]
		for _, bkt := range tb.srcs {
			if bkt.head != nil {
				tb.pushHead(bkt)
			}
		}
	}
}

// bucketAppend registers n at the tail of its (ctx, tag, source) bucket.
// Appending is always correct: chaos never reorders same-(ctx, source)
// messages, so bucket order mirrors master order.
func (b *mailbox) bucketAppend(n *node) {
	bk := bucketKey{ctx: n.m.ctx, source: n.m.Source, tag: n.m.Tag}
	bkt := b.exact[bk]
	if bkt == nil {
		bkt = &bucket{bk: bk}
		b.exact[bk] = bkt
		tk := tagKey{ctx: bk.ctx, tag: bk.tag}
		tb := b.byTag[tk]
		if tb == nil {
			tb = &tagBuckets{srcs: make(map[int]*bucket)}
			b.byTag[tk] = tb
		}
		tb.srcs[bk.source] = bkt
		bkt.tb = tb
	} else if bkt.head == nil {
		b.emptyBuckets--
	}
	tb := bkt.tb
	tb.live++
	b.indexed++
	n.bkt = bkt
	if bkt.tail == nil {
		bkt.head, bkt.tail = n, n
		tb.pushHead(bkt) // bucket gained a head: make it findable
		return
	}
	n.bprev = bkt.tail
	bkt.tail.bnext = n
	bkt.tail = n
}

// remove unlinks n from the master list and its bucket and recycles it.
func (b *mailbox) remove(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		b.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		b.tail = n.prev
	}
	if bkt := n.bkt; bkt != nil {
		b.indexed--
		bkt.tb.live--
		wasHead := n.bprev == nil
		if n.bprev != nil {
			n.bprev.bnext = n.bnext
		} else {
			bkt.head = n.bnext
		}
		if n.bnext != nil {
			n.bnext.bprev = n.bprev
		} else {
			bkt.tail = n.bprev
		}
		if wasHead && bkt.head != nil {
			// The bucket's head changed: its old heap entry is now stale
			// (discarded lazily on the next peek) and the new head needs one.
			bkt.tb.pushHead(bkt)
		}
		if bkt.head == nil {
			b.emptyBuckets++
			if b.emptyBuckets > 32 && b.emptyBuckets > 2*b.count {
				b.sweepEmptyBuckets()
			}
		}
	}
	b.count--
	b.freeNode(n)
}

// sweepEmptyBuckets drops every cached-empty bucket from both indexes.
// Triggered when empties outnumber live traffic, so the collective tag
// space (a fresh tag per collective round) cannot grow the maps without
// bound.
func (b *mailbox) sweepEmptyBuckets() {
	for bk, bkt := range b.exact {
		if bkt.head != nil {
			continue
		}
		delete(b.exact, bk)
		tk := tagKey{ctx: bk.ctx, tag: bk.tag}
		if tb := b.byTag[tk]; tb != nil {
			delete(tb.srcs, bk.source)
			if len(tb.srcs) == 0 {
				delete(b.byTag, tk)
			}
		}
	}
	b.emptyBuckets = 0
}

// scanThreshold is the queue length below which the ordered linear scan
// beats the bucket lookups; both paths implement identical semantics.
const scanThreshold = 4

// tryMatch removes and returns the message earliest in delivery order that
// matches any spec, along with the index of the spec that matched (ties
// between specs go to the lowest index, as the ordered scan would).
func (b *mailbox) tryMatch(specs []RecvSpec) (int, *Message) {
	if b.count <= scanThreshold {
		return b.scanMatch(specs)
	}
	for _, s := range specs {
		if s.Tag == AnyTag {
			return b.scanMatch(specs)
		}
	}
	b.ensureIndexed()
	var best *node
	bestSpec := -1
	for si := range specs {
		s := &specs[si]
		var cand *node
		if s.Source == AnySource {
			cand = b.minFor(b.byTag[tagKey{ctx: s.ctx, tag: s.Tag}])
		} else if bkt := b.exact[bucketKey{ctx: s.ctx, source: s.Source, tag: s.Tag}]; bkt != nil {
			cand = bkt.head
		}
		if cand != nil && (best == nil || cand.key < best.key) {
			best = cand
			bestSpec = si
		}
	}
	if best == nil {
		return -1, nil
	}
	m := best.m
	b.remove(best)
	return bestSpec, m
}

// minFor returns the earliest queued node of the (ctx, tag) index: the
// first valid entry of the lazy heap, discarding stale entries whose
// bucket head moved on or drained (mu held).
func (b *mailbox) minFor(tb *tagBuckets) *node {
	if tb == nil || tb.live == 0 {
		return nil
	}
	for len(tb.heap) > 0 {
		e := tb.heap[0]
		if h := e.bkt.head; h != nil && h.key == e.key {
			return h
		}
		tb.popHead()
	}
	return nil
}

// scanMatch is the ordered fallback for wildcard-tag receives: walk the
// master list in delivery order and take the first message any spec
// accepts — the exact semantics the pre-index mailbox had.
func (b *mailbox) scanMatch(specs []RecvSpec) (int, *Message) {
	for q := b.head; q != nil; q = q.next {
		for si := range specs {
			if specs[si].Matches(q.m) {
				m := q.m
				b.remove(q)
				return si, m
			}
		}
	}
	return -1, nil
}

// await blocks until a message matching one of specs arrives, removing and
// returning it. It panics with ErrWorldDead if the world is shut down while
// waiting.
func (b *mailbox) await(specs []RecvSpec) (int, *Message) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		b.world.raiseIfHalted()
		if si, m := b.tryMatch(specs); m != nil {
			return si, m
		}
		b.cond.Wait()
	}
}

// awaitCond is await with a cancellation condition: it returns (-1, nil)
// once stop() reports true, re-evaluating whenever the mailbox is woken.
func (b *mailbox) awaitCond(specs []RecvSpec, stop func() bool) (int, *Message) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		b.world.raiseIfHalted()
		if si, m := b.tryMatch(specs); m != nil {
			return si, m
		}
		if stop() {
			return -1, nil
		}
		b.cond.Wait()
	}
}

// poll attempts a non-blocking match.
func (b *mailbox) poll(specs []RecvSpec) (int, *Message) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.world.raiseIfHalted()
	return b.tryMatch(specs)
}

// probe reports whether a matching message is queued, without removing it.
func (b *mailbox) probe(spec RecvSpec) (bool, *Message) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.world.raiseIfHalted()
	if spec.Tag == AnyTag || b.count <= scanThreshold {
		for q := b.head; q != nil; q = q.next {
			if spec.Matches(q.m) {
				return true, q.m
			}
		}
		return false, nil
	}
	b.ensureIndexed()
	var cand *node
	if spec.Source == AnySource {
		cand = b.minFor(b.byTag[tagKey{ctx: spec.ctx, tag: spec.Tag}])
	} else if bkt := b.exact[bucketKey{ctx: spec.ctx, source: spec.Source, tag: spec.Tag}]; bkt != nil {
		cand = bkt.head
	}
	if cand == nil {
		return false, nil
	}
	return true, cand.m
}

// pending reports the number of queued messages (diagnostics/tests).
func (b *mailbox) pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count
}

// pendingApp reports the number of queued application messages (tag >= 0)
// in the given communicator context, excluding internal collective and
// control traffic.
func (b *mailbox) pendingApp(ctx int64) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for q := b.head; q != nil; q = q.next {
		if q.m.ctx == ctx && q.m.Tag >= 0 {
			n++
		}
	}
	return n
}

// ensureIndexed links every not-yet-indexed node into its bucket. Walking
// head to tail keeps each bucket sorted by master order (see the mailbox
// doc comment for why an unindexed node can never precede an indexed
// bucket-mate).
func (b *mailbox) ensureIndexed() {
	if b.indexed == b.count {
		return
	}
	for q := b.head; q != nil; q = q.next {
		if q.bkt == nil {
			b.bucketAppend(q)
		}
	}
}
