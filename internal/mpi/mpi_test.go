package mpi

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"ccift/internal/testseed"
)

// runRanks executes fn concurrently on every rank of a fresh world and
// propagates panics to the test.
func runRanks(t *testing.T, n int, opts Options, fn func(c *Comm)) *World {
	t.Helper()
	w := NewWorld(n, opts)
	var wg sync.WaitGroup
	errs := make(chan any, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs <- fmt.Sprintf("rank %d: %v", r, p)
				}
			}()
			fn(w.Comm(r))
		}(r)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	return w
}

func TestSendRecvBasic(t *testing.T) {
	runRanks(t, 2, Options{}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []byte("hello"))
		} else {
			m := c.Recv(0, 7)
			if string(m.Data) != "hello" || m.Source != 0 || m.Tag != 7 {
				panic(fmt.Sprintf("got %+v", m))
			}
		}
	})
}

func TestSendCopiesPayload(t *testing.T) {
	runRanks(t, 2, Options{}, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []byte{1, 2, 3}
			c.Send(1, 0, buf)
			buf[0] = 99 // mutation after send must not be visible
		} else {
			m := c.Recv(0, 0)
			if m.Data[0] != 1 {
				panic("send did not copy payload")
			}
		}
	})
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	// The receiver asks for tag 2 first even though tag 1 was sent first:
	// application-level non-FIFO delivery via tag matching (Section 3.3).
	runRanks(t, 2, Options{}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("first"))
			c.Send(1, 2, []byte("second"))
		} else {
			m2 := c.Recv(0, 2)
			m1 := c.Recv(0, 1)
			if string(m2.Data) != "second" || string(m1.Data) != "first" {
				panic("tag matching failed")
			}
		}
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	runRanks(t, 3, Options{}, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(2, 5, []byte("a"))
		case 1:
			c.Send(2, 6, []byte("b"))
		case 2:
			seen := map[string]bool{}
			for i := 0; i < 2; i++ {
				m := c.Recv(AnySource, AnyTag)
				seen[string(m.Data)] = true
			}
			if !seen["a"] || !seen["b"] {
				panic(fmt.Sprintf("seen=%v", seen))
			}
		}
	})
}

func TestIsendIrecvWait(t *testing.T) {
	runRanks(t, 2, Options{}, func(c *Comm) {
		if c.Rank() == 0 {
			req := c.Isend(1, 3, []byte("x"))
			if m := c.Wait(req); m != nil {
				panic("send wait should return nil message")
			}
		} else {
			req := c.Irecv(0, 3)
			m := c.Wait(req)
			if string(m.Data) != "x" {
				panic("irecv failed")
			}
			// Waiting again on a completed request returns the same message.
			if m2 := c.Wait(req); m2 != m {
				panic("double wait should be idempotent")
			}
		}
	})
}

func TestTestNonblocking(t *testing.T) {
	runRanks(t, 2, Options{}, func(c *Comm) {
		if c.Rank() == 0 {
			m := c.Recv(1, 9) // wait for the go-ahead
			if string(m.Data) != "sent" {
				panic("bad handshake")
			}
		} else {
			req := c.Irecv(0, 4)
			if _, ok := c.Test(req); ok {
				panic("Test should not complete before any send")
			}
			_ = req
			c.Send(0, 9, []byte("sent"))
		}
	})
}

func TestIprobe(t *testing.T) {
	runRanks(t, 2, Options{}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 8, []byte("probe-me"))
			c.Recv(1, 9) // ack
		} else {
			// Wait until the message is visible, then probe and receive.
			for {
				if ok, env := c.Iprobe(0, 8); ok {
					if env.Tag != 8 {
						panic("probe tag")
					}
					break
				}
			}
			m := c.Recv(0, 8)
			if string(m.Data) != "probe-me" {
				panic("probe/recv")
			}
			c.Send(0, 9, nil)
		}
	})
}

func TestSelect(t *testing.T) {
	runRanks(t, 2, Options{}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 20, []byte("ctl"))
		} else {
			idx, m := c.Select([]RecvSpec{
				{Source: 0, Tag: 10},
				{Source: 0, Tag: 20},
			})
			if idx != 1 || string(m.Data) != "ctl" {
				panic(fmt.Sprintf("select idx=%d", idx))
			}
		}
	})
}

func TestSelfSend(t *testing.T) {
	runRanks(t, 1, Options{}, func(c *Comm) {
		c.Send(0, 1, []byte("self"))
		m := c.Recv(0, 1)
		if string(m.Data) != "self" {
			panic("self send")
		}
	})
}

func collectiveSizes() []int { return []int{1, 2, 3, 4, 7, 8, 16} }

func TestBarrier(t *testing.T) {
	for _, n := range collectiveSizes() {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			var mu sync.Mutex
			arrived := 0
			runRanks(t, n, Options{}, func(c *Comm) {
				mu.Lock()
				arrived++
				mu.Unlock()
				c.Barrier()
				mu.Lock()
				if arrived != n {
					mu.Unlock()
					panic("barrier released before all ranks arrived")
				}
				mu.Unlock()
			})
		})
	}
}

func TestBcast(t *testing.T) {
	for _, n := range collectiveSizes() {
		for root := 0; root < n; root += max(1, n/3) {
			n, root := n, root
			t.Run(fmt.Sprintf("n=%d root=%d", n, root), func(t *testing.T) {
				runRanks(t, n, Options{}, func(c *Comm) {
					var data []byte
					if c.Rank() == root {
						data = []byte(fmt.Sprintf("payload-from-%d", root))
					}
					got := c.Bcast(root, data)
					want := fmt.Sprintf("payload-from-%d", root)
					if string(got) != want {
						panic(fmt.Sprintf("rank %d got %q", c.Rank(), got))
					}
				})
			})
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range collectiveSizes() {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			runRanks(t, n, Options{}, func(c *Comm) {
				data := F64Bytes([]float64{float64(c.Rank() + 1), 1})
				out := c.Reduce(0, data, SumF64)
				if c.Rank() == 0 {
					got := BytesF64(out)
					want := float64(n*(n+1)) / 2
					if got[0] != want || got[1] != float64(n) {
						panic(fmt.Sprintf("reduce got %v want [%v %v]", got, want, n))
					}
				} else if out != nil {
					panic("non-root should get nil")
				}
			})
		})
	}
}

func TestAllreduce(t *testing.T) {
	for _, n := range collectiveSizes() {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			results := make([][]float64, n)
			runRanks(t, n, Options{}, func(c *Comm) {
				data := F64Bytes([]float64{float64(c.Rank() + 1)})
				out := c.Allreduce(data, SumF64)
				results[c.Rank()] = BytesF64(out)
			})
			want := float64(n*(n+1)) / 2
			for r, got := range results {
				if got[0] != want {
					t.Fatalf("rank %d: got %v want %v", r, got[0], want)
				}
			}
		})
	}
}

func TestAllreduceMax(t *testing.T) {
	runRanks(t, 8, Options{}, func(c *Comm) {
		out := c.Allreduce(F64Bytes([]float64{float64(c.Rank())}), MaxF64)
		if BytesF64(out)[0] != 7 {
			panic("max")
		}
	})
}

func TestAllreduceBAnd(t *testing.T) {
	// Conjunction of flags: exactly what the protocol layer's amLogging
	// exchange needs.
	runRanks(t, 4, Options{}, func(c *Comm) {
		flag := byte(1)
		if c.Rank() == 2 {
			flag = 0
		}
		out := c.Allreduce([]byte{flag}, BAnd)
		if out[0] != 0 {
			panic("conjunction should be false")
		}
	})
}

func TestGather(t *testing.T) {
	for _, n := range collectiveSizes() {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			runRanks(t, n, Options{}, func(c *Comm) {
				data := []byte{byte(c.Rank()), byte(c.Rank() * 2)}
				out := c.Gather(0, data)
				if c.Rank() == 0 {
					for r := 0; r < n; r++ {
						if out[2*r] != byte(r) || out[2*r+1] != byte(2*r) {
							panic(fmt.Sprintf("gather out=%v", out))
						}
					}
				} else if out != nil {
					panic("non-root gather should be nil")
				}
			})
		})
	}
}

func TestAllgather(t *testing.T) {
	for _, n := range collectiveSizes() {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			runRanks(t, n, Options{}, func(c *Comm) {
				data := F64Bytes([]float64{float64(c.Rank()), float64(c.Rank() * 10)})
				out := BytesF64(c.Allgather(data))
				for r := 0; r < n; r++ {
					if out[2*r] != float64(r) || out[2*r+1] != float64(10*r) {
						panic(fmt.Sprintf("rank %d allgather=%v", c.Rank(), out))
					}
				}
			})
		})
	}
}

func TestAlltoall(t *testing.T) {
	for _, n := range collectiveSizes() {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			runRanks(t, n, Options{}, func(c *Comm) {
				data := make([]byte, n)
				for i := range data {
					data[i] = byte(c.Rank()*16 + i)
				}
				out := c.Alltoall(data)
				for i := range out {
					if out[i] != byte(i*16+c.Rank()) {
						panic(fmt.Sprintf("rank %d alltoall=%v", c.Rank(), out))
					}
				}
			})
		})
	}
}

func TestScatter(t *testing.T) {
	for _, n := range collectiveSizes() {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			runRanks(t, n, Options{}, func(c *Comm) {
				var data []byte
				if c.Rank() == 0 {
					data = make([]byte, n)
					for i := range data {
						data[i] = byte(i + 1)
					}
				}
				out := c.Scatter(0, data)
				if len(out) != 1 || out[0] != byte(c.Rank()+1) {
					panic(fmt.Sprintf("rank %d scatter=%v", c.Rank(), out))
				}
			})
		})
	}
}

func TestCommDup(t *testing.T) {
	runRanks(t, 4, Options{}, func(c *Comm) {
		dup := c.Dup()
		// A message sent on the dup is invisible to the parent comm.
		if c.Rank() == 0 {
			dup.Send(1, 5, []byte("on-dup"))
			c.Send(1, 5, []byte("on-world"))
		}
		if c.Rank() == 1 {
			m := c.Recv(0, 5)
			if string(m.Data) != "on-world" {
				panic("world comm got dup's message")
			}
			m = dup.Recv(0, 5)
			if string(m.Data) != "on-dup" {
				panic("dup comm mismatch")
			}
		}
		dup.Barrier()
	})
}

func TestCommSplit(t *testing.T) {
	runRanks(t, 6, Options{}, func(c *Comm) {
		color := c.Rank() % 2
		sub := c.Split(color, c.Rank())
		if sub.Size() != 3 {
			panic(fmt.Sprintf("split size = %d", sub.Size()))
		}
		// Sub-rank should be the index among same-color ranks.
		if sub.Rank() != c.Rank()/2 {
			panic(fmt.Sprintf("split rank = %d", sub.Rank()))
		}
		out := BytesF64(sub.Allreduce(F64Bytes([]float64{float64(c.Rank())}), SumF64))
		want := []float64{0 + 2 + 4, 1 + 3 + 5}[color]
		if out[0] != want {
			panic(fmt.Sprintf("split allreduce = %v want %v", out[0], want))
		}
	})
}

func TestChaosReordersAcrossSenders(t *testing.T) {
	// With chaos enabled, the arrival interleaving across senders is
	// adversarial: a message may overtake a causally earlier message from a
	// different sender. The scenario forces causality without chaos — rank 0
	// sends A to rank 2 and only then releases rank 1 to send B — so any
	// B-before-A observation is chaos at work.
	reordered := false
	base := testseed.Base(t, 1)
	for seed := base; seed < base+50 && !reordered; seed++ {
		runRanks(t, 3, Options{ChaosSeed: seed}, func(c *Comm) {
			switch c.Rank() {
			case 0:
				c.Send(2, 1, []byte{'A'})
				c.Send(1, 9, nil) // release rank 1
			case 1:
				c.Recv(0, 9)
				c.Send(2, 1, []byte{'B'})
				c.Send(2, 9, nil) // both messages are now queued at rank 2
			case 2:
				// Wait until A and B are both in the mailbox, so the
				// receive observes the queue order chaos produced rather
				// than racing the deliveries.
				c.Recv(1, 9)
				first := c.Recv(AnySource, 1)
				c.Recv(AnySource, 1)
				if first.Data[0] == 'B' {
					reordered = true
				}
			}
		})
	}
	if !reordered {
		t.Fatal("chaos never produced a cross-sender reordering in 50 seeds")
	}
}

func TestChaosNeverViolatesSenderOrder(t *testing.T) {
	// MPI's non-overtaking guarantee: two messages from the same sender that
	// match the same receive are delivered in send order, chaos or not; and
	// reordering must never lose or duplicate messages.
	f := func(seed int64, countRaw uint8) bool {
		count := int(countRaw%32) + 1
		ok := true
		w := NewWorld(3, Options{ChaosSeed: seed})
		var wg sync.WaitGroup
		wg.Add(3)
		for sender := 0; sender < 2; sender++ {
			go func(sender int) {
				defer wg.Done()
				c := w.Comm(sender)
				for i := 0; i < count; i++ {
					c.Send(2, 1, []byte{byte(sender), byte(i)})
				}
			}(sender)
		}
		go func() {
			defer wg.Done()
			c := w.Comm(2)
			next := [2]int{}
			for i := 0; i < 2*count; i++ {
				m := c.Recv(AnySource, 1)
				s, v := int(m.Data[0]), int(m.Data[1])
				if m.Source != s || v != next[s] {
					ok = false
				}
				next[s]++
			}
			if next[0] != count || next[1] != count {
				ok = false
			}
		}()
		wg.Wait()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestKillPlanStopsRank(t *testing.T) {
	w := NewWorld(2, Options{KillPlan: map[int]int64{1: 2}})
	var wg sync.WaitGroup
	wg.Add(2)
	var rank1Panic any
	go func() { // rank 0: sends forever until world dies
		defer wg.Done()
		defer func() { recover() }()
		c := w.Comm(0)
		for {
			c.Send(1, 1, nil)
		}
	}()
	go func() { // rank 1: fails at its second operation
		defer wg.Done()
		defer func() { rank1Panic = recover() }()
		c := w.Comm(1)
		c.Recv(0, 1)
		c.Recv(0, 1) // second op: killed here
		panic("unreachable")
	}()
	// Wait until the failure is observed, then shut the world down.
	for len(w.Failures()) == 0 {
	}
	w.Shutdown()
	wg.Wait()
	if rank1Panic != ErrKilled {
		t.Fatalf("rank 1 panic = %v", rank1Panic)
	}
	if fs := w.Failures(); len(fs) != 1 || fs[0] != 1 {
		t.Fatalf("failures = %v", fs)
	}
}

func TestShutdownUnblocksReceivers(t *testing.T) {
	w := NewWorld(2, Options{})
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		w.Comm(0).Recv(1, 1) // blocks forever: rank 1 never sends
		done <- nil
	}()
	w.Shutdown()
	if p := <-done; p != ErrWorldDead {
		t.Fatalf("panic = %v", p)
	}
}

func TestSendToKilledRankVanishes(t *testing.T) {
	w := NewWorld(2, Options{})
	w.Kill(1)
	c := w.Comm(0)
	c.Send(1, 1, []byte("lost")) // must not block or panic
	if got := w.boxes[1].pending(); got != 0 {
		t.Fatalf("killed rank queued %d messages", got)
	}
}

func TestF64RoundTrip(t *testing.T) {
	f := func(xs []float64) bool {
		return reflect.DeepEqual(BytesF64(F64Bytes(xs)), append([]float64{}, xs...)) ||
			(len(xs) == 0 && len(BytesF64(F64Bytes(xs))) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestI64RoundTrip(t *testing.T) {
	f := func(xs []int64) bool {
		back := BytesI64(I64Bytes(xs))
		if len(back) != len(xs) {
			return false
		}
		for i := range xs {
			if back[i] != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpCounting(t *testing.T) {
	w := NewWorld(2, Options{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c := w.Comm(0)
		c.Send(1, 1, nil)
		c.Send(1, 1, nil)
	}()
	go func() {
		defer wg.Done()
		c := w.Comm(1)
		c.Recv(0, 1)
		c.Recv(0, 1)
	}()
	wg.Wait()
	if w.OpCount(0) != 2 || w.OpCount(1) != 2 {
		t.Fatalf("op counts = %d, %d", w.OpCount(0), w.OpCount(1))
	}
}

func TestCollectiveCountsAsOneOp(t *testing.T) {
	w := NewWorld(4, Options{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := w.Comm(r)
			c.Allreduce(F64Bytes([]float64{1}), SumF64)
		}(r)
	}
	wg.Wait()
	for r := 0; r < 4; r++ {
		if w.OpCount(r) != 1 {
			t.Fatalf("rank %d op count = %d, want 1", r, w.OpCount(r))
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
