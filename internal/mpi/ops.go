package mpi

import (
	"encoding/binary"
	"math"
)

// Built-in reduction operators over packed little-endian payloads.

type opFunc func(dst, src []byte)

func (f opFunc) Combine(dst, src []byte) { f(dst, src) }

func eachF64(dst, src []byte, f func(a, b float64) float64) {
	for i := 0; i+8 <= len(dst); i += 8 {
		a := math.Float64frombits(binary.LittleEndian.Uint64(dst[i:]))
		b := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
		binary.LittleEndian.PutUint64(dst[i:], math.Float64bits(f(a, b)))
	}
}

func eachI64(dst, src []byte, f func(a, b int64) int64) {
	for i := 0; i+8 <= len(dst); i += 8 {
		a := int64(binary.LittleEndian.Uint64(dst[i:]))
		b := int64(binary.LittleEndian.Uint64(src[i:]))
		binary.LittleEndian.PutUint64(dst[i:], uint64(f(a, b)))
	}
}

// SumF64 sums payloads interpreted as packed float64 vectors.
var SumF64 Op = opFunc(func(dst, src []byte) {
	eachF64(dst, src, func(a, b float64) float64 { return a + b })
})

// MaxF64 takes the elementwise maximum of packed float64 vectors.
var MaxF64 Op = opFunc(func(dst, src []byte) {
	eachF64(dst, src, math.Max)
})

// MinF64 takes the elementwise minimum of packed float64 vectors.
var MinF64 Op = opFunc(func(dst, src []byte) {
	eachF64(dst, src, math.Min)
})

// SumI64 sums payloads interpreted as packed int64 vectors.
var SumI64 Op = opFunc(func(dst, src []byte) {
	eachI64(dst, src, func(a, b int64) int64 { return a + b })
})

// MinI64 takes the elementwise minimum of packed int64 vectors.
var MinI64 Op = opFunc(func(dst, src []byte) {
	eachI64(dst, src, func(a, b int64) int64 {
		if b < a {
			return b
		}
		return a
	})
})

// MaxI64 takes the elementwise maximum of packed int64 vectors.
var MaxI64 Op = opFunc(func(dst, src []byte) {
	eachI64(dst, src, func(a, b int64) int64 {
		if b > a {
			return b
		}
		return a
	})
})

// BAnd is the bytewise AND; with 0/1 bytes it is a logical conjunction
// (used by the protocol layer's amLogging exchange, Section 4.5).
var BAnd Op = opFunc(func(dst, src []byte) {
	for i := range dst {
		dst[i] &= src[i]
	}
})

// BOr is the bytewise OR.
var BOr Op = opFunc(func(dst, src []byte) {
	for i := range dst {
		dst[i] |= src[i]
	}
})

// F64Bytes packs a float64 slice into a little-endian payload.
func F64Bytes(xs []float64) []byte {
	out := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

// BytesF64 unpacks a little-endian payload into a float64 slice.
func BytesF64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// BytesF64Into unpacks into dst, which must have length len(b)/8.
func BytesF64Into(dst []float64, b []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
}

// F64BytesInto packs xs into dst, which must have length 8*len(xs).
func F64BytesInto(dst []byte, xs []float64) {
	for i, x := range xs {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(x))
	}
}

// I64Bytes packs an int64 slice into a little-endian payload.
func I64Bytes(xs []int64) []byte {
	out := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(x))
	}
	return out
}

// BytesI64 unpacks a little-endian payload into an int64 slice.
func BytesI64(b []byte) []int64 {
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
