package protocol

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"ccift/internal/ckpt"
	"ccift/internal/storage"
)

// Recovery gather: what a restart needs to know before any rank re-executes.
//
// Each rank's checkpoint carries its early-message ID sets (Section 4.2);
// on rollback every SENDER must learn which of its messages the receivers
// already hold, so the union of all receivers' sets, re-indexed by sender,
// is the world's suppression table. Historically each recovering worker
// rebuilt that table itself by reading every rank's full state blob —
// O(world) full-blob reads per worker, O(world²) for the world. Two things
// fix that:
//
//   - a per-rank recovery-metadata sidecar (storage.MetaKey) holding just
//     the early IDs, written right after the state manifest commits, so a
//     gather reads O(world) tiny blobs instead of full states;
//   - a single gather (GatherRecovery) run once by the recovery driver —
//     the in-process engine or the distributed launcher — which then ships
//     each rank only its own slice (RankRecovery).

// recoveryMeta is the sidecar blob's gob schema. Epoch is recorded so a
// reader can detect a sidecar that somehow outlived its epoch directory.
type recoveryMeta struct {
	Epoch    int
	EarlyIDs [][]uint32
}

// saveRecoveryMeta writes the sidecar for one rank's checkpoint. Called
// after the state manifest commit: the sidecar is an accelerator, so it
// must never exist without the state it summarizes.
func saveRecoveryMeta(store *storage.CheckpointStore, epoch, rank int, earlyIDs [][]uint32) error {
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(&recoveryMeta{Epoch: epoch, EarlyIDs: earlyIDs}); err != nil {
		return fmt.Errorf("protocol: encode recovery meta: %w", err)
	}
	return store.PutMeta(epoch, rank, b.Bytes())
}

// loadRecoveryEarlyIDs reads one rank's early-ID sets for an epoch: from
// the sidecar when present, else from the full state blob (checkpoints
// written before the sidecar existed).
func loadRecoveryEarlyIDs(store *storage.CheckpointStore, epoch, rank int) ([][]uint32, error) {
	raw, err := store.GetMeta(epoch, rank)
	if err != nil {
		if errors.Is(err, storage.ErrNotFound) {
			return LoadEarlyIDs(store, epoch, rank)
		}
		return nil, err
	}
	var m recoveryMeta
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&m); err != nil {
		return nil, fmt.Errorf("protocol: decode recovery meta (epoch %d, rank %d): %w", epoch, rank, err)
	}
	if m.Epoch != epoch {
		return nil, fmt.Errorf("protocol: recovery meta epoch %d != requested %d", m.Epoch, epoch)
	}
	return m.EarlyIDs, nil
}

// RecoveryPlan is everything a world needs to roll back to one committed
// epoch: per-SENDER suppression lists and the primary's replicated values.
// Built once per restart by the recovery driver with O(world) small store
// reads, then sliced per rank.
type RecoveryPlan struct {
	// Epoch is the committed epoch the plan restores, or -1 for a restart
	// from the beginning (no checkpoint committed yet).
	Epoch int
	// Suppress is indexed by SENDING rank: Suppress[s] lists the message
	// IDs rank s must not re-send during recovery.
	Suppress [][]uint32
	// Replicas holds the primary rank's replicated values (Section 7);
	// nil when the primary's checkpoint carries no application state.
	Replicas map[string][]byte
}

// GatherRecovery builds the world's recovery plan for a committed epoch:
// ranks sidecar reads (tiny blobs) plus one full state read (rank 0, for
// the replicated values). The suppression re-index preserves the historic
// order — receiver-major, each receiver's per-sender set appended whole —
// so recovery behaves byte-identically to the old per-worker scan.
func GatherRecovery(store *storage.CheckpointStore, epoch, ranks int) (*RecoveryPlan, error) {
	plan := &RecoveryPlan{Epoch: epoch, Suppress: make([][]uint32, ranks)}
	for r := 0; r < ranks; r++ {
		ids, err := loadRecoveryEarlyIDs(store, epoch, r)
		if err != nil {
			return nil, fmt.Errorf("protocol: gather early IDs of rank %d: %w", r, err)
		}
		for sender, set := range ids {
			if len(set) > 0 {
				plan.Suppress[sender] = append(plan.Suppress[sender], set...)
			}
		}
	}
	primaryApp, err := LoadAppState(store, epoch, 0)
	if err != nil {
		return nil, fmt.Errorf("protocol: gather primary app state: %w", err)
	}
	if len(primaryApp) > 0 {
		plan.Replicas, err = ckpt.ExtractReplicated(primaryApp)
		if err != nil {
			return nil, fmt.Errorf("protocol: extract replicated data: %w", err)
		}
	}
	return plan, nil
}

// RankRecovery is one rank's slice of a RecoveryPlan — what a driver ships
// to a single recovering worker. Epoch -1 means "fresh start, do not
// restore" (the world rolled back before any commit).
type RankRecovery struct {
	Epoch    int
	Suppress []uint32
	Replicas map[string][]byte
}

// ForRank slices the plan for one rank.
func (p *RecoveryPlan) ForRank(r int) *RankRecovery {
	return &RankRecovery{Epoch: p.Epoch, Suppress: p.Suppress[r], Replicas: p.Replicas}
}

// RetainedState is a surviving rank's in-memory copy of one epoch's
// serialized checkpoint — the exact bytes its flusher streamed to the
// store. A rank that did not die rolls back from these instead of
// re-reading the store, so a single death in a large world touches the
// store O(1) per survivor.
type RetainedState struct {
	Epoch      int
	State, Log []byte
}

// retainedRing keeps the newest two epochs of one blob kind. Two, not one:
// at rollback time the committed epoch may trail the newest locally
// written one (a death mid-checkpoint), and retaining only the newest
// would miss exactly the epoch recovery wants.
type retainedRing struct {
	epochs [2]int
	blobs  [2][]byte
}

func (r *retainedRing) put(epoch int, blob []byte) {
	if r.epochs[0] == epoch || r.blobs[0] == nil {
		r.epochs[0], r.blobs[0] = epoch, blob
		return
	}
	if epoch > r.epochs[0] {
		r.epochs[1], r.blobs[1] = r.epochs[0], r.blobs[0]
		r.epochs[0], r.blobs[0] = epoch, blob
	} else {
		r.epochs[1], r.blobs[1] = epoch, blob
	}
}

func (r *retainedRing) get(epoch int) []byte {
	for i, e := range r.epochs {
		if e == epoch && r.blobs[i] != nil {
			return r.blobs[i]
		}
	}
	return nil
}

// Retained returns the rank's in-memory checkpoint copies, newest first —
// the driver stores them across incarnations and hands them back through
// RestoreFrom. Nil when retention is off or nothing durable exists yet.
func (l *Layer) Retained() []*RetainedState {
	if !l.cfg.RetainForRecovery {
		return nil
	}
	var out []*RetainedState
	for _, e := range []int{l.retainStates.epochs[0], l.retainStates.epochs[1]} {
		st, lg := l.retainStates.get(e), l.retainLogs.get(e)
		if st != nil && lg != nil && !containsEpoch(out, e) {
			out = append(out, &RetainedState{Epoch: e, State: st, Log: lg})
		}
	}
	return out
}

func containsEpoch(rs []*RetainedState, e int) bool {
	for _, r := range rs {
		if r.Epoch == e {
			return true
		}
	}
	return false
}

// retainedFor picks the retained copy matching epoch, if any.
func retainedFor(rs []*RetainedState, epoch int) *RetainedState {
	for _, r := range rs {
		if r != nil && r.Epoch == epoch {
			return r
		}
	}
	return nil
}
