package protocol

import "encoding/binary"

// The unoptimized piggyback of Section 4.2: "A simple implementation of
// the protocol can piggyback all three values — epoch, amLogging,
// nextMessageID — on each message." The layer's wire format uses the
// optimized single integer (Piggyback); this verbose form exists to make
// the paper's optimization argument executable: because at most one global
// checkpoint is in progress, epochs differ by at most one, so the epoch's
// parity (color) plus the receiver's amLogging flag recover the full
// classification. TestVerboseCompactAgree cross-checks the two codecs over
// the protocol's reachable state space.

// VerbosePiggyback carries the full epoch number.
type VerbosePiggyback struct {
	// Epoch is the sender's epoch at send time.
	Epoch int
	// Logging is the sender's amLogging flag.
	Logging bool
	// MessageID is the sender's per-epoch message sequence number.
	MessageID uint32
}

// verboseBytes is the verbose wire size: 8 (epoch) + 1 (flag) + 4 (ID) —
// more than three times the optimized encoding's 4 bytes.
const verboseBytes = 13

// Encode serializes the verbose triple.
func (p VerbosePiggyback) Encode() []byte {
	out := make([]byte, verboseBytes)
	binary.LittleEndian.PutUint64(out, uint64(p.Epoch))
	if p.Logging {
		out[8] = 1
	}
	binary.LittleEndian.PutUint32(out[9:], p.MessageID)
	return out
}

// DecodeVerbosePiggyback parses the verbose wire form.
func DecodeVerbosePiggyback(b []byte) VerbosePiggyback {
	return VerbosePiggyback{
		Epoch:     int(binary.LittleEndian.Uint64(b)),
		Logging:   b[8] != 0,
		MessageID: binary.LittleEndian.Uint32(b[9:]),
	}
}

// Compact converts the verbose triple to the optimized single-integer
// form: the epoch collapses to its parity.
func (p VerbosePiggyback) Compact() Piggyback {
	return Piggyback{Color: p.Epoch%2 == 1, Logging: p.Logging, MessageID: p.MessageID}
}

// ClassifyVerbose is Definition 1 applied directly to epoch numbers: late
// if the sender's epoch is behind the receiver's, early if ahead,
// intra-epoch if equal. It needs no amLogging disambiguation — that flag
// is only required once epochs are compressed to one bit.
func ClassifyVerbose(senderEpoch, receiverEpoch int) Class {
	switch {
	case senderEpoch < receiverEpoch:
		return Late
	case senderEpoch > receiverEpoch:
		return Early
	default:
		return Intra
	}
}
