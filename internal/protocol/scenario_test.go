package protocol

import (
	"sync"
	"testing"

	"ccift/internal/mpi"
	"ccift/internal/storage"
)

// Scripted reproductions of the paper's figures. These tests choreograph
// message and checkpoint timing explicitly, which the eager in-process
// transport makes deterministic.

func newTestLayers(t *testing.T, n int, mode Mode) ([]*Layer, *storage.CheckpointStore, *mpi.World) {
	t.Helper()
	w := mpi.NewWorld(n, mpi.Options{})
	cs := storage.NewCheckpointStore(storage.NewMemory())
	ls := make([]*Layer, n)
	for r := 0; r < n; r++ {
		ls[r] = NewLayer(w.Comm(r), Config{Mode: mode, Store: cs, Debug: true})
	}
	return ls, cs, w
}

// pump services control traffic on every layer until the store reports a
// committed checkpoint or the round budget runs out.
func pump(t *testing.T, ls []*Layer, cs *storage.CheckpointStore, wantEpoch int) {
	t.Helper()
	for round := 0; round < 100; round++ {
		for _, l := range ls {
			l.ServiceControl()
		}
		if e, ok, _ := cs.Committed(); ok && e >= wantEpoch {
			return
		}
	}
	e, ok, _ := cs.Committed()
	t.Fatalf("checkpoint %d never committed (committed=%d ok=%v)", wantEpoch, e, ok)
}

// TestFigure3 reproduces the execution of Figure 3 around one global
// checkpoint: a late message P→Q, an early message Q→R, and an intra-epoch
// message P→R, verifying classification, the late-message log, and the
// early-ID record.
func TestFigure3(t *testing.T) {
	ls, cs, _ := newTestLayers(t, 3, Full)
	P, Q, R := ls[0], ls[1], ls[2]

	// The initiator (P, rank 0) starts global checkpoint 1.
	P.RequestCheckpoint()

	// P, still in epoch 0, sends a message to Q.
	P.Send(1, 7, []byte("late-payload"))

	// Q takes its local checkpoint first and starts logging.
	Q.PotentialCheckpoint()
	if Q.Epoch() != 1 || !Q.Logging() {
		t.Fatalf("Q epoch=%d logging=%v", Q.Epoch(), Q.Logging())
	}

	// Q now receives P's message: sent in epoch 0, delivered in epoch 1 —
	// a late message that must be logged.
	m := Q.Recv(0, 7)
	if string(m.Data) != "late-payload" {
		t.Fatalf("late payload %q", m.Data)
	}
	if Q.log.Len() != 1 || Q.log.entries[0].Kind != KindLate {
		t.Fatalf("Q log = %+v", Q.log.entries)
	}
	if Q.Stats.LateLogged != 1 {
		t.Fatalf("LateLogged = %d", Q.Stats.LateLogged)
	}

	// Q, now in epoch 1, sends to R, which is still in epoch 0: an early
	// message. R must remember its ID so its re-send is suppressed after a
	// rollback.
	Q.Send(2, 8, []byte("early-payload"))
	em := R.Recv(1, 8)
	if string(em.Data) != "early-payload" {
		t.Fatalf("early payload %q", em.Data)
	}
	if len(R.earlyIDs[1]) != 1 {
		t.Fatalf("R earlyIDs[Q] = %v", R.earlyIDs[1])
	}
	if R.Stats.EarlyRecorded != 1 {
		t.Fatalf("EarlyRecorded = %d", R.Stats.EarlyRecorded)
	}

	// An intra-epoch message P→R (both still in epoch 0).
	P.Send(2, 9, []byte("intra"))
	im := R.Recv(0, 9)
	if string(im.Data) != "intra" {
		t.Fatalf("intra payload %q", im.Data)
	}
	if R.currentReceiveCount[0] != 1 {
		t.Fatalf("R currentReceiveCount[P] = %d", R.currentReceiveCount[0])
	}

	// R and P take their checkpoints; the protocol completes and commits.
	R.PotentialCheckpoint()
	P.PotentialCheckpoint()
	if R.Epoch() != 1 || P.Epoch() != 1 {
		t.Fatalf("epochs: P=%d R=%d", P.Epoch(), R.Epoch())
	}
	// R's early message seeds its new-epoch receive count from Q.
	if R.currentReceiveCount[1] != 1 {
		t.Fatalf("R currentReceiveCount[Q] after ckpt = %d", R.currentReceiveCount[1])
	}

	pump(t, ls, cs, 1)

	// After commit, everyone has stopped logging.
	for i, l := range ls {
		if l.Logging() {
			t.Fatalf("rank %d still logging after commit", i)
		}
	}

	// The committed checkpoint's artifacts: Q's log holds the late
	// message; R's state blob records the early ID from Q.
	lg, err := cs.GetLog(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	qlog, err := UnmarshalLog(lg)
	if err != nil {
		t.Fatal(err)
	}
	foundLate := false
	for _, e := range qlog.entries {
		if e.Kind == KindLate && string(e.Data) == "late-payload" {
			foundLate = true
		}
	}
	if !foundLate {
		t.Fatal("Q's persisted log is missing the late message")
	}
	ids, err := LoadEarlyIDs(cs, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids[1]) != 1 {
		t.Fatalf("persisted early IDs = %v", ids)
	}
}

// TestFigure3Recovery continues the Figure 3 scenario past a failure: a new
// incarnation restores from the committed checkpoint, verifies that the
// late message is re-delivered from the log, and that the early message's
// re-send is suppressed.
func TestFigure3Recovery(t *testing.T) {
	ls, cs, _ := newTestLayers(t, 3, Full)
	P, Q, R := ls[0], ls[1], ls[2]

	P.RequestCheckpoint()
	P.Send(1, 7, []byte("late-payload"))
	Q.PotentialCheckpoint()
	_ = Q.Recv(0, 7)
	Q.Send(2, 8, []byte("early-payload"))
	_ = R.Recv(1, 8)
	R.PotentialCheckpoint()
	P.PotentialCheckpoint()
	pump(t, ls, cs, 1)

	// --- crash; new incarnation ---
	w2 := mpi.NewWorld(3, mpi.Options{})
	ls2 := make([]*Layer, 3)
	for r := 0; r < 3; r++ {
		ls2[r] = NewLayer(w2.Comm(r), Config{Mode: Full, Store: cs, Debug: true})
	}
	// Gather early IDs and build suppression sets (the recovery driver's
	// job).
	suppress := make([][]uint32, 3)
	for r := 0; r < 3; r++ {
		ids, err := LoadEarlyIDs(cs, 1, r)
		if err != nil {
			t.Fatal(err)
		}
		for sender, set := range ids {
			suppress[sender] = append(suppress[sender], set...)
		}
	}
	if len(suppress[1]) != 1 {
		t.Fatalf("suppress sets = %v", suppress)
	}
	for r := 0; r < 3; r++ {
		if _, err := ls2[r].Restore(1, suppress[r]); err != nil {
			t.Fatal(err)
		}
	}
	P2, Q2, R2 := ls2[0], ls2[1], ls2[2]

	// Q re-executes its post-checkpoint receive: the late message must
	// come from the log, not the wire (P does not re-send it).
	m := Q2.Recv(0, 7)
	if string(m.Data) != "late-payload" {
		t.Fatalf("replayed late payload %q", m.Data)
	}
	if Q2.Stats.ReplayedLate != 1 {
		t.Fatalf("ReplayedLate = %d", Q2.Stats.ReplayedLate)
	}

	// Q re-executes its post-checkpoint send to R: it must be suppressed
	// (R's recovered state already includes it).
	Q2.Send(2, 8, []byte("early-payload"))
	if Q2.Stats.SuppressedSends != 1 {
		t.Fatalf("SuppressedSends = %d", Q2.Stats.SuppressedSends)
	}
	if R2.Comm().Pending() != 0 {
		t.Fatalf("R received %d wire messages; the early re-send should have been suppressed", R2.Comm().Pending())
	}
	// R does NOT re-execute its receive of the early message — its
	// recovered state is from after that receive. Its next action can be a
	// fresh intra-epoch exchange, which flows normally.
	P2.Send(2, 9, []byte("fresh"))
	fm := R2.Recv(0, 9)
	if string(fm.Data) != "fresh" {
		t.Fatalf("fresh payload %q", fm.Data)
	}
	if !Q2.replay.Exhausted() || Q2.SuppressPending() != 0 {
		t.Fatal("Q's replay should be complete")
	}
}

// TestFigure5CallA reproduces collective communication call A of Figure 5:
// P and Q execute an Allreduce after taking their local checkpoints, R
// executes it before. P and Q must log the result; on recovery they read it
// from the log and R does not re-execute the call.
func TestFigure5CallA(t *testing.T) {
	ls, cs, _ := newTestLayers(t, 3, Full)
	P, Q, R := ls[0], ls[1], ls[2]

	P.RequestCheckpoint()

	var results [3][]float64
	var wg sync.WaitGroup
	qReady := make(chan struct{})
	pqDone := make(chan struct{}, 2)

	wg.Add(3)
	go func() { // P (initiator): checkpoint, then allreduce
		defer wg.Done()
		P.PotentialCheckpoint()
		close(qReady)
		results[0] = mpi.BytesF64(P.Allreduce(mpi.F64Bytes([]float64{1}), mpi.SumF64))
		pqDone <- struct{}{}
	}()
	go func() { // Q: checkpoint, then allreduce
		defer wg.Done()
		<-qReady
		Q.PotentialCheckpoint()
		results[1] = mpi.BytesF64(Q.Allreduce(mpi.F64Bytes([]float64{2}), mpi.SumF64))
		pqDone <- struct{}{}
	}()
	go func() { // R: allreduce BEFORE its checkpoint
		defer wg.Done()
		<-qReady
		results[2] = mpi.BytesF64(R.Allreduce(mpi.F64Bytes([]float64{4}), mpi.SumF64))
		<-pqDone
		<-pqDone
		R.PotentialCheckpoint()
	}()
	wg.Wait()

	for i, res := range results {
		if res[0] != 7 {
			t.Fatalf("rank %d allreduce = %v", i, res)
		}
	}
	// P and Q executed the call while logging: the result is in their
	// logs. R executed it before its checkpoint: nothing logged.
	countColl := func(l *Layer) int {
		n := 0
		for _, e := range l.log.entries {
			if e.Kind == KindCollective {
				n++
			}
		}
		return n
	}
	if countColl(P) != 1 || countColl(Q) != 1 {
		t.Fatalf("collective log entries: P=%d Q=%d", countColl(P), countColl(Q))
	}
	if countColl(R) != 0 {
		t.Fatalf("R logged %d collective results before its checkpoint", countColl(R))
	}
	// The control exchange told R (old epoch, partner logging) that a
	// checkpoint is in progress.
	if R.Epoch() != 1 {
		t.Fatalf("R epoch = %d", R.Epoch())
	}

	pump(t, ls, cs, 1)

	// --- recovery: P and Q re-execute the call from the log; R resumes
	// after it and never calls Allreduce again. ---
	w2 := mpi.NewWorld(3, mpi.Options{})
	ls2 := make([]*Layer, 3)
	for r := 0; r < 3; r++ {
		ls2[r] = NewLayer(w2.Comm(r), Config{Mode: Full, Store: cs, Debug: true})
		if _, err := ls2[r].Restore(1, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Sequential calls cannot deadlock: the results come from the log with
	// no communication.
	got := mpi.BytesF64(ls2[0].Allreduce(mpi.F64Bytes([]float64{1}), mpi.SumF64))
	if got[0] != 7 {
		t.Fatalf("P replayed allreduce = %v", got)
	}
	got = mpi.BytesF64(ls2[1].Allreduce(mpi.F64Bytes([]float64{2}), mpi.SumF64))
	if got[0] != 7 {
		t.Fatalf("Q replayed allreduce = %v", got)
	}
	if ls2[0].Stats.ReplayedResults != 1 || ls2[1].Stats.ReplayedResults != 1 {
		t.Fatal("results should have come from the log")
	}
	if !ls2[0].replay.Exhausted() || !ls2[1].replay.Exhausted() || !ls2[2].replay.Exhausted() {
		t.Fatal("replays should be exhausted")
	}
}

// TestFigure5CallB exercises the call-B rule: a participant in the same
// (new) epoch has already stopped logging, so logging participants must
// stop logging too and must not log the call's result.
func TestFigure5CallB(t *testing.T) {
	ls, cs, _ := newTestLayers(t, 3, Full)
	P, Q, R := ls[0], ls[1], ls[2]

	P.RequestCheckpoint()
	P.PotentialCheckpoint()
	Q.PotentialCheckpoint()
	R.PotentialCheckpoint()
	if !P.Logging() || !Q.Logging() || !R.Logging() {
		t.Fatal("all three should be logging")
	}

	// Simulate stopLogging having reached R but still being in flight to P
	// and Q (on a real network control messages race data messages; the
	// eager test transport needs the state forced).
	R.finalizeLog()
	if R.Logging() {
		t.Fatal("R should have stopped logging")
	}

	var wg sync.WaitGroup
	var results [3][]float64
	for i, l := range []*Layer{P, Q, R} {
		wg.Add(1)
		go func(i int, l *Layer) {
			defer wg.Done()
			results[i] = mpi.BytesF64(l.Allreduce(mpi.F64Bytes([]float64{float64(i + 1)}), mpi.SumF64))
		}(i, l)
	}
	wg.Wait()

	for i, res := range results {
		if res[0] != 6 {
			t.Fatalf("rank %d allreduce = %v", i, res)
		}
	}
	// P and Q saw a same-epoch participant that had stopped logging: they
	// must have stopped logging and must not have logged the result.
	if P.Logging() || Q.Logging() {
		t.Fatal("P and Q should have stopped logging (call-B rule)")
	}
	for i, l := range ls {
		for _, e := range l.log.entries {
			if e.Kind == KindCollective {
				t.Fatalf("rank %d logged the call-B result", i)
			}
		}
	}
	_ = cs
}

// TestAlignedBarrierEpochAlignment verifies the MPI_Barrier rule of
// Section 4.5: all processes execute an aligned barrier in the same epoch,
// with laggards taking their pending checkpoint first.
func TestAlignedBarrierEpochAlignment(t *testing.T) {
	ls, cs, _ := newTestLayers(t, 3, Full)
	P := ls[0]

	P.RequestCheckpoint()
	P.PotentialCheckpoint() // P moves to epoch 1; Q and R are still at 0
	if P.Epoch() != 1 || ls[1].Epoch() != 0 || ls[2].Epoch() != 0 {
		t.Fatal("setup failed")
	}

	var wg sync.WaitGroup
	for _, l := range ls {
		wg.Add(1)
		go func(l *Layer) {
			defer wg.Done()
			l.AlignedBarrier()
		}(l)
	}
	wg.Wait()

	for i, l := range ls {
		if l.Epoch() != 1 {
			t.Fatalf("rank %d executed the barrier in epoch %d", i, l.Epoch())
		}
	}
	pump(t, ls, cs, 1)
}

// TestLoggedBarrierSkippedOnRecovery verifies the library's default barrier
// treatment: a barrier executed while logging is recorded and skipped on
// recovery, so ranks whose checkpoints straddle it never deadlock.
//
// The scenario uses three ranks so that the logging phase provably cannot
// end before the barrier: R has not taken its local checkpoint when the
// barrier runs, so P and Q are still missing R's mySendCount and can never
// report readyToStopLogging — they are deterministically logging at barrier
// time no matter how the goroutines interleave. This is exactly Figure 5's
// call A: P and Q execute the collective after their checkpoints, R before
// its own.
func TestLoggedBarrierSkippedOnRecovery(t *testing.T) {
	ls, cs, _ := newTestLayers(t, 3, Full)
	P, Q, R := ls[0], ls[1], ls[2]

	P.RequestCheckpoint()
	P.PotentialCheckpoint()
	Q.PotentialCheckpoint()
	if !P.Logging() || !Q.Logging() || R.Logging() {
		t.Fatal("setup: P and Q should be logging, R not")
	}

	var wg sync.WaitGroup
	for _, l := range []*Layer{P, Q, R} {
		wg.Add(1)
		go func(l *Layer) {
			defer wg.Done()
			l.Barrier() // P, Q logging: entry recorded; R in old epoch: live
		}(l)
	}
	wg.Wait()
	if !P.Logging() || !Q.Logging() {
		t.Fatal("P and Q must still be logging after the barrier (R's mySendCount is outstanding)")
	}

	R.PotentialCheckpoint() // R takes the requested checkpoint after the barrier
	pump(t, ls, cs, 1)

	w2 := mpi.NewWorld(3, mpi.Options{})
	var l2 [3]*Layer
	for i := range l2 {
		l2[i] = NewLayer(w2.Comm(i), Config{Mode: Full, Store: cs, Debug: true})
		if _, err := l2[i].Restore(1, nil); err != nil {
			t.Fatal(err)
		}
	}
	// P and Q recover to states from before the barrier and re-execute the
	// call; the result is consumed from their logs with no communication, so
	// the sequential calls below cannot deadlock. R's checkpoint is from
	// after the barrier, so R never re-executes it — which is why converting
	// the logged barrier into a log lookup is the only consistent treatment.
	l2[0].Barrier()
	l2[1].Barrier()
	for i, l := range l2 {
		if !l.replay.Exhausted() {
			t.Fatalf("rank %d: log entries should have been consumed", i)
		}
	}
}

// TestStopLoggingInfection exercises Phase 4 condition (ii): receiving an
// intra-epoch message from a process that has stopped logging stops the
// receiver's logging before the message is delivered.
func TestStopLoggingInfection(t *testing.T) {
	ls, cs, _ := newTestLayers(t, 2, Full)
	P, Q := ls[0], ls[1]

	P.RequestCheckpoint()
	P.PotentialCheckpoint()
	Q.PotentialCheckpoint()
	if !P.Logging() || !Q.Logging() {
		t.Fatal("both should be logging")
	}

	// Q stops logging (simulating a stopLogging that has not reached P).
	Q.finalizeLog()
	// Q sends an intra-epoch message; its piggyback carries logging=false.
	Q.Send(0, 3, []byte("from-stopped"))

	// P receives it: before the application sees the data, P must stop
	// logging — otherwise P's log could capture an event that depends on
	// Q's unlogged non-determinism.
	m := P.Recv(1, 3)
	if string(m.Data) != "from-stopped" {
		t.Fatalf("payload %q", m.Data)
	}
	if P.Logging() {
		t.Fatal("P must stop logging upon hearing from a stopped process")
	}
	pump(t, ls, cs, 1)
}

// TestDeferralRule: a process may not take a new checkpoint while its
// recovered log is still being replayed or suppressed re-sends are due.
func TestDeferralRule(t *testing.T) {
	ls, cs, _ := newTestLayers(t, 2, Full)
	P, Q := ls[0], ls[1]

	// Build a committed checkpoint where Q has a late message in its log.
	P.RequestCheckpoint()
	P.Send(1, 7, []byte("late"))
	Q.PotentialCheckpoint()
	_ = Q.Recv(0, 7)
	P.PotentialCheckpoint()
	pump(t, ls, cs, 1)

	// New incarnation.
	w2 := mpi.NewWorld(2, mpi.Options{})
	P2 := NewLayer(w2.Comm(0), Config{Mode: Full, Store: cs, Debug: true})
	Q2 := NewLayer(w2.Comm(1), Config{Mode: Full, Store: cs, Debug: true})
	if _, err := P2.Restore(1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Q2.Restore(1, nil); err != nil {
		t.Fatal(err)
	}

	// A new checkpoint is requested immediately.
	P2.RequestCheckpoint()
	// Q2 hits a potential checkpoint before consuming its late message: it
	// must defer.
	Q2.PotentialCheckpoint()
	if Q2.Epoch() != 1 {
		t.Fatalf("Q took a checkpoint mid-replay (epoch %d)", Q2.Epoch())
	}
	// After consuming the log, the deferred checkpoint may proceed.
	m := Q2.Recv(0, 7)
	if string(m.Data) != "late" {
		t.Fatalf("payload %q", m.Data)
	}
	Q2.PotentialCheckpoint()
	if Q2.Epoch() != 2 {
		t.Fatalf("Q epoch after replay = %d", Q2.Epoch())
	}
}
