package protocol

import (
	"bytes"
	"strings"
	"testing"
)

func TestStatsFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := StatsFrame{Rank: 2, Incarnation: 1, Final: true,
		Stats: Stats{MessagesSent: 7, CheckpointBlockedNs: 12345}}
	if err := WriteStatsFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseStatsFrame(bytes.TrimSpace(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if out.V != StatsWireVersion || out.Rank != 2 || out.Incarnation != 1 || !out.Final ||
		out.Stats.MessagesSent != 7 || out.Stats.CheckpointBlockedNs != 12345 {
		t.Fatalf("round trip mangled frame: %+v", out)
	}
}

// TestStatsFrameForwardCompat pins the tolerant decode: a frame from a
// future emitter — higher version, counters this build has never heard of,
// extra top-level fields — must decode cleanly, keeping the fields we know.
func TestStatsFrameForwardCompat(t *testing.T) {
	fixture := `{"v":3,"rank":1,"incarnation":2,"final":true,"flux_capacitance":9,` +
		`"stats":{"messages_sent":42,"bytes_sent":1000,"quantum_retries":7,"warp_ns":123}}`
	f, err := ParseStatsFrame([]byte(fixture))
	if err != nil {
		t.Fatalf("future frame rejected: %v", err)
	}
	if f.V != 3 || f.Rank != 1 || f.Incarnation != 2 || !f.Final {
		t.Fatalf("known header fields lost: %+v", f)
	}
	if f.Stats.MessagesSent != 42 || f.Stats.BytesSent != 1000 {
		t.Fatalf("known counters lost: %+v", f.Stats)
	}
}

func TestStatsFrameRejectsUnversioned(t *testing.T) {
	if _, err := ParseStatsFrame([]byte(`{"rank":0,"stats":{}}`)); err == nil {
		t.Fatal("frame without version field must be rejected")
	}
	if _, err := ParseStatsFrame([]byte(`not json`)); err == nil {
		t.Fatal("garbage must be rejected")
	}
}

func TestReadStatsFramesSkipsTornLines(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteStatsFrame(&buf, StatsFrame{Rank: 0, Stats: Stats{MessagesSent: 1}})
	buf.WriteString(`{"v":1,"rank":1,"stats":{"messages_` + "\n") // torn mid-write
	_ = WriteStatsFrame(&buf, StatsFrame{Rank: 1, Stats: Stats{MessagesSent: 2}})
	var got []StatsFrame
	ReadStatsFrames(strings.NewReader(buf.String()), func(f StatsFrame) { got = append(got, f) })
	if len(got) != 2 || got[0].Rank != 0 || got[1].Rank != 1 {
		t.Fatalf("torn line handling wrong: %+v", got)
	}
}

func TestStatsAddCoversEveryCounter(t *testing.T) {
	a := Stats{MessagesSent: 1, CheckpointRegions: 5}
	a.Add(Stats{MessagesSent: 2, BytesSent: 3, CheckpointRegions: 1})
	if a.MessagesSent != 3 || a.BytesSent != 3 || a.CheckpointRegions != 6 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestAggregatorAcrossIncarnations(t *testing.T) {
	var lastTotal Stats
	agg := NewAggregator(func(total Stats, _ StatsFrame) { lastTotal = total })

	// Incarnation 0: two ranks, cumulative snapshots (latest wins).
	agg.Observe(StatsFrame{Rank: 0, Incarnation: 0, Stats: Stats{MessagesSent: 5}})
	agg.Observe(StatsFrame{Rank: 0, Incarnation: 0, Stats: Stats{MessagesSent: 10}})
	agg.Observe(StatsFrame{Rank: 1, Incarnation: 0, Stats: Stats{MessagesSent: 4}})
	if tot := agg.Total(); tot.MessagesSent != 14 {
		t.Fatalf("incarnation-0 total = %d, want 14 (latest per rank)", tot.MessagesSent)
	}

	// Rollback: incarnation 1 resets the ranks' counters, but the run total
	// must keep counting (Prometheus monotonicity).
	agg.Observe(StatsFrame{Rank: 0, Incarnation: 1, Stats: Stats{MessagesSent: 2}})
	agg.Observe(StatsFrame{Rank: 1, Incarnation: 1, Stats: Stats{MessagesSent: 3}})
	if tot := agg.Total(); tot.MessagesSent != 14+5 {
		t.Fatalf("post-rollback total = %d, want 19", tot.MessagesSent)
	}
	if lastTotal.MessagesSent != 19 {
		t.Fatalf("onObserve saw total %d, want 19", lastTotal.MessagesSent)
	}

	// A stale incarnation-0 frame racing in late must not regress anything.
	agg.Observe(StatsFrame{Rank: 1, Incarnation: 0, Stats: Stats{MessagesSent: 999}})
	if tot := agg.Total(); tot.MessagesSent != 19 {
		t.Fatalf("stale frame changed total to %d", tot.MessagesSent)
	}

	pr := agg.PerRank()
	if len(pr) != 2 || pr[0].Rank != 0 || pr[1].Rank != 1 ||
		pr[0].Incarnation != 1 || pr[0].Stats.MessagesSent != 2 || pr[1].Stats.MessagesSent != 3 {
		t.Fatalf("PerRank wrong: %+v", pr)
	}
	fs := agg.FinalStats()
	if len(fs) != 2 || fs[1].MessagesSent != 3 {
		t.Fatalf("FinalStats wrong: %+v", fs)
	}
}
