package protocol

import (
	"fmt"

	"ccift/internal/mpi"
)

// Pseudo-handles and persistent-object replay (Section 5.2).
//
// The layer cannot save MPI's internal state, so the application only ever
// sees pseudo-handles; the real opaque objects live behind them. Transient
// objects (requests) are re-initialized from the request records saved with
// the checkpoint. Persistent objects (communicators and friends) are
// recreated by replaying, in order, the record of every call that created
// or manipulated them.

// CommHandle is the application-visible pseudo-handle for a communicator.
// Handle 0 is the world communicator.
type CommHandle int64

// WorldComm is the pseudo-handle of the world communicator.
const WorldComm CommHandle = 0

// PersistRecord records one persistent-object call for replay on restart.
type PersistRecord struct {
	// Op is the call name ("dup" or "split").
	Op string
	// Parent is the pseudo-handle the call operated on.
	Parent CommHandle
	// Args are the call's integer arguments (color, key for split).
	Args []int64
	// Result is the pseudo-handle assigned to the created object.
	Result CommHandle
}

type handleTable struct {
	nextReq  Handle
	reqs     map[Handle]*reqState
	nextComm CommHandle
	comms    map[CommHandle]*mpi.Comm
}

func newHandleTable() *handleTable {
	return &handleTable{
		nextReq:  1,
		reqs:     map[Handle]*reqState{},
		nextComm: 1,
		comms:    map[CommHandle]*mpi.Comm{},
	}
}

func (t *handleTable) newRequest(st *reqState) Handle {
	h := t.nextReq
	t.nextReq++
	t.reqs[h] = st
	return h
}

func (t *handleTable) request(h Handle) *reqState {
	st, ok := t.reqs[h]
	if !ok {
		panic(fmt.Sprintf("protocol: unknown or already-released request handle %d", h))
	}
	return st
}

func (t *handleTable) release(h Handle) { delete(t.reqs, h) }

// CommDup duplicates the communicator behind parent, records the call for
// recovery replay, and returns the new pseudo-handle. Collective over the
// parent communicator.
func (l *Layer) CommDup(parent CommHandle) CommHandle {
	l.enterOp()
	c := l.lookupComm(parent)
	dup := c.Dup()
	h := l.handles.nextComm
	l.handles.nextComm++
	l.handles.comms[h] = dup
	l.persist = append(l.persist, PersistRecord{Op: "dup", Parent: parent, Result: h})
	return h
}

// CommSplit splits the communicator behind parent, records the call, and
// returns the new pseudo-handle (or a negative sentinel for color < 0).
// Collective over the parent communicator.
func (l *Layer) CommSplit(parent CommHandle, color, key int) CommHandle {
	l.enterOp()
	c := l.lookupComm(parent)
	sub := c.Split(color, key)
	h := l.handles.nextComm
	l.handles.nextComm++
	if sub != nil {
		l.handles.comms[h] = sub
	}
	l.persist = append(l.persist, PersistRecord{Op: "split", Parent: parent, Args: []int64{int64(color), int64(key)}, Result: h})
	return h
}

// SubComm returns the raw communicator behind a pseudo-handle. Sub-
// communicator traffic is not piggybacked (the protocol, as presented in
// the paper, coordinates the world communicator); the pseudo-handle
// machinery exists so that such objects survive recovery.
func (l *Layer) SubComm(h CommHandle) *mpi.Comm { return l.lookupComm(h) }

func (l *Layer) lookupComm(h CommHandle) *mpi.Comm {
	if h == WorldComm {
		return l.comm
	}
	c, ok := l.handles.comms[h]
	if !ok {
		panic(fmt.Sprintf("protocol: unknown communicator pseudo-handle %d", h))
	}
	return c
}

// replayPersistent re-executes the recorded persistent-object calls to
// rebuild the pseudo-handle table after a restart. Every rank replays the
// same collective calls in the same order, so the replay itself is a valid
// collective execution.
func (l *Layer) replayPersistent(records []PersistRecord) {
	for _, r := range records {
		parent := l.lookupComm(r.Parent)
		switch r.Op {
		case "dup":
			l.handles.comms[r.Result] = parent.Dup()
		case "split":
			sub := parent.Split(int(r.Args[0]), int(r.Args[1]))
			if sub != nil {
				l.handles.comms[r.Result] = sub
			}
		default:
			panic(fmt.Sprintf("protocol: unknown persistent record op %q", r.Op))
		}
		if r.Result >= l.handles.nextComm {
			l.handles.nextComm = r.Result + 1
		}
	}
	l.persist = records
}
