package protocol

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"time"

	"ccift/internal/cerr"
	"ccift/internal/ckpt"
	"ccift/internal/clock"
	"ccift/internal/mpi"
	"ccift/internal/storage"
)

// Mode selects how much of the system is active; the four modes are exactly
// the four program versions measured in Figure 8.
type Mode int

const (
	// Unmodified bypasses the protocol layer entirely (version 1).
	Unmodified Mode = iota
	// PiggybackOnly attaches piggybacks and control collectives but never
	// takes checkpoints (version 2).
	PiggybackOnly
	// NoAppState runs the full protocol — logs, MPI library state, control
	// traffic — but skips serializing application state (version 3).
	NoAppState
	// Full takes complete checkpoints (version 4).
	Full
)

func (m Mode) String() string {
	switch m {
	case Unmodified:
		return "unmodified"
	case PiggybackOnly:
		return "piggyback-only"
	case NoAppState:
		return "no-app-state"
	case Full:
		return "full"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Control message tags (application tags must be non-negative).
const (
	tagPleaseCheckpoint = -11
	tagMySendCount      = -12
	tagReadyToStop      = -13
	tagStopLogging      = -14
	tagStoppedLogging   = -15
)

var controlSpecs = []mpi.RecvSpec{
	{Source: mpi.AnySource, Tag: tagPleaseCheckpoint},
	{Source: mpi.AnySource, Tag: tagMySendCount},
	{Source: mpi.AnySource, Tag: tagReadyToStop},
	{Source: mpi.AnySource, Tag: tagStopLogging},
	{Source: mpi.AnySource, Tag: tagStoppedLogging},
}

// Config configures a protocol layer.
type Config struct {
	Mode  Mode
	Store *storage.CheckpointStore
	// Ctx, when non-nil, is the run's context: once it is done, every
	// protocol-layer call raises mpi.ErrCanceled so the rank unwinds
	// promptly even between blocking substrate operations. The engine also
	// cancels the world itself, which wakes ranks parked inside the
	// substrate; this check covers the gaps in between.
	Ctx context.Context
	// EveryN makes the initiator (rank 0) request a global checkpoint
	// every N-th PotentialCheckpoint call it executes. Zero disables.
	EveryN int
	// Interval makes the initiator request a global checkpoint whenever
	// this much wall time has elapsed since the last request. Zero
	// disables. (The paper uses a 30-second interval.)
	Interval time.Duration
	// Debug enables internal consistency assertions.
	Debug bool
	// Tracer, when non-nil, receives protocol events (see TraceEvent).
	Tracer Tracer
	// AsyncFlush moves checkpoint serialization and storage I/O onto a
	// background flusher goroutine: takeCheckpoint blocks the rank only to
	// freeze a copy of the live state, and the durable write overlaps
	// continued computation. The commit record still waits for every
	// rank's flush (see maybeReportStopped), so crash-consistency is
	// unchanged. Off means the classic stop-serialize-fsync path.
	AsyncFlush bool
	// ChunkSize is the chunk granularity of the content-hashed state
	// writer; 0 selects storage.DefaultChunkSize.
	ChunkSize int
	// FlushBandwidth caps the checkpoint state writer's streaming
	// throughput, in bytes per second, on both the synchronous and
	// asynchronous write paths. Zero means no fixed cap. Independent of
	// the adaptive governor, which only ever throttles further.
	FlushBandwidth float64
	// NoFlushGovernor disables the adaptive flush governor (see
	// governor.go) that throttles the async flusher when the rank's
	// compute throughput drops more than govTargetSlowdown below its
	// flush-free baseline. The fixed FlushBandwidth cap still applies.
	NoFlushGovernor bool
	// ChunkPipeline selects the chunked state writer's pipeline depth:
	// 0 picks storage.DefaultPipelineDepth, negative forces the serial
	// writer (the simulated substrate does, for strict determinism).
	ChunkPipeline int
	// FreezeCrossCheck re-encodes the live state after every freeze and
	// verifies the frozen view byte-for-byte against it, turning a
	// missing Touch/TouchRange in the application into an immediate
	// ErrProgram naming the stale variable instead of silently divergent
	// recovered state. Debug mode: costs a full encode per checkpoint.
	FreezeCrossCheck bool
	// RetainForRecovery keeps an in-memory copy of the serialized
	// checkpoint (state and log blobs of the newest two epochs) alongside
	// the durable write. A surviving rank hands the copies back through
	// RestoreFrom on rollback and never touches the store — the localized
	// recovery path. Costs one extra in-memory copy of the state blob.
	RetainForRecovery bool
	// IncrementalFreeze enables dirty-region tracking in the state-saving
	// runtime: a checkpoint's blocking freeze copies only regions touched
	// since the previous epoch (see ckpt.Saver.Incremental) and
	// re-references the prior frozen slabs for clean ones. Requires the
	// application to honor the Touch write-intent contract; the serialized
	// state is byte-identical to a full freeze, so storage and recovery
	// are unaffected. Off by default.
	IncrementalFreeze bool
	// StatsSink, when non-nil, receives cumulative snapshots of this
	// layer's Stats at observable progress points (each completed
	// checkpoint, each integrated flush, and Finish). Snapshots are
	// monotone within one layer and always called from the rank's own
	// goroutine; the substrate uses them to stream live counters to a
	// launcher or metrics endpoint.
	StatsSink func(Stats)
	// Clock is the time source for interval triggers, control deadlines,
	// and blocked/flush-time accounting; nil selects the wall clock. The
	// simulated substrate passes a virtual (possibly per-rank skewed)
	// clock here.
	Clock clock.Clock
}

// Stats counts protocol activity for the evaluation harness. The json
// tags are the stable wire names of the cross-process stats stream (see
// stats.go); add fields freely, but never rename or reuse a tag.
type Stats struct {
	MessagesSent       int64 `json:"messages_sent"`
	BytesSent          int64 `json:"bytes_sent"`
	PiggybackBytes     int64 `json:"piggyback_bytes"`
	ControlMessages    int64 `json:"control_messages"`
	ControlCollectives int64 `json:"control_collectives"`
	LateLogged         int64 `json:"late_logged"`
	EarlyRecorded      int64 `json:"early_recorded"`
	EventsLogged       int64 `json:"events_logged"`
	LogBytes           int64 `json:"log_bytes"`
	CheckpointsTaken   int64 `json:"checkpoints_taken"`
	CheckpointBytes    int64 `json:"checkpoint_bytes"`
	// CheckpointBytesWritten counts bytes actually stored after chunk
	// dedup; the gap to CheckpointBytes is the incremental-checkpoint win.
	CheckpointBytesWritten int64 `json:"checkpoint_bytes_written"`
	// CheckpointBlockedNs is time the rank spent stopped inside
	// takeCheckpoint (freeze + inline write when synchronous);
	// CheckpointFlushNs is time spent writing state to stable storage
	// (overlapped with computation when asynchronous). Their ratio is the
	// async pipeline's headline number.
	CheckpointBlockedNs int64 `json:"checkpoint_blocked_ns"`
	CheckpointFlushNs   int64 `json:"checkpoint_flush_ns"`
	// FlushThrottleNs is time the flush governor spent sleeping the
	// state writer (token-bucket stalls) — the price paid to keep the
	// rank's compute throughput within the target slowdown.
	FlushThrottleNs int64 `json:"flush_throttle_ns"`
	// CheckpointBytesCopied counts bytes memcopied into frozen views at
	// capture time; with incremental freeze, clean regions re-reference
	// the previous epoch's slabs and cost nothing, so the gap to
	// CheckpointBytes is the dirty-tracking win. CheckpointRegionsDirty /
	// CheckpointRegions count captured vs total regions (VDS variables +
	// heap blocks) across all checkpoints.
	CheckpointBytesCopied  int64 `json:"checkpoint_bytes_copied"`
	CheckpointRegionsDirty int64 `json:"checkpoint_regions_dirty"`
	CheckpointRegions      int64 `json:"checkpoint_regions"`
	SuppressedSends        int64 `json:"suppressed_sends"`
	ReplayedLate           int64 `json:"replayed_late"`
	ReplayedResults        int64 `json:"replayed_results"`
	// RecoveredFromRetained counts restores served from this rank's
	// in-memory retained checkpoint copy instead of the store (localized
	// recovery's survivor path).
	RecoveredFromRetained int64 `json:"recovered_from_retained"`
}

// AppMessage is a delivered application message (piggyback stripped).
type AppMessage struct {
	Source int
	Tag    int
	Data   []byte
}

// Layer is the per-process protocol layer. It is not safe for concurrent
// use: each rank drives its own layer, mirroring a single-threaded MPI
// process.
type Layer struct {
	comm *mpi.Comm
	cfg  Config
	rank int
	size int
	clk  clock.Clock

	// Saver holds the application state (PS/VDS/heap) that a Full-mode
	// checkpoint serializes.
	Saver *ckpt.Saver

	// Protocol variables of Figure 4.
	epoch                int
	amLogging            bool
	nextMessageID        uint32
	checkpointRequested  bool
	requestedEpoch       int
	sendCount            []int64
	earlyIDs             [][]uint32
	currentReceiveCount  []int64
	previousReceiveCount []int64
	totalSent            []int64 // -1 = unknown (⊥)

	log      *Log
	recvSeq  int64
	collSeq  int64
	eventSeq int64

	// Recovery state.
	replay          *Replay
	suppress        map[uint32]bool
	suppressPending int
	restarted       bool

	// MPI library state (Section 5.2).
	handles *handleTable
	persist []PersistRecord

	// Initiator state (rank 0 only).
	init *initiatorState

	// selSpecs is the reusable receive-spec buffer for the app+control
	// Select on the receive hot path.
	selSpecs []mpi.RecvSpec

	// done is cfg.Ctx's done channel (nil when no context was supplied);
	// kept unwrapped so the per-op cancellation check is one channel poll,
	// not a ctx.Err() mutex acquisition.
	done <-chan struct{}

	// Background checkpoint flusher (see flush.go). flushJobs/flushOut are
	// the only cross-goroutine channels; flushPending, logDone and
	// stopSent are the rank goroutine's single-threaded view of the
	// current checkpoint's durability.
	flushJobs    chan *pendingCheckpoint
	flushOut     chan flushResult
	flushWG      sync.WaitGroup
	flushPending bool
	flushClosed  bool
	logDone      bool
	stopSent     bool

	// Retained checkpoint copies (localized recovery): the serialized
	// state and log blobs of the newest two epochs, as streamed to the
	// store. Written from the rank's goroutine only (integrateFlush /
	// finalizeLog). Empty unless cfg.RetainForRecovery.
	retainStates retainedRing
	retainLogs   retainedRing

	// Completion: once the application on this rank has finished, the
	// layer only services control traffic.
	finished bool

	Stats          Stats
	potentialCalls int64

	// Flush bandwidth governor (see governor.go): gov is shared with the
	// flusher goroutine; govMark/govMarkOps delimit the current
	// throughput-measurement window on the rank's goroutine.
	gov        *flushGovernor
	govMark    time.Time
	govMarkOps int64
}

type initiatorState struct {
	inProgress bool
	target     int
	ready      int
	stopped    int
	lastStart  time.Time
	sincePrev  int64 // PotentialCheckpoint calls since the last initiation
}

// NewLayer builds the protocol layer for one rank on the given world
// communicator.
func NewLayer(comm *mpi.Comm, cfg Config) *Layer {
	n := comm.Size()
	l := &Layer{
		comm:                 comm,
		cfg:                  cfg,
		rank:                 comm.Rank(),
		size:                 n,
		Saver:                ckpt.NewSaver(),
		sendCount:            make([]int64, n),
		earlyIDs:             make([][]uint32, n),
		currentReceiveCount:  make([]int64, n),
		previousReceiveCount: make([]int64, n),
		totalSent:            make([]int64, n),
		log:                  NewLog(),
		suppress:             map[uint32]bool{},
		handles:              newHandleTable(),
	}
	for i := range l.totalSent {
		l.totalSent[i] = -1
	}
	l.clk = clock.Or(cfg.Clock)
	l.gov = newFlushGovernor(l.clk, cfg.FlushBandwidth, cfg.AsyncFlush && !cfg.NoFlushGovernor)
	l.govMark = l.clk.Now()
	if cfg.Ctx != nil {
		l.done = cfg.Ctx.Done()
	}
	// Rank 0 carries the replicated-data copies (Section 7's distributed
	// redundant data optimization) and plays the initiator.
	l.Saver.VDS.Primary = l.rank == 0
	l.Saver.Incremental = cfg.IncrementalFreeze
	if l.rank == 0 && cfg.Mode >= NoAppState {
		l.init = &initiatorState{lastStart: l.clk.Now()}
	}
	return l
}

// Rank returns this process's rank.
func (l *Layer) Rank() int { return l.rank }

// Size returns the number of processes.
func (l *Layer) Size() int { return l.size }

// Epoch returns the current epoch number (Section 2).
func (l *Layer) Epoch() int { return l.epoch }

// Logging reports whether the layer is currently logging (amLogging).
func (l *Layer) Logging() bool { return l.amLogging }

// Restarted reports whether this incarnation was restored from a
// checkpoint.
func (l *Layer) Restarted() bool { return l.restarted }

// Comm exposes the underlying communicator (tests, baselines).
func (l *Layer) Comm() *mpi.Comm { return l.comm }

func (l *Layer) color() bool { return l.epoch%2 == 1 }

func (l *Layer) active() bool { return l.cfg.Mode != Unmodified }

// enterOp runs at the top of every protocol-layer call: it observes
// cancellation, services pending control messages, and lets the initiator
// start a new global checkpoint when its trigger fires.
func (l *Layer) enterOp() {
	l.raiseIfCanceled()
	if !l.active() {
		return
	}
	l.pollFlush()
	l.drainControl()
	if l.init != nil {
		l.maybeInitiate(false)
	}
}

// raiseIfCanceled panics with mpi.ErrCanceled once the layer's context is
// done. One non-blocking channel poll: cheap enough for every operation.
func (l *Layer) raiseIfCanceled() {
	if l.done == nil {
		return
	}
	select {
	case <-l.done:
		panic(mpi.ErrCanceled)
	default:
	}
}

// drainControl handles every queued control message.
func (l *Layer) drainControl() {
	for {
		idx, m := l.comm.PollSelect(controlSpecs)
		if m == nil {
			return
		}
		l.handleControl(idx, m)
	}
}

func (l *Layer) handleControl(specIdx int, m *mpi.Message) {
	switch controlSpecs[specIdx].Tag {
	case tagPleaseCheckpoint:
		target := int(ctlU64(m.Data, 0))
		if target > l.epoch && target > l.requestedEpoch {
			l.checkpointRequested = true
			l.requestedEpoch = target
		}
	case tagMySendCount:
		epoch := int(ctlU64(m.Data, 0))
		count := int64(ctlU64(m.Data, 1))
		// The count describes the sender's previous epoch and is meant for
		// our logging phase of checkpoint `epoch`. Accept it if we are in
		// that epoch (logging) or one behind (we have not checkpointed
		// yet); anything else is stale and impossible under the protocol's
		// ordering guarantees.
		if epoch == l.epoch || epoch == l.epoch+1 {
			l.totalSent[m.Source] = count
			if l.amLogging {
				l.receivedAll()
			}
		} else if l.cfg.Debug {
			panic(fmt.Sprintf("protocol: rank %d: stale mySendCount(epoch=%d) in epoch %d", l.rank, epoch, l.epoch))
		}
	case tagStopLogging:
		epoch := int(ctlU64(m.Data, 0))
		if epoch == l.epoch && l.amLogging {
			l.finalizeLog()
		}
	case tagReadyToStop:
		if l.init == nil {
			panic("protocol: readyToStopLogging received by non-initiator")
		}
		if int(ctlU64(m.Data, 0)) == l.init.target && l.init.inProgress {
			l.init.ready++
			if l.init.ready == l.size {
				// Phase 3: every process has taken its local checkpoint;
				// no further message can be early, so logging may stop.
				for q := 0; q < l.size; q++ {
					l.sendCtl(q, tagStopLogging, uint64(l.init.target))
				}
			}
		}
	case tagStoppedLogging:
		if l.init == nil {
			panic("protocol: stoppedLogging received by non-initiator")
		}
		if int(ctlU64(m.Data, 0)) == l.init.target && l.init.inProgress {
			l.init.stopped++
			if l.init.stopped == l.size {
				// Phase 4 completion: record the new global checkpoint as
				// the one to use for recovery.
				if err := l.cfg.Store.Commit(l.init.target); err != nil {
					// An error value, not a string: the engine's classifier
					// keeps the store category.
					panic(fmt.Errorf("protocol: commit checkpoint %d: %w: %w", l.init.target, cerr.ErrStore, err))
				}
				l.trace(TraceCommit, -1, 0, 0, l.init.target)
				l.init.inProgress = false
				// Epochs older than the newly committed one are
				// unreachable (recovery always starts from the newest
				// commit): delete their blobs and sweep orphaned chunks.
				// Safe against concurrent writers because the next
				// pleaseCheckpoint is only broadcast after this returns.
				// GC is best-effort — the commit record is already durable,
				// so a prune failure must not kill a job whose checkpoints
				// are all intact; the next commit's sweep retries anything
				// still unreferenced.
				if err := l.cfg.Store.Prune(l.init.target); err != nil {
					fmt.Fprintf(os.Stderr, "protocol: prune epochs below %d (non-fatal): %v\n", l.init.target, err)
				}
			}
		}
	}
}

// maybeInitiate starts a new global checkpoint when the configured trigger
// fires (or when forced). Only one global checkpoint may be in progress at
// a time.
func (l *Layer) maybeInitiate(force bool) {
	if l.init == nil || l.init.inProgress {
		return
	}
	fire := force
	if !fire && l.cfg.EveryN > 0 && l.init.sincePrev >= int64(l.cfg.EveryN) {
		fire = true
	}
	if !fire && l.cfg.Interval > 0 && l.clk.Since(l.init.lastStart) >= l.cfg.Interval {
		fire = true
	}
	if !fire {
		return
	}
	l.init.inProgress = true
	l.init.target = l.epoch + 1
	l.init.ready = 0
	l.init.stopped = 0
	l.init.lastStart = l.clk.Now()
	l.init.sincePrev = 0
	for q := 0; q < l.size; q++ {
		l.sendCtl(q, tagPleaseCheckpoint, uint64(l.init.target))
	}
}

// RequestCheckpoint forces the initiator to start a global checkpoint now
// (rank 0 only); used by tests and the recovery demo driver.
func (l *Layer) RequestCheckpoint() {
	if l.init == nil {
		panic("protocol: RequestCheckpoint on non-initiator rank")
	}
	l.maybeInitiate(true)
}

// CheckpointInProgress reports whether the initiator is mid-protocol.
func (l *Layer) CheckpointInProgress() bool {
	return l.init != nil && l.init.inProgress
}

func (l *Layer) sendCtl(dst, tag int, words ...uint64) {
	buf := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(buf[8*i:], w)
	}
	l.Stats.ControlMessages++
	l.comm.Send(dst, tag, buf)
}

func ctlU64(b []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(b[8*i:])
}

// receivedAll implements receivedAll?() of Figure 4: once this process has
// received every late message from the previous epoch, it tells the
// initiator it is ready to stop logging.
func (l *Layer) receivedAll() {
	for p := 0; p < l.size; p++ {
		if l.previousReceiveCount[p] != l.totalSent[p] {
			if l.cfg.Debug && l.totalSent[p] >= 0 && l.previousReceiveCount[p] > l.totalSent[p] {
				panic(fmt.Sprintf("protocol: rank %d received %d late/intra messages from %d but only %d were sent",
					l.rank, l.previousReceiveCount[p], p, l.totalSent[p]))
			}
			return
		}
	}
	l.sendCtl(0, tagReadyToStop, uint64(l.epoch))
	for p := range l.totalSent {
		l.totalSent[p] = -1
	}
}

// finalizeLog implements finalizeLog() of Figure 4: write the log to stable
// storage and stop logging. The stoppedLogging report to the initiator is
// sent through maybeReportStopped, which additionally waits for this
// epoch's state flush — the commit record must never be written while any
// rank's checkpoint is still in flight.
func (l *Layer) finalizeLog() {
	blob := l.log.Marshal()
	if err := l.cfg.Store.PutLog(l.epoch, l.rank, blob); err != nil {
		panic(fmt.Errorf("protocol: persist log (epoch %d, rank %d): %w: %w", l.epoch, l.rank, cerr.ErrStore, err))
	}
	if l.cfg.RetainForRecovery {
		l.retainLogs.put(l.epoch, blob)
	}
	l.Stats.LogBytes += int64(len(blob))
	l.amLogging = false
	l.trace(TraceLogFinalized, -1, 0, 0, len(blob))
	l.logDone = true
	l.maybeReportStopped()
}

// PotentialCheckpoint is the application's checkpoint opportunity. A local
// checkpoint is taken only if one has been requested, and — the deferral
// rule — only once any previous log replay has been fully consumed and all
// suppressed re-sends have been re-executed, so that the counts and logs of
// the new checkpoint are complete.
func (l *Layer) PotentialCheckpoint() {
	l.potentialCalls++
	if l.init != nil {
		l.init.sincePrev++
	}
	l.enterOp()
	if l.cfg.Mode != NoAppState && l.cfg.Mode != Full {
		return
	}
	if !l.checkpointRequested {
		return
	}
	if l.replay != nil && (!l.replay.Exhausted() || l.suppressPending > 0) {
		return
	}
	l.takeCheckpoint()
}

// takeCheckpoint performs potentialCheckpoint()'s state transition from
// Figure 4 plus the state saving of Section 5. The state save is split
// into snapshot-now (captureState: protocol counters + a frozen copy of
// the application state, the only part the rank blocks for) and
// flush (writeState: serialize + chunked durable write), which runs
// inline in sync mode and on the background flusher in async mode.
func (l *Layer) takeCheckpoint() {
	start := l.clk.Now()
	l.epoch++

	// Save node state: application state (Section 5.1) + MPI library state
	// (Section 5.2) + the early-message IDs and epoch (Figure 4).
	p, err := l.captureState()
	if err != nil {
		// Panic with the error value so the engine's classifier keeps the
		// category (a freeze cross-check failure carries ErrProgram).
		panic(fmt.Errorf("protocol: snapshot state: %w", err))
	}
	l.logDone = false
	l.stopSent = false
	if l.cfg.AsyncFlush {
		l.startFlush(p)
	} else {
		// Inline write, integrated through the same path as a finished
		// background flush so the two modes cannot drift (stats, trace
		// event, cancellation translation).
		fstart := l.clk.Now()
		total, written, err := l.writeState(p)
		l.finishFlush(flushResult{epoch: p.epoch, total: total, written: written,
			dur: l.clk.Since(fstart), throttleNs: l.gov.drainThrottle(), retain: p.retainedBytes(), err: err})
	}
	l.Stats.CheckpointsTaken++
	l.Stats.CheckpointBlockedNs += l.clk.Since(start).Nanoseconds()
	l.emitStats()

	// Tell every receiver how many messages we sent it in the epoch that
	// just ended.
	for q := 0; q < l.size; q++ {
		l.sendCtl(q, tagMySendCount, uint64(l.epoch), uint64(l.sendCount[q]))
	}
	for p := 0; p < l.size; p++ {
		l.previousReceiveCount[p] = l.currentReceiveCount[p]
		// Early messages we received in the old epoch were sent in the new
		// one, so they seed the new epoch's receive counts.
		l.currentReceiveCount[p] = int64(len(l.earlyIDs[p]))
		l.earlyIDs[p] = nil
		l.sendCount[p] = 0
	}
	l.checkpointRequested = false
	l.amLogging = true
	l.nextMessageID = 0
	l.recvSeq = 0
	l.collSeq = 0
	l.eventSeq = 0
	l.log = NewLog()
	l.replay = nil
	l.suppress = map[uint32]bool{}
	l.suppressPending = 0
	l.receivedAll()
}

// Finish marks the application as complete on this rank; afterwards the
// layer only services control traffic via ServiceControl.
func (l *Layer) Finish() {
	l.finished = true
	l.emitStats()
}

// emitStats hands the sink a snapshot of the layer's counters; a no-op
// without a configured sink.
func (l *Layer) emitStats() {
	if l.cfg.StatsSink != nil {
		l.cfg.StatsSink(l.Stats)
	}
}

// ServiceControl processes pending control traffic once; callers that
// poll on their own schedule (tests, external drivers) use this, while
// finished ranks should prefer ServiceControlUntil, which blocks instead
// of spinning.
func (l *Layer) ServiceControl() {
	if !l.active() {
		return
	}
	l.pollFlush()
	l.drainControl()
	if l.init != nil {
		l.maybeInitiate(false)
	}
}

// ServiceControlUntil services control traffic until stop reports true,
// parking on the transport in between: the rank wakes only when a control
// message arrives, the world is interrupted (the engine's completion
// signal), or — for an interval-triggered initiator — the next initiation
// deadline passes. This replaces the finished-rank busy-poll: checkpoints
// initiated while other ranks are still running cannot stall on this
// rank's silence, and an idle rank consumes no CPU.
func (l *Layer) ServiceControlUntil(stop func() bool) {
	if !l.active() {
		return
	}
	for {
		l.raiseIfCanceled()
		l.pollFlush()
		l.drainControl()
		// Completion is checked between draining and initiating: queued
		// control traffic is always handled, but the initiator must not
		// launch a fresh global checkpoint once every rank has finished —
		// it could never complete, and the replaced busy-poll never
		// serviced after the last finisher either.
		if stop() {
			return
		}
		if l.init != nil {
			l.maybeInitiate(false)
		}
		// A finished flush must wake the rank too: its stoppedLogging
		// report (and so the initiator's commit) would otherwise wait for
		// unrelated traffic. The flusher interrupts the world on
		// completion, and this condition turns the interrupt into a loop
		// iteration.
		wake := func() bool { return stop() || l.flushReady() }
		var timer clock.Timer
		if l.init != nil && l.cfg.Interval > 0 && !l.init.inProgress {
			// The interval trigger must fire even with no inbound traffic;
			// arm a one-shot wakeup for the next deadline instead of
			// polling the clock.
			deadline := l.init.lastStart.Add(l.cfg.Interval)
			world := l.comm.World()
			timer = l.clk.AfterFunc(deadline.Sub(l.clk.Now()), world.Interrupt)
			base := wake
			wake = func() bool { return base() || !l.clk.Now().Before(deadline) }
		}
		idx, m := l.comm.SelectWait(controlSpecs, wake)
		if timer != nil {
			timer.Stop()
		}
		if m != nil {
			l.handleControl(idx, m)
		}
	}
}
