package protocol

import (
	"testing"
	"testing/quick"
)

func TestVerboseEncodeRoundTrip(t *testing.T) {
	f := func(epoch uint16, logging bool, id uint32) bool {
		p := VerbosePiggyback{Epoch: int(epoch), Logging: logging, MessageID: id}
		q := DecodeVerbosePiggyback(p.Encode())
		return q == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestVerboseCompactAgree executes the Section 4.2 optimization argument:
// over every state the protocol can reach — epochs differing by at most
// one, and a receiver that is logging exactly when it is one epoch ahead
// with the previous checkpoint's logging phase unfinished — the one-bit
// color classification agrees with the full-epoch classification.
func TestVerboseCompactAgree(t *testing.T) {
	for senderEpoch := 0; senderEpoch <= 6; senderEpoch++ {
		for d := -1; d <= 1; d++ {
			receiverEpoch := senderEpoch + d
			if receiverEpoch < 0 {
				continue
			}
			want := ClassifyVerbose(senderEpoch, receiverEpoch)
			// The receiver's amLogging flag is constrained by the protocol:
			// a late message implies the receiver checkpointed after the
			// sender sent (receiver ahead) and is still collecting the old
			// epoch's messages — it must be logging. An early message
			// implies the receiver has not reached the checkpoint the
			// sender already took — the receiver cannot be logging for it.
			// Intra-epoch messages occur in both receiver states.
			var loggingStates []bool
			switch want {
			case Late:
				loggingStates = []bool{true}
			case Early:
				loggingStates = []bool{false}
			default:
				loggingStates = []bool{false, true}
			}
			for _, logging := range loggingStates {
				sender := VerbosePiggyback{Epoch: senderEpoch}.Compact()
				receiverColor := receiverEpoch%2 == 1
				got := Classify(sender, receiverColor, logging)
				if got != want {
					t.Fatalf("sender epoch %d, receiver epoch %d (logging=%v): compact=%v, verbose=%v",
						senderEpoch, receiverEpoch, logging, got, want)
				}
			}
		}
	}
}

func TestVerboseCostComparison(t *testing.T) {
	// The optimization's point: 13 bytes down to 4.
	p := VerbosePiggyback{Epoch: 3, Logging: true, MessageID: 99}
	if len(p.Encode()) != verboseBytes {
		t.Fatalf("verbose encoding is %d bytes", len(p.Encode()))
	}
	if verboseBytes <= pbBytes {
		t.Fatal("the verbose form should cost more than the packed form")
	}
	if p.Compact().MessageID != 99 || !p.Compact().Logging || !p.Compact().Color {
		t.Fatalf("compact conversion lost fields: %+v", p.Compact())
	}
}
