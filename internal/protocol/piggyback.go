// Package protocol implements the paper's primary contribution: a
// non-blocking, coordinated checkpointing protocol that works with
// application-level state saving (Section 4). The protocol layer sits
// between the application and the MPI library, piggybacks control
// information on application messages, classifies messages as late,
// intra-epoch or early, logs late messages and non-deterministic events
// while a global checkpoint is in progress, suppresses early-message
// resends during recovery, and reconstructs MPI library state from
// pseudo-handles and persistent-object call replay (Section 5.2).
package protocol

import (
	"encoding/binary"
	"fmt"
)

// Piggyback is the control information carried on every application
// message (Section 4.2). The protocol only needs the *color* of the
// sender's epoch (because at most one global checkpoint is in progress,
// epochs differ by at most one, so one bit disambiguates), the sender's
// amLogging flag, and a per-epoch unique message ID.
type Piggyback struct {
	// Color is the sender's epoch parity.
	Color bool
	// Logging is the sender's amLogging flag.
	Logging bool
	// MessageID is the sender's per-epoch message sequence number.
	MessageID uint32
}

// pbBytes is the wire size of the packed piggyback: the paper's optimized
// encoding packs everything into a single 32-bit integer (two flag bits +
// 30-bit message ID). On the live path the packed word travels in the
// wire message's out-of-band header segment (mpi.Message.Header), so
// attaching it never re-allocates or copies the payload; attach/detach
// below are the byte-prefixed form of the same encoding, kept for
// single-buffer serialization.
const pbBytes = 4

const (
	pbColorBit   = 1 << 31
	pbLoggingBit = 1 << 30
	pbIDMask     = pbLoggingBit - 1
)

// Pack encodes the piggyback into its single-integer wire form.
func (p Piggyback) Pack() uint32 {
	v := p.MessageID & pbIDMask
	if p.Color {
		v |= pbColorBit
	}
	if p.Logging {
		v |= pbLoggingBit
	}
	return v
}

// UnpackPiggyback decodes the single-integer wire form.
func UnpackPiggyback(v uint32) Piggyback {
	return Piggyback{
		Color:     v&pbColorBit != 0,
		Logging:   v&pbLoggingBit != 0,
		MessageID: v & pbIDMask,
	}
}

// attach prepends the packed piggyback to an application payload.
func attach(p Piggyback, data []byte) []byte {
	out := make([]byte, pbBytes+len(data))
	binary.LittleEndian.PutUint32(out, p.Pack())
	copy(out[pbBytes:], data)
	return out
}

// detach splits a wire message into its piggyback and application payload.
func detach(wire []byte) (Piggyback, []byte) {
	if len(wire) < pbBytes {
		panic(fmt.Sprintf("protocol: short message (%d bytes): missing piggyback", len(wire)))
	}
	return UnpackPiggyback(binary.LittleEndian.Uint32(wire)), wire[pbBytes:]
}

// Class is the message classification of Definition 1.
type Class int

const (
	// Intra is an intra-epoch message: sender and receiver epochs agree.
	Intra Class = iota
	// Late messages were sent before the sender's checkpoint but are
	// delivered after the receiver's (they cross the recovery line
	// forward); the receiver must log them because the sender will not
	// re-send them after a rollback.
	Late
	// Early messages were sent after the sender's checkpoint but are
	// delivered before the receiver's; the receiver's checkpoint already
	// contains their effect, so their re-send must be suppressed during
	// recovery.
	Early
)

func (c Class) String() string {
	switch c {
	case Intra:
		return "intra-epoch"
	case Late:
		return "late"
	case Early:
		return "early"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Classify determines the class of a received message from the sender's
// piggybacked color and the receiver's local color and amLogging flag
// (Section 4.2): equal colors mean intra-epoch; with different colors, a
// logging receiver is ahead of the sender (late message) and a non-logging
// receiver is behind (early message).
//
// The disambiguation is sound because a receiver that is still logging for
// checkpoint e cannot coexist with a sender already in epoch e+1: epoch e+1
// cannot begin until checkpoint e commits, which requires every process —
// including the receiver — to have stopped logging.
func Classify(sender Piggyback, receiverColor, receiverLogging bool) Class {
	if sender.Color == receiverColor {
		return Intra
	}
	if receiverLogging {
		return Late
	}
	return Early
}
