package protocol

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"ccift/internal/storage"
)

// The serialized local checkpoint: the protocol section of Figure 4's
// potentialCheckpoint (epoch, early-message IDs), the MPI library state of
// Section 5.2 (outstanding request records, persistent-object call log),
// and the application state of Section 5.1 (PS + VDS + heap, produced by
// ckpt.Saver).

type reqRecord struct {
	Handle Handle
	IsRecv bool
	Src    int
	Tag    int
	Done   bool
}

type checkpointState struct {
	Epoch    int
	EarlyIDs [][]uint32
	Persist  []PersistRecord
	Requests []reqRecord
	NextReq  Handle
	App      []byte // empty in NoAppState mode
}

func (l *Layer) marshalState() ([]byte, error) {
	st := checkpointState{
		Epoch:    l.epoch,
		EarlyIDs: l.earlyIDs,
		Persist:  l.persist,
		NextReq:  l.handles.nextReq,
	}
	for h, r := range l.handles.reqs {
		st.Requests = append(st.Requests, reqRecord{Handle: h, IsRecv: r.isRecv, Src: r.src, Tag: r.tag, Done: r.done})
	}
	if l.cfg.Mode == Full {
		app, err := l.Saver.Snapshot()
		if err != nil {
			return nil, err
		}
		st.App = app
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return nil, fmt.Errorf("protocol: encode checkpoint state: %w", err)
	}
	return buf.Bytes(), nil
}

func unmarshalState(raw []byte) (*checkpointState, error) {
	var st checkpointState
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&st); err != nil {
		return nil, fmt.Errorf("protocol: decode checkpoint state: %w", err)
	}
	return &st, nil
}

// LoadEarlyIDs reads the early-message ID sets a rank saved with its local
// checkpoint for the given epoch. The recovery driver gathers these from
// every rank and informs each sender which message IDs to suppress
// (Section 4.2).
func LoadEarlyIDs(store *storage.CheckpointStore, epoch, rank int) ([][]uint32, error) {
	raw, err := store.GetState(epoch, rank)
	if err != nil {
		return nil, err
	}
	st, err := unmarshalState(raw)
	if err != nil {
		return nil, err
	}
	return st.EarlyIDs, nil
}

// LoadAppState reads the application-state blob a rank saved with its
// local checkpoint. The recovery driver uses it to extract the primary
// rank's replicated values before re-invoking the application.
func LoadAppState(store *storage.CheckpointStore, epoch, rank int) ([]byte, error) {
	raw, err := store.GetState(epoch, rank)
	if err != nil {
		return nil, err
	}
	st, err := unmarshalState(raw)
	if err != nil {
		return nil, err
	}
	return st.App, nil
}

// Restore rebuilds the layer from the committed global checkpoint at the
// given epoch. suppress lists the message IDs (gathered from every
// receiver's early-ID sets) that this rank must not re-send during
// recovery. It returns the application-state blob for the caller to hand
// to the state-saving runtime before the application function re-executes.
func (l *Layer) Restore(epoch int, suppress []uint32) ([]byte, error) {
	raw, err := l.cfg.Store.GetState(epoch, l.rank)
	if err != nil {
		return nil, fmt.Errorf("protocol: load state (epoch %d, rank %d): %w", epoch, l.rank, err)
	}
	st, err := unmarshalState(raw)
	if err != nil {
		return nil, err
	}
	if st.Epoch != epoch {
		return nil, fmt.Errorf("protocol: state blob epoch %d != requested %d", st.Epoch, epoch)
	}
	logRaw, err := l.cfg.Store.GetLog(epoch, l.rank)
	if err != nil {
		return nil, fmt.Errorf("protocol: load log (epoch %d, rank %d): %w", epoch, l.rank, err)
	}
	lg, err := UnmarshalLog(logRaw)
	if err != nil {
		return nil, err
	}

	l.epoch = epoch
	l.amLogging = false // the committed checkpoint's logging phase finished
	l.nextMessageID = 0
	l.checkpointRequested = false
	l.requestedEpoch = 0
	l.recvSeq, l.collSeq, l.eventSeq = 0, 0, 0
	l.log = NewLog()
	l.restarted = true
	for p := 0; p < l.size; p++ {
		// Early messages recorded at the checkpoint were sent in the
		// restored epoch: they seed the receive counts exactly as the
		// original post-checkpoint transition did.
		l.currentReceiveCount[p] = int64(len(st.EarlyIDs[p]))
		l.previousReceiveCount[p] = 0
		l.sendCount[p] = 0
		l.totalSent[p] = -1
	}
	l.earlyIDs = make([][]uint32, l.size)

	l.replay = NewReplay(lg)
	l.suppress = make(map[uint32]bool, len(suppress))
	for _, id := range suppress {
		l.suppress[id] = true
	}
	l.suppressPending = len(l.suppress)

	// MPI library state: replay persistent-object calls, re-initialize
	// request pseudo-handles.
	l.handles = newHandleTable()
	l.replayPersistent(st.Persist)
	l.handles.nextReq = st.NextReq
	for _, r := range st.Requests {
		l.handles.reqs[r.Handle] = &reqState{isRecv: r.IsRecv, src: r.Src, tag: r.Tag, done: r.Done}
	}
	return st.App, nil
}

// ReplayPending reports whether the layer is still consuming a recovered
// log (diagnostics and tests).
func (l *Layer) ReplayPending() bool {
	return l.replay != nil && !l.replay.Exhausted()
}

// SuppressPending reports how many early re-sends are still due.
func (l *Layer) SuppressPending() int { return l.suppressPending }
