package protocol

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"

	"ccift/internal/cerr"
	"ccift/internal/ckpt"
	"ccift/internal/storage"
)

// The serialized local checkpoint: the protocol section of Figure 4's
// potentialCheckpoint (epoch, early-message IDs), the MPI library state of
// Section 5.2 (outstanding request records, persistent-object call log),
// and the application state of Section 5.1 (PS + VDS + heap, produced by
// ckpt.Saver).
//
// The write path is split in two, which is what makes the asynchronous
// pipeline possible: captureState copies everything the checkpoint needs
// while the rank is stopped (protocol counters plus a ckpt.Frozen view of
// the application state — O(live-state-copy)); writeState serializes the
// capture and streams it through the store's chunked writer, either inline
// (sync mode) or on the background flusher.

type reqRecord struct {
	Handle Handle
	IsRecv bool
	Src    int
	Tag    int
	Done   bool
}

type checkpointState struct {
	Epoch    int
	EarlyIDs [][]uint32
	Persist  []PersistRecord
	Requests []reqRecord
	NextReq  Handle
	App      []byte // empty in NoAppState mode
}

// pendingCheckpoint is one captured-but-not-yet-durable local checkpoint.
type pendingCheckpoint struct {
	epoch  int
	hdr    checkpointState // App nil; the app section is streamed from frozen
	frozen *ckpt.Frozen    // nil outside Full mode
	// retain, when non-nil, tees every serialized byte writeState streams
	// to the store — the in-memory copy localized recovery restores
	// survivors from. Owned by the flusher while the write runs; handed
	// back to the rank goroutine inside the flushResult.
	retain *bytes.Buffer
}

// retainedBytes returns the teed serialized blob, or nil when retention is
// off.
func (p *pendingCheckpoint) retainedBytes() []byte {
	if p.retain == nil {
		return nil
	}
	return p.retain.Bytes()
}

// stateMagicV2 marks the streamed state-blob layout: magic, uvarint-framed
// gob protocol header, then the raw application-state stream. (Legacy
// blobs are a bare gob of checkpointState; unmarshalState reads both.)
var stateMagicV2 = []byte("C3SB0002")

// captureState is the blocking half of a local checkpoint: it copies the
// protocol section and freezes the application state. No serialization or
// storage I/O happens here.
func (l *Layer) captureState() (*pendingCheckpoint, error) {
	p := &pendingCheckpoint{epoch: l.epoch}
	if l.cfg.RetainForRecovery {
		p.retain = &bytes.Buffer{}
	}
	p.hdr = checkpointState{
		Epoch: l.epoch,
		// The outer slices are re-pointed (earlyIDs) or appended to
		// (persist) after the capture, so they are copied; the inner data
		// is never mutated once recorded.
		EarlyIDs: append([][]uint32(nil), l.earlyIDs...),
		Persist:  append([]PersistRecord(nil), l.persist...),
		NextReq:  l.handles.nextReq,
	}
	for h, r := range l.handles.reqs {
		p.hdr.Requests = append(p.hdr.Requests, reqRecord{Handle: h, IsRecv: r.isRecv, Src: r.src, Tag: r.tag, Done: r.done})
	}
	if l.cfg.Mode == Full {
		f, err := l.Saver.Freeze()
		if err != nil {
			return nil, err
		}
		if l.cfg.FreezeCrossCheck {
			// The rank is still blocked, so the live state is exactly what
			// the frozen view claims to be: any byte difference means a
			// mutation escaped the Touch write-intent contract — the
			// application's bug, reported in its category.
			if err := l.Saver.VerifyFrozen(f); err != nil {
				f.Release()
				return nil, fmt.Errorf("%w: %w", cerr.ErrProgram, err)
			}
		}
		p.frozen = f
		copied, dirty, regions := f.CopyStats()
		l.Stats.CheckpointBytesCopied += copied
		l.Stats.CheckpointRegionsDirty += int64(dirty)
		l.Stats.CheckpointRegions += int64(regions)
	}
	return p, nil
}

// writeState serializes a captured checkpoint and streams it into the
// store through the chunked writer. It runs on the flusher goroutine in
// async mode, so it must not touch any mutable Layer state — only the
// immutable cfg/rank and the capture itself. It reports the logical blob
// size and the bytes actually written (dedup savings excluded).
func (l *Layer) writeState(p *pendingCheckpoint) (total, written int64, err error) {
	// However the write ends, the frozen slabs go back to the Saver's pool:
	// the protocol admits no new checkpoint until this one is integrated,
	// so the next Freeze — which reuses them — cannot have begun yet.
	defer p.frozen.Release()
	var hdr bytes.Buffer
	hdr.Write(stateMagicV2)
	var gb bytes.Buffer
	if err := gob.NewEncoder(&gb).Encode(&p.hdr); err != nil {
		return 0, 0, fmt.Errorf("protocol: encode checkpoint state: %w", err)
	}
	var tmp [binary.MaxVarintLen64]byte
	hdr.Write(tmp[:binary.PutUvarint(tmp[:], uint64(gb.Len()))])
	hdr.Write(gb.Bytes())

	w := l.cfg.Store.StateWriter(l.cfg.Ctx, p.epoch, l.rank, l.cfg.ChunkSize)
	if l.cfg.ChunkPipeline >= 0 {
		// Pipelined chunking: hash/probe and Put run on workers while the
		// serializer fills the next chunk. Chunk boundaries and the
		// manifest are identical to the serial writer.
		w.Pipeline(l.cfg.ChunkPipeline)
	}
	// Join the pipeline workers on every exit; a no-op after Commit.
	defer w.Abort()
	// All stream writes pass through the governor's token bucket, so a
	// bandwidth cap (fixed or adaptive) paces the whole write — the
	// serialization memcopies as well as the store Puts behind them.
	var gw ckpt.SectionWriter = governedSection{w: w, gov: l.gov}
	if p.retain != nil {
		// Tee every serialized byte into the retained in-memory copy; the
		// copy is byte-identical to the store blob, so unmarshalState (and
		// so RestoreFrom) reads it directly.
		gw = teeSection{w: gw, buf: p.retain}
	}
	if _, err := gw.Write(hdr.Bytes()); err != nil {
		return 0, 0, err
	}
	// Cut after the header: its size varies epoch to epoch, and the cut
	// keeps that variation from shifting the application stream's chunk
	// boundaries (which would defeat cross-epoch dedup).
	if err := gw.Cut(); err != nil {
		return 0, 0, err
	}
	if p.frozen != nil {
		if err := p.frozen.WriteTo(gw); err != nil {
			return 0, 0, err
		}
	}
	total, written, err = w.Commit()
	if err != nil {
		return total, written, err
	}
	// The recovery-metadata sidecar rides behind the state manifest: it
	// only accelerates the recovery gather, so it must never exist without
	// the state it summarizes. One tiny Put per checkpoint.
	if err := saveRecoveryMeta(l.cfg.Store, p.epoch, l.rank, p.hdr.EarlyIDs); err != nil {
		return total, written, err
	}
	return total, written, nil
}

// governedSection wraps the chunked state writer with the flush
// governor's token bucket; Cut passes through so chunk boundaries are
// unchanged.
type governedSection struct {
	w   *storage.ChunkedWriter
	gov *flushGovernor
}

func (g governedSection) Write(p []byte) (int, error) {
	g.gov.acquire(len(p))
	return g.w.Write(p)
}

func (g governedSection) Cut() error { return g.w.Cut() }

// teeSection copies the serialized stream into the retained buffer on its
// way to the store. It wraps the governed writer, so the copy itself is
// not throttled.
type teeSection struct {
	w   ckpt.SectionWriter
	buf *bytes.Buffer
}

func (t teeSection) Write(p []byte) (int, error) {
	t.buf.Write(p)
	return t.w.Write(p)
}

func (t teeSection) Cut() error { return t.w.Cut() }

func unmarshalState(raw []byte) (*checkpointState, error) {
	var st checkpointState
	if bytes.HasPrefix(raw, stateMagicV2) {
		rd := bytes.NewReader(raw[len(stateMagicV2):])
		n, err := binary.ReadUvarint(rd)
		if err != nil || uint64(rd.Len()) < n {
			return nil, fmt.Errorf("protocol: corrupt checkpoint state header")
		}
		off := len(raw) - rd.Len()
		if err := gob.NewDecoder(bytes.NewReader(raw[off : off+int(n)])).Decode(&st); err != nil {
			return nil, fmt.Errorf("protocol: decode checkpoint state: %w", err)
		}
		st.App = raw[off+int(n):]
		return &st, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&st); err != nil {
		return nil, fmt.Errorf("protocol: decode checkpoint state: %w", err)
	}
	return &st, nil
}

// LoadEarlyIDs reads the early-message ID sets a rank saved with its local
// checkpoint for the given epoch. The recovery driver gathers these from
// every rank and informs each sender which message IDs to suppress
// (Section 4.2).
func LoadEarlyIDs(store *storage.CheckpointStore, epoch, rank int) ([][]uint32, error) {
	raw, err := store.GetState(epoch, rank)
	if err != nil {
		return nil, err
	}
	st, err := unmarshalState(raw)
	if err != nil {
		return nil, err
	}
	return st.EarlyIDs, nil
}

// LoadAppState reads the application-state blob a rank saved with its
// local checkpoint. The recovery driver uses it to extract the primary
// rank's replicated values before re-invoking the application.
func LoadAppState(store *storage.CheckpointStore, epoch, rank int) ([]byte, error) {
	raw, err := store.GetState(epoch, rank)
	if err != nil {
		return nil, err
	}
	st, err := unmarshalState(raw)
	if err != nil {
		return nil, err
	}
	return st.App, nil
}

// Restore rebuilds the layer from the committed global checkpoint at the
// given epoch, always reading the store. See RestoreFrom.
func (l *Layer) Restore(epoch int, suppress []uint32) ([]byte, error) {
	return l.RestoreFrom(epoch, suppress, nil)
}

// RestoreFrom rebuilds the layer from the committed global checkpoint at
// the given epoch. suppress lists the message IDs (gathered from every
// receiver's early-ID sets) that this rank must not re-send during
// recovery. retained, when it holds a copy for exactly this epoch, serves
// the state and log blobs from memory — a surviving rank's localized
// rollback touches the store not at all. It returns the application-state
// blob for the caller to hand to the state-saving runtime before the
// application function re-executes.
func (l *Layer) RestoreFrom(epoch int, suppress []uint32, retained []*RetainedState) ([]byte, error) {
	var raw, logRaw []byte
	if ret := retainedFor(retained, epoch); ret != nil {
		raw, logRaw = ret.State, ret.Log
		l.Stats.RecoveredFromRetained++
	} else {
		var err error
		raw, err = l.cfg.Store.GetState(epoch, l.rank)
		if err != nil {
			return nil, fmt.Errorf("protocol: load state (epoch %d, rank %d): %w", epoch, l.rank, err)
		}
		logRaw, err = l.cfg.Store.GetLog(epoch, l.rank)
		if err != nil {
			return nil, fmt.Errorf("protocol: load log (epoch %d, rank %d): %w", epoch, l.rank, err)
		}
	}
	st, err := unmarshalState(raw)
	if err != nil {
		return nil, err
	}
	if st.Epoch != epoch {
		return nil, fmt.Errorf("protocol: state blob epoch %d != requested %d", st.Epoch, epoch)
	}
	lg, err := UnmarshalLog(logRaw)
	if err != nil {
		return nil, err
	}

	l.epoch = epoch
	l.amLogging = false // the committed checkpoint's logging phase finished
	l.nextMessageID = 0
	l.checkpointRequested = false
	l.requestedEpoch = 0
	l.recvSeq, l.collSeq, l.eventSeq = 0, 0, 0
	l.log = NewLog()
	l.restarted = true
	for p := 0; p < l.size; p++ {
		// Early messages recorded at the checkpoint were sent in the
		// restored epoch: they seed the receive counts exactly as the
		// original post-checkpoint transition did.
		l.currentReceiveCount[p] = int64(len(st.EarlyIDs[p]))
		l.previousReceiveCount[p] = 0
		l.sendCount[p] = 0
		l.totalSent[p] = -1
	}
	l.earlyIDs = make([][]uint32, l.size)

	l.replay = NewReplay(lg)
	l.suppress = make(map[uint32]bool, len(suppress))
	for _, id := range suppress {
		l.suppress[id] = true
	}
	l.suppressPending = len(l.suppress)

	// MPI library state: replay persistent-object calls, re-initialize
	// request pseudo-handles.
	l.handles = newHandleTable()
	l.replayPersistent(st.Persist)
	l.handles.nextReq = st.NextReq
	for _, r := range st.Requests {
		l.handles.reqs[r.Handle] = &reqState{isRecv: r.IsRecv, src: r.Src, tag: r.Tag, done: r.Done}
	}
	return st.App, nil
}

// ReplayPending reports whether the layer is still consuming a recovered
// log (diagnostics and tests).
func (l *Layer) ReplayPending() bool {
	return l.replay != nil && !l.replay.Exhausted()
}

// SuppressPending reports how many early re-sends are still due.
func (l *Layer) SuppressPending() int { return l.suppressPending }
