package protocol

import (
	"fmt"

	"ccift/internal/mpi"
)

// Collective communication handling (Section 4.5).
//
// Every data collective is preceded by a one-byte-per-rank control
// allgather carrying each participant's (epoch color, amLogging) — the
// "command" collective that the paper's Neurosys measurements surface as
// overhead on tiny problem sizes. A logging participant logs the data
// result unless some participant in the *same (new) epoch* has already
// stopped logging, in which case it stops logging first and does not log
// the result (the Figure 5 call-B rule). Participants still in the old
// epoch (Figure 5 call A) do not prevent logging: on recovery they will not
// re-execute the call, and the post-checkpoint participants will read their
// logged results instead of re-executing it.
//
// MPI_Barrier gets special treatment: converting a barrier into a no-op on
// recovery would break its synchronization semantics, so all participants
// must execute it in the same epoch. The control exchange detects epoch
// disagreement and forces laggards to take their (pending) checkpoint
// before the barrier proper.

const (
	ctlColorBit   = 1 << 0
	ctlLoggingBit = 1 << 1
)

func (l *Layer) ctlByte() byte {
	var b byte
	if l.color() {
		b |= ctlColorBit
	}
	if l.amLogging {
		b |= ctlLoggingBit
	}
	return b
}

// collectiveControl performs the control allgather and applies the logging
// rules. It reports whether this rank, being in the old epoch of an
// ongoing checkpoint, must take its local checkpoint (used by Barrier).
func (l *Layer) collectiveControl() (laggard bool) {
	flags := l.comm.Allgather([]byte{l.ctlByte()})
	l.Stats.ControlCollectives++
	myColor := l.color()
	for _, f := range flags {
		color := f&ctlColorBit != 0
		logging := f&ctlLoggingBit != 0
		if l.amLogging && color == myColor && !logging {
			// Same (new) epoch, logging already stopped: its contribution
			// to the data call may depend on unlogged non-determinism.
			l.finalizeLog()
		}
		if !l.amLogging && color != myColor && logging {
			// A participant is logging in a different epoch: it is in the
			// new epoch of an ongoing checkpoint and we have not taken
			// ours yet. Note the pending request (the pleaseCheckpoint
			// control message may still be in flight) …
			if l.requestedEpoch <= l.epoch {
				l.checkpointRequested = true
				l.requestedEpoch = l.epoch + 1
			}
			laggard = true
		}
	}
	return laggard
}

// collectiveEntry is the shared prologue of data collectives: consult the
// recovery replay, otherwise run the control exchange. When it returns
// (nil, false), the caller must execute the data call and pass the result
// to collectiveExit.
func (l *Layer) collectiveEntry() (logged []byte, replayed bool) {
	seq := l.collSeq
	l.collSeq++
	if l.replay != nil {
		if e := l.replay.Collective(seq); e != nil {
			// The call originally executed while logging; some
			// participants may not re-execute it at all, so the result
			// comes from the log (Section 4.5).
			l.Stats.ReplayedResults++
			return e.Data, true
		}
	}
	l.collectiveControl()
	return nil, false
}

func (l *Layer) collectiveExit(seq int64, result []byte) {
	l.trace(TraceCollective, -1, 0, uint32(seq), len(result))
	if l.amLogging {
		cp := make([]byte, len(result))
		copy(cp, result)
		l.log.Add(Entry{Kind: KindCollective, Seq: seq, Data: cp})
	}
}

// Allreduce combines data across all ranks with op, protocol-managed.
func (l *Layer) Allreduce(data []byte, op mpi.Op) []byte {
	l.enterOp()
	if !l.active() {
		return l.comm.Allreduce(data, op)
	}
	seq := l.collSeq
	if res, ok := l.collectiveEntry(); ok {
		return res
	}
	res := l.comm.Allreduce(data, op)
	l.collectiveExit(seq, res)
	return res
}

// Allgather concatenates equal-sized payloads from all ranks.
func (l *Layer) Allgather(data []byte) []byte {
	l.enterOp()
	if !l.active() {
		return l.comm.Allgather(data)
	}
	seq := l.collSeq
	if res, ok := l.collectiveEntry(); ok {
		return res
	}
	res := l.comm.Allgather(data)
	l.collectiveExit(seq, res)
	return res
}

// Bcast distributes root's payload to all ranks.
func (l *Layer) Bcast(root int, data []byte) []byte {
	l.enterOp()
	if !l.active() {
		return l.comm.Bcast(root, data)
	}
	seq := l.collSeq
	if res, ok := l.collectiveEntry(); ok {
		return res
	}
	res := l.comm.Bcast(root, data)
	l.collectiveExit(seq, res)
	return res
}

// Reduce combines payloads at root; non-roots receive nil.
func (l *Layer) Reduce(root int, data []byte, op mpi.Op) []byte {
	l.enterOp()
	if !l.active() {
		return l.comm.Reduce(root, data, op)
	}
	seq := l.collSeq
	if res, ok := l.collectiveEntry(); ok {
		return unwrapMaybe(res)
	}
	res := l.comm.Reduce(root, data, op)
	l.collectiveExit(seq, wrapMaybe(res))
	return res
}

// Gather concatenates payloads at root; non-roots receive nil.
func (l *Layer) Gather(root int, data []byte) []byte {
	l.enterOp()
	if !l.active() {
		return l.comm.Gather(root, data)
	}
	seq := l.collSeq
	if res, ok := l.collectiveEntry(); ok {
		return unwrapMaybe(res)
	}
	res := l.comm.Gather(root, data)
	l.collectiveExit(seq, wrapMaybe(res))
	return res
}

// Scatter distributes root's payload in equal blocks.
func (l *Layer) Scatter(root int, data []byte) []byte {
	l.enterOp()
	if !l.active() {
		return l.comm.Scatter(root, data)
	}
	seq := l.collSeq
	if res, ok := l.collectiveEntry(); ok {
		return res
	}
	res := l.comm.Scatter(root, data)
	l.collectiveExit(seq, res)
	return res
}

// Alltoall exchanges equal-sized blocks between all ranks.
func (l *Layer) Alltoall(data []byte) []byte {
	l.enterOp()
	if !l.active() {
		return l.comm.Alltoall(data)
	}
	seq := l.collSeq
	if res, ok := l.collectiveEntry(); ok {
		return res
	}
	res := l.comm.Alltoall(data)
	l.collectiveExit(seq, res)
	return res
}

// Barrier synchronizes all ranks. It is treated as a loggable collective:
// a participant that executed the barrier while logging records it and, on
// recovery, skips the re-execution — the synchronization it witnessed is a
// fact of the pre-failure history, and under this library's pure
// message-passing semantics every ordering the barrier established is
// already pinned by the late-message log and early-send suppression.
//
// The paper instead forces all participants into the same epoch before the
// barrier, because a C application may use barriers to order effects the
// protocol cannot see (files, shared devices). That exact mechanism is
// available as AlignedBarrier; it requires position-stack-based resume,
// which precompiler-instrumented programs have, because the forced
// checkpoint happens at the barrier site rather than at a loop-top
// PotentialCheckpoint.
func (l *Layer) Barrier() {
	l.enterOp()
	if !l.active() {
		l.comm.Barrier()
		return
	}
	seq := l.collSeq
	if _, ok := l.collectiveEntry(); ok {
		return // originally executed while logging; synchronization already happened
	}
	l.comm.Barrier()
	l.collectiveExit(seq, nil)
}

// AlignedBarrier is the paper's MPI_Barrier treatment (Section 4.5): the
// control exchange detects epoch disagreement, and a participant that has
// not yet taken the in-progress checkpoint takes it right here — the
// precompiler inserts a potential checkpoint before each barrier — so that
// the barrier proper executes with every process in the same epoch.
// Callers must be able to resume at this exact program point (position
// stack instrumentation).
func (l *Layer) AlignedBarrier() {
	l.enterOp()
	if !l.active() {
		l.comm.Barrier()
		return
	}
	l.collSeq++ // consumes a collective slot; never logged
	if laggard := l.collectiveControl(); laggard {
		if l.cfg.Debug && l.replay != nil && !l.replay.Exhausted() {
			panic(fmt.Sprintf("protocol: rank %d: barrier-forced checkpoint while replay pending", l.rank))
		}
		if l.cfg.Mode == NoAppState || l.cfg.Mode == Full {
			l.takeCheckpoint()
		}
	}
	l.comm.Barrier()
}

// wrapMaybe encodes a possibly-nil byte slice so that nil (the non-root
// result of rooted collectives) survives the log round trip.
func wrapMaybe(b []byte) []byte {
	if b == nil {
		return []byte{0}
	}
	return append([]byte{1}, b...)
}

func unwrapMaybe(b []byte) []byte {
	if len(b) == 0 || b[0] == 0 {
		return nil
	}
	return b[1:]
}

// Scan computes the inclusive prefix reduction, protocol-managed.
func (l *Layer) Scan(data []byte, op mpi.Op) []byte {
	l.enterOp()
	if !l.active() {
		return l.comm.Scan(data, op)
	}
	seq := l.collSeq
	if res, ok := l.collectiveEntry(); ok {
		return res
	}
	res := l.comm.Scan(data, op)
	l.collectiveExit(seq, res)
	return res
}

// Reducescatter combines per-rank blocks and scatters the result,
// protocol-managed.
func (l *Layer) Reducescatter(data []byte, op mpi.Op) []byte {
	l.enterOp()
	if !l.active() {
		return l.comm.Reducescatter(data, op)
	}
	seq := l.collSeq
	if res, ok := l.collectiveEntry(); ok {
		return res
	}
	res := l.comm.Reducescatter(data, op)
	l.collectiveExit(seq, res)
	return res
}

// Sendrecv performs the combined send-and-receive through the protocol
// layer: the outgoing message is piggybacked (and suppressed during
// recovery if needed) and the incoming one classified, exactly as separate
// Send and Recv would be — MPI_Sendrecv is semantically that pair, made
// deadlock-safe.
func (l *Layer) Sendrecv(dst, sendTag int, data []byte, src, recvTag int) *AppMessage {
	l.Send(dst, sendTag, data)
	return l.Recv(src, recvTag)
}
