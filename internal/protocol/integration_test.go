package protocol

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"ccift/internal/mpi"
	"ccift/internal/storage"
)

// Protocol-level integration tests: multi-rank goroutine scenarios driven
// directly through Layer (no engine supervisor), covering the event log,
// pseudo-handles, persistent-object replay, and full protocol rounds under
// live traffic.

// runLayers executes fn concurrently on freshly built layers and waits.
func runLayers(t *testing.T, n int, mode Mode, fn func(l *Layer)) (*storage.CheckpointStore, []*Layer) {
	t.Helper()
	ls, cs, _ := newTestLayers(t, n, mode)
	var wg sync.WaitGroup
	errs := make(chan string, n)
	for _, l := range ls {
		wg.Add(1)
		go func(l *Layer) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs <- fmt.Sprintf("rank %d: %v", l.Rank(), p)
				}
			}()
			fn(l)
		}(l)
	}
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
	return cs, ls
}

// TestFullRoundUnderTraffic drives two complete global checkpoints while
// every rank continuously exchanges ring messages, then verifies commit,
// log persistence, and count bookkeeping.
func TestFullRoundUnderTraffic(t *testing.T) {
	const n, iters = 4, 40
	cs, ls := runLayers(t, n, Full, func(l *Layer) {
		me := l.Rank()
		next, prev := (me+1)%n, (me-1+n)%n
		for it := 0; it < iters; it++ {
			if me == 0 && (it == 5 || it == 25) {
				l.RequestCheckpoint()
			}
			l.PotentialCheckpoint()
			l.Send(next, 1, []byte{byte(it)})
			m := l.Recv(prev, 1)
			if m.Data[0] != byte(it) {
				panic(fmt.Sprintf("iteration skew: got %d want %d", m.Data[0], it))
			}
		}
		// Drive the protocol to completion.
		for i := 0; i < 200; i++ {
			l.ServiceControl()
		}
	})
	e, ok, err := cs.Committed()
	if err != nil || !ok || e < 1 {
		t.Fatalf("committed = %d, %v, %v", e, ok, err)
	}
	for r, l := range ls {
		if l.Epoch() < 1 {
			t.Fatalf("rank %d stuck in epoch %d", r, l.Epoch())
		}
		if l.Stats.MessagesSent != iters {
			t.Fatalf("rank %d sent %d messages", r, l.Stats.MessagesSent)
		}
	}
	// Every rank's log for the committed epoch must be loadable.
	for r := 0; r < n; r++ {
		if _, err := cs.GetLog(e, r); err != nil {
			t.Fatalf("rank %d log: %v", r, err)
		}
	}
}

// TestNondetEventLogAndReplay: values drawn through NondetUint64 while
// logging are recorded, and a restored layer replays them in order before
// generating fresh ones.
func TestNondetEventLogAndReplay(t *testing.T) {
	ls, cs, _ := newTestLayers(t, 2, Full)
	P, Q := ls[0], ls[1]

	P.RequestCheckpoint()
	P.PotentialCheckpoint()
	Q.PotentialCheckpoint()
	if !P.Logging() {
		t.Fatal("P should be logging")
	}
	var orig []uint64
	for i := 0; i < 3; i++ {
		orig = append(orig, P.NondetUint64(func() uint64 { return uint64(100 + i) }))
	}
	if P.Stats.EventsLogged != 3 {
		t.Fatalf("EventsLogged = %d", P.Stats.EventsLogged)
	}
	pump(t, ls, cs, 1)

	// Restore P; the same three draws must replay identically even though
	// the generator now returns different values.
	w2 := mpi.NewWorld(2, mpi.Options{})
	P2 := NewLayer(w2.Comm(0), Config{Mode: Full, Store: cs, Debug: true})
	if _, err := P2.Restore(1, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got := P2.NondetUint64(func() uint64 { return 999999 })
		if got != orig[i] {
			t.Fatalf("replayed draw %d = %d, want %d", i, got, orig[i])
		}
	}
	// The log is exhausted: the next draw is live.
	if got := P2.NondetUint64(func() uint64 { return 424242 }); got != 424242 {
		t.Fatalf("post-replay draw = %d", got)
	}
}

// TestNondetInactiveBypasses: in Unmodified mode the generator runs
// directly.
func TestNondetInactiveBypasses(t *testing.T) {
	ls, _, _ := newTestLayers(t, 1, Unmodified)
	if got := ls[0].NondetUint64(func() uint64 { return 7 }); got != 7 {
		t.Fatalf("got %d", got)
	}
	if ls[0].Stats.EventsLogged != 0 {
		t.Fatal("unmodified mode logged an event")
	}
}

// TestCommDupSplitReplay: communicators created before a checkpoint are
// reconstructed on restore by persistent-call replay, and the replayed
// communicators carry the same membership.
func TestCommDupSplitReplay(t *testing.T) {
	const n = 4
	handles := make([]CommHandle, n)
	splits := make([]CommHandle, n)
	ls, cs, _ := newTestLayers(t, n, Full)
	var wg sync.WaitGroup
	errs := make(chan string, n)
	for _, l := range ls {
		wg.Add(1)
		go func(l *Layer) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs <- fmt.Sprintf("rank %d: %v", l.Rank(), p)
				}
			}()
			handles[l.Rank()] = l.CommDup(WorldComm)
			// Even/odd split.
			splits[l.Rank()] = l.CommSplit(WorldComm, l.Rank()%2, l.Rank())
			if l.Rank() == 0 {
				l.RequestCheckpoint()
			}
			// Repeated checkpoint opportunities until the global checkpoint
			// commits: the request may arrive at any point relative to this
			// rank's progress, so no fixed round count is safe.
			for i := 0; i < 1_000_000; i++ {
				l.PotentialCheckpoint()
				l.ServiceControl()
				if _, ok, _ := cs.Committed(); ok {
					break
				}
			}
			// Extra rounds so every rank's stoppedLogging drains.
			for i := 0; i < 50; i++ {
				l.ServiceControl()
			}
		}(l)
	}
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
	e, ok, _ := cs.Committed()
	if !ok {
		t.Fatal("no commit")
	}

	// Restore all ranks in a fresh world; the pseudo-handles must resolve
	// to working communicators with the original shapes.
	w2 := mpi.NewWorld(n, mpi.Options{})
	var wg2 sync.WaitGroup
	fail := make(chan string, n)
	for r := 0; r < n; r++ {
		wg2.Add(1)
		go func(r int) {
			defer wg2.Done()
			defer func() {
				if p := recover(); p != nil {
					fail <- fmt.Sprintf("rank %d: %v", r, p)
				}
			}()
			l := NewLayer(w2.Comm(r), Config{Mode: Full, Store: cs, Debug: true})
			if _, err := l.Restore(e, nil); err != nil {
				panic(err)
			}
			dup := l.SubComm(handles[r])
			if dup.Size() != n || dup.Rank() != r {
				panic(fmt.Sprintf("dup shape %d/%d", dup.Rank(), dup.Size()))
			}
			sub := l.SubComm(splits[r])
			if sub.Size() != n/2 {
				panic(fmt.Sprintf("split size %d", sub.Size()))
			}
			// The replayed split must actually work: reduce ranks within
			// each half.
			out := sub.Allreduce(mpi.F64Bytes([]float64{float64(r)}), mpi.SumF64)
			sum := mpi.BytesF64(out)[0]
			want := 0.0
			for q := r % 2; q < n; q += 2 {
				want += float64(q)
			}
			if sum != want {
				panic(fmt.Sprintf("split allreduce = %v, want %v", sum, want))
			}
		}(r)
	}
	wg2.Wait()
	select {
	case e := <-fail:
		t.Fatal(e)
	default:
	}
}

// TestRequestHandlesAcrossRestore: a pre-checkpoint Isend handle waits
// instantly after restore; a pre-checkpoint Irecv handle re-matches.
func TestRequestHandlesAcrossRestore(t *testing.T) {
	ls, cs, _ := newTestLayers(t, 2, Full)
	P, Q := ls[0], ls[1]

	sendH := P.Isend(1, 1, []byte("posted-before-ckpt"))
	recvH := Q.Irecv(0, 1)

	P.RequestCheckpoint()
	P.PotentialCheckpoint()
	Q.PotentialCheckpoint()
	// Q receives the message while logging: it is late, in Q's log.
	if m := Q.Wait(recvH); string(m.Data) != "posted-before-ckpt" {
		t.Fatalf("got %q", m.Data)
	}
	if P.Wait(sendH) != nil {
		t.Fatal("send wait should return nil")
	}
	pump(t, ls, cs, 1)

	// Restore: the request records were saved with the checkpoint (the
	// handles were live at checkpoint time), and the logged late message
	// satisfies the re-initialized Irecv pseudo-handle immediately.
	w2 := mpi.NewWorld(2, mpi.Options{})
	P2 := NewLayer(w2.Comm(0), Config{Mode: Full, Store: cs, Debug: true})
	Q2 := NewLayer(w2.Comm(1), Config{Mode: Full, Store: cs, Debug: true})
	if _, err := P2.Restore(1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Q2.Restore(1, nil); err != nil {
		t.Fatal(err)
	}
	if m := Q2.Wait(recvH); string(m.Data) != "posted-before-ckpt" {
		t.Fatalf("restored wait got %q", m.Data)
	}
	if P2.Wait(sendH) != nil {
		t.Fatal("restored send wait should return nil")
	}
}

// TestTestPollsWithoutBlocking covers the Test path: not-ready, then ready.
func TestTestPollsWithoutBlocking(t *testing.T) {
	ls, _, _ := newTestLayers(t, 2, Full)
	P, Q := ls[0], ls[1]

	h := Q.Irecv(0, 5)
	if _, ok := Q.Test(h); ok {
		t.Fatal("Test completed before any send")
	}
	P.Send(1, 5, []byte("now"))
	m, ok := Q.Test(h)
	if !ok || string(m.Data) != "now" {
		t.Fatalf("Test: ok=%v m=%v", ok, m)
	}
	// Send-side handles complete instantly.
	sh := P.Isend(1, 6, nil)
	if _, ok := P.Test(sh); !ok {
		t.Fatal("Isend handle should test complete")
	}
	Q.Recv(0, 6)
}

// TestCountConservation is a property over random ring schedules: after a
// full protocol round, for every ordered pair the receiver's total receive
// count equals the sender's send count — Figure 4's bookkeeping invariant.
func TestCountConservation(t *testing.T) {
	f := func(seedRaw uint8, itersRaw uint8) bool {
		iters := int(itersRaw%20) + 10
		// The request must land early enough that every rank reaches a
		// PotentialCheckpoint after hearing it (ring skew is at most a
		// couple of iterations); a request at the very end legitimately
		// never commits — the program finished first.
		ckptAt := int(seedRaw) % (iters - 5)
		const n = 3
		ok := true
		cs, ls := runLayersQuiet(n, Full, func(l *Layer) {
			me := l.Rank()
			next, prev := (me+1)%n, (me-1+n)%n
			for it := 0; it < iters; it++ {
				if me == 0 && it == ckptAt {
					l.RequestCheckpoint()
				}
				l.PotentialCheckpoint()
				l.Send(next, 1, []byte{byte(it)})
				l.Recv(prev, 1)
			}
			// Service control until the commit lands (a fixed poll count
			// can lose the race against the stoppedLogging chain under
			// -race scheduling); the deadline keeps a genuine protocol
			// bug from hanging the property.
			deadline := time.Now().Add(5 * time.Second)
			for {
				l.ServiceControl()
				if _, committed, _ := l.cfg.Store.Committed(); committed || time.Now().After(deadline) {
					break
				}
				time.Sleep(100 * time.Microsecond)
			}
		})
		if _, committed, _ := cs.Committed(); !committed {
			return false
		}
		for _, l := range ls {
			if l.Stats.MessagesSent != int64(iters) {
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// runLayersQuiet is runLayers without the testing.T plumbing, for
// property functions.
func runLayersQuiet(n int, mode Mode, fn func(l *Layer)) (*storage.CheckpointStore, []*Layer) {
	w := mpi.NewWorld(n, mpi.Options{})
	cs := storage.NewCheckpointStore(storage.NewMemory())
	ls := make([]*Layer, n)
	for r := 0; r < n; r++ {
		ls[r] = NewLayer(w.Comm(r), Config{Mode: mode, Store: cs})
	}
	var wg sync.WaitGroup
	for _, l := range ls {
		wg.Add(1)
		go func(l *Layer) {
			defer wg.Done()
			fn(l)
		}(l)
	}
	wg.Wait()
	return cs, ls
}

// TestOverlappingCheckpointRefused: the initiator must not start a second
// global checkpoint while one is in progress (the paper's standing
// assumption in Section 2).
func TestOverlappingCheckpointRefused(t *testing.T) {
	ls, _, _ := newTestLayers(t, 2, Full)
	P := ls[0]
	P.RequestCheckpoint()
	if !P.CheckpointInProgress() {
		t.Fatal("first request should start the protocol")
	}
	target := P.init.target
	P.RequestCheckpoint() // must be a no-op
	if P.init.target != target {
		t.Fatal("second request changed the in-progress target")
	}
}

// TestSendNegativeTagPanics: application tags must be non-negative (the
// layer reserves negative tags for control traffic).
func TestSendNegativeTagPanics(t *testing.T) {
	ls, _, _ := newTestLayers(t, 2, Full)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ls[0].Send(1, -3, nil)
}

// TestRestoreMissingEpochFails: restoring an uncommitted epoch reports a
// useful error instead of corrupting state.
func TestRestoreMissingEpochFails(t *testing.T) {
	ls, _, _ := newTestLayers(t, 1, Full)
	if _, err := ls[0].Restore(9, nil); err == nil {
		t.Fatal("restore of missing epoch succeeded")
	}
}

// TestLogRoundTripThroughStore: finalized logs survive storage and parse
// back with identical entries.
func TestLogRoundTripThroughStore(t *testing.T) {
	ls, cs, _ := newTestLayers(t, 2, Full)
	P, Q := ls[0], ls[1]
	P.RequestCheckpoint()
	P.Send(1, 1, bytes.Repeat([]byte{7}, 100))
	P.PotentialCheckpoint()
	Q.PotentialCheckpoint()
	Q.Recv(0, 1) // late: logged
	pump(t, ls, cs, 1)

	raw, err := cs.GetLog(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := UnmarshalLog(raw)
	if err != nil {
		t.Fatal(err)
	}
	if lg.Len() != 1 {
		t.Fatalf("log has %d entries", lg.Len())
	}
}

// TestIprobe: probing sees queued messages without consuming them,
// including through replay (logged late messages report as available).
func TestIprobe(t *testing.T) {
	ls, cs, _ := newTestLayers(t, 2, Full)
	P, Q := ls[0], ls[1]

	if ok, _, _ := Q.Iprobe(mpi.AnySource, mpi.AnyTag); ok {
		t.Fatal("probe matched on an empty mailbox")
	}
	P.Send(1, 9, []byte("queued"))
	ok, src, tag := Q.Iprobe(mpi.AnySource, mpi.AnyTag)
	if !ok || src != 0 || tag != 9 {
		t.Fatalf("probe = %v %d %d", ok, src, tag)
	}
	// Still there: probes do not consume.
	if m := Q.Recv(0, 9); string(m.Data) != "queued" {
		t.Fatalf("recv after probe got %q", m.Data)
	}

	// Late-message probe across recovery: log a late message, restore, and
	// probe before receiving.
	P.Send(1, 7, []byte("late"))
	P.RequestCheckpoint()
	P.PotentialCheckpoint()
	Q.PotentialCheckpoint()
	Q.Recv(0, 7)
	pump(t, ls, cs, 1)

	w2 := mpi.NewWorld(2, mpi.Options{})
	Q2 := NewLayer(w2.Comm(1), Config{Mode: Full, Store: cs, Debug: true})
	if _, err := Q2.Restore(1, nil); err != nil {
		t.Fatal(err)
	}
	ok, src, tag = Q2.Iprobe(0, 7)
	if !ok || src != 0 || tag != 7 {
		t.Fatalf("replay probe = %v %d %d", ok, src, tag)
	}
	if m := Q2.Recv(0, 7); string(m.Data) != "late" {
		t.Fatalf("replayed recv got %q", m.Data)
	}
}
