package protocol

// TraceEvent is one observable protocol action, emitted to an optional
// Tracer. The trace is how Figure 3's space-time diagram is regenerated
// from a live run (see internal/trace).
type TraceEvent struct {
	// Rank is the acting process.
	Rank int
	// Epoch is the actor's epoch at event time.
	Epoch int
	// Kind discriminates the action.
	Kind TraceKind
	// Peer is the other process (sends, receives), or -1.
	Peer int
	// Tag is the application tag (sends, receives).
	Tag int
	// ID is the per-epoch message ID (sends, receives).
	ID uint32
	// Bytes is the payload size where meaningful.
	Bytes int
}

// TraceKind enumerates protocol actions.
type TraceKind byte

// Trace kinds.
const (
	TraceSend TraceKind = iota + 1
	TraceSendSuppressed
	TraceRecvIntra
	TraceRecvLate
	TraceRecvEarly
	TraceReplayLate
	TraceCheckpoint
	TraceLogFinalized
	TraceCommit
	TraceCollective
)

func (k TraceKind) String() string {
	switch k {
	case TraceSend:
		return "send"
	case TraceSendSuppressed:
		return "send-suppressed"
	case TraceRecvIntra:
		return "recv-intra"
	case TraceRecvLate:
		return "recv-late"
	case TraceRecvEarly:
		return "recv-early"
	case TraceReplayLate:
		return "replay-late"
	case TraceCheckpoint:
		return "checkpoint"
	case TraceLogFinalized:
		return "log-finalized"
	case TraceCommit:
		return "commit"
	case TraceCollective:
		return "collective"
	}
	return "unknown"
}

// Tracer receives protocol events. Implementations must be safe for
// concurrent use: every rank's layer calls the same tracer.
type Tracer interface {
	Trace(TraceEvent)
}

// trace emits an event if a tracer is configured.
func (l *Layer) trace(kind TraceKind, peer, tag int, id uint32, bytes int) {
	if l.cfg.Tracer == nil {
		return
	}
	l.cfg.Tracer.Trace(TraceEvent{
		Rank: l.rank, Epoch: l.epoch, Kind: kind,
		Peer: peer, Tag: tag, ID: id, Bytes: bytes,
	})
}
