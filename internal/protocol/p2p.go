package protocol

import (
	"fmt"

	"ccift/internal/mpi"
)

// Point-to-point operations. Every application call is intercepted here:
// sends get piggybacks attached (and are suppressed during recovery when
// their IDs appear in a receiver's early-ID set); receives strip and act on
// the piggyback (Figure 4's communicationEventHandler).

// Send delivers data to dst with the given tag through the protocol layer.
// The payload is copied, so the caller may reuse its buffer.
func (l *Layer) Send(dst, tag int, data []byte) {
	l.sendApp(dst, tag, data, false)
}

// SendOwned is Send for a buffer the caller hands over: no defensive copy
// is made, so data must not be modified after the call. The typed
// messaging front end encodes into a fresh buffer and sends it through
// here, making the encode the payload's only copy.
func (l *Layer) SendOwned(dst, tag int, data []byte) {
	l.sendApp(dst, tag, data, true)
}

func (l *Layer) sendApp(dst, tag int, data []byte, owned bool) {
	l.enterOp()
	if !l.active() {
		if owned {
			l.comm.SendShared(dst, tag, data)
		} else {
			l.comm.Send(dst, tag, data)
		}
		return
	}
	if tag < 0 {
		panic(fmt.Sprintf("protocol: application tags must be non-negative, got %d", tag))
	}
	id := l.nextMessageID
	l.nextMessageID++
	l.sendCount[dst]++
	l.Stats.MessagesSent++
	l.Stats.BytesSent += int64(len(data))
	if l.suppress[id] {
		// This exact message was received by its destination before the
		// destination's checkpoint; re-sending it would duplicate it
		// (Section 3.2). The ID still consumes sequence and count space so
		// the books match the original execution.
		delete(l.suppress, id)
		l.suppressPending--
		l.Stats.SuppressedSends++
		l.trace(TraceSendSuppressed, dst, tag, id, len(data))
		return
	}
	pb := Piggyback{Color: l.color(), Logging: l.amLogging, MessageID: id}
	l.Stats.PiggybackBytes += pbBytes
	l.trace(TraceSend, dst, tag, id, len(data))
	// The packed piggyback travels in the wire message's header segment:
	// attaching it costs no allocation or copy of the payload.
	if owned {
		l.comm.SendSharedHdr(dst, tag, pb.Pack(), data)
	} else {
		l.comm.SendHdr(dst, tag, pb.Pack(), data)
	}
}

// Recv blocks until a message matching (src, tag) is delivered to the
// application; src may be mpi.AnySource and tag mpi.AnyTag.
func (l *Layer) Recv(src, tag int) *AppMessage {
	l.enterOp()
	if !l.active() {
		m := l.comm.Recv(src, tag)
		return &AppMessage{Source: m.Source, Tag: m.Tag, Data: m.Data}
	}
	return l.recvApp(src, tag)
}

// recvApp is the shared delivery path of Recv and Wait-on-receive. It
// consults the recovery replay first, then performs a live receive while
// servicing control traffic.
func (l *Layer) recvApp(src, tag int) *AppMessage {
	if l.replay != nil {
		seq := l.recvSeq
		if e := l.replay.Late(seq); e != nil {
			// The receive at this sequence number originally matched a
			// message sent before the sender's checkpoint; the sender will
			// not re-send it, so it is re-delivered from the log.
			if src != mpi.AnySource && src != e.Src || tag != mpi.AnyTag && tag != e.Tag {
				panic(fmt.Sprintf("protocol: rank %d replay divergence at recv %d: logged (src=%d,tag=%d), requested (src=%d,tag=%d)",
					l.rank, seq, e.Src, e.Tag, src, tag))
			}
			l.recvSeq++
			l.Stats.ReplayedLate++
			l.trace(TraceReplayLate, e.Src, e.Tag, 0, len(e.Data))
			return &AppMessage{Source: e.Src, Tag: e.Tag, Data: e.Data}
		}
		if e := l.replay.PeekWildcard(seq); e != nil {
			// The original execution resolved this wildcard receive to a
			// specific sender; recovery must make the same choice. The
			// entry is consumed by deliver once the message arrives.
			src, tag = e.Src, e.Tag
		}
	}
	for {
		idx, m := l.comm.Select(l.appSelectSpecs(src, tag))
		if idx == 0 {
			return l.deliver(m, src == mpi.AnySource || tag == mpi.AnyTag)
		}
		l.handleControl(idx-1, m)
	}
}

// appSelectSpecs builds {app spec, control specs...} in the layer's
// reusable buffer — this runs once per application receive, so a fresh
// slice per call would put an allocation on the hot path.
func (l *Layer) appSelectSpecs(src, tag int) []mpi.RecvSpec {
	l.selSpecs = l.selSpecs[:0]
	l.selSpecs = append(l.selSpecs, mpi.RecvSpec{Source: src, Tag: tag})
	l.selSpecs = append(l.selSpecs, controlSpecs...)
	return l.selSpecs
}

// deliver processes an incoming application message: strip the piggyback,
// classify, bookkeep, and hand the payload to the application.
func (l *Layer) deliver(m *mpi.Message, wasWildcard bool) *AppMessage {
	if l.replay != nil {
		l.replay.ConsumeWildcard(l.recvSeq)
	}
	// Zero-copy detach: the piggyback rides in the header segment and the
	// payload is handed to the application as-is.
	pb, payload := UnpackPiggyback(m.Header), m.Data
	switch Classify(pb, l.color(), l.amLogging) {
	case Early:
		if l.cfg.Debug && l.amLogging {
			panic(fmt.Sprintf("protocol: rank %d: early message while logging", l.rank))
		}
		l.earlyIDs[m.Source] = append(l.earlyIDs[m.Source], pb.MessageID)
		l.Stats.EarlyRecorded++
		l.trace(TraceRecvEarly, m.Source, m.Tag, pb.MessageID, len(payload))
	case Intra:
		if l.amLogging && !pb.Logging {
			// The sender has stopped logging, so every process has taken
			// its checkpoint and events we log from here on could depend
			// on unlogged non-determinism: stop logging before the
			// application sees this message (Section 4.1, Phase 4).
			l.finalizeLog()
		}
		l.currentReceiveCount[m.Source]++
		l.trace(TraceRecvIntra, m.Source, m.Tag, pb.MessageID, len(payload))
		if l.amLogging && wasWildcard {
			l.log.Add(Entry{Kind: KindWildcard, Seq: l.recvSeq, Src: m.Source, Tag: m.Tag})
		}
	case Late:
		if l.cfg.Debug && !l.amLogging {
			panic(fmt.Sprintf("protocol: rank %d: late message while not logging", l.rank))
		}
		cp := make([]byte, len(payload))
		copy(cp, payload)
		l.log.Add(Entry{Kind: KindLate, Seq: l.recvSeq, Src: m.Source, Tag: m.Tag, Data: cp})
		l.Stats.LateLogged++
		l.trace(TraceRecvLate, m.Source, m.Tag, pb.MessageID, len(payload))
		l.previousReceiveCount[m.Source]++
		l.receivedAll()
	}
	l.recvSeq++
	return &AppMessage{Source: m.Source, Tag: m.Tag, Data: payload}
}

// --- Request pseudo-handles (Section 5.2, transient opaque objects) ---

// Handle is an application-visible pseudo-handle for an MPI_Request. The
// application only ever sees pseudo-handles; the real request objects live
// inside the layer and are reconstructed on recovery.
type Handle int64

type reqState struct {
	isRecv   bool
	src, tag int
	done     bool
	msg      *AppMessage
}

// Isend posts a non-blocking send and returns its pseudo-handle. The
// transport copies eagerly, so the request is immediately complete: on
// recovery, Wait on a pre-checkpoint Isend handle must return immediately
// (the message is either in the receiver's checkpoint or in its log), which
// is exactly what a completed pseudo-handle does.
func (l *Layer) Isend(dst, tag int, data []byte) Handle {
	l.Send(dst, tag, data)
	return l.handles.newRequest(&reqState{done: true})
}

// Irecv posts a non-blocking receive and returns its pseudo-handle.
// Matching happens at Wait/Test time, which is also where the paper places
// the delivery event (the destination of a message arrow is where MPI_Wait
// would return, Section 2).
func (l *Layer) Irecv(src, tag int) Handle {
	l.enterOp()
	return l.handles.newRequest(&reqState{isRecv: true, src: src, tag: tag})
}

// Wait blocks until the request completes; for receives it returns the
// delivered message, for sends nil. The pseudo-handle is released.
func (l *Layer) Wait(h Handle) *AppMessage {
	st := l.handles.request(h)
	if !st.done {
		if st.isRecv {
			if l.active() {
				st.msg = l.recvApp(st.src, st.tag)
			} else {
				m := l.comm.Recv(st.src, st.tag)
				st.msg = &AppMessage{Source: m.Source, Tag: m.Tag, Data: m.Data}
			}
		}
		st.done = true
	}
	l.handles.release(h)
	return st.msg
}

// Test checks a request without blocking; ok reports completion, and a
// completed request is released.
func (l *Layer) Test(h Handle) (*AppMessage, bool) {
	l.enterOp()
	st := l.handles.request(h)
	if st.done {
		l.handles.release(h)
		return st.msg, true
	}
	if !st.isRecv {
		st.done = true
		l.handles.release(h)
		return nil, true
	}
	src, tag := st.src, st.tag
	if l.replay != nil {
		// A logged late message for this receive completes it instantly.
		if e := l.replay.Late(l.recvSeq); e != nil {
			l.recvSeq++
			l.Stats.ReplayedLate++
			st.msg = &AppMessage{Source: e.Src, Tag: e.Tag, Data: e.Data}
			st.done = true
			l.handles.release(h)
			return st.msg, true
		}
		if e := l.replay.PeekWildcard(l.recvSeq); e != nil {
			src, tag = e.Src, e.Tag
		}
	}
	l.selSpecs = append(l.selSpecs[:0], mpi.RecvSpec{Source: src, Tag: tag})
	if idx, m := l.comm.PollSelect(l.selSpecs); idx == 0 && m != nil {
		st.msg = l.deliver(m, st.src == mpi.AnySource || st.tag == mpi.AnyTag)
		st.done = true
		l.handles.release(h)
		return st.msg, true
	}
	return nil, false
}

// Waitall completes every request in order.
func (l *Layer) Waitall(hs []Handle) []*AppMessage {
	out := make([]*AppMessage, len(hs))
	for i, h := range hs {
		out[i] = l.Wait(h)
	}
	return out
}

// Iprobe reports whether a message matching (src, tag) is available
// without consuming it, returning the matched source and tag (useful with
// wildcards). Control traffic is serviced first, so a probe cannot starve
// the protocol. During log replay, a pending logged late message for the
// current receive sequence also reports as available: recovery must see
// the same message availability the original execution saw.
func (l *Layer) Iprobe(src, tag int) (ok bool, msgSrc, msgTag int) {
	l.enterOp()
	if !l.active() {
		ok, m := l.comm.Iprobe(src, tag)
		if !ok {
			return false, 0, 0
		}
		return true, m.Source, m.Tag
	}
	if l.replay != nil {
		if e := l.replay.PeekLate(l.recvSeq); e != nil {
			if (src == mpi.AnySource || src == e.Src) && (tag == mpi.AnyTag || tag == e.Tag) {
				return true, e.Src, e.Tag
			}
			return false, 0, 0
		}
	}
	ok2, m := l.comm.Iprobe(src, tag)
	if !ok2 {
		return false, 0, 0
	}
	return true, m.Source, m.Tag
}
