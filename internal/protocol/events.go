package protocol

import "encoding/binary"

// Non-deterministic event logging (Section 3.2): if a global checkpoint
// depends on a non-deterministic event — a random number a process
// generated and sent to a peer that then checkpointed, say — that event
// must re-occur identically after restart. Applications therefore draw all
// non-determinism through the layer: while logging, outcomes are recorded;
// during recovery, recorded outcomes are replayed in order.

// NondetBytes routes one non-deterministic decision through the layer. gen
// produces the value when no logged outcome pins it.
func (l *Layer) NondetBytes(gen func() []byte) []byte {
	if !l.active() {
		return gen()
	}
	l.enterOp()
	seq := l.eventSeq
	l.eventSeq++
	if l.replay != nil {
		if e := l.replay.Event(seq); e != nil {
			return append([]byte(nil), e.Data...)
		}
	}
	v := gen()
	if l.amLogging {
		cp := make([]byte, len(v))
		copy(cp, v)
		l.log.Add(Entry{Kind: KindEvent, Seq: seq, Data: cp})
		l.Stats.EventsLogged++
	}
	return v
}

// NondetUint64 is NondetBytes for a single 64-bit value (random draws,
// clock readings).
func (l *Layer) NondetUint64(gen func() uint64) uint64 {
	out := l.NondetBytes(func() []byte {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], gen())
		return b[:]
	})
	return binary.LittleEndian.Uint64(out)
}
