package protocol

import (
	"sync"
	"time"

	"ccift/internal/clock"
)

// The flush bandwidth governor. An ungoverned background flusher competes
// with the rank for memory bandwidth and the store device, and the PR5
// benchmarks showed it stealing ~35% of the rank's compute throughput
// while a flush is in flight. The governor closes the loop: the rank's
// compute-iteration rate (PotentialCheckpoint calls per second, already
// counted for Stats) is measured in flush-free windows to form an idle
// baseline, each flush window's rate is compared against it, and a
// token-bucket cap on the flusher's writes is adjusted AIMD-style so the
// observed slowdown converges to the target fraction (default 10%).
//
// Two knobs feed the same bucket: the adaptive rate above (async mode
// only — a synchronous flush blocks the rank by construction, and
// throttling it would only lengthen the stall), and an optional fixed
// bytes-per-second cap (WithFlushBandwidth) honored on both paths, which
// also makes throttling deterministic under the simulated clock. Sleeps
// go through clock.After, and their total per flush is reported up
// through flushResult into Stats.FlushThrottleNs and the
// ccift_flush_throttle_ns histogram.

// Governor tuning constants.
const (
	// govTargetSlowdown is the allowed fractional loss of rank compute
	// throughput while a flush is in flight.
	govTargetSlowdown = 0.10
	// govMinRate is the adaptive cap's floor: flushes always make
	// progress, so a commit is delayed, never starved.
	govMinRate = 1 << 20 // 1 MiB/s
	// govDecrease and govIncrease are the AIMD factors applied to the
	// adaptive cap after each flush window.
	govDecrease = 0.5
	govIncrease = 1.25
	// govBurst bounds the token bucket (and therefore the largest
	// uninterrupted write run) in seconds of the current rate.
	govBurstSeconds = 0.25
	// govMinWindow is the shortest window whose ops rate is trusted;
	// shorter windows are noise.
	govMinWindow = time.Millisecond
	// govMinSleep batches token-bucket sleeps: a deficit shorter than
	// this accrues instead of scheduling a timer, so the governor costs
	// one timer per ~millisecond of throttling, not one per Write.
	govMinSleep = time.Millisecond
)

// flushGovernor is shared between the rank goroutine (feedback updates at
// flush boundaries) and the flusher goroutine (token-bucket acquire on
// every chunk-stream write); mu guards all of it.
type flushGovernor struct {
	clk clock.Clock

	mu sync.Mutex
	// fixed is the WithFlushBandwidth cap in bytes/sec; 0 = none.
	fixed float64
	// adaptive is the feedback-controlled cap in bytes/sec; 0 = not yet
	// constrained. Only consulted when adapt is true (async mode).
	adaptive float64
	adapt    bool
	// idleRate is an EMA of the rank's ops/sec with no flush in flight.
	idleRate float64
	// Token bucket: tokens available at time last.
	tokens float64
	last   time.Time
	// throttleNs accumulates sleep time until drained by the flusher.
	throttleNs int64
}

func newFlushGovernor(clk clock.Clock, fixedBPS float64, adapt bool) *flushGovernor {
	return &flushGovernor{clk: clk, fixed: fixedBPS, adapt: adapt, last: clk.Now()}
}

// rate returns the effective cap in bytes/sec, 0 meaning unlimited.
func (g *flushGovernor) rate() float64 {
	r := g.fixed
	if g.adapt && g.adaptive > 0 && (r == 0 || g.adaptive < r) {
		r = g.adaptive
	}
	return r
}

// observeIdle feeds one flush-free window's compute rate into the idle
// baseline EMA. Called on the rank goroutine when a flush starts.
func (g *flushGovernor) observeIdle(ops int64, window time.Duration) {
	if window < govMinWindow || ops <= 0 {
		return
	}
	r := float64(ops) / window.Seconds()
	g.mu.Lock()
	if g.idleRate == 0 {
		g.idleRate = r
	} else {
		g.idleRate = 0.7*g.idleRate + 0.3*r
	}
	g.mu.Unlock()
}

// observeFlush feeds one flush window's compute rate back into the
// adaptive cap: multiplicative decrease when the rank slowed past the
// target, gentle increase when it did not (so the cap re-probes after
// transient interference). flushBytes/flushDur describe the flush that
// just completed; its achieved bandwidth seeds the cap's scale on the
// first decrease. Called on the rank goroutine when a flush integrates.
func (g *flushGovernor) observeFlush(ops int64, window time.Duration, flushBytes int64, flushDur time.Duration) {
	if !g.adapt || window < govMinWindow {
		return
	}
	r := float64(ops) / window.Seconds()
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.idleRate == 0 {
		return // no baseline yet
	}
	if r < (1-govTargetSlowdown)*g.idleRate {
		if g.adaptive == 0 {
			// First constraint: start from the bandwidth the offending
			// flush actually achieved, then back off from there.
			if flushBytes <= 0 || flushDur <= 0 {
				return
			}
			g.adaptive = float64(flushBytes) / flushDur.Seconds()
		}
		g.adaptive *= govDecrease
		if g.adaptive < govMinRate {
			g.adaptive = govMinRate
		}
	} else if g.adaptive > 0 {
		g.adaptive *= govIncrease
	}
}

// acquire charges n bytes against the token bucket, sleeping on the
// governor's clock when the bucket is dry. Runs on the writer's
// goroutine (the flusher in async mode, the rank in sync mode — where
// only the fixed cap applies).
func (g *flushGovernor) acquire(n int) {
	if n <= 0 {
		return
	}
	for {
		g.mu.Lock()
		r := g.rate()
		if r <= 0 {
			g.mu.Unlock()
			return
		}
		now := g.clk.Now()
		g.tokens += now.Sub(g.last).Seconds() * r
		g.last = now
		if burst := govBurstSeconds * r; g.tokens > burst {
			g.tokens = burst
		}
		if g.tokens >= float64(n) {
			g.tokens -= float64(n)
			g.mu.Unlock()
			return
		}
		// Sleep until the deficit refills (batched to govMinSleep so tiny
		// writes don't each schedule a timer).
		need := (float64(n) - g.tokens) / r
		d := time.Duration(need * float64(time.Second))
		if d < govMinSleep {
			g.tokens -= float64(n) // run a small deficit; next acquire pays it
			g.mu.Unlock()
			return
		}
		g.mu.Unlock()
		<-g.clk.After(d)
		g.mu.Lock()
		g.throttleNs += d.Nanoseconds()
		g.mu.Unlock()
	}
}

// drainThrottle returns and clears the sleep time accumulated since the
// previous drain; the flusher attaches it to the flush's result.
func (g *flushGovernor) drainThrottle() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	ns := g.throttleNs
	g.throttleNs = 0
	return ns
}
