package protocol

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLogMarshalRoundTrip(t *testing.T) {
	l := NewLog()
	l.Add(Entry{Kind: KindLate, Seq: 0, Src: 2, Tag: 7, Data: []byte("late payload")})
	l.Add(Entry{Kind: KindWildcard, Seq: 3, Src: 1, Tag: -1})
	l.Add(Entry{Kind: KindCollective, Seq: 0, Data: []byte{1, 2, 3}})
	l.Add(Entry{Kind: KindEvent, Seq: 5, Data: []byte{9}})

	back, err := UnmarshalLog(l.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 4 {
		t.Fatalf("len = %d", back.Len())
	}
	for i := range l.entries {
		a, b := l.entries[i], back.entries[i]
		if a.Kind != b.Kind || a.Seq != b.Seq || a.Src != b.Src || a.Tag != b.Tag || !bytes.Equal(a.Data, b.Data) {
			t.Fatalf("entry %d: %+v != %+v", i, a, b)
		}
	}
}

func TestLogMarshalProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewLog()
		for i := 0; i < int(n%40); i++ {
			data := make([]byte, rng.Intn(64))
			rng.Read(data)
			l.Add(Entry{
				Kind: EntryKind(rng.Intn(4) + 1),
				Seq:  rng.Int63n(1000),
				Src:  rng.Intn(10) - 1,
				Tag:  rng.Intn(10) - 1,
				Data: data,
			})
		}
		back, err := UnmarshalLog(l.Marshal())
		if err != nil || back.Len() != l.Len() {
			return false
		}
		for i := range l.entries {
			a, b := l.entries[i], back.entries[i]
			if a.Kind != b.Kind || a.Seq != b.Seq || a.Src != b.Src || a.Tag != b.Tag || !bytes.Equal(a.Data, b.Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalLogCorrupt(t *testing.T) {
	l := NewLog()
	l.Add(Entry{Kind: KindLate, Seq: 1, Data: make([]byte, 100)})
	raw := l.Marshal()
	if _, err := UnmarshalLog(raw[:len(raw)/2]); err == nil {
		t.Fatal("truncated log should fail to parse")
	}
}

func TestReplayCursors(t *testing.T) {
	l := NewLog()
	l.Add(Entry{Kind: KindLate, Seq: 2, Src: 1, Tag: 5, Data: []byte("a")})
	l.Add(Entry{Kind: KindLate, Seq: 4, Src: 1, Tag: 5, Data: []byte("b")})
	l.Add(Entry{Kind: KindCollective, Seq: 1, Data: []byte("c")})
	l.Add(Entry{Kind: KindEvent, Seq: 0, Data: []byte("e")})

	r := NewReplay(l)
	if r.Exhausted() {
		t.Fatal("fresh replay should not be exhausted")
	}
	if e := r.Late(0); e != nil {
		t.Fatal("receive 0 was not late")
	}
	if e := r.Late(2); e == nil || string(e.Data) != "a" {
		t.Fatalf("late at 2: %+v", e)
	}
	if e := r.Late(3); e != nil {
		t.Fatal("receive 3 was not late")
	}
	if e := r.Late(4); e == nil || string(e.Data) != "b" {
		t.Fatalf("late at 4: %+v", e)
	}
	if r.PendingLate() != 0 {
		t.Fatalf("pending late = %d", r.PendingLate())
	}
	if e := r.Collective(0); e != nil {
		t.Fatal("collective 0 was not logged")
	}
	if e := r.Collective(1); e == nil || string(e.Data) != "c" {
		t.Fatalf("collective at 1: %+v", e)
	}
	if e := r.Event(0); e == nil || string(e.Data) != "e" {
		t.Fatalf("event at 0: %+v", e)
	}
	if !r.Exhausted() {
		t.Fatal("replay should be exhausted")
	}
}

func TestReplayWildcardPeekConsume(t *testing.T) {
	l := NewLog()
	l.Add(Entry{Kind: KindWildcard, Seq: 1, Src: 3, Tag: 9})
	r := NewReplay(l)
	if e := r.PeekWildcard(0); e != nil {
		t.Fatal("no wildcard at 0")
	}
	if e := r.PeekWildcard(1); e == nil || e.Src != 3 {
		t.Fatalf("peek: %+v", e)
	}
	// Peek does not consume.
	if e := r.PeekWildcard(1); e == nil {
		t.Fatal("peek should not consume")
	}
	r.ConsumeWildcard(1)
	if e := r.PeekWildcard(1); e != nil {
		t.Fatal("consume should advance the cursor")
	}
	if !r.Exhausted() {
		t.Fatal("should be exhausted")
	}
}

func TestLogBytesAccounting(t *testing.T) {
	l := NewLog()
	l.Add(Entry{Kind: KindLate, Data: make([]byte, 1000)})
	if l.Bytes() < 1000 {
		t.Fatalf("Bytes = %d", l.Bytes())
	}
}
