package protocol

// The cross-process stats stream. A distributed worker emits its protocol
// counters as newline-delimited JSON frames on a pipe the launcher holds
// the read end of (CCIFT_STATS_FD); the launcher feeds every frame into an
// Aggregator, which reconstructs per-rank and whole-run views identical to
// what the in-process substrate reads straight out of its layers.
//
// The wire form is versioned and decoded tolerantly: unknown fields —
// counters a newer worker grew — are ignored, so a launcher never breaks
// when scraping a newer worker's stream. Renaming or reusing a json tag is
// the only breaking change; don't.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"sort"
	"sync"
)

// StatsWireVersion is the version stamped on every emitted frame. Bump it
// only for changes an old launcher cannot ignore (added fields are NOT
// that — tolerant decode absorbs them).
const StatsWireVersion = 1

// StatsFrame is one line of the stats stream: a cumulative snapshot of one
// rank's counters in one incarnation. Final marks the rank's last frame of
// an incarnation (emitted as its worker shuts down).
type StatsFrame struct {
	V           int   `json:"v"`
	Rank        int   `json:"rank"`
	Incarnation int   `json:"incarnation"`
	Final       bool  `json:"final,omitempty"`
	Stats       Stats `json:"stats"`
}

// WriteStatsFrame emits f as one JSON line on w, stamping the current wire
// version.
func WriteStatsFrame(w io.Writer, f StatsFrame) error {
	f.V = StatsWireVersion
	b, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("protocol: encode stats frame: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ParseStatsFrame decodes one line of the stream. Unknown fields (at any
// nesting level) are ignored so newer emitters interoperate with older
// readers; a missing or zero version marks the line as not a stats frame.
func ParseStatsFrame(line []byte) (StatsFrame, error) {
	var f StatsFrame
	if err := json.Unmarshal(line, &f); err != nil {
		return StatsFrame{}, fmt.Errorf("protocol: decode stats frame: %w", err)
	}
	if f.V < 1 {
		return StatsFrame{}, fmt.Errorf("protocol: stats frame without version field")
	}
	return f, nil
}

// ReadStatsFrames consumes newline-delimited frames from r until EOF,
// calling sink for each well-formed frame. Malformed lines are skipped —
// a worker dying mid-write must not poison the frames already received.
func ReadStatsFrames(r io.Reader, sink func(StatsFrame)) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if f, err := ParseStatsFrame(line); err == nil {
			sink(f)
		}
	}
}

// Add accumulates o's counters into s field-by-field. It walks the struct
// reflectively so a counter added to Stats is summed without anyone
// remembering to update this method.
func (s *Stats) Add(o Stats) {
	sv := reflect.ValueOf(s).Elem()
	ov := reflect.ValueOf(o)
	for i := 0; i < sv.NumField(); i++ {
		if f := sv.Field(i); f.Kind() == reflect.Int64 {
			f.SetInt(f.Int() + ov.Field(i).Int())
		}
	}
}

// RankStats is one rank's counters in the incarnation that produced them —
// the per-rank element of a run's observability result.
type RankStats struct {
	Rank        int   `json:"rank"`
	Incarnation int   `json:"incarnation"`
	Stats       Stats `json:"stats"`
}

// Aggregator folds a stream of stats frames — from any substrate, any
// number of incarnations — into the two views a run reports: the latest
// per-rank snapshots and a whole-run cumulative total.
//
// Counters reset when an incarnation rolls back and its ranks restart, so
// the aggregator keys the latest snapshot per rank on that rank's newest
// incarnation and folds superseded incarnations into a base. Total is
// therefore monotone across restarts, which is what a Prometheus counter
// scraped mid-run requires.
type Aggregator struct {
	mu   sync.Mutex
	base Stats              // counters of superseded incarnations, all ranks
	cur  map[int]StatsFrame // rank -> latest frame of its newest incarnation
	onOb func(total Stats, f StatsFrame)
}

// NewAggregator returns an empty aggregator. onObserve, when non-nil, runs
// under the aggregator's lock after each frame with the updated cumulative
// total — the hook a metrics registry refreshes from.
func NewAggregator(onObserve func(total Stats, f StatsFrame)) *Aggregator {
	return &Aggregator{cur: make(map[int]StatsFrame), onOb: onObserve}
}

// Observe folds one frame in. Safe for concurrent use (rank goroutines and
// per-worker pipe readers all feed the same aggregator).
func (a *Aggregator) Observe(f StatsFrame) {
	a.mu.Lock()
	defer a.mu.Unlock()
	prev, ok := a.cur[f.Rank]
	switch {
	case !ok || f.Incarnation > prev.Incarnation:
		// New incarnation for this rank: the superseded one's counters are
		// history that must keep counting, so fold them into the base.
		if ok {
			a.base.Add(prev.Stats)
		}
		a.cur[f.Rank] = f
	case f.Incarnation == prev.Incarnation:
		// Cumulative snapshots: latest wins.
		a.cur[f.Rank] = f
	default:
		// A stale frame from a dead incarnation raced in after its
		// successor; drop it.
		return
	}
	if a.onOb != nil {
		a.onOb(a.totalLocked(), f)
	}
}

// Total returns the whole-run cumulative counters: every superseded
// incarnation plus the latest snapshot of each rank's current one.
func (a *Aggregator) Total() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.totalLocked()
}

func (a *Aggregator) totalLocked() Stats {
	t := a.base
	for _, f := range a.cur {
		t.Add(f.Stats)
	}
	return t
}

// PerRank returns the latest snapshot of each rank's newest incarnation,
// sorted by rank — the distributed substrate's answer to reading
// layer.Stats off every in-process rank.
func (a *Aggregator) PerRank() []RankStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]RankStats, 0, len(a.cur))
	for _, f := range a.cur {
		out = append(out, RankStats{Rank: f.Rank, Incarnation: f.Incarnation, Stats: f.Stats})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// FinalStats returns PerRank flattened to the bare per-rank Stats slice
// (indexed by position, ranks sorted), for callers that want the engine
// Result.Stats shape.
func (a *Aggregator) FinalStats() []Stats {
	pr := a.PerRank()
	out := make([]Stats, len(pr))
	for i, r := range pr {
		out[i] = r.Stats
	}
	return out
}
