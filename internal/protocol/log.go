package protocol

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// The log a process writes between taking its local checkpoint and stopping
// logging (Section 4.1, Phase 2): every late message it receives, and the
// result of every non-deterministic decision it makes. We record four entry
// kinds:
//
//   - Late: the full payload of a late message, keyed by the receiver's
//     per-epoch receive sequence number so that recovery re-delivers it at
//     exactly the same receive operation.
//   - Wildcard: the resolved (source, tag) of a receive posted with
//     MPI_ANY_SOURCE/MPI_ANY_TAG — a non-deterministic decision; recovery
//     narrows the re-executed receive to the logged source and tag.
//   - Collective: the result of a collective communication call executed
//     while logging (Section 4.5); recovery returns the logged result
//     without re-executing the call.
//   - Event: an application-level non-deterministic value (random number,
//     clock reading) drawn through the protocol layer.

// EntryKind discriminates log entries.
type EntryKind byte

// Log entry kinds.
const (
	KindLate EntryKind = iota + 1
	KindWildcard
	KindCollective
	KindEvent
)

// Entry is one log record.
type Entry struct {
	Kind EntryKind
	// Seq is the per-epoch sequence number of the operation the entry
	// pins: the receive sequence for Late/Wildcard, the collective-call
	// sequence for Collective, and the event sequence for Event.
	Seq int64
	// Src and Tag are the resolved source and tag (Late, Wildcard).
	Src, Tag int
	// Data is the payload (Late), collective result (Collective), or
	// encoded value (Event).
	Data []byte
}

// Log accumulates entries during a logging phase.
type Log struct {
	entries []Entry
	bytes   int
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Add appends an entry.
func (l *Log) Add(e Entry) {
	l.entries = append(l.entries, e)
	l.bytes += len(e.Data) + 32
}

// Len reports the number of entries.
func (l *Log) Len() int { return len(l.entries) }

// Bytes reports the approximate serialized size, used by the ablation
// benchmarks comparing against sender-based message logging.
func (l *Log) Bytes() int { return l.bytes }

// Marshal serializes the log for stable storage.
func (l *Log) Marshal() []byte {
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	putUv := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	putUv(uint64(len(l.entries)))
	for _, e := range l.entries {
		buf.WriteByte(byte(e.Kind))
		putUv(uint64(e.Seq))
		putUv(uint64(int64(e.Src) + 2)) // +2 keeps AnySource (-1) non-negative
		putUv(uint64(int64(e.Tag) + 2))
		putUv(uint64(len(e.Data)))
		buf.Write(e.Data)
	}
	return buf.Bytes()
}

// UnmarshalLog parses a serialized log.
func UnmarshalLog(raw []byte) (*Log, error) {
	rd := bytes.NewReader(raw)
	n, err := binary.ReadUvarint(rd)
	if err != nil {
		return nil, fmt.Errorf("protocol: corrupt log: %w", err)
	}
	l := NewLog()
	for i := uint64(0); i < n; i++ {
		kind, err := rd.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("protocol: corrupt log entry %d: %w", i, err)
		}
		seq, err := binary.ReadUvarint(rd)
		if err != nil {
			return nil, err
		}
		src, err := binary.ReadUvarint(rd)
		if err != nil {
			return nil, err
		}
		tag, err := binary.ReadUvarint(rd)
		if err != nil {
			return nil, err
		}
		dlen, err := binary.ReadUvarint(rd)
		if err != nil {
			return nil, err
		}
		if dlen > uint64(rd.Len()) {
			return nil, fmt.Errorf("protocol: corrupt log entry %d: truncated payload", i)
		}
		data := make([]byte, dlen)
		if _, err := io.ReadFull(rd, data); err != nil {
			return nil, err
		}
		l.Add(Entry{
			Kind: EntryKind(kind),
			Seq:  int64(seq),
			Src:  int(int64(src) - 2),
			Tag:  int(int64(tag) - 2),
			Data: data,
		})
	}
	return l, nil
}

// Replay walks a recovered log. Each entry kind has an independent cursor
// keyed by its per-epoch sequence number; recovery consults the cursor at
// each operation and consumes the entry when the sequence numbers match.
type Replay struct {
	late, wildcard, collective, event []Entry
	li, wi, ci, ei                    int
}

// NewReplay indexes a recovered log for replay.
func NewReplay(l *Log) *Replay {
	r := &Replay{}
	for _, e := range l.entries {
		switch e.Kind {
		case KindLate:
			r.late = append(r.late, e)
		case KindWildcard:
			r.wildcard = append(r.wildcard, e)
		case KindCollective:
			r.collective = append(r.collective, e)
		case KindEvent:
			r.event = append(r.event, e)
		}
	}
	return r
}

// Late returns the logged late message for receive sequence seq, consuming
// it, or nil when the receive at seq was not a late message.
func (r *Replay) Late(seq int64) *Entry {
	if r.li < len(r.late) && r.late[r.li].Seq == seq {
		e := &r.late[r.li]
		r.li++
		return e
	}
	return nil
}

// PeekWildcard returns the logged (source, tag) resolution for receive
// sequence seq without consuming it, or nil. The entry is consumed by
// ConsumeWildcard once the receive actually completes.
func (r *Replay) PeekWildcard(seq int64) *Entry {
	if r.wi < len(r.wildcard) && r.wildcard[r.wi].Seq == seq {
		return &r.wildcard[r.wi]
	}
	return nil
}

// ConsumeWildcard consumes the wildcard entry for seq if present.
func (r *Replay) ConsumeWildcard(seq int64) {
	if r.wi < len(r.wildcard) && r.wildcard[r.wi].Seq == seq {
		r.wi++
	}
}

// Collective returns the logged result for collective-call sequence seq,
// consuming it, or nil when that call must be re-executed live.
func (r *Replay) Collective(seq int64) *Entry {
	if r.ci < len(r.collective) && r.collective[r.ci].Seq == seq {
		e := &r.collective[r.ci]
		r.ci++
		return e
	}
	return nil
}

// Event returns the logged non-deterministic value for event sequence seq,
// consuming it, or nil.
func (r *Replay) Event(seq int64) *Entry {
	if r.ei < len(r.event) && r.event[r.ei].Seq == seq {
		e := &r.event[r.ei]
		r.ei++
		return e
	}
	return nil
}

// PendingLate reports how many logged late messages have not been
// re-delivered yet.
func (r *Replay) PendingLate() int { return len(r.late) - r.li }

// Exhausted reports whether every entry has been consumed. A process may
// not take a new checkpoint while its previous log is still being replayed
// (the deferral rule; see Layer.PotentialCheckpoint).
func (r *Replay) Exhausted() bool {
	return r.li == len(r.late) && r.wi == len(r.wildcard) &&
		r.ci == len(r.collective) && r.ei == len(r.event)
}

// PeekLate returns the logged late message for receive sequence seq
// without consuming it, or nil (probe support).
func (r *Replay) PeekLate(seq int64) *Entry {
	if r.li < len(r.late) && r.late[r.li].Seq == seq {
		return &r.late[r.li]
	}
	return nil
}
