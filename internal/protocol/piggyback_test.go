package protocol

import (
	"testing"
	"testing/quick"
)

func TestPiggybackPackRoundTrip(t *testing.T) {
	f := func(color, logging bool, id uint32) bool {
		p := Piggyback{Color: color, Logging: logging, MessageID: id & pbIDMask}
		return UnpackPiggyback(p.Pack()) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPiggybackSingleInteger(t *testing.T) {
	// Section 4.2's optimization: the whole piggyback fits in one 32-bit
	// integer, with 30 bits of message ID.
	p := Piggyback{Color: true, Logging: true, MessageID: (1 << 30) - 1}
	if got := UnpackPiggyback(p.Pack()); got != p {
		t.Fatalf("got %+v want %+v", got, p)
	}
	if pbBytes != 4 {
		t.Fatalf("piggyback is %d bytes, want 4", pbBytes)
	}
}

func TestAttachDetach(t *testing.T) {
	p := Piggyback{Color: true, MessageID: 42}
	wire := attach(p, []byte("payload"))
	if len(wire) != 7+pbBytes {
		t.Fatalf("wire length %d", len(wire))
	}
	gotPB, gotData := detach(wire)
	if gotPB != p || string(gotData) != "payload" {
		t.Fatalf("detach = %+v %q", gotPB, gotData)
	}
}

func TestDetachShortMessagePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	detach([]byte{1, 2})
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name            string
		senderColor     bool
		senderLogging   bool
		receiverColor   bool
		receiverLogging bool
		want            Class
	}{
		{"same epoch", false, false, false, false, Intra},
		{"same epoch both logging", true, true, true, true, Intra},
		// Sender behind (old epoch), receiver checkpointed and logging:
		// the message crossed the recovery line forward.
		{"late", false, false, true, true, Late},
		// Sender ahead (new epoch), receiver not yet checkpointed.
		{"early", true, true, false, false, Early},
	}
	for _, c := range cases {
		got := Classify(Piggyback{Color: c.senderColor, Logging: c.senderLogging}, c.receiverColor, c.receiverLogging)
		if got != c.want {
			t.Errorf("%s: got %v want %v", c.name, got, c.want)
		}
	}
}

func TestClassifyProperty(t *testing.T) {
	// Color equality always means intra-epoch, regardless of flags.
	f := func(color, senderLogging, recvLogging bool) bool {
		return Classify(Piggyback{Color: color, Logging: senderLogging}, color, recvLogging) == Intra
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClassString(t *testing.T) {
	if Intra.String() != "intra-epoch" || Late.String() != "late" || Early.String() != "early" {
		t.Fatal("class names")
	}
}
