package protocol

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ccift/internal/cerr"
	"ccift/internal/mpi"
)

// The background checkpoint flusher. In async mode takeCheckpoint hands
// the captured checkpoint to a per-layer goroutine that serializes it and
// streams it into stable storage while the rank computes on. The layer
// itself stays single-threaded: the flusher communicates only through the
// flushOut channel, and the rank integrates results (stats, the
// stoppedLogging report) from its own goroutine via pollFlush.
//
// Correctness under crashes hangs on one rule: a rank reports
// stoppedLogging — and therefore the initiator can write the commit
// record — only after BOTH its log write and its state flush are durable
// (maybeReportStopped). A crash mid-flush leaves the new epoch
// uncommitted, so recovery falls back to the previous committed epoch,
// exactly as a crash mid-checkpoint did on the synchronous path.

type flushResult struct {
	epoch          int
	total, written int64
	dur            time.Duration
	throttleNs     int64  // governor sleep time during this write
	retain         []byte // teed serialized blob (localized recovery), or nil
	err            error
}

// startFlush hands a captured checkpoint to the flusher, starting the
// goroutine on first use. At most one flush is in flight per layer: the
// protocol admits one global checkpoint at a time, and the next cannot be
// requested until this one's commit — which waits for this flush.
func (l *Layer) startFlush(p *pendingCheckpoint) {
	if l.flushPending {
		panic("protocol: checkpoint flush started while one is in flight")
	}
	if l.flushJobs == nil {
		l.flushJobs = make(chan *pendingCheckpoint)
		l.flushOut = make(chan flushResult, 1)
		l.flushWG.Add(1)
		go l.flushLoop()
	}
	// The flush-free window ends here: feed its compute rate into the
	// governor's idle baseline and open the flush-time window.
	now := l.clk.Now()
	l.gov.observeIdle(l.potentialCalls-l.govMarkOps, now.Sub(l.govMark))
	l.govMark, l.govMarkOps = now, l.potentialCalls
	l.flushPending = true
	l.flushJobs <- p
}

func (l *Layer) flushLoop() {
	defer l.flushWG.Done()
	for p := range l.flushJobs {
		start := l.clk.Now()
		total, written, err := l.writeState(p)
		l.flushOut <- flushResult{epoch: p.epoch, total: total, written: written,
			dur: l.clk.Since(start), throttleNs: l.gov.drainThrottle(), retain: p.retainedBytes(), err: err}
		// Wake ranks parked in the transport (ServiceControlUntil) so the
		// completion is observed without waiting for unrelated traffic.
		l.comm.World().Interrupt()
	}
}

// flushReady reports whether a finished flush awaits integration; wake
// conditions poll it so a parked rank resumes on completion.
func (l *Layer) flushReady() bool { return l.flushPending && len(l.flushOut) > 0 }

// pollFlush integrates a finished flush, if any: stats, the checkpoint
// trace event, and — when the log is already finalized — the deferred
// stoppedLogging report. Runs at every protocol operation; never blocks.
func (l *Layer) pollFlush() {
	if !l.flushPending {
		return
	}
	select {
	case r := <-l.flushOut:
		l.finishFlush(r)
	default:
	}
}

func (l *Layer) finishFlush(r flushResult) {
	l.flushPending = false
	if r.err != nil {
		if errors.Is(r.err, context.Canceled) || errors.Is(r.err, context.DeadlineExceeded) {
			panic(mpi.ErrCanceled)
		}
		// Panic with an error value so the engine's classifier keeps the
		// store category instead of reading a flattened string.
		panic(fmt.Errorf("protocol: persist state (epoch %d, rank %d): %w: %w", r.epoch, l.rank, cerr.ErrStore, r.err))
	}
	l.integrateFlush(r)
	l.maybeReportStopped()
}

// integrateFlush applies a successful flush's outcome to the layer's
// counters and trace stream; shared by the normal path (finishFlush) and
// the drain path (Shutdown), both on the rank's goroutine.
func (l *Layer) integrateFlush(r flushResult) {
	l.Stats.CheckpointBytes += r.total
	l.Stats.CheckpointBytesWritten += r.written
	l.Stats.CheckpointFlushNs += r.dur.Nanoseconds()
	l.Stats.FlushThrottleNs += r.throttleNs
	// The flush-time window ends here: compare its compute rate against
	// the idle baseline and let the governor adjust its cap (async only;
	// the governor ignores the call otherwise).
	now := l.clk.Now()
	l.gov.observeFlush(l.potentialCalls-l.govMarkOps, now.Sub(l.govMark), r.total, r.dur)
	l.govMark, l.govMarkOps = now, l.potentialCalls
	if r.retain != nil {
		l.retainStates.put(r.epoch, r.retain)
	}
	l.trace(TraceCheckpoint, -1, 0, 0, int(r.total))
	l.emitStats()
}

// maybeReportStopped sends stoppedLogging once per checkpoint, and only
// when both halves of the local checkpoint are durable: the finalized log
// and the flushed state. The initiator's commit record waits on every
// rank's report, so a crash before this point recovers from the previous
// committed epoch.
func (l *Layer) maybeReportStopped() {
	if l.logDone && !l.flushPending && !l.stopSent {
		l.stopSent = true
		l.sendCtl(0, tagStoppedLogging, uint64(l.epoch))
	}
}

// Shutdown stops the flusher, waiting for an in-flight state write to
// finish (or abort, if the layer's context was canceled), and returns the
// write's error if it failed. It never panics — the engine calls it during
// both normal completion and panic unwinds — and it is idempotent. Stats
// of a flush that completed after the program finished are still
// integrated, so the run's final counters include every checkpoint.
func (l *Layer) Shutdown() error {
	if l.flushJobs == nil || l.flushClosed {
		return nil
	}
	l.flushClosed = true
	close(l.flushJobs)
	l.flushWG.Wait()
	if !l.flushPending {
		return nil
	}
	r := <-l.flushOut
	l.flushPending = false
	if r.err != nil {
		if errors.Is(r.err, context.Canceled) || errors.Is(r.err, context.DeadlineExceeded) {
			return nil // the run is unwinding for cancellation already
		}
		return fmt.Errorf("protocol: persist state (epoch %d, rank %d): %w: %w", r.epoch, l.rank, cerr.ErrStore, r.err)
	}
	l.integrateFlush(r)
	return nil
}
