// Package ckpt implements the application state-saving runtime that the
// CCIFT precompiler targets (Section 5.1 of the paper): the Position Stack
// (PS) that records where in the dynamic execution a checkpoint was taken,
// the Variable Descriptor Stack (VDS) that records which variables are live
// and where their values go, and the Heap Object Structure (HOS) managed by
// the library's own heap manager.
//
// C3 saves the raw bytes of stack frames because, in C, restored variables
// must land at the same virtual addresses. Go forbids that, so the VDS holds
// typed pointers registered by (pre-compiled or hand-instrumented) code and
// serializes the pointed-to values instead; restoring writes the saved value
// back through the registered pointer. The observable contract is identical:
// after restart every registered variable has the value it had at the
// checkpoint, and the PS tells each function which label to jump to.
package ckpt

import "fmt"

// PositionStack records a trace of the program's execution: one label per
// active checkpointable call, with the innermost entry naming the
// PotentialCheckpoint site itself (paper Figure 6). During normal execution
// instrumented code pushes a label before each checkpointable call and pops
// it afterwards. After a restart, each function consults the stack (via
// Resume) to find which label to jump to, rebuilding the activation stack.
type PositionStack struct {
	labels []int
	// resume holds the saved trace while a restart is in progress; cursor
	// walks it outermost-first as each function re-enters.
	resume []int
	cursor int
}

// NewPositionStack returns an empty position stack.
func NewPositionStack() *PositionStack { return &PositionStack{} }

// Push records entry into checkpointable call site label.
func (ps *PositionStack) Push(label int) { ps.labels = append(ps.labels, label) }

// Pop records return from the most recent checkpointable call site.
func (ps *PositionStack) Pop() {
	if len(ps.labels) == 0 {
		panic("ckpt: PositionStack.Pop on empty stack")
	}
	ps.labels = ps.labels[:len(ps.labels)-1]
}

// Depth reports the number of active labels.
func (ps *PositionStack) Depth() int { return len(ps.labels) }

// Snapshot returns a copy of the current trace for inclusion in a
// checkpoint.
func (ps *PositionStack) Snapshot() []int {
	out := make([]int, len(ps.labels))
	copy(out, ps.labels)
	return out
}

// StartResume installs a saved trace and arms the resume cursor. It is
// called by the restart machinery before the application function is
// re-invoked.
func (ps *PositionStack) StartResume(trace []int) {
	ps.resume = append([]int(nil), trace...)
	ps.cursor = 0
	ps.labels = ps.labels[:0]
}

// Resuming reports whether a resume is in progress, i.e. whether the
// current function should dispatch on Resume() rather than executing from
// its beginning.
func (ps *PositionStack) Resuming() bool { return ps.resume != nil && ps.cursor < len(ps.resume) }

// Resume pops the next saved label (outermost first). The instrumented
// function jumps to the returned label; the label is simultaneously
// re-pushed so that the live stack mirrors the saved one.
func (ps *PositionStack) Resume() int {
	if !ps.Resuming() {
		panic("ckpt: Resume called with no pending resume trace")
	}
	l := ps.resume[ps.cursor]
	ps.cursor++
	ps.labels = append(ps.labels, l)
	if ps.cursor == len(ps.resume) {
		// The trace is exhausted: the innermost label has been reached and
		// normal execution resumes after the PotentialCheckpoint site.
		ps.resume = nil
	}
	return l
}

// AtCheckpointSite reports whether the resume cursor has reached the
// innermost saved label, i.e. execution is about to resume immediately
// after the PotentialCheckpoint call that took the checkpoint.
func (ps *PositionStack) AtCheckpointSite() bool {
	return ps.resume != nil && ps.cursor == len(ps.resume)-1
}

func (ps *PositionStack) String() string {
	return fmt.Sprintf("PS%v", ps.labels)
}
