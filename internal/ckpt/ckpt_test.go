package ckpt

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCodecRoundTripScalars(t *testing.T) {
	i := 42
	var i2 int
	roundTrip(t, &i, &i2)
	if i2 != 42 {
		t.Fatalf("int: got %d", i2)
	}

	f := math.Pi
	var f2 float64
	roundTrip(t, &f, &f2)
	if f2 != math.Pi {
		t.Fatalf("float64: got %v", f2)
	}

	b := true
	var b2 bool
	roundTrip(t, &b, &b2)
	if !b2 {
		t.Fatalf("bool: got %v", b2)
	}

	s := "hello, checkpoint"
	var s2 string
	roundTrip(t, &s, &s2)
	if s2 != s {
		t.Fatalf("string: got %q", s2)
	}

	u := uint64(1) << 63
	var u2 uint64
	roundTrip(t, &u, &u2)
	if u2 != u {
		t.Fatalf("uint64: got %d", u2)
	}

	n := int64(-7)
	var n2 int64
	roundTrip(t, &n, &n2)
	if n2 != n {
		t.Fatalf("int64: got %d", n2)
	}
}

func roundTrip(t *testing.T, src, dst any) {
	t.Helper()
	raw, err := Encode(src)
	if err != nil {
		t.Fatalf("encode %T: %v", src, err)
	}
	if err := Decode(raw, dst); err != nil {
		t.Fatalf("decode %T: %v", dst, err)
	}
}

func TestCodecRoundTripSlices(t *testing.T) {
	xs := []float64{1, -2.5, math.Inf(1), math.SmallestNonzeroFloat64}
	var xs2 []float64
	roundTrip(t, &xs, &xs2)
	if !reflect.DeepEqual(xs, xs2) {
		t.Fatalf("float64 slice: got %v", xs2)
	}

	is := []int{0, -1, 1 << 40}
	var is2 []int
	roundTrip(t, &is, &is2)
	if !reflect.DeepEqual(is, is2) {
		t.Fatalf("int slice: got %v", is2)
	}

	m := [][]float64{{1, 2}, {}, {3}}
	var m2 [][]float64
	roundTrip(t, &m, &m2)
	if len(m2) != 3 || !reflect.DeepEqual(m2[0], []float64{1, 2}) ||
		len(m2[1]) != 0 || !reflect.DeepEqual(m2[2], []float64{3}) {
		t.Fatalf("matrix: got %v", m2)
	}

	bs := []byte("raw")
	var bs2 []byte
	roundTrip(t, &bs, &bs2)
	if string(bs2) != "raw" {
		t.Fatalf("bytes: got %q", bs2)
	}

	i64 := []int64{-1, 2, -3}
	var i64b []int64
	roundTrip(t, &i64, &i64b)
	if !reflect.DeepEqual(i64, i64b) {
		t.Fatalf("int64 slice: got %v", i64b)
	}
}

func TestCodecGobFallback(t *testing.T) {
	type point struct{ X, Y float64 }
	p := point{1, 2}
	var p2 point
	roundTrip(t, &p, &p2)
	if p2 != p {
		t.Fatalf("struct: got %+v", p2)
	}
	m := map[string]int{"a": 1}
	var m2 map[string]int
	roundTrip(t, &m, &m2)
	if m2["a"] != 1 {
		t.Fatalf("map: got %v", m2)
	}
}

func TestCodecTagMismatch(t *testing.T) {
	i := 3
	raw, err := Encode(&i)
	if err != nil {
		t.Fatal(err)
	}
	var f float64
	if err := Decode(raw, &f); err == nil {
		t.Fatal("decoding int bytes into *float64 should fail")
	}
}

func TestCodecDecodeIntoExistingBuffer(t *testing.T) {
	xs := []float64{1, 2, 3}
	raw, err := Encode(&xs)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 8) // larger capacity: must be reused and resized
	hold := dst[:cap(dst)]
	if err := Decode(raw, &dst); err != nil {
		t.Fatal(err)
	}
	if len(dst) != 3 || dst[0] != 1 || dst[2] != 3 {
		t.Fatalf("got %v", dst)
	}
	if &hold[0] != &dst[0] {
		t.Fatal("decode should reuse the existing backing array")
	}
}

func TestCodecPropertyFloatSlices(t *testing.T) {
	f := func(xs []float64) bool {
		raw, err := Encode(&xs)
		if err != nil {
			return false
		}
		var back []float64
		if err := Decode(raw, &back); err != nil {
			return false
		}
		if len(back) != len(xs) {
			return false
		}
		for i := range xs {
			if math.Float64bits(xs[i]) != math.Float64bits(back[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCodecPropertyStrings(t *testing.T) {
	f := func(s string) bool {
		raw, err := Encode(&s)
		if err != nil {
			return false
		}
		var back string
		return Decode(raw, &back) == nil && back == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPositionStackPushPop(t *testing.T) {
	ps := NewPositionStack()
	ps.Push(1)
	ps.Push(2)
	if ps.Depth() != 2 {
		t.Fatalf("depth = %d", ps.Depth())
	}
	snap := ps.Snapshot()
	if !reflect.DeepEqual(snap, []int{1, 2}) {
		t.Fatalf("snapshot = %v", snap)
	}
	ps.Pop()
	if ps.Depth() != 1 {
		t.Fatalf("depth after pop = %d", ps.Depth())
	}
	// Snapshot is a copy.
	snap[0] = 99
	if ps.Snapshot()[0] != 1 {
		t.Fatal("Snapshot must copy")
	}
}

func TestPositionStackResume(t *testing.T) {
	ps := NewPositionStack()
	ps.StartResume([]int{3, 7})
	if !ps.Resuming() {
		t.Fatal("should be resuming")
	}
	if l := ps.Resume(); l != 3 {
		t.Fatalf("first label = %d", l)
	}
	if !ps.AtCheckpointSite() {
		t.Fatal("next label is the innermost: AtCheckpointSite should be true")
	}
	if l := ps.Resume(); l != 7 {
		t.Fatalf("second label = %d", l)
	}
	if ps.Resuming() {
		t.Fatal("resume should be exhausted")
	}
	// Live stack mirrors the restored trace.
	if !reflect.DeepEqual(ps.Snapshot(), []int{3, 7}) {
		t.Fatalf("live stack = %v", ps.Snapshot())
	}
}

func TestPositionStackPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPositionStack().Pop()
}

func TestVDSSaveRestore(t *testing.T) {
	v := NewVDS()
	x := 10
	ys := []float64{1, 2}
	if err := v.Push("x", &x); err != nil {
		t.Fatal(err)
	}
	if err := v.Push("ys", &ys); err != nil {
		t.Fatal(err)
	}
	snap, err := v.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Mutate after the checkpoint, then restore into fresh variables (a new
	// incarnation re-registers).
	v2 := NewVDS()
	if err := v2.StartRestore(snap); err != nil {
		t.Fatal(err)
	}
	var x2 int
	var ys2 []float64
	if err := v2.Push("x", &x2); err != nil {
		t.Fatal(err)
	}
	if err := v2.Push("ys", &ys2); err != nil {
		t.Fatal(err)
	}
	if x2 != 10 || !reflect.DeepEqual(ys2, []float64{1, 2}) {
		t.Fatalf("restored x=%d ys=%v", x2, ys2)
	}
	if v2.PendingRestores() != 0 {
		t.Fatalf("pending restores = %d", v2.PendingRestores())
	}
}

func TestVDSScopeExit(t *testing.T) {
	v := NewVDS()
	a, b := 1, 2
	if err := v.Push("a", &a); err != nil {
		t.Fatal(err)
	}
	if err := v.Push("b", &b); err != nil {
		t.Fatal(err)
	}
	v.Pop() // b leaves scope
	snap, err := v.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	v2 := NewVDS()
	if err := v2.StartRestore(snap); err != nil {
		t.Fatal(err)
	}
	var a2 int
	if err := v2.Push("a", &a2); err != nil {
		t.Fatal(err)
	}
	if a2 != 1 {
		t.Fatalf("a = %d", a2)
	}
	if v2.PendingRestores() != 0 {
		t.Fatal("b should not be in the snapshot")
	}
}

func TestVDSRebind(t *testing.T) {
	v := NewVDS()
	x := 1
	if err := v.Push("x", &x); err != nil {
		t.Fatal(err)
	}
	y := 5
	if err := v.Push("x", &y); err != nil { // rebind: function called again
		t.Fatal(err)
	}
	if v.Len() != 1 {
		t.Fatalf("len = %d", v.Len())
	}
	snap, err := v.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	v2 := NewVDS()
	if err := v2.StartRestore(snap); err != nil {
		t.Fatal(err)
	}
	var z int
	if err := v2.Push("x", &z); err != nil {
		t.Fatal(err)
	}
	if z != 5 {
		t.Fatalf("rebind should capture the latest pointer; z = %d", z)
	}
}

func TestVDSNilPointer(t *testing.T) {
	if err := NewVDS().Push("x", nil); err == nil {
		t.Fatal("nil pointer must be rejected")
	}
}

func TestHeapAllocFreeSnapshot(t *testing.T) {
	h := NewHeap()
	b1 := h.Alloc(4)
	b2 := h.Alloc(8)
	copy(b1.Data, []byte{1, 2, 3, 4})
	copy(b2.Data, []byte{9, 9, 9, 9, 9, 9, 9, 9})
	h.Free(b2.ID)
	if h.Live() != 1 || h.LiveBytes() != 4 {
		t.Fatalf("live=%d bytes=%d", h.Live(), h.LiveBytes())
	}

	snap, err := h.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	h2 := NewHeap()
	if err := h2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got := h2.Lookup(b1.ID)
	if got == nil || got.Data[3] != 4 {
		t.Fatalf("block 1 not restored: %+v", got)
	}
	if h2.Lookup(b2.ID) != nil {
		t.Fatal("freed block must not be restored")
	}
	// Handle allocation continues from where the snapshot left off, so
	// handles never collide with restored ones.
	b3 := h2.Alloc(1)
	if b3.ID <= b2.ID {
		t.Fatalf("new handle %d collides with old ones", b3.ID)
	}
}

func TestHeapDoubleFreePanics(t *testing.T) {
	h := NewHeap()
	b := h.Alloc(1)
	h.Free(b.ID)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.Free(b.ID)
}

func TestSaverRoundTrip(t *testing.T) {
	s := NewSaver()
	iter := 7
	grid := []float64{1, 2, 3}
	if err := s.VDS.Push("iter", &iter); err != nil {
		t.Fatal(err)
	}
	if err := s.VDS.Push("grid", &grid); err != nil {
		t.Fatal(err)
	}
	blk := s.Heap.Alloc(3)
	copy(blk.Data, "abc")
	s.PS.Push(2)
	s.PS.Push(5)

	blob, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	s2 := NewSaver()
	if err := s2.StartRestore(blob); err != nil {
		t.Fatal(err)
	}
	var iter2 int
	var grid2 []float64
	if err := s2.VDS.Push("iter", &iter2); err != nil {
		t.Fatal(err)
	}
	if err := s2.VDS.Push("grid", &grid2); err != nil {
		t.Fatal(err)
	}
	if iter2 != 7 || !reflect.DeepEqual(grid2, []float64{1, 2, 3}) {
		t.Fatalf("restored iter=%d grid=%v", iter2, grid2)
	}
	if string(s2.Heap.Lookup(blk.ID).Data) != "abc" {
		t.Fatal("heap block not restored")
	}
	if !s2.PS.Resuming() {
		t.Fatal("PS should be armed")
	}
	if l := s2.PS.Resume(); l != 2 {
		t.Fatalf("outer label = %d", l)
	}
	if l := s2.PS.Resume(); l != 5 {
		t.Fatalf("inner label = %d", l)
	}
}

func TestSaverStateBytesGrowsWithData(t *testing.T) {
	s := NewSaver()
	small, err := s.StateBytes()
	if err != nil {
		t.Fatal(err)
	}
	grid := make([]float64, 1024)
	if err := s.VDS.Push("grid", &grid); err != nil {
		t.Fatal(err)
	}
	big, err := s.StateBytes()
	if err != nil {
		t.Fatal(err)
	}
	if big < small+8*1024 {
		t.Fatalf("StateBytes did not grow: %d -> %d", small, big)
	}
}
