package ckpt

import (
	"bytes"
	"testing"
)

type gobStruct struct {
	A int
	B string
}

// buildRichSaver registers one value of every representative shape — fast
// paths, gob fallback, computed, replicated — plus heap blocks.
func buildRichSaver(t *testing.T, primary bool) *Saver {
	t.Helper()
	s := NewSaver()
	s.VDS.Primary = primary
	s.PS.Push(3)
	s.PS.Push(7)

	it := 42
	grid := make([]float64, 4096)
	for i := range grid {
		grid[i] = float64(i) * 0.5
	}
	raw := []byte("raw-bytes-value")
	name := "a-string"
	flag := true
	ids := []int{1, 2, 3}
	counts := []int64{9, 8}
	mat := [][]float64{{1, 2}, {3, 4, 5}}
	gs := gobStruct{A: 1, B: "two"}
	table := []float64{10, 20, 30}
	ro := make([]float64, 600)

	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.VDS.Push("it", &it))
	must(s.VDS.Push("grid", &grid))
	must(s.VDS.Push("raw", &raw))
	must(s.VDS.Push("name", &name))
	must(s.VDS.Push("flag", &flag))
	must(s.VDS.Push("ids", &ids))
	must(s.VDS.Push("counts", &counts))
	must(s.VDS.Push("mat", &mat))
	must(s.VDS.Push("gs", &gs))
	must(s.VDS.PushReplicated("table", &table))
	must(s.VDS.PushComputed("ro", &ro, func() error { return nil }))

	b := s.Heap.Alloc(5000)
	for i := range b.Data {
		b.Data[i] = byte(i)
	}
	s.Heap.Alloc(16)
	return s
}

// TestFreezeSnapshotMatchesSaver pins the contract that makes the async
// pipeline safe: the frozen view serializes to exactly the bytes
// Saver.Snapshot would have produced at freeze time, and StateBytes
// predicts the length without serializing.
func TestFreezeSnapshotMatchesSaver(t *testing.T) {
	for _, primary := range []bool{true, false} {
		s := buildRichSaver(t, primary)
		want, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		f, err := s.Freeze()
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("primary=%v: frozen snapshot differs from direct snapshot (%d vs %d bytes)", primary, len(got), len(want))
		}
		if f.StateBytes() != len(want) {
			t.Fatalf("primary=%v: Frozen.StateBytes = %d, snapshot is %d bytes", primary, f.StateBytes(), len(want))
		}
		n, err := s.StateBytes()
		if err != nil {
			t.Fatal(err)
		}
		if n != len(want) {
			t.Fatalf("primary=%v: Saver.StateBytes = %d, snapshot is %d bytes", primary, n, len(want))
		}
	}
}

// TestFreezeIsolation: mutations after Freeze must not leak into the frozen
// view — that is the property that lets the rank compute while the flusher
// serializes.
func TestFreezeIsolation(t *testing.T) {
	s := NewSaver()
	grid := make([]float64, 1000)
	var it int
	if err := s.VDS.Push("it", &it); err != nil {
		t.Fatal(err)
	}
	if err := s.VDS.Push("grid", &grid); err != nil {
		t.Fatal(err)
	}
	b := s.Heap.Alloc(100)

	f, err := s.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Mutate everything the application could touch.
	it = 99
	for i := range grid {
		grid[i] = -1
	}
	for i := range b.Data {
		b.Data[i] = 0xFF
	}
	s.Heap.Alloc(8)
	s.PS.Push(1)

	got, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("mutations after Freeze leaked into the frozen view")
	}
	// And a restore from the frozen bytes sees the pre-mutation values.
	r := NewSaver()
	if err := r.StartRestore(want); err != nil {
		t.Fatal(err)
	}
	var it2 int
	grid2 := []float64{}
	if err := r.VDS.Push("it", &it2); err != nil {
		t.Fatal(err)
	}
	if err := r.VDS.Push("grid", &grid2); err != nil {
		t.Fatal(err)
	}
	if it2 != 0 || grid2[0] != 0 || len(grid2) != 1000 {
		t.Fatalf("restore from frozen blob: it=%d grid0=%v len=%d", it2, grid2[0], len(grid2))
	}
	if r.Heap.Lookup(b.ID) == nil || r.Heap.Lookup(b.ID).Data[0] != 0 {
		t.Fatal("restored heap block should hold pre-mutation bytes")
	}
}

// cutRecorder counts Cut boundaries to verify large values are isolated.
type cutRecorder struct {
	bytes.Buffer
	cuts int
}

func (c *cutRecorder) Cut() error { c.cuts++; return nil }

// TestIncrementalFreezeSharesCleanRegions pins the dirty-region contract:
// an untouched slab region is re-referenced (zero copy), a touched one is
// re-copied, and the serialized bytes always equal a full snapshot's.
func TestIncrementalFreezeSharesCleanRegions(t *testing.T) {
	s := NewSaver()
	s.Incremental = true
	var it int
	grid := make([]float64, 2000)
	other := make([]float64, 3000)
	for i := range grid {
		grid[i] = float64(i)
	}
	if err := s.VDS.Push("it", &it); err != nil {
		t.Fatal(err)
	}
	if err := s.VDS.Push("grid", &grid); err != nil {
		t.Fatal(err)
	}
	if err := s.VDS.Push("other", &other); err != nil {
		t.Fatal(err)
	}
	blk := s.Heap.Alloc(4096)
	for i := range blk.Data {
		blk.Data[i] = byte(i)
	}

	checkpoint := func(f *Frozen) []byte {
		t.Helper()
		want, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("incremental frozen bytes differ from live snapshot (%d vs %d bytes)", len(got), len(want))
		}
		return got
	}

	// Epoch 1: everything dirty.
	f1, err := s.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	checkpoint(f1)
	copied, dirty, regions := f1.CopyStats()
	if dirty != regions || regions != 4 {
		t.Fatalf("first freeze: dirty=%d regions=%d, want all 4 dirty", dirty, regions)
	}
	if copied < int64(8*(len(grid)+len(other))+len(blk.Data)) {
		t.Fatalf("first freeze copied %d bytes, want at least the slab payloads", copied)
	}
	f1.Release() // flush done; slabs now shared with the retention map only

	// Epoch 2: mutate grid (+Touch), the counter (scalar, no Touch needed),
	// and the heap block (+Touch); leave other clean.
	it = 7
	grid[3] = -1
	if err := s.VDS.Touch("grid"); err != nil {
		t.Fatal(err)
	}
	blk.Data[9] = 0xEE
	s.Heap.Touch(blk.ID)

	f2, err := s.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	checkpoint(f2)
	copied, dirty, regions = f2.CopyStats()
	// Dirty: it (scalar), grid, heap block. Clean: other.
	if dirty != 3 || regions != 4 {
		t.Fatalf("second freeze: dirty=%d regions=%d, want 3/4", dirty, regions)
	}
	if max := int64(8*len(grid) + len(blk.Data) + 64); copied > max {
		t.Fatalf("second freeze copied %d bytes, want <= %d (clean region re-referenced)", copied, max)
	}
	f2.Release()

	// Epoch 3: nothing touched — only the scalar is recopied, and the
	// frozen view still matches the live snapshot byte for byte.
	f3, err := s.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	checkpoint(f3)
	copied, dirty, _ = f3.CopyStats()
	if dirty != 1 || copied > 64 {
		t.Fatalf("clean freeze: dirty=%d copied=%d, want 1 scalar region only", dirty, copied)
	}
	f3.Release()
}

// TestIncrementalFreezeTouchUnknownFails pins that a typo'd Touch surfaces
// loudly instead of as silently stale recovered state.
func TestIncrementalFreezeTouchUnknownFails(t *testing.T) {
	s := NewSaver()
	if err := s.VDS.Touch("nope"); err == nil {
		t.Fatal("VDS.Touch on an unregistered name succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Heap.Touch on an unknown handle did not panic")
		}
	}()
	s.Heap.Touch(42)
}

// TestIncrementalFreezeSlabRefcount pins the lifetime rule: releasing an
// older epoch must not hand a shared slab back to the pool while a newer
// epoch still references it, in either release order.
func TestIncrementalFreezeSlabRefcount(t *testing.T) {
	for _, releaseOldFirst := range []bool{true, false} {
		s := NewSaver()
		s.Incremental = true
		grid := make([]float64, 1500)
		for i := range grid {
			grid[i] = float64(i) * 1.25
		}
		if err := s.VDS.Push("grid", &grid); err != nil {
			t.Fatal(err)
		}
		f1, err := s.Freeze()
		if err != nil {
			t.Fatal(err)
		}
		want, err := f1.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !releaseOldFirst {
			// Keep f1 alive across the next freeze (the flusher may still
			// be writing it when the refcounts are what protects it).
			defer f1.Release()
		} else {
			f1.Release()
		}
		f2, err := s.Freeze() // clean: shares f1's slab
		if err != nil {
			t.Fatal(err)
		}
		// Churn the pool: a third saver-side allocation must not be handed
		// the shared slab. Dirty a dummy variable large enough to want a
		// pooled buffer of the same size class.
		decoy := make([]float64, 1500)
		if err := s.VDS.Push("decoy", &decoy); err != nil {
			t.Fatal(err)
		}
		f3, err := s.Freeze()
		if err != nil {
			t.Fatal(err)
		}
		got, err := f2.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("releaseOldFirst=%v: shared slab was clobbered while epoch 2 still referenced it", releaseOldFirst)
		}
		f2.Release()
		f3.Release()
	}
}

func TestFrozenWriteToCutsAroundLargeValues(t *testing.T) {
	s := NewSaver()
	big := make([]float64, cutoverBytes) // 8*cutover bytes, well over the threshold
	small := 1
	if err := s.VDS.Push("small", &small); err != nil {
		t.Fatal(err)
	}
	if err := s.VDS.Push("big", &big); err != nil {
		t.Fatal(err)
	}
	f, err := s.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	var rec cutRecorder
	if err := f.WriteTo(&rec); err != nil {
		t.Fatal(err)
	}
	// PS cut + VDS section cut + two cuts isolating the big entry >= 4.
	if rec.cuts < 4 {
		t.Fatalf("WriteTo produced %d cuts, want >= 4", rec.cuts)
	}
	want, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Bytes(), want) {
		t.Fatal("WriteTo stream differs from Snapshot")
	}
}
