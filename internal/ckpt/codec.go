package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"
)

// The checkpoint codec. C3 copies raw bytes from the VDS/HOS descriptors
// into the checkpoint file; the Go analogue is a compact little-endian
// encoding with fast paths for the numeric kernels HPC codes checkpoint
// ([]float64 grids and vectors, counters) and a gob fallback for arbitrary
// structured data. The fast paths matter because checkpoint cost in
// Figure 8 is dominated by moving application state, so the encoder must
// run near memory bandwidth rather than at reflection speed.

// Type tags for the encoding.
const (
	tagInt byte = iota + 1
	tagInt64
	tagUint64
	tagFloat64
	tagBool
	tagString
	tagBytes
	tagFloat64Slice
	tagIntSlice
	tagInt64Slice
	tagFloat64Matrix
	tagGob
)

// Encode serializes the value pointed to by ptr.
func Encode(ptr any) ([]byte, error) {
	var buf bytes.Buffer
	if err := EncodeTo(&buf, ptr); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// EncodeTo serializes the value pointed to by ptr into w.
func EncodeTo(buf *bytes.Buffer, ptr any) error {
	switch p := ptr.(type) {
	case *int:
		buf.WriteByte(tagInt)
		writeUint64(buf, uint64(*p))
	case *int64:
		buf.WriteByte(tagInt64)
		writeUint64(buf, uint64(*p))
	case *uint64:
		buf.WriteByte(tagUint64)
		writeUint64(buf, *p)
	case *float64:
		buf.WriteByte(tagFloat64)
		writeUint64(buf, math.Float64bits(*p))
	case *bool:
		buf.WriteByte(tagBool)
		if *p {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
	case *string:
		buf.WriteByte(tagString)
		writeString(buf, *p)
	case *[]byte:
		buf.WriteByte(tagBytes)
		writeBytes(buf, *p)
	case *[]float64:
		buf.WriteByte(tagFloat64Slice)
		writeFloat64s(buf, *p)
	case *[]int:
		buf.WriteByte(tagIntSlice)
		writeUvarint(buf, uint64(len(*p)))
		for _, x := range *p {
			writeUint64(buf, uint64(x))
		}
	case *[]int64:
		buf.WriteByte(tagInt64Slice)
		writeUvarint(buf, uint64(len(*p)))
		for _, x := range *p {
			writeUint64(buf, uint64(x))
		}
	case *[][]float64:
		buf.WriteByte(tagFloat64Matrix)
		writeUvarint(buf, uint64(len(*p)))
		for _, row := range *p {
			writeFloat64s(buf, row)
		}
	default:
		buf.WriteByte(tagGob)
		var gb bytes.Buffer
		if err := gob.NewEncoder(&gb).Encode(ptr); err != nil {
			return fmt.Errorf("ckpt: gob encode %T: %w", ptr, err)
		}
		writeBytes(buf, gb.Bytes())
	}
	return nil
}

// Decode deserializes raw (produced by Encode) into the value pointed to by
// ptr. The dynamic type of ptr must match the one used at encode time.
func Decode(raw []byte, ptr any) error {
	rd := bytes.NewReader(raw)
	return DecodeFrom(rd, ptr)
}

// DecodeFrom deserializes one value from rd into ptr.
func DecodeFrom(rd *bytes.Reader, ptr any) error {
	tag, err := rd.ReadByte()
	if err != nil {
		return err
	}
	mismatch := func(want byte) error {
		return fmt.Errorf("ckpt: decode %T: tag %d, want %d", ptr, tag, want)
	}
	switch p := ptr.(type) {
	case *int:
		if tag != tagInt {
			return mismatch(tagInt)
		}
		v, err := readUint64(rd)
		if err != nil {
			return err
		}
		*p = int(v)
	case *int64:
		if tag != tagInt64 {
			return mismatch(tagInt64)
		}
		v, err := readUint64(rd)
		if err != nil {
			return err
		}
		*p = int64(v)
	case *uint64:
		if tag != tagUint64 {
			return mismatch(tagUint64)
		}
		v, err := readUint64(rd)
		if err != nil {
			return err
		}
		*p = v
	case *float64:
		if tag != tagFloat64 {
			return mismatch(tagFloat64)
		}
		v, err := readUint64(rd)
		if err != nil {
			return err
		}
		*p = math.Float64frombits(v)
	case *bool:
		if tag != tagBool {
			return mismatch(tagBool)
		}
		b, err := rd.ReadByte()
		if err != nil {
			return err
		}
		*p = b != 0
	case *string:
		if tag != tagString {
			return mismatch(tagString)
		}
		s, err := readString(rd)
		if err != nil {
			return err
		}
		*p = s
	case *[]byte:
		if tag != tagBytes {
			return mismatch(tagBytes)
		}
		b, err := readBytes(rd)
		if err != nil {
			return err
		}
		*p = b
	case *[]float64:
		if tag != tagFloat64Slice {
			return mismatch(tagFloat64Slice)
		}
		xs, err := readFloat64sInto(rd, *p)
		if err != nil {
			return err
		}
		*p = xs
	case *[]int:
		if tag != tagIntSlice {
			return mismatch(tagIntSlice)
		}
		n, err := readUvarint(rd)
		if err != nil {
			return err
		}
		xs := resizeInts(*p, int(n))
		for i := range xs {
			v, err := readUint64(rd)
			if err != nil {
				return err
			}
			xs[i] = int(v)
		}
		*p = xs
	case *[]int64:
		if tag != tagInt64Slice {
			return mismatch(tagInt64Slice)
		}
		n, err := readUvarint(rd)
		if err != nil {
			return err
		}
		xs := make([]int64, n)
		for i := range xs {
			v, err := readUint64(rd)
			if err != nil {
				return err
			}
			xs[i] = int64(v)
		}
		*p = xs
	case *[][]float64:
		if tag != tagFloat64Matrix {
			return mismatch(tagFloat64Matrix)
		}
		n, err := readUvarint(rd)
		if err != nil {
			return err
		}
		rows := *p
		if len(rows) != int(n) {
			rows = make([][]float64, n)
		}
		for i := range rows {
			rows[i], err = readFloat64sInto(rd, rows[i])
			if err != nil {
				return err
			}
		}
		*p = rows
	default:
		if tag != tagGob {
			return mismatch(tagGob)
		}
		b, err := readBytes(rd)
		if err != nil {
			return err
		}
		if err := gob.NewDecoder(bytes.NewReader(b)).Decode(ptr); err != nil {
			return fmt.Errorf("ckpt: gob decode %T: %w", ptr, err)
		}
	}
	return nil
}

// --- primitive writers/readers ---

func writeUint64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

func readUint64(rd *bytes.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(rd, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], v)
	buf.Write(b[:n])
}

func readUvarint(rd *bytes.Reader) (uint64, error) {
	return binary.ReadUvarint(rd)
}

func writeString(buf *bytes.Buffer, s string) {
	writeUvarint(buf, uint64(len(s)))
	buf.WriteString(s)
}

func readString(rd *bytes.Reader) (string, error) {
	b, err := readBytes(rd)
	return string(b), err
}

func writeBytes(buf *bytes.Buffer, b []byte) {
	writeUvarint(buf, uint64(len(b)))
	buf.Write(b)
}

func readBytes(rd *bytes.Reader) ([]byte, error) {
	n, err := readUvarint(rd)
	if err != nil {
		return nil, err
	}
	if n > uint64(rd.Len()) {
		return nil, fmt.Errorf("ckpt: truncated blob: need %d bytes, have %d", n, rd.Len())
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(rd, b); err != nil {
		return nil, err
	}
	return b, nil
}

// floatChunk is the conversion batch for float64 slices: one Buffer.Write
// (or ReadFull) per 1024 elements instead of per element, which keeps the
// encoder near memory bandwidth — checkpoint cost in Figure 8 is dominated
// by this path.
const floatChunk = 1024

func writeFloat64s(buf *bytes.Buffer, xs []float64) {
	buf.Grow(8 * len(xs))
	writeFloat64sTo(buf, xs) // a bytes.Buffer never returns a write error
}

// writeFloat64sTo is the io.Writer form of writeFloat64s; the checkpoint
// flusher streams grids through it straight into the chunked store writer,
// with no intermediate whole-state buffer.
func writeFloat64sTo(w io.Writer, xs []float64) error {
	var lenb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenb[:], uint64(len(xs)))
	if _, err := w.Write(lenb[:n]); err != nil {
		return err
	}
	return writeFloat64sRawTo(w, xs)
}

// writeFloat64sRawTo streams the little-endian payload without a length
// prefix — the per-page form: a paged frozen entry writes one prefix for
// the whole slice and then each page's payload through this.
func writeFloat64sRawTo(w io.Writer, xs []float64) error {
	var chunk [8 * floatChunk]byte
	for off := 0; off < len(xs); {
		n := len(xs) - off
		if n > floatChunk {
			n = floatChunk
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(chunk[8*i:], math.Float64bits(xs[off+i]))
		}
		if _, err := w.Write(chunk[:8*n]); err != nil {
			return err
		}
		off += n
	}
	return nil
}

func readFloat64sInto(rd *bytes.Reader, dst []float64) ([]float64, error) {
	n, err := readUvarint(rd)
	if err != nil {
		return nil, err
	}
	if 8*n > uint64(rd.Len()) {
		return nil, fmt.Errorf("ckpt: truncated float64 slice: need %d bytes, have %d", 8*n, rd.Len())
	}
	if uint64(cap(dst)) >= n {
		dst = dst[:n]
	} else {
		dst = make([]float64, n)
	}
	var chunk [8 * floatChunk]byte
	for off := 0; off < len(dst); {
		c := len(dst) - off
		if c > floatChunk {
			c = floatChunk
		}
		if _, err := io.ReadFull(rd, chunk[:8*c]); err != nil {
			return nil, err
		}
		for i := 0; i < c; i++ {
			dst[off+i] = math.Float64frombits(binary.LittleEndian.Uint64(chunk[8*i:]))
		}
		off += c
	}
	return dst, nil
}

func resizeInts(xs []int, n int) []int {
	if cap(xs) >= n {
		return xs[:n]
	}
	return make([]int, n)
}
