package ckpt

import (
	"bytes"
	"fmt"
)

// VDS is the Variable Descriptor Stack (paper Figure 7). Instrumented code
// pushes a descriptor for each variable as it enters scope and pops it as
// it leaves; at checkpoint time the VDS tells the runtime which memory to
// copy into the checkpoint, and on restart which memory to copy back.
//
// In C the descriptor is (address, size). In Go the descriptor is
// (name, typed pointer); values are encoded with the codec in this package.
// Names give positional independence: a restart re-registers the same
// variables (the instrumented code re-executes the registrations) and each
// registration immediately restores the saved value through the new
// pointer.
//
// Beyond the paper's always-save-everything baseline, descriptors carry a
// kind implementing the Section 7 state-exclusion optimizations: see
// PushComputed and PushReplicated in exclude.go.
type VDS struct {
	entries []vdsEntry
	index   map[string]int

	// Primary marks the rank whose checkpoints carry replicated values
	// (rank 0 by convention; set by the protocol layer).
	Primary bool

	// muts is the monotone write clock behind dirty-region tracking: every
	// Push and Touch stamps the affected entry with the next tick, so an
	// incremental Freeze can tell "unchanged since the last capture" by
	// comparing stamps (see freeze.go).
	muts uint64

	// restore holds decoded records awaiting their re-registration after a
	// restart; replicas holds the primary's replicated values, supplied by
	// the recovery driver.
	restore  map[string]restoreRec
	replicas map[string][]byte
}

type vdsEntry struct {
	name      string
	ptr       any
	kind      entryKind
	recompute func() error
	// gen is the write clock's value at the entry's last registration or
	// Touch; an incremental Freeze treats a matching gen as "clean".
	gen uint64
	// pages, when non-nil, is a per-page write clock inside a large
	// pageable value (*[]float64 / *[]byte split into pageBytes pages):
	// TouchRange stamps only the covered pages, so an incremental Freeze
	// re-copies those pages and re-references the rest from the previous
	// epoch. nil means no sub-entry information — every page is as dirty
	// as gen. pagedLen is the element count the vector was built for; a
	// length change invalidates it (TouchRange rebuilds).
	pages    []uint64
	pagedLen int
}

// Page granularity of sub-entry dirty tracking. Values whose payload
// exceeds pageSplitBytes are frozen as fixed pageBytes pages, each with
// its own write-clock stamp, so touching one corner of a 16MB grid
// re-copies 64KB instead of 16MB. Both sizes are in bytes of payload
// (8 bytes per float64 element).
const (
	pageBytes      = 64 << 10
	pageSplitBytes = 64 << 10
)

// pageGeometry reports whether a live entry's value is captured paged,
// and if so its element count, elements per page, and whether elements
// are float64s (true) or bytes (false).
func pageGeometry(kind entryKind, primary bool, ptr any) (paged bool, elems, perPage int, isF64 bool) {
	if kind == kindComputed || (kind == kindReplicated && !primary) {
		return false, 0, 0, false
	}
	switch p := ptr.(type) {
	case *[]float64:
		if 8*len(*p) > pageSplitBytes {
			return true, len(*p), pageBytes / 8, true
		}
	case *[]byte:
		if len(*p) > pageSplitBytes {
			return true, len(*p), pageBytes, false
		}
	}
	return false, 0, 0, false
}

// pageGens returns the per-page write-clock stamps for an entry frozen as
// numPages pages: the tracked vector when its geometry is current, or every
// page at the entry's own gen when there is no (valid) sub-entry record —
// Touch, registration and resize all wipe page information, which is the
// conservative direction (a page can only be treated as MORE dirty).
func (e *vdsEntry) pageGens(elems, numPages int) []uint64 {
	if e.pages != nil && e.pagedLen == elems && len(e.pages) == numPages {
		return e.pages
	}
	gens := make([]uint64, numPages)
	for i := range gens {
		gens[i] = e.gen
	}
	return gens
}

type restoreRec struct {
	kind entryKind
	data []byte
}

// NewVDS returns an empty variable descriptor stack.
func NewVDS() *VDS {
	return &VDS{index: make(map[string]int)}
}

// Push registers a variable whose full value is saved with every
// checkpoint. ptr must be a pointer to a codec-supported value (see
// Encode). If a restart is in progress and a saved value exists under
// name, the value is immediately restored through ptr.
//
// Registering a name that is already live rebinds its pointer; this happens
// when an instrumented function is called again and re-registers its
// locals.
func (v *VDS) Push(name string, ptr any) error {
	if ptr == nil {
		return fmt.Errorf("ckpt: VDS.Push(%q): nil pointer", name)
	}
	v.pushEntry(vdsEntry{name: name, ptr: ptr, kind: kindSaved})
	if v.restore != nil {
		if rec, ok := v.restore[name]; ok {
			if rec.kind != kindSaved {
				return fmt.Errorf("ckpt: restore %q: checkpoint kind %d, registered as saved", name, rec.kind)
			}
			if err := Decode(rec.data, ptr); err != nil {
				return fmt.Errorf("ckpt: restore %q: %w", name, err)
			}
			delete(v.restore, name)
		}
	}
	return nil
}

func (v *VDS) pushEntry(e vdsEntry) {
	// Registration (and rebinding) implicitly dirties: the pointer is new,
	// so the previous epoch's frozen copy cannot be trusted for it.
	v.muts++
	e.gen = v.muts
	if i, ok := v.index[e.name]; ok {
		v.entries[i] = e
		return
	}
	v.index[e.name] = len(v.entries)
	v.entries = append(v.entries, e)
}

// Touch records write intent on a live variable: the next incremental
// Freeze re-copies its value instead of re-referencing the previous
// epoch's frozen copy. Under incremental freeze (Saver.Incremental) every
// mutation of a registered non-scalar value — slice writes, reslicing,
// struct field updates — must be followed by a Touch before the next
// checkpoint; scalar values (int, float64, bool, string, ...) are always
// re-copied and never need it. Touching an unregistered name is an error,
// because a typo here would otherwise surface as silently stale state in a
// recovered run.
func (v *VDS) Touch(name string) error {
	i, ok := v.index[name]
	if !ok {
		return fmt.Errorf("ckpt: VDS.Touch(%q): no live variable registered under that name", name)
	}
	v.muts++
	e := &v.entries[i]
	e.gen = v.muts
	// Whole-entry write intent supersedes any per-page record: every page
	// is now as dirty as gen, which is what a nil vector means.
	e.pages, e.pagedLen = nil, 0
	return nil
}

// TouchRange records write intent on elements [off, off+n) of a large
// registered slice: the next incremental Freeze re-copies only the pages
// (pageBytes of payload each) the range covers and re-references the rest
// from the previous epoch's frozen copy. Units are elements — float64s
// for a *[]float64 registration, bytes for *[]byte. For any other type,
// for values at or below the paging threshold, and for a range that does
// not intersect the value, TouchRange degrades to a full Touch, so
// calling it is never less safe than Touch. Resizing the value (or
// re-registering it) drops the page record; touch the affected range
// again after the resize.
func (v *VDS) TouchRange(name string, off, n int) error {
	i, ok := v.index[name]
	if !ok {
		return fmt.Errorf("ckpt: VDS.TouchRange(%q): no live variable registered under that name", name)
	}
	e := &v.entries[i]
	paged, elems, perPage, _ := pageGeometry(e.kind, true, e.ptr)
	lo, hi := off, off+n
	if lo < 0 {
		lo = 0
	}
	if hi > elems {
		hi = elems
	}
	if !paged || lo >= hi {
		return v.Touch(name)
	}
	numPages := (elems + perPage - 1) / perPage
	if e.pages == nil || e.pagedLen != elems || len(e.pages) != numPages {
		// (Re)build the page vector with every page at the entry's current
		// gen: exactly as dirty as the entry-level clock says, no cleaner.
		gens := make([]uint64, numPages)
		for j := range gens {
			gens[j] = e.gen
		}
		e.pages, e.pagedLen = gens, elems
	}
	v.muts++
	// The entry-level gen advances too: an incremental Freeze first
	// compares entry gens, and a stale match there would skip the dirty
	// pages entirely.
	e.gen = v.muts
	for p := lo / perPage; p <= (hi-1)/perPage; p++ {
		e.pages[p] = v.muts
	}
	return nil
}

// Pop removes the most recently pushed live variable (scope exit).
func (v *VDS) Pop() {
	if len(v.entries) == 0 {
		panic("ckpt: VDS.Pop on empty stack")
	}
	last := v.entries[len(v.entries)-1]
	delete(v.index, last.name)
	v.entries = v.entries[:len(v.entries)-1]
}

// PopExpect removes the top live variable after verifying it is the one
// registered under name. A mismatch means a push/pop imbalance — typically
// a scope that unregisters without having registered — and is reported
// with both names so the faulty call site is identifiable.
func (v *VDS) PopExpect(name string) error {
	if len(v.entries) == 0 {
		return fmt.Errorf("ckpt: VDS.PopExpect(%q) on empty stack", name)
	}
	if top := v.entries[len(v.entries)-1].name; top != name {
		return fmt.Errorf("ckpt: VDS.PopExpect(%q): stack top is %q — mismatched register/unregister pairing", name, top)
	}
	v.Pop()
	return nil
}

// Live reports whether a variable is currently registered under name.
func (v *VDS) Live(name string) bool {
	_, ok := v.index[name]
	return ok
}

// TopName returns the name of the most recently pushed live variable.
func (v *VDS) TopName() (string, bool) {
	if len(v.entries) == 0 {
		return "", false
	}
	return v.entries[len(v.entries)-1].name, true
}

// Len reports the number of live descriptors.
func (v *VDS) Len() int { return len(v.entries) }

// Snapshot encodes every live variable into a checkpoint section: full
// values for saved entries (and replicated ones on the primary),
// fingerprints for computed entries, markers for replicated entries
// elsewhere.
func (v *VDS) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	writeUvarint(&buf, uint64(len(v.entries)))
	for _, e := range v.entries {
		writeString(&buf, e.name)
		buf.WriteByte(byte(e.kind))
		switch e.kind {
		case kindSaved:
			raw, err := Encode(e.ptr)
			if err != nil {
				return nil, fmt.Errorf("ckpt: encode %q: %w", e.name, err)
			}
			writeBytes(&buf, raw)
		case kindComputed:
			sum, err := fingerprint(e.ptr)
			if err != nil {
				return nil, fmt.Errorf("ckpt: fingerprint %q: %w", e.name, err)
			}
			writeBytes(&buf, sum)
		case kindReplicated:
			if v.Primary {
				raw, err := Encode(e.ptr)
				if err != nil {
					return nil, fmt.Errorf("ckpt: encode %q: %w", e.name, err)
				}
				writeBytes(&buf, raw)
			} else {
				writeBytes(&buf, nil)
			}
		default:
			return nil, fmt.Errorf("ckpt: entry %q has invalid kind %d", e.name, e.kind)
		}
	}
	return buf.Bytes(), nil
}

// sectionSize reports the exact serialized size of Snapshot's output
// without encoding the fast-path values (only gob-fallback entries are
// sized by a real encode).
func (v *VDS) sectionSize() (int, error) {
	size := uvarintLen(uint64(len(v.entries)))
	for _, e := range v.entries {
		vs, err := v.entrySize(e)
		if err != nil {
			return 0, err
		}
		size += entryOverhead(e.name, vs) + vs
	}
	return size, nil
}

func (v *VDS) entrySize(e vdsEntry) (int, error) {
	valueSize := func() (int, error) {
		if n, ok := encodedSize(e.ptr); ok {
			return n, nil
		}
		raw, err := Encode(e.ptr)
		if err != nil {
			return 0, fmt.Errorf("ckpt: encode %q: %w", e.name, err)
		}
		return len(raw), nil
	}
	switch e.kind {
	case kindSaved:
		return valueSize()
	case kindComputed:
		return fingerprintSize, nil
	case kindReplicated:
		if v.Primary {
			return valueSize()
		}
		return 0, nil
	}
	return 0, fmt.Errorf("ckpt: entry %q has invalid kind %d", e.name, e.kind)
}

// parseVDSSnapshot decodes the section produced by Snapshot.
func parseVDSSnapshot(snapshot []byte) ([]restoreEntry, error) {
	rd := bytes.NewReader(snapshot)
	n, err := readUvarint(rd)
	if err != nil {
		return nil, fmt.Errorf("ckpt: corrupt VDS snapshot: %w", err)
	}
	out := make([]restoreEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		name, err := readString(rd)
		if err != nil {
			return nil, fmt.Errorf("ckpt: corrupt VDS snapshot: %w", err)
		}
		kind, err := rd.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("ckpt: corrupt VDS snapshot: %w", err)
		}
		data, err := readBytes(rd)
		if err != nil {
			return nil, fmt.Errorf("ckpt: corrupt VDS snapshot: %w", err)
		}
		out = append(out, restoreEntry{name: name, kind: entryKind(kind), data: data})
	}
	return out, nil
}

type restoreEntry struct {
	name string
	kind entryKind
	data []byte
}

// StartRestore loads a snapshot produced by Snapshot and arms restoration:
// subsequent Push/PushComputed/PushReplicated calls restore their
// variable's saved value, recompute it, or fetch the distributed replica.
func (v *VDS) StartRestore(snapshot []byte) error {
	entries, err := parseVDSSnapshot(snapshot)
	if err != nil {
		return err
	}
	v.restore = make(map[string]restoreRec, len(entries))
	for _, e := range entries {
		v.restore[e.name] = restoreRec{kind: e.kind, data: e.data}
	}
	return nil
}

// PendingRestores reports how many saved variables have not yet been
// re-registered. A fully resumed program should report zero.
func (v *VDS) PendingRestores() int { return len(v.restore) }
