package ckpt

import (
	"bytes"
	"fmt"
	"hash/fnv"
)

// State-exclusion optimizations (paper Section 7). The paper's system
// saves everything; its future-work section sketches three reductions,
// implemented here as additional VDS registration kinds:
//
//   - Recomputation checkpointing ("for some data structures, a compiler
//     might be able to determine how to recompute their values. If the
//     description of this recomputation requires less space than storing
//     their data, we should store the description, rather than the data"):
//     PushComputed stores only the variable's fingerprint; on restart the
//     registered recompute function regenerates the value and the
//     fingerprint is verified. Read-only data (CG's matrix block) is the
//     special case where the recomputation is the original initializer.
//
//   - Distributed redundant data ("if multiple nodes each have a copy of
//     the same data structure, only one of the nodes needs to include it in
//     its checkpoint. On restart, the other nodes will obtain their copy
//     from the one that saved it"): PushReplicated stores the data only on
//     the primary rank's Saver; recovery extracts the primary's copy from
//     its checkpoint and distributes it to every other rank's restore map.
//
// Dead-variable exclusion (the paper's third direction, compiler-assisted
// checkpointing of live data only) falls out of the VDS discipline itself:
// a variable not currently pushed is not saved.

// entryKind discriminates how a VDS entry is checkpointed.
type entryKind byte

const (
	kindSaved      entryKind = iota + 1 // full value in the checkpoint
	kindComputed                        // fingerprint only; recomputed on restart
	kindReplicated                      // full value on the primary rank only
)

// PushComputed registers a variable whose value is excluded from
// checkpoints: only a fingerprint is saved, and on restart recompute must
// regenerate the identical value (the fingerprint is verified). ptr must be
// a pointer to a codec-supported value.
//
// If a restart is in progress and a saved fingerprint exists under name,
// recompute runs immediately and the result is checked.
func (v *VDS) PushComputed(name string, ptr any, recompute func() error) error {
	if ptr == nil {
		return fmt.Errorf("ckpt: VDS.PushComputed(%q): nil pointer", name)
	}
	if recompute == nil {
		return fmt.Errorf("ckpt: VDS.PushComputed(%q): nil recompute function", name)
	}
	v.pushEntry(vdsEntry{name: name, ptr: ptr, kind: kindComputed, recompute: recompute})
	if v.restore != nil {
		if rec, ok := v.restore[name]; ok {
			if rec.kind != kindComputed {
				return fmt.Errorf("ckpt: restore %q: checkpoint kind %d, registered as computed", name, rec.kind)
			}
			if err := recompute(); err != nil {
				return fmt.Errorf("ckpt: recompute %q: %w", name, err)
			}
			sum, err := fingerprint(ptr)
			if err != nil {
				return err
			}
			if !bytes.Equal(sum, rec.data) {
				return fmt.Errorf("ckpt: recompute %q: fingerprint mismatch — the recomputation does not reproduce the checkpointed value", name)
			}
			delete(v.restore, name)
		}
	}
	return nil
}

// PushReplicated registers a variable that every rank holds identically.
// Only the primary rank's checkpoint carries the value; the others carry a
// marker. On restart the recovery driver supplies the primary's copy via
// SetReplicas, and this registration restores from it.
func (v *VDS) PushReplicated(name string, ptr any) error {
	if ptr == nil {
		return fmt.Errorf("ckpt: VDS.PushReplicated(%q): nil pointer", name)
	}
	v.pushEntry(vdsEntry{name: name, ptr: ptr, kind: kindReplicated})
	if v.restore != nil {
		if rec, ok := v.restore[name]; ok {
			if rec.kind != kindReplicated {
				return fmt.Errorf("ckpt: restore %q: checkpoint kind %d, registered as replicated", name, rec.kind)
			}
			data := rec.data
			if len(data) == 0 {
				// This rank was not the primary: the value comes from the
				// primary's checkpoint, distributed by the recovery driver.
				replica, ok := v.replicas[name]
				if !ok {
					return fmt.Errorf("ckpt: restore %q: no replica available — was the primary's checkpoint loaded?", name)
				}
				data = replica
			}
			if err := Decode(data, ptr); err != nil {
				return fmt.Errorf("ckpt: restore replicated %q: %w", name, err)
			}
			delete(v.restore, name)
		}
	}
	return nil
}

// SetReplicas supplies the primary rank's replicated values for a restart
// in progress (recovery-driver plumbing).
func (v *VDS) SetReplicas(replicas map[string][]byte) {
	v.replicas = replicas
}

// fingerprint hashes a value's encoding; 16 bytes of FNV-128a.
func fingerprint(ptr any) ([]byte, error) {
	raw, err := Encode(ptr)
	if err != nil {
		return nil, err
	}
	h := fnv.New128a()
	h.Write(raw)
	return h.Sum(nil), nil
}

// ExtractReplicated parses a Saver snapshot and returns the replicated
// values it carries (non-empty only for the primary rank's snapshot). The
// recovery driver calls this on the primary's application-state blob and
// hands the result to every other rank's Saver.
func ExtractReplicated(snapshot []byte) (map[string][]byte, error) {
	rd := bytes.NewReader(snapshot)
	// Skip the PS trace section.
	n, err := readUvarint(rd)
	if err != nil {
		return nil, fmt.Errorf("ckpt: corrupt snapshot: %w", err)
	}
	for i := uint64(0); i < n; i++ {
		if _, err := readUvarint(rd); err != nil {
			return nil, fmt.Errorf("ckpt: corrupt snapshot: %w", err)
		}
	}
	vdsRaw, err := readBytes(rd)
	if err != nil {
		return nil, fmt.Errorf("ckpt: corrupt snapshot: %w", err)
	}
	entries, err := parseVDSSnapshot(vdsRaw)
	if err != nil {
		return nil, err
	}
	out := map[string][]byte{}
	for _, e := range entries {
		if e.kind == kindReplicated && len(e.data) > 0 {
			out[e.name] = e.data
		}
	}
	return out, nil
}
