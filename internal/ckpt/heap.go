package ckpt

import (
	"bytes"
	"fmt"
	"sort"
)

// Heap is the checkpointer's own heap management system (Section 5.1.3).
// C3 replaces malloc so that it can (a) enumerate live heap objects through
// the Heap Object Structure (HOS) at checkpoint time and (b) recreate every
// object at its original virtual address on restart, which keeps data
// pointers valid without translation.
//
// Go's garbage-collected heap cannot pin virtual addresses, so the Go
// analogue of "same virtual address" is "same object identity": Alloc
// returns a stable integer handle, Lookup(handle) returns the same block
// before a checkpoint and after a restart, and instrumented code stores
// handles (which the VDS checkpoints as ordinary integers) instead of raw
// pointers. A valid handle in the original process designates the same
// bytes in the recovered one — the property Section 5.1.4 needs.
type Heap struct {
	blocks map[int]*Block
	nextID int
	// live bytes, maintained incrementally for state-size accounting.
	liveBytes int
	// muts is the monotone write clock behind dirty-region tracking:
	// Alloc, Realloc, Restore and Touch stamp the affected block, so an
	// incremental Freeze can tell "unchanged since the last capture" by
	// comparing stamps (see freeze.go).
	muts uint64
}

// Block is one live heap object tracked by the HOS.
type Block struct {
	ID   int
	Data []byte
	// gen is the heap write clock's value at the block's last allocation,
	// resize or Touch; an incremental Freeze treats a matching gen as
	// "clean".
	gen uint64
}

// NewHeap returns an empty checkpointable heap.
func NewHeap() *Heap {
	return &Heap{blocks: make(map[int]*Block), nextID: 1}
}

// Alloc allocates a block of n zero bytes and registers it in the HOS.
func (h *Heap) Alloc(n int) *Block {
	h.muts++
	b := &Block{ID: h.nextID, Data: make([]byte, n), gen: h.muts}
	h.nextID++
	h.blocks[b.ID] = b
	h.liveBytes += n
	return b
}

// Touch records write intent on a live block: the next incremental Freeze
// re-copies its bytes instead of re-referencing the previous epoch's
// frozen copy. Under incremental freeze every write into Block.Data must
// be followed by a Touch before the next checkpoint (Alloc and Realloc
// dirty implicitly). Touching an unknown handle panics, as it is a program
// bug that would otherwise surface as silently stale recovered state.
func (h *Heap) Touch(id int) {
	b, ok := h.blocks[id]
	if !ok {
		panic(fmt.Sprintf("ckpt: Heap.Touch(%d): no such block", id))
	}
	h.muts++
	b.gen = h.muts
}

// Free removes a block from the HOS. Freeing an unknown handle panics, as
// double-free is a program bug.
func (h *Heap) Free(id int) {
	b, ok := h.blocks[id]
	if !ok {
		panic(fmt.Sprintf("ckpt: Heap.Free(%d): no such block", id))
	}
	h.liveBytes -= len(b.Data)
	delete(h.blocks, id)
}

// Lookup returns the block with the given handle, or nil.
func (h *Heap) Lookup(id int) *Block { return h.blocks[id] }

// Live reports the number of live blocks.
func (h *Heap) Live() int { return len(h.blocks) }

// LiveBytes reports the total payload bytes of live blocks.
func (h *Heap) LiveBytes() int { return h.liveBytes }

// sectionSize reports the exact serialized size of Snapshot's output
// without copying any block data.
func (h *Heap) sectionSize() int {
	size := uvarintLen(uint64(h.nextID)) + uvarintLen(uint64(len(h.blocks)))
	for id, b := range h.blocks {
		size += uvarintLen(uint64(id)) + uvarintLen(uint64(len(b.Data))) + len(b.Data)
	}
	return size
}

// Snapshot serializes the HOS and all live blocks.
func (h *Heap) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	writeUvarint(&buf, uint64(h.nextID))
	ids := make([]int, 0, len(h.blocks))
	for id := range h.blocks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	writeUvarint(&buf, uint64(len(ids)))
	for _, id := range ids {
		writeUvarint(&buf, uint64(id))
		writeBytes(&buf, h.blocks[id].Data)
	}
	return buf.Bytes(), nil
}

// Restore replaces the heap contents with a snapshot; handles allocated
// after the snapshot are discarded, exactly as a rollback requires.
func (h *Heap) Restore(snapshot []byte) error {
	rd := bytes.NewReader(snapshot)
	next, err := readUvarint(rd)
	if err != nil {
		return fmt.Errorf("ckpt: corrupt heap snapshot: %w", err)
	}
	n, err := readUvarint(rd)
	if err != nil {
		return fmt.Errorf("ckpt: corrupt heap snapshot: %w", err)
	}
	blocks := make(map[int]*Block, n)
	liveBytes := 0
	for i := uint64(0); i < n; i++ {
		id, err := readUvarint(rd)
		if err != nil {
			return fmt.Errorf("ckpt: corrupt heap snapshot: %w", err)
		}
		data, err := readBytes(rd)
		if err != nil {
			return fmt.Errorf("ckpt: corrupt heap snapshot: %w", err)
		}
		h.muts++
		blocks[int(id)] = &Block{ID: int(id), Data: data, gen: h.muts}
		liveBytes += len(data)
	}
	h.blocks = blocks
	h.nextID = int(next)
	h.liveBytes = liveBytes
	return nil
}

// Realloc resizes a live block in place, preserving its handle and the
// common prefix of its contents (C3's realloc analogue: the handle — the
// "address" — survives).
func (h *Heap) Realloc(id, n int) *Block {
	b, ok := h.blocks[id]
	if !ok {
		panic(fmt.Sprintf("ckpt: Heap.Realloc(%d): no such block", id))
	}
	h.muts++
	b.gen = h.muts
	h.liveBytes += n - len(b.Data)
	if n <= cap(b.Data) {
		grown := b.Data[:n]
		for i := len(b.Data); i < n; i++ {
			grown[i] = 0
		}
		b.Data = grown
		return b
	}
	next := make([]byte, n)
	copy(next, b.Data)
	b.Data = next
	return b
}
