package ckpt_test

// Differential property suite for dirty-region checkpointing: seeded
// random sequences of register / mutate / resize / unregister / heap ops
// interleaved with checkpoints drive two Savers that share every live
// pointer — one freezing incrementally under the Touch contract, one
// freezing fully — and every checkpoint asserts the incremental
// Frozen.WriteTo stream is byte-identical to the full freeze's AND that
// the chunked-store manifests match. The incremental stream is serialized
// on a background goroutine while the driver keeps mutating live state,
// exactly like the protocol's flusher, so the race job also proves the
// frozen view's isolation. Failures print the seed; CCIFT_TEST_SEED
// replays one sequence.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ccift/internal/ckpt"
	"ccift/internal/storage"
	"ccift/internal/testseed"
)

const diffChunkSize = 512 // small chunks: every epoch spans many

type diffGob struct {
	A int
	B string
	C []float64
}

// liveVar is one registered variable, shared by pointer between both
// Savers. mutable is false for computed entries (read-only by contract).
type liveVar struct {
	name    string
	ptr     any
	mutable bool
}

// teeSection records the bytes flowing into a chunked writer so one
// WriteTo pass yields both the stream and the manifest.
type teeSection struct {
	w   *storage.ChunkedWriter
	buf bytes.Buffer
}

func (t *teeSection) Write(p []byte) (int, error) { t.buf.Write(p); return t.w.Write(p) }
func (t *teeSection) Cut() error                  { return t.w.Cut() }

type pendingWrite struct {
	epoch int
	want  []byte // the full freeze's bytes, captured synchronously
	done  chan error
	got   *teeSection
}

type diffDriver struct {
	t         *testing.T
	seed      int64
	rng       *rand.Rand
	inc, full *ckpt.Saver
	vars      []liveVar // VDS push order (pops are LIFO)
	heapIDs   []int
	nextName  int
	epoch     int
	psDepth   int
	storeInc  storage.Stable
	storeFull storage.Stable
	pending   *pendingWrite
}

func (d *diffDriver) fatalf(format string, args ...any) {
	d.t.Helper()
	d.t.Fatalf("seed %d: %s (replay with %s=%d)", d.seed, fmt.Sprintf(format, args...), testseed.Env, d.seed)
}

func (d *diffDriver) newSlice(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.rng.NormFloat64()
	}
	return xs
}

// sliceLen picks a value length: usually small, sometimes past the
// serializer's cut-over so large-value chunk isolation is exercised, and
// sometimes past the page-split threshold so the page-granular freeze
// path (including exact page-boundary geometries) is exercised.
func (d *diffDriver) sliceLen() int {
	switch d.rng.Intn(12) {
	case 0:
		return 600 + d.rng.Intn(700) // 4.8KB-10.4KB of floats: > cutover
	case 1:
		return 8192 + 1 + d.rng.Intn(20000) // paged: 2-4 pages of floats
	case 2:
		return 8192 * (1 + d.rng.Intn(3)) // exactly on a page boundary
	default:
		return d.rng.Intn(200)
	}
}

func (d *diffDriver) register() {
	name := fmt.Sprintf("v%d", d.nextName)
	d.nextName++
	v := liveVar{name: name, mutable: true}
	push := func(ptr any) {
		if err := d.inc.VDS.Push(name, ptr); err != nil {
			d.fatalf("inc push: %v", err)
		}
		if err := d.full.VDS.Push(name, ptr); err != nil {
			d.fatalf("full push: %v", err)
		}
	}
	switch d.rng.Intn(10) {
	case 0:
		p := new(int)
		*p = d.rng.Int()
		v.ptr = p
		push(p)
	case 1:
		p := new(float64)
		*p = d.rng.NormFloat64()
		v.ptr = p
		push(p)
	case 2:
		p := new(string)
		*p = fmt.Sprintf("s-%d", d.rng.Int63())
		v.ptr = p
		push(p)
	case 3:
		b := make([]byte, d.sliceLen()*8)
		d.rng.Read(b)
		v.ptr = &b
		push(&b)
	case 4:
		xs := make([]int, d.rng.Intn(50))
		for i := range xs {
			xs[i] = d.rng.Int()
		}
		v.ptr = &xs
		push(&xs)
	case 5:
		m := make([][]float64, d.rng.Intn(6))
		for i := range m {
			m[i] = d.newSlice(d.rng.Intn(40))
		}
		v.ptr = &m
		push(&m)
	case 6:
		g := &diffGob{A: d.rng.Int(), B: "g", C: d.newSlice(d.rng.Intn(20))}
		v.ptr = g
		push(g)
	case 7:
		xs := d.newSlice(d.sliceLen())
		v.ptr = &xs
		v.mutable = false // computed entries are read-only by contract
		rec := func() error { return nil }
		if err := d.inc.VDS.PushComputed(name, &xs, rec); err != nil {
			d.fatalf("inc push computed: %v", err)
		}
		if err := d.full.VDS.PushComputed(name, &xs, rec); err != nil {
			d.fatalf("full push computed: %v", err)
		}
	case 8:
		xs := d.newSlice(d.sliceLen())
		v.ptr = &xs
		if err := d.inc.VDS.PushReplicated(name, &xs); err != nil {
			d.fatalf("inc push replicated: %v", err)
		}
		if err := d.full.VDS.PushReplicated(name, &xs); err != nil {
			d.fatalf("full push replicated: %v", err)
		}
	default:
		xs := d.newSlice(d.sliceLen())
		v.ptr = &xs
		push(&xs)
	}
	d.vars = append(d.vars, v)
}

// touch records write intent on the incremental saver only — the point of
// the suite is that this alone keeps the two streams identical.
func (d *diffDriver) touch(name string) {
	if err := d.inc.VDS.Touch(name); err != nil {
		d.fatalf("touch %q: %v", name, err)
	}
}

// touchRange records ranged write intent on the incremental saver only;
// for paged values this is the page-granular contract under test.
func (d *diffDriver) touchRange(name string, off, n int) {
	if err := d.inc.VDS.TouchRange(name, off, n); err != nil {
		d.fatalf("touch range %q [%d,+%d): %v", name, off, n, err)
	}
}

// rangeWriteF64 mutates a contiguous element range of xs and records it
// with TouchRange. Span shapes deliberately include page-boundary
// straddles and sub-page slivers.
func (d *diffDriver) rangeWriteF64(name string, xs []float64) {
	if len(xs) == 0 {
		return
	}
	var off, n int
	switch d.rng.Intn(4) {
	case 0: // sub-page sliver anywhere
		off = d.rng.Intn(len(xs))
		n = 1 + d.rng.Intn(32)
	case 1: // straddle a page boundary when one exists
		if len(xs) > 8192 {
			b := 8192 * (1 + d.rng.Intn(len(xs)/8192))
			off = b - 8 - d.rng.Intn(16)
			n = 16 + d.rng.Intn(32)
		} else {
			off, n = 0, len(xs)
		}
	case 2: // exactly the tail page (possibly short)
		off = (len(xs) / 8192) * 8192
		n = len(xs) - off
		if n == 0 {
			off, n = 0, len(xs)
		}
	default: // a broad span over several pages
		off = d.rng.Intn(len(xs))
		n = 1 + d.rng.Intn(len(xs)-off)
	}
	lo, hi := off, off+n
	if lo < 0 {
		lo = 0
	}
	if hi > len(xs) {
		hi = len(xs)
	}
	for k := lo; k < hi; k++ {
		xs[k] = d.rng.NormFloat64()
	}
	d.touchRange(name, off, n)
}

func (d *diffDriver) mutate() {
	if len(d.vars) == 0 {
		return
	}
	v := d.vars[d.rng.Intn(len(d.vars))]
	if !v.mutable {
		return
	}
	switch p := v.ptr.(type) {
	case *int:
		*p += d.rng.Intn(100) // scalar: no Touch required
	case *float64:
		*p *= 1.0001
	case *string:
		*p = fmt.Sprintf("s-%d", d.rng.Int63())
	case *[]byte:
		if len(*p) > (64<<10) && d.rng.Intn(2) == 0 {
			// Paged bytes: ranged write intent on a byte range.
			off := d.rng.Intn(len(*p))
			n := 1 + d.rng.Intn(len(*p)-off)
			for k := off; k < off+n; k++ {
				(*p)[k] ^= 0xA5
			}
			d.touchRange(v.name, off, n)
			return
		}
		if len(*p) > 0 && d.rng.Intn(3) > 0 {
			(*p)[d.rng.Intn(len(*p))] ^= 0xA5
		} else if d.rng.Intn(2) == 0 {
			*p = append(*p, byte(d.rng.Intn(256)))
		} else if len(*p) > 0 {
			*p = (*p)[:len(*p)-1] // shrink: a resize the size formulas must track
		}
		d.touch(v.name)
	case *[]int:
		if len(*p) > 0 && d.rng.Intn(2) == 0 {
			(*p)[d.rng.Intn(len(*p))] = d.rng.Int()
		} else {
			*p = append(*p, d.rng.Int())
		}
		d.touch(v.name)
	case *[][]float64:
		if len(*p) > 0 && d.rng.Intn(2) == 0 {
			row := (*p)[d.rng.Intn(len(*p))]
			if len(row) > 0 {
				row[d.rng.Intn(len(row))] = d.rng.NormFloat64()
			}
		} else {
			*p = append(*p, d.newSlice(d.rng.Intn(30)))
		}
		d.touch(v.name)
	case *diffGob:
		p.A++
		if d.rng.Intn(3) == 0 {
			p.C = append(p.C, d.rng.NormFloat64())
		}
		d.touch(v.name)
	case *[]float64:
		switch d.rng.Intn(6) {
		case 0:
			*p = append(*p, d.rng.NormFloat64())
			d.touch(v.name) // resize: page record must be rebuilt
		case 1:
			if len(*p) > 0 {
				*p = (*p)[:len(*p)-1]
			}
			d.touch(v.name)
		case 2:
			// Whole-buffer swap, as apps do; sliceLen may carry the value
			// across the paging threshold in either direction.
			*p = d.newSlice(d.sliceLen())
			d.touch(v.name)
		case 3, 4:
			// Ranged write intent — on sub-threshold values TouchRange
			// degrades to Touch, so this also covers the degradation path.
			d.rangeWriteF64(v.name, *p)
		default:
			if len(*p) > 0 {
				(*p)[d.rng.Intn(len(*p))] = d.rng.NormFloat64()
			}
			d.touch(v.name)
		}
	}
}

func (d *diffDriver) unregister() {
	if len(d.vars) <= 1 {
		return
	}
	d.inc.VDS.Pop()
	d.full.VDS.Pop()
	d.vars = d.vars[:len(d.vars)-1]
}

// rebind re-registers a live name with a fresh value, the implicit-dirty
// path (a function re-entering and re-registering its locals).
func (d *diffDriver) rebind() {
	if len(d.vars) == 0 {
		return
	}
	i := d.rng.Intn(len(d.vars))
	v := &d.vars[i]
	if !v.mutable {
		return
	}
	if _, ok := v.ptr.(*[]float64); !ok {
		return
	}
	xs := d.newSlice(d.sliceLen())
	v.ptr = &xs
	if err := d.inc.VDS.Push(v.name, &xs); err != nil {
		d.fatalf("inc rebind: %v", err)
	}
	if err := d.full.VDS.Push(v.name, &xs); err != nil {
		d.fatalf("full rebind: %v", err)
	}
}

func (d *diffDriver) heapAlloc() {
	n := d.rng.Intn(300)
	if d.rng.Intn(8) == 0 {
		n = 4096 + d.rng.Intn(4096) // past the cut-over
	}
	bi := d.inc.Heap.Alloc(n)
	bf := d.full.Heap.Alloc(n)
	if bi.ID != bf.ID {
		d.fatalf("heap ids diverged: %d vs %d", bi.ID, bf.ID)
	}
	d.rng.Read(bi.Data)
	copy(bf.Data, bi.Data)
	d.heapIDs = append(d.heapIDs, bi.ID)
}

func (d *diffDriver) heapWrite() {
	if len(d.heapIDs) == 0 {
		return
	}
	id := d.heapIDs[d.rng.Intn(len(d.heapIDs))]
	bi, bf := d.inc.Heap.Lookup(id), d.full.Heap.Lookup(id)
	if len(bi.Data) > 0 {
		j := d.rng.Intn(len(bi.Data))
		bi.Data[j] ^= 0x5A
		bf.Data[j] ^= 0x5A
	}
	d.inc.Heap.Touch(id) // incremental side only: the contract under test
}

func (d *diffDriver) heapRealloc() {
	if len(d.heapIDs) == 0 {
		return
	}
	id := d.heapIDs[d.rng.Intn(len(d.heapIDs))]
	n := d.rng.Intn(500)
	d.inc.Heap.Realloc(id, n)
	d.full.Heap.Realloc(id, n)
}

func (d *diffDriver) heapFree() {
	if len(d.heapIDs) == 0 {
		return
	}
	i := d.rng.Intn(len(d.heapIDs))
	id := d.heapIDs[i]
	d.inc.Heap.Free(id)
	d.full.Heap.Free(id)
	d.heapIDs = append(d.heapIDs[:i], d.heapIDs[i+1:]...)
}

func (d *diffDriver) psOp() {
	if d.psDepth > 0 && d.rng.Intn(2) == 0 {
		d.inc.PS.Pop()
		d.full.PS.Pop()
		d.psDepth--
		return
	}
	l := d.rng.Intn(64)
	d.inc.PS.Push(l)
	d.full.PS.Push(l)
	d.psDepth++
}

// checkpoint freezes both savers at the same instant, captures the full
// freeze's bytes synchronously (ground truth), then serializes the
// incremental view on a background goroutine — the protocol's flusher —
// while the caller keeps mutating. join() verifies bytes and manifests.
func (d *diffDriver) checkpoint() {
	d.join()
	d.epoch++
	key := fmt.Sprintf("state-%d", d.epoch)

	ff, err := d.full.Freeze()
	if err != nil {
		d.fatalf("full freeze: %v", err)
	}
	fullTee := &teeSection{w: storage.NewChunkedWriter(nil, d.storeFull, key, diffChunkSize)}
	if err := ff.WriteTo(fullTee); err != nil {
		d.fatalf("full WriteTo: %v", err)
	}
	if _, _, err := fullTee.w.Commit(); err != nil {
		d.fatalf("full commit: %v", err)
	}
	ff.Release()

	fi, err := d.inc.Freeze()
	if err != nil {
		d.fatalf("incremental freeze: %v", err)
	}
	p := &pendingWrite{
		epoch: d.epoch,
		want:  append([]byte(nil), fullTee.buf.Bytes()...),
		done:  make(chan error, 1),
		got:   &teeSection{w: storage.NewChunkedWriter(nil, d.storeInc, key, diffChunkSize)},
	}
	go func() {
		// The flusher's life: serialize the frozen view, commit, release —
		// while the driver goroutine mutates live state underneath.
		defer fi.Release()
		if err := fi.WriteTo(p.got); err != nil {
			p.done <- err
			return
		}
		_, _, err := p.got.w.Commit()
		p.done <- err
	}()
	d.pending = p
}

func (d *diffDriver) join() {
	p := d.pending
	if p == nil {
		return
	}
	d.pending = nil
	if err := <-p.done; err != nil {
		d.fatalf("epoch %d: incremental write: %v", p.epoch, err)
	}
	if !bytes.Equal(p.got.buf.Bytes(), p.want) {
		d.fatalf("epoch %d: incremental WriteTo produced %d bytes != full freeze's %d — streams diverged",
			p.epoch, p.got.buf.Len(), len(p.want))
	}
	key := fmt.Sprintf("state-%d", p.epoch)
	mi, err := d.storeInc.Get(key)
	if err != nil {
		d.fatalf("epoch %d: read incremental manifest: %v", p.epoch, err)
	}
	mf, err := d.storeFull.Get(key)
	if err != nil {
		d.fatalf("epoch %d: read full manifest: %v", p.epoch, err)
	}
	if !bytes.Equal(mi, mf) {
		d.fatalf("epoch %d: chunk manifests differ (%d vs %d bytes)", p.epoch, len(mi), len(mf))
	}
}

func runDifferentialSequence(t *testing.T, seed int64) {
	d := &diffDriver{
		t:         t,
		seed:      seed,
		rng:       rand.New(rand.NewSource(seed)),
		inc:       ckpt.NewSaver(),
		full:      ckpt.NewSaver(),
		storeInc:  storage.NewMemory(),
		storeFull: storage.NewMemory(),
	}
	d.inc.Incremental = true
	primary := d.rng.Intn(2) == 0
	d.inc.VDS.Primary = primary
	d.full.VDS.Primary = primary

	// Seed a little state so the first checkpoint is never trivial.
	d.register()
	d.heapAlloc()

	ops := 16 + d.rng.Intn(24)
	for i := 0; i < ops; i++ {
		switch d.rng.Intn(12) {
		case 0:
			d.register()
		case 1, 2, 3:
			d.mutate()
		case 4:
			d.unregister()
		case 5:
			d.rebind()
		case 6:
			d.heapAlloc()
		case 7:
			d.heapWrite()
		case 8:
			d.heapRealloc()
		case 9:
			d.heapFree()
		case 10:
			d.psOp()
		default:
			d.checkpoint()
		}
	}
	d.checkpoint() // every sequence ends with at least one epoch...
	d.checkpoint() // ...and one epoch that can share the previous one
	d.join()
}

// TestIncrementalDifferential is the acceptance suite: >= 1000 seeded
// sequences, each asserting byte-identical WriteTo output and matching
// chunk manifests between incremental and full freezes. -short runs a
// reduced sample (the CI race job's ./... pass); the dedicated CI step
// runs the full depth.
func TestIncrementalDifferential(t *testing.T) {
	sequences := 1000
	if testing.Short() {
		sequences = 200
	}
	base := testseed.Base(t, 0x5EED_C31F)
	if testseed.Replaying() {
		runDifferentialSequence(t, base)
		return
	}
	for i := 0; i < sequences; i++ {
		runDifferentialSequence(t, base+int64(i))
	}
}
