package ckpt

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Checkpoint freezing: the blocking half of the asynchronous checkpoint
// pipeline. Saver.Freeze copies the live application state (PS trace, VDS
// values, heap blocks) into an immutable Frozen view — raw memcopies, no
// encoding — so the rank is stopped only for the duration of the copy.
// Serialization (Frozen.WriteTo / Frozen.Snapshot) then runs against the
// frozen view, typically on a background flusher goroutine, while the rank
// computes on. The serialized byte stream is identical to Saver.Snapshot's,
// so restore is oblivious to which path produced a checkpoint.
//
// With Saver.Incremental set, Freeze goes one step further: a region (VDS
// variable or heap block) whose write clock has not moved since the
// previous Freeze is not copied at all — the new Frozen re-references the
// previous epoch's frozen copy, so a mostly-clean epoch blocks the rank
// for O(dirty bytes) instead of O(state). The sharing is what the slab
// refcounts below exist for: Frozen.Release must not hand a buffer back to
// the pool while a newer epoch's view (or the Saver's own retention of the
// last frozen state) still reads it. Scalar values are exempt from the
// tracking — their copies are a few bytes, and loop counters legitimately
// change every iteration without a Touch, so dirty-tracking them would
// trade a free copy for a stale-counter hazard.

// SectionWriter is the sink Frozen.WriteTo streams into. Cut marks a
// dedup-friendly boundary: a chunked writer closes its current chunk there,
// so an unchanged variable re-serialized in a later epoch hashes to the
// same chunks regardless of what changed before it in the stream.
type SectionWriter interface {
	io.Writer
	Cut() error
}

// nopSection adapts a plain buffer (Cut is meaningless without chunking).
type nopSection struct{ *bytes.Buffer }

func (nopSection) Cut() error { return nil }

// cutoverBytes is the value size above which WriteTo isolates an entry or
// heap block between Cuts, giving it its own chunk run in chunked storage.
const cutoverBytes = 4096

// fingerprintSize is the encoded size of a computed entry's record (16
// bytes of FNV-128a; see fingerprint in exclude.go).
const fingerprintSize = 16

// bufPool recycles the large slabs ([]float64 grids, []byte heap blocks)
// of released Frozen views. The protocol admits one outstanding checkpoint
// at a time, so in steady state every epoch's Freeze reuses the previous
// epoch's warm, already-faulted pages — the epoch-buffered flavor of
// copy-on-write — and the blocking phase shrinks to a plain memcpy. The
// mutex makes get (rank goroutine, during Freeze) safe against put
// (flusher goroutine, after the durable write).
type bufPool struct {
	mu  sync.Mutex
	f64 [][]float64
	byt [][]byte
}

// poolKeep bounds retained slabs per type; beyond it a released buffer is
// simply dropped for the GC. Page-granular freezing recycles one slab per
// dirty 64KB page rather than one per variable, so the bound is sized for
// a 16MB grid's worth of pages (256) — the retained set is still capped by
// the live state's own size, since a slab is only pooled when no frozen
// view references it.
const poolKeep = 256

func (p *bufPool) getF64(n int) []float64 {
	p.mu.Lock()
	for i, b := range p.f64 {
		if cap(b) >= n {
			p.f64[i] = p.f64[len(p.f64)-1]
			p.f64 = p.f64[:len(p.f64)-1]
			p.mu.Unlock()
			return b[:n]
		}
	}
	p.mu.Unlock()
	return make([]float64, n)
}

func (p *bufPool) putF64(b []float64) {
	if cap(b) == 0 {
		return
	}
	p.mu.Lock()
	if len(p.f64) < poolKeep {
		p.f64 = append(p.f64, b)
	}
	p.mu.Unlock()
}

func (p *bufPool) getBytes(n int) []byte {
	p.mu.Lock()
	for i, b := range p.byt {
		if cap(b) >= n {
			p.byt[i] = p.byt[len(p.byt)-1]
			p.byt = p.byt[:len(p.byt)-1]
			p.mu.Unlock()
			return b[:n]
		}
	}
	p.mu.Unlock()
	return make([]byte, n)
}

func (p *bufPool) putBytes(b []byte) {
	if cap(b) == 0 {
		return
	}
	p.mu.Lock()
	if len(p.byt) < poolKeep {
		p.byt = append(p.byt, b)
	}
	p.mu.Unlock()
}

// slab is one pooled frozen buffer. Incremental freezes share clean
// regions between consecutive Frozen views (and the Saver's retention of
// the last frozen epoch), so the buffer returns to the pool only when the
// LAST holder releases it. refs is atomic because a Frozen is released on
// the flusher goroutine while the rank goroutine retains and releases
// during Freeze.
type slab struct {
	refs atomic.Int32
	// Exactly one of f64/byt is non-nil: the pooled buffer this slab owns.
	f64 []float64
	byt []byte
}

func newF64Slab(pool *bufPool, n int) *slab {
	sl := &slab{f64: pool.getF64(n)}
	sl.refs.Store(1)
	return sl
}

func newByteSlab(pool *bufPool, n int) *slab {
	sl := &slab{byt: pool.getBytes(n)}
	sl.refs.Store(1)
	return sl
}

func (sl *slab) retain() { sl.refs.Add(1) }

func (sl *slab) release(pool *bufPool) {
	switch n := sl.refs.Add(-1); {
	case n == 0:
		if sl.f64 != nil {
			pool.putF64(sl.f64)
		} else {
			pool.putBytes(sl.byt)
		}
	case n < 0:
		panic("ckpt: frozen slab over-released")
	}
}

// Frozen is an immutable snapshot of a Saver's state, produced by Freeze.
// It owns every byte it references: mutating the live application after
// Freeze does not affect it. (Under incremental freeze "owns" is shared
// ownership: clean regions reference the previous epoch's slabs, kept
// alive by their refcounts.)
type Frozen struct {
	trace []int
	vds   []frozenEntry
	heap  frozenHeap

	// Copy accounting for the epoch's Stats: bytes memcopied into this
	// view, and how many of the regions (VDS entries + heap blocks) were
	// captured rather than re-referenced.
	copied  int64
	dirty   int
	regions int

	pool     *bufPool // origin Saver's slab pool; nil for pool-less freezes
	released bool
}

type frozenEntry struct {
	name string
	kind entryKind
	// Exactly one of enc/ptr/pages holds the value: enc is a pre-encoded
	// record (gob fallback, computed fingerprint), ptr an owned deep copy
	// of a fast-path value (encoded lazily at write time), pages the
	// page-granular capture of a large slice. All nil is the zero-length
	// replicated marker of a non-primary rank.
	enc  []byte
	ptr  any
	size int // encoded value size (the writeBytes payload length)
	// gen is the live entry's write-clock stamp at capture; slab is the
	// refcounted pool buffer behind ptr for the pooled types (nil for
	// non-pooled copies, which the GC manages).
	gen  uint64
	slab *slab
	// pages is the page-granular form of a large *[]float64 / *[]byte
	// value: fixed pageBytes pages (the last one short), each owning its
	// refcounted slab, so an incremental Freeze shares clean pages across
	// epochs exactly as heap blocks are shared. elems is the value's
	// element count (floats or bytes); concatenating the page views in
	// order yields the identical payload a whole-value capture encodes.
	pages []frozenPage
	elems int
}

// frozenPage is one page of a page-granular frozenEntry. Exactly one of
// f64/byt is non-nil: the page's view into its slab's buffer.
type frozenPage struct {
	gen  uint64
	slab *slab
	f64  []float64
	byt  []byte
}

// retainSlabs takes one reference on every pooled slab behind the entry
// (the whole-value slab or each page's), for a holder that will outlive
// the Frozen the entry was captured into.
func (fe *frozenEntry) retainSlabs() {
	if fe.slab != nil {
		fe.slab.retain()
	}
	for i := range fe.pages {
		if sl := fe.pages[i].slab; sl != nil {
			sl.retain()
		}
	}
}

// releaseSlabs drops one reference on every pooled slab behind the entry.
func (fe *frozenEntry) releaseSlabs(pool *bufPool) {
	if fe.slab != nil {
		fe.slab.release(pool)
	}
	for i := range fe.pages {
		if sl := fe.pages[i].slab; sl != nil {
			sl.release(pool)
		}
	}
}

type frozenHeap struct {
	next   int
	blocks []frozenBlock // sorted by id
}

type frozenBlock struct {
	id   int
	data []byte
	gen  uint64
	slab *slab
}

// Freeze captures an immutable snapshot of the Saver's current state. The
// cost is one copy of the live bytes (plus immediate encoding for values
// outside the codec's fast paths and fingerprinting for computed entries);
// no serialization or storage I/O happens here. With s.Incremental set,
// regions untouched since the previous Freeze are re-referenced from it
// instead of copied — see the Touch contract on VDS.Touch and Heap.Touch.
func (s *Saver) Freeze() (*Frozen, error) {
	f := &Frozen{trace: s.PS.Snapshot(), pool: &s.pool}
	var prevVDS map[string]frozenEntry
	var prevHeap map[int]frozenBlock
	if s.Incremental {
		prevVDS, prevHeap = s.lastVDS, s.lastHeap
	}
	vds, err := s.VDS.freeze(&s.pool, prevVDS, f)
	if err != nil {
		return nil, err
	}
	f.vds = vds
	f.heap = s.Heap.freeze(&s.pool, prevHeap, f)
	if s.Incremental {
		s.retainFrozen(f)
	}
	return f, nil
}

// CopyStats reports what Freeze actually moved: the bytes memcopied into
// the view, and how many of its regions (VDS entries + heap blocks) were
// captured rather than re-referenced from the previous epoch. For a full
// freeze every region is captured; the gap between bytesCopied here and
// StateBytes is the incremental win.
func (f *Frozen) CopyStats() (bytesCopied int64, regionsDirty, regions int) {
	return f.copied, f.dirty, f.regions
}

// retainFrozen replaces the Saver's record of the last frozen epoch with
// f's regions, taking a retention reference on every pooled slab so the
// buffers survive f's Release for the next epoch's Freeze to share.
func (s *Saver) retainFrozen(f *Frozen) {
	s.dropRetained()
	s.lastVDS = make(map[string]frozenEntry, len(f.vds))
	for _, fe := range f.vds {
		fe.retainSlabs()
		s.lastVDS[fe.name] = fe
	}
	s.lastHeap = make(map[int]frozenBlock, len(f.heap.blocks))
	for _, fb := range f.heap.blocks {
		if fb.slab != nil {
			fb.slab.retain()
		}
		s.lastHeap[fb.id] = fb
	}
}

// dropRetained releases the Saver's retention references on the last
// frozen epoch's slabs (retainFrozen's replacement path, and StartRestore:
// restored live state shares no history with any previous freeze).
func (s *Saver) dropRetained() {
	for _, fe := range s.lastVDS {
		fe.releaseSlabs(&s.pool)
	}
	for _, fb := range s.lastHeap {
		if fb.slab != nil {
			fb.slab.release(&s.pool)
		}
	}
	s.lastVDS, s.lastHeap = nil, nil
}

// Release returns the frozen view's large slabs to the originating Saver's
// pool, so the next epoch's Freeze reuses them. Callers invoke it once the
// serialized bytes are durable (or the flush has been abandoned); the
// Frozen must not be read afterwards. Safe on nil and idempotent. A slab
// shared with a newer epoch's view (incremental freeze) is refcounted and
// survives until its last holder releases it.
func (f *Frozen) Release() {
	if f == nil || f.pool == nil || f.released {
		return
	}
	f.released = true
	for i := range f.vds {
		f.vds[i].releaseSlabs(f.pool)
		f.vds[i].ptr, f.vds[i].enc, f.vds[i].slab, f.vds[i].pages = nil, nil, nil, nil
	}
	for i := range f.heap.blocks {
		if sl := f.heap.blocks[i].slab; sl != nil {
			sl.release(f.pool)
		}
		f.heap.blocks[i].data, f.heap.blocks[i].slab = nil, nil
	}
}

// scalarPtr reports whether ptr is one of the always-recaptured scalar
// types. Their copies are a few bytes, and counters legitimately change
// every iteration without a Touch, so dirty-tracking them would trade a
// free copy for a stale-state hazard.
func scalarPtr(ptr any) bool {
	switch ptr.(type) {
	case *int, *int64, *uint64, *float64, *bool, *string:
		return true
	}
	return false
}

// freeze captures the VDS section into f. With a non-nil prev map
// (incremental mode), a non-scalar entry whose write-clock stamp matches
// the previous epoch's capture is re-referenced instead of copied; a large
// pageable entry that misses that fast path is captured page by page, each
// page shared with the previous epoch when its own stamp matches.
func (v *VDS) freeze(pool *bufPool, prev map[string]frozenEntry, f *Frozen) ([]frozenEntry, error) {
	out := make([]frozenEntry, 0, len(v.entries))
	for i := range v.entries {
		e := &v.entries[i]
		paged, elems, perPage, isF64 := pageGeometry(e.kind, v.Primary, e.ptr)
		numPages := 0
		if paged {
			numPages = (elems + perPage - 1) / perPage
			f.regions += numPages
		} else {
			f.regions++
		}
		var pe *frozenEntry
		if prev != nil && !scalarPtr(e.ptr) {
			if p, ok := prev[e.name]; ok && p.kind == e.kind {
				if p.gen == e.gen {
					p.retainSlabs()
					out = append(out, p)
					continue
				}
				pe = &p
			}
		}
		if paged {
			fe := capturePaged(e, pe, elems, perPage, numPages, isF64, pool, f)
			out = append(out, fe)
			continue
		}
		fe := frozenEntry{name: e.name, kind: e.kind, gen: e.gen}
		switch e.kind {
		case kindSaved:
			if err := fe.captureValue(e.ptr, e.name, pool); err != nil {
				return nil, err
			}
		case kindComputed:
			sum, err := fingerprint(e.ptr)
			if err != nil {
				return nil, fmt.Errorf("ckpt: fingerprint %q: %w", e.name, err)
			}
			fe.enc, fe.size = sum, len(sum)
		case kindReplicated:
			if v.Primary {
				if err := fe.captureValue(e.ptr, e.name, pool); err != nil {
					return nil, err
				}
			}
			// Non-primary: the zero-length marker (enc and ptr both nil).
		default:
			return nil, fmt.Errorf("ckpt: entry %q has invalid kind %d", e.name, e.kind)
		}
		f.dirty++
		f.copied += int64(fe.size)
		out = append(out, fe)
	}
	return out, nil
}

// capturePaged freezes a large slice value as pageBytes pages. A page
// whose write-clock stamp matches the previous epoch's capture of the
// same page (same element count, so identical page geometry) re-references
// that capture's slab; every other page is copied into a fresh slab. prev
// is nil on a full freeze — then every page copies.
func capturePaged(e *vdsEntry, prev *frozenEntry, elems, perPage, numPages int, isF64 bool, pool *bufPool, f *Frozen) frozenEntry {
	fe := frozenEntry{name: e.name, kind: e.kind, gen: e.gen, elems: elems}
	if isF64 {
		fe.size = 1 + uvarintLen(uint64(elems)) + 8*elems
	} else {
		fe.size = 1 + uvarintLen(uint64(elems)) + elems
	}
	gens := e.pageGens(elems, numPages)
	// Page sharing needs the previous capture to have the identical page
	// geometry AND payload type; a resize or type rebind bumps the entry
	// gen anyway, but the shape check keeps the index math honest.
	sharable := prev != nil && prev.pages != nil && prev.elems == elems &&
		len(prev.pages) == numPages && (prev.pages[0].f64 != nil) == isF64
	fe.pages = make([]frozenPage, numPages)
	for p := 0; p < numPages; p++ {
		lo := p * perPage
		hi := lo + perPage
		if hi > elems {
			hi = elems
		}
		if sharable && prev.pages[p].gen == gens[p] {
			pg := prev.pages[p]
			if pg.slab != nil {
				pg.slab.retain()
			}
			fe.pages[p] = pg
			continue
		}
		pg := frozenPage{gen: gens[p]}
		if isF64 {
			src := (*e.ptr.(*[]float64))[lo:hi]
			pg.slab = newF64Slab(pool, len(src))
			copy(pg.slab.f64, src)
			pg.f64 = pg.slab.f64
			f.copied += int64(8 * len(src))
		} else {
			src := (*e.ptr.(*[]byte))[lo:hi]
			pg.slab = newByteSlab(pool, len(src))
			copy(pg.slab.byt, src)
			pg.byt = pg.slab.byt
			f.copied += int64(len(src))
		}
		fe.pages[p] = pg
		f.dirty++
	}
	return fe
}

func (fe *frozenEntry) captureValue(ptr any, name string, pool *bufPool) error {
	if owned, sl, size, ok := copyValue(ptr, pool); ok {
		fe.ptr, fe.slab, fe.size = owned, sl, size
		return nil
	}
	raw, err := Encode(ptr)
	if err != nil {
		return fmt.Errorf("ckpt: encode %q: %w", name, err)
	}
	fe.enc, fe.size = raw, len(raw)
	return nil
}

// freeze captures the heap section into f, sharing clean blocks from the
// previous epoch's capture exactly as VDS.freeze shares clean entries.
func (h *Heap) freeze(pool *bufPool, prev map[int]frozenBlock, f *Frozen) frozenHeap {
	blocks := make([]frozenBlock, 0, len(h.blocks))
	for id, b := range h.blocks {
		f.regions++
		if prev != nil {
			if pb, ok := prev[id]; ok && pb.gen == b.gen {
				pb.slab.retain()
				blocks = append(blocks, pb)
				continue
			}
		}
		sl := newByteSlab(pool, len(b.Data))
		copy(sl.byt, b.Data)
		blocks = append(blocks, frozenBlock{id: id, data: sl.byt, gen: b.gen, slab: sl})
		f.dirty++
		f.copied += int64(len(b.Data))
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].id < blocks[j].id })
	return frozenHeap{next: h.nextID, blocks: blocks}
}

// copyValue returns an owned deep copy of the pointed-to value together
// with its encoded size, for the codec's fast-path types. ok is false for
// types that need the gob fallback (those are encoded at freeze time).
// The large slab types draw their copies from pool and report the
// refcounted slab that owns the buffer; Frozen.Release returns it for the
// next epoch once the last sharer is done.
func copyValue(ptr any, pool *bufPool) (owned any, sl *slab, size int, ok bool) {
	switch p := ptr.(type) {
	case *int:
		v := *p
		return &v, nil, 9, true
	case *int64:
		v := *p
		return &v, nil, 9, true
	case *uint64:
		v := *p
		return &v, nil, 9, true
	case *float64:
		v := *p
		return &v, nil, 9, true
	case *bool:
		v := *p
		return &v, nil, 2, true
	case *string:
		v := *p // strings are immutable; sharing is a safe copy
		return &v, nil, 1 + uvarintLen(uint64(len(v))) + len(v), true
	case *[]byte:
		sl := newByteSlab(pool, len(*p))
		copy(sl.byt, *p)
		return &sl.byt, sl, 1 + uvarintLen(uint64(len(sl.byt))) + len(sl.byt), true
	case *[]float64:
		sl := newF64Slab(pool, len(*p))
		copy(sl.f64, *p)
		return &sl.f64, sl, 1 + uvarintLen(uint64(len(sl.f64))) + 8*len(sl.f64), true
	case *[]int:
		cp := append([]int(nil), *p...)
		return &cp, nil, 1 + uvarintLen(uint64(len(cp))) + 8*len(cp), true
	case *[]int64:
		cp := append([]int64(nil), *p...)
		return &cp, nil, 1 + uvarintLen(uint64(len(cp))) + 8*len(cp), true
	case *[][]float64:
		cp := make([][]float64, len(*p))
		size := 1 + uvarintLen(uint64(len(cp)))
		for i, row := range *p {
			cp[i] = append([]float64(nil), row...)
			size += uvarintLen(uint64(len(row))) + 8*len(row)
		}
		return &cp, nil, size, true
	}
	return nil, nil, 0, false
}

// encodedSize computes len(Encode(ptr)) without copying or encoding for
// fast-path types; ok is false when only a real encode can tell.
func encodedSize(ptr any) (int, bool) {
	switch p := ptr.(type) {
	case *int, *int64, *uint64, *float64:
		return 9, true
	case *bool:
		return 2, true
	case *string:
		return 1 + uvarintLen(uint64(len(*p))) + len(*p), true
	case *[]byte:
		return 1 + uvarintLen(uint64(len(*p))) + len(*p), true
	case *[]float64:
		return 1 + uvarintLen(uint64(len(*p))) + 8*len(*p), true
	case *[]int:
		return 1 + uvarintLen(uint64(len(*p))) + 8*len(*p), true
	case *[]int64:
		return 1 + uvarintLen(uint64(len(*p))) + 8*len(*p), true
	case *[][]float64:
		size := 1 + uvarintLen(uint64(len(*p)))
		for _, row := range *p {
			size += uvarintLen(uint64(len(row))) + 8*len(row)
		}
		return size, true
	}
	return 0, false
}

// --- serialization against the frozen view ---

// Snapshot serializes the frozen state into one blob, byte-identical to
// what Saver.Snapshot would have produced at freeze time.
func (f *Frozen) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(f.StateBytes())
	if err := f.WriteTo(nopSection{&buf}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// StateBytes reports the exact serialized size of the frozen state.
func (f *Frozen) StateBytes() int {
	vds := f.vdsSectionSize()
	heap := f.heap.sectionSize()
	return psSectionSize(f.trace) + uvarintLen(uint64(vds)) + vds + uvarintLen(uint64(heap)) + heap
}

func (f *Frozen) vdsSectionSize() int {
	size := uvarintLen(uint64(len(f.vds)))
	for _, e := range f.vds {
		size += entryOverhead(e.name, e.size) + e.size
	}
	return size
}

// entryOverhead is the framing around one VDS entry's value: name, kind
// byte, value length prefix.
func entryOverhead(name string, valueSize int) int {
	return uvarintLen(uint64(len(name))) + len(name) + 1 + uvarintLen(uint64(valueSize))
}

func (fh frozenHeap) sectionSize() int {
	size := uvarintLen(uint64(fh.next)) + uvarintLen(uint64(len(fh.blocks)))
	for _, b := range fh.blocks {
		size += uvarintLen(uint64(b.id)) + uvarintLen(uint64(len(b.data))) + len(b.data)
	}
	return size
}

func psSectionSize(trace []int) int {
	size := uvarintLen(uint64(len(trace)))
	for _, l := range trace {
		size += uvarintLen(uint64(l))
	}
	return size
}

// WriteTo streams the frozen state into w, producing the same bytes as
// Snapshot. Cut is called at section boundaries and around every value
// larger than cutoverBytes, so a chunked SectionWriter dedups unchanged
// variables and heap blocks across epochs.
func (f *Frozen) WriteTo(w SectionWriter) error {
	var scratch bytes.Buffer

	// PS section.
	writeUvarint(&scratch, uint64(len(f.trace)))
	for _, l := range f.trace {
		writeUvarint(&scratch, uint64(l))
	}
	if err := flushScratch(w, &scratch); err != nil {
		return err
	}
	if err := w.Cut(); err != nil {
		return err
	}

	// VDS section (framed, then entry stream).
	writeUvarint(&scratch, uint64(f.vdsSectionSize()))
	writeUvarint(&scratch, uint64(len(f.vds)))
	for _, e := range f.vds {
		writeString(&scratch, e.name)
		scratch.WriteByte(byte(e.kind))
		writeUvarint(&scratch, uint64(e.size))
		if err := flushScratch(w, &scratch); err != nil {
			return err
		}
		big := e.size >= cutoverBytes
		if big {
			if err := w.Cut(); err != nil {
				return err
			}
		}
		// Every value byte flows through cw: the stream frames the value
		// with e.size, so a drift between the size formulas
		// (copyValue/encodedSize) and the codec's actual output must fail
		// the write here — never surface as a corrupt blob at restore,
		// when the state needed to recover is already gone.
		cw := &countingSection{w: w}
		if err := e.writeValue(cw, &scratch); err != nil {
			return err
		}
		if cw.n != e.size {
			return fmt.Errorf("ckpt: entry %q serialized to %d bytes, size formula says %d", e.name, cw.n, e.size)
		}
		if big {
			if err := w.Cut(); err != nil {
				return err
			}
		}
	}
	if err := flushScratch(w, &scratch); err != nil {
		return err
	}
	if err := w.Cut(); err != nil {
		return err
	}

	// Heap section (framed, then block stream).
	writeUvarint(&scratch, uint64(f.heap.sectionSize()))
	writeUvarint(&scratch, uint64(f.heap.next))
	writeUvarint(&scratch, uint64(len(f.heap.blocks)))
	for _, b := range f.heap.blocks {
		writeUvarint(&scratch, uint64(b.id))
		writeUvarint(&scratch, uint64(len(b.data)))
		if len(b.data) >= cutoverBytes {
			// Stream big blocks straight into w (as the VDS float path
			// does): buffering through scratch would cost a full extra
			// memcpy and pin a block-sized scratch for the rest of the walk.
			if err := flushScratch(w, &scratch); err != nil {
				return err
			}
			if err := w.Cut(); err != nil {
				return err
			}
			if _, err := w.Write(b.data); err != nil {
				return err
			}
			if err := w.Cut(); err != nil {
				return err
			}
			continue
		}
		scratch.Write(b.data)
		if err := flushScratch(w, &scratch); err != nil {
			return err
		}
	}
	return flushScratch(w, &scratch)
}

// writeValue encodes the entry's value (exactly e.size bytes) into w,
// buffering small pieces through scratch.
func (e *frozenEntry) writeValue(w SectionWriter, scratch *bytes.Buffer) error {
	if e.enc != nil {
		scratch.Write(e.enc)
		return flushScratch(w, scratch)
	}
	if e.pages != nil {
		// Page-granular capture: tag + element count, then the raw page
		// payloads in order — byte-identical to encoding the whole slice,
		// so storage, dedup and restore never see the page structure.
		if e.pages[0].f64 != nil {
			scratch.WriteByte(tagFloat64Slice)
		} else {
			scratch.WriteByte(tagBytes)
		}
		writeUvarint(scratch, uint64(e.elems))
		if err := flushScratch(w, scratch); err != nil {
			return err
		}
		for i := range e.pages {
			if pg := &e.pages[i]; pg.f64 != nil {
				if err := writeFloat64sRawTo(w, pg.f64); err != nil {
					return err
				}
			} else {
				if _, err := w.Write(pg.byt); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if e.ptr == nil {
		return nil // replicated marker: zero bytes
	}
	// Stream the float fast path directly (the dominant payload); encode
	// everything else through scratch — those values are small.
	if p, ok := e.ptr.(*[]float64); ok {
		scratch.WriteByte(tagFloat64Slice)
		if err := flushScratch(w, scratch); err != nil {
			return err
		}
		return writeFloat64sTo(w, *p)
	}
	if err := EncodeTo(scratch, e.ptr); err != nil {
		return err
	}
	return flushScratch(w, scratch)
}

// countingSection counts the bytes written through it; WriteTo verifies
// each VDS value against its precomputed size with one.
type countingSection struct {
	w SectionWriter
	n int
}

func (c *countingSection) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += n
	return n, err
}

func (c *countingSection) Cut() error { return c.w.Cut() }

func flushScratch(w io.Writer, scratch *bytes.Buffer) error {
	if scratch.Len() == 0 {
		return nil
	}
	_, err := w.Write(scratch.Bytes())
	scratch.Reset()
	return err
}

// uvarintLen reports the encoded length of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
