package ckpt

import (
	"bytes"
	"fmt"
)

// Freeze cross-checking: the debug mode guarding incremental-by-default.
// A program that mutates a registered non-scalar without a Touch (or
// TouchRange) never corrupts a FULL freeze — only the incremental path
// trusts the write clock — so a missing Touch is invisible until a
// recovery restores stale state. VerifyFrozen makes the violation loud at
// the checkpoint that commits it: called immediately after Freeze, while
// the rank is still blocked and the live state is exactly what the frozen
// view claims to be, it re-encodes every live variable and heap block and
// compares against what the frozen view will serialize. Any divergence
// means the view re-referenced a stale region, and the error names the
// variable (or block) so the missing Touch is a one-line fix.

// VerifyFrozen compares a freshly captured Frozen view against the
// Saver's live state, byte for byte. It must run directly after Freeze,
// before the application mutates anything — the protocol layer calls it
// inside the blocking window when cross-checking is enabled. The first
// mismatch is returned as an error naming the stale variable or heap
// block. Cost is one full encode of the live state per call, so this is
// a debug mode, not a production default.
func (s *Saver) VerifyFrozen(f *Frozen) error {
	for i := range f.vds {
		fe := &f.vds[i]
		idx, ok := s.VDS.index[fe.name]
		if !ok {
			return fmt.Errorf("ckpt: freeze cross-check: frozen variable %q is not live", fe.name)
		}
		e := s.VDS.entries[idx]
		var want []byte
		var err error
		switch e.kind {
		case kindComputed:
			want, err = fingerprint(e.ptr)
		case kindReplicated:
			if !s.VDS.Primary {
				continue // zero-length marker on both sides
			}
			want, err = Encode(e.ptr)
		default:
			want, err = Encode(e.ptr)
		}
		if err != nil {
			return fmt.Errorf("ckpt: freeze cross-check: encode live %q: %w", fe.name, err)
		}
		var got, scratch bytes.Buffer
		got.Grow(fe.size)
		if err := fe.writeValue(nopSection{&got}, &scratch); err != nil {
			return fmt.Errorf("ckpt: freeze cross-check: serialize frozen %q: %w", fe.name, err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			return fmt.Errorf("ckpt: freeze cross-check: variable %q: the frozen copy differs from the live value — "+
				"a write since the last checkpoint was not followed by Touch/TouchRange(%q)", fe.name, fe.name)
		}
	}
	for i := range f.heap.blocks {
		fb := &f.heap.blocks[i]
		b, ok := s.Heap.blocks[fb.id]
		if !ok {
			return fmt.Errorf("ckpt: freeze cross-check: frozen heap block %d is not live", fb.id)
		}
		if !bytes.Equal(fb.data, b.Data) {
			return fmt.Errorf("ckpt: freeze cross-check: heap block %d: the frozen copy differs from the live data — "+
				"a write since the last checkpoint was not followed by Heap.Touch(%d)", fb.id, fb.id)
		}
	}
	return nil
}
