package ckpt

import (
	"strings"
	"testing"
)

func TestComputedEntrySavesOnlyFingerprint(t *testing.T) {
	v := NewVDS()
	big := make([]float64, 1<<16)
	for i := range big {
		big[i] = float64(i)
	}
	if err := v.PushComputed("big", &big, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	snap, err := v.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) > 128 {
		t.Fatalf("computed snapshot is %d bytes; should be a fingerprint, not the data", len(snap))
	}
}

func TestComputedRestoreRecomputesAndVerifies(t *testing.T) {
	fill := func(dst []float64) {
		for i := range dst {
			dst[i] = float64(i) * 1.5
		}
	}
	v := NewVDS()
	data := make([]float64, 1024)
	fill(data)
	if err := v.PushComputed("data", &data, func() error { fill(data); return nil }); err != nil {
		t.Fatal(err)
	}
	snap, err := v.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Restart: the value is regenerated, not decoded.
	v2 := NewVDS()
	if err := v2.StartRestore(snap); err != nil {
		t.Fatal(err)
	}
	data2 := make([]float64, 1024)
	ran := false
	err = v2.PushComputed("data", &data2, func() error { ran = true; fill(data2); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("recompute did not run on restore")
	}
	if v2.PendingRestores() != 0 {
		t.Fatal("restore not consumed")
	}
	for i := range data2 {
		if data2[i] != float64(i)*1.5 {
			t.Fatalf("data2[%d] = %v", i, data2[i])
		}
	}
}

func TestComputedRestoreDetectsWrongRecomputation(t *testing.T) {
	v := NewVDS()
	x := 42
	if err := v.PushComputed("x", &x, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	snap, err := v.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	v2 := NewVDS()
	if err := v2.StartRestore(snap); err != nil {
		t.Fatal(err)
	}
	var y int
	err = v2.PushComputed("x", &y, func() error { y = 7; return nil }) // wrong value
	if err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("err = %v, want fingerprint mismatch", err)
	}
}

func TestReplicatedSavedOnPrimaryOnly(t *testing.T) {
	mk := func(primary bool) []byte {
		v := NewVDS()
		v.Primary = primary
		tbl := []float64{1, 2, 3, 4}
		if err := v.PushReplicated("tbl", &tbl); err != nil {
			t.Fatal(err)
		}
		snap, err := v.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	primarySnap, otherSnap := mk(true), mk(false)
	if len(primarySnap) <= len(otherSnap) {
		t.Fatalf("primary snapshot (%dB) should carry the data the others (%dB) omit",
			len(primarySnap), len(otherSnap))
	}
}

func TestReplicatedRestoreThroughReplicaMap(t *testing.T) {
	// The primary rank's Saver snapshot carries the value; the recovery
	// driver extracts it from exactly this format.
	sp := NewSaver()
	sp.VDS.Primary = true
	tbl := []float64{10, 20, 30}
	if err := sp.VDS.PushReplicated("tbl", &tbl); err != nil {
		t.Fatal(err)
	}
	primaryBlob, err := sp.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	replicas, err := ExtractReplicated(primaryBlob)
	if err != nil {
		t.Fatal(err)
	}
	if len(replicas) != 1 {
		t.Fatalf("replicas = %v", replicas)
	}

	// A non-primary rank's snapshot carries only the marker; restore pulls
	// the value from the distributed replica map.
	vo := NewVDS()
	tblO := []float64{10, 20, 30}
	if err := vo.PushReplicated("tbl", &tblO); err != nil {
		t.Fatal(err)
	}
	otherSnap, err := vo.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	v2 := NewVDS()
	if err := v2.StartRestore(otherSnap); err != nil {
		t.Fatal(err)
	}
	v2.SetReplicas(replicas)
	var got []float64
	if err := v2.PushReplicated("tbl", &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[2] != 30 {
		t.Fatalf("got %v", got)
	}
}

func TestReplicatedRestoreWithoutReplicaFails(t *testing.T) {
	vo := NewVDS()
	tbl := []float64{1}
	if err := vo.PushReplicated("tbl", &tbl); err != nil {
		t.Fatal(err)
	}
	snap, err := vo.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	v2 := NewVDS()
	if err := v2.StartRestore(snap); err != nil {
		t.Fatal(err)
	}
	var got []float64
	err = v2.PushReplicated("tbl", &got)
	if err == nil || !strings.Contains(err.Error(), "no replica") {
		t.Fatalf("err = %v, want no-replica error", err)
	}
}

func TestKindMismatchDetected(t *testing.T) {
	v := NewVDS()
	x := 1
	if err := v.Push("x", &x); err != nil {
		t.Fatal(err)
	}
	snap, err := v.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	v2 := NewVDS()
	if err := v2.StartRestore(snap); err != nil {
		t.Fatal(err)
	}
	var y int
	if err := v2.PushComputed("x", &y, func() error { return nil }); err == nil {
		t.Fatal("saved entry restored as computed should fail")
	}
}
