package ckpt

import (
	"bytes"
	"fmt"
)

// Saver bundles the three state-saving structures of Section 5.1 — the
// Position Stack, the Variable Descriptor Stack, and the heap/HOS — and
// serializes them as the application-state section of a local checkpoint.
type Saver struct {
	PS   *PositionStack
	VDS  *VDS
	Heap *Heap

	// Incremental enables dirty-region freezing: Freeze copies only the
	// regions (VDS variables, heap blocks) touched since the previous
	// Freeze and re-references the prior epoch's frozen slabs for the
	// clean ones. It requires the write-intent contract — every mutation
	// of a registered non-scalar value or heap block must be followed by
	// VDS.Touch / Heap.Touch before the next checkpoint; registration,
	// resize and unregister dirty implicitly — and must be set before the
	// first Freeze. The serialized bytes are identical to a full freeze's,
	// so storage and recovery are oblivious.
	Incremental bool

	// pool recycles the slabs of released Frozen views across epochs, so
	// a steady-state Freeze costs one memcpy into warm pages instead of a
	// fresh multi-megabyte allocation plus its page faults (see freeze.go).
	pool bufPool

	// lastVDS/lastHeap retain the previous Freeze's regions (with slab
	// retention references) so an incremental Freeze can re-reference the
	// clean ones even after that epoch's Frozen has been released.
	lastVDS  map[string]frozenEntry
	lastHeap map[int]frozenBlock
}

// NewSaver returns a Saver with fresh, empty components.
func NewSaver() *Saver {
	return &Saver{PS: NewPositionStack(), VDS: NewVDS(), Heap: NewHeap()}
}

// Snapshot serializes position, variables and heap.
func (s *Saver) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	trace := s.PS.Snapshot()
	writeUvarint(&buf, uint64(len(trace)))
	for _, l := range trace {
		writeUvarint(&buf, uint64(l))
	}
	vds, err := s.VDS.Snapshot()
	if err != nil {
		return nil, err
	}
	writeBytes(&buf, vds)
	heap, err := s.Heap.Snapshot()
	if err != nil {
		return nil, err
	}
	writeBytes(&buf, heap)
	return buf.Bytes(), nil
}

// StateBytes reports the exact size of the application state a checkpoint
// would currently save. Figure 8 annotates each problem size with this
// number — per data point, so it is computed from component sizes rather
// than by serializing the whole state: O(descriptors), not O(bytes).
// (Only values outside the codec's fast paths need a real encode to be
// sized.)
func (s *Saver) StateBytes() (int, error) {
	vds, err := s.VDS.sectionSize()
	if err != nil {
		return 0, err
	}
	heap := s.Heap.sectionSize()
	ps := psSectionSize(s.PS.labels)
	return ps + uvarintLen(uint64(vds)) + vds + uvarintLen(uint64(heap)) + heap, nil
}

// StartRestore loads a snapshot and arms the PS resume cursor and the VDS
// restore map; the heap is restored immediately (its handles must resolve
// before the application re-executes).
func (s *Saver) StartRestore(blob []byte) error {
	// Restored live state shares no history with any previous freeze: the
	// retained regions are stale and must never be re-referenced.
	s.dropRetained()
	rd := bytes.NewReader(blob)
	n, err := readUvarint(rd)
	if err != nil {
		return fmt.Errorf("ckpt: corrupt state snapshot: %w", err)
	}
	trace := make([]int, n)
	for i := range trace {
		l, err := readUvarint(rd)
		if err != nil {
			return fmt.Errorf("ckpt: corrupt state snapshot: %w", err)
		}
		trace[i] = int(l)
	}
	s.PS.StartResume(trace)
	vds, err := readBytes(rd)
	if err != nil {
		return fmt.Errorf("ckpt: corrupt state snapshot: %w", err)
	}
	if err := s.VDS.StartRestore(vds); err != nil {
		return err
	}
	heap, err := readBytes(rd)
	if err != nil {
		return fmt.Errorf("ckpt: corrupt state snapshot: %w", err)
	}
	return s.Heap.Restore(heap)
}
