package ckpt

import (
	"bytes"
	"strings"
	"testing"
)

// Page-granular dirty tracking: a large registered slice freezes as fixed
// pageBytes pages, each with its own write-clock stamp, so a TouchRange
// copies only the covered pages and re-references the rest from the
// previous epoch's frozen slabs.

const pagedElems = 4 * 8192 // 4 full pages of float64 (256 KB)

func pagedSaverPair(t *testing.T) (inc, full *Saver, grid []float64) {
	t.Helper()
	inc, full = NewSaver(), NewSaver()
	inc.Incremental = true
	grid = make([]float64, pagedElems)
	for i := range grid {
		grid[i] = float64(i)
	}
	var it int
	for _, s := range []*Saver{inc, full} {
		if err := s.VDS.Push("it", &it); err != nil {
			t.Fatal(err)
		}
		if err := s.VDS.Push("grid", &grid); err != nil {
			t.Fatal(err)
		}
	}
	return inc, full, grid
}

func freezeBytes(t *testing.T, s *Saver) (*Frozen, []byte) {
	t.Helper()
	f, err := s.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteTo(nopSection{&buf}); err != nil {
		t.Fatal(err)
	}
	return f, buf.Bytes()
}

func TestPagedFreezeSharesCleanPages(t *testing.T) {
	inc, full, grid := pagedSaverPair(t)

	f1, b1 := freezeBytes(t, inc)
	g1, w1 := freezeBytes(t, full)
	if !bytes.Equal(b1, w1) {
		t.Fatal("first (cold) incremental freeze differs from full freeze")
	}
	copied1, _, _ := f1.CopyStats()
	f1.Release()
	g1.Release()

	// Dirty one interior page only.
	for i := 8192; i < 8192+100; i++ {
		grid[i] *= 2
	}
	if err := inc.VDS.TouchRange("grid", 8192, 100); err != nil {
		t.Fatal(err)
	}
	if err := full.VDS.Touch("grid"); err != nil { // full freeze ignores gens anyway
		t.Fatal(err)
	}

	f2, b2 := freezeBytes(t, inc)
	g2, w2 := freezeBytes(t, full)
	defer f2.Release()
	defer g2.Release()
	if !bytes.Equal(b2, w2) {
		t.Fatal("paged incremental freeze stream differs from full freeze")
	}
	copied2, dirty2, regions2 := f2.CopyStats()
	if copied2*2 >= copied1 {
		t.Fatalf("one dirty page of four copied %d bytes vs cold freeze's %d; pages did not share", copied2, copied1)
	}
	if dirty2 >= regions2 {
		t.Fatalf("all %d regions dirty; page sharing never happened", regions2)
	}
}

// TestPagedDroppedTouchGoesStale is the suite's own mutation test: writing
// into a clean page WITHOUT TouchRange must reproduce the stale previous
// value in the next incremental freeze — the exact defect the 1000-seed
// differential suite (and the FreezeCrossCheck mode) exists to catch. If
// page-gen bookkeeping ever started copying everything regardless of
// stamps, this test would fail and reveal the suite had lost its teeth.
func TestPagedDroppedTouchGoesStale(t *testing.T) {
	inc, full, grid := pagedSaverPair(t)
	f1, _ := freezeBytes(t, inc)
	f1.Release()

	grid[2*8192+7] = -1 // page 2 write, deliberately not recorded

	f2, got := freezeBytes(t, inc)
	defer f2.Release()
	g2, want := freezeBytes(t, full)
	g2.Release()
	if bytes.Equal(got, want) {
		t.Fatal("incremental freeze saw an untouched write; page-gen sharing is not actually happening")
	}

	// The cross-check mode must turn exactly this silent staleness into a
	// loud error that names the variable and the missing call.
	err := inc.VerifyFrozen(f2)
	if err == nil {
		t.Fatal("VerifyFrozen accepted a stale frozen page")
	}
	if !strings.Contains(err.Error(), `"grid"`) || !strings.Contains(err.Error(), "Touch") {
		t.Fatalf("cross-check error should name the variable and the Touch contract, got: %v", err)
	}
}

func TestVerifyFrozenCleanPasses(t *testing.T) {
	inc, _, grid := pagedSaverPair(t)
	f1, _ := freezeBytes(t, inc)
	f1.Release()

	for i := 100; i < 300; i++ {
		grid[i] += 1
	}
	if err := inc.VDS.TouchRange("grid", 100, 200); err != nil {
		t.Fatal(err)
	}
	f2, _ := freezeBytes(t, inc)
	defer f2.Release()
	if err := inc.VerifyFrozen(f2); err != nil {
		t.Fatalf("cross-check rejected a correctly touched freeze: %v", err)
	}
}

func TestVerifyFrozenHeapNamesBlock(t *testing.T) {
	s := NewSaver()
	s.Incremental = true
	b := s.Heap.Alloc(4096)
	for i := range b.Data {
		b.Data[i] = byte(i)
	}
	f1, err := s.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	f1.Release()

	b.Data[17] ^= 0xFF // no Heap.Touch

	f2, err := s.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Release()
	verr := s.VerifyFrozen(f2)
	if verr == nil {
		t.Fatal("VerifyFrozen accepted a stale heap block")
	}
	if !strings.Contains(verr.Error(), "Heap.Touch") {
		t.Fatalf("cross-check error should point at Heap.Touch, got: %v", verr)
	}
}

// TestPagedResizeRebuildsPageRecord pins the resize rule: growing or
// shrinking a paged value invalidates the page record, and a full Touch
// after the resize is sufficient for a correct (fully recopied) freeze.
func TestPagedResizeRebuildsPageRecord(t *testing.T) {
	inc, full, grid := pagedSaverPair(t)
	if err := inc.VDS.TouchRange("grid", 0, 10); err != nil { // build page record
		t.Fatal(err)
	}
	f1, _ := freezeBytes(t, inc)
	f1.Release()

	grid = append(grid, 1, 2, 3) // threshold-side resize; stale backing possible
	for _, s := range []*Saver{inc, full} {
		if err := s.VDS.Push("grid", &grid); err != nil { // rebind, as re-entering code does
			t.Fatal(err)
		}
	}
	f2, got := freezeBytes(t, inc)
	defer f2.Release()
	g2, want := freezeBytes(t, full)
	g2.Release()
	if !bytes.Equal(got, want) {
		t.Fatal("rebound paged value froze stale after resize")
	}
	if err := inc.VerifyFrozen(f2); err != nil {
		t.Fatalf("cross-check after paged rebind: %v", err)
	}
}
