package ckpt

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestHeapRealloc covers growth in place, growth with reallocation, and
// shrinking, all preserving the handle and prefix contents.
func TestHeapRealloc(t *testing.T) {
	h := NewHeap()
	b := h.Alloc(4)
	copy(b.Data, "abcd")

	b2 := h.Realloc(b.ID, 8) // grow
	if b2.ID != b.ID || string(b2.Data[:4]) != "abcd" {
		t.Fatalf("grow lost identity or prefix: %q", b2.Data)
	}
	for _, c := range b2.Data[4:] {
		if c != 0 {
			t.Fatal("grown region not zeroed")
		}
	}
	if h.LiveBytes() != 8 {
		t.Fatalf("liveBytes = %d", h.LiveBytes())
	}

	b3 := h.Realloc(b.ID, 2) // shrink
	if string(b3.Data) != "ab" || h.LiveBytes() != 2 {
		t.Fatalf("shrink: %q, %d bytes", b3.Data, h.LiveBytes())
	}

	// Shrink then regrow within capacity must re-zero the re-exposed
	// region, not leak stale bytes.
	b4 := h.Realloc(b.ID, 4)
	if string(b4.Data[:2]) != "ab" || b4.Data[2] != 0 || b4.Data[3] != 0 {
		t.Fatalf("regrow leaked stale bytes: %q", b4.Data)
	}
}

func TestHeapReallocUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHeap().Realloc(42, 8)
}

// TestHeapRandomOpsSnapshotRestore drives random alloc/free/realloc/write
// sequences and checks that snapshot+restore reproduces exact contents,
// handles, and byte accounting.
func TestHeapRandomOpsSnapshotRestore(t *testing.T) {
	f := func(ops []uint16) bool {
		h := NewHeap()
		var live []int
		for _, op := range ops {
			kind := op % 4
			arg := int(op/4) % 64
			switch {
			case kind == 0 || len(live) == 0: // alloc
				b := h.Alloc(arg + 1)
				for i := range b.Data {
					b.Data[i] = byte(op + uint16(i))
				}
				live = append(live, b.ID)
			case kind == 1: // free
				idx := arg % len(live)
				h.Free(live[idx])
				live = append(live[:idx], live[idx+1:]...)
			case kind == 2: // realloc
				idx := arg % len(live)
				h.Realloc(live[idx], arg*2+1)
			default: // write
				idx := arg % len(live)
				b := h.Lookup(live[idx])
				if len(b.Data) > 0 {
					b.Data[arg%len(b.Data)] = byte(op)
				}
			}
		}

		snap, err := h.Snapshot()
		if err != nil {
			return false
		}
		h2 := NewHeap()
		if err := h2.Restore(snap); err != nil {
			return false
		}
		if h2.Live() != h.Live() || h2.LiveBytes() != h.LiveBytes() {
			return false
		}
		for _, id := range live {
			a, b := h.Lookup(id), h2.Lookup(id)
			if b == nil || !bytes.Equal(a.Data, b.Data) {
				return false
			}
		}
		// Handle allocation continues without collisions after restore.
		nb := h2.Alloc(1)
		if h2.Lookup(nb.ID) != nb {
			return false
		}
		for _, id := range live {
			if id == nb.ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
