// Package cerr is the root error taxonomy of ccift: a small set of
// sentinel categories that every error escaping the public Launch (or the
// c3admin store API) wraps exactly once. Internal packages wrap their
// failures with the matching sentinel at the point the cause is known —
// spec validation wraps ErrSpec, checkpoint-store I/O wraps ErrStore, the
// process/TCP substrate wraps ErrTransport, and so on — so callers
// dispatch with errors.Is against the public aliases in package ccift
// instead of string-matching messages.
//
// The package sits below every other internal package (it imports only the
// standard library), mirroring the centralized-errors pattern: sentinels
// live in one leaf package, everything above wraps, nothing redefines.
package cerr

import (
	"errors"
	"fmt"
)

// The sentinel categories. Every error returned by ccift.Launch matches
// exactly one of these via errors.Is; the public package re-exports them
// one-to-one (ccift.ErrCanceled = cerr.ErrCanceled, ...).
var (
	// ErrCanceled: the run's context was canceled or its deadline expired.
	// The context's own error (context.Canceled / DeadlineExceeded) remains
	// reachable through the same chain.
	ErrCanceled = errors.New("ccift: run canceled")
	// ErrWorldDead: a rank died and the world cannot be rolled back — e.g.
	// a stop failure in a protocol mode that takes no recoverable
	// checkpoints.
	ErrWorldDead = errors.New("ccift: world died with no recoverable checkpoint")
	// ErrMaxRestarts: the failure schedule (or real failures) exhausted the
	// restart budget.
	ErrMaxRestarts = errors.New("ccift: restart budget exhausted")
	// ErrSpec: the run specification is invalid (bad ranks, conflicting
	// options, substrate-incompatible settings).
	ErrSpec = errors.New("ccift: invalid run specification")
	// ErrStore: the stable checkpoint store failed (I/O error, torn commit
	// record, unreadable state blob).
	ErrStore = errors.New("ccift: checkpoint store failure")
	// ErrTransport: the wire substrate failed (mesh formation, rendezvous,
	// worker spawn).
	ErrTransport = errors.New("ccift: transport failure")
	// ErrProgram: the application program returned an error or panicked.
	ErrProgram = errors.New("ccift: program failed")
)

// sentinels is the closed category set, in the priority order used when a
// multi-rank failure must be summarized by one category (first match wins).
var sentinels = []error{
	ErrSpec,
	ErrStore,
	ErrTransport,
	ErrWorldDead,
	ErrMaxRestarts,
	ErrCanceled,
	ErrProgram,
}

// Category returns the taxonomy sentinel err wraps, or nil when err is nil
// or uncategorized. CLIs use it for exit-code mapping; boundary code uses
// it to avoid double-wrapping an already-categorized error.
func Category(err error) error {
	if err == nil {
		return nil
	}
	for _, s := range sentinels {
		if errors.Is(err, s) {
			return s
		}
	}
	return nil
}

// Ensure wraps err with the fallback sentinel unless it already carries a
// category. It is the boundary net: interior code wraps specifically, and
// the few paths that can surface arbitrary errors (a program's own return
// value, a panic payload) call Ensure(err, ErrProgram) so nothing escapes
// uncategorized.
func Ensure(err, fallback error) error {
	if err == nil || Category(err) != nil {
		return err
	}
	return fmt.Errorf("%w: %w", fallback, err)
}

// Process exit codes shared by the launch worker protocol and the CLIs
// (c3run, c3launch, c3admin). A worker classifies its failure with
// Category and exits with the matching code; the launcher maps the code
// back to the sentinel, so the category survives the process boundary.
const (
	CodeOK          = 0
	CodeProgram     = 1 // also: any uncategorized failure
	CodeSpec        = 2 // doubles as the usage exit code, per CLI convention
	CodeRollback    = 3 // launch-internal: incarnation died, re-spawn me
	CodeStore       = 4
	CodeTransport   = 5
	CodeMaxRestarts = 6
	CodeCanceled    = 7
	CodeWorldDead   = 8
)

// ExitCode maps an error to the process exit code of its category
// (CodeOK for nil, CodeProgram for uncategorized errors).
func ExitCode(err error) int {
	switch Category(err) {
	case nil:
		if err == nil {
			return CodeOK
		}
		return CodeProgram
	case ErrSpec:
		return CodeSpec
	case ErrStore:
		return CodeStore
	case ErrTransport:
		return CodeTransport
	case ErrMaxRestarts:
		return CodeMaxRestarts
	case ErrCanceled:
		return CodeCanceled
	case ErrWorldDead:
		return CodeWorldDead
	default:
		return CodeProgram
	}
}

// FromExitCode maps a worker's exit code back to its category sentinel;
// nil for CodeOK, CodeRollback, and codes this version does not know
// (future workers may grow new ones — an unknown code degrades to nil and
// the caller falls back to its generic classification).
func FromExitCode(code int) error {
	switch code {
	case CodeSpec:
		return ErrSpec
	case CodeStore:
		return ErrStore
	case CodeTransport:
		return ErrTransport
	case CodeMaxRestarts:
		return ErrMaxRestarts
	case CodeCanceled:
		return ErrCanceled
	case CodeWorldDead:
		return ErrWorldDead
	case CodeProgram:
		return ErrProgram
	default:
		return nil
	}
}
