package cerr

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestCategoryExactlyOne(t *testing.T) {
	cases := []error{
		fmt.Errorf("engine: %w: Ranks must be positive", ErrSpec),
		fmt.Errorf("%w: %w", ErrCanceled, context.DeadlineExceeded),
		fmt.Errorf("launch: %w (10)", ErrMaxRestarts),
		fmt.Errorf("storage: %w: open commit record", ErrStore),
		fmt.Errorf("tcptransport: %w: mesh formation timed out", ErrTransport),
		fmt.Errorf("engine: %w: cannot recover in mode piggyback-only", ErrWorldDead),
		Ensure(errors.New("user code exploded"), ErrProgram),
	}
	for _, err := range cases {
		n := 0
		for _, s := range sentinels {
			if errors.Is(err, s) {
				n++
			}
		}
		if n != 1 {
			t.Errorf("%v matches %d sentinels, want exactly 1", err, n)
		}
	}
}

func TestEnsureKeepsExistingCategory(t *testing.T) {
	inner := fmt.Errorf("x: %w", ErrStore)
	if got := Ensure(inner, ErrProgram); !errors.Is(got, ErrStore) || errors.Is(got, ErrProgram) {
		t.Fatalf("Ensure rewrapped a categorized error: %v", got)
	}
	if got := Ensure(nil, ErrProgram); got != nil {
		t.Fatalf("Ensure(nil) = %v", got)
	}
}

func TestExitCodeRoundTrip(t *testing.T) {
	for _, s := range sentinels {
		code := ExitCode(fmt.Errorf("wrapped: %w", s))
		if back := FromExitCode(code); back != s {
			t.Errorf("sentinel %v -> code %d -> %v", s, code, back)
		}
	}
	if ExitCode(nil) != CodeOK {
		t.Errorf("ExitCode(nil) = %d", ExitCode(nil))
	}
	if ExitCode(errors.New("mystery")) != CodeProgram {
		t.Errorf("uncategorized error should exit CodeProgram")
	}
	if FromExitCode(CodeRollback) != nil || FromExitCode(99) != nil {
		t.Errorf("rollback/unknown codes must not map to a category")
	}
}
