// Package neurosys implements the Neurosys benchmark of the paper's
// evaluation (Section 6.1): a neuron-network simulator in which neurons
// excite and inhibit each other via their connections, integrated with the
// Runge-Kutta method; the program is parallelized by assigning each
// processor a block of neurons, and communication consists of 5
// MPI_Allgathers and 1 MPI_Gather per loop iteration — the pattern that
// makes the protocol's control collectives visible at small problem sizes.
package neurosys

import (
	"fmt"
	"math"

	"ccift/internal/engine"
	"ccift/internal/mpi"
)

// Params selects the problem.
type Params struct {
	// K is the neuron-grid edge; the network has K×K neurons (the paper
	// ran 16×16 through 128×128).
	K int
	// Iters is the number of RK4 time steps (the paper ran 3000).
	Iters int
	// Dt is the integration step.
	Dt float64
}

// StateBytesPerRank estimates per-process application state.
func (p Params) StateBytesPerRank(ranks int) int {
	n := p.K * p.K
	return 8 * (n / ranks) * 6
}

// Program builds the simulator. Every rank returns the same checksum of
// the final membrane potentials.
func Program(p Params) engine.Program {
	if p.Dt == 0 {
		p.Dt = 0.01
	}
	return func(r *engine.Rank) (any, error) {
		n := p.K * p.K
		ranks := r.Size()
		if n%ranks != 0 {
			return nil, fmt.Errorf("neurosys: %d neurons not divisible by %d ranks", n, ranks)
		}
		local := n / ranks
		lo := r.Rank() * local

		var it int
		v := make([]float64, local)     // membrane potentials (owned block)
		drive := make([]float64, local) // external drive current
		r.Register("it", &it)
		r.Register("v", &v)
		r.Register("drive", &drive)

		if !r.Restarting() {
			for i := range v {
				gi := lo + i
				v[i] = 0.5 * math.Sin(float64(gi)*0.7)
				drive[i] = 0.2 + 0.1*math.Cos(float64(gi)*1.3)
			}
		}

		// dv/dt for the owned block given the full network state: each
		// neuron couples to its four grid neighbours, excited by even
		// neighbours and inhibited by odd ones.
		deriv := func(full []float64, vLoc, out []float64) {
			for i := range vLoc {
				gi := lo + i
				x, y := gi%p.K, gi/p.K
				syn := 0.0
				for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nx, ny := x+d[0], y+d[1]
					if nx < 0 || nx >= p.K || ny < 0 || ny >= p.K {
						continue
					}
					ni := ny*p.K + nx
					w := 0.3
					if ni%2 == 1 {
						w = -0.2
					}
					syn += w * math.Tanh(full[ni])
				}
				out[i] = -vLoc[i] + syn + drive[i]
			}
		}

		k1 := make([]float64, local)
		k2 := make([]float64, local)
		k3 := make([]float64, local)
		k4 := make([]float64, local)
		tmp := make([]float64, local)

		axpy := func(dst, a []float64, h float64, b []float64) {
			for i := range dst {
				dst[i] = a[i] + h*b[i]
			}
		}

		for ; it < p.Iters; it++ {
			r.PotentialCheckpoint()

			// RK4: each stage gathers the full network state (4
			// allgathers) …
			full := r.AllgatherF64(v)
			deriv(full, v, k1)
			axpy(tmp, v, p.Dt/2, k1)
			full = r.AllgatherF64(tmp)
			deriv(full, tmp, k2)
			axpy(tmp, v, p.Dt/2, k2)
			full = r.AllgatherF64(tmp)
			deriv(full, tmp, k3)
			axpy(tmp, v, p.Dt, k3)
			full = r.AllgatherF64(tmp)
			deriv(full, tmp, k4)
			for i := range v {
				v[i] += p.Dt / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
			}
			// Write intent for incremental freeze: only the membrane block
			// changes per step (drive is read-only after initialization).
			r.Touch("v")
			// … a fifth allgather publishes the updated state, and the
			// root gathers per-block activity statistics.
			full = r.AllgatherF64(v)
			act := 0.0
			for _, x := range full[lo : lo+local] {
				act += math.Abs(x)
			}
			_ = r.GatherF64(0, []float64{act})
		}

		sum := 0.0
		norm := 0.0
		for _, x := range v {
			sum += x
			norm += x * x
		}
		g := r.AllreduceF64([]float64{sum, norm}, mpi.SumF64)
		return fmt.Sprintf("%.9f/%.9f", g[0], g[1]), nil
	}
}
