package neurosys

import (
	"reflect"
	"testing"

	"ccift/internal/engine"
	"ccift/internal/protocol"
)

func run(t *testing.T, cfg engine.Config, p Params) []any {
	t.Helper()
	res, err := engine.Run(cfg, Program(p))
	if err != nil {
		t.Fatal(err)
	}
	return res.Values
}

func TestNeurosysRanksAgree(t *testing.T) {
	p := Params{K: 8, Iters: 20}
	vals := run(t, engine.Config{Ranks: 4, Mode: protocol.Unmodified}, p)
	for i, v := range vals {
		if v != vals[0] {
			t.Fatalf("rank %d checksum %v != %v", i, v, vals[0])
		}
	}
}

func TestNeurosysRankCountInvariance(t *testing.T) {
	p := Params{K: 8, Iters: 15}
	a := run(t, engine.Config{Ranks: 1, Mode: protocol.Unmodified}, p)[0]
	b := run(t, engine.Config{Ranks: 4, Mode: protocol.Unmodified}, p)[0]
	if a != b {
		t.Fatalf("checksum differs across rank counts: %v vs %v", a, b)
	}
}

func TestNeurosysDynamicsEvolve(t *testing.T) {
	a := run(t, engine.Config{Ranks: 2, Mode: protocol.Unmodified}, Params{K: 4, Iters: 1})[0]
	b := run(t, engine.Config{Ranks: 2, Mode: protocol.Unmodified}, Params{K: 4, Iters: 40})[0]
	if a == b {
		t.Fatal("network state did not evolve")
	}
}

func TestNeurosysModesAgree(t *testing.T) {
	p := Params{K: 8, Iters: 12}
	ref := run(t, engine.Config{Ranks: 4, Mode: protocol.Unmodified}, p)
	for _, mode := range []protocol.Mode{protocol.PiggybackOnly, protocol.NoAppState, protocol.Full} {
		got := run(t, engine.Config{Ranks: 4, Mode: mode, EveryN: 4}, p)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("%v: %v != %v", mode, got, ref)
		}
	}
}

func TestNeurosysRecovery(t *testing.T) {
	// Six collectives per iteration: failures land inside the collective
	// replay machinery.
	p := Params{K: 8, Iters: 12}
	ref := run(t, engine.Config{Ranks: 4, Mode: protocol.Unmodified}, p)
	for _, atOp := range []int64{10, 23, 37, 52, 71} {
		cfg := engine.Config{
			Ranks: 4, Mode: protocol.Full, EveryN: 3, Debug: true,
			Failures: []engine.Failure{{Rank: int(atOp % 4), AtOp: atOp, Incarnation: 0}},
		}
		got := run(t, cfg, p)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("atOp=%d: %v != %v", atOp, got, ref)
		}
	}
}

func TestCommunicationPattern(t *testing.T) {
	// The paper counts 5 allgathers and 1 gather per iteration; verify via
	// the protocol's control-collective statistics (each data collective
	// runs exactly one control allgather, plus the final checksum
	// allreduce).
	iters := 7
	res, err := engine.Run(engine.Config{Ranks: 2, Mode: protocol.PiggybackOnly},
		Program(Params{K: 4, Iters: iters}))
	if err != nil {
		t.Fatal(err)
	}
	want := int64(iters*6 + 1)
	for r, s := range res.Stats {
		if s.ControlCollectives != want {
			t.Fatalf("rank %d: %d control collectives, want %d", r, s.ControlCollectives, want)
		}
	}
}
