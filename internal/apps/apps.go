// Package apps registers the benchmark applications by name, so every
// driver — the in-process c3run, the distributed c3launch, tests — builds
// programs from one table instead of each keeping its own copy.
package apps

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ccift/internal/apps/cg"
	"ccift/internal/apps/laplace"
	"ccift/internal/apps/neurosys"
	"ccift/internal/cerr"
	"ccift/internal/engine"
)

// Names lists the registered applications.
func Names() []string { return []string{"cg", "laplace", "neurosys"} }

// Fail is the drivers' shared error exit: it reports err on stderr with a
// hint for the taxonomy category it matches, then exits with the
// category's conventional exit code (the ccift.ExitCode mapping), so
// shell scripts dispatch on $? the way Go code uses errors.Is.
func Fail(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	switch {
	case errors.Is(err, cerr.ErrMaxRestarts):
		fmt.Fprintf(os.Stderr, "%s: the failure schedule exhausted the restart budget (raise -max-restarts?)\n", tool)
	case errors.Is(err, cerr.ErrCanceled):
		fmt.Fprintf(os.Stderr, "%s: the run was canceled before completing\n", tool)
	case errors.Is(err, cerr.ErrWorldDead):
		fmt.Fprintf(os.Stderr, "%s: a rank died with no recoverable checkpoint to roll back to\n", tool)
	case errors.Is(err, cerr.ErrStore):
		fmt.Fprintf(os.Stderr, "%s: the checkpoint store failed underneath the run\n", tool)
	case errors.Is(err, cerr.ErrTransport):
		fmt.Fprintf(os.Stderr, "%s: the wire substrate failed (spawn, mesh formation, rendezvous)\n", tool)
	}
	os.Exit(cerr.ExitCode(err))
}

// KillFlag parses the drivers' repeatable -kill rank@op flags into a
// failure schedule; the i-th flag applies to incarnation i, so a sequence
// of flags exercises recovery from recovery.
type KillFlag []engine.Failure

func (k *KillFlag) String() string { return fmt.Sprint(*k) }

// Set parses one rank@op spec.
func (k *KillFlag) Set(v string) error {
	rank, op, ok := strings.Cut(v, "@")
	if !ok {
		return fmt.Errorf("want rank@op, got %q", v)
	}
	r, err := strconv.Atoi(rank)
	if err != nil {
		return err
	}
	o, err := strconv.ParseInt(op, 10, 64)
	if err != nil {
		return err
	}
	*k = append(*k, engine.Failure{Rank: r, AtOp: o, Incarnation: len(*k)})
	return nil
}

// ResolveTrigger applies the drivers' shared checkpoint-trigger policy:
// an explicit -every and -interval are mutually exclusive (matching the
// spec validation, instead of silently preferring one), and when neither
// is given the op-count trigger defaults to every 25 calls.
func ResolveTrigger(every int, interval time.Duration) (int, time.Duration, error) {
	if every > 0 && interval > 0 {
		return 0, 0, fmt.Errorf("-every (%d) and -interval (%v) are mutually exclusive checkpoint triggers; pick one", every, interval)
	}
	if every == 0 && interval == 0 {
		return 25, 0, nil
	}
	return every, interval, nil
}

// HumanBytes renders a byte count for the drivers' headers.
func HumanBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Summary renders the run epilogue both driver CLIs print: elapsed time,
// restart count, per-restart recovery provenance, and the first rank's
// result value.
func Summary(values []any, restarts int, recovered []int, elapsed time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "completed in %.2fs with %d restart(s)\n", elapsed.Seconds(), restarts)
	for i, e := range recovered {
		if e < 0 {
			fmt.Fprintf(&b, "  restart %d: no committed checkpoint yet — restarted from the beginning\n", i+1)
		} else {
			fmt.Fprintf(&b, "  restart %d: recovered from global checkpoint %d\n", i+1, e)
		}
	}
	if len(values) > 0 {
		fmt.Fprintf(&b, "result: %v\n", values[0])
	}
	return b.String()
}

// Build resolves an application by name, applying the per-app default size
// and iteration count when the caller passes zero. It returns the program
// and the approximate serialized application state per rank (the number the
// paper's Figure 8 annotates problem sizes with).
func Build(app string, ranks, size, iters int) (engine.Program, int64, error) {
	switch app {
	case "cg":
		if size == 0 {
			size = 1024
		}
		if iters == 0 {
			iters = 100
		}
		p := cg.Params{N: size, Iters: iters}
		return cg.Program(p), int64(p.StateBytesPerRank(ranks)), nil
	case "laplace":
		if size == 0 {
			size = 512
		}
		if iters == 0 {
			iters = 300
		}
		p := laplace.Params{N: size, Iters: iters}
		return laplace.Program(p), int64(p.StateBytesPerRank(ranks)), nil
	case "neurosys":
		if size == 0 {
			size = 32
		}
		if iters == 0 {
			iters = 300
		}
		p := neurosys.Params{K: size, Iters: iters}
		return neurosys.Program(p), int64(p.StateBytesPerRank(ranks)), nil
	default:
		return nil, 0, fmt.Errorf("unknown app %q (want %v)", app, Names())
	}
}
