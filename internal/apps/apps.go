// Package apps registers the benchmark applications by name, so every
// driver — the in-process c3run, the distributed c3launch, tests — builds
// programs from one table instead of each keeping its own copy.
package apps

import (
	"fmt"

	"ccift/internal/apps/cg"
	"ccift/internal/apps/laplace"
	"ccift/internal/apps/neurosys"
	"ccift/internal/engine"
)

// Names lists the registered applications.
func Names() []string { return []string{"cg", "laplace", "neurosys"} }

// Build resolves an application by name, applying the per-app default size
// and iteration count when the caller passes zero. It returns the program
// and the approximate serialized application state per rank (the number the
// paper's Figure 8 annotates problem sizes with).
func Build(app string, ranks, size, iters int) (engine.Program, int64, error) {
	switch app {
	case "cg":
		if size == 0 {
			size = 1024
		}
		if iters == 0 {
			iters = 100
		}
		p := cg.Params{N: size, Iters: iters}
		return cg.Program(p), int64(p.StateBytesPerRank(ranks)), nil
	case "laplace":
		if size == 0 {
			size = 512
		}
		if iters == 0 {
			iters = 300
		}
		p := laplace.Params{N: size, Iters: iters}
		return laplace.Program(p), int64(p.StateBytesPerRank(ranks)), nil
	case "neurosys":
		if size == 0 {
			size = 32
		}
		if iters == 0 {
			iters = 300
		}
		p := neurosys.Params{K: size, Iters: iters}
		return neurosys.Program(p), int64(p.StateBytesPerRank(ranks)), nil
	default:
		return nil, 0, fmt.Errorf("unknown app %q (want %v)", app, Names())
	}
}
