package cg

import (
	"reflect"
	"testing"

	"ccift/internal/engine"
	"ccift/internal/protocol"
)

func run(t *testing.T, cfg engine.Config, p Params) []any {
	t.Helper()
	res, err := engine.Run(cfg, Program(p))
	if err != nil {
		t.Fatal(err)
	}
	return res.Values
}

func TestCGConverges(t *testing.T) {
	p := Params{N: 64, Iters: 40}
	vals := run(t, engine.Config{Ranks: 4, Mode: protocol.Unmodified}, p)
	ck := vals[0].(Checksum)
	// Diagonally dominant SPD system with b=1: CG should have driven the
	// residual far down after 40 iterations on a 64×64 system.
	if ck.Residual > 1e-6 {
		t.Fatalf("residual %v did not converge", ck.Residual)
	}
	// All ranks agree on the checksum.
	for i, v := range vals {
		if v != vals[0] {
			t.Fatalf("rank %d checksum %v != %v", i, v, vals[0])
		}
	}
}

func TestCGRankCountInvariance(t *testing.T) {
	// The answer (solution checksum) must not depend on the number of
	// ranks beyond benign rounding, since the math is the same.
	p := Params{N: 32, Iters: 24}
	a := run(t, engine.Config{Ranks: 1, Mode: protocol.Unmodified}, p)[0].(Checksum)
	b := run(t, engine.Config{Ranks: 4, Mode: protocol.Unmodified}, p)[0].(Checksum)
	if a.Sum != b.Sum {
		t.Fatalf("sum differs across rank counts: %v vs %v", a.Sum, b.Sum)
	}
}

func TestCGModesAgree(t *testing.T) {
	p := Params{N: 32, Iters: 20}
	ref := run(t, engine.Config{Ranks: 4, Mode: protocol.Unmodified}, p)
	for _, mode := range []protocol.Mode{protocol.PiggybackOnly, protocol.NoAppState, protocol.Full} {
		got := run(t, engine.Config{Ranks: 4, Mode: mode, EveryN: 5}, p)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("%v: %v != %v", mode, got, ref)
		}
	}
}

func TestCGRecovery(t *testing.T) {
	p := Params{N: 32, Iters: 20}
	ref := run(t, engine.Config{Ranks: 4, Mode: protocol.Unmodified}, p)
	for _, atOp := range []int64{9, 25, 41, 57} {
		cfg := engine.Config{
			Ranks: 4, Mode: protocol.Full, EveryN: 4, Debug: true,
			Failures: []engine.Failure{{Rank: int(atOp % 4), AtOp: atOp, Incarnation: 0}},
		}
		got := run(t, cfg, p)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("atOp=%d: %v != %v", atOp, got, ref)
		}
	}
}

func TestStateBytesEstimate(t *testing.T) {
	p := Params{N: 64, Iters: 1}
	est := p.StateBytesPerRank(4)
	if est < 8*64*16 {
		t.Fatalf("estimate %d too small", est)
	}
}

func TestMatEntrySymmetric(t *testing.T) {
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if matEntry(i, j) != matEntry(j, i) {
				t.Fatalf("matrix not symmetric at (%d,%d)", i, j)
			}
			if v := matEntry(i, j); v < 0 || v >= 0.25 {
				t.Fatalf("entry (%d,%d)=%v out of range", i, j, v)
			}
		}
	}
}

// TestComputedStateRecovery: with ExcludeMatrix, the read-only matrix
// block is registered as recomputable (Section 7's recomputation
// checkpointing): results survive failures identically, and checkpoints
// shrink by more than an order of magnitude.
func TestComputedStateRecovery(t *testing.T) {
	p := Params{N: 256, Iters: 20}
	ref := run(t, engine.Config{Ranks: 4, Mode: protocol.Unmodified}, p)

	sizes := map[bool]int64{}
	for _, exclude := range []bool{false, true} {
		p.ExcludeMatrix = exclude
		cfg := engine.Config{
			Ranks: 4, Mode: protocol.Full, EveryN: 6, Debug: true,
			Failures: []engine.Failure{{Rank: 1, AtOp: 160, Incarnation: 0}},
		}
		res, err := engine.Run(cfg, Program(p))
		if err != nil {
			t.Fatalf("exclude=%v: %v", exclude, err)
		}
		if res.Restarts != 1 {
			t.Fatalf("exclude=%v: restarts = %d", exclude, res.Restarts)
		}
		if !reflect.DeepEqual(res.Values, ref) {
			t.Fatalf("exclude=%v: values %v != ref %v", exclude, res.Values, ref)
		}
		for _, s := range res.Stats {
			sizes[exclude] += s.CheckpointBytes
		}
	}
	// The matrix block dominates CG's state; excluding it must shrink
	// checkpoints by at least an order of magnitude.
	if sizes[true]*10 >= sizes[false] {
		t.Fatalf("excluded checkpoints (%d B) should be <10%% of full (%d B)", sizes[true], sizes[false])
	}
}
