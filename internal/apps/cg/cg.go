// Package cg implements the dense Conjugate Gradient benchmark of the
// paper's evaluation (Section 6.1): a parallel CG solver with block-row
// distribution whose main loop performs a parallel matrix-vector multiply
// and parallel dot products, with communication coming from an allReduce
// and an allGather (implemented over point-to-point butterfly trees by the
// mpi substrate, as in the original code).
package cg

import (
	"fmt"
	"math"

	"ccift/internal/engine"
	"ccift/internal/mpi"
)

var sumOp = mpi.SumF64

// Params selects the problem.
type Params struct {
	// N is the matrix dimension (the paper ran 4096–16384; the harness
	// scales this so per-process state spans the same regime).
	N int
	// Iters is the number of CG iterations (the paper ran 500).
	Iters int
	// ExcludeMatrix enables the Section 7 recomputation-checkpointing
	// optimization: the read-only matrix block — by far the largest piece
	// of application state — is excluded from checkpoints and regenerated
	// on restart, with its fingerprint verified. The paper's system always
	// saves it; the ablation benchmarks quantify the difference.
	ExcludeMatrix bool
}

// StateBytesPerRank estimates the per-process application state: the local
// block of A dominates.
func (p Params) StateBytesPerRank(ranks int) int {
	rows := p.N / ranks
	return 8 * (rows*p.N + 4*rows + p.N)
}

// matEntry is the deterministic synthetic matrix generator: symmetric,
// diagonally dominant (hence SPD), with pseudo-random off-diagonal mass.
func matEntry(i, j int) float64 {
	if i > j {
		i, j = j, i
	}
	h := uint64(i)*0x9E37 + uint64(j)*0x79B9 + 12345
	h ^= h >> 13
	h *= 0x2545F4914F6CDD1D
	h ^= h >> 35
	return float64(h%1000) / 4000.0
}

// Program builds the CG application for the engine. Every rank returns the
// same checksum of the solution vector, so results are directly comparable
// across modes and failure schedules.
func Program(p Params) engine.Program {
	return func(r *engine.Rank) (any, error) {
		ranks := r.Size()
		if p.N%ranks != 0 {
			return nil, fmt.Errorf("cg: N=%d not divisible by %d ranks", p.N, ranks)
		}
		rows := p.N / ranks
		lo := r.Rank() * rows

		// Recoverable state. By default everything — including the
		// read-only matrix block — is registered and saved, exactly as
		// Section 5.1 describes (the paper's system has no state-exclusion
		// optimizations). With ExcludeMatrix, the block is instead
		// registered as recomputable (the paper's Section 7 future work):
		// checkpoints carry only its fingerprint, and a restart re-runs the
		// generator.
		var it int
		a := make([]float64, rows*p.N) // local block rows of A
		x := make([]float64, rows)
		res := make([]float64, rows)
		dir := make([]float64, rows)
		q := make([]float64, rows)
		var rs float64
		fillMatrix := func() error {
			for li := 0; li < rows; li++ {
				gi := lo + li
				sum := 0.0
				for j := 0; j < p.N; j++ {
					if j != gi {
						v := matEntry(gi, j)
						a[li*p.N+j] = v
						sum += v
					}
				}
				a[li*p.N+gi] = sum + 1 // diagonal dominance
			}
			return nil
		}
		r.Register("it", &it)
		if p.ExcludeMatrix {
			r.RegisterComputed("a", &a, fillMatrix)
		} else {
			r.Register("a", &a)
		}
		r.Register("x", &x)
		r.Register("res", &res)
		r.Register("dir", &dir)
		r.Register("q", &q)
		r.Register("rs", &rs)

		if !r.Restarting() {
			if err := fillMatrix(); err != nil {
				return nil, err
			}
			// b = 1, x0 = 0 → r0 = b, p0 = r0.
			for i := range res {
				res[i] = 1
				dir[i] = 1
			}
			local := dot(res, res)
			rs = r.AllreduceF64([]float64{local}, sumOp)[0]
		}

		for ; it < p.Iters; it++ {
			r.PotentialCheckpoint()

			// q = A · p : gather the full direction vector, multiply the
			// local block rows.
			pFull := r.AllgatherF64(dir)
			for li := 0; li < rows; li++ {
				row := a[li*p.N : (li+1)*p.N]
				s := 0.0
				for j, pv := range pFull {
					s += row[j] * pv
				}
				q[li] = s
			}

			// alpha = rs / (p · q)
			pq := r.AllreduceF64([]float64{dot(dir, q)}, sumOp)[0]
			alpha := rs / pq
			for i := range x {
				x[i] += alpha * dir[i]
				res[i] -= alpha * q[i]
			}

			// beta = rs' / rs
			rsNew := r.AllreduceF64([]float64{dot(res, res)}, sumOp)[0]
			beta := rsNew / rs
			rs = rsNew
			for i := range dir {
				dir[i] = res[i] + beta*dir[i]
			}
			// Write intent for incremental freeze: the iteration updated
			// every vector except the (read-only) matrix block; rs is a
			// scalar and needs no touch. Harmless when tracking is off.
			r.Touch("x", "res", "dir", "q")
		}

		// Global checksum of the solution: Σx and ‖x‖².
		local := []float64{sum(x), dot(x, x)}
		global := r.AllreduceF64(local, sumOp)
		return Checksum{Sum: round(global[0]), Norm2: round(global[1]), Residual: round(math.Sqrt(rs))}, nil
	}
}

// Checksum is the deterministic result of a CG run.
type Checksum struct {
	Sum      float64
	Norm2    float64
	Residual float64
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func sum(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		s += v
	}
	return s
}

// round trims the checksum so comparisons are robust to benign last-bit
// variation between collective algorithms at different rank counts (within
// one configuration results are bit-identical).
func round(v float64) float64 {
	return math.Round(v*1e9) / 1e9
}
