package laplace

import (
	"reflect"
	"testing"

	"ccift/internal/engine"
	"ccift/internal/protocol"
)

func run(t *testing.T, cfg engine.Config, p Params) []any {
	t.Helper()
	res, err := engine.Run(cfg, Program(p))
	if err != nil {
		t.Fatal(err)
	}
	return res.Values
}

func TestLaplaceRanksAgree(t *testing.T) {
	p := Params{N: 32, Iters: 30}
	vals := run(t, engine.Config{Ranks: 4, Mode: protocol.Unmodified}, p)
	for i, v := range vals {
		if v != vals[0] {
			t.Fatalf("rank %d checksum %v != %v", i, v, vals[0])
		}
	}
}

func TestLaplaceRankCountInvariance(t *testing.T) {
	p := Params{N: 32, Iters: 25}
	a := run(t, engine.Config{Ranks: 1, Mode: protocol.Unmodified}, p)[0]
	b := run(t, engine.Config{Ranks: 4, Mode: protocol.Unmodified}, p)[0]
	if a != b {
		t.Fatalf("checksum differs across rank counts: %v vs %v", a, b)
	}
}

func TestLaplaceHeatPropagates(t *testing.T) {
	// With the hot top edge, the checksum should move as iterations grow:
	// the solver is actually doing something.
	p1 := run(t, engine.Config{Ranks: 2, Mode: protocol.Unmodified}, Params{N: 16, Iters: 5})[0]
	p2 := run(t, engine.Config{Ranks: 2, Mode: protocol.Unmodified}, Params{N: 16, Iters: 50})[0]
	if p1 == p2 {
		t.Fatalf("checksum did not change between 5 and 50 iterations (%v)", p1)
	}
}

func TestLaplaceModesAgree(t *testing.T) {
	p := Params{N: 32, Iters: 20}
	ref := run(t, engine.Config{Ranks: 4, Mode: protocol.Unmodified}, p)
	for _, mode := range []protocol.Mode{protocol.PiggybackOnly, protocol.NoAppState, protocol.Full} {
		got := run(t, engine.Config{Ranks: 4, Mode: mode, EveryN: 6}, p)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("%v: %v != %v", mode, got, ref)
		}
	}
}

func TestLaplaceRecovery(t *testing.T) {
	// The halo exchange uses Irecv/Isend/Wait; failures land between
	// posting and completion, exercising request pseudo-handle recovery.
	p := Params{N: 32, Iters: 20}
	ref := run(t, engine.Config{Ranks: 4, Mode: protocol.Unmodified}, p)
	for _, atOp := range []int64{13, 27, 44, 61, 88} {
		cfg := engine.Config{
			Ranks: 4, Mode: protocol.Full, EveryN: 4, Debug: true,
			Failures: []engine.Failure{{Rank: int(atOp % 4), AtOp: atOp, Incarnation: 0}},
		}
		got := run(t, cfg, p)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("atOp=%d: %v != %v", atOp, got, ref)
		}
	}
}
