// Package laplace implements the Laplace-solver benchmark of the paper's
// evaluation (Section 6.1): an n×n grid distributed by block rows; each
// iteration replaces every interior cell by the average of its four
// neighbours, and each processor exchanges border rows with the processor
// "above" and "below" it.
package laplace

import (
	"fmt"
	"math"

	"ccift/internal/engine"
	"ccift/internal/mpi"
	"ccift/internal/protocol"
)

// Params selects the problem.
type Params struct {
	// N is the grid edge (the paper ran 512–2048).
	N int
	// Iters is the iteration count (the paper ran 40000; the harness uses
	// fewer, scaled to the checkpoint interval).
	Iters int
}

// StateBytesPerRank estimates per-process application state.
func (p Params) StateBytesPerRank(ranks int) int {
	return 8 * 2 * (p.N/ranks + 2) * p.N
}

const (
	tagUp   = 1 // border row travelling to the rank above
	tagDown = 2 // border row travelling to the rank below
)

// Program builds the Laplace solver. Every rank returns the same global
// checksum.
func Program(p Params) engine.Program {
	return func(r *engine.Rank) (any, error) {
		ranks := r.Size()
		if p.N%ranks != 0 {
			return nil, fmt.Errorf("laplace: N=%d not divisible by %d ranks", p.N, ranks)
		}
		rows := p.N / ranks
		me := r.Rank()
		up, down := me-1, me+1 // neighbours (grid is not periodic)

		// grid and next hold rows+2 rows of n cells: ghost row, owned
		// rows, ghost row.
		var it int
		grid := make([]float64, (rows+2)*p.N)
		next := make([]float64, (rows+2)*p.N)
		r.Register("it", &it)
		r.Register("grid", &grid)
		r.Register("next", &next)

		if !r.Restarting() {
			// Boundary condition: the global top edge is hot (1.0), all
			// else cold; interior seeded with a deterministic ripple.
			for li := 1; li <= rows; li++ {
				gi := me*rows + li - 1
				for j := 0; j < p.N; j++ {
					if gi == 0 {
						grid[li*p.N+j] = 1
					} else {
						grid[li*p.N+j] = 0.01 * math.Sin(float64(gi*31+j*17))
					}
				}
			}
		}

		row := func(g []float64, i int) []float64 { return g[i*p.N : (i+1)*p.N] }

		for ; it < p.Iters; it++ {
			r.PotentialCheckpoint()

			// Halo exchange with Irecv/Isend/Wait, as a real MPI code
			// would write it.
			var hUp, hDown protocol.Handle
			hasUp, hasDown := up >= 0, down < ranks
			if hasUp {
				hUp = r.Irecv(up, tagDown)
				r.Isend(up, tagUp, mpi.F64Bytes(row(grid, 1)))
			}
			if hasDown {
				hDown = r.Irecv(down, tagUp)
				r.Isend(down, tagDown, mpi.F64Bytes(row(grid, rows)))
			}
			if hasUp {
				m := r.Wait(hUp)
				copy(row(grid, 0), mpi.BytesF64(m.Data))
			}
			if hasDown {
				m := r.Wait(hDown)
				copy(row(grid, rows+1), mpi.BytesF64(m.Data))
			}

			for li := 1; li <= rows; li++ {
				gi := me*rows + li - 1
				for j := 0; j < p.N; j++ {
					if gi == 0 || gi == p.N-1 || j == 0 || j == p.N-1 {
						next[li*p.N+j] = grid[li*p.N+j] // fixed boundary
						continue
					}
					next[li*p.N+j] = 0.25 * (grid[(li-1)*p.N+j] + grid[(li+1)*p.N+j] +
						grid[li*p.N+j-1] + grid[li*p.N+j+1])
				}
			}
			// The VDS holds pointers to the slice variables themselves, so
			// the buffer swap is checkpointed transparently.
			grid, next = next, grid
			// Write intent for incremental freeze: both buffers changed
			// this iteration (ghost rows into one, the sweep into the
			// other, then the swap). Harmless when dirty tracking is off.
			r.Touch("grid", "next")
		}

		local := 0.0
		for li := 1; li <= rows; li++ {
			gi := me*rows + li - 1
			for j := 0; j < p.N; j++ {
				local += grid[li*p.N+j] * float64(1+(gi+j)%7)
			}
		}
		global := r.AllreduceF64([]float64{local}, mpi.SumF64)
		return math.Round(global[0]*1e9) / 1e9, nil
	}
}
