// Package sim is the deterministic discrete-event simulation substrate:
// a third mpi.Transport (beside the in-process mailboxes and the TCP
// mesh) whose network and clocks are simulated, so whole-cluster fault
// schedules — latency, loss, duplication, partitions, clock skew, slow
// disks, crashes — run in one process, in virtual time, reproducibly from
// a seed.
//
// # Design
//
// One goroutine (the scheduler) owns virtual time and an event heap.
// Frames in flight, timer firings, rank crashes and sleep wakeups are all
// events. Virtual time advances only at quiescence — when every live rank
// of the attached world is parked in the transport (or blocked in a
// virtual sleep) — and then jumps straight to the next event, so a
// 1000-rank minute of heartbeat traffic costs milliseconds of wall time.
// Events already due dispatch eagerly without waiting for quiescence,
// which is what makes zero-latency scenarios (the conformance suite)
// behave like an ordinary transport.
//
// Determinism: sends are stamped at the frozen virtual now; every random
// draw comes from a per-link PRNG stream keyed by (seed, context, src,
// dst), so concurrent goroutine interleaving can neither reorder nor
// perturb draws; and events due at the same instant dispatch in a fixed
// order (link identity, then link sequence). With Latency > 0 every
// delivery lands at a quiescence point, making the full event order — and
// therefore results and protocol counters — a pure function of (program,
// scenario). The scheduler applies the whole batch of due events before
// waking any rank, so a rank never observes a half-applied instant.
//
// The transport decodes wire frames into the exported mpi.Mailbox, so
// matching semantics, chaos insertion, and ErrWorldDead/ErrCanceled
// propagation are inherited from the in-process substrate unchanged.
package sim

import (
	"container/heap"
	"fmt"
	"sync"
	"time"

	"ccift/internal/clock"
)

// simBase is the fixed origin of virtual time: every simulation starts at
// the same instant, so absolute clock readings are reproducible too.
var simBase = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)

const (
	evDeliver = iota // frame arrival at a mailbox
	evWake           // virtual-sleep wakeup
	evCrash          // scenario rank crash
	evTimer          // clock.AfterFunc firing
)

type linkKey struct {
	ctx      int64
	src, dst int
}

type link struct {
	rng       *prng
	seq       uint64        // next frame sequence to assign
	delivered uint64        // highest sequence delivered (dedup floor)
	lastAt    time.Duration // FIFO clamp: no frame may overtake its predecessor
}

type event struct {
	at   time.Duration
	kind int8

	// evDeliver
	tr      *transport
	dst     int
	lk      linkKey
	linkSeq uint64
	frame   []byte

	// evWake
	flag *bool

	// evTimer
	fn       func()
	canceled bool
	fired    bool

	seq uint64 // insertion order, final tiebreak
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.lk != b.lk {
		if a.lk.ctx != b.lk.ctx {
			return a.lk.ctx < b.lk.ctx
		}
		if a.lk.src != b.lk.src {
			return a.lk.src < b.lk.src
		}
		return a.lk.dst < b.lk.dst
	}
	if a.linkSeq != b.linkSeq {
		return a.linkSeq < b.linkSeq
	}
	return a.seq < b.seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (h eventHeap) peek() *event { return h[0] }

// Stats counts simulation activity; Sim.Stats returns a snapshot.
type Stats struct {
	Delivered     int64 // frames delivered into mailboxes
	Duplicated    int64 // duplicate frames injected
	DupSuppressed int64 // duplicate frames suppressed by sequence dedup
	Retransmits   int64 // transient losses masked by retransmission
	Held          int64 // frames held by a partition window
	StaleDropped  int64 // frames from a discarded incarnation dropped
	Crashes       int64 // scenario crashes applied
	TimerFirings  int64 // clock timers fired
	Sleeps        int64 // virtual sleeps completed
}

// Sim is one simulated cluster: the virtual clock, the event heap, and
// the fault model. It persists across incarnations of a run (the engine
// builds a fresh mpi.World per incarnation via NewTransport; the clock
// keeps advancing through rollbacks, as a real cluster's would).
type Sim struct {
	n  int
	sc Scenario

	mu   sync.Mutex
	cond *sync.Cond // scheduler wakeup: new events, parking changes, stop

	now      time.Duration
	events   eventHeap
	seq      uint64
	stopped  bool
	batching bool // scheduler is mid-batch: defer rank wakeups

	curTr    *transport
	parked   []bool
	done     []bool
	gen      []uint64
	rankCond []*sync.Cond
	needWake []bool
	parkedN  int
	doneN    int
	sleepers int

	sleepCond *sync.Cond // virtual sleepers wait here

	links map[linkKey]*link
	st    Stats
}

// New builds a simulated cluster of n ranks. n == 0 builds a free-running
// clock-only simulation (no transport; time advances whenever a timer is
// pending) for driving clock-dependent units like the detector in tests.
// The scheduler goroutine runs until Stop.
func New(n int, sc Scenario) (*Sim, error) {
	if err := sc.Validate(n); err != nil {
		return nil, err
	}
	s := &Sim{
		n:        n,
		sc:       sc,
		parked:   make([]bool, n),
		done:     make([]bool, n),
		gen:      make([]uint64, n),
		rankCond: make([]*sync.Cond, n),
		needWake: make([]bool, n),
		links:    map[linkKey]*link{},
	}
	s.cond = sync.NewCond(&s.mu)
	s.sleepCond = sync.NewCond(&s.mu)
	for i := range s.rankCond {
		s.rankCond[i] = sync.NewCond(&s.mu)
	}
	for _, c := range sc.Crashes {
		s.push(&event{at: c.At, kind: evCrash, dst: c.Rank})
	}
	go s.loop()
	return s, nil
}

// MustNew is New for callers with static scenarios.
func MustNew(n int, sc Scenario) *Sim {
	s, err := New(n, sc)
	if err != nil {
		panic(err)
	}
	return s
}

// Stop terminates the scheduler and wakes anything blocked on the
// simulation. Idempotent.
func (s *Sim) Stop() {
	s.mu.Lock()
	s.stopped = true
	s.cond.Broadcast()
	s.sleepCond.Broadcast()
	for _, c := range s.rankCond {
		c.Broadcast()
	}
	s.mu.Unlock()
}

// Stats returns a snapshot of the simulation counters.
func (s *Sim) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st
}

// Elapsed returns the current virtual time since the simulation began.
func (s *Sim) Elapsed() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// push inserts an event (mu held) and wakes the scheduler.
func (s *Sim) push(e *event) {
	s.seq++
	e.seq = s.seq
	heap.Push(&s.events, e)
	s.cond.Broadcast()
}

// bumpGen wakes rank r out of its transport park (mu held). The wakeup
// itself is deferred to the end of the current batch so a rank never runs
// in the middle of a half-applied virtual instant; the parked flag is
// cleared here, by the waker, so quiescence accounting is exact even
// before the rank goroutine is scheduled.
func (s *Sim) bumpGen(r int) {
	s.gen[r]++
	if s.parked[r] {
		s.parked[r] = false
		s.parkedN--
	}
	s.needWake[r] = true
	if !s.batching {
		s.flushWakes()
	}
}

// flushWakes broadcasts every deferred rank wakeup (mu held).
func (s *Sim) flushWakes() {
	for r, w := range s.needWake {
		if w {
			s.needWake[r] = false
			s.rankCond[r].Broadcast()
		}
	}
}

// canAdvance reports whether virtual time may jump to the next event
// (mu held): every live rank of the attached world must be parked in the
// transport or blocked in a virtual sleep. With no ranks (n == 0) the
// clock free-runs on pending timers.
func (s *Sim) canAdvance() bool {
	if s.n == 0 {
		return true
	}
	active := 0
	if s.curTr != nil {
		active = s.n - s.doneN
	}
	blocked := s.parkedN + s.sleepers
	return blocked >= active && blocked > 0
}

// loop is the scheduler goroutine: dispatch due events, advance time at
// quiescence, otherwise wait.
func (s *Sim) loop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.stopped {
		// Drop canceled timers so they cannot cause a spurious time jump.
		for len(s.events) > 0 && s.events.peek().canceled {
			heap.Pop(&s.events)
		}
		if len(s.events) > 0 && s.events.peek().at <= s.now {
			s.dispatchDue()
			continue
		}
		if len(s.events) > 0 && s.canAdvance() {
			s.now = s.events.peek().at
			continue
		}
		s.cond.Wait()
	}
}

// dispatchDue applies every event due at the current instant (mu held).
// Deliveries and crashes are applied first, under the lock and with rank
// wakeups deferred; timer callbacks (which may take the simulation lock
// themselves via Interrupt/Shutdown) run after, outside the lock, in
// deterministic heap order; deferred wakeups flush last.
func (s *Sim) dispatchDue() {
	s.batching = true
	var fns []func()
	for len(s.events) > 0 && s.events.peek().at <= s.now {
		e := heap.Pop(&s.events).(*event)
		switch e.kind {
		case evDeliver:
			if e.tr != s.curTr {
				s.st.StaleDropped++
				continue
			}
			l := s.links[e.lk]
			if e.linkSeq <= l.delivered {
				s.st.DupSuppressed++
				continue
			}
			l.delivered = e.linkSeq
			m, err := mpiDecode(e.frame)
			if err != nil {
				panic(fmt.Sprintf("sim: corrupt internal frame: %v", err))
			}
			e.tr.boxes[e.dst].Deliver(m)
			s.st.Delivered++
			s.bumpGen(e.dst)
		case evWake:
			*e.flag = true
			// The waker decrements the sleeper count, exactly like bumpGen
			// clears parked: if the count lingered until the woken goroutine
			// was scheduled, the scheduler could keep advancing time through
			// unrelated events in the gap — nondeterministically far.
			s.sleepers--
			s.st.Sleeps++
			s.sleepCond.Broadcast()
		case evCrash:
			if s.curTr != nil && !s.done[e.dst] {
				s.curTr.w.Kill(e.dst)
				s.st.Crashes++
			}
		case evTimer:
			if e.canceled {
				continue
			}
			e.fired = true
			s.st.TimerFirings++
			fns = append(fns, e.fn)
		}
	}
	if len(fns) > 0 {
		s.mu.Unlock()
		for _, f := range fns {
			f()
		}
		s.mu.Lock()
	}
	s.batching = false
	s.flushWakes()
}

// Sleep blocks the calling goroutine for d of virtual time. The caller
// counts as blocked for quiescence purposes, so time advances past the
// wakeup; unlike a wall sleep this costs microseconds regardless of d.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return
	}
	woken := false
	s.push(&event{at: s.now + d, kind: evWake, flag: &woken})
	s.sleepers++
	s.cond.Broadcast()
	for !woken && !s.stopped {
		s.sleepCond.Wait()
	}
	if !woken {
		s.sleepers-- // unwound by Stop; the wake event never dispatched
	}
}

// link returns (creating on first use) the per-link state for lk; its
// PRNG stream depends only on (Seed, lk), never on traffic elsewhere.
func (s *Sim) link(lk linkKey) *link {
	l := s.links[lk]
	if l == nil {
		l = &link{rng: newPRNG(mix(s.sc.Seed, lk.ctx, int64(lk.src), int64(lk.dst)))}
		s.links[lk] = l
	}
	return l
}

// prng is a tiny splitmix64 generator. Link streams are created per
// (seed, context, src, dst) — n² of them in an n-rank world — and
// math/rand's 607-word LFG seeding dominated 512-rank profiles; splitmix
// seeds in one word and draws in a few cycles.
type prng struct{ state uint64 }

func newPRNG(seed int64) *prng { return &prng{state: uint64(seed)} }

func (p *prng) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1).
func (p *prng) Float64() float64 { return float64(p.next()>>11) / (1 << 53) }

// Int63n returns a uniform draw in [0, n). The modulo bias at realistic
// widths (nanosecond jitter windows, far below 2^63) is immeasurable.
func (p *prng) Int63n(n int64) int64 { return int64(p.next() % uint64(n)) }

// mix folds the parts into a 64-bit seed (splitmix64 finalizer).
func mix(parts ...int64) int64 {
	var h uint64 = 0x9e3779b97f4a7c15
	for _, p := range parts {
		h ^= uint64(p) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return int64(h)
}

// ---------------------------------------------------------------------------
// Clocks

// simClock is a (possibly skewed) view of the virtual clock.
type simClock struct {
	s  *Sim
	sk Skew
}

// Clock returns the unskewed virtual clock.
func (s *Sim) Clock() clock.Clock { return simClock{s: s} }

// RankClock returns rank r's (possibly skewed) view of the virtual clock.
func (s *Sim) RankClock(r int) clock.Clock {
	if sk, ok := s.sc.Skews[r]; ok {
		return simClock{s: s, sk: sk}
	}
	return simClock{s: s}
}

// DetectorClock returns the failure detector's view of the virtual clock.
func (s *Sim) DetectorClock() clock.Clock {
	if s.sc.DetectorSkew != nil {
		return simClock{s: s, sk: *s.sc.DetectorSkew}
	}
	return simClock{s: s}
}

func (c simClock) Now() time.Time {
	c.s.mu.Lock()
	now := c.s.now
	c.s.mu.Unlock()
	return simBase.Add(time.Duration(float64(now)*c.sk.rate()) + c.sk.Offset)
}

func (c simClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

func (c simClock) AfterFunc(d time.Duration, f func()) clock.Timer {
	dv := time.Duration(float64(d) / c.sk.rate())
	if dv < 0 {
		dv = 0
	}
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	e := &event{at: c.s.now + dv, kind: evTimer, fn: f}
	if c.s.stopped {
		// A stopped simulation fires no timers; hand back an inert handle.
		e.canceled = true
		return simTimer{s: c.s, e: e}
	}
	c.s.push(e)
	return simTimer{s: c.s, e: e}
}

func (c simClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	// Route through Sim.Sleep (on a helper goroutine) rather than a bare
	// timer event: the caller of After blocks receiving from ch, and only
	// Sleep's sleeper accounting tells the scheduler that counts as
	// quiescent. With a bare AfterFunc event, a rank sleeping here would
	// look active forever and virtual time could never advance to fire
	// the timer — a virtual-time deadlock (the flush governor's throttle
	// sleeps hit exactly this).
	dv := time.Duration(float64(d) / c.sk.rate())
	go func() {
		c.s.Sleep(dv)
		ch <- c.Now()
	}()
	return ch
}

type simTimer struct {
	s *Sim
	e *event
}

func (t simTimer) Stop() bool {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if t.e.fired || t.e.canceled {
		return false
	}
	t.e.canceled = true
	return true
}
