package sim

import (
	"sync"

	"ccift/internal/storage"
)

// slowStore wraps a stable store with seeded virtual-time delays on Put
// and Get, modeling a slow or bursty disk. Because the delay is a virtual
// sleep, the calling rank counts as blocked (time advances past it) and
// the stall lands deterministically in the protocol's blocked-time
// counters at zero wall cost.
type slowStore struct {
	inner storage.Stable
	s     *Sim
	cfg   SlowStore

	mu  sync.Mutex
	rng *prng
}

// WrapStore returns st wrapped with the scenario's SlowStore injection,
// or st unchanged when the scenario has none.
func (s *Sim) WrapStore(st storage.Stable) storage.Stable {
	if s.sc.SlowStore == nil || (s.sc.SlowStore.Delay <= 0 && s.sc.SlowStore.Jitter <= 0) {
		return st
	}
	return &slowStore{
		inner: st,
		s:     s,
		cfg:   *s.sc.SlowStore,
		rng:   newPRNG(mix(s.sc.Seed, 0x570e)),
	}
}

// delay draws this operation's stall. The draw order is the store-stream
// PRNG's call order; store operations are serialized per run phase, so
// the sequence is deterministic for deterministic programs.
func (st *slowStore) delay() {
	st.mu.Lock()
	d := st.cfg.Delay
	if st.cfg.Jitter > 0 {
		d += draw(st.rng, st.cfg.Jitter)
	}
	skip := st.cfg.Prob > 0 && st.cfg.Prob < 1 && st.rng.Float64() >= st.cfg.Prob
	st.mu.Unlock()
	if skip || d <= 0 {
		return
	}
	st.s.Sleep(d)
}

func (st *slowStore) Put(key string, data []byte) error {
	st.delay()
	return st.inner.Put(key, data)
}

func (st *slowStore) Get(key string) ([]byte, error) {
	st.delay()
	return st.inner.Get(key)
}

func (st *slowStore) Delete(key string) error { return st.inner.Delete(key) }

func (st *slowStore) List(prefix string) ([]string, error) { return st.inner.List(prefix) }
