package sim

import (
	"encoding/json"
	"fmt"
	"time"

	"ccift/internal/cerr"
)

// Scenario declares a deterministic fault schedule for a simulated world.
// It is plain data — JSON-serializable so a failing soak can be replayed
// exactly from its seed (see internal/testseed) — and every random draw it
// induces comes from per-link PRNG streams derived from Seed, so schedules
// are stable under topology changes (adding a rank does not perturb the
// draws on existing links).
//
// Durations are encoded as nanoseconds in JSON (Go's time.Duration).
type Scenario struct {
	// Seed is the root of every PRNG stream in the simulation. Zero is a
	// valid (and distinct) seed.
	Seed int64 `json:"seed"`

	// Latency is the base one-way frame latency of every link; Jitter adds
	// a uniform [0, Jitter) draw per frame. A zero Latency+Jitter makes
	// delivery immediate (useful for conformance tests), but virtual-time
	// determinism is only guaranteed when Latency > 0: with in-flight
	// time on every frame, all deliveries happen at quiescence points, so
	// the event order is a pure function of the scenario.
	Latency time.Duration `json:"latency"`
	Jitter  time.Duration `json:"jitter,omitempty"`

	// DropProb is the per-frame probability of transient loss. The
	// substrate models the reliable-delivery layer the paper assumes
	// (LA-MPI): a lost frame is retransmitted, so a drop manifests as an
	// added RetransmitDelay, never as a missing message. Repeated losses
	// of the same frame compound.
	DropProb float64 `json:"drop_prob,omitempty"`
	// RetransmitDelay is the redelivery timeout added per loss; zero
	// selects 4*(Latency+Jitter).
	RetransmitDelay time.Duration `json:"retransmit_delay,omitempty"`

	// DupProb is the per-frame probability that the reliability layer's
	// retransmission duplicates an already-delivered frame. Duplicates are
	// detected by per-link sequence numbers and suppressed at the
	// receiver — exactly-once delivery is part of the transport contract —
	// but they exercise the dedup path and are counted in Stats.
	DupProb float64 `json:"dup_prob,omitempty"`

	// Partitions are network partition windows: while virtual time is in
	// [From, Until), frames between the Ranks set and its complement are
	// held by the reliability layer and delivered (with a fresh latency
	// draw) after the partition heals. Overlapping/adjacent windows chain,
	// and repeated windows on the same ranks model a flapping peer.
	Partitions []Partition `json:"partitions,omitempty"`

	// Crashes stop-fail ranks at absolute virtual times. A crashed rank's
	// runtime stops heartbeating, so recovery requires the heartbeat
	// detector (Launch arms it automatically for simulated runs). Times
	// keep advancing across incarnations, so several entries for one rank
	// at increasing times crash it in successive incarnations.
	Crashes []Crash `json:"crashes,omitempty"`

	// Skews gives individual ranks skewed views of the virtual clock
	// (protocol-layer timing: initiator intervals, control deadlines,
	// blocked-time accounting). DetectorSkew skews the failure detector's
	// clock relative to the ranks — a fast detector clock shortens the
	// effective suspicion timeout.
	Skews        map[int]Skew `json:"skews,omitempty"`
	DetectorSkew *Skew        `json:"detector_skew,omitempty"`

	// SlowStore injects seeded delays into stable-storage operations; see
	// the SlowStore type.
	SlowStore *SlowStore `json:"slow_store,omitempty"`

	// DetectorTimeout is the virtual-time heartbeat suspicion timeout
	// ccift.Launch arms for this scenario; zero selects a default
	// (500ms virtual). It costs nothing in wall time.
	DetectorTimeout time.Duration `json:"detector_timeout,omitempty"`
}

// Partition is one partition window: Ranks vs everyone else during
// [From, Until) of virtual time.
type Partition struct {
	From  time.Duration `json:"from"`
	Until time.Duration `json:"until"`
	Ranks []int         `json:"ranks"`
}

func (p Partition) separates(a, b int) bool {
	return p.contains(a) != p.contains(b)
}

func (p Partition) contains(r int) bool {
	for _, x := range p.Ranks {
		if x == r {
			return true
		}
	}
	return false
}

// Crash stop-fails Rank at virtual time At.
type Crash struct {
	Rank int           `json:"rank"`
	At   time.Duration `json:"at"`
}

// Skew is a skewed view of the virtual clock: Now reads
// base + Rate*elapsed + Offset, and a timer for duration d fires after
// d/Rate of true virtual time (a fast clock's intervals elapse sooner).
// Rate zero means 1.0.
type Skew struct {
	Offset time.Duration `json:"offset,omitempty"`
	Rate   float64       `json:"rate,omitempty"`
}

func (k Skew) rate() float64 {
	if k.Rate == 0 {
		return 1
	}
	return k.Rate
}

// SlowStore injects a seeded virtual-time delay into every stable-storage
// Put and Get (with probability Prob per operation; zero means always).
// The delay is Delay plus a uniform [0, Jitter) draw. Because the sleep is
// virtual, a slow disk costs nothing in wall time but is fully visible in
// the protocol's blocked-time counters.
type SlowStore struct {
	Delay  time.Duration `json:"delay"`
	Jitter time.Duration `json:"jitter,omitempty"`
	Prob   float64       `json:"prob,omitempty"`
}

// Validate checks the scenario against a world of n ranks.
func (sc *Scenario) Validate(n int) error {
	if sc.Latency < 0 || sc.Jitter < 0 || sc.RetransmitDelay < 0 {
		return fmt.Errorf("%w: sim: negative duration in scenario", cerr.ErrSpec)
	}
	if sc.DropProb < 0 || sc.DropProb >= 1 {
		if sc.DropProb != 0 {
			return fmt.Errorf("%w: sim: drop_prob %v outside [0,1)", cerr.ErrSpec, sc.DropProb)
		}
	}
	if sc.DupProb < 0 || sc.DupProb >= 1 {
		if sc.DupProb != 0 {
			return fmt.Errorf("%w: sim: dup_prob %v outside [0,1)", cerr.ErrSpec, sc.DupProb)
		}
	}
	for i, p := range sc.Partitions {
		if p.Until <= p.From {
			return fmt.Errorf("%w: sim: partition %d: empty window [%v,%v)", cerr.ErrSpec, i, p.From, p.Until)
		}
		for _, r := range p.Ranks {
			if r < 0 || (n > 0 && r >= n) {
				return fmt.Errorf("%w: sim: partition %d: rank %d out of range", cerr.ErrSpec, i, r)
			}
		}
	}
	for i, c := range sc.Crashes {
		if c.Rank < 0 || (n > 0 && c.Rank >= n) {
			return fmt.Errorf("%w: sim: crash %d: rank %d out of range", cerr.ErrSpec, i, c.Rank)
		}
		if c.At <= 0 {
			return fmt.Errorf("%w: sim: crash %d: non-positive time %v", cerr.ErrSpec, i, c.At)
		}
	}
	for r := range sc.Skews {
		if r < 0 || (n > 0 && r >= n) {
			return fmt.Errorf("%w: sim: skew: rank %d out of range", cerr.ErrSpec, r)
		}
		if sc.Skews[r].Rate < 0 {
			return fmt.Errorf("%w: sim: skew: rank %d: negative rate", cerr.ErrSpec, r)
		}
	}
	if sc.SlowStore != nil && (sc.SlowStore.Delay < 0 || sc.SlowStore.Jitter < 0) {
		return fmt.Errorf("%w: sim: slow store: negative delay", cerr.ErrSpec)
	}
	return nil
}

// rto returns the effective retransmission delay.
func (sc *Scenario) rto() time.Duration {
	if sc.RetransmitDelay > 0 {
		return sc.RetransmitDelay
	}
	if d := 4 * (sc.Latency + sc.Jitter); d > 0 {
		return d
	}
	return time.Millisecond
}

// String renders the scenario as its canonical JSON, the form to paste
// into a replay.
func (sc Scenario) String() string {
	b, err := json.Marshal(sc)
	if err != nil {
		return fmt.Sprintf("sim.Scenario{unserializable: %v}", err)
	}
	return string(b)
}
