package sim_test

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
	"time"

	"ccift/internal/mpi"
	"ccift/internal/sim"
	"ccift/internal/storage"
)

// wait blocks until d of virtual time has elapsed — a virtual barrier for
// tests, costing microseconds of wall time.
func wait(s *sim.Sim, d time.Duration) { <-s.Clock().After(d) }

func TestClockFreeRuns(t *testing.T) {
	s := sim.MustNew(0, sim.Scenario{})
	defer s.Stop()
	start := time.Now()
	wait(s, time.Hour)
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("one virtual hour took %v of wall time", wall)
	}
	if got := s.Elapsed(); got < time.Hour {
		t.Fatalf("Elapsed = %v, want >= 1h", got)
	}
}

func TestAfterFuncOrderAndStop(t *testing.T) {
	s := sim.MustNew(0, sim.Scenario{})
	defer s.Stop()
	clk := s.Clock()
	var order []int
	done := make(chan struct{})
	clk.AfterFunc(30*time.Millisecond, func() { order = append(order, 3); close(done) })
	clk.AfterFunc(10*time.Millisecond, func() { order = append(order, 1) })
	tm := clk.AfterFunc(20*time.Millisecond, func() { order = append(order, 2) })
	if !tm.Stop() {
		t.Fatal("Stop on a pending timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	<-done
	if !reflect.DeepEqual(order, []int{1, 3}) {
		t.Fatalf("firing order = %v, want [1 3]", order)
	}
}

func TestSkewedClockRate(t *testing.T) {
	// A rank clock running at 2x sees its timers fire after half the true
	// virtual time, and its Now advances twice as fast.
	s := sim.MustNew(0, sim.Scenario{Skews: map[int]sim.Skew{0: {Rate: 2}}})
	defer s.Stop()
	fast := s.RankClock(0)
	t0 := fast.Now()
	<-fast.After(2 * time.Second)
	if e := s.Elapsed(); e < time.Second || e >= 2*time.Second {
		t.Fatalf("true virtual elapsed = %v, want [1s, 2s)", e)
	}
	if d := fast.Since(t0); d < 2*time.Second {
		t.Fatalf("skewed clock advanced %v, want >= 2s", d)
	}
}

func TestVirtualSleep(t *testing.T) {
	s := sim.MustNew(0, sim.Scenario{})
	defer s.Stop()
	start := time.Now()
	s.Sleep(10 * time.Minute)
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("virtual sleep took %v of wall time", wall)
	}
	if got := s.Elapsed(); got < 10*time.Minute {
		t.Fatalf("Elapsed = %v, want >= 10m", got)
	}
}

// ring builds a 2-rank world on a fresh simulation and returns both.
func ring(t *testing.T, sc sim.Scenario) (*sim.Sim, *mpi.World) {
	t.Helper()
	s, err := sim.New(2, sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s, mpi.NewWorld(2, mpi.Options{NewTransport: s.NewTransport})
}

func TestDeliveryAcrossVirtualLatency(t *testing.T) {
	s, w := ring(t, sim.Scenario{Seed: 1, Latency: time.Millisecond})
	tr := w.Transport()
	go func() {
		tr.Send(1, &mpi.Message{Source: 0, Tag: 7, Data: []byte("hello")})
		w.RankDone(0)
	}()
	idx, m := tr.Await(1, []mpi.RecvSpec{{Source: 0, Tag: 7}})
	if idx != 0 || string(m.Data) != "hello" {
		t.Fatalf("got idx=%d data=%q", idx, m.Data)
	}
	if e := s.Elapsed(); e < time.Millisecond {
		t.Fatalf("delivery at %v, want >= 1ms of virtual latency", e)
	}
}

func TestFIFOAndDuplicateSuppression(t *testing.T) {
	const n = 200
	s, w := ring(t, sim.Scenario{Seed: 42, Latency: time.Millisecond,
		Jitter: 3 * time.Millisecond, DupProb: 0.4})
	tr := w.Transport()
	go func() {
		for i := 0; i < n; i++ {
			tr.Send(1, &mpi.Message{Source: 0, Tag: 1, Data: []byte(fmt.Sprint(i))})
		}
		w.RankDone(0)
	}()
	for i := 0; i < n; i++ {
		_, m := tr.Await(1, []mpi.RecvSpec{{Source: 0, Tag: 1}})
		if got := string(m.Data); got != fmt.Sprint(i) {
			t.Fatalf("message %d arrived as %q: FIFO violated", i, got)
		}
	}
	// Let the straggling duplicate copies land: with both ranks done the
	// clock freezes, but a virtual sleeper pushes time past them.
	w.RankDone(1)
	s.Sleep(time.Second)
	st := s.Stats()
	if st.Duplicated == 0 {
		t.Fatal("no duplicates injected at DupProb=0.4")
	}
	if st.DupSuppressed != st.Duplicated {
		t.Fatalf("injected %d duplicates but suppressed %d", st.Duplicated, st.DupSuppressed)
	}
	if st.Delivered != n {
		t.Fatalf("delivered %d frames, want exactly %d", st.Delivered, n)
	}
}

func TestDropsRetransmitNeverLose(t *testing.T) {
	const n = 100
	s, w := ring(t, sim.Scenario{Seed: 7, Latency: time.Millisecond, DropProb: 0.3})
	tr := w.Transport()
	go func() {
		for i := 0; i < n; i++ {
			tr.Send(1, &mpi.Message{Source: 0, Tag: 1, Data: []byte{byte(i)}})
		}
		w.RankDone(0)
	}()
	for i := 0; i < n; i++ {
		_, m := tr.Await(1, []mpi.RecvSpec{{Source: 0, Tag: 1}})
		if m.Data[0] != byte(i) {
			t.Fatalf("message %d arrived as %d", i, m.Data[0])
		}
	}
	if st := s.Stats(); st.Retransmits == 0 {
		t.Fatal("no retransmissions at DropProb=0.3")
	}
}

func TestPartitionHoldsUntilHeal(t *testing.T) {
	heal := 50 * time.Millisecond
	s, w := ring(t, sim.Scenario{Seed: 3, Latency: time.Millisecond,
		Partitions: []sim.Partition{{From: 0, Until: heal, Ranks: []int{1}}}})
	tr := w.Transport()
	go func() {
		tr.Send(1, &mpi.Message{Source: 0, Tag: 1, Data: []byte("x")})
		w.RankDone(0)
	}()
	tr.Await(1, []mpi.RecvSpec{{Source: 0, Tag: 1}})
	if e := s.Elapsed(); e < heal {
		t.Fatalf("partitioned frame delivered at %v, before heal at %v", e, heal)
	}
	if st := s.Stats(); st.Held != 1 {
		t.Fatalf("Held = %d, want 1", st.Held)
	}
}

func TestScenarioCrashKillsAtVirtualTime(t *testing.T) {
	at := 5 * time.Millisecond
	s, w := ring(t, sim.Scenario{Seed: 1, Latency: time.Millisecond,
		Crashes: []sim.Crash{{Rank: 1, At: at}}})
	tr := w.Transport()
	w.RankDone(0) // rank 0 plays no part; time must not wait for it
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		// Rank 1 parks awaiting a message that never comes; the scenario
		// kills it at 5ms, and a later Shutdown unblocks it.
		tr.Await(1, []mpi.RecvSpec{{Source: 0, Tag: 1}})
	}()
	wait(s, at+time.Millisecond)
	if !w.Killed(1) {
		t.Fatalf("rank 1 not killed by %v (elapsed %v)", at, s.Elapsed())
	}
	// The kill does not wake the parked rank — a stopped process cannot
	// announce its own death; the detector-driven Shutdown does.
	select {
	case p := <-done:
		t.Fatalf("parked rank woke on its own kill: %v", p)
	default:
	}
	w.Shutdown()
	if p := <-done; p != mpi.ErrWorldDead {
		t.Fatalf("unwound with %v, want ErrWorldDead", p)
	}
	w.RankDone(1)
}

func TestSlowStoreDelaysInVirtualTime(t *testing.T) {
	s := sim.MustNew(0, sim.Scenario{Seed: 9,
		SlowStore: &sim.SlowStore{Delay: 20 * time.Millisecond}})
	defer s.Stop()
	st := s.WrapStore(storage.NewMemory())
	if err := st.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, err := st.Get("k"); err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if e := s.Elapsed(); e < 40*time.Millisecond {
		t.Fatalf("two slow ops advanced only %v, want >= 40ms", e)
	}
}

func TestScenarioRoundTripsThroughJSON(t *testing.T) {
	sc := sim.Scenario{
		Seed: 99, Latency: time.Millisecond, Jitter: 250 * time.Microsecond,
		DropProb: 0.01, DupProb: 0.02,
		Partitions: []sim.Partition{{From: time.Second, Until: 2 * time.Second, Ranks: []int{3}}},
		Crashes:    []sim.Crash{{Rank: 1, At: 3 * time.Second}},
		Skews:      map[int]sim.Skew{2: {Offset: time.Millisecond, Rate: 1.5}},
		SlowStore:  &sim.SlowStore{Delay: time.Millisecond, Prob: 0.5},
	}
	var back sim.Scenario
	if err := json.Unmarshal([]byte(sc.String()), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, back) {
		t.Fatalf("round trip changed the scenario:\n  in:  %+v\n  out: %+v", sc, back)
	}
}

func TestScenarioValidation(t *testing.T) {
	bad := []sim.Scenario{
		{Latency: -1},
		{DropProb: 1.5},
		{DupProb: -0.1},
		{Partitions: []sim.Partition{{From: 5, Until: 5}}},
		{Partitions: []sim.Partition{{From: 0, Until: 1, Ranks: []int{9}}}},
		{Crashes: []sim.Crash{{Rank: 0, At: 0}}},
		{Crashes: []sim.Crash{{Rank: 5, At: 1}}},
		{Skews: map[int]sim.Skew{7: {}}},
	}
	for i, sc := range bad {
		if _, err := sim.New(2, sc); err == nil {
			t.Errorf("scenario %d accepted, want error", i)
		}
	}
}
