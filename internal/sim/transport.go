package sim

import (
	"encoding/binary"
	"fmt"
	"time"

	"ccift/internal/mpi"
)

// mpiDecode parses one wire frame back into a message.
func mpiDecode(frame []byte) (*mpi.Message, error) { return mpi.DecodeMessage(frame) }

// transport is the mpi.Transport for one incarnation's world. Frames are
// encoded with the shared wire codec, scheduled through the event heap
// with the scenario's latency/fault model, and decoded into per-rank
// mpi.Mailbox instances, which supply matching, chaos insertion, and
// world-death semantics.
type transport struct {
	s     *Sim
	w     *mpi.World
	boxes []*mpi.Mailbox
}

// NewTransport builds the transport for w and attaches it as the
// simulation's current incarnation; in-flight frames of the previous
// incarnation are dropped at dispatch (a rollback discards its world and
// everything it had in the air). Plug it into mpi.Options.NewTransport or
// engine.Config.NewTransport.
func (s *Sim) NewTransport(w *mpi.World) mpi.Transport {
	if w.Size() != s.n {
		panic(fmt.Sprintf("sim: world size %d != simulated cluster size %d", w.Size(), s.n))
	}
	t := &transport{s: s, w: w, boxes: make([]*mpi.Mailbox, s.n)}
	for i := range t.boxes {
		t.boxes[i] = mpi.NewMailbox(w)
	}
	s.mu.Lock()
	s.curTr = t
	for r := 0; r < s.n; r++ {
		s.parked[r] = false
		s.done[r] = false
		s.needWake[r] = false
		s.gen[r]++
	}
	s.parkedN, s.doneN = 0, 0
	s.cond.Broadcast()
	s.mu.Unlock()
	return t
}

// RankDone records that rank's goroutine has exited for this incarnation
// (mpi.World.RankDone forwards here); a done rank no longer holds back
// virtual time.
func (t *transport) RankDone(rank int) {
	s := t.s
	s.mu.Lock()
	if s.curTr == t && !s.done[rank] {
		s.done[rank] = true
		s.doneN++
		if s.parked[rank] {
			s.parked[rank] = false
			s.parkedN--
		}
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// Send encodes m and schedules its delivery at dst under the scenario's
// fault model. The draw order on a link is fixed (latency, losses, then
// duplication), so the schedule is a pure function of (scenario, link,
// frame index).
func (t *transport) Send(dst int, m *mpi.Message) {
	frame := mpi.AppendMessage(nil, m)
	ctx := int64(binary.LittleEndian.Uint64(frame[0:]))
	src := int(int32(binary.LittleEndian.Uint32(frame[8:])))

	s := t.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.curTr != t || s.stopped {
		return
	}
	lk := linkKey{ctx: ctx, src: src, dst: dst}
	l := s.link(lk)
	l.seq++

	// Departure: a frame sent into a partition window is held by the
	// reliability layer and leaves when the partition heals (windows may
	// chain back to back).
	dep := s.now
	for changed := true; changed; {
		changed = false
		for _, p := range s.sc.Partitions {
			if dep >= p.From && dep < p.Until && p.separates(src, dst) {
				dep = p.Until
				changed = true
			}
		}
	}
	if dep > s.now {
		s.st.Held++
	}

	at := dep + s.sc.Latency + draw(l.rng, s.sc.Jitter)
	// Transient loss: the reliable layer retransmits after its timeout;
	// repeated losses compound. The frame is never lost for good — the
	// paper's model assumes reliable delivery underneath.
	for i := 0; i < 64 && s.sc.DropProb > 0 && l.rng.Float64() < s.sc.DropProb; i++ {
		at += s.sc.rto()
		s.st.Retransmits++
	}
	// MPI's non-overtaking guarantee: a frame may not pass its
	// predecessor on the same link.
	if at < l.lastAt {
		at = l.lastAt
	}
	l.lastAt = at
	s.push(&event{at: at, kind: evDeliver, tr: t, dst: dst, lk: lk, linkSeq: l.seq, frame: frame})

	// Duplication: the retransmission path redelivers an already-arrived
	// frame later; sequence dedup suppresses it at dispatch.
	if s.sc.DupProb > 0 && l.rng.Float64() < s.sc.DupProb {
		dupAt := at + s.sc.Latency + draw(l.rng, s.sc.Jitter)
		s.push(&event{at: dupAt, kind: evDeliver, tr: t, dst: dst, lk: lk, linkSeq: l.seq, frame: frame})
		s.st.Duplicated++
	}
}

func draw(rng *prng, width time.Duration) time.Duration {
	if width <= 0 {
		return 0
	}
	return time.Duration(rng.Int63n(int64(width)))
}

// Await blocks rank until a message matching one of specs is queued. The
// park is visible to the scheduler (quiescence accounting), and the
// mailbox's Poll supplies matching and ErrWorldDead/ErrCanceled exactly as
// the in-process substrate does.
func (t *transport) Await(rank int, specs []mpi.RecvSpec) (int, *mpi.Message) {
	i, m := t.awaitCond(rank, specs, nil)
	return i, m
}

// AwaitCond is Await with a cancellation condition, re-evaluated whenever
// the rank is woken (delivery or Interrupt).
func (t *transport) AwaitCond(rank int, specs []mpi.RecvSpec, stop func() bool) (int, *mpi.Message) {
	if stop == nil {
		stop = func() bool { return false }
	}
	return t.awaitCond(rank, specs, stop)
}

func (t *transport) awaitCond(rank int, specs []mpi.RecvSpec, stop func() bool) (int, *mpi.Message) {
	s := t.s
	for {
		s.mu.Lock()
		g := s.gen[rank]
		s.mu.Unlock()
		// Poll outside the simulation lock (lock order: sim.mu is taken
		// before the mailbox lock on the delivery path). It panics with
		// the halt sentinel once the world is shut down or canceled.
		if i, m := t.boxes[rank].Poll(specs); m != nil {
			return i, m
		}
		if stop != nil && stop() {
			return -1, nil
		}
		s.mu.Lock()
		if s.gen[rank] != g || s.stopped {
			s.mu.Unlock()
			continue
		}
		if !s.parked[rank] {
			s.parked[rank] = true
			s.parkedN++
		}
		s.cond.Broadcast() // quiescence may have been reached
		for s.gen[rank] == g && !s.stopped {
			s.rankCond[rank].Wait()
		}
		// The waker (bumpGen) already cleared the parked flag.
		s.mu.Unlock()
	}
}

func (t *transport) Poll(rank int, specs []mpi.RecvSpec) (int, *mpi.Message) {
	return t.boxes[rank].Poll(specs)
}

func (t *transport) Probe(rank int, spec mpi.RecvSpec) (bool, *mpi.Message) {
	return t.boxes[rank].Probe(spec)
}

func (t *transport) Pending(rank int) int { return t.boxes[rank].Pending() }

func (t *transport) PendingApp(rank int, ctx int64) int {
	return t.boxes[rank].PendingApp(ctx)
}

// Interrupt wakes every parked rank so AwaitCond conditions and
// world-death are re-observed; mailbox waiters (none in normal sim
// operation, but Comm paths may hold them) are interrupted too.
func (t *transport) Interrupt() {
	s := t.s
	s.mu.Lock()
	for r := 0; r < s.n; r++ {
		s.bumpGen(r)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, b := range t.boxes {
		b.Interrupt()
	}
}
