//go:build race

package ccift_test

// raceEnabled reports whether the race detector is compiled in, so
// wall-clock bounds can budget for its slowdown instead of skipping.
const raceEnabled = true
