package ccift

import (
	"context"
	"os"
	"strings"
	"time"

	"ccift/internal/engine"
	"ccift/internal/launch"
	"ccift/internal/mpi"
	"ccift/internal/protocol"
	"ccift/internal/sim"
	"ccift/internal/storage"
)

// RunError is the structured failure report Launch (and Run) return: which
// rank ended the run (-1 when not attributable to one rank), in which
// incarnation, and how many rollback-restarts were consumed. The
// underlying cause is reachable with errors.Is/As through Unwrap and
// always matches exactly one taxonomy sentinel (ErrCanceled, ErrSpec,
// ErrStore, ErrTransport, ErrWorldDead, ErrMaxRestarts, ErrProgram);
// context.Canceled / context.DeadlineExceeded and the program's own error
// remain in the chain alongside their category.
type RunError = engine.RunError

// ErrTooManyRestarts is the historical cause wrapped by a RunError when
// the failure schedule exhausts the restart budget. It wraps
// ErrMaxRestarts, the taxonomy category for the same condition; new code
// should test for ErrMaxRestarts.
var ErrTooManyRestarts = engine.ErrTooManyRestarts

// Tracer receives protocol events from every rank (see internal/trace for
// a recorder that renders space-time diagrams).
type Tracer = protocol.Tracer

// TraceEvent is one observable protocol action delivered to a Tracer.
type TraceEvent = protocol.TraceEvent

// World is one incarnation's substrate world; custom transports installed
// with WithTransport are handed it at construction.
type World = mpi.World

// Transport is the wire substrate beneath a World. See the contract on the
// interface for what an implementation must honor.
type Transport = mpi.Transport

// Launch executes prog on the substrate the spec selects, under ctx.
//
// With a default spec the ranks run as goroutines over the in-process
// substrate — exactly Run's behaviour, driven by options instead of a
// Config. With WithDistributed the same program runs as one OS process per
// rank over a full TCP mesh, checkpoints in a shared on-disk store, and
// failures delivered as real SIGKILLs; Launch plays the launcher role,
// re-executing the current binary for each rank. With WithSimulated the
// same program runs over a deterministic simulated network with virtual
// time and a seeded fault schedule (see Scenario).
//
// Worker role: in a distributed run each spawned worker re-enters the
// caller's own code path and reaches this same Launch call; Launch detects
// the worker environment (IsWorker), runs the single-rank worker role, and
// exits the process with the launch protocol's exit code — it never
// returns in a worker. Keep launcher-only side effects (printing, file
// writes) after the Launch call or guarded by IsWorker.
//
// Cancelling ctx (or its deadline expiring) aborts the run on either
// substrate: in-process ranks unwind at their next substrate operation,
// distributed workers are SIGKILLed; either way Launch returns a *RunError
// wrapping ctx's error. With no failures injected and no cancellation,
// Launch returns once every rank's program has completed, rolling back and
// restarting from the last committed global checkpoint as ranks die.
//
// Result shape: on the in-process substrate, Result.Values holds every
// rank's program return value. On the distributed substrate only rank 0's
// result crosses the process boundary, as a string (fmt's rendering of the
// return value), so Values is that single string — return a
// fmt.Sprint-stable value (e.g. a formatted string) from programs that run
// on both substrates. Result.Stats and Result.PerRank carry every rank's
// protocol counters on BOTH substrates: distributed workers stream their
// counters back to the launcher, which reconstructs the same per-rank view
// the in-process engine reads directly.
//
// Observability: WithMetricsAddr additionally serves the run's live
// counters in Prometheus text format for the duration of the Launch.
func Launch(ctx context.Context, spec *Spec, prog Program) (*Result, error) {
	if spec == nil {
		spec = NewSpec()
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.distributed != nil {
		return launchDistributed(ctx, spec, prog)
	}
	cfg := spec.cfg
	if spec.sim != nil {
		s, err := sim.New(cfg.Ranks, *spec.sim)
		if err != nil {
			return nil, err // Validate vets the scenario, so this is defensive
		}
		defer s.Stop()
		cfg.NewTransport = s.NewTransport
		cfg.Clock = s.DetectorClock()
		cfg.RankClock = s.RankClock
		// Determinism requires every actor to be event-driven: the async
		// flusher goroutine computes in wall time the scheduler cannot
		// order, so simulation forces the synchronous checkpoint path and
		// the serial chunk writer (the pipelined writer's workers hash in
		// wall time too).
		cfg.SyncCheckpoint = true
		cfg.ChunkPipeline = -1
		if spec.sim.SlowStore != nil {
			st := cfg.Store
			if st == nil {
				st = storage.NewMemory()
			}
			cfg.Store = s.WrapStore(st)
		}
		if spec.sim.DetectorTimeout != 0 {
			cfg.DetectorTimeout = spec.sim.DetectorTimeout
		} else if cfg.DetectorTimeout == 0 {
			// Scenario crashes are silent stops; only the heartbeat
			// detector can observe them, and virtual timeouts are free.
			cfg.DetectorTimeout = 500 * time.Millisecond
		}
	}
	if spec.metricsAddr != "" {
		mr, err := newMetricsRun(spec.metricsAddr, cfg.Ranks)
		if err != nil {
			return nil, err
		}
		defer mr.close()
		agg := protocol.NewAggregator(mr.observe)
		cfg.StatsSink = agg.Observe
		cfg.OnRestart = mr.onRestart
	}
	return engine.RunContext(ctx, cfg, prog)
}

// IsWorker reports whether the current process was spawned as the worker
// of a distributed Launch. Binaries that launch distributed runs may use
// it to skip launcher-only side effects; calling Launch itself already
// handles the worker role.
func IsWorker() bool { return launch.IsWorker() }

func launchDistributed(ctx context.Context, spec *Spec, prog Program) (*Result, error) {
	cfg, d := spec.cfg, spec.distributed
	if launch.IsWorker() {
		// This process is one spawned rank: run the worker role with the
		// same spec the launcher-side call site built, and never return.
		launch.WorkerMain(launch.WorkerApp{
			Prog:             prog,
			EveryN:           cfg.EveryN,
			Interval:         cfg.Interval,
			Seed:             cfg.Seed,
			Debug:            cfg.Debug,
			Mode:             cfg.Mode,
			SyncCheckpoint:   cfg.SyncCheckpoint,
			ChunkSize:        cfg.ChunkSize,
			FullFreeze:       cfg.FullFreeze,
			FreezeCrossCheck: cfg.FreezeCrossCheck,
			FlushBandwidth:   cfg.FlushBandwidth,
			NoFlushGovernor:  cfg.NoFlushGovernor,
			ChunkPipeline:    cfg.ChunkPipeline,
		})
	}
	kills := make([]launch.KillSpec, len(cfg.Failures))
	for i, f := range cfg.Failures {
		kills[i] = launch.KillSpec{Rank: f.Rank, AtOp: f.AtOp, Incarnation: f.Incarnation}
	}
	args := d.Args
	if args == nil {
		args = os.Args[1:]
	}
	lcfg := launch.Config{
		Exe:               d.Exe,
		Args:              args,
		Ranks:             cfg.Ranks,
		StoreDir:          d.StoreDir,
		WorkDir:           d.WorkDir,
		Kills:             kills,
		MaxRestarts:       cfg.MaxRestarts,
		DetectorTimeout:   d.DetectorTimeout,
		Stderr:            d.Stderr,
		Verbose:           d.Verbose,
		WholeWorldRestart: cfg.WholeWorldRestart,
	}
	if spec.metricsAddr != "" {
		// The launcher serves the aggregated view; this branch is only
		// reached in the launcher role (workers took WorkerMain above), so
		// re-exec'd workers never contend for the address.
		mr, err := newMetricsRun(spec.metricsAddr, cfg.Ranks)
		if err != nil {
			return nil, &RunError{Rank: -1, Incarnation: -1, Err: err}
		}
		defer mr.close()
		agg := protocol.NewAggregator(mr.observe)
		lcfg.StatsSink = agg.Observe
		lcfg.OnRestart = mr.onRestart
	}
	lres, err := launch.RunContext(ctx, lcfg)
	if err != nil {
		// The launcher does not attribute failures to a rank or incarnation;
		// -1 marks both unknown.
		return nil, &RunError{Rank: -1, Incarnation: -1, Err: err}
	}
	// Only rank 0's rendered result crosses the process boundary: Values
	// holds that one string (fmt's rendering of the program's return value,
	// which the worker prints as "result: <value>"). The per-rank protocol
	// counters DO cross it, via the workers' stats streams.
	res := &Result{
		Restarts:        lres.Restarts,
		RecoveredEpochs: lres.RecoveredEpochs,
		Stats:           lres.Stats,
		PerRank:         lres.PerRank,
	}
	for _, inc := range lres.Incarnations {
		res.Incarnations = append(res.Incarnations, engine.IncarnationInfo{
			PIDs:           inc.PIDs,
			Exits:          inc.Exits,
			RecoveredEpoch: inc.RecoveredEpoch,
		})
	}
	for _, line := range strings.Split(lres.Output, "\n") {
		if v, ok := strings.CutPrefix(line, "result: "); ok {
			res.Values = append(res.Values, v)
			break
		}
	}
	return res, nil
}
